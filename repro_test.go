// Top-level acceptance test: the paper's headline findings, end to end.
// This is the claim-by-claim gate a reviewer would run first; the detailed
// bands live in internal/core's tests and EXPERIMENTS.md.
package pegflow_test

import (
	"testing"

	"pegflow/internal/core"
	"pegflow/internal/stats"
)

func TestPaperHeadlineFindings(t *testing.T) {
	all, err := core.DefaultExperiment(42).RunAll()
	if err != nil {
		t.Fatal(err)
	}

	serial := all.Serial.WallTime()
	if h := serial / 3600; h < 95 || h > 105 {
		t.Errorf("serial = %.1f h, paper: 100 h", h)
	}

	// ">95% reduction" (paper abstract).
	if red := stats.Reduction(serial, all.BestWorkflowWallTime()); red < 0.95 {
		t.Errorf("reduction = %.1f%%, paper: >95%%", 100*red)
	}

	// "Sandhills resulted in better running time" (paper abstract).
	for _, n := range core.PaperNValues {
		s := all.Runs["sandhills"][n].WallTime()
		o := all.Runs["osg"][n].WallTime()
		if o <= s {
			t.Errorf("n=%d: OSG %.0f s ≤ Sandhills %.0f s", n, o, s)
		}
	}

	// "the selection of 300 clusters of transcripts gives the optimum
	// performance" (paper abstract).
	sand := all.Runs["sandhills"]
	for _, n := range []int{10, 100, 500} {
		if sand[n].WallTime() <= sand[300].WallTime() {
			t.Errorf("n=%d (%.0f s) beats n=300 (%.0f s)",
				n, sand[n].WallTime(), sand[300].WallTime())
		}
	}

	// "we encountered no failures ... on Sandhills"; failures/retries
	// "observed on OSG".
	osgEvictions := 0
	for _, n := range core.PaperNValues {
		if ev := all.Runs["sandhills"][n].Result.Evictions; ev != 0 {
			t.Errorf("sandhills n=%d: %d evictions", n, ev)
		}
		osgEvictions += all.Runs["osg"][n].Result.Evictions
	}
	if osgEvictions == 0 {
		t.Error("no OSG evictions anywhere: opportunistic model inert")
	}
}
