GO ?= go

.PHONY: all build lint test race bench bench-serve fmt vet clean

all: build lint test

build:
	$(GO) build ./...

# Static-analysis suite (see docs/LINTING.md). Must exit clean; add
# justified exemptions to lint.allow, never silence an analyzer.
lint:
	$(GO) run ./cmd/pegflow-lint ./...

test:
	$(GO) test -vet=all ./...

# The stress variant CI runs on the concurrency-heavy packages.
race:
	$(GO) test -race -count=2 ./internal/server/... ./internal/scenario

bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./internal/sim/des ./internal/engine ./internal/fifo

# Load-test the serve tier and regenerate BENCH_serve.json; fails if any
# request errors or the warm wave is not >= 5x cold throughput.
bench-serve:
	$(GO) run ./cmd/loadgen -min-speedup 5

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
