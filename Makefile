GO ?= go

.PHONY: all build lint lint-fixtures test race bench bench-serve bench-scale fmt vet clean

all: build lint test

build:
	$(GO) build ./...

# Static-analysis suite (see docs/LINTING.md). Must exit clean; add
# justified exemptions to lint.allow, never silence an analyzer.
lint:
	$(GO) run ./cmd/pegflow-lint ./...

# Just the analyzer fixture tests: the fast loop when hacking on an
# analyzer (each Test*Fixture matches findings 1:1 against // want).
lint-fixtures:
	$(GO) test -run 'Fixture' ./internal/analysis/...

test:
	$(GO) test -vet=all ./...

# The stress variant CI runs on the concurrency-heavy packages. The
# timeout turns a deadlock (the bug class lockhold/pairpath exist for)
# into a fast stack-dumped failure instead of a hung job.
race:
	$(GO) test -race -count=2 -timeout 120s ./internal/server/... ./internal/scenario

bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./internal/sim/des ./internal/engine ./internal/fifo

# Load-test the serve tier and regenerate BENCH_serve.json; fails if any
# request errors or the warm wave is not >= 5x cold throughput.
bench-serve:
	$(GO) run ./cmd/loadgen -min-speedup 5

# The million-job scale gate + throughput benchmark behind BENCH_scale.json:
# a 10^6-chunk aggregated run must complete on the two-site failover world
# under the CI memory ceiling, then the warm single-site run path is timed.
bench-scale:
	$(GO) test -c -o /tmp/scale.test ./internal/core
	GOMEMLIMIT=8GiB PEGFLOW_SCALE_N=1000000 PEGFLOW_SCALE_MAXRSS_MB=9216 \
		/tmp/scale.test -test.run '^TestMillionJobScale$$' -test.v -test.timeout 3600s
	PEGFLOW_SCALE_N=1000000 $(GO) test -run='^$$' -bench=BenchmarkMillionJobRun -benchtime=1x -benchmem -timeout 3600s ./internal/core

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
