// Benchmark harness regenerating every figure of the paper's evaluation
// (the paper has no numbered tables; Fig. 4 and Fig. 5 are its entire
// quantitative content) plus the ablations of DESIGN.md and kernel
// benchmarks of the substrates.
//
// The figure benchmarks report the paper's metrics through b.ReportMetric:
// wall-clock seconds of simulated time appear as "wall_s", reductions as
// "reduction_%", per-task phase means as "kickstart_s" / "waiting_s" /
// "install_s". Run:
//
//	go test -bench=. -benchmem
package pegflow_test

import (
	"fmt"
	"testing"

	"pegflow/internal/bio/align"
	"pegflow/internal/bio/blast"
	"pegflow/internal/bio/blast2cap3"
	"pegflow/internal/bio/cap3"
	"pegflow/internal/bio/datagen"
	"pegflow/internal/core"
	"pegflow/internal/planner"
	"pegflow/internal/stats"
	"pegflow/internal/workflow"
)

const benchSeed = 42

// BenchmarkFig4SerialBaseline regenerates the serial bar of Fig. 4: the
// original single-process blast2cap3 (paper: 100 hours).
func BenchmarkFig4SerialBaseline(b *testing.B) {
	e := core.DefaultExperiment(benchSeed)
	var wall float64
	for i := 0; i < b.N; i++ {
		r, err := e.RunSerial()
		if err != nil {
			b.Fatal(err)
		}
		wall = r.WallTime()
	}
	b.ReportMetric(wall, "wall_s")
	b.ReportMetric(wall/3600, "wall_h")
}

// BenchmarkFig4WallTime regenerates the eight workflow bars of Fig. 4:
// both platforms at n ∈ {10,100,300,500}.
func BenchmarkFig4WallTime(b *testing.B) {
	for _, p := range core.Platforms {
		for _, n := range core.PaperNValues {
			p, n := p, n
			b.Run(fmt.Sprintf("%s/n=%d", p, n), func(b *testing.B) {
				e := core.DefaultExperiment(benchSeed)
				var wall float64
				var retries int
				for i := 0; i < b.N; i++ {
					r, err := e.RunWorkflow(p, n)
					if err != nil {
						b.Fatal(err)
					}
					wall = r.WallTime()
					retries = r.Result.Retries
				}
				b.ReportMetric(wall, "wall_s")
				b.ReportMetric(float64(retries), "retries")
			})
		}
	}
}

// BenchmarkFig4Reduction reports the paper's ">95% reduction" headline.
func BenchmarkFig4Reduction(b *testing.B) {
	e := core.DefaultExperiment(benchSeed)
	var red float64
	for i := 0; i < b.N; i++ {
		serial, err := e.RunSerial()
		if err != nil {
			b.Fatal(err)
		}
		best, err := e.RunWorkflow("sandhills", 300)
		if err != nil {
			b.Fatal(err)
		}
		red = stats.Reduction(serial.WallTime(), best.WallTime())
	}
	b.ReportMetric(100*red, "reduction_%")
}

// BenchmarkFig5PerTask regenerates the four panels of Fig. 5: per-task
// Kickstart / Waiting / Download-Install means for the run_cap3
// transformation on both platforms at every n.
func BenchmarkFig5PerTask(b *testing.B) {
	for _, p := range core.Platforms {
		for _, n := range core.PaperNValues {
			p, n := p, n
			b.Run(fmt.Sprintf("%s/n=%d", p, n), func(b *testing.B) {
				e := core.DefaultExperiment(benchSeed)
				var row stats.TaskStats
				for i := 0; i < b.N; i++ {
					r, err := e.RunWorkflow(p, n)
					if err != nil {
						b.Fatal(err)
					}
					for _, ts := range r.PerTask {
						if ts.Transformation == workflow.TrRunCAP3 {
							row = ts
						}
					}
				}
				b.ReportMetric(row.MeanKickstart, "kickstart_s")
				b.ReportMetric(row.MeanWaiting, "waiting_s")
				b.ReportMetric(row.MeanSetup, "install_s")
			})
		}
	}
}

// BenchmarkAblationInstallStep isolates the OSG download/install overhead
// (DESIGN.md A1, the paper's stated future work).
func BenchmarkAblationInstallStep(b *testing.B) {
	for _, pre := range []bool{false, true} {
		pre := pre
		name := "with-install"
		if pre {
			name = "preinstalled"
		}
		b.Run(name, func(b *testing.B) {
			e := core.DefaultExperiment(benchSeed)
			var wall float64
			for i := 0; i < b.N; i++ {
				r, err := e.RunVariant("osg", 300, core.Variant{PreinstallOSG: pre})
				if err != nil {
					b.Fatal(err)
				}
				wall = r.WallTime()
			}
			b.ReportMetric(wall, "wall_s")
		})
	}
}

// BenchmarkAblationPreemption isolates eviction cost at n=10, averaged
// over seeds (DESIGN.md A2).
func BenchmarkAblationPreemption(b *testing.B) {
	for _, ev := range []bool{true, false} {
		ev := ev
		name := "evictions-on"
		if !ev {
			name = "evictions-off"
		}
		b.Run(name, func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				mean = 0
				for s := uint64(0); s < 5; s++ {
					e := core.DefaultExperiment(benchSeed + s)
					r, err := e.RunVariant("osg", 10, core.Variant{DisablePreemption: !ev})
					if err != nil {
						b.Fatal(err)
					}
					mean += r.WallTime() / 5
				}
			}
			b.ReportMetric(mean, "wall_s")
		})
	}
}

// BenchmarkAblationClustering sweeps the Pegasus horizontal clustering
// factor (DESIGN.md A3).
func BenchmarkAblationClustering(b *testing.B) {
	for _, cs := range []int{1, 4, 16} {
		cs := cs
		b.Run(fmt.Sprintf("factor=%d", cs), func(b *testing.B) {
			e := core.DefaultExperiment(benchSeed)
			var wall float64
			for i := 0; i < b.N; i++ {
				r, err := e.RunVariant("sandhills", 500, core.Variant{ClusterSize: cs})
				if err != nil {
					b.Fatal(err)
				}
				wall = r.WallTime()
			}
			b.ReportMetric(wall, "wall_s")
		})
	}
}

// BenchmarkAblationSkew sweeps the cluster-size rank exponent (DESIGN.md
// A4 — the mechanism behind the paper's plateau).
func BenchmarkAblationSkew(b *testing.B) {
	for _, sx := range []float64{0.25, 0.5, 1.0} {
		sx := sx
		b.Run(fmt.Sprintf("exponent=%.2f", sx), func(b *testing.B) {
			e := core.DefaultExperiment(benchSeed)
			var wall float64
			for i := 0; i < b.N; i++ {
				r, err := e.RunVariant("sandhills", 300, core.Variant{SizeExponent: sx})
				if err != nil {
					b.Fatal(err)
				}
				wall = r.WallTime()
			}
			b.ReportMetric(wall, "wall_s")
		})
	}
}

// BenchmarkClusterSweep regenerates the cluster-size sweep points behind
// BENCH_cluster.json on the overhead-dominated platform: the paper
// workload at fine decomposition on OSG, unclustered vs fixed-size
// bundles vs runtime-aware packing. wall_s is the simulated makespan;
// reduction_% is the cut vs the unclustered baseline.
func BenchmarkClusterSweep(b *testing.B) {
	configs := []struct {
		name string
		opts planner.ClusterOptions
	}{
		{"off", planner.ClusterOptions{}},
		{"max4", planner.ClusterOptions{MaxTasksPerJob: 4}},
		{"max8", planner.ClusterOptions{MaxTasksPerJob: 8}},
		{"target1800s", planner.ClusterOptions{TargetJobSeconds: 1800}},
	}
	n := core.DefaultClusterSweepN
	base := -1.0
	for _, cfg := range configs {
		cfg := cfg
		b.Run(fmt.Sprintf("osg/n=%d/%s", n, cfg.name), func(b *testing.B) {
			e := core.DefaultExperiment(benchSeed)
			var wall float64
			for i := 0; i < b.N; i++ {
				r, err := e.RunClustered("osg", n, cfg.opts)
				if err != nil {
					b.Fatal(err)
				}
				wall = r.WallTime()
			}
			if !cfg.opts.Enabled() {
				base = wall
			}
			b.ReportMetric(wall, "wall_s")
			if base > 0 {
				b.ReportMetric(100*stats.Reduction(base, wall), "reduction_%")
			}
		})
	}
}

// --- parallel harness scaling ---

// BenchmarkMonteCarloParallel measures the bounded worker pool on the
// paper's 10-seed variability sweep (90 simulations: per seed, a serial
// baseline plus both platforms at every n). Output is bit-identical at
// every worker count, so the sub-benchmarks measure pure scheduling:
// near-linear speedup up to the physical core count.
func BenchmarkMonteCarloParallel(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sw, err := core.MonteCarloSweep(benchSeed, 10, core.SweepOptions{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				if sw.Serial.Runs != 10 {
					b.Fatalf("serial runs = %d", sw.Serial.Runs)
				}
			}
		})
	}
}

// BenchmarkRunAllParallel measures the single-seed evaluation grid (the
// serial baseline plus 8 workflow cells) at increasing worker counts.
func BenchmarkRunAllParallel(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			e := core.DefaultExperiment(benchSeed)
			e.Workers = w
			for i := 0; i < b.N; i++ {
				if _, err := e.RunAll(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- substrate kernels ---

// BenchmarkRealSerialVsParallel runs the real (non-simulated) blast2cap3
// pipeline on synthetic data, serial vs decomposed, verifying in passing
// that the decomposition is work-preserving.
func BenchmarkRealSerialVsParallel(b *testing.B) {
	ds, err := datagen.Generate(datagen.DefaultConfig(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := blast2cap3.RunSerial(ds.Transcripts, ds.TruthHits, cap3.DefaultParams()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel-n=4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := blast2cap3.RunParallel(ds.Transcripts, ds.TruthHits, 4, cap3.DefaultParams()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCAP3Assemble measures the assembler kernel.
func BenchmarkCAP3Assemble(b *testing.B) {
	ds, err := datagen.Generate(datagen.Config{
		Proteins: 1, ProteinLen: 200, ClusterSizes: []int{8},
		FragmentLen: 300, OverlapLen: 120, MutationRate: 0.01, Seed: benchSeed,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cap3.Assemble(ds.Transcripts, cap3.DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBLASTXSearch measures the translated search kernel.
func BenchmarkBLASTXSearch(b *testing.B) {
	ds, err := datagen.Generate(datagen.DefaultConfig(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	db, err := blast.NewDB(ds.Proteins, blast.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	query := ds.Transcripts[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Search(query.ID, query.Seq); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverlapAlignment measures the dovetail DP kernel.
func BenchmarkOverlapAlignment(b *testing.B) {
	ds, err := datagen.Generate(datagen.DefaultConfig(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	a := ds.Transcripts[0].Seq
	c := ds.Transcripts[1].Seq
	p := cap3.DefaultParams().Overlap
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		align.Overlap(a, c, p)
	}
}

// BenchmarkSimulatorThroughput measures discrete-event throughput of a
// full n=500 OSG run (jobs simulated per wall-clock second).
func BenchmarkSimulatorThroughput(b *testing.B) {
	e := core.DefaultExperiment(benchSeed)
	var jobs int
	for i := 0; i < b.N; i++ {
		r, err := e.RunWorkflow("osg", 500)
		if err != nil {
			b.Fatal(err)
		}
		jobs = r.Summary.Attempts
	}
	b.ReportMetric(float64(jobs), "jobs/run")
}
