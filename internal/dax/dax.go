package dax

import (
	"fmt"
	"sort"
)

// Link describes how a job uses a file.
type Link int

const (
	// LinkInput marks a file the job consumes.
	LinkInput Link = iota
	// LinkOutput marks a file the job produces.
	LinkOutput
)

// String returns the DAX spelling of the link direction.
func (l Link) String() string {
	if l == LinkInput {
		return "input"
	}
	return "output"
}

// Use records one file usage by a job.
type Use struct {
	// LFN is the logical file name.
	LFN string
	// Link is the usage direction.
	Link Link
	// Size is the file size in bytes, when known (0 = unknown).
	Size int64
	// Transfer marks outputs that should be staged out of the site.
	Transfer bool
}

// Job is one abstract task: a logical transformation applied to logical
// files.
type Job struct {
	// ID uniquely identifies the job within the workflow.
	ID string
	// Transformation is the logical executable name (e.g. "run_cap3").
	Transformation string
	// Namespace and Version qualify the transformation.
	Namespace, Version string
	// Args are the command-line arguments.
	Args []string
	// Uses lists the job's file usages.
	Uses []Use
	// Profiles carry scheduler hints, keyed as "namespace::key"
	// (e.g. "pegasus::runtime" with an estimated runtime in seconds).
	Profiles map[string]string
	// Priority orders ready jobs in the meta-scheduler; higher runs first.
	Priority int
}

// AddInput appends an input usage.
func (j *Job) AddInput(lfn string, size int64) *Job {
	j.Uses = append(j.Uses, Use{LFN: lfn, Link: LinkInput, Size: size})
	return j
}

// AddOutput appends an output usage.
func (j *Job) AddOutput(lfn string, size int64) *Job {
	j.Uses = append(j.Uses, Use{LFN: lfn, Link: LinkOutput, Size: size})
	return j
}

// SetProfile records a profile entry under namespace::key.
func (j *Job) SetProfile(namespace, key, value string) *Job {
	if j.Profiles == nil {
		j.Profiles = make(map[string]string)
	}
	j.Profiles[namespace+"::"+key] = value
	return j
}

// Profile returns the profile value for namespace::key, or "".
func (j *Job) Profile(namespace, key string) string {
	return j.Profiles[namespace+"::"+key]
}

// Clone returns a deep copy of the job: the Uses, Args and Profiles of the
// copy are independent of the original's.
func (j *Job) Clone() *Job {
	cp := *j
	cp.Args = append([]string(nil), j.Args...)
	cp.Uses = append([]Use(nil), j.Uses...)
	if j.Profiles != nil {
		cp.Profiles = make(map[string]string, len(j.Profiles))
		for k, v := range j.Profiles {
			cp.Profiles[k] = v
		}
	}
	return &cp
}

// Inputs returns the logical names of the job's inputs, in declaration order.
func (j *Job) Inputs() []string {
	var out []string
	for _, u := range j.Uses {
		if u.Link == LinkInput {
			out = append(out, u.LFN)
		}
	}
	return out
}

// Outputs returns the logical names of the job's outputs, in declaration order.
func (j *Job) Outputs() []string {
	var out []string
	for _, u := range j.Uses {
		if u.Link == LinkOutput {
			out = append(out, u.LFN)
		}
	}
	return out
}

// Workflow is an abstract DAG of jobs (a Pegasus "ADAG").
type Workflow struct {
	// Name labels the workflow.
	Name string
	jobs map[string]*Job
	// order preserves insertion order for deterministic iteration.
	order []string
	// parents maps child ID → sorted set of parent IDs.
	parents map[string]map[string]bool
	// children maps parent ID → sorted set of child IDs.
	children map[string]map[string]bool
}

// New returns an empty workflow with the given name.
func New(name string) *Workflow {
	return &Workflow{
		Name:     name,
		jobs:     make(map[string]*Job),
		parents:  make(map[string]map[string]bool),
		children: make(map[string]map[string]bool),
	}
}

// NewJob creates a job with the given ID and transformation, adds it to the
// workflow and returns it. It panics on duplicate IDs (always a builder
// bug); use AddJob for error-returning insertion.
func (w *Workflow) NewJob(id, transformation string) *Job {
	j := &Job{ID: id, Transformation: transformation}
	if err := w.AddJob(j); err != nil {
		panic(err)
	}
	return j
}

// AddJob inserts a job, rejecting empty and duplicate IDs.
func (w *Workflow) AddJob(j *Job) error {
	if j.ID == "" {
		return fmt.Errorf("dax: job with empty ID")
	}
	if _, dup := w.jobs[j.ID]; dup {
		return fmt.Errorf("dax: duplicate job ID %q", j.ID)
	}
	w.jobs[j.ID] = j
	w.order = append(w.order, j.ID)
	return nil
}

// Job returns the job with the given ID, or nil.
func (w *Workflow) Job(id string) *Job { return w.jobs[id] }

// Len returns the number of jobs.
func (w *Workflow) Len() int { return len(w.jobs) }

// Jobs returns all jobs in insertion order.
func (w *Workflow) Jobs() []*Job {
	out := make([]*Job, 0, len(w.order))
	for _, id := range w.order {
		out = append(out, w.jobs[id])
	}
	return out
}

// Clone returns a deep copy of the workflow: jobs, edges and insertion
// order are all duplicated, so mutating either workflow never changes the
// other.
func (w *Workflow) Clone() *Workflow {
	out := New(w.Name)
	out.order = append([]string(nil), w.order...)
	for _, id := range w.order {
		out.jobs[id] = w.jobs[id].Clone()
	}
	copyEdges := func(src map[string]map[string]bool) map[string]map[string]bool {
		dst := make(map[string]map[string]bool, len(src))
		for id, set := range src {
			cp := make(map[string]bool, len(set))
			for k := range set {
				cp[k] = true
			}
			dst[id] = cp
		}
		return dst
	}
	out.parents = copyEdges(w.parents)
	out.children = copyEdges(w.children)
	return out
}

// AddDependency records that child may only start after parent finishes.
// Both jobs must already exist. Self-dependencies are rejected; duplicate
// edges are idempotent.
func (w *Workflow) AddDependency(parent, child string) error {
	if parent == child {
		return fmt.Errorf("dax: self-dependency on %q", parent)
	}
	if _, ok := w.jobs[parent]; !ok {
		return fmt.Errorf("dax: dependency references unknown parent %q", parent)
	}
	if _, ok := w.jobs[child]; !ok {
		return fmt.Errorf("dax: dependency references unknown child %q", child)
	}
	if w.parents[child] == nil {
		w.parents[child] = make(map[string]bool)
	}
	if w.children[parent] == nil {
		w.children[parent] = make(map[string]bool)
	}
	w.parents[child][parent] = true
	w.children[parent][child] = true
	return nil
}

// Parents returns the sorted parent IDs of a job.
func (w *Workflow) Parents(id string) []string { return sortedKeys(w.parents[id]) }

// Children returns the sorted child IDs of a job.
func (w *Workflow) Children(id string) []string { return sortedKeys(w.children[id]) }

// Roots returns jobs with no parents, in insertion order.
func (w *Workflow) Roots() []string {
	var out []string
	for _, id := range w.order {
		if len(w.parents[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Leaves returns jobs with no children, in insertion order.
func (w *Workflow) Leaves() []string {
	var out []string
	for _, id := range w.order {
		if len(w.children[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Edges returns the number of dependency edges.
func (w *Workflow) Edges() int {
	n := 0
	for _, ps := range w.parents {
		n += len(ps)
	}
	return n
}

// InferDependencies adds edges from every producer of a logical file to
// every consumer of that file. This is how Pegasus derives structure from
// data flow when explicit edges are omitted.
func (w *Workflow) InferDependencies() error {
	producer := make(map[string][]string)
	for _, id := range w.order {
		for _, u := range w.jobs[id].Uses {
			if u.Link == LinkOutput {
				producer[u.LFN] = append(producer[u.LFN], id)
			}
		}
	}
	for _, id := range w.order {
		for _, u := range w.jobs[id].Uses {
			if u.Link != LinkInput {
				continue
			}
			for _, p := range producer[u.LFN] {
				if p == id {
					return fmt.Errorf("dax: job %q both produces and consumes %q", id, u.LFN)
				}
				if err := w.AddDependency(p, id); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// TopoSort returns the job IDs in a dependency-respecting order (Kahn's
// algorithm; ties broken by insertion order, so the result is
// deterministic). It returns an error if the graph has a cycle.
func (w *Workflow) TopoSort() ([]string, error) {
	indeg := make(map[string]int, len(w.jobs))
	for _, id := range w.order {
		indeg[id] = len(w.parents[id])
	}
	var ready []string
	for _, id := range w.order {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	out := make([]string, 0, len(w.jobs))
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		out = append(out, id)
		for _, c := range w.Children(id) {
			indeg[c]--
			if indeg[c] == 0 {
				ready = append(ready, c)
			}
		}
	}
	if len(out) != len(w.jobs) {
		return nil, fmt.Errorf("dax: workflow %q contains a cycle (%d of %d jobs orderable)",
			w.Name, len(out), len(w.jobs))
	}
	return out, nil
}

// Validate checks structural invariants: non-empty job set, acyclicity, and
// that no logical file has more than one producer.
func (w *Workflow) Validate() error {
	if len(w.jobs) == 0 {
		return fmt.Errorf("dax: workflow %q has no jobs", w.Name)
	}
	if _, err := w.TopoSort(); err != nil {
		return err
	}
	producer := make(map[string]string)
	for _, id := range w.order {
		for _, u := range w.jobs[id].Uses {
			if u.Link != LinkOutput {
				continue
			}
			if prev, dup := producer[u.LFN]; dup {
				return fmt.Errorf("dax: file %q produced by both %q and %q", u.LFN, prev, id)
			}
			producer[u.LFN] = id
		}
	}
	return nil
}

// CriticalPathLength returns the length (in job count) of the longest
// chain in the DAG — a lower bound on sequential depth.
func (w *Workflow) CriticalPathLength() (int, error) {
	order, err := w.TopoSort()
	if err != nil {
		return 0, err
	}
	depth := make(map[string]int, len(order))
	longest := 0
	for _, id := range order {
		d := 1
		for _, p := range w.Parents(id) {
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		depth[id] = d
		if d > longest {
			longest = d
		}
	}
	return longest, nil
}

// Levels groups job IDs by depth: level 0 holds roots, level k holds jobs
// whose deepest parent is at level k-1. Used by horizontal task clustering.
func (w *Workflow) Levels() ([][]string, error) {
	order, err := w.TopoSort()
	if err != nil {
		return nil, err
	}
	depth := make(map[string]int, len(order))
	maxd := 0
	for _, id := range order {
		d := 0
		for _, p := range w.Parents(id) {
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		depth[id] = d
		if d > maxd {
			maxd = d
		}
	}
	levels := make([][]string, maxd+1)
	for _, id := range w.order {
		levels[depth[id]] = append(levels[depth[id]], id)
	}
	return levels, nil
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
