package dax

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// The on-disk format follows the shape of Pegasus DAX 3.x documents:
//
//	<adag name="blast2cap3">
//	  <job id="ID0000001" name="split" namespace="b2c3" version="1.0">
//	    <argument>-n 300 alignments.out</argument>
//	    <uses file="alignments.out" link="input" size="162529280"/>
//	    <profile namespace="pegasus" key="runtime">120</profile>
//	  </job>
//	  <child ref="ID0000002"><parent ref="ID0000001"/></child>
//	</adag>

type xmlADAG struct {
	XMLName xml.Name   `xml:"adag"`
	Name    string     `xml:"name,attr"`
	Jobs    []xmlJob   `xml:"job"`
	Childs  []xmlChild `xml:"child"`
}

type xmlJob struct {
	ID        string       `xml:"id,attr"`
	Name      string       `xml:"name,attr"`
	Namespace string       `xml:"namespace,attr,omitempty"`
	Version   string       `xml:"version,attr,omitempty"`
	Priority  int          `xml:"priority,attr,omitempty"`
	Argument  string       `xml:"argument,omitempty"`
	Uses      []xmlUse     `xml:"uses"`
	Profiles  []xmlProfile `xml:"profile"`
}

type xmlUse struct {
	File     string `xml:"file,attr"`
	Link     string `xml:"link,attr"`
	Size     int64  `xml:"size,attr,omitempty"`
	Transfer bool   `xml:"transfer,attr,omitempty"`
}

type xmlProfile struct {
	Namespace string `xml:"namespace,attr"`
	Key       string `xml:"key,attr"`
	Value     string `xml:",chardata"`
}

type xmlChild struct {
	Ref     string      `xml:"ref,attr"`
	Parents []xmlParent `xml:"parent"`
}

type xmlParent struct {
	Ref string `xml:"ref,attr"`
}

// WriteXML serializes the workflow as a DAX document.
func (w *Workflow) WriteXML(out io.Writer) error {
	doc := xmlADAG{Name: w.Name}
	for _, j := range w.Jobs() {
		xj := xmlJob{
			ID:        j.ID,
			Name:      j.Transformation,
			Namespace: j.Namespace,
			Version:   j.Version,
			Priority:  j.Priority,
			Argument:  strings.Join(j.Args, " "),
		}
		for _, u := range j.Uses {
			xj.Uses = append(xj.Uses, xmlUse{
				File: u.LFN, Link: u.Link.String(), Size: u.Size, Transfer: u.Transfer,
			})
		}
		keys := make([]string, 0, len(j.Profiles))
		for k := range j.Profiles {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ns, key, ok := strings.Cut(k, "::")
			if !ok {
				ns, key = "app", k
			}
			xj.Profiles = append(xj.Profiles, xmlProfile{Namespace: ns, Key: key, Value: j.Profiles[k]})
		}
		doc.Jobs = append(doc.Jobs, xj)
	}
	for _, id := range w.order {
		ps := w.Parents(id)
		if len(ps) == 0 {
			continue
		}
		c := xmlChild{Ref: id}
		for _, p := range ps {
			c.Parents = append(c.Parents, xmlParent{Ref: p})
		}
		doc.Childs = append(doc.Childs, c)
	}
	if _, err := io.WriteString(out, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(out)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("dax: encoding workflow %q: %w", w.Name, err)
	}
	_, err := io.WriteString(out, "\n")
	return err
}

// ReadXML parses a DAX document into a workflow and validates it.
func ReadXML(in io.Reader) (*Workflow, error) {
	var doc xmlADAG
	dec := xml.NewDecoder(in)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("dax: parsing DAX: %w", err)
	}
	w := New(doc.Name)
	for _, xj := range doc.Jobs {
		j := &Job{
			ID:             xj.ID,
			Transformation: xj.Name,
			Namespace:      xj.Namespace,
			Version:        xj.Version,
			Priority:       xj.Priority,
		}
		if xj.Argument != "" {
			j.Args = strings.Fields(xj.Argument)
		}
		for _, u := range xj.Uses {
			link := LinkInput
			if u.Link == "output" {
				link = LinkOutput
			} else if u.Link != "input" {
				return nil, fmt.Errorf("dax: job %q uses %q with bad link %q", xj.ID, u.File, u.Link)
			}
			j.Uses = append(j.Uses, Use{LFN: u.File, Link: link, Size: u.Size, Transfer: u.Transfer})
		}
		for _, p := range xj.Profiles {
			j.SetProfile(p.Namespace, p.Key, strings.TrimSpace(p.Value))
		}
		if err := w.AddJob(j); err != nil {
			return nil, err
		}
	}
	for _, c := range doc.Childs {
		for _, p := range c.Parents {
			if err := w.AddDependency(p.Ref, c.Ref); err != nil {
				return nil, err
			}
		}
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}
