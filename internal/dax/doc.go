// Package dax models abstract scientific workflows as directed acyclic
// graphs of jobs, in the style of Pegasus DAX (directed acyclic graph in
// XML) documents.
//
// An abstract workflow names logical transformations and logical files; it
// says nothing about where jobs run or where files live. The planner
// (package planner) maps an abstract workflow plus catalogs onto an
// executable workflow for a concrete site.
package dax
