package dax

import (
	"fmt"
	"testing"
)

// buildFuzzWorkflow interprets data as a little op-code program over a
// workflow: each pair of bytes adds a job, a dependency edge, or a file
// usage. The decoder is total — every byte string yields some workflow —
// so the fuzzer explores the full constructor surface including cycles,
// self-edges, duplicate files and disconnected jobs.
func buildFuzzWorkflow(data []byte) (*Workflow, []string) {
	w := New("fuzz")
	var ids []string
	for i := 0; i+1 < len(data); i += 2 {
		op, arg := data[i], data[i+1]
		switch op % 4 {
		case 0:
			id := fmt.Sprintf("j%d", arg%32)
			if w.Job(id) == nil {
				if err := w.AddJob(&Job{ID: id, Transformation: fmt.Sprintf("t%d", arg%4)}); err == nil {
					ids = append(ids, id)
				}
			}
		case 1:
			if len(ids) > 0 {
				parent := ids[int(arg>>4)%len(ids)]
				child := ids[int(arg&0x0f)%len(ids)]
				_ = w.AddDependency(parent, child) // self/dup edges may error; must not panic
			}
		case 2:
			if len(ids) > 0 {
				w.Job(ids[int(arg>>4)%len(ids)]).AddInput(fmt.Sprintf("f%d", arg%8), int64(arg))
			}
		case 3:
			if len(ids) > 0 {
				w.Job(ids[int(arg>>4)%len(ids)]).AddOutput(fmt.Sprintf("f%d", arg%8), int64(arg))
			}
		}
	}
	return w, ids
}

// FuzzWorkflowOps checks the DAG invariants under arbitrary construction
// sequences: TopoSort yields a dependency-respecting permutation exactly
// when the graph is acyclic, Validate implies a working TopoSort, and
// Levels/CriticalPathLength agree with the sort.
func FuzzWorkflowOps(f *testing.F) {
	for _, s := range [][]byte{
		{},
		{0, 1, 0, 2, 1, 0x01},
		{0, 1, 0, 2, 0, 3, 1, 0x01, 1, 0x12, 1, 0x20}, // includes a cycle attempt
		{0, 5, 2, 0x03, 3, 0x03},                      // producer/consumer of the same file
		{0, 1, 0, 2, 3, 0x04, 2, 0x14},                // data-flow edge material
		{0, 0, 1, 0x00},                               // self-dependency attempt
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		w, _ := buildFuzzWorkflow(data)
		if w.Len() == 0 {
			if err := w.Validate(); err == nil {
				t.Fatal("Validate accepted an empty workflow")
			}
			return
		}

		order, terr := w.TopoSort()
		verr := w.Validate()
		if terr != nil {
			// A cyclic graph must fail validation too.
			if verr == nil {
				t.Fatalf("TopoSort failed (%v) but Validate passed", terr)
			}
			return
		}
		if len(order) != w.Len() {
			t.Fatalf("TopoSort returned %d of %d jobs", len(order), w.Len())
		}
		pos := make(map[string]int, len(order))
		for i, id := range order {
			if w.Job(id) == nil {
				t.Fatalf("TopoSort emitted unknown job %q", id)
			}
			if _, dup := pos[id]; dup {
				t.Fatalf("TopoSort emitted %q twice", id)
			}
			pos[id] = i
		}
		for _, j := range w.Jobs() {
			for _, p := range w.Parents(j.ID) {
				if pos[p] >= pos[j.ID] {
					t.Fatalf("dependency inverted in TopoSort: %q (%d) before parent %q (%d)",
						j.ID, pos[j.ID], p, pos[p])
				}
			}
		}

		levels, err := w.Levels()
		if err != nil {
			t.Fatalf("Levels failed on acyclic graph: %v", err)
		}
		level := make(map[string]int)
		n := 0
		for li, ids := range levels {
			for _, id := range ids {
				level[id] = li
				n++
			}
		}
		if n != w.Len() {
			t.Fatalf("Levels covered %d of %d jobs", n, w.Len())
		}
		for _, j := range w.Jobs() {
			for _, p := range w.Parents(j.ID) {
				if level[p] >= level[j.ID] {
					t.Fatalf("level of %q (%d) not above parent %q (%d)",
						j.ID, level[j.ID], p, level[p])
				}
			}
		}

		cp, err := w.CriticalPathLength()
		if err != nil {
			t.Fatalf("CriticalPathLength failed on acyclic graph: %v", err)
		}
		if cp < 1 || cp > w.Len() {
			t.Fatalf("critical path %d outside [1, %d]", cp, w.Len())
		}
		if cp != len(levels) {
			t.Fatalf("critical path %d != level count %d", cp, len(levels))
		}

		// InferDependencies may reject (a job both producing and
		// consuming a file) or introduce a cycle that Validate then
		// reports — either way, no panic.
		if err := w.InferDependencies(); err == nil {
			_, _ = w.TopoSort()
		}
	})
}
