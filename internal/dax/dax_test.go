package dax

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func diamond(t *testing.T) *Workflow {
	t.Helper()
	w := New("diamond")
	w.NewJob("A", "preprocess").AddOutput("f.b1", 10).AddOutput("f.b2", 10)
	w.NewJob("B", "findrange").AddInput("f.b1", 10).AddOutput("f.c1", 5)
	w.NewJob("C", "findrange").AddInput("f.b2", 10).AddOutput("f.c2", 5)
	w.NewJob("D", "analyze").AddInput("f.c1", 5).AddInput("f.c2", 5).AddOutput("f.d", 1)
	for _, e := range [][2]string{{"A", "B"}, {"A", "C"}, {"B", "D"}, {"C", "D"}} {
		if err := w.AddDependency(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func TestRootsAndLeaves(t *testing.T) {
	w := diamond(t)
	if r := w.Roots(); len(r) != 1 || r[0] != "A" {
		t.Errorf("Roots = %v, want [A]", r)
	}
	if l := w.Leaves(); len(l) != 1 || l[0] != "D" {
		t.Errorf("Leaves = %v, want [D]", l)
	}
	if w.Edges() != 4 {
		t.Errorf("Edges = %d, want 4", w.Edges())
	}
}

func TestParentsChildrenSorted(t *testing.T) {
	w := diamond(t)
	if p := w.Parents("D"); len(p) != 2 || p[0] != "B" || p[1] != "C" {
		t.Errorf("Parents(D) = %v, want [B C]", p)
	}
	if c := w.Children("A"); len(c) != 2 || c[0] != "B" || c[1] != "C" {
		t.Errorf("Children(A) = %v, want [B C]", c)
	}
	if p := w.Parents("A"); p != nil {
		t.Errorf("Parents(A) = %v, want nil", p)
	}
}

func TestTopoSortRespectsDeps(t *testing.T) {
	w := diamond(t)
	order, err := w.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, j := range w.Jobs() {
		for _, p := range w.Parents(j.ID) {
			if pos[p] >= pos[j.ID] {
				t.Errorf("parent %s at %d not before child %s at %d", p, pos[p], j.ID, pos[j.ID])
			}
		}
	}
}

func TestCycleDetection(t *testing.T) {
	w := New("cyclic")
	w.NewJob("A", "t")
	w.NewJob("B", "t")
	_ = w.AddDependency("A", "B")
	_ = w.AddDependency("B", "A")
	if _, err := w.TopoSort(); err == nil {
		t.Fatal("cycle not detected")
	}
	if err := w.Validate(); err == nil {
		t.Fatal("Validate accepted a cyclic workflow")
	}
}

func TestValidateRejectsEmptyAndDupProducer(t *testing.T) {
	if err := New("empty").Validate(); err == nil {
		t.Error("empty workflow validated")
	}
	w := New("dup")
	w.NewJob("A", "t").AddOutput("x", 0)
	w.NewJob("B", "t").AddOutput("x", 0)
	if err := w.Validate(); err == nil || !strings.Contains(err.Error(), "produced by both") {
		t.Errorf("duplicate producer not rejected: %v", err)
	}
}

func TestAddJobErrors(t *testing.T) {
	w := New("w")
	if err := w.AddJob(&Job{}); err == nil {
		t.Error("empty ID accepted")
	}
	w.NewJob("A", "t")
	if err := w.AddJob(&Job{ID: "A"}); err == nil {
		t.Error("duplicate ID accepted")
	}
}

func TestAddDependencyErrors(t *testing.T) {
	w := New("w")
	w.NewJob("A", "t")
	if err := w.AddDependency("A", "A"); err == nil {
		t.Error("self-dependency accepted")
	}
	if err := w.AddDependency("A", "Z"); err == nil {
		t.Error("unknown child accepted")
	}
	if err := w.AddDependency("Z", "A"); err == nil {
		t.Error("unknown parent accepted")
	}
}

func TestInferDependencies(t *testing.T) {
	w := New("infer")
	w.NewJob("A", "gen").AddOutput("data", 0)
	w.NewJob("B", "use").AddInput("data", 0)
	w.NewJob("C", "use").AddInput("data", 0)
	if err := w.InferDependencies(); err != nil {
		t.Fatal(err)
	}
	if p := w.Parents("B"); len(p) != 1 || p[0] != "A" {
		t.Errorf("Parents(B) = %v, want [A]", p)
	}
	if p := w.Parents("C"); len(p) != 1 || p[0] != "A" {
		t.Errorf("Parents(C) = %v, want [A]", p)
	}
}

func TestInferDependenciesSelfLoop(t *testing.T) {
	w := New("selfloop")
	w.NewJob("A", "t").AddInput("x", 0).AddOutput("x", 0)
	if err := w.InferDependencies(); err == nil {
		t.Error("produce+consume of same file by one job accepted")
	}
}

func TestCriticalPathAndLevels(t *testing.T) {
	w := diamond(t)
	cp, err := w.CriticalPathLength()
	if err != nil {
		t.Fatal(err)
	}
	if cp != 3 {
		t.Errorf("critical path = %d, want 3", cp)
	}
	levels, err := w.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 3 {
		t.Fatalf("levels = %d, want 3", len(levels))
	}
	if len(levels[1]) != 2 {
		t.Errorf("level 1 has %d jobs, want 2 (B and C)", len(levels[1]))
	}
}

func TestProfiles(t *testing.T) {
	w := New("p")
	j := w.NewJob("A", "t").SetProfile("pegasus", "runtime", "120")
	if got := j.Profile("pegasus", "runtime"); got != "120" {
		t.Errorf("Profile = %q, want 120", got)
	}
	if got := j.Profile("pegasus", "missing"); got != "" {
		t.Errorf("missing profile = %q, want empty", got)
	}
}

func TestInputsOutputs(t *testing.T) {
	w := diamond(t)
	d := w.Job("D")
	if in := d.Inputs(); len(in) != 2 || in[0] != "f.c1" {
		t.Errorf("Inputs = %v", in)
	}
	if out := d.Outputs(); len(out) != 1 || out[0] != "f.d" {
		t.Errorf("Outputs = %v", out)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	w := diamond(t)
	w.Job("A").Args = []string{"-v", "input.txt"}
	w.Job("A").SetProfile("pegasus", "runtime", "60")
	w.Job("B").Priority = 5
	var buf bytes.Buffer
	if err := w.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != w.Name || got.Len() != w.Len() || got.Edges() != w.Edges() {
		t.Fatalf("round trip mismatch: name=%q len=%d edges=%d", got.Name, got.Len(), got.Edges())
	}
	a := got.Job("A")
	if a == nil || len(a.Args) != 2 || a.Args[0] != "-v" {
		t.Errorf("Args not preserved: %+v", a)
	}
	if a.Profile("pegasus", "runtime") != "60" {
		t.Errorf("profile not preserved: %v", a.Profiles)
	}
	if got.Job("B").Priority != 5 {
		t.Errorf("priority not preserved")
	}
	if len(got.Job("D").Inputs()) != 2 {
		t.Errorf("uses not preserved on D")
	}
	if p := got.Parents("D"); len(p) != 2 {
		t.Errorf("dependencies not preserved: Parents(D) = %v", p)
	}
}

func TestReadXMLRejectsBadLink(t *testing.T) {
	doc := `<adag name="x"><job id="A" name="t"><uses file="f" link="sideways"/></job></adag>`
	if _, err := ReadXML(strings.NewReader(doc)); err == nil {
		t.Error("bad link direction accepted")
	}
}

func TestReadXMLRejectsCycle(t *testing.T) {
	doc := `<adag name="x">
	<job id="A" name="t"/><job id="B" name="t"/>
	<child ref="A"><parent ref="B"/></child>
	<child ref="B"><parent ref="A"/></child></adag>`
	if _, err := ReadXML(strings.NewReader(doc)); err == nil {
		t.Error("cyclic DAX accepted")
	}
}

// Property: a fan-out/fan-in workflow of any width survives an XML round
// trip with identical structure.
func TestPropertyXMLRoundTripFanOut(t *testing.T) {
	f := func(widthRaw uint8) bool {
		width := int(widthRaw%64) + 1
		w := New("fan")
		w.NewJob("split", "split").AddOutput("in", 0)
		for i := 0; i < width; i++ {
			id := fmt.Sprintf("work%03d", i)
			w.NewJob(id, "work").AddInput("in", 0).AddOutput(fmt.Sprintf("out%03d", i), 0)
			_ = w.AddDependency("split", id)
		}
		w.NewJob("merge", "merge")
		for i := 0; i < width; i++ {
			w.Job("merge").AddInput(fmt.Sprintf("out%03d", i), 0)
			_ = w.AddDependency(fmt.Sprintf("work%03d", i), "merge")
		}
		var buf bytes.Buffer
		if err := w.WriteXML(&buf); err != nil {
			return false
		}
		got, err := ReadXML(&buf)
		if err != nil {
			return false
		}
		return got.Len() == w.Len() && got.Edges() == w.Edges() &&
			len(got.Roots()) == 1 && len(got.Leaves()) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: TopoSort of a random layered DAG is always a valid topological
// order.
func TestPropertyTopoSortValid(t *testing.T) {
	f := func(seed uint32) bool {
		w := New("rand")
		n := int(seed%30) + 2
		for i := 0; i < n; i++ {
			w.NewJob(fmt.Sprintf("J%02d", i), "t")
		}
		// Edges only from lower to higher index: acyclic by construction.
		s := seed
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s = s*1664525 + 1013904223
				if s%4 == 0 {
					_ = w.AddDependency(fmt.Sprintf("J%02d", i), fmt.Sprintf("J%02d", j))
				}
			}
		}
		order, err := w.TopoSort()
		if err != nil || len(order) != n {
			return false
		}
		pos := map[string]int{}
		for i, id := range order {
			pos[id] = i
		}
		for _, j := range w.Jobs() {
			for _, p := range w.Parents(j.ID) {
				if pos[p] >= pos[j.ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
