package pool

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16, 100} {
		const n = 37
		var counts [n]atomic.Int32
		if err := ForEach(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { t.Error("fn called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReturnsLowestFailedIndex(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 50, func(i int) error {
			if i == 7 || i == 30 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		// Indexes are claimed in order, so task 7 always runs; even if 30
		// also fails, the reported error is the lowest-numbered failure.
		if err == nil || err.Error() != "task 7 failed" {
			t.Errorf("workers=%d: err = %v, want task 7", workers, err)
		}
	}
}

func TestForEachStopsStartingAfterFailure(t *testing.T) {
	var started atomic.Int32
	err := ForEach(1, 1000, func(i int) error {
		started.Add(1)
		if i == 3 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := started.Load(); got != 4 {
		t.Errorf("serial run started %d tasks after failure at index 3, want 4", got)
	}
}
