// Package pool provides the bounded worker pool shared by the parallel
// experiment harness (internal/core) and the ensemble planner
// (internal/ensemble). Callers write results into index i of a pre-sized
// slice, which keeps collection race-free and ordering deterministic
// without a mutex: any worker count produces identical output.
package pool
