package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(0) … fn(n-1) across at most `workers` goroutines
// (workers <= 0 means runtime.NumCPU()). It waits for all started tasks,
// and returns the error of the lowest-numbered failed task. After the
// first failure no new tasks are started, but fn is otherwise invoked
// exactly once per index.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup

		mu sync.Mutex
		//pegflow:guarded mu
		firstIdx = -1
		//pegflow:guarded mu
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					failed.Store(true)
					mu.Lock()
					if firstIdx < 0 || i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	// All workers are done, but take the lock anyway: the happens-before
	// edge is wg.Wait, and the lock keeps the guarded-access discipline
	// mechanical (guardfield checks it) at the cost of one uncontended
	// lock per ForEach.
	mu.Lock()
	defer mu.Unlock()
	return firstErr
}
