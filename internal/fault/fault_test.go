package fault

import (
	"strings"
	"testing"
)

func intp(v int) *int { return &v }

func TestCompileEmpty(t *testing.T) {
	s, err := Compile(nil)
	if err != nil || s != nil {
		t.Fatalf("Compile(nil) = %v, %v; want nil, nil", s, err)
	}
	// A nil script answers Site calls harmlessly.
	if s.Site("osg") != nil {
		t.Fatal("nil script returned a timeline")
	}
}

func TestCompileOutage(t *testing.T) {
	s, err := Compile([]Spec{{Type: TypeOutage, Site: "osg", At: 100, Duration: 50}})
	if err != nil {
		t.Fatal(err)
	}
	tl := s.Site("osg")
	if tl == nil {
		t.Fatal("no timeline for osg")
	}
	if len(tl.Steps) != 2 || tl.Steps[0] != (CapacityStep{At: 100, Limit: 0}) ||
		tl.Steps[1] != (CapacityStep{At: 150, Limit: NoLimit}) {
		t.Fatalf("steps = %+v", tl.Steps)
	}
	if len(tl.Preempts) != 1 || tl.Preempts[0] != (Preempt{At: 100, Fraction: 1}) {
		t.Fatalf("preempts = %+v", tl.Preempts)
	}
}

func TestCompileDrainOutageHasNoPreempt(t *testing.T) {
	s, err := Compile([]Spec{{Type: TypeOutage, Site: "osg", At: 10, Duration: 5, Profile: ProfileDrain}})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Site("osg").Preempts; len(got) != 0 {
		t.Fatalf("drain outage produced preempts: %+v", got)
	}
}

func TestCompileSortsAndGroups(t *testing.T) {
	s, err := Compile([]Spec{
		{Type: TypeCapacity, Site: "osg", At: 300, Slots: intp(4)},
		{Type: TypeCapacity, Site: "osg", At: 100, Slots: intp(2)},
		{Type: TypeBlackout, Site: "cloud", At: 5, Duration: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Sites(); len(got) != 2 || got[0] != "cloud" || got[1] != "osg" {
		t.Fatalf("Sites() = %v", got)
	}
	steps := s.Site("osg").Steps
	if steps[0].At != 100 || steps[1].At != 300 {
		t.Fatalf("steps unsorted: %+v", steps)
	}
	if s.Site("missing") != nil {
		t.Fatal("timeline for undeclared site")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name  string
		spec  Spec
		field string
	}{
		{"no type", Spec{Site: "a", At: 0}, "type"},
		{"bad type", Spec{Type: "meteor", Site: "a"}, "type"},
		{"no site", Spec{Type: TypeBlackout, At: 0, Duration: 1}, "site"},
		{"negative at", Spec{Type: TypeBlackout, Site: "a", At: -1, Duration: 1}, "at"},
		{"zero duration outage", Spec{Type: TypeOutage, Site: "a", At: 0}, "duration"},
		{"capacity without slots", Spec{Type: TypeCapacity, Site: "a"}, "slots"},
		{"capacity with duration", Spec{Type: TypeCapacity, Site: "a", Duration: 5, Slots: intp(1)}, "duration"},
		{"negative slots", Spec{Type: TypeCapacity, Site: "a", Slots: intp(-1)}, "slots"},
		{"profile on storm", Spec{Type: TypeStorm, Site: "a", Duration: 1, Profile: ProfileDrain}, "profile"},
		{"bad profile", Spec{Type: TypeOutage, Site: "a", Duration: 1, Profile: "explode"}, "profile"},
		{"kill fraction over 1", Spec{Type: TypeStorm, Site: "a", Duration: 1, KillFraction: 1.5}, "kill_fraction"},
		{"rate on outage", Spec{Type: TypeOutage, Site: "a", Duration: 1, Rate: 0.5}, "rate"},
		{"multiplier on blackout", Spec{Type: TypeBlackout, Site: "a", Duration: 1, Multiplier: 2}, "multiplier"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := tc.spec.Validate()
			if len(errs) == 0 {
				t.Fatal("expected a validation error")
			}
			found := false
			for _, e := range errs {
				if e.Field == tc.field {
					found = true
				}
			}
			if !found {
				t.Fatalf("no error on field %q, got %+v", tc.field, errs)
			}
		})
	}
}

func TestCompileReportsIndexedError(t *testing.T) {
	_, err := Compile([]Spec{
		{Type: TypeBlackout, Site: "a", At: 0, Duration: 1},
		{Type: TypeOutage, Site: "a", At: 0},
	})
	if err == nil || !strings.Contains(err.Error(), "faults[1].duration") {
		t.Fatalf("err = %v; want faults[1].duration mention", err)
	}
}

func TestHazardAtComposesWindows(t *testing.T) {
	tl := &Timeline{Hazards: []HazardWindow{
		{Start: 10, End: 20, Multiplier: 3, Rate: 0.1},
		{Start: 15, End: 30, Multiplier: 2},
	}}
	if got := tl.HazardAt(0.5, 5); got != 0.5 {
		t.Fatalf("outside windows: %v", got)
	}
	if got := tl.HazardAt(0.5, 12); got != 0.5*3+0.1 {
		t.Fatalf("first window: %v", got)
	}
	if got := tl.HazardAt(0.5, 17); got != 0.5*3*2+0.1 {
		t.Fatalf("overlap: %v", got)
	}
	if got := tl.HazardAt(0.5, 25); got != 0.5*2 {
		t.Fatalf("second window: %v", got)
	}
	// End is exclusive.
	if got := tl.HazardAt(0.5, 30); got != 0.5 {
		t.Fatalf("at end: %v", got)
	}
}

func TestHazardBreakpoints(t *testing.T) {
	tl := &Timeline{Hazards: []HazardWindow{
		{Start: 10, End: 20, Multiplier: 2},
		{Start: 15, End: 40, Multiplier: 2},
	}}
	got := tl.HazardBreakpoints(nil, 12, 35)
	want := []float64{15, 20}
	if len(got) != len(want) {
		t.Fatalf("breakpoints = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("breakpoints = %v, want %v", got, want)
		}
	}
	if got := tl.HazardBreakpoints(nil, 0, 5); len(got) != 0 {
		t.Fatalf("no-overlap breakpoints = %v", got)
	}
}

func TestDelayThroughBlackouts(t *testing.T) {
	tl := &Timeline{Blackouts: []Window{
		{Start: 10, End: 20},
		{Start: 20, End: 25},
		{Start: 40, End: 50},
	}}
	if got := tl.DelayThroughBlackouts(5); got != 5 {
		t.Fatalf("before windows: %v", got)
	}
	// Lands in the first window, cascades through the adjacent one.
	if got := tl.DelayThroughBlackouts(12); got != 25 {
		t.Fatalf("cascade: %v", got)
	}
	if got := tl.DelayThroughBlackouts(25); got != 25 {
		t.Fatalf("at exclusive end: %v", got)
	}
	if got := tl.DelayThroughBlackouts(45); got != 50 {
		t.Fatalf("last window: %v", got)
	}
}

func TestStormDefaultsMultiplierToOne(t *testing.T) {
	s, err := Compile([]Spec{{Type: TypeStorm, Site: "a", At: 0, Duration: 10, Rate: 0.2, KillFraction: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	tl := s.Site("a")
	if tl.Hazards[0].Multiplier != 1 || tl.Hazards[0].Rate != 0.2 {
		t.Fatalf("hazard = %+v", tl.Hazards[0])
	}
	if len(tl.Preempts) != 1 || tl.Preempts[0].Fraction != 0.5 {
		t.Fatalf("preempts = %+v", tl.Preempts)
	}
}
