package fault

import (
	"fmt"
	"math"
	"sort"
)

// Fault types accepted in a scenario document's `faults` section.
const (
	// TypeOutage takes a site fully down at At and restores it At+Duration
	// later. The eviction profile decides what happens to occupied slots.
	TypeOutage = "outage"
	// TypeCapacity steps the site's fault-imposed slot limit at At. A step
	// has no automatic recovery: capacity stays limited until a later step
	// raises it.
	TypeCapacity = "capacity"
	// TypeStorm multiplies (and/or adds to) the site's eviction hazard over
	// [At, At+Duration), optionally evicting a fraction of the occupied
	// slots the moment it begins — a correlated preemption burst.
	TypeStorm = "storm"
	// TypeBlackout holds job dispatch over [At, At+Duration): attempts
	// whose dispatch would land inside the window are released at its end.
	TypeBlackout = "blackout"
)

// Eviction profiles for TypeOutage.
const (
	// ProfilePreempt evicts every occupied slot when the outage begins —
	// the glidein-vanishes case.
	ProfilePreempt = "preempt"
	// ProfileDrain lets running attempts finish while refusing new slot
	// grants — an administrative drain.
	ProfileDrain = "drain"
)

// Spec is one declared fault, as written in a scenario document. All
// times are seconds of virtual (simulation) time.
type Spec struct {
	// Type is one of outage, capacity, storm or blackout.
	Type string `json:"type"`
	// Site names the platform the fault applies to.
	Site string `json:"site"`
	// At is when the fault begins.
	At float64 `json:"at"`
	// Duration bounds outage/storm/blackout windows; capacity steps have
	// none (they persist until the next step).
	Duration float64 `json:"duration,omitempty"`
	// Profile selects the outage eviction profile: preempt (default) or
	// drain.
	Profile string `json:"profile,omitempty"`
	// Slots is the capacity step's new fault-imposed slot limit (>= 0; a
	// value at or above the configured capacity removes the limit).
	Slots *int `json:"slots,omitempty"`
	// Multiplier scales the site's base eviction hazard during a storm
	// (default 1 = unchanged).
	Multiplier float64 `json:"multiplier,omitempty"`
	// Rate adds an absolute hazard (events per occupied second) during a
	// storm, on top of the multiplied base — the only way to storm a site
	// whose base hazard is zero.
	Rate float64 `json:"rate,omitempty"`
	// KillFraction evicts this fraction of occupied slots when the storm
	// begins (each occupied slot independently, in [0, 1]).
	KillFraction float64 `json:"kill_fraction,omitempty"`
}

// FieldError is one validation finding, addressed by the spec field that
// caused it so callers can prefix their own document paths.
type FieldError struct {
	// Field is the JSON field name ("type", "at", ...).
	Field string
	// Msg is the human-readable problem.
	Msg string
}

// Validate checks one spec in isolation (site existence is the caller's
// concern — only the scenario knows the declared pool).
func (s *Spec) Validate() []FieldError {
	var errs []FieldError
	ef := func(field, format string, args ...any) {
		errs = append(errs, FieldError{Field: field, Msg: fmt.Sprintf(format, args...)})
	}
	switch s.Type {
	case TypeOutage, TypeStorm, TypeBlackout:
		if s.Duration <= 0 {
			ef("duration", "%s needs a positive duration, got %v", s.Type, s.Duration)
		}
	case TypeCapacity:
		if s.Slots == nil {
			ef("slots", "capacity step needs an explicit slot limit")
		}
		if s.Duration != 0 {
			ef("duration", "capacity steps persist until the next step; use an outage for a timed window")
		}
	case "":
		ef("type", "fault needs a type (outage, capacity, storm or blackout)")
	default:
		ef("type", "unknown fault type %q (have outage, capacity, storm, blackout)", s.Type)
	}
	if s.Site == "" {
		ef("site", "fault needs a site")
	}
	if s.At < 0 || math.IsNaN(s.At) || math.IsInf(s.At, 0) {
		ef("at", "must be a non-negative time, got %v", s.At)
	}
	if s.Duration < 0 || math.IsNaN(s.Duration) || math.IsInf(s.Duration, 0) {
		ef("duration", "must be a non-negative duration, got %v", s.Duration)
	}
	if s.Profile != "" {
		if s.Type != TypeOutage {
			ef("profile", "profile only applies to outages")
		} else if s.Profile != ProfilePreempt && s.Profile != ProfileDrain {
			ef("profile", "unknown profile %q (have preempt, drain)", s.Profile)
		}
	}
	if s.Slots != nil {
		if s.Type != TypeCapacity {
			ef("slots", "slots only applies to capacity steps")
		} else if *s.Slots < 0 {
			ef("slots", "must be non-negative, got %d", *s.Slots)
		}
	}
	if s.Multiplier != 0 && s.Type != TypeStorm {
		ef("multiplier", "multiplier only applies to storms")
	}
	if s.Multiplier < 0 {
		ef("multiplier", "must be non-negative, got %v", s.Multiplier)
	}
	if s.Rate != 0 && s.Type != TypeStorm {
		ef("rate", "rate only applies to storms")
	}
	if s.Rate < 0 || math.IsNaN(s.Rate) || math.IsInf(s.Rate, 0) {
		ef("rate", "must be a non-negative hazard, got %v", s.Rate)
	}
	if s.KillFraction != 0 && s.Type != TypeStorm {
		ef("kill_fraction", "kill_fraction only applies to storms")
	}
	if s.KillFraction < 0 || s.KillFraction > 1 || math.IsNaN(s.KillFraction) {
		ef("kill_fraction", "must be in [0, 1], got %v", s.KillFraction)
	}
	return errs
}

// NoLimit is the capacity-step value meaning "no fault-imposed limit".
const NoLimit = math.MaxInt32

// CapacityStep sets the fault-imposed slot limit of a site at a point in
// virtual time. The effective capacity is min(ramp capacity, limit).
type CapacityStep struct {
	At    float64
	Limit int
}

// Preempt evicts occupied slots at a point in virtual time: each occupied
// slot is evicted independently with probability Fraction (1 = all).
type Preempt struct {
	At       float64
	Fraction float64
}

// HazardWindow scales the eviction hazard over [Start, End): effective
// hazard = base*Multiplier + Rate while inside the window. Overlapping
// windows compose by applying every matching window's multiplier and
// summing their added rates.
type HazardWindow struct {
	Start, End float64
	Multiplier float64
	Rate       float64
}

// Window is a half-open interval [Start, End) of virtual time.
type Window struct {
	Start, End float64
}

// Timeline is the compiled fault schedule of one site, ready to install
// on a simulated platform. All slices are sorted by start time.
type Timeline struct {
	// Site names the platform.
	Site string
	// Steps are the fault-imposed capacity limits in time order. An
	// outage contributes a Limit-0 step and a NoLimit recovery step.
	Steps []CapacityStep
	// Preempts are the correlated eviction points in time order.
	Preempts []Preempt
	// Hazards are the storm windows in start order.
	Hazards []HazardWindow
	// Blackouts are the dispatch-hold windows in start order.
	Blackouts []Window
}

// Script is a compiled fault schedule: one Timeline per faulted site.
type Script struct {
	byName map[string]*Timeline
	order  []string
}

// Sites returns the faulted site names in sorted order.
func (s *Script) Sites() []string {
	out := append([]string(nil), s.order...)
	sort.Strings(out)
	return out
}

// Site returns the timeline for the named site, or nil when the script
// does not touch it.
func (s *Script) Site(name string) *Timeline {
	if s == nil {
		return nil
	}
	return s.byName[name]
}

// Compile validates and compiles a fault list into per-site timelines.
// An empty list compiles to nil: no script, no overhead.
func Compile(specs []Spec) (*Script, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	for i := range specs {
		if errs := specs[i].Validate(); len(errs) > 0 {
			return nil, fmt.Errorf("fault: faults[%d].%s: %s", i, errs[0].Field, errs[0].Msg)
		}
	}
	s := &Script{byName: make(map[string]*Timeline)}
	tl := func(site string) *Timeline {
		t := s.byName[site]
		if t == nil {
			t = &Timeline{Site: site}
			s.byName[site] = t
			s.order = append(s.order, site)
		}
		return t
	}
	for i := range specs {
		sp := &specs[i]
		t := tl(sp.Site)
		switch sp.Type {
		case TypeOutage:
			t.Steps = append(t.Steps,
				CapacityStep{At: sp.At, Limit: 0},
				CapacityStep{At: sp.At + sp.Duration, Limit: NoLimit})
			if sp.Profile != ProfileDrain {
				t.Preempts = append(t.Preempts, Preempt{At: sp.At, Fraction: 1})
			}
		case TypeCapacity:
			t.Steps = append(t.Steps, CapacityStep{At: sp.At, Limit: *sp.Slots})
		case TypeStorm:
			mult := sp.Multiplier
			if mult == 0 {
				mult = 1
			}
			t.Hazards = append(t.Hazards, HazardWindow{
				Start: sp.At, End: sp.At + sp.Duration, Multiplier: mult, Rate: sp.Rate,
			})
			if sp.KillFraction > 0 {
				t.Preempts = append(t.Preempts, Preempt{At: sp.At, Fraction: sp.KillFraction})
			}
		case TypeBlackout:
			t.Blackouts = append(t.Blackouts, Window{Start: sp.At, End: sp.At + sp.Duration})
		}
	}
	for _, t := range s.byName {
		// Stable sorts: faults declared at the same instant apply in
		// declaration order, so the document fully determines the schedule.
		sort.SliceStable(t.Steps, func(i, j int) bool { return t.Steps[i].At < t.Steps[j].At })
		sort.SliceStable(t.Preempts, func(i, j int) bool { return t.Preempts[i].At < t.Preempts[j].At })
		sort.SliceStable(t.Hazards, func(i, j int) bool { return t.Hazards[i].Start < t.Hazards[j].Start })
		sort.SliceStable(t.Blackouts, func(i, j int) bool { return t.Blackouts[i].Start < t.Blackouts[j].Start })
	}
	return s, nil
}

// HazardAt returns the effective eviction hazard at time t given a base
// hazard: every window containing t applies its multiplier to the base
// and adds its rate.
func (t *Timeline) HazardAt(base, at float64) float64 {
	h := base
	add := 0.0
	for _, w := range t.Hazards {
		if at >= w.Start && at < w.End {
			h *= w.Multiplier
			add += w.Rate
		}
	}
	return h + add
}

// HazardBreakpoints appends to dst the window boundaries strictly inside
// (from, to), sorted ascending — the segment edges a piecewise-constant
// hazard integration must split on.
func (t *Timeline) HazardBreakpoints(dst []float64, from, to float64) []float64 {
	for _, w := range t.Hazards {
		if w.Start > from && w.Start < to {
			dst = append(dst, w.Start)
		}
		if w.End > from && w.End < to {
			dst = append(dst, w.End)
		}
	}
	sort.Float64s(dst)
	return dst
}

// DelayThroughBlackouts pushes a dispatch landing inside a blackout
// window to that window's end, cascading through windows that begin
// before the pushed time.
func (t *Timeline) DelayThroughBlackouts(at float64) float64 {
	for _, w := range t.Blackouts {
		if at >= w.Start && at < w.End {
			at = w.End
		}
	}
	return at
}
