// Package fault compiles declarative fault scripts — timed site outages,
// capacity steps, correlated eviction storms, and dispatch blackouts —
// into per-site timelines that the simulated platform schedules as
// discrete events. Compilation is pure and deterministic: the same spec
// list always yields the same schedule, and all randomness (which slots a
// storm kills, when a storm-era eviction fires) is drawn downstream from
// the run's seeded rng streams, never from this package.
package fault
