// Package workflow builds the blast2cap3 scientific workflow of the paper
// (Fig. 2 for Sandhills, Fig. 3 for OSG) as an abstract DAX, and provides
// the calibrated workload and cost models that let the simulator reproduce
// the paper's measurements at full scale.
//
// Workflow shape (paper §V.C):
//
//	create_list_transcripts  create_list_alignments
//	        │                        │
//	        │                      split ──▶ protein_1..n
//	        └──────┬─────────────────┘
//	               ▼
//	      run_cap3_1 … run_cap3_n     (one per cluster chunk, parallel)
//	               │
//	             merge
//	               │
//	        merge_not_joined
//
// The OSG variant (Fig. 3) has the same shape; the download/install steps
// (red rectangles) are injected by the planner from the transformation
// catalog, not drawn into the DAX.
package workflow
