package workflow

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"pegflow/internal/planner"
)

func TestPaperWorkloadScale(t *testing.T) {
	w := PaperWorkload(42)
	if len(w.Clusters) != 40000 {
		t.Errorf("clusters = %d", len(w.Clusters))
	}
	total := 0
	for _, c := range w.Clusters {
		total += c.Transcripts
		if c.Transcripts < 1 {
			t.Fatal("cluster with no transcripts")
		}
		if c.Bases < c.Transcripts {
			t.Fatal("cluster with fewer bases than transcripts")
		}
	}
	// ≈240k clustered transcripts out of the dataset's 236,529 total
	// (clusters overlap slightly with redundancy; same order).
	if total < 200000 || total > 280000 {
		t.Errorf("clustered transcripts = %d, want ≈240k", total)
	}
	if w.TotalTranscripts != 236529 {
		t.Errorf("TotalTranscripts = %d", w.TotalTranscripts)
	}
	if w.TranscriptBytes != 404<<20 || w.AlignmentBytes != 155<<20 {
		t.Errorf("input sizes = %d/%d", w.TranscriptBytes, w.AlignmentBytes)
	}
	// Sizes nonincreasing (rank-size law).
	for i := 1; i < len(w.Clusters); i++ {
		if w.Clusters[i].Transcripts > w.Clusters[i-1].Transcripts {
			t.Fatal("cluster sizes not sorted descending")
		}
	}
}

func TestSerialSecondsNearHundredHours(t *testing.T) {
	w := PaperWorkload(42)
	c := DefaultCostModel()
	h := c.SerialSeconds(w) / 3600
	if h < 95 || h > 105 {
		t.Errorf("serial = %.1f h, want ≈100 h (paper §V.B)", h)
	}
}

func TestLargestClusterIsMakespanFloor(t *testing.T) {
	w := PaperWorkload(42)
	c := DefaultCostModel()
	wmax := c.ClusterSeconds(w.Clusters[0])
	if wmax < 8000 || wmax > 11000 {
		t.Errorf("largest cluster = %.0f s, want ≈9,300 s (DESIGN.md §4)", wmax)
	}
}

func TestChunkSecondsConservation(t *testing.T) {
	w := PaperWorkload(42)
	c := DefaultCostModel()
	var serialCAP3 float64
	for _, cl := range w.Clusters {
		serialCAP3 += c.ClusterSeconds(cl)
	}
	for _, n := range []int{1, 10, 100, 300, 500} {
		chunks, err := c.ChunkSeconds(w, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(chunks) != n {
			t.Fatalf("n=%d: got %d chunks", n, len(chunks))
		}
		var sum float64
		for _, v := range chunks {
			sum += v
		}
		// Sum of chunk work = serial CAP3 work + n per-task bases.
		want := serialCAP3 + float64(n)*c.TaskBase
		if math.Abs(sum-want)/want > 1e-9 {
			t.Errorf("n=%d: chunk sum %.1f, want %.1f", n, sum, want)
		}
	}
}

func TestChunkSecondsMaxShrinksThenPlateaus(t *testing.T) {
	w := PaperWorkload(42)
	c := DefaultCostModel()
	maxAt := func(n int) float64 {
		chunks, err := c.ChunkSeconds(w, n)
		if err != nil {
			t.Fatal(err)
		}
		m := 0.0
		for _, v := range chunks {
			if v > m {
				m = v
			}
		}
		return m
	}
	m10, m100, m300 := maxAt(10), maxAt(100), maxAt(300)
	if m100 >= m10/2 {
		t.Errorf("max chunk n=100 (%.0f) not far below n=10 (%.0f)", m100, m10)
	}
	wmax := c.ClusterSeconds(w.Clusters[0])
	// Plateau: the largest cluster is an unsplittable floor.
	if m300 < wmax {
		t.Errorf("max chunk n=300 (%.0f) below largest-cluster floor (%.0f)", m300, wmax)
	}
	if m300 > 1.5*wmax {
		t.Errorf("max chunk n=300 (%.0f) too far above floor (%.0f)", m300, wmax)
	}
}

func TestChunkSecondsRejectsBadN(t *testing.T) {
	c := DefaultCostModel()
	if _, err := c.ChunkSeconds(PaperWorkload(1), 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := c.ChunkSeconds(PaperWorkload(1), -3); err == nil {
		t.Error("negative n accepted")
	}
}

func TestBuildDAXShapeFig2(t *testing.T) {
	for _, n := range []int{1, 10, 300} {
		wf, err := BuildDAX(BuilderConfig{N: n, Workload: PaperWorkload(42)})
		if err != nil {
			t.Fatal(err)
		}
		// Jobs: 2 lists + split + n cap3 + merge + merge_not_joined.
		if wf.Len() != n+5 {
			t.Errorf("n=%d: %d jobs, want %d", n, wf.Len(), n+5)
		}
		if err := wf.Validate(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		// Roots: the two list tasks (paper: "independent of each other,
		// and can be run at the same time").
		roots := wf.Roots()
		if len(roots) != 2 {
			t.Errorf("n=%d: roots = %v", n, roots)
		}
		// Leaves: merge_not_joined only.
		leaves := wf.Leaves()
		if len(leaves) != 1 || leaves[0] != "merge_not_joined" {
			t.Errorf("n=%d: leaves = %v", n, leaves)
		}
		// Each run_cap3 depends on split and create_list_transcripts.
		p := wf.Parents("run_cap3_0001")
		if len(p) != 2 || p[0] != "create_list_transcripts" || p[1] != "split" {
			t.Errorf("n=%d: cap3 parents = %v", n, p)
		}
		// merge fans in all n cap3 tasks.
		if got := len(wf.Parents("merge")); got != n {
			t.Errorf("n=%d: merge has %d parents", n, got)
		}
		// Critical path: list → split → cap3 → merge → merge_not_joined.
		cp, err := wf.CriticalPathLength()
		if err != nil {
			t.Fatal(err)
		}
		if cp != 5 {
			t.Errorf("n=%d: critical path = %d, want 5", n, cp)
		}
	}
}

func TestBuildDAXRuntimesSumNearSerial(t *testing.T) {
	w := PaperWorkload(42)
	c := DefaultCostModel()
	wf, err := BuildDAX(BuilderConfig{N: 300, Workload: w, Cost: c})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, j := range wf.Jobs() {
		rt := j.Profile("pegasus", "runtime")
		if rt == "" {
			t.Fatalf("job %s missing runtime profile in simulated mode", j.ID)
		}
		var v float64
		if _, err := fmt.Sscanf(rt, "%f", &v); err != nil {
			t.Fatal(err)
		}
		sum += v
	}
	serial := c.SerialSeconds(w)
	// The decomposed work should be close to but below the serial run
	// (which carries the documented serial overhead factor).
	if sum >= serial {
		t.Errorf("workflow work %.0f ≥ serial %.0f", sum, serial)
	}
	if sum < 0.7*serial {
		t.Errorf("workflow work %.0f implausibly below serial %.0f", sum, serial)
	}
}

func TestBuildDAXRealModeOmitsRuntimes(t *testing.T) {
	wf, err := BuildDAX(BuilderConfig{N: 4}) // zero workload = real mode
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range wf.Jobs() {
		if j.Profile("pegasus", "runtime") != "" {
			t.Errorf("job %s has runtime profile in real mode", j.ID)
		}
	}
}

func TestBuildDAXRejectsBadN(t *testing.T) {
	if _, err := BuildDAX(BuilderConfig{N: 0}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := BuildDAX(BuilderConfig{N: -1}); err == nil {
		t.Error("n=-1 accepted")
	}
}

func TestBuildSerialDAX(t *testing.T) {
	w := PaperWorkload(42)
	wf, err := BuildSerialDAX(w, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if wf.Len() != 1 {
		t.Fatalf("serial DAX has %d jobs", wf.Len())
	}
	j := wf.Jobs()[0]
	if j.Transformation != TrSerial {
		t.Errorf("transformation = %s", j.Transformation)
	}
	if j.Profile("pegasus", "runtime") == "" {
		t.Error("serial job missing runtime")
	}
}

func TestPaperCatalogsTwoWorlds(t *testing.T) {
	w := PaperWorkload(42)
	cats, err := PaperCatalogs(w, 300, 600)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := cats.Sites.Lookup("sandhills")
	if err != nil || !sh.SharedSoftware {
		t.Fatalf("sandhills site: %+v, %v", sh, err)
	}
	osg, err := cats.Sites.Lookup("osg")
	if err != nil || osg.SharedSoftware {
		t.Fatalf("osg site: %+v, %v", osg, err)
	}
	if osg.Slots <= sh.Slots {
		t.Errorf("OSG slots %d not above Sandhills %d (paper: OSG has more resources)",
			osg.Slots, sh.Slots)
	}
	for _, tr := range Transformations() {
		a, err := cats.Transformations.Lookup(tr, "sandhills")
		if err != nil || !a.Installed {
			t.Errorf("%s at sandhills: %+v, %v", tr, a, err)
		}
		b, err := cats.Transformations.Lookup(tr, "osg")
		if err != nil || b.Installed || b.InstallBytes == 0 {
			t.Errorf("%s at osg: %+v, %v", tr, b, err)
		}
	}
	// CAP3-bearing tasks carry the larger payload.
	cap3, _ := cats.Transformations.Lookup(TrRunCAP3, "osg")
	list, _ := cats.Transformations.Lookup(TrListTranscripts, "osg")
	if cap3.InstallBytes <= list.InstallBytes {
		t.Errorf("run_cap3 install %d not above list task %d", cap3.InstallBytes, list.InstallBytes)
	}
	for _, lfn := range []string{"transcripts.fasta", "alignments.out"} {
		if !cats.Replicas.Has(lfn) {
			t.Errorf("no replica for %s", lfn)
		}
	}
}

func TestDAXPlansOnBothSites(t *testing.T) {
	w := PaperWorkload(42)
	cats, err := PaperCatalogs(w, 300, 600)
	if err != nil {
		t.Fatal(err)
	}
	wf, err := BuildDAX(BuilderConfig{N: 10, Workload: w})
	if err != nil {
		t.Fatal(err)
	}
	sand, err := planner.New(wf, cats, planner.Options{Site: "sandhills"})
	if err != nil {
		t.Fatal(err)
	}
	osg, err := planner.New(wf, cats, planner.Options{Site: "osg"})
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 2 vs Fig. 3: identical shape, install steps only on OSG.
	if sand.Graph.Len() != osg.Graph.Len() {
		t.Errorf("plan sizes differ: %d vs %d", sand.Graph.Len(), osg.Graph.Len())
	}
	for _, j := range sand.Jobs() {
		if j.NeedsInstall {
			t.Errorf("sandhills job %s needs install", j.ID)
		}
	}
	installCount := 0
	for _, j := range osg.Jobs() {
		if j.NeedsInstall {
			installCount++
		}
	}
	if installCount != osg.Graph.Len() {
		t.Errorf("only %d/%d OSG jobs carry install steps", installCount, osg.Graph.Len())
	}
}

// Property: chunk assignment is deterministic for a seed and total work is
// conserved for any n.
func TestPropertyChunkAssignment(t *testing.T) {
	w := PaperWorkload(7)
	c := DefaultCostModel()
	base, err := c.ChunkSeconds(w, 17)
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.ChunkSeconds(w, 17)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if base[i] != again[i] {
			t.Fatal("chunk assignment not deterministic")
		}
	}
	f := func(nRaw uint16) bool {
		n := int(nRaw%700) + 1
		chunks, err := c.ChunkSeconds(w, n)
		if err != nil || len(chunks) != n {
			return false
		}
		for _, v := range chunks {
			if v < 0 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
