package workflow

import (
	"fmt"
	"math"
	"sync"

	"pegflow/internal/catalog"
	"pegflow/internal/dax"
	"pegflow/internal/planner"
	"pegflow/internal/sim/rng"
)

// Transformation names used by the blast2cap3 workflow.
const (
	TrListTranscripts = "create_list_transcripts"
	TrListAlignments  = "create_list_alignments"
	TrSplit           = "split"
	TrRunCAP3         = "run_cap3"
	TrMerge           = "merge"
	TrMergeNotJoined  = "merge_not_joined"
	// TrSerial is the monolithic serial blast2cap3 run (the baseline).
	TrSerial = "blast2cap3_serial"
)

// Transformations lists the workflow's logical executables (excluding the
// serial baseline).
func Transformations() []string {
	return []string{
		TrListTranscripts, TrListAlignments, TrSplit, TrRunCAP3, TrMerge, TrMergeNotJoined,
	}
}

// ClusterSpec describes one protein cluster of transcripts: the unit of
// CAP3 work that blast2cap3 never splits across chunks.
type ClusterSpec struct {
	// Transcripts is the number of transcripts sharing the protein hit.
	Transcripts int
	// Bases is the total nucleotide count across those transcripts.
	Bases int
}

// Workload describes a blast2cap3 input dataset at the granularity the
// simulation needs.
type Workload struct {
	// Name labels the dataset.
	Name string
	// Clusters holds the protein clusters in descending size order.
	Clusters []ClusterSpec
	// TotalTranscripts counts all transcripts including unclustered ones.
	TotalTranscripts int
	// TranscriptBytes and AlignmentBytes are the input file sizes
	// ("transcripts.fasta" 404 MB, "alignments.out" 155 MB).
	TranscriptBytes, AlignmentBytes int64
	// Seed drives the cluster→chunk assignment permutation.
	Seed uint64
	// Params records the rank-size law Clusters was synthesized from; it
	// is the workload's seed-independent fingerprint, used to memoize
	// cluster synthesis and cost-model sums and to key the plan cache
	// (package core). It is zero for hand-built workloads, which are
	// never cached. When Params is set, Clusters is shared with every
	// other workload of the same Params and must be treated as read-only;
	// code that hand-edits Clusters must clear Params.
	Params WorkloadParams
}

// PaperWorkload returns the synthetic equivalent of the paper's Triticum
// urartu dataset (NCBI BioProject PRJNA191053 after assembly): 236,529
// transcripts (404 MB FASTA) and 1,717,454 BLASTX protein hits (155 MB
// tabular). Cluster sizes follow a Zipf rank-size law m(r) = 600/√r over
// 40,000 protein clusters, which yields ≈240k clustered transcripts and —
// through the CAP3 cost model — the heavy-tailed chunk-work distribution
// that explains the paper's plateau at n ≥ 100 (DESIGN.md §4).
func PaperWorkload(seed uint64) Workload {
	return CustomWorkload(WorkloadParams{
		NumClusters:    40000,
		MaxClusterSize: 600,
		SizeExponent:   0.5,
		MeanReadLen:    1500,
	}, seed)
}

// WorkloadParams shapes a synthetic workload's cluster-size rank law
// size(r) = MaxClusterSize / r^SizeExponent.
type WorkloadParams struct {
	NumClusters    int
	MaxClusterSize int
	SizeExponent   float64
	MeanReadLen    int
}

// CustomWorkload builds a workload with the given rank-size law, keeping
// the paper's file sizes. Used by the skew ablation (DESIGN.md A4).
//
// Cluster synthesis is seed-independent (the seed only drives the
// cluster→chunk assignment permutation), so the Clusters slice is
// memoized per WorkloadParams and shared read-only across workloads —
// sweeps construct one Experiment per grid cell, and without memoization
// each paid the 40,000-cluster synthesis again. Do NOT mutate the
// returned Clusters in place: it is aliased by every workload with the
// same params (and read concurrently by sweep workers). To customize
// clusters, replace the slice wholesale and clear Params.
func CustomWorkload(p WorkloadParams, seed uint64) Workload {
	return Workload{
		Name:             "triticum-urartu-synthetic",
		Clusters:         clustersFor(p),
		TotalTranscripts: 236529,
		TranscriptBytes:  404 << 20,
		AlignmentBytes:   155 << 20,
		Seed:             seed,
		Params:           p,
	}
}

// clusterCache memoizes cluster synthesis per WorkloadParams.
var clusterCache sync.Map // WorkloadParams -> []ClusterSpec

func clustersFor(p WorkloadParams) []ClusterSpec {
	if v, ok := clusterCache.Load(p); ok {
		return v.([]ClusterSpec)
	}
	sizes := rng.ZipfSizes(p.NumClusters, p.SizeExponent, p.MaxClusterSize)
	clusters := make([]ClusterSpec, p.NumClusters)
	for i, m := range sizes {
		clusters[i] = ClusterSpec{Transcripts: m, Bases: m * p.MeanReadLen}
	}
	v, _ := clusterCache.LoadOrStore(p, clusters)
	return v.([]ClusterSpec)
}

// CostModel converts workload quantities into reference-machine seconds.
// The constants are calibrated (DESIGN.md §4) so that the serial run costs
// ≈100 h and the largest protein cluster ≈9,300 s, reproducing the paper's
// inline numbers.
type CostModel struct {
	// OverlapCoeff and OverlapExp give the CAP3 overlap-detection cost
	// a·m^e for a cluster of m transcripts (superlinear: pairwise
	// overlaps pruned by k-mer filtering).
	OverlapCoeff, OverlapExp float64
	// BasesPerSec is the linear consensus/I-O rate of CAP3.
	BasesPerSec float64
	// ReadMBps is the Python-side rate for scanning the input files
	// (list creation, splitting, merging).
	ReadMBps float64
	// TaskBase is the fixed per-task startup cost (interpreter launch,
	// file opening).
	TaskBase float64
	// SplitPerChunk and MergePerFile are per-chunk costs of writing and
	// reading the n intermediate files; they grow with n and create the
	// mild penalty beyond the optimum cluster count.
	SplitPerChunk, MergePerFile float64
	// SerialOverheadFactor inflates the monolithic serial run relative
	// to the sum of the workflow tasks' costs: the single-process Python
	// implementation re-queries the full transcript dictionary and
	// re-launches CAP3 per cluster with cold caches, overhead the
	// decomposed tasks do not pay (paper §V.B).
	SerialOverheadFactor float64
}

// DefaultCostModel returns the calibrated constants.
func DefaultCostModel() CostModel {
	return CostModel{
		OverlapCoeff:         0.3050,
		OverlapExp:           1.6,
		BasesPerSec:          50000,
		ReadMBps:             4.0,
		TaskBase:             30,
		SplitPerChunk:        1.0,
		MergePerFile:         4.0,
		SerialOverheadFactor: 1.115,
	}
}

// ClusterSeconds is the CAP3 cost of one protein cluster.
func (c CostModel) ClusterSeconds(spec ClusterSpec) float64 {
	if spec.Transcripts <= 1 {
		// Singleton clusters pass through without assembly work beyond I/O.
		return float64(spec.Bases) / c.BasesPerSec
	}
	return c.OverlapCoeff*math.Pow(float64(spec.Transcripts), c.OverlapExp) +
		float64(spec.Bases)/c.BasesPerSec
}

// scanSeconds is the cost of streaming through size bytes.
func (c CostModel) scanSeconds(size int64) float64 {
	return c.TaskBase + float64(size)/(c.ReadMBps*1e6)
}

// costKey pairs a workload fingerprint with a cost model — the memoization
// key for seed-independent cost sums.
type costKey struct {
	params WorkloadParams
	cost   CostModel
}

// clusterSecsCache memoizes the per-cluster CAP3 seconds of synthesized
// workloads: the values depend only on (params, cost model), while the
// seed only permutes which chunk each cluster lands in.
var clusterSecsCache sync.Map // costKey -> []float64

// clusterSecondsAll returns memoized per-cluster seconds for a synthesized
// workload, or nil when the workload is hand-built (no Params fingerprint).
func (c CostModel) clusterSecondsAll(w Workload) []float64 {
	if w.Params == (WorkloadParams{}) {
		return nil
	}
	key := costKey{w.Params, c}
	if v, ok := clusterSecsCache.Load(key); ok {
		return v.([]float64)
	}
	secs := make([]float64, len(w.Clusters))
	for i, cl := range w.Clusters {
		secs[i] = c.ClusterSeconds(cl)
	}
	v, _ := clusterSecsCache.LoadOrStore(key, secs)
	return v.([]float64)
}

// SerialSeconds is the reference-machine running time of the original
// serial blast2cap3: scan both inputs, then process every cluster
// consecutively (paper §V.B — 100 hours for the wheat dataset).
func (c CostModel) SerialSeconds(w Workload) float64 {
	total := c.scanSeconds(w.TranscriptBytes) + c.scanSeconds(w.AlignmentBytes)
	if secs := c.clusterSecondsAll(w); secs != nil {
		for _, s := range secs {
			total += s
		}
	} else {
		for _, cl := range w.Clusters {
			total += c.ClusterSeconds(cl)
		}
	}
	// Final concatenation of joined and unjoined transcripts.
	total += c.scanSeconds(w.TranscriptBytes)
	if c.SerialOverheadFactor > 1 {
		total *= c.SerialOverheadFactor
	}
	return total
}

// ChunkSeconds computes the per-chunk CAP3 seconds for an n-way split: the
// workload's clusters are dealt to chunks round-robin over a seeded
// permutation (blast2cap3 assigns whole clusters to chunk files; the
// permutation models the arbitrary protein order of "alignments.out").
// For synthesized workloads the per-cluster seconds come from the memoized
// table — identical values accumulated in identical order, so results are
// bit-equal to the direct computation.
func (c CostModel) ChunkSeconds(w Workload, n int) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workflow: non-positive chunk count %d", n)
	}
	perm := rng.New(w.Seed).Derive("chunk-assignment").Perm(len(w.Clusters))
	chunks := make([]float64, n)
	if secs := c.clusterSecondsAll(w); secs != nil {
		for i, ci := range perm {
			chunks[i%n] += secs[ci]
		}
	} else {
		for i, ci := range perm {
			chunks[i%n] += c.ClusterSeconds(w.Clusters[ci])
		}
	}
	for i := range chunks {
		chunks[i] += c.TaskBase
	}
	return chunks, nil
}

// BuilderConfig configures DAX construction.
type BuilderConfig struct {
	// N is the number of cluster chunks (the paper's n: 10/100/300/500).
	N int
	// Workload supplies the dataset; leave Clusters empty for real-mode
	// workflows where runtimes are unknown (no runtime profiles set).
	Workload Workload
	// Cost converts workload to seconds (zero value → DefaultCostModel
	// when the workload has clusters).
	Cost CostModel
}

// ChunkJobID returns the executable job ID of the i-th (0-based) run_cap3
// chunk of an n-way split — the naming contract shared by the DAX builder
// and the plan cache's per-seed runtime patching (internal/core).
func ChunkJobID(i int) string { return fmt.Sprintf("run_cap3_%04d", i+1) }

// BuildDAX constructs the abstract blast2cap3 workflow for n chunks.
func BuildDAX(cfg BuilderConfig) (*dax.Workflow, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("workflow: cluster count n must be positive, got %d", cfg.N)
	}
	w := cfg.Workload
	cost := cfg.Cost
	if cost == (CostModel{}) {
		cost = DefaultCostModel()
	}
	simulated := len(w.Clusters) > 0

	wf := dax.New(fmt.Sprintf("blast2cap3-n%d", cfg.N))

	setRuntime := func(j *dax.Job, seconds float64) {
		if simulated {
			j.SetProfile("pegasus", "runtime", fmt.Sprintf("%.3f", seconds))
		}
	}

	lt := wf.NewJob("create_list_transcripts", TrListTranscripts).
		AddInput("transcripts.fasta", w.TranscriptBytes).
		AddOutput("transcripts_dict.txt", w.TranscriptBytes/8)
	lt.Args = []string{"transcripts.fasta", "transcripts_dict.txt"}
	setRuntime(lt, cost.scanSeconds(w.TranscriptBytes))

	la := wf.NewJob("create_list_alignments", TrListAlignments).
		AddInput("alignments.out", w.AlignmentBytes).
		AddOutput("alignments_list.txt", w.AlignmentBytes/16)
	la.Args = []string{"alignments.out", "alignments_list.txt"}
	setRuntime(la, cost.scanSeconds(w.AlignmentBytes))

	sp := wf.NewJob("split", TrSplit).
		AddInput("alignments.out", w.AlignmentBytes).
		AddInput("alignments_list.txt", w.AlignmentBytes/16)
	sp.Args = []string{"-n", fmt.Sprint(cfg.N), "alignments.out"}
	setRuntime(sp, cost.scanSeconds(w.AlignmentBytes)+cost.SplitPerChunk*float64(cfg.N))
	if err := wf.AddDependency("create_list_alignments", "split"); err != nil {
		return nil, err
	}

	var chunks []float64
	if simulated {
		var err error
		chunks, err = cost.ChunkSeconds(w, cfg.N)
		if err != nil {
			return nil, err
		}
	}

	chunkBytes := int64(0)
	if cfg.N > 0 {
		chunkBytes = w.AlignmentBytes / int64(cfg.N)
	}
	for i := 0; i < cfg.N; i++ {
		proteinLFN := fmt.Sprintf("protein_%d.txt", i+1)
		joinedLFN := fmt.Sprintf("joined_%d.fasta", i+1)
		sp.AddOutput(proteinLFN, chunkBytes)
		id := ChunkJobID(i)
		rc := wf.NewJob(id, TrRunCAP3).
			AddInput("transcripts_dict.txt", w.TranscriptBytes/8).
			AddInput(proteinLFN, chunkBytes).
			AddOutput(joinedLFN, chunkBytes/2)
		rc.Args = []string{"transcripts_dict.txt", proteinLFN, joinedLFN}
		if simulated {
			setRuntime(rc, chunks[i])
		}
		if err := wf.AddDependency("split", id); err != nil {
			return nil, err
		}
		if err := wf.AddDependency("create_list_transcripts", id); err != nil {
			return nil, err
		}
	}

	mg := wf.NewJob("merge", TrMerge).AddOutput("joined_all.fasta", w.TranscriptBytes/4)
	mg.Args = []string{"-n", fmt.Sprint(cfg.N), "joined_all.fasta"}
	setRuntime(mg, cost.TaskBase+cost.MergePerFile*float64(cfg.N))
	for i := 0; i < cfg.N; i++ {
		mg.AddInput(fmt.Sprintf("joined_%d.fasta", i+1), chunkBytes/2)
		if err := wf.AddDependency(ChunkJobID(i), "merge"); err != nil {
			return nil, err
		}
	}

	mnj := wf.NewJob("merge_not_joined", TrMergeNotJoined).
		AddInput("joined_all.fasta", w.TranscriptBytes/4).
		AddInput("transcripts_dict.txt", w.TranscriptBytes/8).
		AddOutput("final_assembly.fasta", w.TranscriptBytes/2)
	mnj.Args = []string{"joined_all.fasta", "transcripts_dict.txt", "final_assembly.fasta"}
	setRuntime(mnj, cost.scanSeconds(w.TranscriptBytes))
	if err := wf.AddDependency("merge", "merge_not_joined"); err != nil {
		return nil, err
	}
	if err := wf.AddDependency("create_list_transcripts", "merge_not_joined"); err != nil {
		return nil, err
	}

	if err := wf.Validate(); err != nil {
		return nil, err
	}
	return wf, nil
}

// BuildSerialDAX constructs the one-job workflow representing the original
// serial blast2cap3 (the paper's baseline).
func BuildSerialDAX(w Workload, cost CostModel) (*dax.Workflow, error) {
	if cost == (CostModel{}) {
		cost = DefaultCostModel()
	}
	wf := dax.New("blast2cap3-serial")
	j := wf.NewJob("blast2cap3_serial", TrSerial).
		AddInput("transcripts.fasta", w.TranscriptBytes).
		AddInput("alignments.out", w.AlignmentBytes).
		AddOutput("final_assembly.fasta", w.TranscriptBytes/2)
	j.Args = []string{"transcripts.fasta", "alignments.out"}
	if len(w.Clusters) > 0 {
		j.SetProfile("pegasus", "runtime", fmt.Sprintf("%.3f", cost.SerialSeconds(w)))
	}
	if err := wf.Validate(); err != nil {
		return nil, err
	}
	return wf, nil
}

// InstallBytes for the software stacks staged onto OSG nodes (paper §V.D:
// Python, Biopython and the CAP3 executable).
const (
	PythonInstallBytes    = 25 << 20
	BiopythonInstallBytes = 15 << 20
	CAP3InstallBytes      = 5 << 20
)

// PaperCatalogs builds the site, transformation and replica catalogs of
// the paper's two-platform world. Sandhills has every tool preinstalled
// and maintained; OSG nodes have nothing preinstalled, so every
// transformation carries its install payload (Fig. 3).
func PaperCatalogs(w Workload, sandhillsSlots, osgSlots int) (planner.Catalogs, error) {
	cats := planner.Catalogs{
		Sites:           catalog.NewSiteCatalog(),
		Transformations: catalog.NewTransformationCatalog(),
		Replicas:        catalog.NewReplicaCatalog(),
	}
	if err := cats.Sites.Add(&catalog.Site{
		Name: "sandhills", Arch: "x86_64", OS: "linux",
		Slots: sandhillsSlots, SpeedFactor: 1.0,
		SharedSoftware: true, StageInMBps: 200,
	}); err != nil {
		return cats, err
	}
	if err := cats.Sites.Add(&catalog.Site{
		Name: "osg", Arch: "x86_64", OS: "linux",
		Slots: osgSlots, SpeedFactor: 0.85, Heterogeneous: true,
		SharedSoftware: false, StageInMBps: 40,
	}); err != nil {
		return cats, err
	}
	// The cloud platform of the paper's future work (§VII): VM images
	// ship with the software stack baked in.
	if err := cats.Sites.Add(&catalog.Site{
		Name: "cloud", Arch: "x86_64", OS: "linux",
		Slots: 512, SpeedFactor: 1.08,
		SharedSoftware: true, StageInMBps: 80,
	}); err != nil {
		return cats, err
	}
	names := append(Transformations(), TrSerial)
	for _, name := range names {
		if err := cats.Transformations.Add(&catalog.Transformation{
			Name: name, Site: "sandhills", PFN: "/util/opt/blast2cap3/" + name, Installed: true,
		}); err != nil {
			return cats, err
		}
		if err := cats.Transformations.Add(&catalog.Transformation{
			Name: name, Site: "cloud", PFN: "/opt/image/blast2cap3/" + name, Installed: true,
		}); err != nil {
			return cats, err
		}
		install := int64(PythonInstallBytes + BiopythonInstallBytes)
		if name == TrRunCAP3 || name == TrSerial {
			install += CAP3InstallBytes
		}
		if err := cats.Transformations.Add(&catalog.Transformation{
			Name: name, Site: "osg", PFN: name + ".tar.gz", Installed: false, InstallBytes: install,
		}); err != nil {
			return cats, err
		}
	}
	for _, lfn := range []string{"transcripts.fasta", "alignments.out"} {
		if err := cats.Replicas.Add(lfn, catalog.Replica{Site: "local", PFN: "/work/data/" + lfn}); err != nil {
			return cats, err
		}
	}
	return cats, nil
}
