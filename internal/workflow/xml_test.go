package workflow

import (
	"bytes"
	"testing"

	"pegflow/internal/dax"
)

// TestBlast2cap3DAXRoundTrip checks that the generated paper workflow
// survives DAX XML serialization intact — the path `pegflow dax | pegflow
// plan` exercises.
func TestBlast2cap3DAXRoundTrip(t *testing.T) {
	w := PaperWorkload(42)
	wf, err := BuildDAX(BuilderConfig{N: 50, Workload: w})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := wf.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := dax.ReadXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != wf.Len() || got.Edges() != wf.Edges() {
		t.Fatalf("round trip: %d jobs %d edges, want %d/%d",
			got.Len(), got.Edges(), wf.Len(), wf.Edges())
	}
	// Runtime profiles (the cost model annotations) must survive.
	for _, j := range wf.Jobs() {
		gj := got.Job(j.ID)
		if gj == nil {
			t.Fatalf("job %s lost", j.ID)
		}
		if gj.Profile("pegasus", "runtime") != j.Profile("pegasus", "runtime") {
			t.Errorf("job %s runtime changed: %q vs %q",
				j.ID, gj.Profile("pegasus", "runtime"), j.Profile("pegasus", "runtime"))
		}
		if len(gj.Args) != len(j.Args) {
			t.Errorf("job %s args changed: %v vs %v", j.ID, gj.Args, j.Args)
		}
	}
	// Structure checks survive the round trip too.
	cp, err := got.CriticalPathLength()
	if err != nil || cp != 5 {
		t.Errorf("critical path after round trip = %d, %v", cp, err)
	}
}

func TestSerialDAXRoundTrip(t *testing.T) {
	wf, err := BuildSerialDAX(PaperWorkload(7), DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := wf.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := dax.ReadXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Jobs()[0].Transformation != TrSerial {
		t.Errorf("round trip = %+v", got.Jobs())
	}
}
