package core

import "testing"

func TestMonteCarloGrid(t *testing.T) {
	sw, err := MonteCarlo(canonicalSeed, 5, nil, []int{10, 300})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Serial.Runs != 5 {
		t.Errorf("serial runs = %d", sw.Serial.Runs)
	}
	// Serial time is deterministic given the workload, so the spread is
	// tiny relative to the mean.
	if sw.Serial.CV() > 0.01 {
		t.Errorf("serial CV = %v, want ~0", sw.Serial.CV())
	}
	for _, p := range Platforms {
		for _, n := range []int{10, 300} {
			c := sw.Cells[p][n]
			if c.Runs != 5 {
				t.Errorf("%s n=%d runs = %d", p, n, c.Runs)
			}
			if c.Min > c.Median || c.Median > c.Max {
				t.Errorf("%s n=%d order stats broken: %+v", p, n, c)
			}
			if c.Mean <= 0 {
				t.Errorf("%s n=%d mean = %v", p, n, c.Mean)
			}
		}
	}
	// The paper's variability claim: OSG spreads wider than Sandhills.
	if sw.Cells["osg"][300].CV() <= sw.Cells["sandhills"][300].CV() {
		t.Errorf("OSG CV %v not above Sandhills CV %v (opportunistic variability)",
			sw.Cells["osg"][300].CV(), sw.Cells["sandhills"][300].CV())
	}
	// Sandhills mean plateau stays below OSG mean.
	if sw.Cells["sandhills"][300].Mean >= sw.Cells["osg"][300].Mean {
		t.Errorf("mean sandhills %v not below mean OSG %v",
			sw.Cells["sandhills"][300].Mean, sw.Cells["osg"][300].Mean)
	}
	// Optimal-n counts cover all runs.
	for _, p := range Platforms {
		total := 0
		for _, c := range sw.OptimalNCounts[p] {
			total += c
		}
		if total != 5 {
			t.Errorf("%s optimal-n counts sum to %d", p, total)
		}
	}
}

func TestMonteCarloOptimumMostlyAt300(t *testing.T) {
	sw, err := MonteCarlo(canonicalSeed, 5, []string{"sandhills"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	best, bestCount := 0, -1
	for n, c := range sw.OptimalNCounts["sandhills"] {
		if c > bestCount {
			best, bestCount = n, c
		}
	}
	if best != 300 {
		t.Errorf("modal optimum = %d over 5 seeds, want 300 (counts %v)",
			best, sw.OptimalNCounts["sandhills"])
	}
}

func TestMonteCarloValidation(t *testing.T) {
	if _, err := MonteCarlo(1, 0, nil, nil); err == nil {
		t.Error("zero runs accepted")
	}
	if _, err := MonteCarlo(1, 1, []string{"mainframe"}, []int{10}); err == nil {
		t.Error("unknown platform accepted")
	}
}
