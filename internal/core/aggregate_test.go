package core

import (
	"reflect"
	"testing"

	"pegflow/internal/planner"
	"pegflow/internal/workflow"
)

// smallExperiment is a reduced-scale experiment cheap enough to run twice
// (exact and aggregated) per test.
func smallExperiment(seed uint64, aggregate bool) *Experiment {
	return &Experiment{
		Seed:           seed,
		SandhillsSlots: 50,
		OSGSlots:       100,
		RetryLimit:     5,
		Workload: workflow.CustomWorkload(workflow.WorkloadParams{
			NumClusters:    800,
			MaxClusterSize: 120,
			SizeExponent:   0.5,
			MeanReadLen:    1000,
		}, seed),
		Cost:      workflow.DefaultCostModel(),
		Aggregate: aggregate,
	}
}

// TestAggregateRunParity is the end-to-end acceptance check for
// aggregation through the real platform simulation: an aggregated run
// must reproduce the exact run's makespan, summary and per-task tables
// bit for bit — record recycling must not perturb the simulation, and
// the folded accumulators must agree with the retained-record math.
func TestAggregateRunParity(t *testing.T) {
	for _, site := range []string{"sandhills", "osg"} {
		exact, err := smallExperiment(42, false).RunWorkflow(site, 60)
		if err != nil {
			t.Fatal(err)
		}
		agg, err := smallExperiment(42, true).RunWorkflow(site, 60)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Result.Makespan != agg.Result.Makespan {
			t.Errorf("%s: makespan diverged: exact %v, agg %v",
				site, exact.Result.Makespan, agg.Result.Makespan)
		}
		if exact.Result.Retries != agg.Result.Retries || exact.Result.Evictions != agg.Result.Evictions {
			t.Errorf("%s: engine counters diverged: exact %+v, agg %+v",
				site, exact.Result, agg.Result)
		}
		if exact.Summary != agg.Summary {
			t.Errorf("%s: summary diverged:\nexact %+v\nagg   %+v", site, exact.Summary, agg.Summary)
		}
		if !reflect.DeepEqual(exact.PerTask, agg.PerTask) {
			t.Errorf("%s: per-task stats diverged:\nexact %+v\nagg   %+v", site, exact.PerTask, agg.PerTask)
		}
		if recs := agg.Result.Log.Records(); recs != nil {
			t.Errorf("%s: aggregated run retained %d records", site, len(recs))
		}
		if agg.Result.Log.Len() != exact.Result.Log.Len() {
			t.Errorf("%s: attempt counts diverged: exact %d, agg %d",
				site, exact.Result.Log.Len(), agg.Result.Log.Len())
		}
	}
}

// TestAggregateClusteredRunParity covers the composite-record path: a
// clustered plan emits per-member records through Event.Members, which
// the engine must fold and recycle identically to the retained path.
func TestAggregateClusteredRunParity(t *testing.T) {
	copts := planner.ClusterOptions{MaxTasksPerJob: 8}
	exact, err := smallExperiment(7, false).RunClustered("osg", 60, copts)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := smallExperiment(7, true).RunClustered("osg", 60, copts)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Summary != agg.Summary {
		t.Errorf("clustered summary diverged:\nexact %+v\nagg   %+v", exact.Summary, agg.Summary)
	}
	if !reflect.DeepEqual(exact.PerTask, agg.PerTask) {
		t.Errorf("clustered per-task stats diverged:\nexact %+v\nagg   %+v", exact.PerTask, agg.PerTask)
	}
}

// TestAggregateEnsembleParity covers the multi-site pool: member engines
// recycle records back through the ensemble facade into the arena of the
// site that allocated them. The ensemble report must match the exact
// run's exactly.
func TestAggregateEnsembleParity(t *testing.T) {
	run := func(aggregate bool) *EnsembleExperiment {
		e, err := HeteroBenchEnsemble(42, 4, 12, planner.PolicyDataAware)
		if err != nil {
			t.Fatal(err)
		}
		e.Aggregate = aggregate
		return e
	}
	_, exact, err := run(false).Run()
	if err != nil {
		t.Fatal(err)
	}
	_, agg, err := run(true).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exact, agg) {
		t.Errorf("ensemble report diverged:\nexact %+v\nagg   %+v", exact, agg)
	}
}
