package core

import (
	"fmt"

	"pegflow/internal/engine"
	"pegflow/internal/planner"
	"pegflow/internal/sim/platform"
	"pegflow/internal/stats"
	"pegflow/internal/workflow"
)

// PaperNValues are the cluster counts evaluated in the paper.
var PaperNValues = []int{10, 100, 300, 500}

// Platforms are the two execution platforms compared in the paper.
var Platforms = []string{"sandhills", "osg"}

// ExtendedPlatforms adds the cloud platform of the paper's future work
// (§VII) to the comparison grid.
var ExtendedPlatforms = []string{"sandhills", "osg", "cloud"}

// Experiment configures a reproduction run.
type Experiment struct {
	// Seed drives every stochastic component.
	Seed uint64
	// SandhillsSlots is the campus-cluster allocation the workflow got
	// ("the resources allocated from Sandhills", §VI.A). The paper's
	// optimum at n=300 reflects an allocation of roughly that size.
	SandhillsSlots int
	// OSGSlots is the opportunistic pool size (OSG offers more
	// resources than the campus allocation).
	OSGSlots int
	// RetryLimit is the DAGMan retry budget per job.
	RetryLimit int
	// Workload is the dataset; defaults to the paper-scale synthetic
	// Triticum urartu workload.
	Workload workflow.Workload
	// Cost is the calibrated cost model.
	Cost workflow.CostModel
	// Workers bounds the number of concurrent simulations RunAll fans
	// out; <= 0 means runtime.NumCPU(), 1 forces the serial path. The
	// results are identical for any worker count.
	Workers int
	// Aggregate runs every engine in aggregation mode: logs fold into
	// fixed-size accumulators and streaming sketches instead of retaining
	// records — the memory-flat path for million-job runs. Summaries and
	// per-transformation tables are unaffected; consumers that need raw
	// records (timelines, log export) must run exact.
	Aggregate bool
}

// DefaultExperiment returns the paper-scale configuration.
func DefaultExperiment(seed uint64) *Experiment {
	return &Experiment{
		Seed:           seed,
		SandhillsSlots: 300,
		OSGSlots:       600,
		RetryLimit:     5,
		Workload:       workflow.PaperWorkload(seed),
		Cost:           workflow.DefaultCostModel(),
	}
}

// RunResult bundles everything one workflow execution produced.
type RunResult struct {
	// Platform is "sandhills", "osg", or "serial".
	Platform string
	// N is the cluster count (0 for the serial baseline).
	N int
	// Result is the engine outcome (log, makespan, retries).
	Result *engine.Result
	// Summary is the workflow-level statistics block.
	Summary stats.Summary
	// PerTask is the per-transformation breakdown (Fig. 5 panel rows).
	PerTask []stats.TaskStats
}

// WallTime returns the workflow wall time in seconds.
func (r *RunResult) WallTime() float64 { return r.Summary.WallTime }

func (e *Experiment) platformConfig(name string) (platform.Config, int, error) {
	switch name {
	case "sandhills":
		cfg := platform.Sandhills(e.Seed)
		cfg.Slots = e.SandhillsSlots
		return cfg, e.SandhillsSlots, nil
	case "osg":
		cfg := platform.OSG(e.Seed)
		cfg.Slots = e.OSGSlots
		return cfg, e.OSGSlots, nil
	case "cloud":
		cfg := platform.Cloud(e.Seed)
		return cfg, cfg.Slots, nil
	default:
		return platform.Config{}, 0, fmt.Errorf("core: unknown platform %q", name)
	}
}

// RunWorkflow executes the blast2cap3 workflow with n cluster chunks on
// the named platform and returns its statistics.
func (e *Experiment) RunWorkflow(platformName string, n int) (*RunResult, error) {
	// Disabled clustering options leave the plan untouched, so this is
	// exactly the unclustered pipeline.
	return e.RunClustered(platformName, n, planner.ClusterOptions{})
}

// RunSerial executes the serial blast2cap3 baseline on a single dedicated
// Sandhills core (paper §V.B: "the running time was 100 hours").
func (e *Experiment) RunSerial() (*RunResult, error) {
	// The serial plan is fully seed-independent (its one runtime sums
	// every cluster), so the cache serves it with nothing to patch.
	plan, err := e.cachedWorkflowPlan("sandhills", 0, e.Workload, true)
	if err != nil {
		return nil, err
	}
	// A single interactive node: no dispatch noise, one slot.
	cfg := platform.Config{Name: "sandhills", Slots: 1, SpeedFactor: 1.0, Seed: e.Seed}
	ex, err := platform.NewExecutor(cfg)
	if err != nil {
		return nil, err
	}
	res, err := engine.Run(plan, ex, engine.Options{Aggregate: e.Aggregate})
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Platform: "serial",
		N:        0,
		Result:   res,
		Summary:  stats.Summarize(res.Log, res.Makespan),
		PerTask:  stats.PerTransformation(res.Log),
	}, nil
}

// AllResults holds the complete evaluation: the serial baseline plus every
// (platform, n) combination — the data behind Fig. 4 and Fig. 5.
type AllResults struct {
	Serial *RunResult
	// Runs is indexed by platform name then n.
	Runs map[string]map[int]*RunResult
}

// RunAll executes the full evaluation grid — the serial baseline plus
// every (platform, n) cell — across e.Workers concurrent simulations.
// Each cell is an independent simulation seeded from (e.Seed, n), so the
// grid is embarrassingly parallel and the results match the serial path
// exactly; they are merged in deterministic grid order after collection.
func (e *Experiment) RunAll() (*AllResults, error) {
	type gridCell struct {
		platform string
		n        int
	}
	var cells []gridCell
	for _, p := range Platforms {
		for _, n := range PaperNValues {
			cells = append(cells, gridCell{p, n})
		}
	}
	results := make([]*RunResult, 1+len(cells))
	err := forEachTask(e.Workers, 1+len(cells), func(i int) error {
		if i == 0 {
			ser, err := e.RunSerial()
			if err != nil {
				return err
			}
			results[0] = ser
			return nil
		}
		c := cells[i-1]
		r, err := e.RunWorkflow(c.platform, c.n)
		if err != nil {
			return fmt.Errorf("core: %s n=%d: %w", c.platform, c.n, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &AllResults{Serial: results[0], Runs: make(map[string]map[int]*RunResult)}
	for i, c := range cells {
		if out.Runs[c.platform] == nil {
			out.Runs[c.platform] = make(map[int]*RunResult)
		}
		out.Runs[c.platform][c.n] = results[i+1]
	}
	return out, nil
}

// BestWorkflowWallTime returns the smallest workflow wall time in the grid.
func (a *AllResults) BestWorkflowWallTime() float64 {
	best := -1.0
	for _, byN := range a.Runs {
		for _, r := range byN {
			if best < 0 || r.WallTime() < best {
				best = r.WallTime()
			}
		}
	}
	return best
}
