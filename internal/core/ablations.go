package core

import (
	"fmt"

	"pegflow/internal/catalog"
	"pegflow/internal/engine"
	"pegflow/internal/planner"
	"pegflow/internal/sim/platform"
	"pegflow/internal/stats"
	"pegflow/internal/workflow"
)

// Variant tweaks one mechanism of the standard experiment, isolating the
// design choices DESIGN.md calls out (per-experiment index A1-A4).
type Variant struct {
	// PreinstallOSG marks every transformation as installed at OSG
	// (e.g. software distributed via a shared filesystem) — ablation
	// A1, and the paper's stated future work ("setting the proper
	// software configuration on the OSG resources for less time").
	PreinstallOSG bool
	// DisablePreemption turns off the OSG eviction hazard (A2).
	DisablePreemption bool
	// ClusterSize enables Pegasus horizontal task clustering of
	// run_cap3 jobs with the given tasks-per-job factor (A3).
	ClusterSize int
	// SizeExponent overrides the workload's cluster-size rank exponent
	// (A4); 0 keeps the paper workload.
	SizeExponent float64
}

// RunVariant executes the blast2cap3 workflow on the named platform with
// the given variant applied.
func (e *Experiment) RunVariant(platformName string, n int, v Variant) (*RunResult, error) {
	cfg, _, err := e.platformConfig(platformName)
	if err != nil {
		return nil, err
	}
	cfg.Seed = e.Seed ^ (uint64(n) * 0x9e3779b97f4a7c15)
	if v.DisablePreemption {
		cfg.EvictionRate = 0
	}

	w := e.Workload
	if v.SizeExponent > 0 {
		w = workflow.CustomWorkload(workflow.WorkloadParams{
			NumClusters:    40000,
			MaxClusterSize: 600,
			SizeExponent:   v.SizeExponent,
			MeanReadLen:    1500,
		}, e.Seed)
	}

	var plan *planner.Plan
	if !v.PreinstallOSG && v.ClusterSize <= 1 {
		// Catalog- and clustering-neutral variants share the plan cache;
		// a SizeExponent override lands on its own key via w.Params.
		plan, err = e.cachedWorkflowPlan(platformName, n, w, false)
		if err != nil {
			return nil, err
		}
	} else {
		abstract, err := workflow.BuildDAX(workflow.BuilderConfig{N: n, Workload: w, Cost: e.Cost})
		if err != nil {
			return nil, err
		}
		cats, err := workflow.PaperCatalogs(w, e.SandhillsSlots, e.OSGSlots)
		if err != nil {
			return nil, err
		}
		if v.PreinstallOSG {
			cats.Transformations = preinstalledEverywhere(cats.Transformations, platformName)
		}
		opts := planner.Options{Site: platformName}
		if v.ClusterSize > 1 {
			opts.ClusterSize = v.ClusterSize
			opts.ClusterTransformations = []string{workflow.TrRunCAP3}
		}
		plan, err = planner.New(abstract, cats, opts)
		if err != nil {
			return nil, err
		}
	}
	ex, err := platform.NewExecutor(cfg)
	if err != nil {
		return nil, err
	}
	res, err := engine.Run(plan, ex, engine.Options{RetryLimit: e.RetryLimit})
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Platform: platformName,
		N:        n,
		Result:   res,
		Summary:  stats.Summarize(res.Log, res.Makespan),
		PerTask:  stats.PerTransformation(res.Log),
	}, nil
}

// preinstalledEverywhere rebuilds a transformation catalog with every
// entry at the given site marked installed.
func preinstalledEverywhere(tc *catalog.TransformationCatalog, site string) *catalog.TransformationCatalog {
	out := catalog.NewTransformationCatalog()
	for _, name := range tc.Names() {
		for _, s := range []string{"sandhills", "osg"} {
			t, err := tc.Lookup(name, s)
			if err != nil {
				continue
			}
			cp := *t
			if s == site {
				cp.Installed = true
				cp.InstallBytes = 0
			}
			if err := out.Add(&cp); err != nil {
				panic(fmt.Sprintf("core: rebuilding catalog: %v", err))
			}
		}
	}
	return out
}
