// The keyed plan cache: every Monte Carlo / cluster / ensemble sweep cell
// used to re-plan an identical workflow from scratch — abstract DAX
// construction, catalog resolution, dependency wiring and topological
// indexing — even though the only seed-dependent part of a plan is the set
// of run_cap3 chunk runtimes (the seed drives nothing but the
// cluster→chunk assignment permutation). The cache builds one immutable
// master plan per shape key (site, n, slot counts, workload fingerprint,
// cost model) and serves each request a cheap deep Plan.Clone with the
// requesting experiment's chunk runtimes patched in, reproducing the
// uncached plan byte-for-byte: the patched values round-trip through the
// same "%.3f" formatting the DAX runtime profiles use.

package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"sync"
	"sync/atomic"

	"pegflow/internal/dax"
	"pegflow/internal/planner"
	"pegflow/internal/workflow"
)

// cacheShards spreads the plan and member-DAX caches across independently
// locked shards, selected by a fingerprint hash of the key, so concurrent
// mixed-document traffic (the serve tier's steady state) does not contend
// on one map's lock.
const cacheShards = 16

// shardedMap is a fixed-size array of mutex-guarded maps; callers route
// each key to a shard with a hash they compute from the key's identity
// fields. A plain mutex+map beats sync.Map here: LoadOrStore is the only
// hot operation, each call is one short critical section with no
// per-entry wrapper allocation, and the guarded state is visible to the
// guardfield analyzer. Heavy lifting (plan construction) happens outside
// the lock via the cached entry's sync.Once.
type shardedMap struct {
	shards [cacheShards]mapShard
}

// mapShard is one independently locked slice of a shardedMap.
type mapShard struct {
	mu sync.Mutex
	//pegflow:guarded mu
	m map[any]any
}

// LoadOrStore returns the value stored under key, or stores and returns
// val if the key was absent. The bool reports whether the value was
// already present.
func (m *shardedMap) LoadOrStore(hash uint64, key, val any) (any, bool) {
	sh := &m.shards[hash%cacheShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if v, ok := sh.m[key]; ok {
		return v, true
	}
	if sh.m == nil {
		sh.m = make(map[any]any)
	}
	sh.m[key] = val
	return val, false
}

// Len counts entries across all shards (cache introspection; the
// warm-cache tests assert entry counts with it).
func (m *shardedMap) Len() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Clear drops every entry from every shard.
func (m *shardedMap) Clear() {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		sh.m = nil
		sh.mu.Unlock()
	}
}

// hashFields is FNV-1a over a mix of strings and integers — the shard
// selector for cache keys.
func hashFields(strs []string, ints []uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, s := range strs {
		io.WriteString(h, s)
		h.Write([]byte{0}) // separator: ("ab","c") != ("a","bc")
	}
	for _, v := range ints {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// planKey is the shape fingerprint of a cacheable plan. It deliberately
// excludes the workload seed: seeds only change chunk runtimes, which are
// patched per retrieval.
type planKey struct {
	site                     string
	n                        int
	serial                   bool
	sandhillsSlots, osgSlots int
	params                   workflow.WorkloadParams
	name                     string
	totalTranscripts         int
	transcriptBytes          int64
	alignmentBytes           int64
	cost                     workflow.CostModel
}

// cachedPlan is one cache entry; the master plan is built once under the
// sync.Once and never mutated afterwards.
type cachedPlan struct {
	once sync.Once
	plan *planner.Plan
	// chunkIDs lists the run_cap3 job IDs in chunk order, so retrieval
	// patches by index without re-deriving the ID strings.
	chunkIDs []string
	err      error
}

// hash picks the key's cache shard from its cheap identity fields; the
// full struct key still guarantees exactness inside the shard.
func (k planKey) hash() uint64 {
	serial := uint64(0)
	if k.serial {
		serial = 1
	}
	return hashFields(
		[]string{k.site, k.name},
		[]uint64{uint64(k.n), serial, uint64(k.sandhillsSlots), uint64(k.osgSlots)},
	)
}

var planCache shardedMap // planKey -> *cachedPlan

// Cache telemetry: masters built vs. cache retrievals served. The
// counters are monotone for the process lifetime (ResetPlanCache drops
// entries, not counters), so callers — the serve health endpoint and the
// warm-cache tests — difference them across operations: a request that
// increases retrievals without increasing builds ran entirely warm.
var (
	planBuilds, planRetrievals atomic.Uint64
	daxBuilds, daxRetrievals   atomic.Uint64
)

// CacheStats is a snapshot of the process-wide plan- and member-DAX-cache
// counters.
type CacheStats struct {
	// PlanBuilds counts master plans constructed (cache misses).
	PlanBuilds uint64 `json:"plan_builds"`
	// PlanRetrievals counts plans served from the cache (each one a
	// Clone + runtime patch).
	PlanRetrievals uint64 `json:"plan_retrievals"`
	// MemberDAXBuilds and MemberDAXRetrievals are the same pair for the
	// ensemble member-DAX cache.
	MemberDAXBuilds     uint64 `json:"member_dax_builds"`
	MemberDAXRetrievals uint64 `json:"member_dax_retrievals"`
}

// PlanCacheStats returns the current cache counters.
func PlanCacheStats() CacheStats {
	return CacheStats{
		PlanBuilds:          planBuilds.Load(),
		PlanRetrievals:      planRetrievals.Load(),
		MemberDAXBuilds:     daxBuilds.Load(),
		MemberDAXRetrievals: daxRetrievals.Load(),
	}
}

// ResetPlanCache drops every cached plan and member DAX. Tests and
// benchmarks use it for a cold cache; long-lived processes that sweep
// many ensemble seeds should call it between sweeps — the member-DAX
// cache's key includes the seed, so it is the one cache whose entry
// count grows with distinct seeds.
func ResetPlanCache() {
	planCache.Clear()
	memberDAXCache.Clear()
}

// effectiveCost mirrors BuildDAX's zero-value defaulting so the cache key
// and the patch step use the cost model the builder actually applied.
func effectiveCost(c workflow.CostModel) workflow.CostModel {
	if c == (workflow.CostModel{}) {
		return workflow.DefaultCostModel()
	}
	return c
}

// cacheable reports whether the workload carries the synthesis fingerprint
// the cache keys on. Hand-built workloads (zero Params) are planned
// directly every time.
func cacheable(w workflow.Workload) bool {
	return w.Params != (workflow.WorkloadParams{}) && len(w.Clusters) > 0
}

// cachedWorkflowPlan returns an executable plan for the workload on the
// named site with n chunks (or the serial baseline when serial is set),
// cloned from the cached master when the workload is cacheable and built
// directly otherwise. The returned plan is private to the caller and safe
// to mutate or cluster further.
func (e *Experiment) cachedWorkflowPlan(site string, n int, w workflow.Workload, serial bool) (*planner.Plan, error) {
	if !cacheable(w) {
		return e.buildPlan(site, n, w, serial)
	}
	key := planKey{
		site:             site,
		n:                n,
		serial:           serial,
		sandhillsSlots:   e.SandhillsSlots,
		osgSlots:         e.OSGSlots,
		params:           w.Params,
		name:             w.Name,
		totalTranscripts: w.TotalTranscripts,
		transcriptBytes:  w.TranscriptBytes,
		alignmentBytes:   w.AlignmentBytes,
		cost:             e.Cost,
	}
	v, _ := planCache.LoadOrStore(key.hash(), key, &cachedPlan{})
	entry := v.(*cachedPlan)
	entry.once.Do(func() {
		planBuilds.Add(1)
		entry.plan, entry.err = e.buildPlan(site, n, w, serial)
		if entry.err != nil || serial {
			return
		}
		entry.chunkIDs = make([]string, n)
		for i := range entry.chunkIDs {
			entry.chunkIDs[i] = workflow.ChunkJobID(i)
		}
	})
	if entry.err != nil {
		return nil, entry.err
	}
	planRetrievals.Add(1)
	plan := entry.plan.Clone()
	if serial {
		// The serial baseline's single runtime sums every cluster — fully
		// seed-independent, nothing to patch.
		return plan, nil
	}
	// Patch the seed-dependent chunk runtimes, reproducing the DAX
	// builder's profile round-trip ("%.3f" formatted, then parsed) so the
	// clone is byte-identical to an uncached plan for this seed.
	chunks, err := effectiveCost(e.Cost).ChunkSeconds(w, n)
	if err != nil {
		return nil, err
	}
	for i, id := range entry.chunkIDs {
		j := plan.Info[id]
		if j == nil {
			return nil, fmt.Errorf("core: plan cache: job %q missing from cached plan", id)
		}
		formatted := fmt.Sprintf("%.3f", chunks[i])
		v, err := strconv.ParseFloat(formatted, 64)
		if err != nil {
			return nil, fmt.Errorf("core: plan cache: chunk %d runtime: %w", i, err)
		}
		j.ExecSeconds = v
		// Keep the graph job's runtime profile in sync too, so consumers
		// of the exported Graph (DAX writers, re-planning) never see the
		// master-building seed's estimate.
		if gj := plan.Graph.Job(id); gj != nil {
			gj.SetProfile("pegasus", "runtime", formatted)
		}
	}
	return plan, nil
}

// buildPlan is the uncached planning path: abstract DAX, paper catalogs,
// single-site planning — exactly what every sweep cell used to run.
func (e *Experiment) buildPlan(site string, n int, w workflow.Workload, serial bool) (*planner.Plan, error) {
	cats, err := workflow.PaperCatalogs(w, e.SandhillsSlots, e.OSGSlots)
	if err != nil {
		return nil, err
	}
	var abstract *dax.Workflow
	if serial {
		abstract, err = workflow.BuildSerialDAX(w, e.Cost)
	} else {
		abstract, err = workflow.BuildDAX(workflow.BuilderConfig{N: n, Workload: w, Cost: e.Cost})
	}
	if err != nil {
		return nil, err
	}
	return planner.New(abstract, cats, planner.Options{Site: site})
}
