// Parallel experiment harness: a bounded worker pool fans the Monte Carlo
// grid and the single-seed evaluation grid out across goroutines. Every
// task derives its entire RNG state from (baseSeed, rep, platform, n), so
// a parallel sweep is bit-for-bit identical to a serial one: sweep workers
// never share an Experiment (RunAll shares one, but strictly read-only),
// and results are merged in deterministic rep-major order after collection
// instead of being accumulated under a lock.

package core

import (
	"fmt"
	"math"
	"sync"

	"pegflow/internal/pool"
)

// forEachTask runs fn(0) … fn(n-1) across a bounded worker pool — see
// pool.ForEach, which it delegates to (the pool moved to its own package
// so the ensemble planner can reuse it without importing core).
func forEachTask(workers, n int, fn func(i int) error) error {
	return pool.ForEach(workers, n, fn)
}

// SweepOptions configures a Monte Carlo sweep.
type SweepOptions struct {
	// Platforms defaults to the paper's two when nil.
	Platforms []string
	// NValues defaults to PaperNValues when nil.
	NValues []int
	// Workers bounds the number of concurrent simulations; <= 0 means
	// runtime.NumCPU(), 1 forces the serial path. Any worker count
	// produces identical output for the same base seed.
	Workers int
	// Progress, when non-nil, is called after each completed grid cell
	// with the number of finished cells and the total. Calls are
	// serialized, but their order follows completion, not cell order.
	//pegflow:blocking
	Progress func(done, total int)
}

// sweepCell is the raw outcome of one (rep, platform, n) simulation.
type sweepCell struct {
	wall      float64
	evictions int
}

// MonteCarloSweep runs the evaluation grid for `runs` seeds starting at
// baseSeed — one serial baseline plus one (platform, n) workflow run per
// seed — across a bounded worker pool, and aggregates per cell. Each grid
// cell builds its own Experiment from baseSeed+rep, so workers share no
// state and the result is independent of the worker count.
func MonteCarloSweep(baseSeed uint64, runs int, opts SweepOptions) (*Sweep, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("core: non-positive run count %d", runs)
	}
	platforms := opts.Platforms
	if platforms == nil {
		platforms = Platforms
	}
	nValues := opts.NValues
	if nValues == nil {
		nValues = PaperNValues
	}

	// Task layout, rep-major: for each rep, the serial baseline followed
	// by the (platform, n) cells in grid order.
	perRep := 1 + len(platforms)*len(nValues)
	total := runs * perRep
	serialWalls := make([]float64, runs)
	cells := make([]sweepCell, runs*len(platforms)*len(nValues))

	var progressMu sync.Mutex
	done := 0
	tick := func() {
		if opts.Progress == nil {
			return
		}
		progressMu.Lock()
		done++
		opts.Progress(done, total)
		progressMu.Unlock()
	}

	err := forEachTask(opts.Workers, total, func(i int) error {
		rep, k := i/perRep, i%perRep
		e := DefaultExperiment(baseSeed + uint64(rep))
		if k == 0 {
			ser, err := e.RunSerial()
			if err != nil {
				return err
			}
			serialWalls[rep] = ser.WallTime()
			tick()
			return nil
		}
		j := k - 1
		p, n := platforms[j/len(nValues)], nValues[j%len(nValues)]
		res, err := e.RunWorkflow(p, n)
		if err != nil {
			return fmt.Errorf("core: seed %d %s n=%d: %w", e.Seed, p, n, err)
		}
		cells[rep*len(platforms)*len(nValues)+j] = sweepCell{
			wall:      res.WallTime(),
			evictions: res.Result.Evictions,
		}
		tick()
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Deterministic merge: walk reps in order so wall-time slices (and
	// therefore every floating-point accumulation in summarize) see the
	// exact sequence the serial loop produced.
	walls := make(map[string]map[int][]float64)
	evs := make(map[string]map[int]int)
	opt := make(map[string]map[int]int)
	for _, p := range platforms {
		walls[p] = make(map[int][]float64)
		evs[p] = make(map[int]int)
		opt[p] = make(map[int]int)
	}
	for rep := 0; rep < runs; rep++ {
		for pi, p := range platforms {
			bestN, bestW := 0, math.Inf(1)
			for ni, n := range nValues {
				c := cells[(rep*len(platforms)+pi)*len(nValues)+ni]
				walls[p][n] = append(walls[p][n], c.wall)
				evs[p][n] += c.evictions
				if c.wall < bestW {
					bestN, bestW = n, c.wall
				}
			}
			opt[p][bestN]++
		}
	}

	out := &Sweep{
		Serial:         summarize("serial", 0, serialWalls, 0),
		Cells:          make(map[string]map[int]SweepStats),
		OptimalNCounts: opt,
	}
	for _, p := range platforms {
		out.Cells[p] = make(map[int]SweepStats)
		for _, n := range nValues {
			out.Cells[p][n] = summarize(p, n, walls[p][n], evs[p][n])
		}
	}
	return out, nil
}
