// Ensemble experiments: many blast2cap3 workflows sharing a platform pool
// under one WMS, compared across site-selection policies — the multi-user,
// multi-backend regime the ROADMAP's north star demands and the natural
// extension of the paper's one-workflow-per-platform measurements.

package core

import (
	"fmt"
	"math"
	"sync"

	"pegflow/internal/catalog"
	"pegflow/internal/dax"
	"pegflow/internal/engine"
	"pegflow/internal/ensemble"
	"pegflow/internal/fault"
	"pegflow/internal/planner"
	"pegflow/internal/pool"
	"pegflow/internal/sim/platform"
	"pegflow/internal/sim/rng"
	"pegflow/internal/stats"
	"pegflow/internal/workflow"
)

// EnsembleExperiment configures one ensemble run: N member workflows
// planned across a site set under a policy, executed on a shared pool.
type EnsembleExperiment struct {
	// Seed drives workload synthesis and every platform RNG.
	Seed uint64
	// Workflows is the member count.
	Workflows int
	// N is the cluster-chunk count per member workflow.
	N int
	// Policy is the site-selection policy name (planner.PolicyNames).
	Policy string
	// Sites are the catalog site names to plan across.
	Sites []string
	// Platforms are the simulated platform configurations backing Sites.
	Platforms []platform.Config
	// Catalogs resolve sites, transformations and replicas.
	Catalogs planner.Catalogs
	// MaxInFlight is the ensemble-wide job throttle (0 = unlimited).
	MaxInFlight int
	// RetryLimit is the per-job retry budget.
	RetryLimit int
	// Cluster, when enabled, applies the post-planning clustering pass to
	// every member plan.
	Cluster planner.ClusterOptions
	// Failover gives members cross-site retry: jobs evicted or failed on
	// one pool site are re-resolved and resubmitted to a sibling.
	Failover bool
	// Workers bounds planning parallelism (PR-1 worker pool); results
	// are identical for any worker count.
	Workers int
	// MemberWorkload supplies the dataset of member i; nil derives a
	// reduced-scale synthetic workload from Seed+i.
	MemberWorkload func(i int) workflow.Workload
	// Faults, when set, is the compiled fault script installed on the
	// platform pool before execution (site outages, capacity steps,
	// eviction storms, dispatch blackouts).
	Faults *fault.Script
	// BackoffBase, when positive, gives every member retry-backoff with
	// full jitter: the k-th retry waits uniform(0, min(BackoffCap,
	// BackoffBase*2^(k-1))) virtual seconds. BackoffCap <= 0 leaves the
	// window uncapped. Jitter streams derive from Seed and the member
	// name, so runs reproduce exactly.
	BackoffBase float64
	BackoffCap  float64
	// Aggregate runs every member engine in aggregation mode (see
	// Experiment.Aggregate): member logs fold instead of retaining
	// records, and spent records recycle into the pool's arenas.
	Aggregate bool
}

// memberWorkload returns the dataset for member i.
func (e *EnsembleExperiment) memberWorkload(i int) workflow.Workload {
	if e.MemberWorkload != nil {
		return e.MemberWorkload(i)
	}
	// A reduced-scale cousin of the paper workload: same rank-size law,
	// ~20x fewer clusters, so an 8-member ensemble stays cheap to
	// simulate while keeping the heavy-tailed chunk-work distribution.
	return workflow.CustomWorkload(workflow.WorkloadParams{
		NumClusters:    2000,
		MaxClusterSize: 200,
		SizeExponent:   0.5,
		MeanReadLen:    1200,
	}, e.Seed+uint64(i))
}

// memberDAXKey fingerprints a member workflow: synthesized datasets are
// fully determined by (params, seed) — the Params contract guarantees
// Clusters derive from Params — plus the workload's scalar fields and the
// chunk count, so the built DAX can be cached across policy comparisons,
// repeated sweeps and scenario cells regardless of who supplied the
// workload.
type memberDAXKey struct {
	n                int
	seed             uint64
	params           workflow.WorkloadParams
	name             string
	totalTranscripts int
	transcriptBytes  int64
	alignmentBytes   int64
}

type cachedDAX struct {
	once sync.Once
	wf   *dax.Workflow
	err  error
}

// hash picks the key's cache shard (see shardedMap in plancache.go).
func (k memberDAXKey) hash() uint64 {
	return hashFields([]string{k.name}, []uint64{uint64(k.n), k.seed})
}

var memberDAXCache shardedMap // memberDAXKey -> *cachedDAX

// memberDAX builds (or serves from cache) the abstract workflow of member
// i. Cached masters are cloned per use — callers rename and plan them.
func (e *EnsembleExperiment) memberDAX(i int) (*dax.Workflow, error) {
	w := e.memberWorkload(i)
	if w.Params == (workflow.WorkloadParams{}) || len(w.Clusters) == 0 {
		// Hand-built datasets have no synthesis fingerprint to key on.
		return workflow.BuildDAX(workflow.BuilderConfig{N: e.N, Workload: w})
	}
	key := memberDAXKey{
		n:                e.N,
		seed:             w.Seed,
		params:           w.Params,
		name:             w.Name,
		totalTranscripts: w.TotalTranscripts,
		transcriptBytes:  w.TranscriptBytes,
		alignmentBytes:   w.AlignmentBytes,
	}
	v, _ := memberDAXCache.LoadOrStore(key.hash(), key, &cachedDAX{})
	entry := v.(*cachedDAX)
	entry.once.Do(func() {
		daxBuilds.Add(1)
		entry.wf, entry.err = workflow.BuildDAX(workflow.BuilderConfig{N: e.N, Workload: w})
	})
	if entry.err != nil {
		return nil, entry.err
	}
	daxRetrievals.Add(1)
	return entry.wf.Clone(), nil
}

// Sources builds the member abstract workflows. Members are admitted in
// index order; earlier members get higher ensemble priority (the Pegasus
// Ensemble Manager's priority knob).
func (e *EnsembleExperiment) Sources() ([]ensemble.WorkflowSource, error) {
	if e.Workflows <= 0 {
		return nil, fmt.Errorf("core: non-positive ensemble size %d", e.Workflows)
	}
	if e.N <= 0 {
		return nil, fmt.Errorf("core: non-positive chunk count %d", e.N)
	}
	srcs := make([]ensemble.WorkflowSource, e.Workflows)
	err := pool.ForEach(e.Workers, e.Workflows, func(i int) error {
		abstract, err := e.memberDAX(i)
		if err != nil {
			return err
		}
		abstract.Name = fmt.Sprintf("%s-wf%02d", abstract.Name, i)
		srcs[i] = ensemble.WorkflowSource{
			Name:       fmt.Sprintf("wf%02d", i),
			Abstract:   abstract,
			Priority:   e.Workflows - i,
			RetryLimit: e.RetryLimit,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return srcs, nil
}

// Run plans all members across the worker pool and executes the ensemble.
func (e *EnsembleExperiment) Run() (*ensemble.Result, *stats.EnsembleReport, error) {
	srcs, err := e.Sources()
	if err != nil {
		return nil, nil, err
	}
	specs, err := ensemble.PlanAll(srcs, e.Catalogs, ensemble.PlanOptions{
		Sites:      e.Sites,
		Policy:     e.Policy,
		AddStageIn: true,
		Cluster:    e.Cluster,
		Failover:   e.Failover,
		Workers:    e.Workers,
	})
	if err != nil {
		return nil, nil, err
	}
	if e.BackoffBase > 0 {
		for i := range specs {
			specs[i].Backoff = engine.ExpBackoff(e.BackoffBase, e.BackoffCap,
				rng.New(e.Seed).Derive("backoff/"+specs[i].Name))
		}
	}
	p, err := platform.NewMultiExecutor(e.Platforms)
	if err != nil {
		return nil, nil, err
	}
	if err := p.InstallFaults(e.Faults); err != nil {
		return nil, nil, err
	}
	res, err := ensemble.Run(p, specs, ensemble.Options{MaxInFlight: e.MaxInFlight, Aggregate: e.Aggregate})
	if err != nil {
		return nil, nil, err
	}
	return res, res.Report(e.Policy), nil
}

// PaperEnsemble builds an ensemble experiment over the paper's two-site
// world (Sandhills + OSG), with platform models scaled by the catalogs'
// slot counts.
func PaperEnsemble(seed uint64, workflows, n int, policy string) (*EnsembleExperiment, error) {
	e := DefaultExperiment(seed)
	cats, err := workflow.PaperCatalogs(e.Workload, e.SandhillsSlots, e.OSGSlots)
	if err != nil {
		return nil, err
	}
	sand := platform.Sandhills(seed)
	sand.Slots = e.SandhillsSlots
	osg := platform.OSG(seed)
	osg.Slots = e.OSGSlots
	return &EnsembleExperiment{
		Seed:        seed,
		Workflows:   workflows,
		N:           n,
		Policy:      policy,
		Sites:       []string{"sandhills", "osg"},
		Platforms:   []platform.Config{sand, osg},
		Catalogs:    cats,
		MaxInFlight: 0,
		RetryLimit:  e.RetryLimit,
	}, nil
}

// HeteroBenchEnsemble is the policy benchmark fixture: a "fast" site with
// preinstalled software and a "slow" site whose nodes run 3x slower and
// must download a 150 MB stack per job. Round-robin spreads work evenly
// and pays the slow site's penalty on half the jobs; a data- or
// runtime-aware policy should beat it.
func HeteroBenchEnsemble(seed uint64, workflows, n int, policy string) (*EnsembleExperiment, error) {
	cats := planner.Catalogs{
		Sites:           catalog.NewSiteCatalog(),
		Transformations: catalog.NewTransformationCatalog(),
		Replicas:        catalog.NewReplicaCatalog(),
	}
	if err := cats.Sites.Add(&catalog.Site{
		Name: "fast", Arch: "x86_64", OS: "linux",
		Slots: 32, SpeedFactor: 1.0,
		SharedSoftware: true, StageInMBps: 200,
	}); err != nil {
		return nil, err
	}
	if err := cats.Sites.Add(&catalog.Site{
		Name: "slow", Arch: "x86_64", OS: "linux",
		Slots: 32, SpeedFactor: 3.0, Heterogeneous: true,
		SharedSoftware: false, StageInMBps: 20,
	}); err != nil {
		return nil, err
	}
	for _, name := range workflow.Transformations() {
		if err := cats.Transformations.Add(&catalog.Transformation{
			Name: name, Site: "fast", PFN: "/opt/blast2cap3/" + name, Installed: true,
		}); err != nil {
			return nil, err
		}
		if err := cats.Transformations.Add(&catalog.Transformation{
			Name: name, Site: "slow", PFN: name + ".tar.gz",
			Installed: false, InstallBytes: 150 << 20,
		}); err != nil {
			return nil, err
		}
	}
	for _, lfn := range []string{"transcripts.fasta", "alignments.out"} {
		if err := cats.Replicas.Add(lfn, catalog.Replica{Site: "local", PFN: "/work/data/" + lfn}); err != nil {
			return nil, err
		}
	}
	return &EnsembleExperiment{
		Seed:      seed,
		Workflows: workflows,
		N:         n,
		Policy:    policy,
		Sites:     []string{"fast", "slow"},
		Platforms: []platform.Config{
			{
				Name: "fast", Slots: 32, SubmitInterval: 0.2,
				DispatchMean: 5, DispatchCV: 0.3,
				SpeedFactor: 1.0, SpeedJitter: 0.05,
				Seed: seed,
			},
			{
				Name: "slow", Slots: 32, SubmitInterval: 0.3,
				DispatchMean: 60, DispatchCV: 0.8,
				SpeedFactor: 3.0, SpeedJitter: 0.2,
				SetupMean: 120, SetupCV: 0.5, SetupBytesPerSec: 5e6,
				Seed: seed,
			},
		},
		Catalogs:   cats,
		RetryLimit: 3,
	}, nil
}

// PolicyStats summarizes one policy over a multi-seed ensemble sweep.
type PolicyStats struct {
	// Policy is the site-selection policy name.
	Policy string
	// Runs is the number of seeds aggregated.
	Runs int
	// MeanMakespan, MinMakespan and MaxMakespan summarize ensemble wall
	// times across seeds.
	MeanMakespan, MinMakespan, MaxMakespan float64
	// MeanWorkflowMakespan averages member completion times across
	// seeds and members.
	MeanWorkflowMakespan float64
	// TotalRetries, TotalEvictions and TotalFailovers sum across seeds.
	TotalRetries, TotalEvictions, TotalFailovers int
}

// ComparePolicies runs `runs` seeded ensembles per policy over the PR-1
// worker pool and aggregates — the Monte Carlo comparison of
// site-selection policies. build constructs the experiment for one
// (seed, policy) cell; the sweep forces per-cell Workers to 1 since the
// grid itself is parallel. Output is identical for any worker count.
func ComparePolicies(baseSeed uint64, runs int, policies []string, workers int,
	build func(seed uint64, policy string) (*EnsembleExperiment, error)) ([]PolicyStats, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("core: non-positive run count %d", runs)
	}
	if len(policies) == 0 {
		policies = planner.PolicyNames()
	}
	type cell struct {
		report *stats.EnsembleReport
	}
	cells := make([]cell, len(policies)*runs)
	err := pool.ForEach(workers, len(cells), func(i int) error {
		pi, rep := i/runs, i%runs
		e, err := build(baseSeed+uint64(rep), policies[pi])
		if err != nil {
			return err
		}
		e.Workers = 1
		_, report, err := e.Run()
		if err != nil {
			return fmt.Errorf("core: policy %s seed %d: %w", policies[pi], baseSeed+uint64(rep), err)
		}
		cells[i] = cell{report: report}
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := make([]PolicyStats, len(policies))
	for pi, policy := range policies {
		ps := PolicyStats{Policy: policy, Runs: runs, MinMakespan: math.Inf(1)}
		var sum, wfSum float64
		for rep := 0; rep < runs; rep++ {
			r := cells[pi*runs+rep].report
			sum += r.Makespan
			wfSum += r.MeanWorkflowMakespan
			if r.Makespan < ps.MinMakespan {
				ps.MinMakespan = r.Makespan
			}
			if r.Makespan > ps.MaxMakespan {
				ps.MaxMakespan = r.Makespan
			}
			ps.TotalRetries += r.TotalRetries
			ps.TotalEvictions += r.TotalEvictions
			ps.TotalFailovers += r.TotalFailovers
		}
		ps.MeanMakespan = sum / float64(runs)
		ps.MeanWorkflowMakespan = wfSum / float64(runs)
		out[pi] = ps
	}
	return out, nil
}
