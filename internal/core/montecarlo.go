package core

import (
	"math"
	"sort"
)

// SweepStats summarizes one (platform, n) cell over many seeds — the
// quantitative version of the paper's remark that running times "may vary
// for every new run due to the availability of the current resources"
// (§VI.A).
type SweepStats struct {
	Platform string
	N        int
	// Runs is the number of seeds aggregated.
	Runs int
	// Mean, Stddev, Min, Median and Max summarize the wall times.
	Mean, Stddev, Min, Median, Max float64
	// Evictions is the total across seeds.
	Evictions int
}

// CV returns the coefficient of variation (stddev/mean).
func (s SweepStats) CV() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.Stddev / s.Mean
}

// Sweep holds a full multi-seed evaluation grid.
type Sweep struct {
	// Serial summarizes the serial baseline.
	Serial SweepStats
	// Cells is indexed by platform then n.
	Cells map[string]map[int]SweepStats
	// OptimalNCounts counts, per platform, how often each n was the
	// best (the paper's "optimum at 300" as a distribution).
	OptimalNCounts map[string]map[int]int
}

// MonteCarlo runs the evaluation grid for `runs` seeds starting at
// baseSeed and aggregates. Platforms defaults to the paper's two when nil.
// It fans out across runtime.NumCPU() workers; use MonteCarloSweep to
// control the worker count or observe progress. The output is identical
// for any worker count.
func MonteCarlo(baseSeed uint64, runs int, platforms []string, nValues []int) (*Sweep, error) {
	return MonteCarloSweep(baseSeed, runs, SweepOptions{Platforms: platforms, NValues: nValues})
}

func summarize(platform string, n int, vals []float64, evictions int) SweepStats {
	s := SweepStats{Platform: platform, N: n, Runs: len(vals), Evictions: evictions}
	if len(vals) == 0 {
		return s
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Median = sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		s.Median = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	var sum, sumsq float64
	for _, v := range vals {
		sum += v
	}
	s.Mean = sum / float64(len(vals))
	for _, v := range vals {
		d := v - s.Mean
		sumsq += d * d
	}
	if len(vals) > 1 {
		s.Stddev = math.Sqrt(sumsq / float64(len(vals)-1))
	}
	return s
}
