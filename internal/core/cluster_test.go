package core

import (
	"bytes"
	"testing"

	"pegflow/internal/planner"
	"pegflow/internal/stats"
)

// The acceptance claim of the clustering tentpole: in the paper workload's
// fine-decomposition regime, where OSG's per-task overhead (heavy-tailed
// dispatch plus a download/install on every job) dominates the
// slot·seconds, runtime-aware clustering cuts the simulated OSG makespan
// by at least 20% — while on Sandhills, whose overhead is small, the same
// pass moves the needle far less. That contrast is the paper's explanation
// of the platform gap, reproduced as a scheduling win.
func TestClusteringCutsOSGMakespan(t *testing.T) {
	const n = DefaultClusterSweepN
	copts := planner.ClusterOptions{TargetJobSeconds: 1800}
	e := DefaultExperiment(42)

	base, err := e.RunWorkflow("osg", n)
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := e.RunClustered("osg", n, copts)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Result.Success || !clustered.Result.Success {
		t.Fatal("runs incomplete")
	}
	red := stats.Reduction(base.WallTime(), clustered.WallTime())
	t.Logf("osg n=%d: unclustered %.0f s, clustered %.0f s (%.1f%% reduction)",
		n, base.WallTime(), clustered.WallTime(), 100*red)
	if red < 0.20 {
		t.Errorf("clustering cut OSG makespan by %.1f%%, want >= 20%%", 100*red)
	}

	// Every task still runs exactly once: the clustered log holds one
	// successful record per original task.
	baseTasks := make(map[string]bool)
	for _, r := range base.Result.Log.Successes() {
		baseTasks[r.JobID] = true
	}
	clTasks := make(map[string]bool)
	for _, r := range clustered.Result.Log.Successes() {
		if clTasks[r.JobID] {
			t.Errorf("task %s succeeded twice in the clustered run", r.JobID)
		}
		clTasks[r.JobID] = true
	}
	if len(clTasks) != len(baseTasks) {
		t.Errorf("clustered run completed %d tasks, unclustered %d", len(clTasks), len(baseTasks))
	}

	// The mechanism: the mean install time per task collapses, because
	// composites stage the stack once for all members.
	var baseSetup, clSetup float64
	for _, ts := range base.PerTask {
		baseSetup += ts.MeanSetup * float64(ts.Count)
	}
	for _, ts := range clustered.PerTask {
		clSetup += ts.MeanSetup * float64(ts.Count)
	}
	if clSetup >= baseSetup/2 {
		t.Errorf("cumulative install time %.0f s not amortized vs baseline %.0f s", clSetup, baseSetup)
	}

	// Sandhills, with small steady overhead, gains much less — the
	// contrast that makes this the OSG lever.
	sBase, err := e.RunWorkflow("sandhills", n)
	if err != nil {
		t.Fatal(err)
	}
	sCl, err := e.RunClustered("sandhills", n, copts)
	if err != nil {
		t.Fatal(err)
	}
	sRed := stats.Reduction(sBase.WallTime(), sCl.WallTime())
	t.Logf("sandhills n=%d: %.1f%% reduction", n, 100*sRed)
	if sRed >= red {
		t.Errorf("sandhills gained %.1f%%, osg %.1f%%; clustering should pay off most where overhead dominates",
			100*sRed, 100*red)
	}
}

// ClusterSweep is deterministic for any worker count and always carries an
// unclustered baseline with ReductionPct 0.
func TestClusterSweepWorkerInvariance(t *testing.T) {
	opts := []planner.ClusterOptions{{}, {MaxTasksPerJob: 6}, {TargetJobSeconds: 2000}}
	one, err := ClusterSweep(7, 200, []string{"osg"}, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := ClusterSweep(7, 200, []string{"osg"}, opts, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 3 || len(many) != 3 {
		t.Fatalf("sweep returned %d/%d points, want 3", len(one), len(many))
	}
	for i := range one {
		if one[i] != many[i] {
			t.Errorf("point %d differs across worker counts:\n%+v\n%+v", i, one[i], many[i])
		}
	}
	if one[0].ReductionPct != 0 {
		t.Errorf("baseline ReductionPct = %v", one[0].ReductionPct)
	}
	if one[0].MaxTasksPerJob != 0 || one[0].TargetJobSeconds != 0 {
		t.Errorf("first point is not the baseline: %+v", one[0])
	}
}

// Fixed seed ⇒ byte-identical JSON reports with clustering and failover
// enabled, across repeated runs and planning worker counts — determinism
// survives the tentpole.
func TestClusteredFailoverEnsembleDeterministic(t *testing.T) {
	run := func(workers int) []byte {
		exp, err := PaperEnsemble(9, 4, 40, planner.PolicyDataAware)
		if err != nil {
			t.Fatal(err)
		}
		exp.Cluster = planner.ClusterOptions{MaxTasksPerJob: 6}
		exp.Failover = true
		exp.Workers = workers
		_, report, err := exp.Run()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := report.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b, c := run(1), run(1), run(8)
	if !bytes.Equal(a, b) {
		t.Error("same seed, same workers: reports differ byte-for-byte")
	}
	if !bytes.Equal(a, c) {
		t.Error("report depends on planning worker count")
	}
}
