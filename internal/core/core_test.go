package core

import (
	"testing"

	"pegflow/internal/stats"
	"pegflow/internal/workflow"
)

// canonicalSeed is the seed used for the headline reproduction (see
// EXPERIMENTS.md). The shape assertions below are the paper's findings;
// they hold for this seed and, qualitatively, for most seeds — the paper
// itself notes run-to-run variability on opportunistic resources (§VI.A).
const canonicalSeed = 42

func runAll(t *testing.T) *AllResults {
	t.Helper()
	all, err := DefaultExperiment(canonicalSeed).RunAll()
	if err != nil {
		t.Fatal(err)
	}
	return all
}

func TestSerialBaselineNearHundredHours(t *testing.T) {
	e := DefaultExperiment(canonicalSeed)
	ser, err := e.RunSerial()
	if err != nil {
		t.Fatal(err)
	}
	h := ser.WallTime() / 3600
	if h < 95 || h > 105 {
		t.Errorf("serial wall time = %.1f h, want ≈100 h (paper §V.B)", h)
	}
	if !ser.Result.Success {
		t.Error("serial run failed")
	}
}

func TestFig4SandhillsN10NearPaper(t *testing.T) {
	e := DefaultExperiment(canonicalSeed)
	r, err := e.RunWorkflow("sandhills", 10)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 41,593 s. Accept ±15%.
	if w := r.WallTime(); w < 35354 || w > 47832 {
		t.Errorf("sandhills n=10 wall = %.0f s, want ≈41,593 s ±15%%", w)
	}
}

func TestFig4SandhillsPlateauAndOptimum(t *testing.T) {
	all := runAll(t)
	sand := all.Runs["sandhills"]
	// Paper: n ∈ {100,300,500} all land "around 10,000 seconds".
	for _, n := range []int{100, 300, 500} {
		w := sand[n].WallTime()
		if w < 8000 || w > 16000 {
			t.Errorf("sandhills n=%d wall = %.0f s, want ≈10,000 s band", n, w)
		}
	}
	// Paper: 300 clusters is the optimum.
	w300 := sand[300].WallTime()
	for _, n := range []int{10, 100, 500} {
		if sand[n].WallTime() <= w300 {
			t.Errorf("sandhills n=%d (%.0f s) not above optimum n=300 (%.0f s)",
				n, sand[n].WallTime(), w300)
		}
	}
	// Paper: ≥100 clusters improves ≈80% over 10 clusters (we measure
	// ≈70-75%; accept ≥65%).
	imp := stats.Reduction(sand[10].WallTime(), sand[100].WallTime())
	if imp < 0.65 {
		t.Errorf("n=10→100 improvement = %.0f%%, want ≥65%%", imp*100)
	}
}

func TestFig4WorkflowVsSerialReduction(t *testing.T) {
	all := runAll(t)
	// Paper: Pegasus implementation reduces running time by more than
	// 95% on both platforms (average ≈3 h vs 100 h).
	serial := all.Serial.WallTime()
	for _, p := range Platforms {
		for _, n := range []int{100, 300, 500} {
			red := stats.Reduction(serial, all.Runs[p][n].WallTime())
			if red < 0.90 {
				t.Errorf("%s n=%d reduction = %.1f%%, want >90%%", p, n, red*100)
			}
		}
	}
	best := stats.Reduction(serial, all.BestWorkflowWallTime())
	if best < 0.95 {
		t.Errorf("best reduction = %.1f%%, want >95%%", best*100)
	}
}

func TestFig4OSGSlowerThanSandhills(t *testing.T) {
	all := runAll(t)
	// Paper: "Although OSG provides more computational resources than
	// Sandhills, our workflow experimental runs have better running time
	// on Sandhills" — at every n for the canonical seed.
	for _, n := range PaperNValues {
		s, o := all.Runs["sandhills"][n].WallTime(), all.Runs["osg"][n].WallTime()
		if o <= s {
			t.Errorf("n=%d: OSG (%.0f s) not above Sandhills (%.0f s)", n, o, s)
		}
	}
}

func TestFig5SandhillsNoInstallNegligibleWaiting(t *testing.T) {
	all := runAll(t)
	for _, n := range PaperNValues {
		r := all.Runs["sandhills"][n]
		for _, row := range r.PerTask {
			if row.MeanSetup != 0 {
				t.Errorf("n=%d %s: Sandhills download/install = %.1f s, want 0",
					n, row.Transformation, row.MeanSetup)
			}
		}
		// Waiting on Sandhills is "small and negligible" relative to the
		// workflow: mean run_cap3 waiting well under 10% of wall time.
		for _, row := range r.PerTask {
			if row.Transformation != workflow.TrRunCAP3 {
				continue
			}
			if row.MeanWaiting > 0.1*r.WallTime() {
				t.Errorf("n=%d: Sandhills mean cap3 waiting %.0f s vs wall %.0f s",
					n, row.MeanWaiting, r.WallTime())
			}
		}
	}
}

func TestFig5OSGInstallAndWaiting(t *testing.T) {
	all := runAll(t)
	for _, n := range PaperNValues {
		osgRun := all.Runs["osg"][n]
		sandRun := all.Runs["sandhills"][n]
		osgCap3 := findTask(osgRun.PerTask, workflow.TrRunCAP3)
		sandCap3 := findTask(sandRun.PerTask, workflow.TrRunCAP3)
		if osgCap3 == nil || sandCap3 == nil {
			t.Fatalf("n=%d: missing run_cap3 stats", n)
		}
		// Every OSG task pays download/install (paper: ≈minutes).
		if osgCap3.MeanSetup < 60 {
			t.Errorf("n=%d: OSG cap3 install = %.0f s, want ≥60 s", n, osgCap3.MeanSetup)
		}
		// OSG waiting far exceeds Sandhills waiting.
		if osgCap3.MeanWaiting <= sandCap3.MeanWaiting {
			t.Errorf("n=%d: OSG waiting %.0f ≤ Sandhills %.0f",
				n, osgCap3.MeanWaiting, sandCap3.MeanWaiting)
		}
	}
}

func TestFig5KickstartDecreasesWithN(t *testing.T) {
	all := runAll(t)
	// Paper: "The Kickstart Time value per task on Sandhills slowly
	// decreases when n increases."
	for _, p := range Platforms {
		prev := -1.0
		for _, n := range PaperNValues {
			row := findTask(all.Runs[p][n].PerTask, workflow.TrRunCAP3)
			if row == nil {
				t.Fatalf("%s n=%d: no cap3 stats", p, n)
			}
			if prev > 0 && row.MeanKickstart >= prev {
				t.Errorf("%s: mean cap3 kickstart rose from %.0f to %.0f at n=%d",
					p, prev, row.MeanKickstart, n)
			}
			prev = row.MeanKickstart
		}
	}
}

func TestConclusionKickstartOnlyOSGFaster(t *testing.T) {
	all := runAll(t)
	// Paper §VII: "if comparing only the actual duration and running
	// time of tasks on both platforms, ignoring the Waiting Time and the
	// Download/Install Time, OSG gives significantly better results."
	for _, n := range []int{100, 300, 500} {
		osg := findTask(all.Runs["osg"][n].PerTask, workflow.TrRunCAP3)
		sand := findTask(all.Runs["sandhills"][n].PerTask, workflow.TrRunCAP3)
		if osg.MeanKickstart >= sand.MeanKickstart {
			t.Errorf("n=%d: OSG mean kickstart %.0f not below Sandhills %.0f",
				n, osg.MeanKickstart, sand.MeanKickstart)
		}
	}
}

func TestOSGFailuresObservedSandhillsNone(t *testing.T) {
	all := runAll(t)
	// Paper: "we encountered no failures when the workflow was executed
	// on Sandhills"; "failures and retries of the workflow were observed
	// on OSG".
	for _, n := range PaperNValues {
		if ev := all.Runs["sandhills"][n].Result.Evictions; ev != 0 {
			t.Errorf("sandhills n=%d: %d evictions, want 0", n, ev)
		}
	}
	totalOSG := 0
	for _, n := range PaperNValues {
		totalOSG += all.Runs["osg"][n].Result.Evictions
	}
	if totalOSG == 0 {
		t.Error("no OSG evictions across the whole grid; opportunistic model inert")
	}
	// All runs must nevertheless succeed (DAGMan retries recover).
	for _, p := range Platforms {
		for _, n := range PaperNValues {
			if !all.Runs[p][n].Result.Success {
				t.Errorf("%s n=%d failed", p, n)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := DefaultExperiment(canonicalSeed).RunWorkflow("osg", 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DefaultExperiment(canonicalSeed).RunWorkflow("osg", 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.WallTime() != b.WallTime() {
		t.Errorf("same seed differs: %.3f vs %.3f", a.WallTime(), b.WallTime())
	}
	if a.Result.Log.Len() != b.Result.Log.Len() {
		t.Errorf("log lengths differ: %d vs %d", a.Result.Log.Len(), b.Result.Log.Len())
	}
}

func TestUnknownPlatformRejected(t *testing.T) {
	e := DefaultExperiment(1)
	if _, err := e.RunWorkflow("ec2", 10); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestSummaryConsistency(t *testing.T) {
	e := DefaultExperiment(canonicalSeed)
	r, err := e.RunWorkflow("sandhills", 100)
	if err != nil {
		t.Fatal(err)
	}
	// 100 cap3 + 5 fixed jobs.
	if r.Summary.Jobs != 105 {
		t.Errorf("Jobs = %d, want 105", r.Summary.Jobs)
	}
	if r.Summary.WallTime != r.Result.Makespan {
		t.Error("summary wall time != engine makespan")
	}
	// Cumulative kickstart must be within the workflow's serial work.
	if r.Summary.CumulativeKickstart <= 0 {
		t.Error("no cumulative kickstart recorded")
	}
}

func findTask(rows []stats.TaskStats, name string) *stats.TaskStats {
	for i := range rows {
		if rows[i].Transformation == name {
			return &rows[i]
		}
	}
	return nil
}
