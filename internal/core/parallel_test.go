package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachTaskRunsEveryIndexOnce(t *testing.T) {
	const n = 100
	var counts [n]atomic.Int32
	if err := forEachTask(7, n, func(i int) error {
		counts[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Errorf("index %d ran %d times", i, c)
		}
	}
}

func TestForEachTaskBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	if err := forEachTask(workers, 64, func(i int) error {
		c := cur.Add(1)
		defer cur.Add(-1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				return nil
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestForEachTaskPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := forEachTask(4, 32, func(i int) error {
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want %v", err, boom)
	}
}

func TestForEachTaskSerialStopsAtFirstError(t *testing.T) {
	var calls int
	err := forEachTask(1, 32, func(i int) error {
		calls++
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || calls != 4 {
		t.Errorf("calls = %d (err %v), want 4 calls and an error", calls, err)
	}
}

func TestForEachTaskEdgeCases(t *testing.T) {
	if err := forEachTask(4, 0, func(int) error { t.Error("fn called"); return nil }); err != nil {
		t.Fatal(err)
	}
	// workers <= 0 defaults to NumCPU; must still cover everything.
	var ran atomic.Int32
	if err := forEachTask(0, 10, func(int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 10 {
		t.Errorf("ran %d of 10 tasks with default workers", ran.Load())
	}
}

// TestMonteCarloParallelSerialEquivalence is the tentpole guarantee: the
// sweep output is bit-for-bit identical no matter how many workers run it.
func TestMonteCarloParallelSerialEquivalence(t *testing.T) {
	opts := SweepOptions{NValues: []int{10, 100}}
	opts.Workers = 1
	serial, err := MonteCarloSweep(canonicalSeed, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	parallel, err := MonteCarloSweep(canonicalSeed, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("sweeps differ:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	sj, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, pj) {
		t.Errorf("serialized sweeps not byte-identical:\nserial:   %s\nparallel: %s", sj, pj)
	}
}

// TestMonteCarloMatchesSweep pins the compatibility wrapper to the pool
// implementation.
func TestMonteCarloMatchesSweep(t *testing.T) {
	a, err := MonteCarlo(canonicalSeed, 2, []string{"sandhills"}, []int{10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarloSweep(canonicalSeed, 2, SweepOptions{
		Platforms: []string{"sandhills"}, NValues: []int{10}, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("MonteCarlo %+v != MonteCarloSweep %+v", a, b)
	}
}

func TestRunAllParallelSerialEquivalence(t *testing.T) {
	se := DefaultExperiment(canonicalSeed)
	se.Workers = 1
	serial, err := se.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	pe := DefaultExperiment(canonicalSeed)
	pe.Workers = 8
	parallel, err := pe.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.Serial.WallTime(), parallel.Serial.WallTime(); s != p {
		t.Errorf("serial baseline differs: %v vs %v", s, p)
	}
	for _, pf := range Platforms {
		for _, n := range PaperNValues {
			a, b := serial.Runs[pf][n], parallel.Runs[pf][n]
			if a.WallTime() != b.WallTime() {
				t.Errorf("%s n=%d wall differs: %v vs %v", pf, n, a.WallTime(), b.WallTime())
			}
			if !reflect.DeepEqual(a.Summary, b.Summary) {
				t.Errorf("%s n=%d summaries differ", pf, n)
			}
			if !reflect.DeepEqual(a.PerTask, b.PerTask) {
				t.Errorf("%s n=%d per-task stats differ", pf, n)
			}
			if a.Result.Retries != b.Result.Retries || a.Result.Evictions != b.Result.Evictions {
				t.Errorf("%s n=%d retries/evictions differ", pf, n)
			}
		}
	}
}

func TestSweepProgress(t *testing.T) {
	var mu sync.Mutex
	var seen []int
	wantTotal := 3 * (1 + 2*1) // 3 reps × (serial + 2 platforms × 1 n)
	_, err := MonteCarloSweep(canonicalSeed, 3, SweepOptions{
		NValues: []int{10},
		Workers: 4,
		Progress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			if total != wantTotal {
				t.Errorf("total = %d, want %d", total, wantTotal)
			}
			seen = append(seen, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != wantTotal {
		t.Fatalf("progress called %d times, want %d", len(seen), wantTotal)
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress done sequence %v not monotonic", seen)
		}
	}
}

func TestMonteCarloSweepValidation(t *testing.T) {
	if _, err := MonteCarloSweep(1, 0, SweepOptions{}); err == nil {
		t.Error("zero runs accepted")
	}
	_, err := MonteCarloSweep(1, 1, SweepOptions{
		Platforms: []string{"mainframe"}, NValues: []int{10}, Workers: 4,
	})
	if err == nil {
		t.Error("unknown platform accepted")
	}
}
