// Package core is the high-level facade of pegflow: it wires workload,
// workflow construction, planning, platform simulation and statistics into
// the paper's experiments (build → plan → run → statistics), so that one
// call reproduces one bar of Fig. 4 or one panel of Fig. 5.
//
// Beyond the reproduction grid (Experiment, RunAll, MonteCarloSweep) the
// package hosts the post-paper experiment axes: the cluster-size sweep
// (ClusterSweep), ensemble experiments comparing site-selection policies
// over a shared platform pool (EnsembleExperiment, ComparePolicies), and
// the ablations of DESIGN.md.
//
// Two process-wide caches make sweeps cheap without changing a single
// output byte (asserted byte-for-byte in tests):
//
//   - the keyed plan cache (plancache.go) builds one immutable master
//     plan per shape key — (site, n, slot counts, workload fingerprint,
//     cost model) — and serves each request a deep Plan.Clone with the
//     requesting seed's chunk runtimes patched in;
//   - the member-DAX cache (ensemble.go) memoizes built abstract
//     workflows per (params, seed, n) for ensemble members.
//
// PlanCacheStats exposes build/retrieval counters (surfaced by `pegflow
// serve`'s health endpoint); ResetPlanCache drops every entry — call it
// between sweeps of many distinct seeds, since the member-DAX cache is
// the one cache whose entry count grows with distinct seeds.
//
// Package scenario compiles declarative what-if documents onto this
// facade; both caches are therefore shared across scenario cells and, in
// a `pegflow serve` process, across HTTP requests.
package core
