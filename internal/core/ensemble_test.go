package core

import (
	"bytes"
	"testing"

	"pegflow/internal/planner"
)

func heteroExperiment(t testing.TB, seed uint64, policy string) *EnsembleExperiment {
	e, err := HeteroBenchEnsemble(seed, 8, 24, policy)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// Acceptance: on the heterogeneous bench fixture, the data-aware policy
// beats round-robin ensemble makespan.
func TestDataAwareBeatsRoundRobin(t *testing.T) {
	_, rr, err := heteroExperiment(t, 42, planner.PolicyRoundRobin).Run()
	if err != nil {
		t.Fatal(err)
	}
	_, da, err := heteroExperiment(t, 42, planner.PolicyDataAware).Run()
	if err != nil {
		t.Fatal(err)
	}
	if da.Makespan >= rr.Makespan {
		t.Errorf("data-aware makespan %.0f s not better than round-robin %.0f s",
			da.Makespan, rr.Makespan)
	}
	t.Logf("round-robin %.0f s, data-aware %.0f s (%.1f%% faster)",
		rr.Makespan, da.Makespan, 100*(rr.Makespan-da.Makespan)/rr.Makespan)
}

// The policy sweep is deterministic for any worker count and preserves
// the data-aware advantage in the means.
func TestComparePoliciesDeterministicAcrossWorkers(t *testing.T) {
	build := func(seed uint64, policy string) (*EnsembleExperiment, error) {
		return HeteroBenchEnsemble(seed, 4, 12, policy)
	}
	serial, err := ComparePolicies(42, 3, nil, 1, build)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ComparePolicies(42, 3, nil, 8, build)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(planner.PolicyNames()) {
		t.Fatalf("policy stats = %d, want %d", len(serial), len(planner.PolicyNames()))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("policy %s: serial %+v != parallel %+v", serial[i].Policy, serial[i], parallel[i])
		}
	}
	byName := map[string]PolicyStats{}
	for _, ps := range serial {
		byName[ps.Policy] = ps
	}
	if da, rr := byName[planner.PolicyDataAware], byName[planner.PolicyRoundRobin]; da.MeanMakespan >= rr.MeanMakespan {
		t.Errorf("mean data-aware makespan %.0f s not better than round-robin %.0f s",
			da.MeanMakespan, rr.MeanMakespan)
	}
}

// The paper-world ensemble (Sandhills + OSG) runs to completion and its
// JSON report is reproducible.
func TestPaperEnsembleReproducible(t *testing.T) {
	var first []byte
	for i := 0; i < 2; i++ {
		e, err := PaperEnsemble(42, 8, 20, planner.PolicyDataAware)
		if err != nil {
			t.Fatal(err)
		}
		e.Workers = 1 + i*7
		_, report, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range report.Workflows {
			if !w.Success {
				t.Errorf("workflow %s incomplete", w.Name)
			}
		}
		var buf bytes.Buffer
		if err := report.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = buf.Bytes()
		} else if !bytes.Equal(first, buf.Bytes()) {
			t.Errorf("paper ensemble report differs between runs:\n%s\n---\n%s", first, buf.Bytes())
		}
	}
}

// BenchmarkEnsemble measures an 8-workflow, 2-site ensemble per policy on
// the heterogeneous fixture — the data-aware row should show the smaller
// reported makespan (exposed via the makespan_s metric). Each policy also
// runs a clustered+failover variant, the tentpole's ensemble-level effect
// (failovers surface via the failovers metric).
func BenchmarkEnsemble(b *testing.B) {
	variants := []struct {
		name     string
		cluster  planner.ClusterOptions
		failover bool
	}{
		{"plain", planner.ClusterOptions{}, false},
		{"cluster4-failover", planner.ClusterOptions{MaxTasksPerJob: 4}, true},
	}
	for _, policy := range planner.PolicyNames() {
		for _, v := range variants {
			b.Run(policy+"/"+v.name, func(b *testing.B) {
				var makespan float64
				var failovers int
				for i := 0; i < b.N; i++ {
					e := heteroExperiment(b, 42, policy)
					e.Cluster = v.cluster
					e.Failover = v.failover
					_, report, err := e.Run()
					if err != nil {
						b.Fatal(err)
					}
					makespan = report.Makespan
					failovers = report.TotalFailovers
				}
				b.ReportMetric(makespan, "makespan_s")
				b.ReportMetric(float64(failovers), "failovers")
			})
		}
	}
}
