package core

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"pegflow/internal/ensemble"
	"pegflow/internal/planner"
	"pegflow/internal/sim/platform"
	"pegflow/internal/workflow"
)

// scaleBigN returns the job count for the big side of the scale
// assertions: 3·10^4 by default so the suite (and the race-detector CI
// job) stays fast, raised to 10^6 in the dedicated CI scale-smoke step
// via PEGFLOW_SCALE_N.
func scaleBigN(tb testing.TB) int {
	if v := os.Getenv("PEGFLOW_SCALE_N"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			tb.Fatalf("bad PEGFLOW_SCALE_N=%q", v)
		}
		return n
	}
	return 30000
}

// scaleRetryLimit is the retry budget of the scale runs. The workflow's
// serial bottleneck jobs (split and merge run for MergePerFile·n ≈ 4·10^5
// simulated seconds at n=10^5) face OSG's 1/EvictionRate = 200,000 s mean
// time to eviction, so each attempt completes with probability e^-2 or
// worse and the paper's single-digit retry limits turn the run into a
// permanent failure — the model is behaving correctly: opportunistic
// pools really do starve long-running monoliths. A deep retry budget is
// the single-site experiment answer up to n≈5·10^5; beyond that (merge
// survival e^-20 at n=10^6) no budget helps and the run must fail over
// to a stable site (TestMillionJobScale). Runs stay deterministic: the
// eviction draws come from the platform's seeded streams.
const scaleRetryLimit = 1000

// retainedByRun measures the heap bytes a single aggregated run leaves
// behind when only its kickstart log survives: the plan cache is warmed
// first (the plan is the run's O(n) input, not its working set), then one
// run executes and everything but res.Result.Log is dropped. The
// difference between the post-GC heap before and after is the run's own
// retention — the quantity this PR makes independent of n.
func retainedByRun(t *testing.T, e *Experiment, n int) (bytes uint64, attempts int) {
	t.Helper()
	if _, err := e.cachedWorkflowPlan("osg", n, e.Workload, false); err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&before)
	r, err := e.RunWorkflow("osg", n)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Result.Unfinished) != 0 {
		t.Fatalf("n=%d run did not complete: %d jobs unfinished, %d permanently failed",
			n, len(r.Result.Unfinished), len(r.Result.PermanentlyFailed))
	}
	log := r.Result.Log
	r = nil
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&after)
	attempts = log.Len()
	runtime.KeepAlive(log)
	if after.HeapAlloc <= before.HeapAlloc {
		return 0, attempts
	}
	return after.HeapAlloc - before.HeapAlloc, attempts
}

// TestAggregatedRunRetention asserts the memory-flat property on the
// single-site core path: an aggregated OSG run at n=3·10^4 must retain no
// more than 2× the heap an n=10^4 run retains, plus a fixed 1 MiB
// measurement allowance — run retention is independent of n. The plan
// itself is the run's input and stays O(n); what this asserts is that
// executing attempts no longer costs resident records. An exact-mode run
// at n=10^4 is measured as the contrast case: it must retain at least 5×
// the aggregated big-run's bytes, proving the probe would catch a
// retention regression.
func TestAggregatedRunRetention(t *testing.T) {
	if testing.Short() {
		t.Skip("scale measurement under -short")
	}
	const small, big = 10000, 30000

	agg := DefaultExperiment(42)
	agg.Aggregate = true
	agg.RetryLimit = scaleRetryLimit
	smallBytes, smallAttempts := retainedByRun(t, agg, small)
	bigBytes, bigAttempts := retainedByRun(t, agg, big)
	t.Logf("aggregated retention: n=%d → %d B (%d attempts); n=%d → %d B (%d attempts)",
		small, smallBytes, smallAttempts, big, bigBytes, bigAttempts)

	const slack = 1 << 20
	if bigBytes > 2*smallBytes+slack {
		t.Errorf("aggregated retention grew with n: %d B at n=%d vs %d B at n=%d",
			bigBytes, big, smallBytes, small)
	}

	exact := DefaultExperiment(42)
	exact.RetryLimit = scaleRetryLimit
	exactBytes, exactAttempts := retainedByRun(t, exact, small)
	t.Logf("exact retention: n=%d → %d B (%d attempts)", small, exactBytes, exactAttempts)
	if exactBytes < 5*(bigBytes+1) {
		t.Errorf("exact-mode run at n=%d retained only %d B — the probe cannot see record retention",
			small, exactBytes)
	}
}

// scaleSpecs plans one n-chunk paper workflow across the two-site world
// (Sandhills + OSG) with cross-site failover — the paper's hierarchical
// execution model, and the only configuration that completes at n=10^6:
// the terminal merge job runs for MergePerFile·n ≈ 4·10^6 simulated
// seconds, which survives OSG eviction with probability e^-20 per
// attempt, so it must fail over to the never-preempting campus cluster.
func scaleSpecs(tb testing.TB, n int) ([]ensemble.Spec, []platform.Config) {
	tb.Helper()
	e, err := PaperEnsemble(42, 1, n, planner.PolicyRuntimeAware)
	if err != nil {
		tb.Fatal(err)
	}
	e.Failover = true
	e.RetryLimit = scaleRetryLimit
	w := DefaultExperiment(42).Workload
	e.MemberWorkload = func(int) workflow.Workload { return w }
	srcs, err := e.Sources()
	if err != nil {
		tb.Fatal(err)
	}
	specs, err := ensemble.PlanAll(srcs, e.Catalogs, ensemble.PlanOptions{
		Sites:    e.Sites,
		Policy:   e.Policy,
		Failover: true,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return specs, e.Platforms
}

// retainedByScaleRun plans an n-job two-site workflow, then measures the
// heap bytes one execution of it retains: the pre-built specs (the run's
// O(n) input) stay alive on both sides of the measurement while the pool
// — like the executor the single-site path builds and drops inside
// RunWorkflow — is released with the run, so the post-GC heap delta is
// what the run hands its caller: the member log.
func retainedByScaleRun(t *testing.T, n int, aggregate bool) (bytes uint64, attempts int) {
	t.Helper()
	specs, cfgs := scaleSpecs(t, n)
	p, err := platform.NewMultiExecutor(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&before)
	res, err := ensemble.Run(p, specs, ensemble.Options{Aggregate: aggregate})
	if err != nil {
		t.Fatal(err)
	}
	wr := res.Workflows[0].Result
	if !wr.Success || len(wr.Unfinished) != 0 {
		t.Fatalf("n=%d two-site run did not complete: success=%v, %d jobs unfinished, %d permanently failed",
			n, wr.Success, len(wr.Unfinished), len(wr.PermanentlyFailed))
	}
	log := wr.Log
	res, wr, p = nil, nil, nil
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&after)
	attempts = log.Len()
	runtime.KeepAlive(log)
	runtime.KeepAlive(specs)
	if after.HeapAlloc <= before.HeapAlloc {
		return 0, attempts
	}
	return after.HeapAlloc - before.HeapAlloc, attempts
}

// checkPeakRSS enforces the scale-smoke memory ceiling: when
// PEGFLOW_SCALE_MAXRSS_MB is set, the process's peak resident set
// (VmHWM from /proc/self/status) must stay under it. The ceiling covers
// the O(n) plan — the run's input — so it bounds absolute memory while
// the retention assertions bound growth; together they catch both a
// record-retention regression and a planning-memory blowup.
func checkPeakRSS(t *testing.T) {
	t.Helper()
	limit := os.Getenv("PEGFLOW_SCALE_MAXRSS_MB")
	if limit == "" {
		return
	}
	mb, err := strconv.Atoi(limit)
	if err != nil || mb <= 0 {
		t.Fatalf("bad PEGFLOW_SCALE_MAXRSS_MB=%q", limit)
	}
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		t.Logf("peak RSS unavailable: %v", err)
		return
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			break
		}
		kb, err := strconv.Atoi(fields[1])
		if err != nil {
			break
		}
		t.Logf("peak RSS %d MiB (ceiling %d MiB)", kb/1024, mb)
		if kb > mb*1024 {
			t.Errorf("peak RSS %d MiB exceeds the %d MiB scale-smoke ceiling", kb/1024, mb)
		}
		return
	}
	t.Log("peak RSS unavailable: no VmHWM in /proc/self/status")
}

// TestMillionJobScale is the acceptance gate for the memory-flat big-run
// path at full scale: an aggregated run of the big n (3·10^4 locally,
// 10^6 in the CI scale-smoke step) on the two-site failover world must
// complete every job and retain no more than 2× the heap an n=10^4 run
// retains, plus a fixed 1 MiB measurement allowance. The two-site world
// is not a concession: at n=10^6 the serial merge outlives OSG's mean
// time to eviction 20-fold, so the opportunistic pool alone can never
// finish — exactly the paper's reason for pairing the campus cluster
// with the grid. An exact-mode run at n=10^4 is the contrast case
// proving the probe sees record retention.
func TestMillionJobScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale measurement under -short")
	}
	big := scaleBigN(t)
	const small = 10000

	smallBytes, smallAttempts := retainedByScaleRun(t, small, true)
	bigBytes, bigAttempts := retainedByScaleRun(t, big, true)
	t.Logf("aggregated two-site retention: n=%d → %d B (%d attempts); n=%d → %d B (%d attempts)",
		small, smallBytes, smallAttempts, big, bigBytes, bigAttempts)
	if bigAttempts < big {
		t.Errorf("n=%d run executed only %d attempts", big, bigAttempts)
	}

	const slack = 1 << 20
	if bigBytes > 2*smallBytes+slack {
		t.Errorf("aggregated retention grew with n: %d B at n=%d vs %d B at n=%d",
			bigBytes, big, smallBytes, small)
	}

	exactBytes, exactAttempts := retainedByScaleRun(t, small, false)
	t.Logf("exact two-site retention: n=%d → %d B (%d attempts)", small, exactBytes, exactAttempts)
	if exactBytes < 5*(bigBytes+1) {
		t.Errorf("exact-mode run at n=%d retained only %d B — the probe cannot see record retention",
			small, exactBytes)
	}

	checkPeakRSS(t)
}
