package core

import (
	"encoding/json"
	"testing"
	"time"

	"pegflow/internal/planner"
	"pegflow/internal/workflow"
)

// uncachedExperiment returns the default experiment with the workload's
// synthesis fingerprint cleared, which forces every plan to be built from
// scratch — the pre-cache behavior, used as the reference.
func uncachedExperiment(seed uint64) *Experiment {
	e := DefaultExperiment(seed)
	w := e.Workload
	w.Params = workflow.WorkloadParams{}
	e.Workload = w
	return e
}

// TestPlanCacheByteIdentical is the cache's correctness gate: for a grid
// of seeds, platforms, chunk counts and clustering options, a run served
// by the plan cache (a patched clone of the shape master) must be
// byte-identical — full kickstart log, summary and per-task statistics —
// to a run planned from scratch.
func TestPlanCacheByteIdentical(t *testing.T) {
	ResetPlanCache()
	copts := []planner.ClusterOptions{
		{},
		{MaxTasksPerJob: 4},
		{TargetJobSeconds: 1800},
	}
	for _, seed := range []uint64{1, 42} {
		for _, p := range []string{"sandhills", "osg"} {
			for _, n := range []int{10, 100} {
				for _, co := range copts {
					cached, err := DefaultExperiment(seed).RunClustered(p, n, co)
					if err != nil {
						t.Fatal(err)
					}
					direct, err := uncachedExperiment(seed).RunClustered(p, n, co)
					if err != nil {
						t.Fatal(err)
					}
					cb, err := json.Marshal(cached)
					if err != nil {
						t.Fatal(err)
					}
					db, err := json.Marshal(direct)
					if err != nil {
						t.Fatal(err)
					}
					if string(cb) != string(db) {
						t.Errorf("seed=%d %s n=%d copts=%+v: cached run differs from uncached run", seed, p, n, co)
					}
				}
			}
		}
	}

	// The serial baseline too.
	cached, err := DefaultExperiment(42).RunSerial()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := uncachedExperiment(42).RunSerial()
	if err != nil {
		t.Fatal(err)
	}
	cb, _ := json.Marshal(cached)
	db, _ := json.Marshal(direct)
	if string(cb) != string(db) {
		t.Error("serial baseline: cached run differs from uncached run")
	}
}

// TestPlanCacheBuildsOncePerShape verifies the cache's economics: many
// retrievals across different seeds share one master per (site, n) shape.
func TestPlanCacheBuildsOncePerShape(t *testing.T) {
	ResetPlanCache()
	for seed := uint64(0); seed < 8; seed++ {
		e := DefaultExperiment(seed)
		if _, err := e.cachedWorkflowPlan("sandhills", 50, e.Workload, false); err != nil {
			t.Fatal(err)
		}
	}
	if got := planCacheLen(); got != 1 {
		t.Errorf("cache entries after 8 seeds of one shape = %d, want 1", got)
	}
	e := DefaultExperiment(0)
	if _, err := e.cachedWorkflowPlan("osg", 50, e.Workload, false); err != nil {
		t.Fatal(err)
	}
	if _, err := e.cachedWorkflowPlan("sandhills", 60, e.Workload, false); err != nil {
		t.Fatal(err)
	}
	if got := planCacheLen(); got != 3 {
		t.Errorf("cache entries after two more shapes = %d, want 3", got)
	}

	// Distinct retrievals must be independent clones, not the master.
	a, err := e.cachedWorkflowPlan("sandhills", 50, e.Workload, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.cachedWorkflowPlan("sandhills", 50, e.Workload, false)
	if err != nil {
		t.Fatal(err)
	}
	if a == b || a.Info["run_cap3_0001"] == b.Info["run_cap3_0001"] {
		t.Error("cache handed out shared plan state instead of clones")
	}
}

func planCacheLen() int {
	return planCache.Len()
}

// TestPlanCacheSpeedup pins the headline win: retrieving a warm cached
// plan (clone + runtime patch) must be at least 2x faster than planning
// from scratch. The real gap is an order of magnitude — the 2x floor
// leaves room for scheduler noise on tiny CI machines.
func TestPlanCacheSpeedup(t *testing.T) {
	const n = 300
	const reps = 5
	e := DefaultExperiment(42)
	eu := uncachedExperiment(42)

	// Warm both paths (cache master, memoized workload tables).
	if _, err := e.cachedWorkflowPlan("sandhills", n, e.Workload, false); err != nil {
		t.Fatal(err)
	}
	if _, err := eu.cachedWorkflowPlan("sandhills", n, eu.Workload, false); err != nil {
		t.Fatal(err)
	}

	// Best-of-5 sampling damps scheduler preemption on tiny CI machines:
	// one undisturbed trial per side suffices, and the real gap (~6x) is
	// triple the asserted floor.
	best := func(f func()) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for trial := 0; trial < 5; trial++ {
			start := time.Now()
			for i := 0; i < reps; i++ {
				f()
			}
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}

	cachedD := best(func() {
		if _, err := e.cachedWorkflowPlan("sandhills", n, e.Workload, false); err != nil {
			t.Fatal(err)
		}
	})
	uncachedD := best(func() {
		if _, err := eu.cachedWorkflowPlan("sandhills", n, eu.Workload, false); err != nil {
			t.Fatal(err)
		}
	})

	t.Logf("warm cached retrieval: %v/plan, uncached planning: %v/plan (%.1fx)",
		cachedD/reps, uncachedD/reps, float64(uncachedD)/float64(cachedD))
	if cachedD*2 > uncachedD {
		t.Errorf("cached plan retrieval (%v) is not ≥2x faster than uncached planning (%v)",
			cachedD/reps, uncachedD/reps)
	}
}
