// The cluster-size sweep: the new experiment axis the clustering tentpole
// opens. The paper attributes the Sandhills/OSG gap to per-job overhead —
// heavy-tailed dispatch latency plus a download/install on every job — and
// Pegasus's production answer is horizontal task clustering. Sweeping the
// cluster size on both platforms shows where the win lives (the
// overhead-dominated OSG) and where it turns into a loss (serializing
// payloads a dedicated cluster could have run in parallel).

package core

import (
	"encoding/json"
	"fmt"
	"io"

	"pegflow/internal/engine"
	"pegflow/internal/planner"
	"pegflow/internal/pool"
	"pegflow/internal/sim/platform"
	"pegflow/internal/stats"
	"pegflow/internal/workflow"
)

// RunClustered executes the blast2cap3 workflow with n chunks on the named
// platform, with the post-planning clustering pass applied. Seeding is
// identical to RunWorkflow, so a run with disabled options reproduces
// RunWorkflow exactly and sweeps compare like with like.
func (e *Experiment) RunClustered(platformName string, n int, copts planner.ClusterOptions) (*RunResult, error) {
	cfg, _, err := e.platformConfig(platformName)
	if err != nil {
		return nil, err
	}
	cfg.Seed = e.Seed ^ (uint64(n) * 0x9e3779b97f4a7c15)

	// The plan cache pays DAX construction and catalog resolution once per
	// (platform, n) shape; this retrieval clones the master and patches in
	// this seed's chunk runtimes. Clustering runs per retrieval: with
	// TargetJobSeconds the packing depends on the seeded runtimes.
	plan, err := e.cachedWorkflowPlan(platformName, n, e.Workload, false)
	if err != nil {
		return nil, err
	}
	plan, err = planner.Cluster(plan, copts)
	if err != nil {
		return nil, err
	}
	ex, err := platform.NewExecutor(cfg)
	if err != nil {
		return nil, err
	}
	res, err := engine.Run(plan, ex, engine.Options{RetryLimit: e.RetryLimit, Aggregate: e.Aggregate})
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Platform: platformName,
		N:        n,
		Result:   res,
		Summary:  stats.Summarize(res.Log, res.Makespan),
		PerTask:  stats.PerTransformation(res.Log),
	}, nil
}

// ClusterPoint is one cell of the cluster-size sweep.
type ClusterPoint struct {
	// Platform is the simulated platform the cell ran on.
	Platform string `json:"platform"`
	// MaxTasksPerJob and TargetJobSeconds echo the clustering options of
	// the cell (both zero for the unclustered baseline).
	MaxTasksPerJob   int     `json:"max_tasks_per_job,omitempty"`
	TargetJobSeconds float64 `json:"target_job_seconds,omitempty"`
	// GridJobs is the number of executable jobs after clustering.
	GridJobs int `json:"grid_jobs"`
	// Makespan is the workflow wall time in simulated seconds.
	Makespan float64 `json:"makespan_s"`
	// ReductionPct is the makespan reduction vs. the platform's
	// unclustered baseline, in percent (negative = clustering hurt).
	ReductionPct float64 `json:"reduction_pct"`
	// MeanWaiting and MeanSetup are the run_cap3 per-task phase means —
	// the overhead clustering amortizes.
	MeanWaiting float64 `json:"mean_waiting_s"`
	MeanSetup   float64 `json:"mean_install_s"`
	// Retries and Evictions echo the engine counters.
	Retries   int `json:"retries"`
	Evictions int `json:"evictions"`
}

// DefaultClusterSweepN is the chunk count of the default sweep: the
// fine-decomposition regime (tasks well beyond the slot counts) where the
// paper's per-job overhead dominates the slot·seconds and clustering has
// something to amortize.
const DefaultClusterSweepN = 2000

// DefaultClusterSweepOptions are the swept clustering configurations: the
// unclustered baseline, fixed bundle sizes, and runtime-aware packing
// targets (which soak up small tasks without serializing the heavy ones).
func DefaultClusterSweepOptions() []planner.ClusterOptions {
	return []planner.ClusterOptions{
		{},
		{MaxTasksPerJob: 4},
		{MaxTasksPerJob: 8},
		{MaxTasksPerJob: 16},
		{TargetJobSeconds: 1800},
		{TargetJobSeconds: 3600},
	}
}

// ClusterSweep runs the cluster-size sweep: for every platform and every
// clustering configuration (the first must be the unclustered baseline; a
// zero ClusterOptions is prepended if missing), one full workflow
// simulation, fanned across the worker pool. Results are in (platform,
// option) order and identical for any worker count.
func ClusterSweep(seed uint64, n int, platforms []string, opts []planner.ClusterOptions, workers int) ([]ClusterPoint, error) {
	if len(platforms) == 0 {
		platforms = Platforms
	}
	if len(opts) == 0 {
		opts = DefaultClusterSweepOptions()
	}
	if opts[0].Enabled() {
		opts = append([]planner.ClusterOptions{{}}, opts...)
	}

	points := make([]ClusterPoint, len(platforms)*len(opts))
	err := pool.ForEach(workers, len(points), func(i int) error {
		p, copt := platforms[i/len(opts)], opts[i%len(opts)]
		e := DefaultExperiment(seed)
		r, err := e.RunClustered(p, n, copt)
		if err != nil {
			return fmt.Errorf("core: cluster sweep %s %+v: %w", p, copt, err)
		}
		pt := ClusterPoint{
			Platform:         p,
			MaxTasksPerJob:   copt.MaxTasksPerJob,
			TargetJobSeconds: copt.TargetJobSeconds,
			GridJobs:         len(r.Result.Completed) + len(r.Result.Unfinished),
			Makespan:         r.WallTime(),
			Retries:          r.Result.Retries,
			Evictions:        r.Result.Evictions,
		}
		for _, ts := range r.PerTask {
			if ts.Transformation == workflow.TrRunCAP3 {
				pt.MeanWaiting = ts.MeanWaiting
				pt.MeanSetup = ts.MeanSetup
			}
		}
		points[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi := range platforms {
		base := points[pi*len(opts)].Makespan
		for oi := range opts {
			pt := &points[pi*len(opts)+oi]
			pt.ReductionPct = 100 * stats.Reduction(base, pt.Makespan)
		}
	}
	return points, nil
}

// ClusterBench is the serialized cluster-size sweep (BENCH_cluster.json) —
// the perf-trajectory artifact regenerated by `experiments -fig cluster`.
type ClusterBench struct {
	Experiment string         `json:"experiment"`
	Seed       uint64         `json:"seed"`
	N          int            `json:"n"`
	Points     []ClusterPoint `json:"points"`
}

// WriteJSON renders the bench artifact as deterministic indented JSON.
func (b *ClusterBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
