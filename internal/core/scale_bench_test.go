package core

import (
	"testing"
)

// BenchmarkMillionJobRun measures the aggregated big-run path end to end:
// one RunWorkflow on the OSG model with the plan cache warm, so each
// iteration prices planning-clone + simulation + streaming statistics —
// the cost that recurs per sweep cell. The default n is 10^5 to keep the
// CI bench smoke (one iteration of every benchmark) fast; BENCH_scale.json
// records the PEGFLOW_SCALE_N=1000000 numbers.
func BenchmarkMillionJobRun(b *testing.B) {
	n := scaleBigN(b)
	e := DefaultExperiment(42)
	e.Aggregate = true
	e.RetryLimit = scaleRetryLimit
	warm, err := e.RunWorkflow("osg", n)
	if err != nil {
		b.Fatal(err)
	}
	attempts := warm.Result.Log.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := e.RunWorkflow("osg", n)
		if err != nil {
			b.Fatal(err)
		}
		if r.Result.Log.Len() != attempts {
			b.Fatalf("nondeterministic run: %d attempts, want %d", r.Result.Log.Len(), attempts)
		}
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(attempts)*float64(b.N)/b.Elapsed().Seconds(), "attempts/s")
	}
}
