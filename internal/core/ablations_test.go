package core

import (
	"testing"

	"pegflow/internal/workflow"
)

func TestVariantPreinstallOSGRemovesInstallTime(t *testing.T) {
	e := DefaultExperiment(canonicalSeed)
	base, err := e.RunWorkflow("osg", 100)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := e.RunVariant("osg", 100, Variant{PreinstallOSG: true})
	if err != nil {
		t.Fatal(err)
	}
	baseCap3 := findTask(base.PerTask, workflow.TrRunCAP3)
	preCap3 := findTask(pre.PerTask, workflow.TrRunCAP3)
	if baseCap3.MeanSetup <= 0 {
		t.Error("baseline OSG has no install time")
	}
	if preCap3.MeanSetup != 0 {
		t.Errorf("preinstalled OSG install time = %v, want 0", preCap3.MeanSetup)
	}
	if pre.WallTime() >= base.WallTime() {
		t.Errorf("preinstalling did not help: %v vs %v", pre.WallTime(), base.WallTime())
	}
}

func TestVariantDisablePreemptionStopsEvictions(t *testing.T) {
	// Averaged over seeds, disabling the hazard removes evictions and
	// reduces wall time at n=10 where retries are expensive.
	var withEv, withoutEv float64
	totalEv := 0
	for s := uint64(0); s < 5; s++ {
		e := DefaultExperiment(canonicalSeed + s)
		a, err := e.RunWorkflow("osg", 10)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.RunVariant("osg", 10, Variant{DisablePreemption: true})
		if err != nil {
			t.Fatal(err)
		}
		if b.Result.Evictions != 0 {
			t.Errorf("seed %d: evictions with hazard disabled: %d", s, b.Result.Evictions)
		}
		withEv += a.WallTime()
		withoutEv += b.WallTime()
		totalEv += a.Result.Evictions
	}
	if totalEv == 0 {
		t.Error("no evictions across 5 seeds at n=10; hazard inert")
	}
	if withoutEv >= withEv {
		t.Errorf("mean wall without evictions (%v) not below with (%v)", withoutEv/5, withEv/5)
	}
}

func TestVariantClusteringReducesJobCount(t *testing.T) {
	e := DefaultExperiment(canonicalSeed)
	base, err := e.RunVariant("sandhills", 500, Variant{ClusterSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := e.RunVariant("sandhills", 500, Variant{ClusterSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if base.Summary.Jobs != 505 {
		t.Errorf("unclustered jobs = %d, want 505", base.Summary.Jobs)
	}
	if clustered.Summary.Jobs >= base.Summary.Jobs/4 {
		t.Errorf("clustered jobs = %d, want far fewer than %d", clustered.Summary.Jobs, base.Summary.Jobs)
	}
	// Total executed work is preserved by clustering.
	relDiff := (clustered.Summary.CumulativeKickstart - base.Summary.CumulativeKickstart) /
		base.Summary.CumulativeKickstart
	if relDiff < -0.15 || relDiff > 0.15 {
		t.Errorf("clustering changed cumulative kickstart by %.1f%%", 100*relDiff)
	}
}

func TestVariantSkewChangesPlateau(t *testing.T) {
	e := DefaultExperiment(canonicalSeed)
	flat, err := e.RunVariant("sandhills", 300, Variant{SizeExponent: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	paper, err := e.RunVariant("sandhills", 300, Variant{SizeExponent: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// A flatter rank-size law means much more total work, so the n=300
	// wall time rises well above the paper workload's plateau.
	if flat.WallTime() <= 1.5*paper.WallTime() {
		t.Errorf("flat-skew wall %v not well above paper workload %v",
			flat.WallTime(), paper.WallTime())
	}
}

func TestCloudPlatformFutureWork(t *testing.T) {
	e := DefaultExperiment(canonicalSeed)
	cloud, err := e.RunWorkflow("cloud", 300)
	if err != nil {
		t.Fatal(err)
	}
	if !cloud.Result.Success {
		t.Fatal("cloud run failed")
	}
	sand, err := e.RunWorkflow("sandhills", 300)
	if err != nil {
		t.Fatal(err)
	}
	osg, err := e.RunWorkflow("osg", 300)
	if err != nil {
		t.Fatal(err)
	}
	// The cloud has no install step and no preemption, so it beats OSG;
	// provisioning latency and the virtualization tax keep it near (and
	// here above) the dedicated campus allocation.
	if cloud.WallTime() >= osg.WallTime() {
		t.Errorf("cloud (%v) not below OSG (%v)", cloud.WallTime(), osg.WallTime())
	}
	if cloud.Result.Evictions != 0 {
		t.Errorf("cloud evictions = %d", cloud.Result.Evictions)
	}
	for _, row := range cloud.PerTask {
		if row.MeanSetup != 0 {
			t.Errorf("cloud install time for %s = %v", row.Transformation, row.MeanSetup)
		}
	}
	_ = sand
}

func TestVariantUnknownPlatform(t *testing.T) {
	e := DefaultExperiment(1)
	if _, err := e.RunVariant("mainframe", 10, Variant{}); err == nil {
		t.Error("unknown platform accepted")
	}
}
