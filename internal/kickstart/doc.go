// Package kickstart defines per-invocation provenance records, mirroring
// the role of pegasus-kickstart: every job attempt produces a Record with
// the timing phases the paper's evaluation is built from.
//
// Phases of one attempt (all in seconds of workflow-relative time):
//
//	submit ──waiting──▶ setup start ──setup──▶ exec start ──exec──▶ end
//
// "Waiting Time" (paper §VI.B) is the time between submission and the
// moment the job begins doing anything on a node: queueing on the submit
// host plus queueing on the remote host. "Download/Install Time" is the
// setup phase (only non-zero on sites without preinstalled software).
// "Kickstart Time" is the actual execution duration on the node.
package kickstart
