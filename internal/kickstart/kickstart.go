package kickstart

import (
	"encoding/json"
	"fmt"
	"io"
)

// Status is the terminal state of one job attempt.
type Status int

const (
	// StatusSuccess marks a completed attempt.
	StatusSuccess Status = iota
	// StatusFailed marks an attempt that ran and exited with an error.
	StatusFailed
	// StatusEvicted marks an attempt preempted by the resource owner
	// (the OSG failure mode described in the paper).
	StatusEvicted
)

// String returns the lower-case status name.
func (s Status) String() string {
	switch s {
	case StatusSuccess:
		return "success"
	case StatusFailed:
		return "failed"
	case StatusEvicted:
		return "evicted"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Record is the provenance of one job attempt.
type Record struct {
	// JobID is the executable-workflow job ID.
	JobID string `json:"job_id"`
	// Transformation is the logical executable name.
	Transformation string `json:"transformation"`
	// Site and Node locate the attempt.
	Site string `json:"site"`
	Node string `json:"node,omitempty"`
	// Attempt numbers retries from 1.
	Attempt int `json:"attempt"`
	// ClusterID names the composite (clustered) grid job this attempt ran
	// inside, when horizontal task clustering folded several payload tasks
	// into one dispatch; empty for unclustered attempts. All member
	// records of one clustered attempt share the composite's ClusterID.
	ClusterID string `json:"cluster_id,omitempty"`
	// SubmitTime is when the meta-scheduler released the job.
	SubmitTime float64 `json:"submit_time"`
	// SetupStart is when the node began working on the job (end of the
	// waiting phase).
	SetupStart float64 `json:"setup_start"`
	// ExecStart is when the payload began executing (end of setup).
	ExecStart float64 `json:"exec_start"`
	// EndTime is when the attempt finished (successfully or not).
	EndTime float64 `json:"end_time"`
	// Status is the terminal state.
	Status Status `json:"status"`
	// ExitMessage carries failure detail for non-success attempts.
	ExitMessage string `json:"exit_message,omitempty"`
}

// Waiting returns the paper's "Waiting Time" statistic for this attempt.
func (r *Record) Waiting() float64 { return r.SetupStart - r.SubmitTime }

// Setup returns the paper's "Download/Install Time" statistic.
func (r *Record) Setup() float64 { return r.ExecStart - r.SetupStart }

// Exec returns the paper's "Kickstart Time" statistic (actual duration on
// the remote node).
func (r *Record) Exec() float64 { return r.EndTime - r.ExecStart }

// Total returns submit-to-end time for the attempt.
func (r *Record) Total() float64 { return r.EndTime - r.SubmitTime }

// Validate checks that the phase timestamps are ordered.
func (r *Record) Validate() error {
	if r.JobID == "" {
		return fmt.Errorf("kickstart: record with empty job ID")
	}
	if r.SetupStart < r.SubmitTime {
		return fmt.Errorf("kickstart: %s attempt %d: setup start %.3f before submit %.3f",
			r.JobID, r.Attempt, r.SetupStart, r.SubmitTime)
	}
	if r.ExecStart < r.SetupStart {
		return fmt.Errorf("kickstart: %s attempt %d: exec start %.3f before setup start %.3f",
			r.JobID, r.Attempt, r.ExecStart, r.SetupStart)
	}
	if r.EndTime < r.ExecStart {
		return fmt.Errorf("kickstart: %s attempt %d: end %.3f before exec start %.3f",
			r.JobID, r.Attempt, r.EndTime, r.ExecStart)
	}
	return nil
}

// Log is an append-only collection of attempt records for one workflow run.
//
// A Log normally retains every record. SetAggregate switches it to
// aggregation mode, where Append folds each record into fixed-size
// accumulators and quantile sketches instead of retaining it — the
// memory-flat path for million-job runs. Aggregation assumes the
// engine's record invariants (each job succeeds at most once, and never
// fails after succeeding); logs parsed back from JSON are always exact.
type Log struct {
	records  []*Record
	appended int
	agg      *Aggregates
	// onRecords, when non-nil, observes every Records call. Tests use it
	// to pin single-pass consumers (stats.Summarize must not walk the
	// log twice).
	onRecords func()
}

// SetAggregate switches the log to aggregation mode. It must be called
// before the first Append; switching a log that already retains records
// panics, because the retained records would silently vanish from the
// aggregates.
func (l *Log) SetAggregate() {
	if len(l.records) > 0 {
		panic("kickstart: SetAggregate on a log that already retains records")
	}
	if l.agg == nil {
		l.agg = newAggregates()
	}
}

// Aggregating reports whether the log folds records instead of
// retaining them.
func (l *Log) Aggregating() bool { return l.agg != nil }

// Aggregates returns the folded view of an aggregating log, or nil for
// an exact log.
func (l *Log) Aggregates() *Aggregates { return l.agg }

// ObserveRecords installs fn to be invoked on every Records call — a
// test seam for asserting how many passes a consumer makes over the
// log.
func (l *Log) ObserveRecords(fn func()) { l.onRecords = fn }

// Append adds a record after validating it. In aggregation mode the
// record is folded and not retained; the caller keeps ownership and may
// recycle it.
func (l *Log) Append(r *Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	l.appended++
	if l.agg != nil {
		l.agg.fold(r)
		return nil
	}
	l.records = append(l.records, r)
	return nil
}

// Records returns all records in append order. An aggregating log
// retains none and returns nil.
func (l *Log) Records() []*Record {
	if l.onRecords != nil {
		l.onRecords()
	}
	return l.records
}

// Len returns the number of records appended, whether or not they were
// retained.
func (l *Log) Len() int { return l.appended }

// Successes returns only the records of successful attempts.
func (l *Log) Successes() []*Record {
	var out []*Record
	for _, r := range l.records {
		if r.Status == StatusSuccess {
			out = append(out, r)
		}
	}
	return out
}

// Failures returns only the records of unsuccessful attempts.
func (l *Log) Failures() []*Record {
	var out []*Record
	for _, r := range l.records {
		if r.Status != StatusSuccess {
			out = append(out, r)
		}
	}
	return out
}

// WriteJSON streams the log as JSON lines, one record per line.
func (l *Log) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range l.records {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSON parses a JSON-lines log.
func ReadJSON(r io.Reader) (*Log, error) {
	dec := json.NewDecoder(r)
	l := &Log{}
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return l, nil
		} else if err != nil {
			return nil, fmt.Errorf("kickstart: parsing log: %w", err)
		}
		if err := l.Append(&rec); err != nil {
			return nil, err
		}
	}
}
