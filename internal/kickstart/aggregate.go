package kickstart

import (
	"sort"

	"pegflow/internal/stats/quantile"
)

// PhaseAccum accumulates the phase timings of successful attempts for
// one grouping key (a transformation or a site). Means are derived by
// the stats package as Sum*/Count.
type PhaseAccum struct {
	// Count is the number of successful attempts folded in.
	Count int
	// SumExec, SumWait and SumSetup total the exec, waiting and
	// download/install phases in seconds.
	SumExec, SumWait, SumSetup float64
	// MaxExec and MaxWait expose stragglers.
	MaxExec, MaxWait float64
}

func (a *PhaseAccum) fold(r *Record) {
	a.Count++
	e, w := r.Exec(), r.Waiting()
	a.SumExec += e
	a.SumWait += w
	a.SumSetup += r.Setup()
	if e > a.MaxExec {
		a.MaxExec = e
	}
	if w > a.MaxWait {
		a.MaxWait = w
	}
}

// ClusterAccum accumulates the records of one composite (clustered)
// grid job, mirroring the fields of stats.ClusterStats.
type ClusterAccum struct {
	// Site and Transformation locate the composite; Site is where it
	// finally succeeded.
	Site, Transformation string
	// Tasks counts distinct payload tasks that succeeded inside the
	// composite.
	Tasks int
	// Attempts counts composite-level attempts: failed bundle records
	// plus one per successful landing.
	Attempts int
	// Evictions counts bundle attempts ended by preemption.
	Evictions int
	// ExecSeconds sums the members' execution time; SetupSeconds and
	// WaitSeconds are the successful landing's one-off overheads.
	ExecSeconds, SetupSeconds, WaitSeconds float64

	sawFirstMember bool
}

// Aggregates is the folded view of a Log in aggregation mode: the
// fixed-size state every stats consumer (Summarize, PerTransformation,
// SiteBreakdown, PerCluster, percentile columns) needs, with streaming
// sketches in place of retained per-attempt values.
type Aggregates struct {
	// Attempts counts all folded records; Successes, Failed and Evicted
	// split them by status.
	Attempts, Successes, Failed, Evicted int
	// CumulativeTotal and CumulativeExec sum Total() and Exec() over
	// successful attempts.
	CumulativeTotal, CumulativeExec float64
	// ByTransformation and BySite accumulate successful-attempt phase
	// timings keyed by transformation and site.
	ByTransformation map[string]*PhaseAccum
	// BySite groups by execution site.
	BySite map[string]*PhaseAccum
	// ByCluster accumulates composite-job records keyed by ClusterID.
	ByCluster map[string]*ClusterAccum
	// ExecSketch and WaitSketch stream successful attempts' exec and
	// waiting times for percentile queries.
	ExecSketch, WaitSketch *quantile.Sketch

	// unfinished tracks jobs that have failed and not (yet) succeeded.
	// Entries are deleted when the job later succeeds, so the map's
	// size is bounded by concurrently-failing jobs plus jobs that never
	// finish — not by total attempts.
	unfinished map[string]struct{}
}

func newAggregates() *Aggregates {
	return &Aggregates{
		ByTransformation: make(map[string]*PhaseAccum),
		BySite:           make(map[string]*PhaseAccum),
		ByCluster:        make(map[string]*ClusterAccum),
		ExecSketch:       quantile.NewSketch(),
		WaitSketch:       quantile.NewSketch(),
		unfinished:       make(map[string]struct{}),
	}
}

// fold absorbs one record. It allocates only when a new grouping key
// first appears; the steady-state path is allocation-free (pinned by
// TestAggregateFoldAllocs in internal/stats).
func (a *Aggregates) fold(r *Record) {
	a.Attempts++
	switch r.Status {
	case StatusSuccess:
		a.Successes++
		a.CumulativeTotal += r.Total()
		a.CumulativeExec += r.Exec()
		delete(a.unfinished, r.JobID)
		tr := a.ByTransformation[r.Transformation]
		if tr == nil {
			tr = &PhaseAccum{}
			a.ByTransformation[r.Transformation] = tr
		}
		tr.fold(r)
		st := a.BySite[r.Site]
		if st == nil {
			st = &PhaseAccum{}
			a.BySite[r.Site] = st
		}
		st.fold(r)
		a.ExecSketch.Add(r.Exec())
		a.WaitSketch.Add(r.Waiting())
	case StatusEvicted:
		a.Evicted++
		a.unfinished[r.JobID] = struct{}{}
	default:
		a.Failed++
		a.unfinished[r.JobID] = struct{}{}
	}
	if r.ClusterID != "" {
		a.foldCluster(r)
	}
}

// foldCluster mirrors stats.PerCluster's per-record accounting.
func (a *Aggregates) foldCluster(r *Record) {
	ca := a.ByCluster[r.ClusterID]
	if ca == nil {
		ca = &ClusterAccum{Site: r.Site, Transformation: r.Transformation}
		a.ByCluster[r.ClusterID] = ca
	}
	if r.Status != StatusSuccess {
		ca.Attempts++
		if r.Status == StatusEvicted {
			ca.Evictions++
		}
		return
	}
	ca.Tasks++
	ca.ExecSeconds += r.Exec()
	ca.SetupSeconds += r.Setup()
	if !ca.sawFirstMember {
		ca.sawFirstMember = true
		ca.WaitSeconds = r.Waiting()
		ca.Site = r.Site
		ca.Attempts++
	}
}

// SucceededJobs reports the number of distinct jobs that succeeded.
// Under the engine invariant (one success per job) this is the success
// count.
func (a *Aggregates) SucceededJobs() int { return a.Successes }

// UnfinishedJobs reports the number of distinct jobs that failed at
// least once and never succeeded.
func (a *Aggregates) UnfinishedJobs() int { return len(a.unfinished) }

// ClusterIDs returns the composite-job IDs seen, sorted — the
// deterministic iteration order for ByCluster.
func (a *Aggregates) ClusterIDs() []string {
	ids := make([]string, 0, len(a.ByCluster))
	for id := range a.ByCluster {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
