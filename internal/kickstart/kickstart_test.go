package kickstart

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func sample() *Record {
	return &Record{
		JobID:          "run_cap3_007",
		Transformation: "run_cap3",
		Site:           "osg",
		Node:           "node-12",
		Attempt:        1,
		SubmitTime:     100,
		SetupStart:     160, // 60 s waiting
		ExecStart:      460, // 300 s download/install
		EndTime:        1460,
		Status:         StatusSuccess,
	}
}

func TestPhaseAccessors(t *testing.T) {
	r := sample()
	if got := r.Waiting(); got != 60 {
		t.Errorf("Waiting = %v, want 60", got)
	}
	if got := r.Setup(); got != 300 {
		t.Errorf("Setup = %v, want 300", got)
	}
	if got := r.Exec(); got != 1000 {
		t.Errorf("Exec = %v, want 1000", got)
	}
	if got := r.Total(); got != 1360 {
		t.Errorf("Total = %v, want 1360", got)
	}
}

func TestValidateOrdering(t *testing.T) {
	cases := []func(*Record){
		func(r *Record) { r.JobID = "" },
		func(r *Record) { r.SetupStart = r.SubmitTime - 1 },
		func(r *Record) { r.ExecStart = r.SetupStart - 1 },
		func(r *Record) { r.EndTime = r.ExecStart - 1 },
	}
	for i, mutate := range cases {
		r := sample()
		mutate(r)
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: invalid record validated: %+v", i, r)
		}
	}
	if err := sample().Validate(); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
}

func TestStatusString(t *testing.T) {
	if StatusSuccess.String() != "success" || StatusFailed.String() != "failed" ||
		StatusEvicted.String() != "evicted" {
		t.Error("status strings wrong")
	}
	if Status(42).String() != "status(42)" {
		t.Errorf("unknown status = %q", Status(42).String())
	}
}

func TestLogFiltering(t *testing.T) {
	l := &Log{}
	ok := sample()
	if err := l.Append(ok); err != nil {
		t.Fatal(err)
	}
	ev := sample()
	ev.Attempt = 2
	ev.Status = StatusEvicted
	ev.ExitMessage = "preempted by resource owner"
	if err := l.Append(ev); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if s := l.Successes(); len(s) != 1 || s[0] != ok {
		t.Errorf("Successes = %v", s)
	}
	if f := l.Failures(); len(f) != 1 || f[0].ExitMessage == "" {
		t.Errorf("Failures = %v", f)
	}
}

func TestLogAppendRejectsInvalid(t *testing.T) {
	l := &Log{}
	bad := sample()
	bad.EndTime = 0
	if err := l.Append(bad); err == nil {
		t.Error("invalid record appended")
	}
	if l.Len() != 0 {
		t.Error("log grew after rejected append")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	l := &Log{}
	r1 := sample()
	r2 := sample()
	r2.JobID = "merge"
	r2.Status = StatusFailed
	r2.ExitMessage = "exit 1"
	for _, r := range []*Record{r1, r2} {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("round trip Len = %d", got.Len())
	}
	g := got.Records()[1]
	if g.JobID != "merge" || g.Status != StatusFailed || g.ExitMessage != "exit 1" {
		t.Errorf("record not preserved: %+v", g)
	}
	if got.Records()[0].Exec() != 1000 {
		t.Errorf("timings not preserved")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{not json")); err == nil {
		t.Error("garbage accepted")
	}
}

// Property: for any ordered phase boundaries, the phase durations are
// non-negative and sum to Total.
func TestPropertyPhasesSumToTotal(t *testing.T) {
	f := func(a, b, c, d uint16) bool {
		ts := []float64{float64(a), float64(b), float64(c), float64(d)}
		// sort 4 values
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				if ts[j] < ts[i] {
					ts[i], ts[j] = ts[j], ts[i]
				}
			}
		}
		r := &Record{JobID: "x", Attempt: 1,
			SubmitTime: ts[0], SetupStart: ts[1], ExecStart: ts[2], EndTime: ts[3]}
		if r.Validate() != nil {
			return false
		}
		if r.Waiting() < 0 || r.Setup() < 0 || r.Exec() < 0 {
			return false
		}
		return math.Abs(r.Waiting()+r.Setup()+r.Exec()-r.Total()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
