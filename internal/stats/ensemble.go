package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"
)

// EnsembleWorkflow is the per-workflow row of an ensemble report.
type EnsembleWorkflow struct {
	// Name labels the workflow within the ensemble.
	Name string `json:"name"`
	// Priority is the ensemble-level scheduling priority.
	Priority int `json:"priority"`
	// Success reports whether every job completed.
	Success bool `json:"success"`
	// Makespan is the workflow's completion time in ensemble virtual
	// seconds (all workflows are admitted at time zero).
	Makespan float64 `json:"makespan_s"`
	// Jobs is the number of jobs in the workflow's plan.
	Jobs int `json:"jobs"`
	// Attempts counts all job attempts including failures.
	Attempts int `json:"attempts"`
	// Retries counts re-submissions.
	Retries int `json:"retries"`
	// Evictions counts attempts ended by preemption.
	Evictions int `json:"evictions"`
	// Failovers counts retries re-targeted to a different site by the
	// cross-site retry policy (a subset of Retries).
	Failovers int `json:"failovers"`
	// Backoffs counts retries delayed by the backoff policy (a subset of
	// Retries).
	Backoffs int `json:"backoffs"`
}

// EnsembleSite is the per-site utilization row of an ensemble report.
type EnsembleSite struct {
	// Site is the platform name.
	Site string `json:"site"`
	// Slots is the site's configured slot count.
	Slots int `json:"slots"`
	// MaxBusySlots is the high-water mark of concurrently busy slots.
	MaxBusySlots int `json:"max_busy_slots"`
	// BusySlotSeconds integrates busy slots over virtual time.
	BusySlotSeconds float64 `json:"busy_slot_seconds"`
	// Utilization is BusySlotSeconds over the site's capacity integral
	// (accounting for opportunistic slot ramps), in [0, 1].
	Utilization float64 `json:"utilization"`
	// Outages counts fault-imposed full outages of the site.
	Outages int `json:"outages"`
	// DowntimeSeconds integrates the site's outages over virtual time.
	DowntimeSeconds float64 `json:"downtime_s"`
}

// EnsembleReport aggregates one ensemble run — the pegasus-em-style view
// of many workflows sharing a platform pool.
type EnsembleReport struct {
	// Policy names the site-selection policy the plans were built with.
	Policy string `json:"policy"`
	// Sites lists the platform pool, sorted by name.
	Sites []EnsembleSite `json:"sites"`
	// Workflows lists the ensemble members in admission order.
	Workflows []EnsembleWorkflow `json:"workflows"`
	// Makespan is the ensemble wall time: the time of the last event.
	Makespan float64 `json:"makespan_s"`
	// MeanWorkflowMakespan averages the member completion times.
	MeanWorkflowMakespan float64 `json:"mean_workflow_makespan_s"`
	// TotalRetries, TotalEvictions and TotalFailovers sum over members.
	TotalRetries   int `json:"total_retries"`
	TotalEvictions int `json:"total_evictions"`
	TotalFailovers int `json:"total_failovers"`
	// TotalBackoffs sums backoff-delayed retries over members, and
	// TotalOutages sums fault-imposed outages over sites.
	TotalBackoffs int `json:"total_backoffs"`
	TotalOutages  int `json:"total_outages"`
}

// WriteJSON renders the report as deterministic indented JSON.
func (r *EnsembleReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteEnsemble renders the report as a human-readable text block.
func WriteEnsemble(w io.Writer, r *EnsembleReport) error {
	fmt.Fprintf(w, "# Ensemble statistics (policy %s)\n", r.Policy)
	fmt.Fprintf(w, "Ensemble Wall Time           : %12.1f s (%s)\n", r.Makespan, HMS(r.Makespan))
	fmt.Fprintf(w, "Mean Workflow Makespan       : %12.1f s (%s)\n",
		r.MeanWorkflowMakespan, HMS(r.MeanWorkflowMakespan))
	fmt.Fprintf(w, "Workflows                    : %12d\n", len(r.Workflows))
	fmt.Fprintf(w, "Total retries                : %12d\n", r.TotalRetries)
	fmt.Fprintf(w, "Total evictions              : %12d\n", r.TotalEvictions)
	fmt.Fprintf(w, "Total failovers              : %12d\n", r.TotalFailovers)
	fmt.Fprintf(w, "Total backoffs               : %12d\n", r.TotalBackoffs)
	fmt.Fprintf(w, "Total site outages           : %12d\n", r.TotalOutages)

	fmt.Fprintln(w)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "WORKFLOW\tPRIORITY\tSTATUS\tMAKESPAN(s)\tJOBS\tATTEMPTS\tRETRIES\tEVICTIONS\tFAILOVERS\tBACKOFFS")
	for _, wf := range r.Workflows {
		status := "ok"
		if !wf.Success {
			status = "INCOMPLETE"
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%.1f\t%d\t%d\t%d\t%d\t%d\t%d\n",
			wf.Name, wf.Priority, status, wf.Makespan, wf.Jobs, wf.Attempts, wf.Retries, wf.Evictions, wf.Failovers, wf.Backoffs)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(w)
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SITE\tSLOTS\tMAX BUSY\tBUSY SLOT·S\tUTILIZATION\tOUTAGES\tDOWNTIME(s)")
	for _, s := range r.Sites {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f\t%.1f%%\t%d\t%.0f\n",
			s.Site, s.Slots, s.MaxBusySlots, s.BusySlotSeconds, s.Utilization*100,
			s.Outages, s.DowntimeSeconds)
	}
	return tw.Flush()
}
