// Package stats aggregates kickstart records into the quantities the
// paper's evaluation reports — the role of pegasus-statistics:
//
//   - "Workflow Wall Time": total running time of the workflow;
//   - "Kickstart Time": actual execution duration of a job on its node;
//   - "Waiting Time": submit-host plus remote-host queueing before the
//     job starts doing anything;
//   - "Download/Install Time": the setup phase spent staging software on
//     sites without a preinstalled stack (OSG).
//
// Aggregations are offered per workflow and per transformation, which is
// exactly the granularity of the paper's Fig. 4 and Fig. 5.
package stats
