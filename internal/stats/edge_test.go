package stats

import (
	"math"
	"testing"

	"pegflow/internal/kickstart"
)

// mkLog builds a log from (submit, setupStart, execStart, end, status)
// tuples, failing the test on records the validator rejects.
func mkLog(t *testing.T, rows [][4]float64, statuses []kickstart.Status) *kickstart.Log {
	t.Helper()
	log := &kickstart.Log{}
	for i, r := range rows {
		st := kickstart.StatusSuccess
		if statuses != nil {
			st = statuses[i]
		}
		err := log.Append(&kickstart.Record{
			JobID: "j", Transformation: "t", Site: "s", Attempt: 1,
			SubmitTime: r[0], SetupStart: r[1], ExecStart: r[2], EndTime: r[3],
			Status: st,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return log
}

func TestPercentileEdgeCases(t *testing.T) {
	exec := func(r *kickstart.Record) float64 { return r.Exec() }
	// Five successes with exec times 10, 20, 30, 40, 50.
	var rows [][4]float64
	for i := 1; i <= 5; i++ {
		rows = append(rows, [4]float64{0, 0, 0, float64(10 * i)})
	}
	log := mkLog(t, rows, nil)

	cases := []struct {
		name string
		p    float64
		want float64
	}{
		{"p0_is_min", 0, 10},
		{"p_negative_clamped_to_min", -7, 10},
		{"p100_is_max", 100, 50},
		{"p_above_100_clamped_to_max", 250, 50},
		{"p_inf_clamped_to_max", math.Inf(1), 50},
		{"p_neg_inf_clamped_to_min", math.Inf(-1), 10},
		{"nan_p_is_zero", math.NaN(), 0},
		{"median_nearest_rank", 50, 30},
		{"p90_nearest_rank", 90, 50},
		{"tiny_p_clamps_to_first", 1e-9, 10},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Percentile(log, c.p, exec); got != c.want {
				t.Errorf("Percentile(p=%v) = %v, want %v", c.p, got, c.want)
			}
		})
	}

	t.Run("empty_log", func(t *testing.T) {
		if got := Percentile(&kickstart.Log{}, 50, exec); got != 0 {
			t.Errorf("empty log percentile = %v, want 0", got)
		}
	})
	t.Run("failures_only", func(t *testing.T) {
		failed := mkLog(t, [][4]float64{{0, 1, 2, 3}}, []kickstart.Status{kickstart.StatusFailed})
		if got := Percentile(failed, 50, exec); got != 0 {
			t.Errorf("failures-only percentile = %v, want 0", got)
		}
	})
	t.Run("single_success", func(t *testing.T) {
		one := mkLog(t, [][4]float64{{0, 0, 0, 7}}, nil)
		for _, p := range []float64{0, 1, 50, 99, 100} {
			if got := Percentile(one, p, exec); got != 7 {
				t.Errorf("single-record percentile(p=%v) = %v, want 7", p, got)
			}
		}
	})
}

func TestBuildTimelineEdgeCases(t *testing.T) {
	t.Run("empty_log", func(t *testing.T) {
		tl := BuildTimeline(&kickstart.Log{}, 8)
		if tl.BucketSeconds != 0 || len(tl.Buckets) != 0 {
			t.Errorf("empty log timeline = %+v, want zero", tl)
		}
	})

	t.Run("all_records_at_time_zero", func(t *testing.T) {
		// Instantaneous records at t=0: no extent, so no buckets.
		tl := BuildTimeline(mkLog(t, [][4]float64{{0, 0, 0, 0}}, nil), 4)
		if len(tl.Buckets) != 0 {
			t.Errorf("zero-extent log produced %d buckets", len(tl.Buckets))
		}
	})

	t.Run("bucket_count_clamped_to_one", func(t *testing.T) {
		log := mkLog(t, [][4]float64{{0, 10, 20, 40}}, nil)
		for _, n := range []int{0, -3} {
			tl := BuildTimeline(log, n)
			if len(tl.Buckets) != 1 {
				t.Errorf("buckets=%d requested, got %d rows, want 1", n, len(tl.Buckets))
			}
		}
	})

	t.Run("zero_duration_phases_invisible", func(t *testing.T) {
		// No waiting (submit==setup), no setup (setup==exec): only the
		// exec phase contributes.
		tl := BuildTimeline(mkLog(t, [][4]float64{{5, 5, 5, 10}}, nil), 1)
		b := tl.Buckets[0]
		if b.Waiting != 0 || b.Installing != 0 || b.Executing != 1 {
			t.Errorf("bucket = %+v, want only executing", b)
		}
	})

	t.Run("eviction_during_setup", func(t *testing.T) {
		// The platform clamps ExecStart to EndTime when a job is evicted
		// mid-install: the attempt occupied its node waiting then
		// installing, and never executed.
		log := mkLog(t, [][4]float64{{0, 40, 100, 100}},
			[]kickstart.Status{kickstart.StatusEvicted})
		tl := BuildTimeline(log, 10) // 10-second buckets over [0, 100)
		var wait, inst, exec int
		for _, b := range tl.Buckets {
			wait += b.Waiting
			inst += b.Installing
			exec += b.Executing
		}
		if wait != 4 || inst != 6 || exec != 0 {
			t.Errorf("wait/inst/exec buckets = %d/%d/%d, want 4/6/0", wait, inst, exec)
		}
	})

	t.Run("phase_ending_exactly_at_end", func(t *testing.T) {
		// A phase closing on the final bucket boundary must land in the
		// last bucket, not one past it.
		tl := BuildTimeline(mkLog(t, [][4]float64{{0, 0, 0, 80}}, nil), 4)
		if got := tl.Buckets[3].Executing; got != 1 {
			t.Errorf("last bucket executing = %d, want 1", got)
		}
	})

	t.Run("failed_attempts_count_toward_utilization", func(t *testing.T) {
		log := mkLog(t, [][4]float64{{0, 10, 20, 40}},
			[]kickstart.Status{kickstart.StatusFailed})
		tl := BuildTimeline(log, 1)
		b := tl.Buckets[0]
		if b.Waiting != 1 || b.Installing != 1 || b.Executing != 1 {
			t.Errorf("failed attempt invisible in timeline: %+v", b)
		}
	})
}
