package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"pegflow/internal/kickstart"
)

func timelineLog(t *testing.T) *kickstart.Log {
	t.Helper()
	return buildLog(t,
		// waits 0-100, installs 100-200, runs 200-400
		rec("a", "t", 0, 100, 200, 400, kickstart.StatusSuccess, 1),
		// runs 0-400 with no waiting/install
		rec("b", "t", 0, 0, 0, 400, kickstart.StatusSuccess, 1),
	)
}

func TestBuildTimelinePhases(t *testing.T) {
	tl := BuildTimeline(timelineLog(t), 4)
	if len(tl.Buckets) != 4 || tl.BucketSeconds != 100 {
		t.Fatalf("buckets = %d width %v", len(tl.Buckets), tl.BucketSeconds)
	}
	b0 := tl.Buckets[0]
	if b0.Waiting != 1 || b0.Installing != 0 || b0.Executing != 1 {
		t.Errorf("bucket 0 = %+v, want waiting 1, executing 1", b0)
	}
	b1 := tl.Buckets[1]
	if b1.Installing != 1 || b1.Executing != 1 {
		t.Errorf("bucket 1 = %+v, want installing 1, executing 1", b1)
	}
	b3 := tl.Buckets[3]
	if b3.Executing != 2 || b3.Waiting != 0 {
		t.Errorf("bucket 3 = %+v, want 2 executing", b3)
	}
}

func TestBuildTimelineEmptyAndDegenerate(t *testing.T) {
	tl := BuildTimeline(&kickstart.Log{}, 5)
	if len(tl.Buckets) != 0 {
		t.Errorf("empty log timeline = %+v", tl)
	}
	tl = BuildTimeline(timelineLog(t), 0) // clamped to 1 bucket
	if len(tl.Buckets) != 1 {
		t.Errorf("bucket clamp failed: %d", len(tl.Buckets))
	}
	if tl.Buckets[0].Executing != 2 {
		t.Errorf("single bucket = %+v", tl.Buckets[0])
	}
}

func TestWriteTimelineRendering(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, BuildTimeline(timelineLog(t), 4), 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "#") {
		t.Error("no executing bars rendered")
	}
	if !strings.Contains(out, ".") {
		t.Error("no waiting bars rendered")
	}
	if !strings.Contains(out, "+") {
		t.Error("no installing bars rendered")
	}
	if lines := strings.Count(out, "\n"); lines != 5 { // header + 4 buckets
		t.Errorf("rendered %d lines", lines)
	}
}

func TestSiteBreakdown(t *testing.T) {
	l := buildLog(t,
		rec("a", "t", 0, 10, 10, 110, kickstart.StatusSuccess, 1),
		rec("b", "t", 0, 20, 50, 150, kickstart.StatusSuccess, 1),
	)
	l.Records()[1].Site = "osg"
	byer := SiteBreakdown(l)
	if len(byer) != 2 {
		t.Fatalf("sites = %d", len(byer))
	}
	if byer["test"].MeanKickstart != 100 {
		t.Errorf("test site kickstart = %v", byer["test"].MeanKickstart)
	}
	if byer["osg"].MeanSetup != 30 {
		t.Errorf("osg setup = %v", byer["osg"].MeanSetup)
	}
}

func TestPercentile(t *testing.T) {
	var recs []*kickstart.Record
	for i := 1; i <= 100; i++ {
		r := rec("j", "t", 0, 0, 0, float64(i), kickstart.StatusSuccess, 1)
		recs = append(recs, r)
	}
	l := buildLog(t, recs...)
	exec := func(r *kickstart.Record) float64 { return r.Exec() }
	if got := Percentile(l, 50, exec); got != 50 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(l, 100, exec); got != 100 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(l, 0, exec); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(&kickstart.Log{}, 50, exec); got != 0 {
		t.Errorf("empty p50 = %v", got)
	}
}

// The batch API must agree with repeated single-percentile calls while
// extracting and sorting only once.
func TestPercentilesBatchMatchesSingles(t *testing.T) {
	var recs []*kickstart.Record
	for _, v := range []float64{9, 3, 41, 7, 22, 5, 13, 1, 30, 17} {
		recs = append(recs, rec("j", "t", 0, 0, 0, v, kickstart.StatusSuccess, 1))
	}
	l := buildLog(t, recs...)
	exec := func(r *kickstart.Record) float64 { return r.Exec() }
	ps := []float64{-5, 0, 25, 50, 90, 99, 100, 150, math.NaN()}
	got := Percentiles(l, exec, ps...)
	if len(got) != len(ps) {
		t.Fatalf("Percentiles returned %d values for %d quantiles", len(got), len(ps))
	}
	for i, p := range ps {
		if want := Percentile(l, p, exec); got[i] != want {
			t.Errorf("Percentiles[%d] (p=%v) = %v, want %v", i, p, got[i], want)
		}
	}
	empty := Percentiles(&kickstart.Log{}, exec, 50, 90)
	if empty[0] != 0 || empty[1] != 0 {
		t.Errorf("empty-log batch = %v, want zeros", empty)
	}
}
