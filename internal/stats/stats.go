package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"pegflow/internal/kickstart"
)

// Summary holds workflow-level statistics.
type Summary struct {
	// WallTime is the workflow wall time in seconds (makespan).
	WallTime float64
	// CumulativeJobWallTime sums submit-to-end time over successful
	// attempts (pegasus-statistics' "cumulative job wall time").
	CumulativeJobWallTime float64
	// CumulativeKickstart sums execution time over successful attempts.
	CumulativeKickstart float64
	// Jobs is the number of distinct jobs that succeeded.
	Jobs int
	// Attempts is the total number of attempts, including failures.
	Attempts int
	// Failures counts non-success attempts.
	Failures int
	// Retries counts attempts beyond the first per job.
	Retries int
}

// Summarize computes workflow-level statistics from a log and the
// engine-reported makespan. It consumes the log in a single pass —
// aggregating logs retain no records, so there is nothing to walk
// twice — reading folded accumulators directly when the log is in
// aggregation mode.
func Summarize(log *kickstart.Log, makespan float64) Summary {
	if agg := log.Aggregates(); agg != nil {
		s := Summary{
			WallTime:              makespan,
			CumulativeJobWallTime: agg.CumulativeTotal,
			CumulativeKickstart:   agg.CumulativeExec,
			Jobs:                  agg.SucceededJobs(),
			Attempts:              agg.Attempts,
			Failures:              agg.Failed + agg.Evicted,
		}
		s.Retries = s.Attempts - s.Jobs - agg.UnfinishedJobs()
		if s.Retries < 0 {
			s.Retries = 0
		}
		return s
	}
	s := Summary{WallTime: makespan, Attempts: log.Len()}
	succeeded := make(map[string]bool)
	// failedOnly holds jobs with a non-success record and no success so
	// far; a later success deletes the entry, so after the pass it is
	// exactly the never-succeeded job set.
	failedOnly := make(map[string]bool)
	for _, r := range log.Records() {
		if r.Status != kickstart.StatusSuccess {
			s.Failures++
			if !succeeded[r.JobID] {
				failedOnly[r.JobID] = true
			}
			continue
		}
		s.CumulativeJobWallTime += r.Total()
		s.CumulativeKickstart += r.Exec()
		if !succeeded[r.JobID] {
			succeeded[r.JobID] = true
			s.Jobs++
			delete(failedOnly, r.JobID)
		}
	}
	s.Retries = s.Attempts - s.Jobs - len(failedOnly)
	if s.Retries < 0 {
		s.Retries = 0
	}
	return s
}

// TaskStats aggregates per-transformation phase timings over successful
// attempts — one row of the paper's Fig. 5.
type TaskStats struct {
	// Transformation is the logical executable name.
	Transformation string
	// Count is the number of successful attempts aggregated.
	Count int
	// MeanKickstart, MeanWaiting and MeanSetup are phase means in
	// seconds ("Kickstart Time", "Waiting Time", "Download/Install
	// Time").
	MeanKickstart, MeanWaiting, MeanSetup float64
	// MaxKickstart and MaxWaiting expose stragglers.
	MaxKickstart, MaxWaiting float64
	// TotalKickstart sums execution seconds.
	TotalKickstart float64
}

// PerTransformation aggregates successful attempts by transformation,
// sorted by transformation name. Aggregating logs answer from their
// folded accumulators.
func PerTransformation(log *kickstart.Log) []TaskStats {
	if agg := log.Aggregates(); agg != nil {
		return accumRows(agg.ByTransformation)
	}
	byTr := make(map[string]*TaskStats)
	for _, r := range log.Successes() {
		ts := byTr[r.Transformation]
		if ts == nil {
			ts = &TaskStats{Transformation: r.Transformation}
			byTr[r.Transformation] = ts
		}
		ts.Count++
		ts.MeanKickstart += r.Exec()
		ts.MeanWaiting += r.Waiting()
		ts.MeanSetup += r.Setup()
		ts.TotalKickstart += r.Exec()
		if r.Exec() > ts.MaxKickstart {
			ts.MaxKickstart = r.Exec()
		}
		if r.Waiting() > ts.MaxWaiting {
			ts.MaxWaiting = r.Waiting()
		}
	}
	names := make([]string, 0, len(byTr))
	for n := range byTr {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]TaskStats, 0, len(names))
	for _, n := range names {
		ts := byTr[n]
		c := float64(ts.Count)
		ts.MeanKickstart /= c
		ts.MeanWaiting /= c
		ts.MeanSetup /= c
		out = append(out, *ts)
	}
	return out
}

// accumTaskStats converts a folded phase accumulator into the TaskStats
// row exact-mode aggregation would have produced: sums accumulated in
// record order, means derived by one division.
func accumTaskStats(name string, a *kickstart.PhaseAccum) TaskStats {
	c := float64(a.Count)
	return TaskStats{
		Transformation: name,
		Count:          a.Count,
		MeanKickstart:  a.SumExec / c,
		MeanWaiting:    a.SumWait / c,
		MeanSetup:      a.SumSetup / c,
		MaxKickstart:   a.MaxExec,
		MaxWaiting:     a.MaxWait,
		TotalKickstart: a.SumExec,
	}
}

// accumRows renders a keyed accumulator map as TaskStats rows sorted by
// key.
func accumRows(m map[string]*kickstart.PhaseAccum) []TaskStats {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]TaskStats, 0, len(names))
	for _, n := range names {
		out = append(out, accumTaskStats(n, m[n]))
	}
	return out
}

// Reduction returns the fractional running-time reduction of b relative
// to a: (a-b)/a. The paper's ">95%" claim is Reduction(serial, workflow).
func Reduction(a, b float64) float64 {
	if a <= 0 {
		return 0
	}
	return (a - b) / a
}

// WriteSummary renders the workflow summary as a pegasus-statistics-style
// text block.
func WriteSummary(w io.Writer, name string, s Summary) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# Workflow statistics: %s\n", name)
	fmt.Fprintf(&b, "Workflow Wall Time           : %12.1f s (%s)\n", s.WallTime, HMS(s.WallTime))
	fmt.Fprintf(&b, "Cumulative Job Wall Time     : %12.1f s (%s)\n", s.CumulativeJobWallTime, HMS(s.CumulativeJobWallTime))
	fmt.Fprintf(&b, "Cumulative Kickstart Time    : %12.1f s (%s)\n", s.CumulativeKickstart, HMS(s.CumulativeKickstart))
	fmt.Fprintf(&b, "Jobs succeeded               : %12d\n", s.Jobs)
	fmt.Fprintf(&b, "Total attempts               : %12d\n", s.Attempts)
	fmt.Fprintf(&b, "Failed attempts              : %12d\n", s.Failures)
	fmt.Fprintf(&b, "Retries                      : %12d\n", s.Retries)
	_, err := io.WriteString(w, b.String())
	return err
}

// WritePerTransformation renders Fig. 5-style per-task rows as a table.
func WritePerTransformation(w io.Writer, rows []TaskStats) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "TRANSFORMATION\tCOUNT\tKICKSTART(s)\tWAITING(s)\tDOWNLOAD/INSTALL(s)\tMAX KICKSTART(s)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\t%.1f\t%.1f\n",
			r.Transformation, r.Count, r.MeanKickstart, r.MeanWaiting, r.MeanSetup, r.MaxKickstart)
	}
	return tw.Flush()
}

// HMS formats seconds as H:MM:SS.
func HMS(seconds float64) string {
	if seconds < 0 {
		seconds = 0
	}
	s := int64(seconds + 0.5)
	return fmt.Sprintf("%d:%02d:%02d", s/3600, (s%3600)/60, s%60)
}
