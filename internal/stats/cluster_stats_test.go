package stats

import (
	"strings"
	"testing"

	"pegflow/internal/kickstart"
)

func TestPerClusterAccounting(t *testing.T) {
	log := &kickstart.Log{}
	add := func(r kickstart.Record) {
		t.Helper()
		if err := log.Append(&r); err != nil {
			t.Fatal(err)
		}
	}
	// Unclustered record: ignored by PerCluster.
	add(kickstart.Record{JobID: "solo", Transformation: "t", Site: "osg", Attempt: 1,
		SubmitTime: 0, SetupStart: 1, ExecStart: 2, EndTime: 3, Status: kickstart.StatusSuccess})
	// Cluster A: evicted once on osg, then landed on sandhills (failover)
	// with two members.
	add(kickstart.Record{JobID: "cA", ClusterID: "cA", Transformation: "t", Site: "osg", Attempt: 1,
		SubmitTime: 0, SetupStart: 100, ExecStart: 150, EndTime: 150, Status: kickstart.StatusEvicted})
	add(kickstart.Record{JobID: "task1", ClusterID: "cA", Transformation: "t", Site: "sandhills", Attempt: 2,
		SubmitTime: 0, SetupStart: 200, ExecStart: 230, EndTime: 280, Status: kickstart.StatusSuccess})
	add(kickstart.Record{JobID: "task2", ClusterID: "cA", Transformation: "t", Site: "sandhills", Attempt: 2,
		SubmitTime: 0, SetupStart: 280, ExecStart: 280, EndTime: 320, Status: kickstart.StatusSuccess})
	// Cluster B: clean landing, three members.
	for i, d := range []float64{10, 20, 30} {
		start := 500 + 10.0*float64(i)
		add(kickstart.Record{JobID: "b" + strings.Repeat("x", i+1), ClusterID: "cB",
			Transformation: "t", Site: "osg", Attempt: 1,
			SubmitTime: 400, SetupStart: 500, ExecStart: start, EndTime: start + d,
			Status: kickstart.StatusSuccess})
	}

	rows := PerCluster(log)
	if len(rows) != 2 {
		t.Fatalf("PerCluster returned %d rows, want 2", len(rows))
	}
	a, b := rows[0], rows[1]
	if a.ClusterID != "cA" || b.ClusterID != "cB" {
		t.Fatalf("rows not sorted by ClusterID: %q, %q", a.ClusterID, b.ClusterID)
	}
	if a.Tasks != 2 || a.Attempts != 2 || a.Evictions != 1 {
		t.Errorf("cA tasks/attempts/evictions = %d/%d/%d, want 2/2/1", a.Tasks, a.Attempts, a.Evictions)
	}
	if a.Site != "sandhills" {
		t.Errorf("cA final site = %q, want the failover target", a.Site)
	}
	if a.ExecSeconds != 90 { // 50 + 40
		t.Errorf("cA exec = %v, want 90", a.ExecSeconds)
	}
	if a.SetupSeconds != 30 { // first member only
		t.Errorf("cA setup = %v, want 30", a.SetupSeconds)
	}
	if a.WaitSeconds != 200 { // first member's waiting
		t.Errorf("cA wait = %v, want 200", a.WaitSeconds)
	}
	if b.Tasks != 3 || b.Attempts != 1 || b.Evictions != 0 || b.ExecSeconds != 60 {
		t.Errorf("cB = %+v", b)
	}
	if b.WaitSeconds != 100 {
		t.Errorf("cB wait = %v, want 100", b.WaitSeconds)
	}

	// Unclustered logs yield nothing.
	empty := &kickstart.Log{}
	if rows := PerCluster(empty); len(rows) != 0 {
		t.Errorf("empty log PerCluster = %v", rows)
	}
	var sb strings.Builder
	if err := WritePerCluster(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "cA") || !strings.Contains(sb.String(), "CLUSTER") {
		t.Errorf("WritePerCluster output missing rows:\n%s", sb.String())
	}
}
