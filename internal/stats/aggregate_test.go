package stats

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"pegflow/internal/kickstart"
)

// mkRecord builds a valid record with phase lengths derived from the
// given seeds.
func mkRecord(job, tr, site, cluster string, attempt int, st kickstart.Status, t0, wait, setup, exec float64) *kickstart.Record {
	return &kickstart.Record{
		JobID:          job,
		Transformation: tr,
		Site:           site,
		ClusterID:      cluster,
		Node:           site + "-n1",
		Attempt:        attempt,
		SubmitTime:     t0,
		SetupStart:     t0 + wait,
		ExecStart:      t0 + wait + setup,
		EndTime:        t0 + wait + setup + exec,
		Status:         st,
	}
}

// engineLikeStream generates a record stream obeying the engine
// invariants aggregation assumes: per job, zero or more failures
// followed by at most one success.
func engineLikeStream(r *rand.Rand, jobs int) []*kickstart.Record {
	trs := []string{"split", "run_cap3", "merge"}
	sites := []string{"osg", "sandhills"}
	var out []*kickstart.Record
	t := 0.0
	for j := 0; j < jobs; j++ {
		id := fmt.Sprintf("job_%04d", j)
		tr := trs[r.Intn(len(trs))]
		site := sites[r.Intn(len(sites))]
		cluster := ""
		if j%5 == 0 {
			cluster = fmt.Sprintf("merged_%02d", j/5)
		}
		attempt := 1
		for r.Float64() < 0.3 {
			st := kickstart.StatusFailed
			if r.Float64() < 0.5 {
				st = kickstart.StatusEvicted
			}
			out = append(out, mkRecord(id, tr, site, cluster, attempt, st,
				t, 1+r.Float64()*100, r.Float64()*30, r.Float64()*200))
			attempt++
			t += 3
		}
		if r.Float64() < 0.9 { // some jobs never succeed
			out = append(out, mkRecord(id, tr, site, cluster, attempt, kickstart.StatusSuccess,
				t, 1+r.Float64()*100, r.Float64()*30, r.Float64()*500))
		}
		t += 7
	}
	return out
}

func appendAll(t *testing.T, l *kickstart.Log, recs []*kickstart.Record) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSummarizeSinglePass pins the satellite fix: Summarize must walk
// the record list exactly once. The observer makes a second Records
// call a test failure, i.e. the log forbids re-iteration.
func TestSummarizeSinglePass(t *testing.T) {
	log := &kickstart.Log{}
	appendAll(t, log, engineLikeStream(rand.New(rand.NewSource(11)), 200))
	walks := 0
	log.ObserveRecords(func() {
		walks++
		if walks > 1 {
			t.Fatalf("Summarize walked log.Records() %d times; must be single-pass", walks)
		}
	})
	s := Summarize(log, 1000)
	if walks != 1 {
		t.Fatalf("Summarize made %d Records passes, want 1", walks)
	}
	if s.Attempts != log.Len() || s.Jobs == 0 || s.Failures == 0 {
		t.Fatalf("implausible summary: %+v", s)
	}
}

// TestSummarizeRetriesSemantics pins the Retries identity on a
// hand-built log: retries exclude first attempts of jobs that never
// succeeded, including failures recorded after an earlier success of
// another job.
func TestSummarizeRetriesSemantics(t *testing.T) {
	log := &kickstart.Log{}
	appendAll(t, log, []*kickstart.Record{
		mkRecord("a", "t", "s", "", 1, kickstart.StatusFailed, 0, 1, 1, 1),
		mkRecord("a", "t", "s", "", 2, kickstart.StatusSuccess, 5, 1, 1, 1),
		mkRecord("b", "t", "s", "", 1, kickstart.StatusSuccess, 0, 1, 1, 1),
		mkRecord("c", "t", "s", "", 1, kickstart.StatusEvicted, 0, 1, 1, 1),
		mkRecord("c", "t", "s", "", 2, kickstart.StatusFailed, 9, 1, 1, 1),
	})
	s := Summarize(log, 100)
	// 5 attempts, 2 succeeded jobs, job c never finished: retries =
	// 5 - 2 - 1 = 2 (a's first attempt... a retried once, c retried once).
	if s.Jobs != 2 || s.Attempts != 5 || s.Failures != 3 || s.Retries != 2 {
		t.Fatalf("summary %+v, want Jobs=2 Attempts=5 Failures=3 Retries=2", s)
	}
}

// TestAggregateParity runs the same engine-like stream through an exact
// and an aggregating log and requires identical stats output from every
// consumer: Summarize, PerTransformation, SiteBreakdown and PerCluster.
func TestAggregateParity(t *testing.T) {
	recs := engineLikeStream(rand.New(rand.NewSource(23)), 500)
	exact := &kickstart.Log{}
	appendAll(t, exact, recs)
	agg := &kickstart.Log{}
	agg.SetAggregate()
	appendAll(t, agg, recs)

	if exact.Len() != agg.Len() {
		t.Fatalf("Len: exact %d, agg %d", exact.Len(), agg.Len())
	}
	if got := agg.Records(); got != nil {
		t.Fatalf("aggregating log retained %d records", len(got))
	}
	if se, sa := Summarize(exact, 777), Summarize(agg, 777); se != sa {
		t.Fatalf("Summarize diverged:\nexact %+v\nagg   %+v", se, sa)
	}
	if pe, pa := PerTransformation(exact), PerTransformation(agg); !reflect.DeepEqual(pe, pa) {
		t.Fatalf("PerTransformation diverged:\nexact %+v\nagg   %+v", pe, pa)
	}
	if be, ba := SiteBreakdown(exact), SiteBreakdown(agg); !reflect.DeepEqual(be, ba) {
		t.Fatalf("SiteBreakdown diverged:\nexact %+v\nagg   %+v", be, ba)
	}
	if ce, ca := PerCluster(exact), PerCluster(agg); !reflect.DeepEqual(ce, ca) {
		t.Fatalf("PerCluster diverged:\nexact %+v\nagg   %+v", ce, ca)
	}
}

// TestAggregateSketchSmallIsExact: while the success count is below the
// sketch's marker count, aggregated percentiles equal the exact path
// bit for bit.
func TestAggregateSketchSmallIsExact(t *testing.T) {
	recs := engineLikeStream(rand.New(rand.NewSource(31)), 40)
	exact, agg := &kickstart.Log{}, &kickstart.Log{}
	agg.SetAggregate()
	appendAll(t, exact, recs)
	appendAll(t, agg, recs)
	ps := []float64{5, 50, 95, 99}
	for name, pair := range map[string][2]QuantileSource{
		"exec":    {ExecSource(exact), ExecSource(agg)},
		"waiting": {WaitingSource(exact), WaitingSource(agg)},
	} {
		if pair[0].Count() != pair[1].Count() {
			t.Fatalf("%s counts diverged: %d vs %d", name, pair[0].Count(), pair[1].Count())
		}
		for _, p := range ps {
			if e, a := pair[0].Quantile(p), pair[1].Quantile(p); e != a {
				t.Fatalf("%s p%v: exact %v, sketch %v (small streams must be exact)", name, p, e, a)
			}
		}
	}
}

// TestAggregateSketchRankEnvelope: on a large stream, aggregated
// percentiles stay within the sketch's documented rank-error envelope
// of the exact values.
func TestAggregateSketchRankEnvelope(t *testing.T) {
	recs := engineLikeStream(rand.New(rand.NewSource(37)), 5000)
	exact, agg := &kickstart.Log{}, &kickstart.Log{}
	agg.SetAggregate()
	appendAll(t, exact, recs)
	appendAll(t, agg, recs)
	var vals []float64
	for _, r := range exact.Successes() {
		vals = append(vals, r.Exec())
	}
	src := ExecSource(agg)
	for _, p := range []float64{5, 25, 50, 75, 95} {
		lo := PercentilesOf(vals, p-5)[0]
		hi := PercentilesOf(vals, p+5)[0]
		if got := src.Quantile(p); got < lo || got > hi {
			t.Fatalf("p%v: sketch %v outside exact rank envelope [%v, %v]", p, got, lo, hi)
		}
	}
}

// TestAggregateFoldAllocs is the satellite allocation gate: once every
// grouping key has been seen, folding a record must not allocate.
func TestAggregateFoldAllocs(t *testing.T) {
	log := &kickstart.Log{}
	log.SetAggregate()
	succ := mkRecord("steady", "run_cap3", "osg", "merged_01", 1, kickstart.StatusSuccess, 10, 50, 20, 300)
	fail := mkRecord("steady", "run_cap3", "osg", "merged_01", 1, kickstart.StatusEvicted, 10, 50, 20, 300)
	if err := log.Append(succ); err != nil {
		t.Fatal(err)
	}
	// Warm the sketch past its startup buffer so Add takes the marker
	// path (the buffer append is also allocation-free, but the steady
	// state of a million-job run is the marker path).
	for i := 0; i < 200; i++ {
		if err := log.Append(succ); err != nil {
			t.Fatal(err)
		}
	}
	for name, rec := range map[string]*kickstart.Record{"success": succ, "eviction": fail} {
		rec := rec
		if avg := testing.AllocsPerRun(1000, func() {
			if err := log.Append(rec); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("steady-state fold of a %s record allocates %.1f allocs/op, want 0", name, avg)
		}
	}
}
