package quantile

import (
	"math"
	"sort"
)

// Source is a stream of float64 observations that can answer percentile
// queries. Percentiles are expressed on the 0–100 scale used throughout
// pegflow. Implementations return 0 for an empty stream and for NaN
// percentile arguments, and clamp p to [0, 100] — the edge contract of
// stats.PercentilesOf.
type Source interface {
	// Add records one observation.
	Add(v float64)
	// Count reports how many observations have been recorded.
	Count() int64
	// Quantile returns the p-th percentile (0–100) of the stream.
	Quantile(p float64) float64
}

// NearestRank picks the p-th percentile (0–100) from an
// ascending-sorted slice using the nearest-rank rule. The slice must be
// non-empty. A NaN p yields 0 rather than an implementation-defined
// float→int conversion; p is clamped to [0, 100].
func NearestRank(sorted []float64, p float64) float64 {
	if math.IsNaN(p) {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	idx := int(p/100*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Exact is the retained-values Source: it keeps every observation and
// answers queries by sorting and applying the nearest-rank rule —
// byte-identical to the historical stats.PercentilesOf computation.
type Exact struct {
	vs     []float64
	sorted bool
}

// NewExact returns an empty exact source.
func NewExact() *Exact { return &Exact{sorted: true} }

// ExactOf returns an exact source over a copy of values. The input
// slice is not modified.
func ExactOf(values []float64) *Exact {
	vs := make([]float64, len(values))
	copy(vs, values)
	return &Exact{vs: vs}
}

// Add records one observation.
func (e *Exact) Add(v float64) {
	e.vs = append(e.vs, v)
	e.sorted = false
}

// Count reports the number of observations.
func (e *Exact) Count() int64 { return int64(len(e.vs)) }

// Quantile returns the p-th percentile (0–100, nearest-rank). An empty
// source yields 0.
func (e *Exact) Quantile(p float64) float64 {
	if len(e.vs) == 0 {
		return 0
	}
	if !e.sorted {
		sort.Float64s(e.vs)
		e.sorted = true
	}
	return NearestRank(e.vs, p)
}

// Of evaluates a batch of percentiles against one source, in the order
// given — the Source-generic equivalent of stats.PercentilesOf.
func Of(src Source, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = src.Quantile(p)
	}
	return out
}

// Markers is the number of grid markers a Sketch maintains. The grid
// spans quantiles 0, 1/(Markers-1), …, 1, so adjacent markers are 2
// rank points apart.
const Markers = 51

// Sketch is a fixed-size streaming quantile estimator: the P² algorithm
// of Jain & Chlamtac extended to a uniform grid of Markers quantile
// markers, with deterministic CDF-resampling merge. Memory is O(1) per
// sketch (two Markers-sized arrays) regardless of stream length, and
// Add is allocation-free after construction.
//
// Accuracy contract (pinned by TestSketchRankError): while the stream
// is no longer than Markers the sketch is exact; beyond that, for the
// distributions pegflow's metrics draw from (uniform, exponential,
// Pareto-tailed service times, and adversarially sorted input), each
// reported quantile lies between the exact quantiles at ranks p−ε and
// p+ε for ε = 5 rank points, and typically within 1–2. The sketch
// interpolates between markers, so unlike the exact path it can return
// values not present in the stream.
type Sketch struct {
	n    int64
	init []float64 // startup buffer; nil once the marker grid is live
	h    [Markers]float64
	pos  [Markers]float64
}

// NewSketch returns an empty sketch. The startup buffer is allocated up
// front so Add never allocates.
func NewSketch() *Sketch {
	return &Sketch{init: make([]float64, 0, Markers)}
}

// gridQ is the target quantile (0–1) of marker i.
func gridQ(i int) float64 { return float64(i) / float64(Markers-1) }

// desired is the target position of marker i at stream length n.
func (s *Sketch) desired(i int) float64 {
	return 1 + float64(s.n-1)*gridQ(i)
}

// Count reports the number of observations.
func (s *Sketch) Count() int64 { return s.n }

// Add records one observation in O(Markers) time with no allocation.
func (s *Sketch) Add(v float64) {
	s.n++
	if s.init != nil {
		if len(s.init) < Markers {
			s.init = append(s.init, v)
			return
		}
		// The buffer is full: switch to the marker grid, then treat v
		// as the first streamed observation.
		s.activate()
	}
	// Locate the cell k with h[k] <= v < h[k+1], extending extremes.
	var k int
	switch {
	case v < s.h[0]:
		s.h[0] = v
		k = 0
	case v >= s.h[Markers-1]:
		if v > s.h[Markers-1] {
			s.h[Markers-1] = v
		}
		k = Markers - 2
	default:
		lo, hi := 0, Markers-1
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if s.h[mid] <= v {
				lo = mid
			} else {
				hi = mid
			}
		}
		k = lo
	}
	for i := k + 1; i < Markers; i++ {
		s.pos[i]++
	}
	s.adjust()
}

// activate converts the startup buffer into the live marker grid.
func (s *Sketch) activate() {
	sort.Float64s(s.init)
	for i := 0; i < Markers; i++ {
		s.h[i] = s.init[i]
		s.pos[i] = float64(i + 1)
	}
	s.init = nil
}

// adjust nudges each interior marker toward its desired position using
// the P² parabolic prediction, falling back to linear interpolation
// when the parabola would break marker monotonicity.
func (s *Sketch) adjust() {
	for i := 1; i < Markers-1; i++ {
		d := s.desired(i) - s.pos[i]
		if !(d >= 1 && s.pos[i+1]-s.pos[i] > 1) && !(d <= -1 && s.pos[i-1]-s.pos[i] < -1) {
			continue
		}
		sgn := 1.0
		if d < 0 {
			sgn = -1.0
		}
		hp := s.parabolic(i, sgn)
		if s.h[i-1] < hp && hp < s.h[i+1] {
			s.h[i] = hp
		} else {
			s.h[i] = s.linear(i, sgn)
		}
		s.pos[i] += sgn
	}
}

func (s *Sketch) parabolic(i int, sgn float64) float64 {
	pPrev, p, pNext := s.pos[i-1], s.pos[i], s.pos[i+1]
	return s.h[i] + sgn/(pNext-pPrev)*
		((p-pPrev+sgn)*(s.h[i+1]-s.h[i])/(pNext-p)+
			(pNext-p-sgn)*(s.h[i]-s.h[i-1])/(p-pPrev))
}

func (s *Sketch) linear(i int, sgn float64) float64 {
	j := i + int(sgn)
	return s.h[i] + sgn*(s.h[j]-s.h[i])/(s.pos[j]-s.pos[i])
}

// Quantile returns the estimated p-th percentile (0–100). While the
// stream is no longer than Markers the answer is exact (nearest-rank);
// afterwards it is a piecewise-linear interpolation over the marker
// grid. An empty sketch yields 0, NaN p yields 0, and p is clamped.
func (s *Sketch) Quantile(p float64) float64 {
	if s.n == 0 || math.IsNaN(p) {
		return 0
	}
	if s.init != nil {
		vs := make([]float64, len(s.init))
		copy(vs, s.init)
		sort.Float64s(vs)
		return NearestRank(vs, p)
	}
	if p <= 0 {
		return s.h[0]
	}
	if p >= 100 {
		return s.h[Markers-1]
	}
	r := 1 + p/100*float64(s.n-1)
	// Find the marker pair bracketing rank r. pos[0] == 1 and
	// pos[Markers-1] == n, so r always lands inside the grid.
	j := sort.Search(Markers, func(i int) bool { return s.pos[i] >= r }) // first pos >= r
	if j <= 0 {
		return s.h[0]
	}
	if j >= Markers {
		return s.h[Markers-1]
	}
	span := s.pos[j] - s.pos[j-1]
	if span <= 0 {
		return s.h[j]
	}
	return lerpClamped(s.h[j-1], s.h[j], (r-s.pos[j-1])/span)
}

// lerpClamped interpolates between lo and hi (lo <= hi) at fraction t,
// clamping the result into [lo, hi]: the naive one-product form can
// overshoot a bound by an ulp near t≈0 or t≈1 (catastrophic
// cancellation when lo and hi differ by hundreds of orders of
// magnitude), which would break quantile monotonicity.
func lerpClamped(lo, hi, t float64) float64 {
	v := lo + t*(hi-lo)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Merge folds other into s deterministically: the two sketches'
// piecewise-linear CDFs are summed and resampled at the marker grid.
// The result depends only on the two operand states, not on insertion
// interleaving, so merging per-worker sketches in a fixed order yields
// reproducible output. other is not modified.
func (s *Sketch) Merge(other *Sketch) {
	if other == nil || other.n == 0 {
		return
	}
	if s.n == 0 {
		s.copyFrom(other)
		return
	}
	if s.init != nil && other.init != nil && len(s.init)+len(other.init) <= Markers {
		s.init = append(s.init, other.init...)
		s.n += other.n
		return
	}
	// Knots: every distinct value where either CDF bends.
	knots := make([]float64, 0, 2*Markers)
	knots = appendKnots(knots, s)
	knots = appendKnots(knots, other)
	sort.Float64s(knots)
	knots = dedupSorted(knots)
	cum := make([]float64, len(knots))
	for i, x := range knots {
		cum[i] = s.rankAt(x) + other.rankAt(x)
	}
	n := s.n + other.n
	var h [Markers]float64
	for i := 0; i < Markers; i++ {
		target := 1 + float64(n-1)*gridQ(i)
		h[i] = invertCDF(knots, cum, target)
	}
	s.n = n
	s.init = nil
	s.h = h
	for i := 0; i < Markers; i++ {
		s.pos[i] = s.desired(i)
	}
	// Desired positions are monotone but float rounding could collapse
	// adjacent heights ordering; restore the marker invariant.
	for i := 1; i < Markers; i++ {
		if s.h[i] < s.h[i-1] {
			s.h[i] = s.h[i-1]
		}
	}
}

func (s *Sketch) copyFrom(other *Sketch) {
	s.n = other.n
	s.h = other.h
	s.pos = other.pos
	if other.init != nil {
		s.init = append(s.init[:0], other.init...)
	} else {
		s.init = nil
	}
}

func appendKnots(knots []float64, s *Sketch) []float64 {
	if s.init != nil {
		return append(knots, s.init...)
	}
	return append(knots, s.h[:]...)
}

func dedupSorted(vs []float64) []float64 {
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// rankAt evaluates the sketch's piecewise-linear rank function at x:
// approximately the number of observations ≤ x, ranging from 0 below
// the minimum to Count at and above the maximum.
func (s *Sketch) rankAt(x float64) float64 {
	if s.init != nil {
		// Startup buffer: exact empirical rank. The buffer is small, so
		// a linear count keeps it allocation-free without presorting.
		c := 0.0
		for _, v := range s.init {
			if v <= x {
				c++
			}
		}
		return c
	}
	if x < s.h[0] {
		return 0
	}
	if x >= s.h[Markers-1] {
		return float64(s.n)
	}
	j := sort.Search(Markers, func(i int) bool { return s.h[i] > x }) // first h > x
	// 1 <= j <= Markers-1 here.
	span := s.h[j] - s.h[j-1]
	if span <= 0 {
		return s.pos[j-1]
	}
	return lerpClamped(s.pos[j-1], s.pos[j], (x-s.h[j-1])/span)
}

// invertCDF returns the x at which the sampled cumulative rank reaches
// target, interpolating linearly between knots.
func invertCDF(knots, cum []float64, target float64) float64 {
	k := sort.SearchFloat64s(cum, target)
	if k <= 0 {
		return knots[0]
	}
	if k >= len(knots) {
		return knots[len(knots)-1]
	}
	span := cum[k] - cum[k-1]
	if span <= 0 {
		return knots[k]
	}
	return lerpClamped(knots[k-1], knots[k], (target-cum[k-1])/span)
}

var _ Source = (*Exact)(nil)
var _ Source = (*Sketch)(nil)
