package quantile

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzSketch drives the insert/merge path from raw bytes: the first
// byte picks how the value stream is split across two sketches, the
// rest decodes to float64 observations. Invariants checked: counts add
// up, answers are finite, bounded by the observed min/max, and monotone
// in p — for the merged sketch and for each operand.
func FuzzSketch(f *testing.F) {
	seed := func(split byte, vals ...float64) []byte {
		b := []byte{split}
		for _, v := range vals {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
		return b
	}
	f.Add(seed(0, 1, 2, 3))
	f.Add(seed(3, 5, 5, 5, 5, 5, 5))
	f.Add(seed(128, 0.1, -7, 1e12, 3, 3, -0.5, 42))
	ramp := make([]float64, 130)
	for i := range ramp {
		ramp[i] = float64(i)
	}
	f.Add(seed(65, ramp...))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		split := int(data[0])
		data = data[1:]
		var vals []float64
		for len(data) >= 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
			data = data[8:]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			vals = append(vals, v)
		}
		if len(vals) == 0 {
			return
		}
		if split > len(vals) {
			split %= len(vals) + 1
		}
		a, b := NewSketch(), NewSketch()
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			if i < split {
				a.Add(v)
			} else {
				b.Add(v)
			}
		}
		a.Merge(b)
		if a.Count() != int64(len(vals)) {
			t.Fatalf("merged count %d, want %d", a.Count(), len(vals))
		}
		if b.Count() != int64(len(vals)-split) {
			t.Fatalf("merge mutated operand: count %d, want %d", b.Count(), len(vals)-split)
		}
		for _, s := range []*Sketch{a, b} {
			if s.Count() == 0 {
				continue
			}
			prev := math.Inf(-1)
			for p := 0.0; p <= 100; p += 2.5 {
				q := s.Quantile(p)
				if math.IsNaN(q) || math.IsInf(q, 0) {
					t.Fatalf("non-finite quantile q(%v)=%v", p, q)
				}
				if q < lo || q > hi {
					t.Fatalf("q(%v)=%v outside observed range [%v, %v]", p, q, lo, hi)
				}
				if q < prev {
					t.Fatalf("quantiles not monotone: q(%v)=%v < %v", p, q, prev)
				}
				prev = q
			}
		}
	})
}
