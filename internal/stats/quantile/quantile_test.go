package quantile

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// checkPs is the percentile battery used across the property tests.
var checkPs = []float64{1, 5, 10, 25, 50, 75, 90, 95, 99}

// exactAt returns the exact nearest-rank percentile of vs (unsorted).
func exactAt(vs []float64, p float64) float64 {
	s := make([]float64, len(vs))
	copy(s, vs)
	sort.Float64s(s)
	return NearestRank(s, p)
}

// rankEnvelope returns the exact values at ranks p-eps and p+eps — the
// envelope a sketch answer must fall inside.
func rankEnvelope(vs []float64, p, eps float64) (lo, hi float64) {
	return exactAt(vs, p-eps), exactAt(vs, p+eps)
}

// distributions is the table of input shapes from the satellite spec:
// uniform, exponential, Pareto (the heavy tail behind straggler exec
// times) and adversarially sorted input, P²'s classic worst case.
var distributions = []struct {
	name string
	gen  func(i int, r *rand.Rand) float64
}{
	{"uniform", func(_ int, r *rand.Rand) float64 { return r.Float64() * 1000 }},
	{"exponential", func(_ int, r *rand.Rand) float64 { return r.ExpFloat64() * 300 }},
	{"pareto", func(_ int, r *rand.Rand) float64 {
		// alpha=1.2 Pareto: infinite variance, the straggler regime.
		return math.Pow(1-r.Float64(), -1/1.2)
	}},
	{"sorted-ascending", func(i int, _ *rand.Rand) float64 { return float64(i) }},
	{"sorted-descending", func(i int, _ *rand.Rand) float64 { return float64(200000 - i) }},
}

// rankErrorEps is the documented rank-error bound (in rank points) the
// sketch must satisfy on the tested distributions; see the Sketch doc
// comment.
const rankErrorEps = 5

func TestSketchExactWhileSmall(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	s := NewSketch()
	var vs []float64
	for i := 0; i < Markers; i++ {
		v := r.Float64() * 100
		s.Add(v)
		vs = append(vs, v)
		for _, p := range checkPs {
			want := exactAt(vs, p)
			if got := s.Quantile(p); got != want {
				t.Fatalf("n=%d p=%v: sketch %v, exact %v (must be identical while small)", i+1, p, got, want)
			}
		}
	}
}

func TestSketchRankError(t *testing.T) {
	const n = 20000
	for _, dist := range distributions {
		t.Run(dist.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			s := NewSketch()
			vs := make([]float64, 0, n)
			for i := 0; i < n; i++ {
				v := dist.gen(i, r)
				s.Add(v)
				vs = append(vs, v)
			}
			for _, p := range checkPs {
				lo, hi := rankEnvelope(vs, p, rankErrorEps)
				got := s.Quantile(p)
				if got < lo || got > hi {
					t.Errorf("p=%v: sketch %v outside exact rank envelope [%v, %v] (exact %v)",
						p, got, lo, hi, exactAt(vs, p))
				}
			}
			if min := s.Quantile(0); min != exactAt(vs, 0) {
				t.Errorf("min: sketch %v, exact %v", min, exactAt(vs, 0))
			}
			if max := s.Quantile(100); max != exactAt(vs, 100) {
				t.Errorf("max: sketch %v, exact %v", max, exactAt(vs, 100))
			}
		})
	}
}

func TestSketchMergeRankError(t *testing.T) {
	const n, parts = 20000, 4
	for _, dist := range distributions {
		t.Run(dist.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(99))
			shards := make([]*Sketch, parts)
			for i := range shards {
				shards[i] = NewSketch()
			}
			vs := make([]float64, 0, n)
			for i := 0; i < n; i++ {
				v := dist.gen(i, r)
				shards[i%parts].Add(v)
				vs = append(vs, v)
			}
			merged := NewSketch()
			for _, sh := range shards {
				merged.Merge(sh)
			}
			if merged.Count() != n {
				t.Fatalf("merged count %d, want %d", merged.Count(), n)
			}
			for _, p := range checkPs {
				lo, hi := rankEnvelope(vs, p, rankErrorEps)
				got := merged.Quantile(p)
				if got < lo || got > hi {
					t.Errorf("p=%v: merged sketch %v outside envelope [%v, %v] (exact %v)",
						p, got, lo, hi, exactAt(vs, p))
				}
			}
		})
	}
}

func TestSketchMergeSmall(t *testing.T) {
	a, b := NewSketch(), NewSketch()
	var vs []float64
	for i := 0; i < 10; i++ {
		a.Add(float64(i))
		vs = append(vs, float64(i))
	}
	for i := 0; i < 12; i++ {
		b.Add(float64(100 + i))
		vs = append(vs, float64(100+i))
	}
	a.Merge(b)
	if a.Count() != 22 {
		t.Fatalf("count %d, want 22", a.Count())
	}
	for _, p := range checkPs {
		if got, want := a.Quantile(p), exactAt(vs, p); got != want {
			t.Errorf("p=%v: small merge %v, exact %v (must stay exact under Markers)", p, got, want)
		}
	}
	// Merging into an empty sketch copies; merging an empty is a no-op.
	e := NewSketch()
	e.Merge(a)
	if e.Count() != 22 || e.Quantile(50) != a.Quantile(50) {
		t.Fatalf("merge into empty: count %d q50 %v, want 22 %v", e.Count(), e.Quantile(50), a.Quantile(50))
	}
	before := a.Quantile(50)
	a.Merge(NewSketch())
	if a.Count() != 22 || a.Quantile(50) != before {
		t.Fatalf("merge of empty changed state")
	}
}

func TestSketchMonotoneAndEdges(t *testing.T) {
	s := NewSketch()
	if s.Quantile(50) != 0 {
		t.Fatalf("empty sketch must yield 0")
	}
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		s.Add(r.NormFloat64() * 10)
	}
	if s.Quantile(math.NaN()) != 0 {
		t.Fatalf("NaN percentile must yield 0")
	}
	if s.Quantile(-10) != s.Quantile(0) || s.Quantile(150) != s.Quantile(100) {
		t.Fatalf("percentile must clamp to [0, 100]")
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 100; p += 0.5 {
		q := s.Quantile(p)
		if q < prev {
			t.Fatalf("quantiles not monotone: q(%v)=%v < %v", p, q, prev)
		}
		prev = q
	}
}

func TestExactMatchesNearestRank(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	vs := make([]float64, 301)
	for i := range vs {
		vs[i] = r.Float64() * 50
	}
	e := ExactOf(vs)
	for _, p := range checkPs {
		if got, want := e.Quantile(p), exactAt(vs, p); got != want {
			t.Fatalf("p=%v: Exact %v, nearest-rank %v", p, got, want)
		}
	}
	if e.Count() != 301 {
		t.Fatalf("count %d", e.Count())
	}
	if NewExact().Quantile(50) != 0 {
		t.Fatalf("empty Exact must yield 0")
	}
	got := Of(e, 50, 95)
	if got[0] != exactAt(vs, 50) || got[1] != exactAt(vs, 95) {
		t.Fatalf("Of batch mismatch: %v", got)
	}
}

func BenchmarkSketchAdd(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = r.ExpFloat64()
	}
	s := NewSketch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(vals[i&4095])
	}
}
