// Package quantile provides the two quantile backends behind pegflow's
// percentile reporting: an exact nearest-rank source over retained
// values, and a fixed-size streaming sketch (an extended P² estimator)
// for runs too large to retain per-attempt values.
//
// Both implement Source, so stats tables, scenario percentile columns
// and fig-5 straggler rows can be fed by either path. The exact source
// is the default and is byte-identical to the historical
// sort-and-nearest-rank computation; the sketch is opt-in via the
// aggregation mode of kickstart.Log and trades a documented rank error
// (see Sketch) for O(1) memory per metric.
//
// The package is a leaf: it imports only the standard library, so both
// internal/kickstart and internal/stats can depend on it without
// cycles.
package quantile
