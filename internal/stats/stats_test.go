package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"pegflow/internal/kickstart"
)

func rec(job, tr string, submit, setupStart, execStart, end float64, status kickstart.Status, attempt int) *kickstart.Record {
	return &kickstart.Record{
		JobID: job, Transformation: tr, Site: "test", Attempt: attempt,
		SubmitTime: submit, SetupStart: setupStart, ExecStart: execStart, EndTime: end,
		Status: status,
	}
}

func buildLog(t *testing.T, recs ...*kickstart.Record) *kickstart.Log {
	t.Helper()
	l := &kickstart.Log{}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestSummarizeBasics(t *testing.T) {
	l := buildLog(t,
		rec("a", "split", 0, 10, 10, 110, kickstart.StatusSuccess, 1),
		rec("b", "run_cap3", 0, 20, 320, 1320, kickstart.StatusSuccess, 1),
	)
	s := Summarize(l, 1320)
	if s.WallTime != 1320 {
		t.Errorf("WallTime = %v", s.WallTime)
	}
	if s.Jobs != 2 || s.Attempts != 2 || s.Failures != 0 || s.Retries != 0 {
		t.Errorf("counts = %+v", s)
	}
	// a: total 110, b: total 1320.
	if s.CumulativeJobWallTime != 1430 {
		t.Errorf("CumulativeJobWallTime = %v, want 1430", s.CumulativeJobWallTime)
	}
	// a exec 100, b exec 1000.
	if s.CumulativeKickstart != 1100 {
		t.Errorf("CumulativeKickstart = %v, want 1100", s.CumulativeKickstart)
	}
}

func TestSummarizeRetriesAndFailures(t *testing.T) {
	l := buildLog(t,
		rec("a", "t", 0, 5, 5, 50, kickstart.StatusEvicted, 1),
		rec("a", "t", 50, 55, 55, 150, kickstart.StatusSuccess, 2),
		rec("b", "t", 0, 5, 5, 100, kickstart.StatusSuccess, 1),
		rec("c", "t", 0, 5, 5, 20, kickstart.StatusFailed, 1),
		rec("c", "t", 20, 25, 25, 40, kickstart.StatusFailed, 2),
	)
	s := Summarize(l, 150)
	if s.Jobs != 2 {
		t.Errorf("Jobs = %d, want 2 (a, b)", s.Jobs)
	}
	if s.Failures != 3 {
		t.Errorf("Failures = %d, want 3", s.Failures)
	}
	if s.Attempts != 5 {
		t.Errorf("Attempts = %d, want 5", s.Attempts)
	}
	// Retries: attempts(5) - succeeded jobs(2) - never-succeeded jobs(1) = 2.
	if s.Retries != 2 {
		t.Errorf("Retries = %d, want 2", s.Retries)
	}
}

func TestPerTransformation(t *testing.T) {
	l := buildLog(t,
		rec("c1", "run_cap3", 0, 10, 310, 1310, kickstart.StatusSuccess, 1),
		rec("c2", "run_cap3", 0, 30, 330, 2330, kickstart.StatusSuccess, 1),
		rec("m", "merge", 2400, 2410, 2410, 2470, kickstart.StatusSuccess, 1),
		rec("x", "run_cap3", 0, 5, 5, 10, kickstart.StatusFailed, 1), // excluded
	)
	rows := PerTransformation(l)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	// Sorted: merge before run_cap3.
	if rows[0].Transformation != "merge" || rows[1].Transformation != "run_cap3" {
		t.Fatalf("order = %v, %v", rows[0].Transformation, rows[1].Transformation)
	}
	cap3 := rows[1]
	if cap3.Count != 2 {
		t.Errorf("count = %d, want 2 (failure excluded)", cap3.Count)
	}
	if cap3.MeanKickstart != 1500 { // (1000+2000)/2
		t.Errorf("MeanKickstart = %v, want 1500", cap3.MeanKickstart)
	}
	if cap3.MeanWaiting != 20 { // (10+30)/2
		t.Errorf("MeanWaiting = %v, want 20", cap3.MeanWaiting)
	}
	if cap3.MeanSetup != 300 { // (300+300)/2
		t.Errorf("MeanSetup = %v, want 300", cap3.MeanSetup)
	}
	if cap3.MaxKickstart != 2000 || cap3.MaxWaiting != 30 {
		t.Errorf("max = %v/%v", cap3.MaxKickstart, cap3.MaxWaiting)
	}
	if cap3.TotalKickstart != 3000 {
		t.Errorf("TotalKickstart = %v", cap3.TotalKickstart)
	}
}

func TestPerTransformationEmptyLog(t *testing.T) {
	if rows := PerTransformation(&kickstart.Log{}); len(rows) != 0 {
		t.Errorf("rows = %v, want none", rows)
	}
}

func TestReduction(t *testing.T) {
	// The paper's headline: 100 h serial → 3 h workflow is a 97% cut.
	if got := Reduction(360000, 10800); math.Abs(got-0.97) > 1e-9 {
		t.Errorf("Reduction = %v, want 0.97", got)
	}
	if got := Reduction(0, 5); got != 0 {
		t.Errorf("Reduction with zero base = %v", got)
	}
	if got := Reduction(100, 100); got != 0 {
		t.Errorf("no-change reduction = %v", got)
	}
}

func TestHMS(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0:00:00"},
		{59.4, "0:00:59"},
		{3600, "1:00:00"},
		{41593, "11:33:13"},
		{360000, "100:00:00"},
		{-5, "0:00:00"},
	}
	for _, c := range cases {
		if got := HMS(c.in); got != c.want {
			t.Errorf("HMS(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestWriteSummaryRendering(t *testing.T) {
	l := buildLog(t, rec("a", "t", 0, 0, 0, 41593, kickstart.StatusSuccess, 1))
	var buf bytes.Buffer
	if err := WriteSummary(&buf, "blast2cap3-sandhills-n300", Summarize(l, 41593)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Workflow Wall Time", "41593.0", "11:33:13", "blast2cap3-sandhills-n300"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestWritePerTransformationRendering(t *testing.T) {
	l := buildLog(t,
		rec("c1", "run_cap3", 0, 10, 310, 1310, kickstart.StatusSuccess, 1),
	)
	var buf bytes.Buffer
	if err := WritePerTransformation(&buf, PerTransformation(l)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"TRANSFORMATION", "run_cap3", "1000.0", "300.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
