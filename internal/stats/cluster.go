package stats

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"pegflow/internal/kickstart"
)

// ClusterStats aggregates the kickstart records belonging to one composite
// (clustered) grid job — the per-cluster accounting of what horizontal
// clustering amortized: one dispatch wait and one install shared by Tasks
// payloads instead of paid Tasks times over.
type ClusterStats struct {
	// ClusterID is the composite job ID.
	ClusterID string
	// Site and Transformation locate the composite.
	Site, Transformation string
	// Tasks is the number of distinct payload tasks that succeeded inside
	// the composite.
	Tasks int
	// Attempts counts composite-level attempts: evicted/failed bundle
	// records plus one per successful landing.
	Attempts int
	// Evictions counts bundle attempts ended by preemption.
	Evictions int
	// ExecSeconds sums the members' execution time.
	ExecSeconds float64
	// SetupSeconds is the download/install time the successful landing
	// paid — once per composite, however many tasks rode along.
	SetupSeconds float64
	// WaitSeconds is the dispatch wait of the successful landing (the
	// first member's waiting phase) — likewise paid once.
	WaitSeconds float64
}

// PerCluster aggregates records that carry a ClusterID, sorted by
// ClusterID. Logs from unclustered runs yield an empty slice;
// aggregating logs answer from their folded accumulators.
func PerCluster(log *kickstart.Log) []ClusterStats {
	if agg := log.Aggregates(); agg != nil {
		ids := agg.ClusterIDs()
		out := make([]ClusterStats, 0, len(ids))
		for _, id := range ids {
			ca := agg.ByCluster[id]
			out = append(out, ClusterStats{
				ClusterID:      id,
				Site:           ca.Site,
				Transformation: ca.Transformation,
				Tasks:          ca.Tasks,
				Attempts:       ca.Attempts,
				Evictions:      ca.Evictions,
				ExecSeconds:    ca.ExecSeconds,
				SetupSeconds:   ca.SetupSeconds,
				WaitSeconds:    ca.WaitSeconds,
			})
		}
		return out
	}
	byID := make(map[string]*ClusterStats)
	firstWait := make(map[string]bool)
	for _, r := range log.Records() {
		if r.ClusterID == "" {
			continue
		}
		cs := byID[r.ClusterID]
		if cs == nil {
			cs = &ClusterStats{ClusterID: r.ClusterID, Site: r.Site, Transformation: r.Transformation}
			byID[r.ClusterID] = cs
		}
		if r.Status != kickstart.StatusSuccess {
			// Composite-level failure record: the whole bundle died.
			cs.Attempts++
			if r.Status == kickstart.StatusEvicted {
				cs.Evictions++
			}
			continue
		}
		cs.Tasks++
		cs.ExecSeconds += r.Exec()
		cs.SetupSeconds += r.Setup()
		// The successful landing's overhead is the first member's wait;
		// later members' waiting phases overlap sibling execution. The
		// final site/node of the composite is wherever it succeeded
		// (failover may have moved it).
		if !firstWait[r.ClusterID] {
			firstWait[r.ClusterID] = true
			cs.WaitSeconds = r.Waiting()
			cs.Site = r.Site
			cs.Attempts++
		}
	}
	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]ClusterStats, 0, len(ids))
	for _, id := range ids {
		out = append(out, *byID[id])
	}
	return out
}

// WritePerCluster renders per-cluster rows as a table.
func WritePerCluster(w io.Writer, rows []ClusterStats) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "CLUSTER\tSITE\tTASKS\tATTEMPTS\tEVICTIONS\tEXEC(s)\tWAIT(s)\tINSTALL(s)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%.1f\t%.1f\t%.1f\n",
			r.ClusterID, r.Site, r.Tasks, r.Attempts, r.Evictions,
			r.ExecSeconds, r.WaitSeconds, r.SetupSeconds)
	}
	return tw.Flush()
}
