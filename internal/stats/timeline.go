package stats

import (
	"fmt"
	"io"
	"strings"

	"pegflow/internal/kickstart"
	"pegflow/internal/stats/quantile"
)

// Timeline renders an ASCII utilization chart from a kickstart log — the
// role of pegasus-plots: for each time bucket, how many jobs were waiting,
// installing, and executing. Useful for eyeballing where a platform loses
// time (long waiting ramps on OSG vs dense execution on the campus
// cluster).
type Timeline struct {
	// BucketSeconds is the width of each row's time bucket.
	BucketSeconds float64
	// Buckets holds per-bucket concurrency peaks.
	Buckets []TimelineBucket
}

// TimelineBucket is one row of the chart.
type TimelineBucket struct {
	// Start is the bucket's start time in seconds.
	Start float64
	// Waiting, Installing and Executing are the peak number of attempts
	// in each phase during the bucket.
	Waiting, Installing, Executing int
}

// BuildTimeline aggregates a log into the given number of buckets
// (minimum 1). Failed attempts count toward utilization too: they
// occupied resources until they died.
func BuildTimeline(log *kickstart.Log, buckets int) Timeline {
	if buckets < 1 {
		buckets = 1
	}
	end := 0.0
	for _, r := range log.Records() {
		if r.EndTime > end {
			end = r.EndTime
		}
	}
	if end == 0 {
		return Timeline{BucketSeconds: 0, Buckets: nil}
	}
	width := end / float64(buckets)
	tl := Timeline{BucketSeconds: width, Buckets: make([]TimelineBucket, buckets)}
	for i := range tl.Buckets {
		tl.Buckets[i].Start = float64(i) * width
	}
	clamp := func(i int) int {
		if i < 0 {
			return 0
		}
		if i >= buckets {
			return buckets - 1
		}
		return i
	}
	span := func(from, to float64, bump func(*TimelineBucket)) {
		if to <= from {
			return
		}
		b0, b1 := clamp(int(from/width)), clamp(int((to-1e-9)/width))
		for b := b0; b <= b1; b++ {
			bump(&tl.Buckets[b])
		}
	}
	for _, r := range log.Records() {
		span(r.SubmitTime, r.SetupStart, func(b *TimelineBucket) { b.Waiting++ })
		span(r.SetupStart, r.ExecStart, func(b *TimelineBucket) { b.Installing++ })
		span(r.ExecStart, r.EndTime, func(b *TimelineBucket) { b.Executing++ })
	}
	return tl
}

// WriteTimeline renders the chart; each row shows the bucket start time
// and bars for executing (#), installing (+) and waiting (.), scaled so
// the widest row fits maxWidth characters.
func WriteTimeline(w io.Writer, tl Timeline, maxWidth int) error {
	if maxWidth <= 0 {
		maxWidth = 60
	}
	peak := 1
	for _, b := range tl.Buckets {
		if v := b.Waiting + b.Installing + b.Executing; v > peak {
			peak = v
		}
	}
	scale := func(v int) int {
		n := v * maxWidth / peak
		if v > 0 && n == 0 {
			n = 1
		}
		return n
	}
	if _, err := fmt.Fprintf(w, "# timeline: '#'=executing '+'=installing '.'=waiting (peak %d)\n", peak); err != nil {
		return err
	}
	for _, b := range tl.Buckets {
		bar := strings.Repeat("#", scale(b.Executing)) +
			strings.Repeat("+", scale(b.Installing)) +
			strings.Repeat(".", scale(b.Waiting))
		if _, err := fmt.Fprintf(w, "%10.0fs |%s\n", b.Start, bar); err != nil {
			return err
		}
	}
	return nil
}

// SiteBreakdown aggregates successful-attempt phase totals per site —
// useful when a plan spans several sites. Aggregating logs answer from
// their folded accumulators.
func SiteBreakdown(log *kickstart.Log) map[string]TaskStats {
	if agg := log.Aggregates(); agg != nil {
		out := make(map[string]TaskStats, len(agg.BySite))
		for site, a := range agg.BySite {
			ts := accumTaskStats(site, a)
			// The exact path never fills the straggler columns for site
			// rows; keep the two paths value-identical.
			ts.MaxKickstart, ts.MaxWaiting = 0, 0
			out[site] = ts
		}
		return out
	}
	out := make(map[string]TaskStats)
	for _, r := range log.Successes() {
		ts := out[r.Site]
		ts.Transformation = r.Site
		ts.Count++
		ts.MeanKickstart += r.Exec()
		ts.MeanWaiting += r.Waiting()
		ts.MeanSetup += r.Setup()
		ts.TotalKickstart += r.Exec()
		out[r.Site] = ts
	}
	for site, ts := range out {
		c := float64(ts.Count)
		ts.MeanKickstart /= c
		ts.MeanWaiting /= c
		ts.MeanSetup /= c
		out[site] = ts
	}
	return out
}

// Percentile returns the p-th percentile (0-100) of the values produced
// by f over successful attempts (nearest-rank). An empty log — or one with
// no successes — yields 0; p is clamped to [0, 100], and a NaN p (a
// 0/0 from some upstream ratio) also yields 0 rather than an
// implementation-defined float→int conversion.
//
// Callers that need several percentiles of the same metric should use
// Percentiles, which extracts and sorts the value set once for the whole
// batch instead of once per quantile.
func Percentile(log *kickstart.Log, p float64, f func(*kickstart.Record) float64) float64 {
	return Percentiles(log, f, p)[0]
}

// Percentiles returns the requested percentiles (0-100, nearest-rank) of
// the values produced by f over successful attempts, in the order given.
// The value set is extracted and sorted exactly once. Edge handling
// matches Percentile: no successes yields zeros, each p is clamped to
// [0, 100], and a NaN p yields 0.
func Percentiles(log *kickstart.Log, f func(*kickstart.Record) float64, ps ...float64) []float64 {
	var vs []float64
	for _, r := range log.Successes() {
		vs = append(vs, f(r))
	}
	return PercentilesOf(vs, ps...)
}

// QuantileSource is the interface shared by the exact and sketch
// percentile backends (see internal/stats/quantile). Exact sources are
// the default and reproduce the historical sort-and-nearest-rank
// output byte for byte; sketches back aggregating logs.
type QuantileSource = quantile.Source

// QuantilesFrom evaluates a batch of percentiles (0–100) against one
// source, in the order given.
func QuantilesFrom(src QuantileSource, ps ...float64) []float64 {
	return quantile.Of(src, ps...)
}

// ExecSource returns a quantile source over successful attempts'
// kickstart (exec) times: the log's streaming sketch when aggregating,
// otherwise an exact source over the retained records.
func ExecSource(log *kickstart.Log) QuantileSource {
	if agg := log.Aggregates(); agg != nil {
		return agg.ExecSketch
	}
	return exactSourceOf(log, (*kickstart.Record).Exec)
}

// WaitingSource is ExecSource for the waiting phase.
func WaitingSource(log *kickstart.Log) QuantileSource {
	if agg := log.Aggregates(); agg != nil {
		return agg.WaitSketch
	}
	return exactSourceOf(log, (*kickstart.Record).Waiting)
}

func exactSourceOf(log *kickstart.Log, f func(*kickstart.Record) float64) *quantile.Exact {
	e := quantile.NewExact()
	for _, r := range log.Successes() {
		e.Add(f(r))
	}
	return e
}

// PercentilesOf returns the requested percentiles (0-100, nearest-rank)
// of an arbitrary value set, with the same edge handling as Percentiles:
// an empty set yields zeros, each p is clamped to [0, 100], and a NaN p
// yields 0. The input slice is not modified. Callers that aggregate
// across several logs (package scenario) extract values themselves and
// batch them here.
func PercentilesOf(values []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(values) == 0 {
		return out
	}
	src := quantile.ExactOf(values)
	for i, p := range ps {
		out[i] = src.Quantile(p)
	}
	return out
}
