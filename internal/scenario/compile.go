package scenario

import (
	"fmt"

	"pegflow/internal/catalog"
	"pegflow/internal/planner"
	"pegflow/internal/sim/platform"
	"pegflow/internal/workflow"
)

// Cell is one point of the expanded scenario grid: a site set, a chunk
// count, a seed and one row of the policy matrix.
type Cell struct {
	// Index is the cell's position in deterministic grid order.
	Index int
	// SiteSet lists the site names this cell plans across.
	SiteSet []string
	// N is the cluster-chunk count.
	N int
	// Seed drives workload permutation and every platform RNG.
	Seed uint64
	// Policy is the site-selection policy ("" for single-site cells).
	Policy string
	// Cluster is the clustering configuration.
	Cluster ClusterSpec
	// Failover enables cross-site retry.
	Failover bool
}

// Compiled is a validated scenario expanded into its cell grid, with the
// shared catalogs and workload fingerprint resolved once.
type Compiled struct {
	// Doc is the source document (defaults applied).
	Doc *Doc
	// Fingerprint is the document's SHA-256 hex digest.
	Fingerprint string
	// Cells is the grid in deterministic order.
	Cells []Cell

	cats    planner.Catalogs
	params  workflow.WorkloadParams
	byName  map[string]*SiteSpec
	retries int
}

// Compile validates the document (it accepts hand-built Docs, not just
// Parse output), applies defaults, builds the shared catalogs and expands
// the grid.
func Compile(d *Doc) (*Compiled, error) {
	if errs := d.validate(d.Name, nil); len(errs) > 0 {
		return nil, errs[0]
	}
	d.applyDefaults()

	c := &Compiled{
		Doc:     d,
		params:  d.params(),
		byName:  make(map[string]*SiteSpec, len(d.Sites)),
		retries: *d.Retries,
	}
	for i := range d.Sites {
		c.byName[d.Sites[i].Name] = &d.Sites[i]
	}
	cats, err := c.buildCatalogs()
	if err != nil {
		return nil, err
	}
	c.cats = cats

	for _, set := range d.SiteSets {
		for _, n := range d.Workload.N {
			for _, seed := range d.Workload.Seeds {
				for pi, pol := range d.Policies.Site {
					if len(set) == 1 {
						// Site selection is trivial on a one-site set:
						// collapse the policy axis to one "" cell instead
						// of emitting an identical cell per policy.
						if pi > 0 {
							continue
						}
						pol = ""
					}
					for _, cl := range d.Policies.Cluster {
						for _, fo := range d.Policies.Failover {
							c.Cells = append(c.Cells, Cell{
								Index:    len(c.Cells),
								SiteSet:  set,
								N:        n,
								Seed:     seed,
								Policy:   pol,
								Cluster:  cl,
								Failover: fo,
							})
						}
					}
				}
			}
		}
	}
	c.Fingerprint = d.Fingerprint()
	return c, nil
}

// presetPlatform returns the built-in platform model for a preset, with
// the slot defaults the paper experiments use (Sandhills allocation 300,
// OSG pool 600, cloud 512).
func presetPlatform(preset string, seed uint64) (platform.Config, bool) {
	switch preset {
	case "sandhills":
		cfg := platform.Sandhills(seed)
		cfg.Slots = 300
		return cfg, true
	case "osg":
		return platform.OSG(seed), true
	case "cloud":
		return platform.Cloud(seed), true
	}
	return platform.Config{}, false
}

// siteConfig materializes the simulated platform for a site spec, seeded
// for one cell.
func (c *Compiled) siteConfig(s *SiteSpec, seed uint64) platform.Config {
	cfg, ok := presetPlatform(s.Preset, seed)
	if !ok {
		cfg = platform.Config{Seed: seed}
	}
	cfg.Name = s.Name
	if s.Slots != nil {
		cfg.Slots = *s.Slots
	}
	if s.SpeedFactor != nil {
		cfg.SpeedFactor = *s.SpeedFactor
	}
	if s.SpeedJitter != nil {
		cfg.SpeedJitter = *s.SpeedJitter
	}
	if s.SubmitInterval != nil {
		cfg.SubmitInterval = *s.SubmitInterval
	}
	if s.DispatchMean != nil {
		cfg.DispatchMean = *s.DispatchMean
	}
	if s.DispatchCV != nil {
		cfg.DispatchCV = *s.DispatchCV
	}
	if s.SetupMean != nil {
		cfg.SetupMean = *s.SetupMean
	}
	if s.SetupCV != nil {
		cfg.SetupCV = *s.SetupCV
	}
	if s.SetupMBps != nil {
		cfg.SetupBytesPerSec = *s.SetupMBps * 1e6
	}
	if s.EvictionRate != nil {
		cfg.EvictionRate = *s.EvictionRate
	}
	if s.InitialSlots != nil {
		cfg.InitialSlots = *s.InitialSlots
	}
	if s.SlotRampSeconds != nil {
		cfg.SlotRampInterval = *s.SlotRampSeconds
	}
	return cfg
}

// preinstalled reports whether the site's software stack needs no
// download/install step. Presets keep the paper's semantics (only OSG
// downloads); inline sites default to preinstalled.
func (s *SiteSpec) preinstalled() bool {
	if s.Preinstalled != nil {
		return *s.Preinstalled
	}
	return s.Preset != "osg"
}

// stageInMBps returns the catalog stage-in bandwidth for the site.
func (s *SiteSpec) stageInMBps() float64 {
	if s.StageInMBps != nil {
		return *s.StageInMBps
	}
	switch s.Preset {
	case "sandhills":
		return 200
	case "osg":
		return 40
	case "cloud":
		return 80
	}
	return 100
}

// installBytes returns the per-job software payload for a transformation
// on a site without preinstalled software.
func (s *SiteSpec) installBytes(transformation string) int64 {
	if s.InstallMB != nil {
		return int64(*s.InstallMB * (1 << 20))
	}
	// The paper's OSG payload: Python + Biopython, plus the CAP3 binary
	// for the assembly steps.
	b := int64(workflow.PythonInstallBytes + workflow.BiopythonInstallBytes)
	if transformation == workflow.TrRunCAP3 || transformation == workflow.TrSerial {
		b += workflow.CAP3InstallBytes
	}
	return b
}

// buildCatalogs generalizes workflow.PaperCatalogs to the scenario's site
// pool: one site-catalog entry per declared site, transformation entries
// reflecting each site's install semantics, and replicas for the two
// external inputs so multi-site plans can synthesize stage-in jobs.
func (c *Compiled) buildCatalogs() (planner.Catalogs, error) {
	cats := planner.Catalogs{
		Sites:           catalog.NewSiteCatalog(),
		Transformations: catalog.NewTransformationCatalog(),
		Replicas:        catalog.NewReplicaCatalog(),
	}
	for i := range c.Doc.Sites {
		s := &c.Doc.Sites[i]
		cfg := c.siteConfig(s, 0)
		if err := cfg.Validate(); err != nil {
			return cats, fmt.Errorf("scenario: site %q: %w", s.Name, err)
		}
		shared := s.preinstalled()
		if err := cats.Sites.Add(&catalog.Site{
			Name: s.Name, Arch: "x86_64", OS: "linux",
			Slots: cfg.Slots, SpeedFactor: cfg.SpeedFactor,
			Heterogeneous:  cfg.SpeedJitter >= 0.2,
			SharedSoftware: shared,
			StageInMBps:    s.stageInMBps(),
		}); err != nil {
			return cats, err
		}
		for _, name := range append(workflow.Transformations(), workflow.TrSerial) {
			tr := &catalog.Transformation{Name: name, Site: s.Name}
			if shared {
				tr.PFN = "/opt/pegflow/" + name
				tr.Installed = true
			} else {
				tr.PFN = name + ".tar.gz"
				tr.InstallBytes = s.installBytes(name)
			}
			if err := cats.Transformations.Add(tr); err != nil {
				return cats, err
			}
		}
	}
	for _, lfn := range []string{"transcripts.fasta", "alignments.out"} {
		if err := cats.Replicas.Add(lfn, catalog.Replica{Site: "local", PFN: "/work/data/" + lfn}); err != nil {
			return cats, err
		}
	}
	return cats, nil
}

// experimentSite reports whether the cell can run through core.Experiment
// — the single-workflow, single-site path whose plans are served by the
// PR-4 keyed plan cache. That requires an unmodified built-in preset
// (slot overrides excepted: the plan-cache key includes them) and no
// ensemble, failover or site policy.
func (c *Compiled) experimentSite(cell Cell) (string, bool) {
	if c.Doc.Ensemble != nil || len(cell.SiteSet) != 1 || cell.Failover ||
		len(c.Doc.Faults) > 0 || c.Doc.RetryBackoff != nil {
		// Faults and backoff only wire through EnsembleExperiment.
		return "", false
	}
	s := c.byName[cell.SiteSet[0]]
	if s.Preset == "" || s.Name != s.Preset {
		return "", false
	}
	if s.Preset == "cloud" && s.Slots != nil {
		// core.Experiment has no cloud slot knob.
		return "", false
	}
	// Any override beyond slots leaves the preset's calibration, which
	// core.Experiment hard-codes.
	if s.SpeedFactor != nil || s.SpeedJitter != nil || s.SubmitInterval != nil ||
		s.DispatchMean != nil || s.DispatchCV != nil || s.SetupMean != nil ||
		s.SetupCV != nil || s.SetupMBps != nil || s.EvictionRate != nil ||
		s.InitialSlots != nil || s.SlotRampSeconds != nil ||
		s.Preinstalled != nil || s.InstallMB != nil || s.StageInMBps != nil {
		return "", false
	}
	return s.Preset, true
}

// presetSlots returns the effective slot count of a preset site defined in
// the scenario, or the paper default when the scenario does not define it.
func (c *Compiled) presetSlots(preset string, fallback int) int {
	for i := range c.Doc.Sites {
		s := &c.Doc.Sites[i]
		if s.Preset == preset && s.Slots != nil {
			return *s.Slots
		}
	}
	return fallback
}
