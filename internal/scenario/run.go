package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime/debug"
	"strconv"
	"sync"

	"pegflow/internal/core"
	"pegflow/internal/fault"
	"pegflow/internal/kickstart"
	"pegflow/internal/planner"
	"pegflow/internal/pool"
	"pegflow/internal/stats"
	"pegflow/internal/stats/quantile"
	"pegflow/internal/workflow"
)

// ResultCache caches finished cell lines by (document fingerprint, cell
// index). Cells are deterministic functions of the fingerprinted
// document, so a hit is byte-identical to a fresh simulation; Run skips
// the gate and the simulation entirely for hits. Implementations must be
// safe for concurrent use and must treat stored lines as immutable (see
// internal/server/resultcache).
type ResultCache interface {
	Get(fingerprint string, cell int) ([]byte, bool)
	Put(fingerprint string, cell int, line []byte)
}

// RunOptions tunes scenario execution.
type RunOptions struct {
	// Workers bounds concurrent cells (<= 0 means all CPUs). The output
	// is byte-identical for any worker count.
	Workers int
	// Context, when set, aborts the run once canceled: no new cells
	// start, cells waiting in Gate stop waiting, and Run returns the
	// context's error. The server passes the request context so a
	// disconnected client stops paying for simulation it will never
	// read.
	Context context.Context
	// Gate, when set, wraps the execution of every simulated cell (cache
	// hits skip it). The server installs a process-wide semaphore here so
	// concurrent requests share one bounded simulation pool. A gate that
	// returns an error — the context canceled while waiting for capacity
	// — aborts the run without executing the cell.
	//pegflow:blocking
	Gate func(ctx context.Context, run func()) error
	// Cache, when set, serves cells addressed by (Fingerprint, index)
	// without simulating them and stores fresh lines after simulation.
	Cache ResultCache
	// OnLine, when set, receives each output line (without the trailing
	// newline) as soon as it is available, in deterministic order: header
	// first, then cells in grid order, then the footer. The server
	// streams these to the client. An OnLine error aborts the run: no
	// further lines are delivered or simulated and Run returns the error.
	//pegflow:blocking
	OnLine func(line []byte) error
}

// CellPanicError reports a cell whose simulation panicked. Run converts
// the panic into an error instead of crashing the process, so one
// poisoned cell cannot take down a server streaming many requests; the
// server unwraps it with errors.As to emit a structured error line.
type CellPanicError struct {
	// Cell is the panicking cell's grid index.
	Cell int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *CellPanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// Header is the first NDJSON line of a scenario run.
type Header struct {
	Scenario    string `json:"scenario"`
	Fingerprint string `json:"fingerprint"`
	Version     int    `json:"version"`
	Cells       int    `json:"cells"`
}

// Footer is the last NDJSON line of a scenario run.
type Footer struct {
	Done  bool `json:"done"`
	Cells int  `json:"cells"`
}

// Run executes every cell of the compiled scenario across the bounded
// worker pool and returns the output lines: a header, one JSON object per
// cell in grid order, and a footer. Cells are simulated concurrently but
// emitted in order, so the concatenated output is byte-identical for any
// worker count.
func (c *Compiled) Run(opts RunOptions) ([][]byte, error) {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	var mu sync.Mutex // guards lines, pending, next and emitErr
	var lines [][]byte
	var emitErr error
	emit := func(line []byte) {
		lines = append(lines, line)
		if opts.OnLine != nil && emitErr == nil {
			if err := opts.OnLine(line); err != nil {
				emitErr = fmt.Errorf("scenario: emitting line: %w", err)
			}
		}
	}

	head, err := json.Marshal(Header{
		Scenario:    c.Doc.Name,
		Fingerprint: c.Fingerprint,
		Version:     c.Doc.SchemaVersion,
		Cells:       len(c.Cells),
	})
	if err != nil {
		return nil, err
	}
	emit(head)
	if emitErr != nil {
		return nil, emitErr
	}

	pending := make(map[int][]byte, len(c.Cells))
	next := 0
	err = pool.ForEach(opts.Workers, len(c.Cells), func(i int) (retErr error) {
		// One poisoned cell must not take down the process (a server may
		// be streaming many other requests): convert the panic into a
		// CellPanicError carrying the cell index and stack.
		defer func() {
			if r := recover(); r != nil {
				retErr = fmt.Errorf("scenario: cell %d: %w",
					i, &CellPanicError{Cell: i, Value: r, Stack: debug.Stack()})
			}
		}()
		if ctxErr := ctx.Err(); ctxErr != nil {
			return fmt.Errorf("scenario: canceled before cell %d: %w", i, ctxErr)
		}
		mu.Lock()
		aborted := emitErr
		mu.Unlock()
		if aborted != nil {
			return aborted
		}
		var line []byte
		if opts.Cache != nil {
			line, _ = opts.Cache.Get(c.Fingerprint, i)
		}
		if line == nil {
			var cellErr error
			work := func() { line, cellErr = c.cellLine(c.Cells[i]) }
			if opts.Gate != nil {
				if gateErr := opts.Gate(ctx, work); gateErr != nil {
					return fmt.Errorf("scenario: cell %d: gate: %w", i, gateErr)
				}
			} else {
				work()
			}
			if cellErr != nil {
				return fmt.Errorf("scenario: cell %d: %w", i, cellErr)
			}
			if opts.Cache != nil {
				opts.Cache.Put(c.Fingerprint, i, line)
			}
		}
		mu.Lock()
		defer mu.Unlock()
		pending[i] = line
		for {
			l, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			emit(l)
			next++
		}
		// A failed OnLine write (client gone) aborts remaining dispatch.
		return emitErr
	})
	if err != nil {
		return nil, err
	}

	foot, err := json.Marshal(Footer{Done: true, Cells: len(c.Cells)})
	if err != nil {
		return nil, err
	}
	emit(foot)
	if emitErr != nil {
		return nil, emitErr
	}
	return lines, nil
}

// cellLine runs one cell and renders its row as compact JSON. Rows are
// map-backed: encoding/json sorts map keys, so the bytes are deterministic.
func (c *Compiled) cellLine(cell Cell) ([]byte, error) {
	row, err := c.runCell(cell)
	if err != nil {
		return nil, err
	}
	return json.Marshal(row)
}

// cellMetrics is the unfiltered metric set of one cell.
type cellMetrics struct {
	makespan, meanWorkflowMakespan, cumulativeKickstart     float64
	jobs, attempts, retries, evictions, failovers, backoffs int
	outages                                                 int
	downtimeSeconds                                         float64
	success                                                 bool
	logs                                                    []*kickstart.Log
}

// runCell executes one cell over the core facade and assembles its row.
func (c *Compiled) runCell(cell Cell) (map[string]any, error) {
	var m cellMetrics
	var err error
	if site, ok := c.experimentSite(cell); ok {
		m, err = c.runExperimentCell(site, cell)
	} else {
		m, err = c.runEnsembleCell(cell)
	}
	if err != nil {
		return nil, err
	}

	row := map[string]any{
		"cell":      cell.Index,
		"n":         cell.N,
		"seed":      cell.Seed,
		"sites":     cell.SiteSet,
		"failover":  cell.Failover,
		"workflows": c.workflows(),
	}
	if cell.Policy != "" {
		row["policy"] = cell.Policy
	}
	if cell.Cluster.MaxTasks > 0 {
		row["cluster_max_tasks"] = cell.Cluster.MaxTasks
	}
	if cell.Cluster.TargetSeconds > 0 {
		row["cluster_target_s"] = cell.Cluster.TargetSeconds
	}

	metrics := map[string]any{
		"makespan_s":               m.makespan,
		"mean_workflow_makespan_s": m.meanWorkflowMakespan,
		"cumulative_kickstart_s":   m.cumulativeKickstart,
		"jobs":                     m.jobs,
		"attempts":                 m.attempts,
		"retries":                  m.retries,
		"evictions":                m.evictions,
		"failovers":                m.failovers,
		"backoffs":                 m.backoffs,
		"outages":                  m.outages,
		"downtime_s":               m.downtimeSeconds,
		"success":                  m.success,
	}
	for _, f := range c.Doc.Outputs.Fields {
		row[f] = metrics[f]
	}

	if ps := c.Doc.Outputs.Percentiles; len(ps) > 0 {
		var kp, wp []float64
		if c.Doc.Outputs.Aggregate {
			// Aggregated cells never retained records; the per-log
			// streaming sketches merge into one per-cell estimate.
			kp = mergedQuantiles(m.logs, execSketch, ps)
			wp = mergedQuantiles(m.logs, waitSketch, ps)
		} else {
			kick := collectValues(m.logs, (*kickstart.Record).Exec)
			wait := collectValues(m.logs, (*kickstart.Record).Waiting)
			kp = stats.PercentilesOf(kick, ps...)
			wp = stats.PercentilesOf(wait, ps...)
		}
		for i, p := range ps {
			suffix := strconv.FormatFloat(p, 'g', -1, 64)
			row["kickstart_p"+suffix] = kp[i]
			row["waiting_p"+suffix] = wp[i]
		}
	}
	return row, nil
}

// workflows returns the member count of every cell.
func (c *Compiled) workflows() int {
	if c.Doc.Ensemble != nil {
		return c.Doc.Ensemble.Workflows
	}
	return 1
}

// collectValues extracts f over the successful attempts of every log.
func collectValues(logs []*kickstart.Log, f func(*kickstart.Record) float64) []float64 {
	var vs []float64
	for _, lg := range logs {
		for _, r := range lg.Successes() {
			vs = append(vs, f(r))
		}
	}
	return vs
}

func execSketch(a *kickstart.Aggregates) *quantile.Sketch { return a.ExecSketch }
func waitSketch(a *kickstart.Aggregates) *quantile.Sketch { return a.WaitSketch }

// mergedQuantiles merges the picked sketch of every aggregating log and
// evaluates the percentiles on the union. The merge is deterministic, so
// cell rows stay byte-identical across runs and worker counts.
func mergedQuantiles(logs []*kickstart.Log, pick func(*kickstart.Aggregates) *quantile.Sketch, ps []float64) []float64 {
	merged := quantile.NewSketch()
	for _, lg := range logs {
		if agg := lg.Aggregates(); agg != nil {
			merged.Merge(pick(agg))
		}
	}
	return quantile.Of(merged, ps...)
}

// runExperimentCell is the plan-cached single-site path: the cell maps
// onto core.Experiment, so its plan is cloned from the keyed master and
// only the seed's chunk runtimes are patched in.
func (c *Compiled) runExperimentCell(site string, cell Cell) (cellMetrics, error) {
	e := &core.Experiment{
		Seed:           cell.Seed,
		SandhillsSlots: c.presetSlots("sandhills", 300),
		OSGSlots:       c.presetSlots("osg", 600),
		RetryLimit:     c.retries,
		Workload:       workflow.CustomWorkload(c.params, cell.Seed),
		Cost:           workflow.DefaultCostModel(),
		Aggregate:      c.Doc.Outputs.Aggregate,
	}
	r, err := e.RunClustered(site, cell.N, cell.Cluster.options())
	if err != nil {
		return cellMetrics{}, err
	}
	res := r.Result
	return cellMetrics{
		makespan:             r.Summary.WallTime,
		meanWorkflowMakespan: r.Summary.WallTime,
		cumulativeKickstart:  r.Summary.CumulativeKickstart,
		jobs:                 r.Summary.Jobs,
		attempts:             r.Summary.Attempts,
		retries:              res.Retries,
		evictions:            res.Evictions,
		failovers:            res.Failovers,
		success:              res.Success,
		logs:                 []*kickstart.Log{res.Log},
	}, nil
}

// runEnsembleCell is the general path: multi-site sets, inline or
// overridden sites, policy/failover cells and ensembles all compile onto
// core.EnsembleExperiment (a single workflow is an ensemble of one).
// Member workflows are seeded cell.Seed+i; the shared member-DAX cache
// serves repeated (params, seed, n) shapes across cells and requests.
func (c *Compiled) runEnsembleCell(cell Cell) (cellMetrics, error) {
	policy := cell.Policy
	if policy == "" {
		// Single-site set: any policy resolves every job to the one site.
		policy = planner.PolicyDataAware
	}
	// Mix n into the platform seed (as core.RunClustered does) so sweep
	// cells draw independent platform noise, while cells that differ only
	// in policy share it — paired comparisons.
	cfgSeed := cell.Seed ^ (uint64(cell.N) * 0x9e3779b97f4a7c15)
	exp := &core.EnsembleExperiment{
		Seed:       cell.Seed,
		Workflows:  c.workflows(),
		N:          cell.N,
		Policy:     policy,
		Sites:      cell.SiteSet,
		Catalogs:   c.cats,
		RetryLimit: c.retries,
		Cluster:    cell.Cluster.options(),
		Failover:   cell.Failover,
		// Cells are already fanned out across the pool; keep per-cell
		// planning serial so worker counts never nest.
		Workers: 1,
		MemberWorkload: func(i int) workflow.Workload {
			return workflow.CustomWorkload(c.params, cell.Seed+uint64(i))
		},
		Aggregate: c.Doc.Outputs.Aggregate,
	}
	if c.Doc.Ensemble != nil {
		exp.MaxInFlight = c.Doc.Ensemble.MaxInFlight
	}
	if rb := c.Doc.RetryBackoff; rb != nil {
		exp.BackoffBase = rb.BaseSeconds
		exp.BackoffCap = rb.CapSeconds
	}
	if len(c.Doc.Faults) > 0 {
		// Only the faults whose site this cell's set contains apply; the
		// per-cell compile is cheap relative to a simulation.
		inSet := make(map[string]bool, len(cell.SiteSet))
		for _, name := range cell.SiteSet {
			inSet[name] = true
		}
		var specs []fault.Spec
		for _, f := range c.Doc.Faults {
			if inSet[f.Site] {
				specs = append(specs, f)
			}
		}
		script, err := fault.Compile(specs)
		if err != nil {
			return cellMetrics{}, err
		}
		exp.Faults = script
	}
	for _, name := range cell.SiteSet {
		exp.Platforms = append(exp.Platforms, c.siteConfig(c.byName[name], cfgSeed))
	}
	res, report, err := exp.Run()
	if err != nil {
		return cellMetrics{}, err
	}
	m := cellMetrics{
		makespan:             report.Makespan,
		meanWorkflowMakespan: report.MeanWorkflowMakespan,
		retries:              report.TotalRetries,
		evictions:            report.TotalEvictions,
		failovers:            report.TotalFailovers,
		backoffs:             report.TotalBackoffs,
		outages:              report.TotalOutages,
		success:              true,
	}
	for _, s := range report.Sites {
		m.downtimeSeconds += s.DowntimeSeconds
	}
	for _, w := range res.Workflows {
		sum := stats.Summarize(w.Result.Log, w.Result.Makespan)
		m.cumulativeKickstart += sum.CumulativeKickstart
		m.jobs += sum.Jobs
		m.attempts += sum.Attempts
		m.success = m.success && w.Result.Success
		m.logs = append(m.logs, w.Result.Log)
	}
	return m, nil
}
