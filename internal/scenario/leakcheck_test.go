package scenario

import (
	"runtime"
	"testing"
	"time"
)

// leakCheck snapshots the goroutine count and fails the test if the
// count has not settled back by the time the test (and its defers) is
// done: a Run that returns while pool workers are still simulating, or
// a gate that never hands its token back, shows up here. The settle
// loop retries because worker goroutines unwind asynchronously.
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		now := runtime.NumGoroutine()
		for now > before && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
			now = runtime.NumGoroutine()
		}
		if now > before {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Errorf("goroutine leak: %d before test, %d after settling\n%s", before, now, buf[:n])
		}
	})
}
