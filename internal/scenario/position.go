// JSON position tracking: scenario validation errors cite the line and
// field path of the offending value. encoding/json reports offsets only
// for syntax and type errors, so a second, token-level pass records the
// byte offset (hence line) of every key and array element, keyed by the
// same "sites[0].slots" paths the validator uses.

package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// decodeStrict decodes data into v, rejecting unknown fields and trailing
// garbage, and qualifying every decode error with a line number.
func decodeStrict(src string, data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		lines := newLineIndex(data)
		var syn *json.SyntaxError
		if errors.As(err, &syn) {
			return fmt.Errorf("%s:%d: %v", src, lines.at(syn.Offset), syn)
		}
		var typ *json.UnmarshalTypeError
		if errors.As(err, &typ) {
			field := typ.Field
			if field == "" {
				field = "(document)"
			}
			return fmt.Errorf("%s:%d: %s: cannot decode %s into %s",
				src, lines.at(typ.Offset), field, typ.Value, typ.Type)
		}
		// Unknown-field (and any other) errors carry no offset; the
		// decoder stopped right after the offending token.
		return fmt.Errorf("%s:%d: %v", src, lines.at(dec.InputOffset()), err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return fmt.Errorf("%s:%d: trailing data after the scenario document",
			src, newLineIndex(data).at(dec.InputOffset()))
	}
	return nil
}

// lineIndex converts byte offsets into 1-based line numbers.
type lineIndex struct{ newlines []int64 }

func newLineIndex(data []byte) lineIndex {
	var nl []int64
	for i, b := range data {
		if b == '\n' {
			nl = append(nl, int64(i))
		}
	}
	return lineIndex{newlines: nl}
}

func (l lineIndex) at(offset int64) int {
	return 1 + sort.Search(len(l.newlines), func(i int) bool {
		return l.newlines[i] >= offset
	})
}

// positions maps validator field paths ("workload.n[1]") to the source
// line of the corresponding key or element. Invalid JSON yields a partial
// (possibly empty) map — decodeStrict has already reported the real error
// by then.
func positions(data []byte) map[string]int {
	lines := newLineIndex(data)
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	pos := make(map[string]int)
	_ = walkValue(dec, lines, "", pos)
	return pos
}

// walkValue consumes one JSON value, recording positions of everything
// nested inside it.
func walkValue(dec *json.Decoder, lines lineIndex, path string, pos map[string]int) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	delim, ok := tok.(json.Delim)
	if !ok {
		return nil // scalar: position was recorded by the parent
	}
	switch delim {
	case '{':
		for dec.More() {
			keyTok, err := dec.Token()
			if err != nil {
				return err
			}
			key, _ := keyTok.(string)
			child := key
			if path != "" {
				child = path + "." + key
			}
			pos[child] = lines.at(dec.InputOffset())
			if err := walkValue(dec, lines, child, pos); err != nil {
				return err
			}
		}
	case '[':
		for i := 0; dec.More(); i++ {
			child := fmt.Sprintf("%s[%d]", path, i)
			pos[child] = lines.at(dec.InputOffset())
			if err := walkValue(dec, lines, child, pos); err != nil {
				return err
			}
		}
	}
	// Consume the closing delimiter.
	_, err = dec.Token()
	return err
}

// lookupLine finds the line of the longest recorded prefix of path, so an
// error on an absent field ("workload.n" missing entirely) still points at
// its nearest present ancestor.
func lookupLine(pos map[string]int, path string) int {
	for {
		if line, ok := pos[path]; ok {
			return line
		}
		i := strings.LastIndexAny(path, ".[")
		if i < 0 {
			return 0
		}
		path = path[:i]
	}
}
