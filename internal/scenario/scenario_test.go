package scenario

import (
	"strings"
	"testing"
)

// minimal is a small, fast, valid scenario exercising both execution
// paths: a built-in preset pair swept as single-site sets.
const minimal = `{
  "version": 1,
  "name": "unit-test",
  "sites": [
    {"preset": "sandhills", "slots": 24},
    {"preset": "osg", "slots": 48}
  ],
  "site_sets": [["sandhills"], ["osg"]],
  "workload": {
    "params": {"num_clusters": 200, "max_cluster_size": 60, "size_exponent": 0.5, "mean_read_len": 900},
    "n": [4, 8],
    "seeds": [7]
  },
  "outputs": {"percentiles": [50, 99]}
}`

func parseMinimal(t *testing.T) *Doc {
	t.Helper()
	doc, err := Parse("unit.json", []byte(minimal))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestParseAppliesDefaults(t *testing.T) {
	doc := parseMinimal(t)
	if doc.Sites[0].Name != "sandhills" {
		t.Errorf("site name not defaulted from preset: %q", doc.Sites[0].Name)
	}
	if len(doc.Policies.Site) != 1 || doc.Policies.Site[0] != "" {
		t.Errorf("single-site sets should default to the empty policy axis, got %v", doc.Policies.Site)
	}
	if got := len(doc.Workload.Seeds); got != 1 {
		t.Errorf("seeds = %d, want explicit [7] preserved", got)
	}
	if *doc.Retries != 5 {
		t.Errorf("retries default = %d, want 5", *doc.Retries)
	}
	if len(doc.Outputs.Fields) != len(MetricFields()) {
		t.Errorf("fields should default to all metrics, got %v", doc.Outputs.Fields)
	}
}

func TestParseErrorsAreLineAndFieldQualified(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string // substrings of the error
	}{
		{
			name: "negative slots with line",
			src: `{
  "version": 1,
  "name": "bad",
  "sites": [
    {"preset": "osg",
     "slots": -3}
  ],
  "workload": {"preset": "paper", "n": [10]}
}`,
			want: []string{"bad.json:6", "sites[0].slots", "must be positive, got -3"},
		},
		{
			name: "unknown preset",
			src: `{
  "version": 1,
  "name": "bad",
  "sites": [{"preset": "condor"}],
  "workload": {"preset": "paper", "n": [10]}
}`,
			want: []string{"bad.json:4", "sites[0].preset", `unknown preset "condor"`},
		},
		{
			name: "unknown output field",
			src: `{
  "version": 1,
  "name": "bad",
  "sites": [{"preset": "osg"}],
  "workload": {"preset": "paper", "n": [10]},
  "outputs": {"fields": ["makespan_s", "latency"]}
}`,
			want: []string{"bad.json:6", "outputs.fields[1]", `unknown field "latency"`},
		},
		{
			name: "undefined site in set",
			src: `{
  "version": 1,
  "name": "bad",
  "sites": [{"preset": "osg"}],
  "site_sets": [["osg", "grid5000"]],
  "workload": {"preset": "paper", "n": [10]}
}`,
			want: []string{"bad.json:5", "site_sets[0][1]", "not defined"},
		},
		{
			name: "failover on single-site set",
			src: `{
  "version": 1,
  "name": "bad",
  "sites": [{"preset": "osg"}],
  "workload": {"preset": "paper", "n": [10]},
  "policies": {"failover": [true]}
}`,
			want: []string{"policies.failover[0]", "at least two sites"},
		},
		{
			name: "unknown top-level key",
			src: `{
  "version": 1,
  "name": "bad",
  "platforms": []
}`,
			want: []string{"bad.json:", "unknown field"},
		},
		{
			name: "syntax error with line",
			src: `{
  "version": 1,
  "name": "bad",,
}`,
			want: []string{"bad.json:3"},
		},
		{
			name: "type error with field",
			src: `{
  "version": 1,
  "name": "bad",
  "sites": [{"preset": "osg", "slots": "many"}],
  "workload": {"preset": "paper", "n": [10]}
}`,
			want: []string{"bad.json:4", "slots"},
		},
		{
			name: "multiple errors reported together",
			src: `{
  "version": 3,
  "name": "",
  "sites": [],
  "workload": {"n": []}
}`,
			want: []string{"version", "name", "sites", "workload"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("bad.json", []byte(tc.src))
			if err == nil {
				t.Fatal("expected an error")
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error %q\nmissing substring %q", err, w)
				}
			}
		})
	}
}

func TestFingerprintNormalizesFormatting(t *testing.T) {
	a := parseMinimal(t)
	// Same document, different whitespace and key order.
	reordered := `{
  "name": "unit-test",
  "outputs": {"percentiles": [50, 99]},
  "workload": {"seeds": [7], "n": [4, 8],
    "params": {"mean_read_len": 900, "num_clusters": 200, "max_cluster_size": 60, "size_exponent": 0.5}},
  "site_sets": [["sandhills"], ["osg"]],
  "sites": [{"preset": "sandhills", "slots": 24}, {"preset": "osg", "slots": 48}],
  "version": 1
}`
	b, err := Parse("b.json", []byte(reordered))
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint depends on formatting/key order")
	}
	// A semantic change must change it.
	c := parseMinimal(t)
	c.Workload.N = []int{4, 9}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("fingerprint ignored a semantic change")
	}
}

func TestCompileExpandsGridInOrder(t *testing.T) {
	doc := parseMinimal(t)
	c, err := Compile(doc)
	if err != nil {
		t.Fatal(err)
	}
	// 2 site sets × 2 n × 1 seed × 1 policy × 1 cluster × 1 failover.
	if len(c.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(c.Cells))
	}
	want := []struct {
		site string
		n    int
	}{
		{"sandhills", 4}, {"sandhills", 8}, {"osg", 4}, {"osg", 8},
	}
	for i, w := range want {
		cell := c.Cells[i]
		if cell.Index != i || cell.SiteSet[0] != w.site || cell.N != w.n {
			t.Errorf("cell %d = %+v, want site %s n %d", i, cell, w.site, w.n)
		}
		if site, ok := c.experimentSite(cell); !ok || site != w.site {
			t.Errorf("cell %d: expected the plan-cached experiment path for %s", i, w.site)
		}
	}
}

func TestExperimentPathEligibility(t *testing.T) {
	src := `{
  "version": 1,
  "name": "edge",
  "sites": [
    {"preset": "sandhills", "slots": 16},
    {"name": "osg-slow", "preset": "osg", "slots": 16, "speed_factor": 2.0}
  ],
  "site_sets": [["sandhills"], ["osg-slow"], ["sandhills", "osg-slow"]],
  "workload": {"params": {"num_clusters": 100, "max_cluster_size": 40, "size_exponent": 0.5, "mean_read_len": 800}, "n": [4]}
}`
	doc, err := Parse("edge.json", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Cells) != 3 {
		t.Fatalf("cells = %d, want 3", len(c.Cells))
	}
	if _, ok := c.experimentSite(c.Cells[0]); !ok {
		t.Error("pristine sandhills preset should take the experiment path")
	}
	if _, ok := c.experimentSite(c.Cells[1]); ok {
		t.Error("renamed+overridden osg must take the general path")
	}
	if _, ok := c.experimentSite(c.Cells[2]); ok {
		t.Error("multi-site set must take the general path")
	}
}

func TestCellCapEnforced(t *testing.T) {
	src := `{
  "version": 1,
  "name": "huge",
  "sites": [{"preset": "osg"}],
  "workload": {"preset": "paper", "n": [` + strings.Repeat("1,", 5000) + `1]}
}`
	_, err := Parse("huge.json", []byte(src))
	if err == nil || !strings.Contains(err.Error(), "cells") {
		t.Fatalf("expected the cell cap to trip, got %v", err)
	}
}

// TestValidationErrorOrderIsDeterministic pins the detrange fix in
// validateSites: the per-field negativity checks used to range a map, so
// a scenario with several bad fields reported them in a different order
// on different runs. They must come out in field declaration order,
// identically, every time.
func TestValidationErrorOrderIsDeterministic(t *testing.T) {
	bad := `{
  "version": 1,
  "name": "bad-fields",
  "sites": [
    {"name": "s", "slots": 4, "speed_factor": 1.0,
     "submit_interval": -1, "dispatch_mean": -2, "setup_mean": -3,
     "eviction_rate": -4, "stage_in_mbps": -5}
  ],
  "workload": {
    "params": {"num_clusters": 10, "max_cluster_size": 6, "size_exponent": 0.5, "mean_read_len": 900},
    "n": [2]
  }
}`
	_, err := Parse("bad.json", []byte(bad))
	if err == nil {
		t.Fatal("want validation errors, got nil")
	}
	first := err.Error()
	order := []string{"submit_interval", "dispatch_mean", "setup_mean", "eviction_rate", "stage_in_mbps"}
	last := -1
	for _, field := range order {
		i := strings.Index(first, field)
		if i < 0 {
			t.Fatalf("error is missing field %q:\n%s", field, first)
		}
		if i < last {
			t.Fatalf("field %q reported out of declaration order:\n%s", field, first)
		}
		last = i
	}
	for run := 0; run < 20; run++ {
		_, err := Parse("bad.json", []byte(bad))
		if err == nil || err.Error() != first {
			t.Fatalf("run %d: error text changed:\n%s\nvs\n%s", run, err, first)
		}
	}
}
