// Package scenario turns checked-in JSON documents into executable
// what-if experiments over the simulation stack — the declarative layer
// between "a library that reproduces the paper" and a service that answers
// arbitrary capacity-planning questions about the blast2cap3 workflow.
//
// A scenario declares four things:
//
//   - sites: the platform pool, as named presets (sandhills, osg, cloud)
//     with optional overrides, or fully inline definitions (slots, speed,
//     dispatch/setup distributions, eviction hazard);
//   - a workload: the paper preset or an inline rank-size law, an n-sweep
//     and a seed list;
//   - a policy matrix: site-selection policy × clustering options ×
//     failover, crossed with the workload axes into a deterministic cell
//     grid;
//   - outputs: which report fields each cell row carries, plus optional
//     per-attempt percentiles.
//
// Load/Parse validate the document with line- and field-qualified errors
// (`paper.json:14: sites[1].slots: must be positive`), Compile expands it
// into the cell grid and fingerprints it (SHA-256 over the normalized
// document), and Compiled.Run executes the grid over the bounded worker
// pool, emitting one NDJSON line per cell in deterministic cell order —
// byte-identical for any worker count.
//
// Execution reuses the core facade, so the PR-4 caches are keyed per
// scenario cell: single-site cells on built-in presets go through
// core.Experiment and hit the keyed plan cache (master plans cloned and
// runtime-patched per seed); multi-site and ensemble cells go through
// core.EnsembleExperiment and hit the member-DAX cache. A long-running
// process (pegflow serve) therefore warms up across requests.
package scenario
