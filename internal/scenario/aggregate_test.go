package scenario

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

// runAggregateLines parses src, switches it into aggregation mode the way
// `pegflow scenario run -aggregate` does (before Compile, so the
// fingerprint reflects the mode), and runs it.
func runAggregateLines(t *testing.T, src string, workers int) [][]byte {
	t.Helper()
	doc, err := Parse("agg.json", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	doc.Outputs.Aggregate = true
	c, err := Compile(doc)
	if err != nil {
		t.Fatal(err)
	}
	lines, err := c.Run(RunOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestAggregateDeterministicAcrossWorkers is the satellite determinism
// gate: aggregated-mode scenario output must be byte-identical across
// worker counts and across repeated runs.
func TestAggregateDeterministicAcrossWorkers(t *testing.T) {
	leakCheck(t)
	one := joinLines(runAggregateLines(t, minimal, 1))
	eight := joinLines(runAggregateLines(t, minimal, 8))
	again := joinLines(runAggregateLines(t, minimal, 8))
	if !bytes.Equal(one, eight) {
		t.Errorf("aggregated output depends on worker count:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", one, eight)
	}
	if !bytes.Equal(eight, again) {
		t.Error("aggregated output differs between repeated runs")
	}
}

// TestAggregateMatchesExactCells: aggregation must not change any counter
// or makespan field — only the percentile fields may move (sketch vs
// exact), and on these small cells the sketches are still exact, so even
// those must match bit for bit.
func TestAggregateMatchesExactCells(t *testing.T) {
	exact := runLines(t, minimal, 0)
	agg := runAggregateLines(t, minimal, 0)
	if len(exact) != len(agg) {
		t.Fatalf("line counts diverged: exact %d, agg %d", len(exact), len(agg))
	}
	// Compare cell rows (skip header/footer: fingerprints differ by design).
	for i := 1; i < len(exact)-1; i++ {
		var er, ar map[string]any
		if err := json.Unmarshal(exact[i], &er); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(agg[i], &ar); err != nil {
			t.Fatal(err)
		}
		for k, ev := range er {
			av, ok := ar[k]
			if !ok {
				t.Errorf("cell %d: aggregated row lost field %q", i-1, k)
				continue
			}
			if isSmallCellExact(er) && !reflect.DeepEqual(ev, av) {
				t.Errorf("cell %d field %q: exact %v, aggregated %v", i-1, k, ev, av)
			}
		}
	}
}

// isSmallCellExact reports whether the cell ran few enough attempts for
// the quantile sketch to still be in its exact startup phase.
func isSmallCellExact(row map[string]any) bool {
	a, ok := row["attempts"].(float64)
	return ok && a <= 51
}

// TestAggregateFingerprints pins the cache-safety contract: adding the
// aggregate field must not move exact-mode fingerprints (omitempty), and
// the aggregated variant of a document must fingerprint differently so
// result caches never serve one mode for the other.
func TestAggregateFingerprints(t *testing.T) {
	doc, err := Parse("fp.json", []byte(minimal))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "aggregate") {
		t.Fatalf("exact-mode document marshals an aggregate key (breaks old fingerprints): %s", b)
	}
	exactFP := doc.Fingerprint()
	doc.Outputs.Aggregate = true
	if aggFP := doc.Fingerprint(); aggFP == exactFP {
		t.Fatal("aggregated document has the same fingerprint as the exact one")
	}
}

// TestAggregatePercentilesFinite: aggregated percentile fields exist and
// are finite on a cell large enough to push the sketch past its startup
// buffer.
func TestAggregatePercentilesFinite(t *testing.T) {
	src := `{
  "version": 1,
  "name": "agg-large",
  "sites": [{"preset": "sandhills", "slots": 24}],
  "workload": {
    "params": {"num_clusters": 400, "max_cluster_size": 60, "size_exponent": 0.5, "mean_read_len": 900},
    "n": [120], "seeds": [7]
  },
  "outputs": {"percentiles": [5, 50, 95], "aggregate": true}
}`
	lines := runLines(t, src, 0)
	var row map[string]any
	if err := json.Unmarshal(lines[1], &row); err != nil {
		t.Fatal(err)
	}
	if a := row["attempts"].(float64); a <= 51 {
		t.Fatalf("cell too small to exercise the sketch's marker path: %v attempts", a)
	}
	prev := math.Inf(-1)
	for _, key := range []string{"kickstart_p5", "kickstart_p50", "kickstart_p95"} {
		v, ok := row[key].(float64)
		if !ok || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s = %v, want a finite float", key, row[key])
		}
		if v < prev {
			t.Errorf("%s = %v below the previous percentile %v (must be monotone)", key, v, prev)
		}
		prev = v
	}
}
