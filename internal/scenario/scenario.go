package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"pegflow/internal/fault"
	"pegflow/internal/planner"
	"pegflow/internal/workflow"
)

// Version is the scenario schema version this package reads.
const Version = 1

// MaxCells bounds the cell grid a single scenario may expand to, so a
// malformed (or hostile, via pegflow serve) document cannot fan out an
// unbounded amount of simulation work.
const MaxCells = 4096

// SiteSpec declares one platform of the scenario's pool: a named preset
// (sandhills, osg, cloud), a preset with overrides, or a fully inline
// definition. Override fields are pointers so that an explicit zero is
// distinguishable from "keep the preset's value".
type SiteSpec struct {
	// Name labels the site; it defaults to the preset name.
	Name string `json:"name,omitempty"`
	// Preset selects a built-in platform model: sandhills, osg or cloud.
	// Empty means fully inline, which requires Slots and SpeedFactor.
	Preset string `json:"preset,omitempty"`
	// Slots overrides the slot count (> 0).
	Slots *int `json:"slots,omitempty"`
	// SpeedFactor scales execution time (1.0 = reference, lower = faster).
	SpeedFactor *float64 `json:"speed_factor,omitempty"`
	// SpeedJitter is relative node heterogeneity in [0, 1).
	SpeedJitter *float64 `json:"speed_jitter,omitempty"`
	// SubmitInterval serializes submissions on the submit host (seconds).
	SubmitInterval *float64 `json:"submit_interval,omitempty"`
	// DispatchMean and DispatchCV parameterize the lognormal dispatch
	// (queueing) latency.
	DispatchMean *float64 `json:"dispatch_mean,omitempty"`
	DispatchCV   *float64 `json:"dispatch_cv,omitempty"`
	// SetupMean and SetupCV parameterize the lognormal download/install
	// phase of jobs whose software is not preinstalled.
	SetupMean *float64 `json:"setup_mean,omitempty"`
	SetupCV   *float64 `json:"setup_cv,omitempty"`
	// SetupMBps adds install_mb/setup_mbps seconds to the setup phase.
	SetupMBps *float64 `json:"setup_mbps,omitempty"`
	// EvictionRate is the preemption hazard in events per occupied second.
	EvictionRate *float64 `json:"eviction_rate,omitempty"`
	// InitialSlots and SlotRampSeconds model an opportunistic capacity
	// ramp: start at InitialSlots, gain one slot every SlotRampSeconds.
	InitialSlots    *int     `json:"initial_slots,omitempty"`
	SlotRampSeconds *float64 `json:"slot_ramp_seconds,omitempty"`
	// Preinstalled reports whether the software stack is already on the
	// site's nodes (no download/install step).
	Preinstalled *bool `json:"preinstalled,omitempty"`
	// InstallMB is the per-job software payload in MB for sites without
	// preinstalled software.
	InstallMB *float64 `json:"install_mb,omitempty"`
	// StageInMBps is the catalog's stage-in bandwidth used by the
	// data-aware planner policy.
	StageInMBps *float64 `json:"stage_in_mbps,omitempty"`
}

// siteName returns the effective site name (Name, else Preset).
func (s *SiteSpec) siteName() string {
	if s.Name != "" {
		return s.Name
	}
	return s.Preset
}

// ParamsSpec is an inline workload rank-size law
// (size(r) = max_cluster_size / r^size_exponent).
type ParamsSpec struct {
	NumClusters    int     `json:"num_clusters"`
	MaxClusterSize int     `json:"max_cluster_size"`
	SizeExponent   float64 `json:"size_exponent"`
	MeanReadLen    int     `json:"mean_read_len"`
}

// WorkloadSpec declares the dataset and the sweep axes.
type WorkloadSpec struct {
	// Preset names a built-in workload; "paper" is the synthetic Triticum
	// urartu dataset. Mutually exclusive with Params.
	Preset string `json:"preset,omitempty"`
	// Params synthesizes a custom workload from a rank-size law.
	Params *ParamsSpec `json:"params,omitempty"`
	// N is the cluster-chunk sweep (the paper's n axis).
	N []int `json:"n"`
	// Seeds lists simulation seeds; each becomes a grid axis value.
	// Defaults to [42].
	Seeds []uint64 `json:"seeds,omitempty"`
}

// ClusterSpec is one clustering configuration of the policy matrix.
type ClusterSpec struct {
	// MaxTasks bounds tasks bundled per clustered grid job (0 = off).
	MaxTasks int `json:"max_tasks,omitempty"`
	// TargetSeconds closes a clustered job once its estimated runtime
	// reaches this many seconds (0 = off).
	TargetSeconds float64 `json:"target_seconds,omitempty"`
}

// options converts the spec to planner options.
func (c ClusterSpec) options() planner.ClusterOptions {
	return planner.ClusterOptions{MaxTasksPerJob: c.MaxTasks, TargetJobSeconds: c.TargetSeconds}
}

// PolicySpec is the scenario's policy matrix; every combination of the
// three axes is crossed with (site set, n, seed) into one cell.
type PolicySpec struct {
	// Site lists site-selection policies (round-robin, data-aware,
	// runtime-aware). Only meaningful when site sets have ≥ 2 sites;
	// defaults to data-aware for multi-site sets.
	Site []string `json:"site,omitempty"`
	// Cluster lists clustering configurations; defaults to [off].
	Cluster []ClusterSpec `json:"cluster,omitempty"`
	// Failover lists cross-site retry settings; defaults to [false].
	Failover []bool `json:"failover,omitempty"`
}

// EnsembleSpec switches cells from one workflow to a concurrent ensemble.
type EnsembleSpec struct {
	// Workflows is the member count (≥ 1).
	Workflows int `json:"workflows"`
	// MaxInFlight caps jobs in flight across all members (0 = unlimited).
	MaxInFlight int `json:"max_inflight,omitempty"`
}

// OutputSpec selects what each cell row reports.
type OutputSpec struct {
	// Fields filters the metric fields of each cell row; empty keeps all.
	// Identity fields (cell, n, seed, sites, …) are always present.
	Fields []string `json:"fields,omitempty"`
	// Percentiles adds kickstart_p<p> and waiting_p<p> per-attempt
	// percentile fields (values in [0, 100]).
	Percentiles []float64 `json:"percentiles,omitempty"`
	// Aggregate runs every cell's engines in aggregation mode: logs fold
	// into fixed-size accumulators and streaming sketches instead of
	// retaining records, so memory stays flat however many jobs a cell
	// simulates. Percentile fields then come from the sketches — exact
	// until a cell exceeds the sketch's marker count, within its
	// documented rank-error envelope beyond. Counters and makespans are
	// unaffected. omitempty keeps the fingerprints of exact-mode
	// documents unchanged; aggregated documents fingerprint differently,
	// so the result cache never serves one mode for the other.
	Aggregate bool `json:"aggregate,omitempty"`
}

// RetryBackoffSpec delays every retry by an exponentially growing window
// with full jitter: the k-th retry of a job waits uniform(0,
// min(cap_s, base_s·2^(k-1))) virtual seconds before resubmission. The
// jitter is drawn from the run's seeded RNG, so results reproduce exactly.
type RetryBackoffSpec struct {
	// BaseSeconds is the first retry's window (> 0).
	BaseSeconds float64 `json:"base_s"`
	// CapSeconds bounds the window; 0 leaves it uncapped.
	CapSeconds float64 `json:"cap_s,omitempty"`
}

// Doc is a parsed scenario document.
type Doc struct {
	// SchemaVersion must equal Version.
	SchemaVersion int `json:"version"`
	// Name labels the scenario ([A-Za-z0-9._-]+).
	Name string `json:"name"`
	// Description is free text for humans.
	Description string `json:"description,omitempty"`
	// Sites defines the platform pool.
	Sites []SiteSpec `json:"sites"`
	// SiteSets lists the site subsets the grid sweeps over; each entry is
	// a list of defined site names. Defaults to one set of all sites.
	SiteSets [][]string `json:"site_sets,omitempty"`
	// Workload declares the dataset and sweep axes.
	Workload WorkloadSpec `json:"workload"`
	// Policies is the policy matrix.
	Policies PolicySpec `json:"policies,omitempty"`
	// Ensemble, when present, runs each cell as a concurrent ensemble.
	Ensemble *EnsembleSpec `json:"ensemble,omitempty"`
	// Retries is the per-job retry budget (default 5).
	Retries *int `json:"retries,omitempty"`
	// RetryBackoff, when present, delays retries with exponential backoff
	// plus deterministic full jitter.
	RetryBackoff *RetryBackoffSpec `json:"retry_backoff,omitempty"`
	// Faults schedules deterministic site faults — timed outages with
	// recovery, capacity steps, eviction storms and dispatch blackouts —
	// against the simulated platforms. Each fault applies to the cells
	// whose site set contains its site.
	Faults []fault.Spec `json:"faults,omitempty"`
	// Outputs selects report fields and percentiles.
	Outputs OutputSpec `json:"outputs,omitempty"`
}

// MetricFields lists the metric field names Outputs.Fields may select.
func MetricFields() []string {
	return []string{
		"makespan_s", "mean_workflow_makespan_s", "cumulative_kickstart_s",
		"jobs", "attempts", "retries", "evictions", "failovers", "backoffs",
		"outages", "downtime_s", "success",
	}
}

// sitePresets maps preset names to catalog-side defaults; the platform
// side lives in compile.go. Slot defaults mirror the paper experiments
// (Sandhills allocation 300, OSG pool 600, cloud 512).
var sitePresets = map[string]bool{"sandhills": true, "osg": true, "cloud": true}

// Load reads and validates a scenario file.
func Load(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(path, data)
}

// Parse decodes and validates scenario JSON. src names the source in
// errors (a file name for Load, a label like "request" for the server).
// Errors are line- and field-qualified where the position is known.
func Parse(src string, data []byte) (*Doc, error) {
	doc := &Doc{}
	if err := decodeStrict(src, data, doc); err != nil {
		return nil, err
	}
	pos := positions(data)
	if errs := doc.validate(src, pos); len(errs) > 0 {
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		return nil, fmt.Errorf("%s", strings.Join(msgs, "\n"))
	}
	doc.applyDefaults()
	return doc, nil
}

// applyDefaults fills the documented defaults in place. It runs after
// validation so errors always reference what the author wrote.
func (d *Doc) applyDefaults() {
	for i := range d.Sites {
		if d.Sites[i].Name == "" {
			d.Sites[i].Name = d.Sites[i].Preset
		}
	}
	if len(d.SiteSets) == 0 {
		all := make([]string, len(d.Sites))
		for i := range d.Sites {
			all[i] = d.Sites[i].Name
		}
		d.SiteSets = [][]string{all}
	}
	if len(d.Workload.Seeds) == 0 {
		d.Workload.Seeds = []uint64{42}
	}
	if len(d.Policies.Site) == 0 {
		multi := false
		for _, set := range d.SiteSets {
			if len(set) > 1 {
				multi = true
			}
		}
		if multi {
			d.Policies.Site = []string{planner.PolicyDataAware}
		} else {
			d.Policies.Site = []string{""}
		}
	}
	if len(d.Policies.Cluster) == 0 {
		d.Policies.Cluster = []ClusterSpec{{}}
	}
	if len(d.Policies.Failover) == 0 {
		d.Policies.Failover = []bool{false}
	}
	if d.Retries == nil {
		r := 5
		d.Retries = &r
	}
	if len(d.Outputs.Fields) == 0 {
		d.Outputs.Fields = MetricFields()
	}
}

// params returns the workload rank-size law of the scenario.
func (d *Doc) params() workflow.WorkloadParams {
	if d.Workload.Params != nil {
		p := d.Workload.Params
		return workflow.WorkloadParams{
			NumClusters:    p.NumClusters,
			MaxClusterSize: p.MaxClusterSize,
			SizeExponent:   p.SizeExponent,
			MeanReadLen:    p.MeanReadLen,
		}
	}
	// The paper preset (validated earlier).
	return workflow.PaperWorkload(0).Params
}

// CellCount returns the size of the grid the document expands to,
// saturating at math.MaxInt: axis lengths are author-controlled (and, via
// pegflow serve, attacker-controlled), so the product must not wrap
// around and slip under the MaxCells guard.
func (d *Doc) CellCount() int {
	n := 1
	for _, k := range []int{
		len(d.SiteSets), len(d.Workload.N), len(d.Workload.Seeds),
		len(d.Policies.Site), len(d.Policies.Cluster), len(d.Policies.Failover),
	} {
		if k == 0 {
			return 0
		}
		if n > math.MaxInt/k {
			return math.MaxInt
		}
		n *= k
	}
	return n
}

// Fingerprint returns the SHA-256 hex digest of the normalized document:
// the parsed form re-marshaled compactly, so formatting and key order in
// the source do not change the fingerprint, while any semantic change
// does. Call it on a parsed (defaulted) document.
func (d *Doc) Fingerprint() string {
	b, err := json.Marshal(d)
	if err != nil {
		// Doc contains only marshalable fields; unreachable.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// fieldErr is a field-qualified validation error with an optional line.
func fieldErr(src string, pos map[string]int, path, format string, args ...any) error {
	loc := src
	if line := lookupLine(pos, path); line > 0 {
		loc = fmt.Sprintf("%s:%d", src, line)
	}
	return fmt.Errorf("%s: %s: %s", loc, path, fmt.Sprintf(format, args...))
}

// validate checks the document, collecting every error it can find.
func (d *Doc) validate(src string, pos map[string]int) []error {
	var errs []error
	ef := func(path, format string, args ...any) {
		errs = append(errs, fieldErr(src, pos, path, format, args...))
	}

	if d.SchemaVersion != Version {
		ef("version", "unsupported schema version %d (this build reads %d)", d.SchemaVersion, Version)
	}
	if d.Name == "" {
		ef("name", "scenario name is required")
	} else if !validName(d.Name) {
		ef("name", "%q: use letters, digits, dot, underscore or dash", d.Name)
	}

	siteNames := d.validateSites(ef)
	anyMulti, allMulti := d.validateSiteSets(ef, siteNames)
	d.validateWorkload(ef)
	d.validatePolicies(ef, anyMulti, allMulti)

	if d.Ensemble != nil {
		if d.Ensemble.Workflows < 1 {
			ef("ensemble.workflows", "must be at least 1, got %d", d.Ensemble.Workflows)
		}
		if d.Ensemble.MaxInFlight < 0 {
			ef("ensemble.max_inflight", "must be non-negative, got %d", d.Ensemble.MaxInFlight)
		}
	}
	if d.Retries != nil && *d.Retries < 0 {
		ef("retries", "must be non-negative, got %d", *d.Retries)
	}
	if rb := d.RetryBackoff; rb != nil {
		if !(rb.BaseSeconds > 0) || math.IsInf(rb.BaseSeconds, 0) {
			ef("retry_backoff.base_s", "must be positive and finite, got %v", rb.BaseSeconds)
		}
		if rb.CapSeconds < 0 || math.IsNaN(rb.CapSeconds) || math.IsInf(rb.CapSeconds, 0) {
			ef("retry_backoff.cap_s", "must be non-negative and finite, got %v", rb.CapSeconds)
		}
	}
	d.validateFaults(ef, siteNames)
	d.validateOutputs(ef)

	if len(errs) == 0 {
		if cells := d.cellCountAfterDefaults(); cells > MaxCells {
			ef("workload", "scenario expands to %d cells, more than the limit of %d", cells, MaxCells)
		}
	}
	return errs
}

// cellCountAfterDefaults sizes the grid as applyDefaults would see it,
// without mutating the document.
func (d *Doc) cellCountAfterDefaults() int {
	c := *d
	c.applyDefaults()
	return c.CellCount()
}

func validName(s string) bool {
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return s != ""
}

func (d *Doc) validateSites(ef func(path, format string, args ...any)) map[string]bool {
	names := make(map[string]bool)
	if len(d.Sites) == 0 {
		ef("sites", "at least one site is required")
		return names
	}
	for i := range d.Sites {
		s := &d.Sites[i]
		p := func(field string) string { return fmt.Sprintf("sites[%d].%s", i, field) }
		name := s.siteName()
		if name == "" {
			ef(fmt.Sprintf("sites[%d]", i), "site needs a name or a preset")
		} else if names[name] {
			ef(p("name"), "duplicate site name %q", name)
		} else if !validName(name) {
			ef(p("name"), "%q: use letters, digits, dot, underscore or dash", name)
		}
		names[name] = true
		if s.Preset != "" && !sitePresets[s.Preset] {
			ef(p("preset"), "unknown preset %q (have %s)", s.Preset, strings.Join(presetNames(), ", "))
		}
		if s.Preset == "" {
			if s.Slots == nil {
				ef(p("slots"), "inline site needs an explicit slot count")
			}
			if s.SpeedFactor == nil {
				ef(p("speed_factor"), "inline site needs an explicit speed factor")
			}
		}
		if s.Slots != nil && *s.Slots <= 0 {
			ef(p("slots"), "must be positive, got %d", *s.Slots)
		}
		if s.SpeedFactor != nil && *s.SpeedFactor <= 0 {
			ef(p("speed_factor"), "must be positive, got %v", *s.SpeedFactor)
		}
		if s.SpeedJitter != nil && (*s.SpeedJitter < 0 || *s.SpeedJitter >= 1) {
			ef(p("speed_jitter"), "must be in [0, 1), got %v", *s.SpeedJitter)
		}
		// Ordered slice, not a map: validation errors must come out in
		// declaration order every run (pegflow-lint detrange enforces
		// this — a map range here emitted them in random order).
		for _, fv := range []struct {
			field string
			v     *float64
		}{
			{"submit_interval", s.SubmitInterval}, {"dispatch_mean", s.DispatchMean},
			{"dispatch_cv", s.DispatchCV}, {"setup_mean", s.SetupMean}, {"setup_cv", s.SetupCV},
			{"setup_mbps", s.SetupMBps}, {"eviction_rate", s.EvictionRate},
			{"slot_ramp_seconds", s.SlotRampSeconds}, {"install_mb", s.InstallMB},
			{"stage_in_mbps", s.StageInMBps},
		} {
			if fv.v != nil && *fv.v < 0 {
				ef(p(fv.field), "must be non-negative, got %v", *fv.v)
			}
		}
		if s.InitialSlots != nil && *s.InitialSlots < 0 {
			ef(p("initial_slots"), "must be non-negative, got %d", *s.InitialSlots)
		}
	}
	return names
}

// validateSiteSets checks the site-set axis and reports whether any — and
// whether every — set (after defaulting) has at least two sites.
func (d *Doc) validateSiteSets(ef func(path, format string, args ...any), siteNames map[string]bool) (anyMulti, allMulti bool) {
	sets := d.SiteSets
	if len(sets) == 0 {
		return len(d.Sites) > 1, len(d.Sites) > 1
	}
	allMulti = true
	for i, set := range sets {
		if len(set) == 0 {
			ef(fmt.Sprintf("site_sets[%d]", i), "empty site set")
			continue
		}
		if len(set) < 2 {
			allMulti = false
		} else {
			anyMulti = true
		}
		seen := make(map[string]bool)
		for j, name := range set {
			path := fmt.Sprintf("site_sets[%d][%d]", i, j)
			if !siteNames[name] {
				ef(path, "site %q is not defined under sites", name)
			}
			if seen[name] {
				ef(path, "site %q repeated within the set", name)
			}
			seen[name] = true
		}
	}
	return anyMulti, allMulti
}

func (d *Doc) validateWorkload(ef func(path, format string, args ...any)) {
	w := &d.Workload
	switch {
	case w.Preset != "" && w.Params != nil:
		ef("workload", "preset and params are mutually exclusive")
	case w.Preset != "" && w.Preset != "paper":
		ef("workload.preset", "unknown preset %q (have paper)", w.Preset)
	case w.Preset == "" && w.Params == nil:
		ef("workload", `either preset ("paper") or params is required`)
	}
	if w.Params != nil {
		p := w.Params
		if p.NumClusters <= 0 {
			ef("workload.params.num_clusters", "must be positive, got %d", p.NumClusters)
		}
		if p.MaxClusterSize <= 0 {
			ef("workload.params.max_cluster_size", "must be positive, got %d", p.MaxClusterSize)
		}
		if p.SizeExponent < 0 {
			ef("workload.params.size_exponent", "must be non-negative, got %v", p.SizeExponent)
		}
		if p.MeanReadLen <= 0 {
			ef("workload.params.mean_read_len", "must be positive, got %d", p.MeanReadLen)
		}
	}
	if len(w.N) == 0 {
		ef("workload.n", "at least one chunk count is required")
	}
	for i, n := range w.N {
		if n <= 0 {
			ef(fmt.Sprintf("workload.n[%d]", i), "must be positive, got %d", n)
		}
	}
}

func (d *Doc) validatePolicies(ef func(path, format string, args ...any), anyMulti, allMulti bool) {
	known := make(map[string]bool)
	for _, p := range planner.PolicyNames() {
		// "" is the internal single-site placeholder applyDefaults writes;
		// accepting it keeps already-defaulted documents re-validatable.
		known[p], known[""] = true, true
	}
	explicit := false
	for i, p := range d.Policies.Site {
		if p != "" {
			explicit = true
		}
		if !known[p] {
			ef(fmt.Sprintf("policies.site[%d]", i), "unknown policy %q (have %s)",
				p, strings.Join(planner.PolicyNames(), ", "))
		}
	}
	if explicit && !anyMulti {
		ef("policies.site", "site policies need a site set with at least two sites")
	}
	for i, c := range d.Policies.Cluster {
		if c.MaxTasks < 0 {
			ef(fmt.Sprintf("policies.cluster[%d].max_tasks", i), "must be non-negative, got %d", c.MaxTasks)
		}
		if c.TargetSeconds < 0 {
			ef(fmt.Sprintf("policies.cluster[%d].target_seconds", i), "must be non-negative, got %v", c.TargetSeconds)
		}
	}
	for i, f := range d.Policies.Failover {
		if f && !allMulti {
			ef(fmt.Sprintf("policies.failover[%d]", i),
				"failover needs every site set to have at least two sites")
		}
	}
}

// validateFaults checks every fault spec and that each targets a declared
// site. Faults need not appear in every site set: a cell only installs the
// faults whose site its set contains.
func (d *Doc) validateFaults(ef func(path, format string, args ...any), siteNames map[string]bool) {
	for i := range d.Faults {
		f := &d.Faults[i]
		if f.Site != "" && !siteNames[f.Site] {
			ef(fmt.Sprintf("faults[%d].site", i), "site %q is not defined under sites", f.Site)
		}
		for _, fe := range f.Validate() {
			ef(fmt.Sprintf("faults[%d].%s", i, fe.Field), "%s", fe.Msg)
		}
	}
}

func (d *Doc) validateOutputs(ef func(path, format string, args ...any)) {
	known := make(map[string]bool)
	for _, f := range MetricFields() {
		known[f] = true
	}
	for i, f := range d.Outputs.Fields {
		if !known[f] {
			ef(fmt.Sprintf("outputs.fields[%d]", i), "unknown field %q (have %s)",
				f, strings.Join(MetricFields(), ", "))
		}
	}
	for i, p := range d.Outputs.Percentiles {
		if p < 0 || p > 100 {
			ef(fmt.Sprintf("outputs.percentiles[%d]", i), "must be in [0, 100], got %v", p)
		}
	}
}

func presetNames() []string {
	names := make([]string, 0, len(sitePresets))
	for n := range sitePresets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
