package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// runLines compiles and runs a scenario source with the given workers.
func runLines(t *testing.T, src string, workers int) [][]byte {
	t.Helper()
	doc, err := Parse("run.json", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(doc)
	if err != nil {
		t.Fatal(err)
	}
	lines, err := c.Run(RunOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return lines
}

func joinLines(lines [][]byte) []byte {
	return append(bytes.Join(lines, []byte("\n")), '\n')
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	leakCheck(t)
	one := joinLines(runLines(t, minimal, 1))
	eight := joinLines(runLines(t, minimal, 8))
	if !bytes.Equal(one, eight) {
		t.Errorf("output depends on worker count:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", one, eight)
	}
}

func TestRunShape(t *testing.T) {
	lines := runLines(t, minimal, 0)
	if len(lines) != 2+4 {
		t.Fatalf("lines = %d, want header + 4 cells + footer", len(lines))
	}
	var head Header
	if err := json.Unmarshal(lines[0], &head); err != nil {
		t.Fatal(err)
	}
	if head.Scenario != "unit-test" || head.Cells != 4 || len(head.Fingerprint) != 64 {
		t.Errorf("bad header: %+v", head)
	}
	var foot Footer
	if err := json.Unmarshal(lines[len(lines)-1], &foot); err != nil {
		t.Fatal(err)
	}
	if !foot.Done || foot.Cells != 4 {
		t.Errorf("bad footer: %+v", foot)
	}
	for i, line := range lines[1 : len(lines)-1] {
		var row map[string]any
		if err := json.Unmarshal(line, &row); err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		if int(row["cell"].(float64)) != i {
			t.Errorf("cell %d out of order: %v", i, row["cell"])
		}
		for _, key := range []string{"makespan_s", "success", "kickstart_p50", "kickstart_p99", "waiting_p50"} {
			if _, ok := row[key]; !ok {
				t.Errorf("cell %d missing %q: %s", i, key, line)
			}
		}
		if row["makespan_s"].(float64) <= 0 {
			t.Errorf("cell %d: non-positive makespan: %s", i, line)
		}
	}
}

func TestRunStreamsInOrder(t *testing.T) {
	leakCheck(t)
	doc, err := Parse("run.json", []byte(minimal))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(doc)
	if err != nil {
		t.Fatal(err)
	}
	var streamed [][]byte
	lines, err := c.Run(RunOptions{
		Workers: 4,
		OnLine: func(line []byte) error {
			streamed = append(streamed, append([]byte(nil), line...))
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(joinLines(streamed), joinLines(lines)) {
		t.Error("streamed lines differ from returned lines")
	}
}

func TestRunGateWrapsEveryCell(t *testing.T) {
	leakCheck(t)
	doc, err := Parse("run.json", []byte(minimal))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(doc)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{}, 2)
	var calls atomic.Int32
	_, err = c.Run(RunOptions{
		Workers: 4,
		Gate: func(ctx context.Context, run func()) error {
			select {
			case gate <- struct{}{}:
			case <-ctx.Done():
				return ctx.Err()
			}
			defer func() { <-gate }()
			calls.Add(1)
			run()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 0 {
		t.Error("gate was never invoked")
	}
}

// A gate that refuses capacity (the context canceled while queued)
// aborts the run without simulating the cell.
func TestRunGateErrorAbortsRun(t *testing.T) {
	leakCheck(t)
	doc, err := Parse("run.json", []byte(minimal))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(doc)
	if err != nil {
		t.Fatal(err)
	}
	lines, err := c.Run(RunOptions{
		Workers: 1,
		Gate: func(ctx context.Context, run func()) error {
			return context.Canceled // never calls run: capacity refused
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Run with refusing gate = %v, want context.Canceled", err)
	}
	if lines != nil {
		t.Error("aborted run still returned lines")
	}
}

// An OnLine failure (the server's client hung up mid-stream) aborts the
// run: Run returns the write error instead of simulating and formatting
// the remaining cells.
func TestRunOnLineErrorAborts(t *testing.T) {
	doc, err := Parse("run.json", []byte(minimal))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(doc)
	if err != nil {
		t.Fatal(err)
	}
	broken := errors.New("connection reset")
	delivered := 0
	_, err = c.Run(RunOptions{
		Workers: 1,
		OnLine: func(line []byte) error {
			delivered++
			if delivered > 2 { // header + first cell, then the pipe breaks
				return broken
			}
			return nil
		},
	})
	if !errors.Is(err, broken) {
		t.Errorf("Run with failing OnLine = %v, want the write error", err)
	}
	if delivered != 3 {
		t.Errorf("OnLine called %d times after the failure, want exactly 3 (the failing call is the last)", delivered)
	}
}

// mapCache is an in-test ResultCache recording traffic.
type mapCache struct {
	mu   sync.Mutex
	m    map[string][]byte
	hits int
	puts int
}

func newMapCache() *mapCache { return &mapCache{m: make(map[string][]byte)} }

func (mc *mapCache) key(fp string, cell int) string { return fp + "/" + strconv.Itoa(cell) }

func (mc *mapCache) Get(fp string, cell int) ([]byte, bool) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	line, ok := mc.m[mc.key(fp, cell)]
	if ok {
		mc.hits++
	}
	return line, ok
}

func (mc *mapCache) Put(fp string, cell int, line []byte) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	mc.puts++
	mc.m[mc.key(fp, cell)] = line
}

// TestRunServesFromCache is the cache acceptance property at the
// scenario layer: a second run of the same compiled document serves
// every cell from the cache — the gate (i.e. the simulation pool) is
// never entered — and the NDJSON bytes equal the fresh run's exactly.
func TestRunServesFromCache(t *testing.T) {
	doc, err := Parse("run.json", []byte(minimal))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(doc)
	if err != nil {
		t.Fatal(err)
	}
	cache := newMapCache()
	var gated atomic.Int32
	gate := func(ctx context.Context, run func()) error {
		gated.Add(1)
		run()
		return nil
	}
	cold, err := c.Run(RunOptions{Workers: 4, Cache: cache, Gate: gate})
	if err != nil {
		t.Fatal(err)
	}
	if cache.puts != len(c.Cells) {
		t.Fatalf("cold run stored %d lines, want %d", cache.puts, len(c.Cells))
	}
	coldGated := gated.Load()
	if coldGated != int32(len(c.Cells)) {
		t.Fatalf("cold run gated %d cells, want %d", coldGated, len(c.Cells))
	}

	warm, err := c.Run(RunOptions{Workers: 4, Cache: cache, Gate: gate})
	if err != nil {
		t.Fatal(err)
	}
	if gated.Load() != coldGated {
		t.Errorf("warm run entered the gate %d times, want 0 (cache hits skip simulation)", gated.Load()-coldGated)
	}
	if cache.hits != len(c.Cells) {
		t.Errorf("warm run hit the cache %d times, want %d", cache.hits, len(c.Cells))
	}
	if !bytes.Equal(joinLines(cold), joinLines(warm)) {
		t.Errorf("cached output differs from fresh output:\n--- fresh ---\n%s--- cached ---\n%s",
			joinLines(cold), joinLines(warm))
	}
}

// A canceled context aborts the run instead of simulating unread cells
// (the server passes the request context here).
func TestRunHonorsContextCancellation(t *testing.T) {
	leakCheck(t)
	doc, err := Parse("run.json", []byte(minimal))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(doc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = c.Run(RunOptions{Workers: 2, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Run with canceled context = %v, want context.Canceled", err)
	}
}

// A single-site set crossed with a multi-policy axis must not emit one
// identical cell per policy.
func TestSingleSiteSetsCollapsePolicyAxis(t *testing.T) {
	src := `{
  "version": 1,
  "name": "mixed",
  "sites": [{"preset": "sandhills", "slots": 8}, {"preset": "osg", "slots": 8}],
  "site_sets": [["sandhills"], ["sandhills", "osg"]],
  "workload": {"params": {"num_clusters": 50, "max_cluster_size": 30, "size_exponent": 0.5, "mean_read_len": 800}, "n": [2]},
  "policies": {"site": ["round-robin", "data-aware"]}
}`
	doc, err := Parse("mixed.json", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(doc)
	if err != nil {
		t.Fatal(err)
	}
	// 1 cell for the single-site set (policy collapsed) + 2 for the pair.
	if len(c.Cells) != 3 {
		t.Fatalf("cells = %d, want 3 (no duplicate single-site cells)", len(c.Cells))
	}
	if c.Cells[0].Policy != "" || len(c.Cells[0].SiteSet) != 1 {
		t.Errorf("cell 0 = %+v, want single-site with empty policy", c.Cells[0])
	}
	if c.Cells[1].Policy != "round-robin" || c.Cells[2].Policy != "data-aware" {
		t.Errorf("multi-site cells lost their policy axis: %+v / %+v", c.Cells[1], c.Cells[2])
	}
}

// An oversized axis product must trip the cell cap, not wrap around it.
func TestCellCountOverflowSaturates(t *testing.T) {
	big := strings.Repeat(`["sandhills"],`, 2048)
	src := `{
  "version": 1,
  "name": "overflow",
  "sites": [{"preset": "sandhills"}],
  "site_sets": [` + big + `["sandhills"]],
  "workload": {"preset": "paper",
    "n": [` + strings.Repeat("1,", 2047) + `1],
    "seeds": [` + strings.Repeat("1,", 2047) + `1]},
  "policies": {"failover": [` + strings.Repeat("false,", 2047) + `false]}
}`
	_, err := Parse("overflow.json", []byte(src))
	if err == nil || !strings.Contains(err.Error(), "more than the limit") {
		t.Fatalf("overflowing grid not rejected by the cell cap: %v", err)
	}
}

// The general (ensemble) path and the policy matrix: two sites, policy ×
// failover grid, an ensemble of 3 members.
const matrix = `{
  "version": 1,
  "name": "matrix",
  "sites": [
    {"name": "fast", "slots": 16, "speed_factor": 1.0, "dispatch_mean": 5, "dispatch_cv": 0.3},
    {"name": "slow", "slots": 16, "speed_factor": 2.5, "speed_jitter": 0.25, "dispatch_mean": 40,
     "dispatch_cv": 0.8, "preinstalled": false, "install_mb": 80, "setup_mean": 60, "setup_cv": 0.4,
     "setup_mbps": 5, "eviction_rate": 0.00005, "stage_in_mbps": 20}
  ],
  "workload": {"params": {"num_clusters": 150, "max_cluster_size": 50, "size_exponent": 0.5, "mean_read_len": 800},
               "n": [6], "seeds": [3]},
  "policies": {"site": ["round-robin", "data-aware"], "failover": [false, true]},
  "ensemble": {"workflows": 3},
  "outputs": {"fields": ["makespan_s", "mean_workflow_makespan_s", "retries", "evictions", "failovers", "success"]}
}`

func TestMatrixEnsembleCells(t *testing.T) {
	one := runLines(t, matrix, 1)
	many := runLines(t, matrix, 8)
	if !bytes.Equal(joinLines(one), joinLines(many)) {
		t.Fatal("matrix output depends on worker count")
	}
	// 1 set × 1 n × 1 seed × 2 policies × 1 cluster × 2 failover.
	cells := one[1 : len(one)-1]
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	seen := map[string]bool{}
	for _, line := range cells {
		var row map[string]any
		if err := json.Unmarshal(line, &row); err != nil {
			t.Fatal(err)
		}
		if row["workflows"].(float64) != 3 {
			t.Errorf("workflows = %v, want 3", row["workflows"])
		}
		key := row["policy"].(string)
		if row["failover"].(bool) {
			key += "+failover"
		}
		seen[key] = true
		if _, ok := row["cumulative_kickstart_s"]; ok {
			t.Error("field filter failed: cumulative_kickstart_s not requested")
		}
	}
	for _, k := range []string{"round-robin", "round-robin+failover", "data-aware", "data-aware+failover"} {
		if !seen[k] {
			t.Errorf("missing matrix cell %s", k)
		}
	}
}
