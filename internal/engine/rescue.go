package engine

import (
	"fmt"
	"io"

	"pegflow/internal/dax"
	"pegflow/internal/planner"
)

// RescueDAX builds the rescue workflow for an incomplete run: the
// sub-DAG of the plan induced by the unfinished jobs, with dependencies on
// completed jobs dropped (their outputs already exist) — what Pegasus
// resubmits after a failure (paper §III: "Pegasus generates a rescue
// workflow that contains information of the work that remains to be done").
// It returns an error if the run actually succeeded.
func RescueDAX(plan *planner.Plan, res *Result) (*dax.Workflow, error) {
	if res.Success {
		return nil, fmt.Errorf("engine: no rescue workflow for a successful run")
	}
	unfinished := make(map[string]bool, len(res.Unfinished))
	for _, id := range res.Unfinished {
		unfinished[id] = true
	}
	out := dax.New(plan.Graph.Name + "-rescue")
	for _, j := range plan.Graph.Jobs() {
		if !unfinished[j.ID] {
			continue
		}
		cp := *j
		if err := out.AddJob(&cp); err != nil {
			return nil, err
		}
	}
	for _, j := range plan.Graph.Jobs() {
		if !unfinished[j.ID] {
			continue
		}
		for _, p := range plan.Graph.Parents(j.ID) {
			if unfinished[p] {
				if err := out.AddDependency(p, j.ID); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// WriteRescue writes the rescue workflow as DAX XML.
func WriteRescue(w io.Writer, plan *planner.Plan, res *Result) error {
	rescue, err := RescueDAX(plan, res)
	if err != nil {
		return err
	}
	return rescue.WriteXML(w)
}
