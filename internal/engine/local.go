package engine

import (
	"fmt"
	"time"

	"pegflow/internal/kickstart"
	"pegflow/internal/planner"
)

// TaskContext is what a transformation implementation receives when a job
// runs locally.
type TaskContext struct {
	// Job is the planned job being executed.
	Job *planner.Job
	// WorkDir is the directory holding the workflow's files.
	WorkDir string
	// Args are the job's command-line arguments.
	Args []string
}

// TransformationFunc is the local implementation of a logical
// transformation.
type TransformationFunc func(ctx *TaskContext) error

// Registry maps logical transformation names to local implementations.
type Registry map[string]TransformationFunc

// LocalExecutor runs planned jobs as real Go functions with bounded
// parallelism — the "real mode" of the system: examples and tests execute
// actual CAP3/BLAST work through it.
type LocalExecutor struct {
	registry Registry
	workDir  string
	sem      chan struct{}
	events   chan Event
	start    time.Time
}

// NewLocalExecutor builds an executor with the given transformation
// registry, working directory and parallelism (≤0 means 1).
func NewLocalExecutor(reg Registry, workDir string, parallelism int) *LocalExecutor {
	if parallelism <= 0 {
		parallelism = 1
	}
	return &LocalExecutor{
		registry: reg,
		workDir:  workDir,
		sem:      make(chan struct{}, parallelism),
		events:   make(chan Event, 64),
		start:    time.Now(),
	}
}

// Now returns seconds since the executor was created.
func (e *LocalExecutor) Now() float64 { return time.Since(e.start).Seconds() }

// Submit schedules the job on the worker pool. Unknown transformations
// fail the attempt rather than erroring the submission, mirroring how a
// batch system reports a missing executable as a job failure.
func (e *LocalExecutor) Submit(job *planner.Job, attempt int) {
	submitTime := e.Now()
	go func() {
		e.sem <- struct{}{}
		defer func() { <-e.sem }()
		setupStart := e.Now()

		rec := &kickstart.Record{
			JobID:          job.ID,
			Transformation: job.Transformation,
			Site:           job.Site,
			Node:           "local",
			Attempt:        attempt,
			SubmitTime:     submitTime,
			SetupStart:     setupStart,
		}
		fn, ok := e.registry[job.Transformation]
		rec.ExecStart = e.Now()
		var err error
		if !ok {
			err = fmt.Errorf("local: transformation %q not registered", job.Transformation)
		} else {
			err = e.run(fn, job)
		}
		rec.EndTime = e.Now()
		ev := Event{JobID: job.ID, Time: rec.EndTime, Record: rec}
		if err != nil {
			rec.Status = kickstart.StatusFailed
			rec.ExitMessage = err.Error()
			ev.Type = EventFailed
		} else {
			rec.Status = kickstart.StatusSuccess
			ev.Type = EventFinished
		}
		e.events <- ev
	}()
}

// run invokes the transformation, converting panics into job failures so a
// buggy task cannot take down the meta-scheduler.
func (e *LocalExecutor) run(fn TransformationFunc, job *planner.Job) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("local: transformation %q panicked: %v", job.Transformation, r)
		}
	}()
	return fn(&TaskContext{Job: job, WorkDir: e.workDir, Args: job.Args})
}

// Next blocks until a job attempt finishes.
func (e *LocalExecutor) Next() Event { return <-e.events }

var _ Executor = (*LocalExecutor)(nil)
