package engine

import (
	"fmt"
	"testing"
	"testing/quick"

	"pegflow/internal/catalog"
	"pegflow/internal/dax"
	"pegflow/internal/planner"
)

func TestThrottleWithRetriesStaysBounded(t *testing.T) {
	w := dax.New("wide")
	for i := 0; i < 40; i++ {
		w.NewJob(fmt.Sprintf("J%02d", i), "t")
	}
	p := makePlan(t, w)
	ex := newFakeExecutor()
	for i := 0; i < 40; i += 3 {
		ex.failures[fmt.Sprintf("J%02d", i)] = 1
	}
	res, err := Run(p, ex, Options{MaxActive: 4, RetryLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("failed: %v", res.PermanentlyFailed)
	}
	if ex.maxInflight > 4 {
		t.Errorf("maxInflight = %d with retries, want ≤ 4", ex.maxInflight)
	}
	if res.Retries != 14 {
		t.Errorf("retries = %d, want 14", res.Retries)
	}
}

// Property: for any DAG shape, failure pattern and retry limit, the engine
// terminates with Completed ∪ Unfinished = all jobs, a descendant of a
// permanently-failed job never runs, and the log's per-job attempt count
// never exceeds RetryLimit+1.
func TestPropertyEngineTermination(t *testing.T) {
	f := func(seed uint32, retryRaw uint8) bool {
		retry := int(retryRaw % 3)
		n := int(seed%15) + 3
		w := dax.New("rand")
		for i := 0; i < n; i++ {
			w.NewJob(fmt.Sprintf("J%02d", i), "t")
		}
		s := seed
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s = s*1664525 + 1013904223
				if s%3 == 0 {
					_ = w.AddDependency(fmt.Sprintf("J%02d", i), fmt.Sprintf("J%02d", j))
				}
			}
		}
		p := makePlanQuick(w)
		if p == nil {
			return false
		}
		ex := newFakeExecutor()
		for i := 0; i < n; i++ {
			s = s*1664525 + 1013904223
			if s%4 == 0 {
				ex.failures[fmt.Sprintf("J%02d", i)] = int(s % 5)
			}
		}
		res, err := Run(p, ex, Options{RetryLimit: retry})
		if err != nil {
			return false
		}
		if len(res.Completed)+len(res.Unfinished) != n {
			return false
		}
		attempts := map[string]int{}
		for _, r := range res.Log.Records() {
			attempts[r.JobID]++
		}
		for _, a := range attempts {
			if a > retry+1 {
				return false
			}
		}
		// Descendants of permanently failed jobs must be unfinished.
		failed := map[string]bool{}
		for _, id := range res.PermanentlyFailed {
			failed[id] = true
		}
		unfinished := map[string]bool{}
		for _, id := range res.Unfinished {
			unfinished[id] = true
		}
		var check func(id string) bool
		check = func(id string) bool {
			for _, c := range p.Graph.Children(id) {
				if !unfinished[c] || !check(c) {
					return false
				}
			}
			return true
		}
		for id := range failed {
			if !check(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// makePlanQuick mirrors makePlan without *testing.T for property use;
// it returns nil on any setup error.
func makePlanQuick(w *dax.Workflow) *planner.Plan {
	sc := catalog.NewSiteCatalog()
	if err := sc.Add(&catalog.Site{Name: "test", Slots: 8, SpeedFactor: 1, SharedSoftware: true}); err != nil {
		return nil
	}
	tc := catalog.NewTransformationCatalog()
	seen := map[string]bool{}
	for _, j := range w.Jobs() {
		if seen[j.Transformation] {
			continue
		}
		seen[j.Transformation] = true
		if err := tc.Add(&catalog.Transformation{Name: j.Transformation, Site: "test", Installed: true}); err != nil {
			return nil
		}
	}
	p, err := planner.New(w, planner.Catalogs{
		Sites: sc, Transformations: tc, Replicas: catalog.NewReplicaCatalog(),
	}, planner.Options{Site: "test"})
	if err != nil {
		return nil
	}
	return p
}
