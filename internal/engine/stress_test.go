package engine

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"pegflow/internal/dax"
	"pegflow/internal/kickstart"
	"pegflow/internal/planner"
	"pegflow/internal/sim/rng"
)

// chaosExecutor runs jobs on a virtual clock, failing and evicting
// attempts according to a seeded random schedule, and counts what it did
// so the engine's accounting can be checked exactly.
type chaosExecutor struct {
	rng            *rng.Stream
	now            float64
	queue          []Event
	failP, evictP  float64
	fails, evicts  int
	finishes       int
	deliveredTypes map[string]int
}

func newChaosExecutor(seed uint64, failP, evictP float64) *chaosExecutor {
	return &chaosExecutor{
		rng:            rng.New(seed).Derive("chaos"),
		failP:          failP,
		evictP:         evictP,
		deliveredTypes: make(map[string]int),
	}
}

func (c *chaosExecutor) Now() float64 { return c.now }

func (c *chaosExecutor) Submit(job *planner.Job, attempt int) {
	submit := c.now
	end := submit + 0.5 + c.rng.Float64()*10
	typ := EventFinished
	status := kickstart.StatusSuccess
	switch r := c.rng.Float64(); {
	case r < c.failP:
		typ, status = EventFailed, kickstart.StatusFailed
		c.fails++
	case r < c.failP+c.evictP:
		typ, status = EventEvicted, kickstart.StatusEvicted
		c.evicts++
	default:
		c.finishes++
	}
	rec := &kickstart.Record{
		JobID:          job.ID,
		Transformation: job.Transformation,
		Site:           job.Site,
		Attempt:        attempt,
		SubmitTime:     submit,
		SetupStart:     submit,
		ExecStart:      submit,
		EndTime:        end,
		Status:         status,
	}
	c.queue = append(c.queue, Event{JobID: job.ID, Type: typ, Time: end, Record: rec})
}

// Next pops the event with the earliest end time (FIFO on ties), advancing
// the clock — a tiny deterministic event loop.
func (c *chaosExecutor) Next() Event {
	best := 0
	for i, ev := range c.queue {
		if ev.Time < c.queue[best].Time {
			best = i
		}
	}
	ev := c.queue[best]
	c.queue = append(c.queue[:best], c.queue[best+1:]...)
	if ev.Time > c.now {
		c.now = ev.Time
	}
	c.deliveredTypes[ev.Type.String()]++
	return ev
}

// randomPlan builds a random DAG of n jobs with forward edges of
// probability p, wrapped as a single-site plan.
func randomPlan(t *testing.T, seed uint64, n int, p float64) *planner.Plan {
	t.Helper()
	r := rng.New(seed).Derive("dag")
	g := dax.New(fmt.Sprintf("stress-%d", seed))
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("job_%03d", i)
		g.NewJob(ids[i], fmt.Sprintf("t%d", i%4)).Priority = r.Intn(5)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				if err := g.AddDependency(ids[i], ids[j]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	plan := &planner.Plan{Graph: g, Info: make(map[string]*planner.Job), Site: "chaos"}
	for _, id := range ids {
		j := g.Job(id)
		plan.Info[id] = &planner.Job{
			ID:             id,
			Transformation: j.Transformation,
			Site:           "chaos",
			Priority:       j.Priority,
			ExecSeconds:    1 + r.Float64()*5,
		}
	}
	return plan
}

// TestEngineStress runs randomized DAGs against random fail/evict
// schedules and checks the engine's invariants exactly:
//
//   - Completed ∪ Unfinished partitions the plan's job IDs;
//   - Evictions equals the evict events the executor produced;
//   - Retries equals non-success events minus permanent failures;
//   - permanently failed jobs and all their descendants are unfinished;
//   - RescueWorkflow is deterministic and sorted.
//
// CI runs the package under -race, exercising the engine loop's data
// structures under the race detector as well.
func TestEngineStress(t *testing.T) {
	configs := []struct {
		failP, evictP float64
		retries       int
	}{
		{0, 0, 0},
		{0.2, 0, 2},
		{0, 0.3, 3},
		{0.25, 0.25, 1},
		{0.6, 0.2, 0},
	}
	for seed := uint64(0); seed < 20; seed++ {
		cfg := configs[seed%uint64(len(configs))]
		name := fmt.Sprintf("seed%d_f%.2f_e%.2f_r%d", seed, cfg.failP, cfg.evictP, cfg.retries)
		t.Run(name, func(t *testing.T) {
			plan := randomPlan(t, seed, 30+int(seed%3)*10, 0.08)
			ex := newChaosExecutor(seed, cfg.failP, cfg.evictP)
			res, err := Run(plan, ex, Options{RetryLimit: cfg.retries, MaxActive: 1 + int(seed%7)})
			if err != nil {
				t.Fatal(err)
			}
			checkEngineInvariants(t, plan, ex, res)
			if res.Failovers != 0 {
				t.Errorf("Failovers = %d without a retry policy", res.Failovers)
			}
		})
	}
}

// checkEngineInvariants asserts the engine's exact accounting against the
// chaos executor's counters:
//
//   - Completed ∪ Unfinished partitions the plan's job IDs;
//   - Evictions equals the evict events the executor produced;
//   - Retries equals non-success events minus permanent failures;
//   - permanently failed jobs and all their descendants are unfinished;
//   - RescueWorkflow is deterministic and sorted.
func checkEngineInvariants(t *testing.T, plan *planner.Plan, ex *chaosExecutor, res *Result) {
	t.Helper()

	// Partition invariant.
	all := make(map[string]bool, plan.Graph.Len())
	for _, j := range plan.Graph.Jobs() {
		all[j.ID] = true
	}
	seen := make(map[string]bool)
	for _, id := range append(append([]string(nil), res.Completed...), res.Unfinished...) {
		if !all[id] {
			t.Errorf("result mentions unknown job %q", id)
		}
		if seen[id] {
			t.Errorf("job %q appears twice across Completed/Unfinished", id)
		}
		seen[id] = true
	}
	if len(seen) != plan.Graph.Len() {
		t.Errorf("Completed+Unfinished covers %d of %d jobs", len(seen), plan.Graph.Len())
	}

	// Exact event accounting.
	if res.Evictions != ex.evicts {
		t.Errorf("Evictions = %d, executor evicted %d", res.Evictions, ex.evicts)
	}
	wantRetries := ex.fails + ex.evicts - len(res.PermanentlyFailed)
	if res.Retries != wantRetries {
		t.Errorf("Retries = %d, want fails(%d)+evicts(%d)-permanent(%d) = %d",
			res.Retries, ex.fails, ex.evicts, len(res.PermanentlyFailed), wantRetries)
	}
	if got := res.Log.Len(); got != ex.fails+ex.evicts+ex.finishes {
		t.Errorf("log has %d records, executor produced %d", got, ex.fails+ex.evicts+ex.finishes)
	}
	if res.Success != (len(res.Unfinished) == 0) {
		t.Errorf("Success = %v with %d unfinished", res.Success, len(res.Unfinished))
	}

	// Failure poisoning: a permanently failed job and its descendants
	// never complete.
	unfinished := make(map[string]bool)
	for _, id := range res.Unfinished {
		unfinished[id] = true
	}
	var checkDown func(string)
	checkDown = func(id string) {
		if !unfinished[id] {
			t.Errorf("descendant %q of a permanently failed job completed", id)
			return
		}
		for _, c := range plan.Graph.Children(id) {
			checkDown(c)
		}
	}
	for _, id := range res.PermanentlyFailed {
		checkDown(id)
	}

	// Rescue determinism.
	r1, r2 := res.RescueWorkflow(), res.RescueWorkflow()
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("RescueWorkflow not deterministic: %v vs %v", r1, r2)
	}
	if !sort.StringsAreSorted(r1) {
		t.Errorf("RescueWorkflow not sorted: %v", r1)
	}
	want := append([]string(nil), res.Unfinished...)
	sort.Strings(want)
	if !reflect.DeepEqual(r1, want) {
		t.Errorf("RescueWorkflow = %v, want sorted Unfinished %v", r1, want)
	}
}

// flipSite is a deterministic cross-site retry policy for the chaos world:
// every retry re-targets the job to the other of two sites.
func flipSite(job *planner.Job, attempt int, lastSite string, evicted bool) *planner.Job {
	nj := *job
	if lastSite == "chaosA" {
		nj.Site = "chaosB"
	} else {
		nj.Site = "chaosA"
	}
	return &nj
}

// TestEngineStressFailover reruns the randomized stress schedule with a
// cross-site retry policy and checks that failover preserves every
// invariant the same-site stress test pins, plus the failover-specific
// ones: every retry is re-sited, attempt sites alternate, per-attempt
// records carry the re-targeted site, and the whole run — rescue list
// included — is deterministic.
func TestEngineStressFailover(t *testing.T) {
	configs := []struct {
		failP, evictP float64
		retries       int
	}{
		{0.3, 0, 3},
		{0, 0.35, 4},
		{0.25, 0.25, 2},
		{0.5, 0.3, 1},
	}
	for seed := uint64(0); seed < 16; seed++ {
		cfg := configs[seed%uint64(len(configs))]
		name := fmt.Sprintf("seed%d_f%.2f_e%.2f_r%d", seed, cfg.failP, cfg.evictP, cfg.retries)
		t.Run(name, func(t *testing.T) {
			run := func() (*Result, *chaosExecutor) {
				plan := randomPlan(t, seed, 30+int(seed%3)*10, 0.08)
				for _, j := range plan.Info {
					j.Site = "chaosA"
				}
				ex := newChaosExecutor(seed, cfg.failP, cfg.evictP)
				res, err := Run(plan, ex, Options{
					RetryLimit: cfg.retries,
					MaxActive:  1 + int(seed%7),
					Retry:      flipSite,
				})
				if err != nil {
					t.Fatal(err)
				}
				checkEngineInvariants(t, plan, ex, res)
				return res, ex
			}
			res, _ := run()

			// Every retry crossed sites.
			if res.Failovers != res.Retries {
				t.Errorf("Failovers = %d, want every retry re-sited (%d)", res.Failovers, res.Retries)
			}
			// Attempt k of a job runs on the site the policy chose:
			// alternating, starting at chaosA.
			for _, r := range res.Log.Records() {
				want := "chaosA"
				if r.Attempt%2 == 0 {
					want = "chaosB"
				}
				if r.Site != want {
					t.Errorf("job %s attempt %d ran at %s, want %s", r.JobID, r.Attempt, r.Site, want)
				}
			}

			// Full-run determinism: a second run yields the identical
			// result, record for record.
			res2, _ := run()
			if !reflect.DeepEqual(res.RescueWorkflow(), res2.RescueWorkflow()) {
				t.Errorf("rescue list differs across identical runs")
			}
			if res.Makespan != res2.Makespan || res.Retries != res2.Retries ||
				res.Failovers != res2.Failovers || res.Evictions != res2.Evictions {
				t.Errorf("summary differs across identical runs: %+v vs %+v", res, res2)
			}
			if !reflect.DeepEqual(res.Log.Records(), res2.Log.Records()) {
				t.Errorf("kickstart logs differ across identical runs")
			}
		})
	}
}
