package engine

import (
	"fmt"
	"testing"

	"pegflow/internal/dax"
	"pegflow/internal/planner"
)

// nullExecutor completes every submission instantly with no kickstart
// record and, after warm-up, no allocation: the event queue's backing
// array is reused across runs via reset.
type nullExecutor struct {
	queue []Event
	head  int
	now   float64
}

func (e *nullExecutor) reset() {
	e.queue = e.queue[:0]
	e.head = 0
	e.now = 0
}

func (e *nullExecutor) Submit(job *planner.Job, attempt int) {
	e.now++
	e.queue = append(e.queue, Event{JobID: job.ID, Type: EventFinished, Time: e.now})
}

func (e *nullExecutor) Next() Event {
	ev := e.queue[e.head]
	e.head++
	return ev
}

func (e *nullExecutor) Now() float64 { return e.now }

// wideChainPlan builds a plan of `width` independent two-job chains —
// enough jobs that any per-dispatch allocation would dominate the
// measurement.
func wideChainPlan(t testing.TB, width int) *planner.Plan {
	t.Helper()
	w := dax.New("alloc-fixture")
	for i := 0; i < width; i++ {
		a, b := fmt.Sprintf("a%04d", i), fmt.Sprintf("b%04d", i)
		w.NewJob(a, "t")
		w.NewJob(b, "t")
		if err := w.AddDependency(a, b); err != nil {
			t.Fatal(err)
		}
	}
	plan := &planner.Plan{Graph: w, Info: map[string]*planner.Job{}, Site: "s"}
	for _, j := range w.Jobs() {
		plan.Info[j.ID] = &planner.Job{ID: j.ID, Transformation: "t", Site: "s"}
	}
	return plan
}

// TestAllocsEngineDispatch is the allocation regression gate for the
// dispatch loop (run by CI as `go test -run 'TestAllocs'`): with per-job
// state in index-addressed slices, a whole engine run costs a bounded
// handful of allocations — amortized slice growth plus the Result — not
// several map insertions per job as the string-keyed version did.
func TestAllocsEngineDispatch(t *testing.T) {
	const width = 256 // 512 jobs
	plan := wideChainPlan(t, width)
	ex := &nullExecutor{}
	if _, err := Run(plan, ex, Options{}); err != nil { // warm plan index + queue capacity
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		ex.reset()
		if _, err := Run(plan, ex, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	// Budget: fixed run-level structures with headroom; ~0.1 allocs/job.
	const budget = 56
	if allocs > budget {
		t.Errorf("engine.Run(512 jobs) allocates %.0f/run, budget %d (%.3f/job)",
			allocs, budget, allocs/float64(2*width))
	}
}
