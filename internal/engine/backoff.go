package engine

import (
	"pegflow/internal/planner"
	"pegflow/internal/sim/rng"
)

// BackoffPolicy returns the delay, in seconds, to wait before
// re-submitting a job whose given attempt number just failed. A nil
// policy (or a zero return) retries immediately — the engine's historic
// behavior.
type BackoffPolicy func(attempt int) float64

// DelayedSubmitter is the optional executor capability the engine uses
// to apply backoff delays: SubmitAfter schedules the attempt after delay
// seconds of executor time. Simulated executors implement it on the
// virtual clock; executors without it (e.g. the local wall-clock one)
// fall back to immediate submission and backoff is recorded but not
// waited out.
type DelayedSubmitter interface {
	SubmitAfter(job *planner.Job, attempt int, delay float64)
}

// ExpBackoff returns an exponential-backoff-with-full-jitter policy: the
// k-th retry draws uniform(0, min(cap, base*2^(k-1))) from the stream.
// A non-positive cap leaves the window uncapped. The stream makes the
// jitter deterministic for a fixed seed; callers must dedicate a stream
// per engine run (draws happen in event order).
func ExpBackoff(base, cap float64, s *rng.Stream) BackoffPolicy {
	return func(attempt int) float64 {
		w := base
		for i := 1; i < attempt; i++ {
			w *= 2
			if cap > 0 && w >= cap {
				w = cap
				break
			}
		}
		if cap > 0 && w > cap {
			w = cap
		}
		return s.Uniform(0, w)
	}
}
