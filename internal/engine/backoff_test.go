package engine

import (
	"testing"

	"pegflow/internal/dax"
	"pegflow/internal/planner"
	"pegflow/internal/sim/rng"
)

// delayingExecutor wraps fakeExecutor with the DelayedSubmitter
// capability, recording every backoff delay and applying it to the
// fake clock.
type delayingExecutor struct {
	*fakeExecutor
	delays []float64
}

func (d *delayingExecutor) SubmitAfter(job *planner.Job, attempt int, delay float64) {
	d.delays = append(d.delays, delay)
	d.now += delay
	d.Submit(job, attempt)
}

func singleJobPlan(t *testing.T) *planner.Plan {
	t.Helper()
	w := dax.New("one")
	w.NewJob("J", "t").SetProfile("pegasus", "runtime", "10")
	return makePlan(t, w)
}

func TestExpBackoffWindowsAndCap(t *testing.T) {
	s := rng.New(7).Derive("backoff")
	policy := ExpBackoff(10, 40, s)
	windows := []float64{10, 20, 40, 40, 40} // base*2^(k-1), capped at 40
	for attempt := 1; attempt <= len(windows); attempt++ {
		for i := 0; i < 200; i++ {
			d := policy(attempt)
			if d < 0 || d >= windows[attempt-1] {
				t.Fatalf("attempt %d: delay %v outside [0, %v)", attempt, d, windows[attempt-1])
			}
		}
	}
	// Uncapped policy keeps doubling.
	free := ExpBackoff(1, 0, rng.New(7))
	seenBig := false
	for i := 0; i < 100; i++ {
		if free(8) > 64 {
			seenBig = true
		}
	}
	if !seenBig {
		t.Error("uncapped attempt-8 window never exceeded 64 (should reach 128)")
	}
}

func TestExpBackoffDeterministic(t *testing.T) {
	draw := func() []float64 {
		p := ExpBackoff(5, 0, rng.New(42).Derive("backoff"))
		out := make([]float64, 6)
		for i := range out {
			out[i] = p(i + 1)
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestBackoffDelaysRetriesThroughDelayedSubmitter(t *testing.T) {
	p := singleJobPlan(t)
	ex := &delayingExecutor{fakeExecutor: newFakeExecutor()}
	ex.failures["J"] = 2
	res, err := Run(p, ex, Options{
		RetryLimit: 3,
		Backoff:    ExpBackoff(10, 0, rng.New(1).Derive("backoff")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("run failed: %+v", res.PermanentlyFailed)
	}
	if res.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", res.Retries)
	}
	if res.Backoffs != 2 || len(ex.delays) != 2 {
		t.Fatalf("Backoffs = %d, executor saw %d delays; want 2 and 2",
			res.Backoffs, len(ex.delays))
	}
	sum := 0.0
	for _, d := range ex.delays {
		sum += d
	}
	if res.BackoffSeconds != sum {
		t.Errorf("BackoffSeconds = %v, want %v (sum of applied delays)",
			res.BackoffSeconds, sum)
	}
	if res.BackoffSeconds <= 0 {
		t.Error("BackoffSeconds = 0; jitter draws of a 10 s base should be positive")
	}
}

func TestBackoffFallsBackWithoutDelayedSubmitter(t *testing.T) {
	// The plain fake executor has no SubmitAfter: retries must still run
	// (immediately) and the accounting must still record the drawn delays.
	p := singleJobPlan(t)
	ex := newFakeExecutor()
	ex.failures["J"] = 1
	res, err := Run(p, ex, Options{
		RetryLimit: 2,
		Backoff:    ExpBackoff(10, 0, rng.New(1).Derive("backoff")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success || res.Retries != 1 {
		t.Fatalf("success=%v retries=%d, want success with 1 retry", res.Success, res.Retries)
	}
	if res.Backoffs != 1 || res.BackoffSeconds <= 0 {
		t.Errorf("Backoffs=%d BackoffSeconds=%v, want accounted backoff", res.Backoffs, res.BackoffSeconds)
	}
}

func TestBackoffComposesWithFailover(t *testing.T) {
	// A retry policy that re-targets plus a backoff policy: the retry must
	// both count as a failover and be delayed.
	p := singleJobPlan(t)
	ex := &delayingExecutor{fakeExecutor: newFakeExecutor()}
	ex.failures["J"] = 1
	ex.evict["J"] = true
	retargeted := 0
	res, err := Run(p, ex, Options{
		RetryLimit: 2,
		Retry: func(job *planner.Job, attempt int, lastSite string, evicted bool) *planner.Job {
			retargeted++
			nj := *job
			nj.Site = "elsewhere"
			return &nj
		},
		Backoff: ExpBackoff(10, 0, rng.New(3).Derive("backoff")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success || retargeted != 1 {
		t.Fatalf("success=%v retargeted=%d", res.Success, retargeted)
	}
	if res.Failovers != 1 || res.Backoffs != 1 {
		t.Errorf("Failovers=%d Backoffs=%d, want 1 and 1", res.Failovers, res.Backoffs)
	}
	if len(ex.delays) != 1 || ex.delays[0] != res.BackoffSeconds {
		t.Errorf("delays=%v BackoffSeconds=%v, want one applied delay", ex.delays, res.BackoffSeconds)
	}
}
