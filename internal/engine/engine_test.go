package engine

import (
	"fmt"
	"sync"
	"testing"

	"pegflow/internal/catalog"
	"pegflow/internal/dax"
	"pegflow/internal/kickstart"
	"pegflow/internal/planner"
)

// fakeExecutor is a deterministic in-memory executor: each submitted job
// finishes instantly in submission order, with scripted failures.
type fakeExecutor struct {
	queue []Event
	now   float64
	// failures maps jobID → number of initial attempts that fail.
	failures map[string]int
	// evict marks failures reported as evictions instead.
	evict map[string]bool
	seen  map[string]int
	// submitted records submission order.
	submitted []string
	// concurrent tracks the high-water mark of in-flight jobs.
	inflight, maxInflight int
}

func newFakeExecutor() *fakeExecutor {
	return &fakeExecutor{failures: map[string]int{}, evict: map[string]bool{}, seen: map[string]int{}}
}

func (f *fakeExecutor) Now() float64 { return f.now }

func (f *fakeExecutor) Submit(job *planner.Job, attempt int) {
	f.submitted = append(f.submitted, job.ID)
	f.seen[job.ID]++
	f.inflight++
	if f.inflight > f.maxInflight {
		f.maxInflight = f.inflight
	}
	start := f.now
	end := start + 1
	rec := &kickstart.Record{
		JobID: job.ID, Transformation: job.Transformation, Site: job.Site,
		Attempt: attempt, SubmitTime: start, SetupStart: start, ExecStart: start, EndTime: end,
		Status: kickstart.StatusSuccess,
	}
	ev := Event{JobID: job.ID, Type: EventFinished, Time: end, Record: rec}
	if f.seen[job.ID] <= f.failures[job.ID] {
		if f.evict[job.ID] {
			ev.Type = EventEvicted
			rec.Status = kickstart.StatusEvicted
		} else {
			ev.Type = EventFailed
			rec.Status = kickstart.StatusFailed
		}
	}
	f.queue = append(f.queue, ev)
}

func (f *fakeExecutor) Next() Event {
	ev := f.queue[0]
	f.queue = f.queue[1:]
	f.now = ev.Time
	f.inflight--
	return ev
}

func diamondPlan(t *testing.T) *planner.Plan {
	t.Helper()
	w := dax.New("diamond")
	w.NewJob("A", "t").SetProfile("pegasus", "runtime", "10")
	w.NewJob("B", "t").SetProfile("pegasus", "runtime", "10")
	w.NewJob("C", "t").SetProfile("pegasus", "runtime", "10")
	w.NewJob("D", "t").SetProfile("pegasus", "runtime", "10")
	for _, e := range [][2]string{{"A", "B"}, {"A", "C"}, {"B", "D"}, {"C", "D"}} {
		if err := w.AddDependency(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return makePlan(t, w)
}

func makePlan(t *testing.T, w *dax.Workflow) *planner.Plan {
	t.Helper()
	sc := catalog.NewSiteCatalog()
	if err := sc.Add(&catalog.Site{Name: "test", Slots: 8, SpeedFactor: 1, SharedSoftware: true}); err != nil {
		t.Fatal(err)
	}
	tc := catalog.NewTransformationCatalog()
	seen := map[string]bool{}
	for _, j := range w.Jobs() {
		if seen[j.Transformation] {
			continue
		}
		seen[j.Transformation] = true
		if err := tc.Add(&catalog.Transformation{Name: j.Transformation, Site: "test", Installed: true}); err != nil {
			t.Fatal(err)
		}
	}
	p, err := planner.New(w, planner.Catalogs{
		Sites: sc, Transformations: tc, Replicas: catalog.NewReplicaCatalog(),
	}, planner.Options{Site: "test"})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunHappyPath(t *testing.T) {
	p := diamondPlan(t)
	ex := newFakeExecutor()
	res, err := Run(p, ex, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("Success = false: %+v", res)
	}
	if len(res.Completed) != 4 || len(res.Unfinished) != 0 {
		t.Errorf("Completed=%v Unfinished=%v", res.Completed, res.Unfinished)
	}
	if res.Log.Len() != 4 {
		t.Errorf("log has %d records, want 4", res.Log.Len())
	}
	// A must be submitted before B and C, D last.
	if ex.submitted[0] != "A" || ex.submitted[3] != "D" {
		t.Errorf("submission order = %v", ex.submitted)
	}
}

func TestRunDependencyOrderNeverViolated(t *testing.T) {
	w := dax.New("chain")
	prev := ""
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("J%02d", i)
		w.NewJob(id, "t")
		if prev != "" {
			if err := w.AddDependency(prev, id); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	p := makePlan(t, w)
	ex := newFakeExecutor()
	res, err := Run(p, ex, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("chain did not complete")
	}
	for i := 1; i < len(ex.submitted); i++ {
		if ex.submitted[i] <= ex.submitted[i-1] {
			t.Fatalf("chain submitted out of order: %v", ex.submitted)
		}
	}
}

func TestRetrySucceedsWithinLimit(t *testing.T) {
	p := diamondPlan(t)
	ex := newFakeExecutor()
	ex.failures["B"] = 2
	res, err := Run(p, ex, Options{RetryLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("workflow failed despite retries: %+v", res)
	}
	if res.Retries != 2 {
		t.Errorf("Retries = %d, want 2", res.Retries)
	}
	if ex.seen["B"] != 3 {
		t.Errorf("B attempted %d times, want 3", ex.seen["B"])
	}
	if got := len(res.Log.Failures()); got != 2 {
		t.Errorf("failure records = %d, want 2", got)
	}
}

func TestRetryExhaustionSkipsDescendants(t *testing.T) {
	p := diamondPlan(t)
	ex := newFakeExecutor()
	ex.failures["B"] = 3
	res, err := Run(p, ex, Options{RetryLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Success {
		t.Fatal("Success despite permanent failure")
	}
	if len(res.PermanentlyFailed) != 1 || res.PermanentlyFailed[0] != "B" {
		t.Errorf("PermanentlyFailed = %v", res.PermanentlyFailed)
	}
	// D depends on B, so it must be unfinished; C completes.
	rescue := res.RescueWorkflow()
	if len(rescue) != 2 || rescue[0] != "B" || rescue[1] != "D" {
		t.Errorf("rescue = %v, want [B D]", rescue)
	}
	if ex.seen["C"] != 1 {
		t.Errorf("independent branch C attempted %d times", ex.seen["C"])
	}
	if ex.seen["D"] != 0 {
		t.Errorf("descendant D was submitted despite failed parent")
	}
}

func TestEvictionCountsAndRetries(t *testing.T) {
	p := diamondPlan(t)
	ex := newFakeExecutor()
	ex.failures["C"] = 1
	ex.evict["C"] = true
	res, err := Run(p, ex, Options{RetryLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("workflow failed")
	}
	if res.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", res.Evictions)
	}
	if res.Retries != 1 {
		t.Errorf("Retries = %d, want 1", res.Retries)
	}
}

func TestMaxActiveThrottle(t *testing.T) {
	w := dax.New("wide")
	for i := 0; i < 30; i++ {
		w.NewJob(fmt.Sprintf("J%02d", i), "t")
	}
	p := makePlan(t, w)
	ex := newFakeExecutor()
	res, err := Run(p, ex, Options{MaxActive: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("workflow failed")
	}
	if ex.maxInflight > 3 {
		t.Errorf("maxInflight = %d, want ≤ 3", ex.maxInflight)
	}
}

func TestPriorityOrdersReadyJobs(t *testing.T) {
	w := dax.New("prio")
	w.NewJob("low", "t").Priority = 1
	w.NewJob("high", "t").Priority = 10
	w.NewJob("mid", "t").Priority = 5
	p := makePlan(t, w)
	ex := newFakeExecutor()
	if _, err := Run(p, ex, Options{MaxActive: 1}); err != nil {
		t.Fatal(err)
	}
	want := []string{"high", "mid", "low"}
	for i, id := range want {
		if ex.submitted[i] != id {
			t.Fatalf("submission order = %v, want %v", ex.submitted, want)
		}
	}
}

func TestMakespanIsLastEventTime(t *testing.T) {
	p := diamondPlan(t)
	ex := newFakeExecutor()
	res, err := Run(p, ex, Options{MaxActive: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 4 jobs × 1 s each, sequential under the fake's clock.
	if res.Makespan != 4 {
		t.Errorf("Makespan = %v, want 4", res.Makespan)
	}
}

func TestRunRejectsCyclicPlan(t *testing.T) {
	p := diamondPlan(t)
	// Corrupt the graph with a cycle.
	if err := p.Graph.AddDependency("D", "A"); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, newFakeExecutor(), Options{}); err == nil {
		t.Error("cyclic plan accepted")
	}
}

// --- LocalExecutor tests ---

func TestLocalExecutorRunsRealFunctions(t *testing.T) {
	var mu sync.Mutex
	ran := map[string]int{}
	reg := Registry{
		"t": func(ctx *TaskContext) error {
			mu.Lock()
			defer mu.Unlock()
			ran[ctx.Job.ID]++
			return nil
		},
	}
	p := diamondPlan(t)
	ex := NewLocalExecutor(reg, t.TempDir(), 4)
	res, err := Run(p, ex, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("run failed: %+v", res)
	}
	for _, id := range []string{"A", "B", "C", "D"} {
		if ran[id] != 1 {
			t.Errorf("job %s ran %d times", id, ran[id])
		}
	}
	for _, r := range res.Log.Records() {
		if err := r.Validate(); err != nil {
			t.Errorf("invalid record: %v", err)
		}
		if r.Node != "local" {
			t.Errorf("node = %q", r.Node)
		}
	}
}

func TestLocalExecutorFailureAndRetry(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	reg := Registry{
		"t": func(ctx *TaskContext) error {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if calls == 1 {
				return fmt.Errorf("transient error")
			}
			return nil
		},
	}
	w := dax.New("single")
	w.NewJob("only", "t")
	p := makePlan(t, w)
	ex := NewLocalExecutor(reg, t.TempDir(), 1)
	res, err := Run(p, ex, Options{RetryLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success || res.Retries != 1 {
		t.Fatalf("Success=%v Retries=%d", res.Success, res.Retries)
	}
	fails := res.Log.Failures()
	if len(fails) != 1 || fails[0].ExitMessage != "transient error" {
		t.Errorf("failure records = %+v", fails)
	}
}

func TestLocalExecutorUnregisteredTransformationFailsJob(t *testing.T) {
	w := dax.New("single")
	w.NewJob("only", "mystery")
	p := makePlan(t, w)
	ex := NewLocalExecutor(Registry{}, t.TempDir(), 1)
	res, err := Run(p, ex, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Success {
		t.Error("unregistered transformation succeeded")
	}
	if len(res.PermanentlyFailed) != 1 {
		t.Errorf("PermanentlyFailed = %v", res.PermanentlyFailed)
	}
}

func TestLocalExecutorPanicBecomesFailure(t *testing.T) {
	reg := Registry{
		"t": func(ctx *TaskContext) error { panic("task bug") },
	}
	w := dax.New("single")
	w.NewJob("only", "t")
	p := makePlan(t, w)
	ex := NewLocalExecutor(reg, t.TempDir(), 1)
	res, err := Run(p, ex, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Success {
		t.Error("panicking task reported success")
	}
	fails := res.Log.Failures()
	if len(fails) != 1 || fails[0].ExitMessage == "" {
		t.Errorf("failure detail lost: %+v", fails)
	}
}

func TestLocalExecutorParallelismBound(t *testing.T) {
	var mu sync.Mutex
	cur, max := 0, 0
	reg := Registry{
		"t": func(ctx *TaskContext) error {
			mu.Lock()
			cur++
			if cur > max {
				max = cur
			}
			mu.Unlock()
			// Hold the slot briefly so overlap is observable.
			for i := 0; i < 1000; i++ {
				_ = i
			}
			mu.Lock()
			cur--
			mu.Unlock()
			return nil
		},
	}
	w := dax.New("wide")
	for i := 0; i < 16; i++ {
		w.NewJob(fmt.Sprintf("J%02d", i), "t")
	}
	p := makePlan(t, w)
	ex := NewLocalExecutor(reg, t.TempDir(), 2)
	if _, err := Run(p, ex, Options{}); err != nil {
		t.Fatal(err)
	}
	if max > 2 {
		t.Errorf("observed %d concurrent tasks, want ≤ 2", max)
	}
}
