// Package engine implements a DAGMan-style meta-scheduler: it releases the
// jobs of an executable plan to an Executor in dependency order, throttles
// in-flight work, retries failed attempts, and produces a rescue workflow
// for anything left undone — mirroring Condor DAGMan as used by Pegasus.
package engine

import (
	"container/heap"
	"fmt"
	"sort"

	"pegflow/internal/kickstart"
	"pegflow/internal/planner"
)

// EventType classifies executor events.
type EventType int

const (
	// EventFinished reports a successful attempt.
	EventFinished EventType = iota
	// EventFailed reports an attempt that ran and failed.
	EventFailed
	// EventEvicted reports an attempt preempted by the resource owner.
	EventEvicted
)

// String returns the event type name.
func (t EventType) String() string {
	switch t {
	case EventFinished:
		return "finished"
	case EventFailed:
		return "failed"
	case EventEvicted:
		return "evicted"
	default:
		return fmt.Sprintf("event(%d)", int(t))
	}
}

// Event is one terminal executor notification for a job attempt.
type Event struct {
	// JobID names the planned job.
	JobID string
	// Type is the attempt outcome.
	Type EventType
	// Time is the event time in seconds of workflow-relative time.
	Time float64
	// Record is the kickstart record of the attempt. It may be nil when
	// Members carries the attempt's records instead.
	Record *kickstart.Record
	// Members carries the per-task kickstart records of a clustered
	// (composite) job's attempt — one per payload task, in on-node
	// execution order. The engine appends them to the log after Record,
	// so per-task statistics stay comparable with unclustered runs.
	Members []*kickstart.Record
}

// Executor runs planned jobs. Submit must not block; Next blocks until an
// event is available and may only be called while at least one submitted
// job is unfinished. Now reports workflow-relative time in seconds.
type Executor interface {
	Submit(job *planner.Job, attempt int)
	Next() Event
	Now() float64
}

// RetryPolicy decides where a failing job's next attempt runs. It receives
// the job as last submitted, the attempt number that just failed, the site
// of the failed attempt and whether it was evicted (vs. failed). Returning
// nil retries the job unchanged (same-site retry, the DAGMan default);
// returning a job re-targets the retry — planner.Failover re-resolves the
// job onto a sibling site of a multi-site plan. The returned job must keep
// the original ID: it is the same DAG node, re-bound.
type RetryPolicy func(job *planner.Job, attempt int, lastSite string, evicted bool) *planner.Job

// Options tunes the meta-scheduler.
type Options struct {
	// RetryLimit is the number of additional attempts granted to a
	// failing job (Pegasus-style job retries). 0 disables retries.
	RetryLimit int
	// MaxActive caps jobs in flight (DAGMan's maxjobs throttle).
	// 0 means unlimited.
	MaxActive int
	// Retry, when set, is consulted before every retry and may re-target
	// the job (cross-site failover). Nil keeps same-site retries.
	Retry RetryPolicy
}

// Result summarizes one engine run.
type Result struct {
	// Success reports whether every job completed.
	Success bool
	// Makespan is the workflow wall time in seconds: the time of the
	// last event (Pegasus's "Workflow Wall Time" starts at first
	// submission, which the engine performs at time zero).
	Makespan float64
	// Log holds the kickstart record of every attempt.
	Log *kickstart.Log
	// Completed and Unfinished partition the plan's job IDs.
	Completed, Unfinished []string
	// PermanentlyFailed lists jobs that exhausted their retries.
	PermanentlyFailed []string
	// Retries counts re-submissions.
	Retries int
	// Evictions counts attempts ended by preemption.
	Evictions int
	// Failovers counts retries the retry policy re-targeted to a
	// different site (a subset of Retries).
	Failovers int
}

// RescueWorkflow returns the IDs that a rescue DAG would contain: all jobs
// not completed, in a deterministic order.
func (r *Result) RescueWorkflow() []string {
	out := append([]string(nil), r.Unfinished...)
	sort.Strings(out)
	return out
}

// readyQueue orders ready jobs by priority (higher first), breaking ties
// by submission sequence (FIFO).
type readyQueue struct {
	items []*readyItem
}

type readyItem struct {
	job *planner.Job
	seq int
}

func (q readyQueue) Len() int { return len(q.items) }
func (q readyQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.job.Priority != b.job.Priority {
		return a.job.Priority > b.job.Priority
	}
	return a.seq < b.seq
}
func (q readyQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *readyQueue) Push(x any)   { q.items = append(q.items, x.(*readyItem)) }
func (q *readyQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return it
}

// Run executes the plan on the executor.
func Run(plan *planner.Plan, ex Executor, opts Options) (*Result, error) {
	order, err := plan.Graph.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}

	indeg := make(map[string]int, len(order))
	for _, id := range order {
		indeg[id] = len(plan.Graph.Parents(id))
	}

	res := &Result{Log: &kickstart.Log{}}
	ready := &readyQueue{}
	seq := 0
	pushReady := func(id string) {
		heap.Push(ready, &readyItem{job: plan.Job(id), seq: seq})
		seq++
	}
	for _, id := range order {
		if indeg[id] == 0 {
			pushReady(id)
		}
	}

	attempts := make(map[string]int, len(order))
	done := make(map[string]bool, len(order))
	// resited tracks jobs the retry policy re-targeted, so later retries
	// start from the job as last submitted (the plan itself is never
	// mutated — it may be shared or reused).
	resited := make(map[string]*planner.Job)
	inflight := 0

	submit := func() {
		for ready.Len() > 0 && (opts.MaxActive == 0 || inflight < opts.MaxActive) {
			it := heap.Pop(ready).(*readyItem)
			attempts[it.job.ID]++
			ex.Submit(it.job, attempts[it.job.ID])
			inflight++
		}
	}

	submit()
	for inflight > 0 {
		ev := ex.Next()
		inflight--
		if ev.Record != nil {
			if err := res.Log.Append(ev.Record); err != nil {
				return nil, fmt.Errorf("engine: job %q: %w", ev.JobID, err)
			}
		}
		for _, r := range ev.Members {
			if err := res.Log.Append(r); err != nil {
				return nil, fmt.Errorf("engine: job %q member %q: %w", ev.JobID, r.JobID, err)
			}
		}
		if ev.Time > res.Makespan {
			res.Makespan = ev.Time
		}
		switch ev.Type {
		case EventFinished:
			done[ev.JobID] = true
			for _, child := range plan.Graph.Children(ev.JobID) {
				indeg[child]--
				if indeg[child] == 0 {
					pushReady(child)
				}
			}
		case EventFailed, EventEvicted:
			if ev.Type == EventEvicted {
				res.Evictions++
			}
			if attempts[ev.JobID] <= opts.RetryLimit {
				// Resubmit; the attempt counter increments on submit.
				res.Retries++
				job := plan.Job(ev.JobID)
				if cur := resited[ev.JobID]; cur != nil {
					job = cur
				}
				if opts.Retry != nil {
					lastSite := job.Site
					if ev.Record != nil && ev.Record.Site != "" {
						lastSite = ev.Record.Site
					}
					if nj := opts.Retry(job, attempts[ev.JobID], lastSite, ev.Type == EventEvicted); nj != nil {
						if nj.ID != job.ID {
							return nil, fmt.Errorf("engine: retry policy renamed job %q to %q", job.ID, nj.ID)
						}
						if nj.Site != job.Site {
							res.Failovers++
						}
						resited[ev.JobID] = nj
						job = nj
					}
				}
				heap.Push(ready, &readyItem{job: job, seq: seq})
				seq++
			} else {
				res.PermanentlyFailed = append(res.PermanentlyFailed, ev.JobID)
			}
		default:
			return nil, fmt.Errorf("engine: unknown event type %v for job %q", ev.Type, ev.JobID)
		}
		submit()
	}

	for _, id := range order {
		if done[id] {
			res.Completed = append(res.Completed, id)
		} else {
			res.Unfinished = append(res.Unfinished, id)
		}
	}
	res.Success = len(res.Unfinished) == 0
	sort.Strings(res.PermanentlyFailed)
	return res, nil
}
