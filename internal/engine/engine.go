package engine

import (
	"fmt"
	"sort"

	"pegflow/internal/kickstart"
	"pegflow/internal/planner"
)

// EventType classifies executor events.
type EventType int

const (
	// EventFinished reports a successful attempt.
	EventFinished EventType = iota
	// EventFailed reports an attempt that ran and failed.
	EventFailed
	// EventEvicted reports an attempt preempted by the resource owner.
	EventEvicted
)

// String returns the event type name.
func (t EventType) String() string {
	switch t {
	case EventFinished:
		return "finished"
	case EventFailed:
		return "failed"
	case EventEvicted:
		return "evicted"
	default:
		return fmt.Sprintf("event(%d)", int(t))
	}
}

// Event is one terminal executor notification for a job attempt.
type Event struct {
	// JobID names the planned job.
	JobID string
	// Type is the attempt outcome.
	Type EventType
	// Time is the event time in seconds of workflow-relative time.
	Time float64
	// Record is the kickstart record of the attempt. It may be nil when
	// Members carries the attempt's records instead.
	Record *kickstart.Record
	// Members carries the per-task kickstart records of a clustered
	// (composite) job's attempt — one per payload task, in on-node
	// execution order. The engine appends them to the log after Record,
	// so per-task statistics stay comparable with unclustered runs.
	Members []*kickstart.Record
}

// Executor runs planned jobs. Submit must not block; Next blocks until an
// event is available and may only be called while at least one submitted
// job is unfinished. Now reports workflow-relative time in seconds.
type Executor interface {
	Submit(job *planner.Job, attempt int)
	Next() Event
	Now() float64
}

// RetryPolicy decides where a failing job's next attempt runs. It receives
// the job as last submitted, the attempt number that just failed, the site
// of the failed attempt and whether it was evicted (vs. failed). Returning
// nil retries the job unchanged (same-site retry, the DAGMan default);
// returning a job re-targets the retry — planner.Failover re-resolves the
// job onto a sibling site of a multi-site plan. The returned job must keep
// the original ID: it is the same DAG node, re-bound.
type RetryPolicy func(job *planner.Job, attempt int, lastSite string, evicted bool) *planner.Job

// Options tunes the meta-scheduler.
type Options struct {
	// RetryLimit is the number of additional attempts granted to a
	// failing job (Pegasus-style job retries). 0 disables retries.
	RetryLimit int
	// MaxActive caps jobs in flight (DAGMan's maxjobs throttle).
	// 0 means unlimited.
	MaxActive int
	// Retry, when set, is consulted before every retry and may re-target
	// the job (cross-site failover). Nil keeps same-site retries.
	Retry RetryPolicy
	// Backoff, when set, delays every retry by the returned number of
	// seconds (of executor time). The delay applies after Retry has
	// re-targeted the job, so failover and backoff compose. It takes
	// effect through the executor's DelayedSubmitter capability; without
	// one the delay is accounted but the retry submits immediately.
	Backoff BackoffPolicy
	// Aggregate runs the result log in aggregation mode: records are
	// folded into fixed-size accumulators and sketches instead of
	// retained, and handed back to the executor through its
	// RecordRecycler capability — the memory-flat path for million-job
	// runs. Consumers that need raw records (timelines, log export)
	// must run exact.
	Aggregate bool
}

// RecordRecycler is an optional executor capability. In aggregation
// mode the engine folds each event's records without retaining them and
// returns the spent records here so the executor can reuse their arena
// slots. Recycle is only called between Next calls — never while the
// executor is advancing — and the record must not be read after it is
// recycled.
type RecordRecycler interface {
	Recycle(r *kickstart.Record)
}

// Result summarizes one engine run.
type Result struct {
	// Success reports whether every job completed.
	Success bool
	// Makespan is the workflow wall time in seconds: the time of the
	// last event (Pegasus's "Workflow Wall Time" starts at first
	// submission, which the engine performs at time zero).
	Makespan float64
	// Log holds the kickstart record of every attempt.
	Log *kickstart.Log
	// Completed and Unfinished partition the plan's job IDs.
	Completed, Unfinished []string
	// PermanentlyFailed lists jobs that exhausted their retries.
	PermanentlyFailed []string
	// Retries counts re-submissions.
	Retries int
	// Evictions counts attempts ended by preemption.
	Evictions int
	// Failovers counts retries the retry policy re-targeted to a
	// different site (a subset of Retries).
	Failovers int
	// Backoffs counts retries that were delayed by the backoff policy,
	// and BackoffSeconds sums those delays (executor-time seconds).
	Backoffs       int
	BackoffSeconds float64

	// rescue is the sorted rescue workflow, computed once at end-of-run
	// so RescueWorkflow is a copy, not a re-sort, per call.
	rescue []string
}

// RescueWorkflow returns the IDs that a rescue DAG would contain: all jobs
// not completed, in a deterministic order.
func (r *Result) RescueWorkflow() []string {
	if r.rescue == nil && len(r.Unfinished) > 0 {
		// Hand-assembled Result (tests): fall back to sorting here.
		out := append([]string(nil), r.Unfinished...)
		sort.Strings(out)
		return out
	}
	return append([]string(nil), r.rescue...)
}

// readyItem is one entry of the ready queue, stored by value.
type readyItem struct {
	job   *planner.Job
	pos   int32 // dense index position of the job
	seq   int32
	delay float64 // backoff before submission; 0 submits immediately
}

// readyQueue orders ready jobs by priority (higher first), breaking ties
// by submission sequence (FIFO). It is a hand-rolled binary heap of values
// — container/heap's interface would box every item through `any`,
// allocating on each push in the engine's hot loop.
//
// A by-value copy aliases the heap backing array; slabcopy flags it.
//
//pegflow:slab
type readyQueue struct {
	items []readyItem
	seq   int32
}

func (q *readyQueue) less(a, b readyItem) bool {
	if a.job.Priority != b.job.Priority {
		return a.job.Priority > b.job.Priority
	}
	return a.seq < b.seq
}

func (q *readyQueue) push(job *planner.Job, pos int32, delay float64) {
	q.items = append(q.items, readyItem{job: job, pos: pos, seq: q.seq, delay: delay})
	q.seq++
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(q.items[i], q.items[parent]) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *readyQueue) pop() readyItem {
	top := q.items[0]
	n := len(q.items) - 1
	q.items[0] = q.items[n]
	q.items[n] = readyItem{}
	q.items = q.items[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && q.less(q.items[right], q.items[left]) {
			smallest = right
		}
		if !q.less(q.items[smallest], q.items[i]) {
			break
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
	return top
}

// Run executes the plan on the executor.
//
// Per-job bookkeeping is index-addressed: the plan's dense Index interns
// job IDs to contiguous integers at plan time, so the dispatch loop runs
// on slices (indegree, attempts, completion) with a single map lookup per
// executor event instead of four string-map probes per dispatch.
func Run(plan *planner.Plan, ex Executor, opts Options) (*Result, error) {
	idx, err := plan.Indexed()
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	n := len(idx.Order)

	indeg := append([]int32(nil), idx.Indegree...)
	attempts := make([]int, n)
	done := make([]bool, n)
	// resited tracks jobs the retry policy re-targeted, so later retries
	// start from the job as last submitted (the plan itself is never
	// mutated — it may be shared or reused).
	var resited []*planner.Job

	res := &Result{Log: &kickstart.Log{}}
	var recycler RecordRecycler
	if opts.Aggregate {
		res.Log.SetAggregate()
		recycler, _ = ex.(RecordRecycler)
	}
	ready := &readyQueue{}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready.push(plan.JobAt(int32(i)), int32(i), 0)
		}
	}

	delayed, _ := ex.(DelayedSubmitter)
	inflight := 0
	submit := func() {
		for len(ready.items) > 0 && (opts.MaxActive == 0 || inflight < opts.MaxActive) {
			it := ready.pop()
			attempts[it.pos]++
			if it.delay > 0 && delayed != nil {
				delayed.SubmitAfter(it.job, attempts[it.pos], it.delay)
			} else {
				ex.Submit(it.job, attempts[it.pos])
			}
			inflight++
		}
	}

	submit()
	for inflight > 0 {
		ev := ex.Next()
		inflight--
		if ev.Record != nil {
			if err := res.Log.Append(ev.Record); err != nil {
				return nil, fmt.Errorf("engine: job %q: %w", ev.JobID, err)
			}
		}
		for _, r := range ev.Members {
			if err := res.Log.Append(r); err != nil {
				return nil, fmt.Errorf("engine: job %q member %q: %w", ev.JobID, r.JobID, err)
			}
		}
		if ev.Time > res.Makespan {
			res.Makespan = ev.Time
		}
		pos, ok := idx.ByID[ev.JobID]
		if !ok {
			return nil, fmt.Errorf("engine: executor reported unknown job %q", ev.JobID)
		}
		switch ev.Type {
		case EventFinished:
			done[pos] = true
			for _, child := range idx.Children[pos] {
				indeg[child]--
				if indeg[child] == 0 {
					ready.push(plan.JobAt(child), child, 0)
				}
			}
		case EventFailed, EventEvicted:
			if ev.Type == EventEvicted {
				res.Evictions++
			}
			if attempts[pos] <= opts.RetryLimit {
				// Resubmit; the attempt counter increments on submit.
				res.Retries++
				job := plan.JobAt(pos)
				if resited != nil && resited[pos] != nil {
					job = resited[pos]
				}
				if opts.Retry != nil {
					lastSite := job.Site
					if ev.Record != nil && ev.Record.Site != "" {
						lastSite = ev.Record.Site
					}
					if nj := opts.Retry(job, attempts[pos], lastSite, ev.Type == EventEvicted); nj != nil {
						if nj.ID != job.ID {
							return nil, fmt.Errorf("engine: retry policy renamed job %q to %q", job.ID, nj.ID)
						}
						if nj.Site != job.Site {
							res.Failovers++
						}
						if resited == nil {
							resited = make([]*planner.Job, n)
						}
						resited[pos] = nj
						job = nj
					}
				}
				var delay float64
				if opts.Backoff != nil {
					// Drawn here, in event order, so the jitter sequence is
					// deterministic for a given seed regardless of executor.
					if delay = opts.Backoff(attempts[pos]); delay > 0 {
						res.Backoffs++
						res.BackoffSeconds += delay
					}
				}
				ready.push(job, pos, delay)
			} else {
				res.PermanentlyFailed = append(res.PermanentlyFailed, ev.JobID)
			}
		default:
			return nil, fmt.Errorf("engine: unknown event type %v for job %q", ev.Type, ev.JobID)
		}
		if recycler != nil {
			// The records were folded into the aggregating log above and
			// the retry branch has taken what it needs (ev.Record.Site);
			// hand the slots back to the executor's arena.
			if ev.Record != nil {
				recycler.Recycle(ev.Record)
			}
			for _, r := range ev.Members {
				recycler.Recycle(r)
			}
		}
		submit()
	}

	for i, id := range idx.Order {
		if done[i] {
			res.Completed = append(res.Completed, id)
		} else {
			res.Unfinished = append(res.Unfinished, id)
		}
	}
	res.Success = len(res.Unfinished) == 0
	sort.Strings(res.PermanentlyFailed)
	res.rescue = append([]string(nil), res.Unfinished...)
	sort.Strings(res.rescue)
	return res, nil
}
