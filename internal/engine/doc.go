// Package engine implements a DAGMan-style meta-scheduler: it releases the
// jobs of an executable plan to an Executor in dependency order, throttles
// in-flight work, retries failed attempts, and produces a rescue workflow
// for anything left undone — mirroring Condor DAGMan as used by Pegasus.
package engine
