package engine

import (
	"bytes"
	"testing"

	"pegflow/internal/dax"
)

func TestRescueDAXContainsOnlyUnfinished(t *testing.T) {
	p := diamondPlan(t)
	ex := newFakeExecutor()
	ex.failures["B"] = 10
	res, err := Run(p, ex, Options{RetryLimit: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Success {
		t.Fatal("expected failure")
	}
	rescue, err := RescueDAX(p, res)
	if err != nil {
		t.Fatal(err)
	}
	// B failed, D depends on B: rescue = {B, D}; A and C completed.
	if rescue.Len() != 2 {
		t.Fatalf("rescue has %d jobs: %v", rescue.Len(), rescue.Roots())
	}
	if rescue.Job("B") == nil || rescue.Job("D") == nil {
		t.Error("rescue missing B or D")
	}
	if rescue.Job("A") != nil || rescue.Job("C") != nil {
		t.Error("rescue contains completed jobs")
	}
	// D's dependency on completed C is dropped; on unfinished B kept.
	parents := rescue.Parents("D")
	if len(parents) != 1 || parents[0] != "B" {
		t.Errorf("rescue Parents(D) = %v, want [B]", parents)
	}
	if err := rescue.Validate(); err != nil {
		t.Errorf("rescue workflow invalid: %v", err)
	}
}

func TestRescueDAXRoundTripsThroughXML(t *testing.T) {
	p := diamondPlan(t)
	ex := newFakeExecutor()
	ex.failures["A"] = 10 // root fails: everything unfinished
	res, err := Run(p, ex, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRescue(&buf, p, res); err != nil {
		t.Fatal(err)
	}
	got, err := dax.ReadXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 {
		t.Errorf("rescue of failed root has %d jobs, want all 4", got.Len())
	}
	if got.Edges() != p.Graph.Edges() {
		t.Errorf("edges = %d, want %d", got.Edges(), p.Graph.Edges())
	}
}

func TestRescueDAXRefusesSuccess(t *testing.T) {
	p := diamondPlan(t)
	res, err := Run(p, newFakeExecutor(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RescueDAX(p, res); err == nil {
		t.Error("rescue built for successful run")
	}
}

func TestRescueRunnableOnFreshExecutor(t *testing.T) {
	// The rescue sub-plan must itself execute to completion.
	p := diamondPlan(t)
	ex := newFakeExecutor()
	ex.failures["B"] = 10
	res, err := Run(p, ex, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rescue, err := RescueDAX(p, res)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild a plan view sharing Info of the original plan.
	sub := *p
	sub.Graph = rescue
	res2, err := Run(&sub, newFakeExecutor(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Success {
		t.Errorf("rescue run failed: %v", res2.Unfinished)
	}
	if len(res2.Completed) != 2 {
		t.Errorf("rescue completed %v", res2.Completed)
	}
}
