// Package server exposes the scenario engine as a long-running HTTP
// service — `pegflow serve`. Clients POST a scenario document and read
// back one NDJSON line per cell, streamed in deterministic grid order, so
// a slow consumer sees results as they complete while two clients posting
// the same document always read byte-identical bodies.
//
// Two independent throttles bound the service:
//
//   - a process-wide cell gate (Options.Workers tokens) that every cell
//     of every request must acquire, so N concurrent requests share one
//     bounded simulation pool instead of multiplying it;
//   - a request throttle (Options.MaxInFlight) that rejects work beyond
//     the cap with 429 rather than queueing unboundedly.
//
// Because all requests run in one process, they share the core caches:
// the first request for a scenario shape builds the master plans and
// member DAXes, and every later request — from any client — clones warm
// masters and pays only simulation. GET /v1/healthz exposes the cache
// counters so operators can watch the warm-up.
package server
