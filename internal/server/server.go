package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"

	"pegflow/internal/core"
	"pegflow/internal/scenario"
)

// MaxScenarioBytes bounds a POSTed scenario document.
const MaxScenarioBytes = 1 << 20

// Options configures the service.
type Options struct {
	// Workers is the size of the process-wide cell pool shared by every
	// request; <= 0 means runtime.NumCPU().
	Workers int
	// MaxInFlight caps concurrently running scenario requests; further
	// POSTs get 429. 0 means 2×Workers.
	MaxInFlight int
}

// Server is the scenario HTTP service. Create one with New.
type Server struct {
	opts     Options
	mux      *http.ServeMux
	cellGate chan struct{}
	requests chan struct{}
}

// New builds the service and its routes.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.NumCPU()
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 2 * opts.Workers
	}
	s := &Server{
		opts:     opts,
		mux:      http.NewServeMux(),
		cellGate: make(chan struct{}, opts.Workers),
		requests: make(chan struct{}, opts.MaxInFlight),
	}
	s.mux.HandleFunc("POST /v1/scenarios/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/scenarios/check", s.handleCheck)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// readScenario reads, parses and compiles the request body.
func readScenario(w http.ResponseWriter, r *http.Request) (*scenario.Compiled, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxScenarioBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("reading request: %v", err))
		return nil, false
	}
	if len(body) > MaxScenarioBytes {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("scenario document exceeds %d bytes", MaxScenarioBytes))
		return nil, false
	}
	doc, err := scenario.Parse("request", body)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return nil, false
	}
	c, err := scenario.Compile(doc)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return nil, false
	}
	return c, true
}

// handleRun streams NDJSON cell results for the POSTed scenario.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	select {
	case s.requests <- struct{}{}:
		defer func() { <-s.requests }()
	default:
		httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("%d scenario runs already in flight", s.opts.MaxInFlight))
		return
	}
	c, ok := readScenario(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Scenario-Fingerprint", c.Fingerprint)
	flusher, _ := w.(http.Flusher)
	_, err := c.Run(scenario.RunOptions{
		Workers: s.opts.Workers,
		Context: r.Context(),
		Gate:    s.gateCell,
		OnLine: func(line []byte) {
			w.Write(line)
			io.WriteString(w, "\n")
			if flusher != nil {
				flusher.Flush()
			}
		},
	})
	if err != nil {
		// The header line is already out; report the failure in-band as
		// the final NDJSON line.
		msg, _ := json.Marshal(map[string]string{"error": err.Error()})
		w.Write(msg)
		io.WriteString(w, "\n")
	}
}

// gateCell acquires a token from the process-wide cell pool.
func (s *Server) gateCell(run func()) {
	s.cellGate <- struct{}{}
	defer func() { <-s.cellGate }()
	run()
}

// CheckResponse is the body of POST /v1/scenarios/check.
type CheckResponse struct {
	Valid       bool   `json:"valid"`
	Scenario    string `json:"scenario,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Cells       int    `json:"cells,omitempty"`
	Error       string `json:"error,omitempty"`
}

// handleCheck validates and fingerprints a scenario without running it.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxScenarioBytes+1))
	if err != nil || len(body) > MaxScenarioBytes {
		httpError(w, http.StatusBadRequest, "unreadable or oversized scenario document")
		return
	}
	resp := CheckResponse{}
	if doc, perr := scenario.Parse("request", body); perr != nil {
		resp.Error = perr.Error()
	} else if c, cerr := scenario.Compile(doc); cerr != nil {
		resp.Error = cerr.Error()
	} else {
		resp.Valid = true
		resp.Scenario = doc.Name
		resp.Fingerprint = c.Fingerprint
		resp.Cells = len(c.Cells)
	}
	writeJSON(w, http.StatusOK, resp)
}

// HealthResponse is the body of GET /v1/healthz.
type HealthResponse struct {
	OK bool `json:"ok"`
	// Workers and MaxInFlight echo the service configuration.
	Workers     int `json:"workers"`
	MaxInFlight int `json:"max_inflight"`
	// Cache reports the process-wide plan/member-DAX cache counters; a
	// warm service shows retrievals growing while builds stay flat.
	Cache core.CacheStats `json:"cache"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		OK:          true,
		Workers:     s.opts.Workers,
		MaxInFlight: s.opts.MaxInFlight,
		Cache:       core.PlanCacheStats(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
