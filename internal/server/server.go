package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"pegflow/internal/core"
	"pegflow/internal/scenario"
	"pegflow/internal/server/resultcache"
)

// MaxScenarioBytes bounds a POSTed scenario document.
const MaxScenarioBytes = 1 << 20

// DefaultCacheBytes is the result-cache byte budget when Options leaves
// CacheBytes zero.
const DefaultCacheBytes = 64 << 20

// Options configures the service.
type Options struct {
	// Workers is the size of the process-wide cell pool shared by every
	// request; <= 0 means runtime.NumCPU().
	Workers int
	// MaxInFlight caps concurrently running scenario requests; further
	// POSTs get 429. 0 means 2×Workers.
	MaxInFlight int
	// CacheBytes bounds the content-addressed cell-result cache: 0 means
	// DefaultCacheBytes, negative disables the cache entirely.
	CacheBytes int64
	// RequestTimeout bounds one scenario run's wall time. It threads
	// through the run's context, so a timed-out request stops simulating
	// and its queued cells stop waiting for pool capacity; the stream ends
	// with an in-band error line. 0 means no limit.
	RequestTimeout time.Duration
}

// RetryAfterSeconds is the Retry-After hint on 503 responses while the
// server drains: by then this process is gone and its replacement (or the
// restarted service) should be accepting.
const RetryAfterSeconds = 5

// Server is the scenario HTTP service. Create one with New.
type Server struct {
	opts Options
	mux  *http.ServeMux
	// cellGate is the process-wide simulation semaphore (one token per
	// worker); requests is the in-flight admission semaphore. Both are
	// token pools: a send acquires a slot, a receive returns it, and
	// pairpath checks that no path leaks one.
	//pegflow:token
	cellGate chan struct{}
	//pegflow:token
	requests chan struct{}
	results  *resultcache.Cache
	aborted  atomic.Uint64 // NDJSON streams cut short by client disconnect
	// abortedCells counts cells whose simulation panicked: the run aborts
	// with a structured error line but the process keeps serving.
	abortedCells atomic.Uint64
	// inflight gauges admitted scenario runs; draining flips once the
	// process received a shutdown signal, after which new work gets 503
	// while admitted streams run to completion.
	inflight atomic.Int64
	draining atomic.Bool

	// Test seams (nil in production): hookGateWait fires when a cell is
	// about to wait for gate capacity, hookCellStart after it acquired
	// capacity and before it simulates.
	hookGateWait  func()
	hookCellStart func()
}

// New builds the service and its routes.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.NumCPU()
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 2 * opts.Workers
	}
	if opts.CacheBytes == 0 {
		opts.CacheBytes = DefaultCacheBytes
	}
	s := &Server{
		opts:     opts,
		mux:      http.NewServeMux(),
		cellGate: make(chan struct{}, opts.Workers),
		requests: make(chan struct{}, opts.MaxInFlight),
	}
	if opts.CacheBytes > 0 {
		s.results = resultcache.New(opts.CacheBytes)
	}
	s.mux.HandleFunc("POST /v1/scenarios/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/scenarios/check", s.handleCheck)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// StartDraining puts the server into graceful-shutdown mode: /v1/healthz
// reports draining and new scenario work is refused with 503 and a
// Retry-After hint, while already-admitted streams keep running. The
// caller then waits for in-flight requests (http.Server.Shutdown does)
// before exiting.
func (s *Server) StartDraining() { s.draining.Store(true) }

// refuseIfDraining writes the 503 that new work gets during drain.
func (s *Server) refuseIfDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", RetryAfterSeconds))
	s.httpError(w, http.StatusServiceUnavailable, "server is draining for shutdown")
	return true
}

// readScenario reads, parses and compiles the request body. The body is
// capped with http.MaxBytesReader, so an oversized upload is cut off at
// the transport (413, connection close) instead of being drained.
func (s *Server) readScenario(w http.ResponseWriter, r *http.Request) (*scenario.Compiled, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxScenarioBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("scenario document exceeds %d bytes", MaxScenarioBytes))
		} else {
			s.httpError(w, http.StatusBadRequest, fmt.Sprintf("reading request: %v", err))
		}
		return nil, false
	}
	doc, err := scenario.Parse("request", body)
	if err != nil {
		s.httpError(w, http.StatusUnprocessableEntity, err.Error())
		return nil, false
	}
	c, err := scenario.Compile(doc)
	if err != nil {
		s.httpError(w, http.StatusUnprocessableEntity, err.Error())
		return nil, false
	}
	return c, true
}

// errClientWrite marks OnLine failures: the client stopped reading, so
// the stream is aborted rather than reported in-band.
var errClientWrite = errors.New("client write failed")

// handleRun streams NDJSON cell results for the POSTed scenario.
//
// Lifecycle: the body is read and validated BEFORE an in-flight slot is
// taken, so slow or invalid uploads cannot pin 429 capacity that
// admitted runs need. Only a validated scenario competes for a slot.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.refuseIfDraining(w) {
		return
	}
	c, ok := s.readScenario(w, r)
	if !ok {
		return
	}
	select {
	case s.requests <- struct{}{}:
		s.inflight.Add(1)
		defer func() {
			s.inflight.Add(-1)
			<-s.requests
		}()
	default:
		s.httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("%d scenario runs already in flight", s.opts.MaxInFlight))
		return
	}
	ctx := r.Context()
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Scenario-Fingerprint", c.Fingerprint)
	flusher, _ := w.(http.Flusher)
	opts := scenario.RunOptions{
		Workers: s.opts.Workers,
		Context: ctx,
		Gate:    s.gateCell,
		OnLine: func(line []byte) error {
			if _, err := w.Write(line); err != nil {
				return fmt.Errorf("%w: %v", errClientWrite, err)
			}
			if _, err := io.WriteString(w, "\n"); err != nil {
				return fmt.Errorf("%w: %v", errClientWrite, err)
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		},
	}
	if s.results != nil {
		opts.Cache = s.results
	}
	_, err := c.Run(opts)
	if err != nil {
		if errors.Is(err, errClientWrite) || r.Context().Err() != nil {
			// The client is gone: nothing left to write to, and the run
			// stopped simulating for it. Count the cut stream. (A
			// RequestTimeout expiry is NOT this case — the client is still
			// reading, so the timeout is reported in-band below.)
			s.aborted.Add(1)
			return
		}
		// The header line is already out; report the failure in-band as
		// the final NDJSON line. A panicking cell additionally carries its
		// grid index so the client can pinpoint the poisoned cell.
		body := map[string]any{"error": err.Error()}
		var cp *scenario.CellPanicError
		if errors.As(err, &cp) {
			s.abortedCells.Add(1)
			body["cell"] = cp.Cell
			body["panic"] = true
		}
		msg, _ := json.Marshal(body)
		if _, werr := w.Write(msg); werr != nil {
			s.aborted.Add(1)
			return
		}
		io.WriteString(w, "\n")
	}
}

// gateCell acquires a token from the process-wide cell pool, or gives up
// when the request's context is canceled: a disconnected client's queued
// cells must not consume capacity that live requests are waiting for.
func (s *Server) gateCell(ctx context.Context, run func()) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.hookGateWait != nil {
		s.hookGateWait()
	}
	select {
	case s.cellGate <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-s.cellGate }()
	// The select above picks randomly when both channels are ready:
	// re-check so a canceled request never simulates on a token it raced
	// for.
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
	}
	if s.hookCellStart != nil {
		s.hookCellStart()
	}
	run()
	return nil
}

// CheckResponse is the body of POST /v1/scenarios/check.
type CheckResponse struct {
	Valid       bool   `json:"valid"`
	Scenario    string `json:"scenario,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Cells       int    `json:"cells,omitempty"`
	Error       string `json:"error,omitempty"`
}

// handleCheck validates and fingerprints a scenario without running it.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	if s.refuseIfDraining(w) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxScenarioBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("scenario document exceeds %d bytes", MaxScenarioBytes))
		} else {
			s.httpError(w, http.StatusBadRequest, "unreadable scenario document")
		}
		return
	}
	resp := CheckResponse{}
	if doc, perr := scenario.Parse("request", body); perr != nil {
		resp.Error = perr.Error()
	} else if c, cerr := scenario.Compile(doc); cerr != nil {
		resp.Error = cerr.Error()
	} else {
		resp.Valid = true
		resp.Scenario = doc.Name
		resp.Fingerprint = c.Fingerprint
		resp.Cells = len(c.Cells)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// HealthResponse is the body of GET /v1/healthz.
type HealthResponse struct {
	OK bool `json:"ok"`
	// Workers and MaxInFlight echo the service configuration.
	Workers     int `json:"workers"`
	MaxInFlight int `json:"max_inflight"`
	// Cache reports the process-wide plan/member-DAX cache counters; a
	// warm service shows retrievals growing while builds stay flat.
	Cache core.CacheStats `json:"cache"`
	// Results reports the content-addressed cell-result cache: hits
	// skipped planning AND simulation entirely. Absent when the cache is
	// disabled.
	Results *resultcache.Stats `json:"results,omitempty"`
	// AbortedStreams counts responses cut short because the client
	// disconnected before reading them — NDJSON streams abandoned
	// mid-run and JSON bodies that failed to write.
	AbortedStreams uint64 `json:"aborted_streams"`
	// AbortedCells counts cells whose simulation panicked; each aborted
	// its run with a structured error line while the process kept serving.
	AbortedCells uint64 `json:"aborted_cells"`
	// InFlight gauges currently admitted scenario runs.
	InFlight int64 `json:"inflight"`
	// Draining reports that the server is refusing new work (503) while
	// finishing admitted streams ahead of shutdown.
	Draining bool `json:"draining"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{
		OK:             true,
		Workers:        s.opts.Workers,
		MaxInFlight:    s.opts.MaxInFlight,
		Cache:          core.PlanCacheStats(),
		AbortedStreams: s.aborted.Load(),
		AbortedCells:   s.abortedCells.Load(),
		InFlight:       s.inflight.Load(),
		Draining:       s.draining.Load(),
	}
	if s.results != nil {
		st := s.results.Stats()
		resp.Results = &st
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// writeJSON writes a JSON response body. A write failure means the
// client hung up before reading its response; it is counted with the
// aborted streams instead of being silently dropped.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.aborted.Add(1)
	}
}

func (s *Server) httpError(w http.ResponseWriter, status int, msg string) {
	s.writeJSON(w, status, map[string]string{"error": msg})
}
