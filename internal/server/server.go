package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync/atomic"

	"pegflow/internal/core"
	"pegflow/internal/scenario"
	"pegflow/internal/server/resultcache"
)

// MaxScenarioBytes bounds a POSTed scenario document.
const MaxScenarioBytes = 1 << 20

// DefaultCacheBytes is the result-cache byte budget when Options leaves
// CacheBytes zero.
const DefaultCacheBytes = 64 << 20

// Options configures the service.
type Options struct {
	// Workers is the size of the process-wide cell pool shared by every
	// request; <= 0 means runtime.NumCPU().
	Workers int
	// MaxInFlight caps concurrently running scenario requests; further
	// POSTs get 429. 0 means 2×Workers.
	MaxInFlight int
	// CacheBytes bounds the content-addressed cell-result cache: 0 means
	// DefaultCacheBytes, negative disables the cache entirely.
	CacheBytes int64
}

// Server is the scenario HTTP service. Create one with New.
type Server struct {
	opts Options
	mux  *http.ServeMux
	// cellGate is the process-wide simulation semaphore (one token per
	// worker); requests is the in-flight admission semaphore. Both are
	// token pools: a send acquires a slot, a receive returns it, and
	// pairpath checks that no path leaks one.
	//pegflow:token
	cellGate chan struct{}
	//pegflow:token
	requests chan struct{}
	results  *resultcache.Cache
	aborted  atomic.Uint64 // NDJSON streams cut short by client disconnect

	// Test seams (nil in production): hookGateWait fires when a cell is
	// about to wait for gate capacity, hookCellStart after it acquired
	// capacity and before it simulates.
	hookGateWait  func()
	hookCellStart func()
}

// New builds the service and its routes.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.NumCPU()
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 2 * opts.Workers
	}
	if opts.CacheBytes == 0 {
		opts.CacheBytes = DefaultCacheBytes
	}
	s := &Server{
		opts:     opts,
		mux:      http.NewServeMux(),
		cellGate: make(chan struct{}, opts.Workers),
		requests: make(chan struct{}, opts.MaxInFlight),
	}
	if opts.CacheBytes > 0 {
		s.results = resultcache.New(opts.CacheBytes)
	}
	s.mux.HandleFunc("POST /v1/scenarios/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/scenarios/check", s.handleCheck)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// readScenario reads, parses and compiles the request body. The body is
// capped with http.MaxBytesReader, so an oversized upload is cut off at
// the transport (413, connection close) instead of being drained.
func (s *Server) readScenario(w http.ResponseWriter, r *http.Request) (*scenario.Compiled, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxScenarioBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("scenario document exceeds %d bytes", MaxScenarioBytes))
		} else {
			s.httpError(w, http.StatusBadRequest, fmt.Sprintf("reading request: %v", err))
		}
		return nil, false
	}
	doc, err := scenario.Parse("request", body)
	if err != nil {
		s.httpError(w, http.StatusUnprocessableEntity, err.Error())
		return nil, false
	}
	c, err := scenario.Compile(doc)
	if err != nil {
		s.httpError(w, http.StatusUnprocessableEntity, err.Error())
		return nil, false
	}
	return c, true
}

// errClientWrite marks OnLine failures: the client stopped reading, so
// the stream is aborted rather than reported in-band.
var errClientWrite = errors.New("client write failed")

// handleRun streams NDJSON cell results for the POSTed scenario.
//
// Lifecycle: the body is read and validated BEFORE an in-flight slot is
// taken, so slow or invalid uploads cannot pin 429 capacity that
// admitted runs need. Only a validated scenario competes for a slot.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	c, ok := s.readScenario(w, r)
	if !ok {
		return
	}
	select {
	case s.requests <- struct{}{}:
		defer func() { <-s.requests }()
	default:
		s.httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("%d scenario runs already in flight", s.opts.MaxInFlight))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Scenario-Fingerprint", c.Fingerprint)
	flusher, _ := w.(http.Flusher)
	opts := scenario.RunOptions{
		Workers: s.opts.Workers,
		Context: r.Context(),
		Gate:    s.gateCell,
		OnLine: func(line []byte) error {
			if _, err := w.Write(line); err != nil {
				return fmt.Errorf("%w: %v", errClientWrite, err)
			}
			if _, err := io.WriteString(w, "\n"); err != nil {
				return fmt.Errorf("%w: %v", errClientWrite, err)
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		},
	}
	if s.results != nil {
		opts.Cache = s.results
	}
	_, err := c.Run(opts)
	if err != nil {
		if errors.Is(err, errClientWrite) || r.Context().Err() != nil {
			// The client is gone: nothing left to write to, and the run
			// stopped simulating for it. Count the cut stream.
			s.aborted.Add(1)
			return
		}
		// The header line is already out; report the failure in-band as
		// the final NDJSON line.
		msg, _ := json.Marshal(map[string]string{"error": err.Error()})
		if _, werr := w.Write(msg); werr != nil {
			s.aborted.Add(1)
			return
		}
		io.WriteString(w, "\n")
	}
}

// gateCell acquires a token from the process-wide cell pool, or gives up
// when the request's context is canceled: a disconnected client's queued
// cells must not consume capacity that live requests are waiting for.
func (s *Server) gateCell(ctx context.Context, run func()) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.hookGateWait != nil {
		s.hookGateWait()
	}
	select {
	case s.cellGate <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-s.cellGate }()
	// The select above picks randomly when both channels are ready:
	// re-check so a canceled request never simulates on a token it raced
	// for.
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
	}
	if s.hookCellStart != nil {
		s.hookCellStart()
	}
	run()
	return nil
}

// CheckResponse is the body of POST /v1/scenarios/check.
type CheckResponse struct {
	Valid       bool   `json:"valid"`
	Scenario    string `json:"scenario,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Cells       int    `json:"cells,omitempty"`
	Error       string `json:"error,omitempty"`
}

// handleCheck validates and fingerprints a scenario without running it.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxScenarioBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("scenario document exceeds %d bytes", MaxScenarioBytes))
		} else {
			s.httpError(w, http.StatusBadRequest, "unreadable scenario document")
		}
		return
	}
	resp := CheckResponse{}
	if doc, perr := scenario.Parse("request", body); perr != nil {
		resp.Error = perr.Error()
	} else if c, cerr := scenario.Compile(doc); cerr != nil {
		resp.Error = cerr.Error()
	} else {
		resp.Valid = true
		resp.Scenario = doc.Name
		resp.Fingerprint = c.Fingerprint
		resp.Cells = len(c.Cells)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// HealthResponse is the body of GET /v1/healthz.
type HealthResponse struct {
	OK bool `json:"ok"`
	// Workers and MaxInFlight echo the service configuration.
	Workers     int `json:"workers"`
	MaxInFlight int `json:"max_inflight"`
	// Cache reports the process-wide plan/member-DAX cache counters; a
	// warm service shows retrievals growing while builds stay flat.
	Cache core.CacheStats `json:"cache"`
	// Results reports the content-addressed cell-result cache: hits
	// skipped planning AND simulation entirely. Absent when the cache is
	// disabled.
	Results *resultcache.Stats `json:"results,omitempty"`
	// AbortedStreams counts responses cut short because the client
	// disconnected before reading them — NDJSON streams abandoned
	// mid-run and JSON bodies that failed to write.
	AbortedStreams uint64 `json:"aborted_streams"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{
		OK:             true,
		Workers:        s.opts.Workers,
		MaxInFlight:    s.opts.MaxInFlight,
		Cache:          core.PlanCacheStats(),
		AbortedStreams: s.aborted.Load(),
	}
	if s.results != nil {
		st := s.results.Stats()
		resp.Results = &st
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// writeJSON writes a JSON response body. A write failure means the
// client hung up before reading its response; it is counted with the
// aborted streams instead of being silently dropped.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.aborted.Add(1)
	}
}

func (s *Server) httpError(w http.ResponseWriter, status int, msg string) {
	s.writeJSON(w, status, map[string]string{"error": msg})
}
