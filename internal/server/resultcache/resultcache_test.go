package resultcache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func fp(i int) string {
	return fmt.Sprintf("%064d", i)
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Get(fp(1), 0); ok {
		t.Fatal("hit on an empty cache")
	}
	line := []byte(`{"cell":0,"makespan_s":12.5}`)
	c.Put(fp(1), 0, line)
	got, ok := c.Get(fp(1), 0)
	if !ok || !bytes.Equal(got, line) {
		t.Fatalf("Get = %q, %v; want the stored line", got, ok)
	}
	if _, ok := c.Get(fp(1), 1); ok {
		t.Error("hit on a different cell of the same document")
	}
	if _, ok := c.Get(fp(2), 0); ok {
		t.Error("hit on a different fingerprint")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Entries != 1 || st.Evictions != 0 {
		t.Errorf("stats = %+v, want 1 hit / 3 misses / 1 entry", st)
	}
	if st.Bytes != entrySize(key{fingerprint: fp(1), cell: 0}, line) {
		t.Errorf("bytes = %d, want the single entry's charge", st.Bytes)
	}
}

// Eviction respects the byte bound and removes the least recently used
// entry first. A single shard pins the order.
func TestEvictionIsLRUWithinByteBound(t *testing.T) {
	line := bytes.Repeat([]byte("x"), 100)
	per := entrySize(key{fingerprint: fp(0), cell: 0}, line)
	c := newWithShards(3*per, 1)

	for i := 0; i < 3; i++ {
		c.Put(fp(i), 0, line)
	}
	if st := c.Stats(); st.Entries != 3 || st.Evictions != 0 || st.Bytes != 3*per {
		t.Fatalf("after 3 inserts at a 3-entry bound: %+v", st)
	}

	// Touch fp(0) so fp(1) becomes the LRU victim.
	if _, ok := c.Get(fp(0), 0); !ok {
		t.Fatal("fp(0) missing before eviction")
	}
	c.Put(fp(3), 0, line)

	if _, ok := c.Get(fp(1), 0); ok {
		t.Error("LRU entry fp(1) survived eviction")
	}
	for _, want := range []int{0, 2, 3} {
		if _, ok := c.Get(fp(want), 0); !ok {
			t.Errorf("recently used entry fp(%d) was evicted", want)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 3 || st.Bytes > c.maxBytes {
		t.Errorf("after eviction: %+v", st)
	}
}

// A line larger than a shard's budget is refused rather than evicting
// the whole shard for an entry that still would not fit.
func TestOversizedLineNotStored(t *testing.T) {
	c := newWithShards(256, 1)
	c.Put(fp(1), 0, bytes.Repeat([]byte("x"), 4096))
	if _, ok := c.Get(fp(1), 0); ok {
		t.Error("oversized line was stored")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("stats after refused insert: %+v", st)
	}
}

// Duplicate Puts (concurrent cold requests racing on the same cell)
// keep one entry and do not inflate the byte accounting.
func TestDuplicatePutKeepsOneEntry(t *testing.T) {
	c := newWithShards(1<<20, 1)
	line := []byte(`{"cell":7}`)
	c.Put(fp(1), 7, line)
	c.Put(fp(1), 7, line)
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != entrySize(key{fingerprint: fp(1), cell: 7}, line) {
		t.Errorf("duplicate Put changed occupancy: %+v", st)
	}
}

// TestConcurrentMixedFingerprints hammers the sharded cache from many
// goroutines with overlapping documents; run under -race (the CI race
// stress covers this package). Every hit must return the exact bytes
// stored for its key.
func TestConcurrentMixedFingerprints(t *testing.T) {
	c := New(64 << 10) // small bound: constant eviction pressure
	const goroutines = 16
	const docs = 8
	const cells = 32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				doc := (g + iter) % docs
				cell := iter % cells
				want := []byte(fmt.Sprintf(`{"doc":%d,"cell":%d}`, doc, cell))
				if got, ok := c.Get(fp(doc), cell); ok {
					if !bytes.Equal(got, want) {
						t.Errorf("doc %d cell %d: got %q, want %q", doc, cell, got, want)
						return
					}
				} else {
					c.Put(fp(doc), cell, want)
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > st.MaxBytes {
		t.Errorf("cache exceeded its byte bound: %+v", st)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("hammer produced no cache traffic: %+v", st)
	}
}
