package resultcache

import (
	"sync"
	"sync/atomic"
)

// DefaultShards is the shard count New uses. 16 keeps per-shard mutexes
// uncontended well past the request concurrency the serve tier admits,
// while the fixed fan-out keeps Stats aggregation trivial.
const DefaultShards = 16

// entryOverhead approximates the per-entry bookkeeping cost (map slot,
// list pointers, key copy) charged against the byte budget in addition
// to the fingerprint and line bytes, so a cache full of tiny lines
// cannot balloon far past its nominal bound.
const entryOverhead = 64

// key addresses one finished cell line.
type key struct {
	fingerprint string
	cell        int
}

// entry is one cached line threaded on its shard's LRU list.
type entry struct {
	key        key
	line       []byte
	prev, next *entry // LRU list: head = most recent, tail = eviction victim
}

// shard is one independently locked slice of the cache. The map, the
// LRU list and the byte accounting form one invariant (every entry is
// in both structures and counted exactly once), so they share a guard;
// maxBytes is immutable after construction and the atomics are
// lock-free telemetry.
type shard struct {
	mu sync.Mutex
	//pegflow:guarded mu
	entries map[key]*entry
	//pegflow:guarded mu
	head *entry
	//pegflow:guarded mu
	tail *entry
	//pegflow:guarded mu
	bytes    int64
	maxBytes int64

	evictions atomic.Uint64
	count     atomic.Int64
	curBytes  atomic.Int64
}

// Cache is a sharded, byte-bounded, LRU map from (document fingerprint,
// cell index) to the cell's finished NDJSON line. It is safe for
// concurrent use. Lines handed to Put and returned by Get are shared,
// not copied: callers must treat them as immutable.
type Cache struct {
	shards   []*shard
	maxBytes int64

	hits   atomic.Uint64
	misses atomic.Uint64
}

// Stats is a point-in-time snapshot of the cache counters, aggregated
// across shards. Hits/Misses/Evictions are monotone for the cache's
// lifetime; Entries and Bytes describe current occupancy.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int64  `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
}

// New builds a cache bounded by maxBytes total, spread over
// DefaultShards shards. maxBytes must be positive.
func New(maxBytes int64) *Cache {
	return newWithShards(maxBytes, DefaultShards)
}

// newWithShards is the constructor tests use to pin eviction order on a
// single shard.
func newWithShards(maxBytes int64, shards int) *Cache {
	if maxBytes <= 0 {
		panic("resultcache: non-positive byte bound")
	}
	if shards <= 0 {
		shards = 1
	}
	c := &Cache{shards: make([]*shard, shards), maxBytes: maxBytes}
	per := maxBytes / int64(shards)
	if per <= 0 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = &shard{entries: make(map[key]*entry), maxBytes: per}
	}
	return c
}

// shardFor hashes the key across the shards (FNV-1a over the
// fingerprint bytes, with the cell index mixed in), so the cells of one
// hot document spread over every lock instead of serializing on one.
func (c *Cache) shardFor(k key) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k.fingerprint); i++ {
		h ^= uint64(k.fingerprint[i])
		h *= prime64
	}
	h ^= uint64(k.cell)
	h *= prime64
	return c.shards[h%uint64(len(c.shards))]
}

// Get returns the cached line for (fingerprint, cell) and refreshes its
// recency. The returned slice is shared with the cache: callers must
// not modify it.
func (c *Cache) Get(fingerprint string, cell int) ([]byte, bool) {
	k := key{fingerprint: fingerprint, cell: cell}
	s := c.shardFor(k)
	s.mu.Lock()
	e, ok := s.entries[k]
	if ok {
		s.moveToFront(e)
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return e.line, true
}

// Put stores the line under (fingerprint, cell), evicting
// least-recently-used entries from the key's shard until the shard fits
// its byte budget. A line too large for the shard budget is not stored.
// The cache keeps a reference to line: callers must not modify it after
// Put.
func (c *Cache) Put(fingerprint string, cell int, line []byte) {
	k := key{fingerprint: fingerprint, cell: cell}
	size := entrySize(k, line)
	s := c.shardFor(k)
	if size > s.maxBytes {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[k]; ok {
		// Concurrent requests for the same cold cell race to Put; the
		// lines are byte-identical (deterministic cells), so refresh
		// recency and keep the incumbent.
		s.moveToFront(e)
		return
	}
	e := &entry{key: k, line: line}
	s.entries[k] = e
	s.pushFront(e)
	s.bytes += size
	for s.bytes > s.maxBytes && s.tail != nil && s.tail != e {
		s.evict(s.tail)
	}
	s.count.Store(int64(len(s.entries)))
	s.curBytes.Store(s.bytes)
}

// Stats aggregates the counters across shards.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		MaxBytes: c.maxBytes,
	}
	for _, s := range c.shards {
		st.Evictions += s.evictions.Load()
		st.Entries += s.count.Load()
		st.Bytes += s.curBytes.Load()
	}
	return st
}

// entrySize is the budget charge for one entry.
func entrySize(k key, line []byte) int64 {
	return int64(len(k.fingerprint)) + int64(len(line)) + entryOverhead
}

// moveToFront marks e most-recently-used. Caller holds s.mu.
//
//pegflow:holds mu
func (s *shard) moveToFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// pushFront links e at the head. Caller holds s.mu.
//
//pegflow:holds mu
func (s *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// unlink removes e from the list. Caller holds s.mu.
//
//pegflow:holds mu
func (s *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// evict drops e from the shard. Caller holds s.mu.
//
//pegflow:holds mu
func (s *shard) evict(e *entry) {
	s.unlink(e)
	delete(s.entries, e.key)
	s.bytes -= entrySize(e.key, e.line)
	s.evictions.Add(1)
}
