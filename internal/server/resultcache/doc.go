// Package resultcache is the content-addressed cell-result cache behind
// the serve tier. Scenario documents are SHA-256 fingerprinted and their
// cell grids are deterministic, so a finished NDJSON cell line is fully
// determined by (document fingerprint, cell index): the cache stores
// exactly that mapping, bounded by total bytes with least-recently-used
// eviction, and a hit lets the server (or any scenario.Run caller) skip
// planning and simulation entirely while emitting byte-identical output.
//
// The cache is sharded: the (fingerprint, cell) key is hashed across a
// fixed set of independently locked shards, so concurrent requests for
// hot documents do not contend on one mutex. Each shard owns 1/Nth of
// the byte budget and runs its own LRU list; hit/miss/eviction/byte
// counters aggregate across shards and are republished by the serve
// tier at /v1/healthz.
package resultcache
