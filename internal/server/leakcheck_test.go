package server

import (
	"net/http"
	"runtime"
	"testing"
	"time"
)

// leakCheck snapshots the goroutine count and fails the test if the
// count has not settled back once the test — including its deferred
// httptest server close — is done. Call it first: t.Cleanup functions
// run after the test's defers, so the check brackets the whole test.
// The settle loop retries because handler goroutines unwind
// asynchronously after Close returns.
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		// Idle keep-alive connections pin client transport goroutines;
		// drop them before judging.
		http.DefaultClient.CloseIdleConnections()
		deadline := time.Now().Add(2 * time.Second)
		now := runtime.NumGoroutine()
		for now > before && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
			now = runtime.NumGoroutine()
		}
		if now > before {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Errorf("goroutine leak: %d before test, %d after settling\n%s", before, now, buf[:n])
		}
	})
}
