package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pegflow/internal/core"
)

// testScenario runs through the plan-cached experiment path on both
// built-in presets: 2 site sets × 2 n = 4 cells.
const testScenario = `{
  "version": 1,
  "name": "server-test",
  "sites": [
    {"preset": "sandhills", "slots": 32},
    {"preset": "osg", "slots": 64}
  ],
  "site_sets": [["sandhills"], ["osg"]],
  "workload": {
    "params": {"num_clusters": 2000, "max_cluster_size": 120, "size_exponent": 0.5, "mean_read_len": 1000},
    "n": [16, 32],
    "seeds": [11]
  },
  "outputs": {"fields": ["makespan_s", "retries", "evictions", "success"], "percentiles": [50, 99]}
}`

func post(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// postWave fires n concurrent scenario POSTs and returns the bodies.
func postWave(t *testing.T, ts *httptest.Server, n int) [][]byte {
	t.Helper()
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	errs := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/scenarios/run", "application/json",
				strings.NewReader(testScenario))
			if err != nil {
				errs[i] = err.Error()
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = resp.Status
				return
			}
			bodies[i], err = io.ReadAll(resp.Body)
			if err != nil {
				errs[i] = err.Error()
			}
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != "" {
			t.Fatalf("request %d: %s", i, e)
		}
	}
	return bodies
}

// TestConcurrentPostsAndWarmCache is the acceptance scenario: ≥8
// concurrent scenario POSTs produce identical per-cell results, and a
// repeat submission wave runs entirely warm — zero new master plans, only
// cache retrievals — and no slower than the cold wave.
func TestConcurrentPostsAndWarmCache(t *testing.T) {
	core.ResetPlanCache()
	ts := httptest.NewServer(New(Options{Workers: 4, MaxInFlight: 32}))
	defer ts.Close()

	before := core.PlanCacheStats()
	coldStart := time.Now()
	cold := postWave(t, ts, 8)
	coldElapsed := time.Since(coldStart)
	afterCold := core.PlanCacheStats()

	for i := 1; i < len(cold); i++ {
		if !bytes.Equal(cold[0], cold[i]) {
			t.Fatalf("concurrent responses differ:\n--- 0 ---\n%s--- %d ---\n%s", cold[0], i, cold[i])
		}
	}
	lines := bytes.Split(bytes.TrimSpace(cold[0]), []byte("\n"))
	if len(lines) != 2+4 {
		t.Fatalf("response has %d lines, want header + 4 cells + footer:\n%s", len(lines), cold[0])
	}
	if builds := afterCold.PlanBuilds - before.PlanBuilds; builds != 4 {
		t.Errorf("cold wave built %d plan masters, want 4 (one per cell shape)", builds)
	}

	warmStart := time.Now()
	warm := postWave(t, ts, 8)
	warmElapsed := time.Since(warmStart)
	afterWarm := core.PlanCacheStats()

	if !bytes.Equal(warm[0], cold[0]) {
		t.Errorf("warm response differs from cold response")
	}
	for i := 1; i < len(warm); i++ {
		if !bytes.Equal(warm[0], warm[i]) {
			t.Fatalf("warm responses differ between clients")
		}
	}
	if builds := afterWarm.PlanBuilds - afterCold.PlanBuilds; builds != 0 {
		t.Errorf("repeat submissions built %d new plan masters, want 0 (warm cache)", builds)
	}
	if served := afterWarm.PlanRetrievals - afterCold.PlanRetrievals; served != 8*4 {
		t.Errorf("repeat submissions served %d cached plans, want 32", served)
	}
	// The warm wave does strictly less work (no DAX construction, no
	// catalog resolution, no planning); allow generous scheduler noise.
	if warmElapsed > coldElapsed*3/2 {
		t.Errorf("no warm-cache speedup: cold wave %v, warm wave %v", coldElapsed, warmElapsed)
	}
	t.Logf("cold wave %v, warm wave %v (%.2fx)", coldElapsed, warmElapsed,
		float64(coldElapsed)/float64(warmElapsed))
}

// TestRequestThrottle pins the in-flight cap: a request whose body is
// still streaming holds its slot, so the next POST is rejected with 429.
func TestRequestThrottle(t *testing.T) {
	ts := httptest.NewServer(New(Options{Workers: 1, MaxInFlight: 1}))
	defer ts.Close()

	pr, pw := io.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(ts.URL+"/v1/scenarios/run", "application/json", pr)
		if err == nil {
			resp.Body.Close()
		}
	}()
	// The handler acquires its slot, then blocks reading the body.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := post(t, ts, "/v1/scenarios/run", testScenario)
		if code == http.StatusTooManyRequests {
			if !bytes.Contains(body, []byte("in flight")) {
				t.Errorf("429 body = %s", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never saw 429 while a request held the only slot")
		}
		time.Sleep(10 * time.Millisecond)
	}
	pw.CloseWithError(io.ErrUnexpectedEOF)
	<-done
}

func TestCheckEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(Options{Workers: 2}))
	defer ts.Close()

	code, body := post(t, ts, "/v1/scenarios/check", testScenario)
	if code != http.StatusOK {
		t.Fatalf("check: %d %s", code, body)
	}
	var ok CheckResponse
	if err := json.Unmarshal(body, &ok); err != nil {
		t.Fatal(err)
	}
	if !ok.Valid || ok.Cells != 4 || len(ok.Fingerprint) != 64 || ok.Scenario != "server-test" {
		t.Errorf("check response: %+v", ok)
	}

	bad := strings.Replace(testScenario, `"slots": 32`, `"slots": -1`, 1)
	code, body = post(t, ts, "/v1/scenarios/check", bad)
	if code != http.StatusOK {
		t.Fatalf("check(bad): %d %s", code, body)
	}
	var nok CheckResponse
	if err := json.Unmarshal(body, &nok); err != nil {
		t.Fatal(err)
	}
	if nok.Valid || !strings.Contains(nok.Error, "sites[0].slots") ||
		!strings.Contains(nok.Error, "request:") {
		t.Errorf("invalid scenario not rejected with a field-qualified error: %+v", nok)
	}
}

func TestInvalidScenarioRejectedOnRun(t *testing.T) {
	ts := httptest.NewServer(New(Options{Workers: 2}))
	defer ts.Close()
	code, body := post(t, ts, "/v1/scenarios/run", `{"version": 1}`)
	if code != http.StatusUnprocessableEntity {
		t.Errorf("run(invalid) = %d %s, want 422", code, body)
	}
}

func TestHealth(t *testing.T) {
	ts := httptest.NewServer(New(Options{Workers: 3, MaxInFlight: 7}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Workers != 3 || h.MaxInFlight != 7 {
		t.Errorf("health: %+v", h)
	}
}
