package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pegflow/internal/core"
)

// testScenario runs through the plan-cached experiment path on both
// built-in presets: 2 site sets × 2 n = 4 cells.
const testScenario = `{
  "version": 1,
  "name": "server-test",
  "sites": [
    {"preset": "sandhills", "slots": 32},
    {"preset": "osg", "slots": 64}
  ],
  "site_sets": [["sandhills"], ["osg"]],
  "workload": {
    "params": {"num_clusters": 2000, "max_cluster_size": 120, "size_exponent": 0.5, "mean_read_len": 1000},
    "n": [16, 32],
    "seeds": [11]
  },
  "outputs": {"fields": ["makespan_s", "retries", "evictions", "success"], "percentiles": [50, 99]}
}`

// smallScenario is a cheap 2-cell document for lifecycle tests.
const smallScenario = `{
  "version": 1,
  "name": "small",
  "sites": [{"preset": "sandhills", "slots": 16}],
  "site_sets": [["sandhills"]],
  "workload": {
    "params": {"num_clusters": 100, "max_cluster_size": 40, "size_exponent": 0.5, "mean_read_len": 800},
    "n": [2, 4],
    "seeds": [7]
  },
  "outputs": {"fields": ["makespan_s", "success"]}
}`

func post(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func health(t *testing.T, ts *httptest.Server) HealthResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// postWave fires n concurrent scenario POSTs and returns the bodies.
func postWave(t *testing.T, ts *httptest.Server, n int) [][]byte {
	t.Helper()
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	errs := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/scenarios/run", "application/json",
				strings.NewReader(testScenario))
			if err != nil {
				errs[i] = err.Error()
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = resp.Status
				return
			}
			bodies[i], err = io.ReadAll(resp.Body)
			if err != nil {
				errs[i] = err.Error()
			}
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != "" {
			t.Fatalf("request %d: %s", i, e)
		}
	}
	return bodies
}

// TestConcurrentPostsAndWarmCache is the acceptance scenario: ≥8
// concurrent scenario POSTs produce identical per-cell results, and a
// repeat submission wave is served entirely from the content-addressed
// result cache — zero plan-cache traffic, i.e. zero new simulations —
// with NDJSON byte-identical to the cold wave.
func TestConcurrentPostsAndWarmCache(t *testing.T) {
	leakCheck(t)
	core.ResetPlanCache()
	ts := httptest.NewServer(New(Options{Workers: 4, MaxInFlight: 32}))
	defer ts.Close()

	before := core.PlanCacheStats()
	coldStart := time.Now()
	cold := postWave(t, ts, 8)
	coldElapsed := time.Since(coldStart)
	afterCold := core.PlanCacheStats()

	for i := 1; i < len(cold); i++ {
		if !bytes.Equal(cold[0], cold[i]) {
			t.Fatalf("concurrent responses differ:\n--- 0 ---\n%s--- %d ---\n%s", cold[0], i, cold[i])
		}
	}
	lines := bytes.Split(bytes.TrimSpace(cold[0]), []byte("\n"))
	if len(lines) != 2+4 {
		t.Fatalf("response has %d lines, want header + 4 cells + footer:\n%s", len(lines), cold[0])
	}
	if builds := afterCold.PlanBuilds - before.PlanBuilds; builds != 4 {
		t.Errorf("cold wave built %d plan masters, want 4 (one per cell shape)", builds)
	}

	warmStart := time.Now()
	warm := postWave(t, ts, 8)
	warmElapsed := time.Since(warmStart)
	afterWarm := core.PlanCacheStats()
	h := health(t, ts)

	if !bytes.Equal(warm[0], cold[0]) {
		t.Errorf("warm response differs from cold response")
	}
	for i := 1; i < len(warm); i++ {
		if !bytes.Equal(warm[0], warm[i]) {
			t.Fatalf("warm responses differ between clients")
		}
	}
	// Zero new simulations: every simulation on this path clones a plan
	// from the keyed cache, so an untouched plan cache across the repeat
	// wave proves no cell was recomputed.
	if builds := afterWarm.PlanBuilds - afterCold.PlanBuilds; builds != 0 {
		t.Errorf("repeat submissions built %d new plan masters, want 0", builds)
	}
	if served := afterWarm.PlanRetrievals - afterCold.PlanRetrievals; served != 0 {
		t.Errorf("repeat submissions retrieved %d plans, want 0 (result cache should bypass simulation)", served)
	}
	if h.Results == nil {
		t.Fatal("healthz reports no result cache")
	}
	if h.Results.Hits < 8*4 {
		t.Errorf("result cache hits = %d, want at least 32 (8 repeat requests × 4 cells)", h.Results.Hits)
	}
	if h.Results.Entries != 4 || h.Results.Bytes <= 0 {
		t.Errorf("result cache occupancy: %+v", h.Results)
	}
	// The warm wave does strictly less work (no planning, no
	// simulation, no row formatting); allow generous scheduler noise.
	if warmElapsed > coldElapsed*3/2 {
		t.Errorf("no warm-cache speedup: cold wave %v, warm wave %v", coldElapsed, warmElapsed)
	}
	t.Logf("cold wave %v, warm wave %v (%.2fx)", coldElapsed, warmElapsed,
		float64(coldElapsed)/float64(warmElapsed))
}

// With the result cache disabled, repeat traffic still runs warm at the
// plan-cache layer: zero new masters, one retrieval per simulated cell.
func TestRepeatWaveWarmPlanCacheWithoutResultCache(t *testing.T) {
	core.ResetPlanCache()
	ts := httptest.NewServer(New(Options{Workers: 4, MaxInFlight: 32, CacheBytes: -1}))
	defer ts.Close()

	cold := postWave(t, ts, 4)
	afterCold := core.PlanCacheStats()
	warm := postWave(t, ts, 4)
	afterWarm := core.PlanCacheStats()

	if !bytes.Equal(warm[0], cold[0]) {
		t.Errorf("warm response differs from cold response")
	}
	if builds := afterWarm.PlanBuilds - afterCold.PlanBuilds; builds != 0 {
		t.Errorf("repeat submissions built %d new plan masters, want 0 (warm cache)", builds)
	}
	if served := afterWarm.PlanRetrievals - afterCold.PlanRetrievals; served != 4*4 {
		t.Errorf("repeat submissions served %d cached plans, want 16", served)
	}
	if h := health(t, ts); h.Results != nil {
		t.Errorf("healthz reports a result cache on a cache-disabled server: %+v", h.Results)
	}
}

// TestRequestThrottle pins the in-flight cap at its post-fix meaning: a
// request that is admitted and RUNNING holds its slot, so the next POST
// is rejected with 429 — deterministically, via the cell-start hook.
func TestRequestThrottle(t *testing.T) {
	leakCheck(t)
	srv := New(Options{Workers: 1, MaxInFlight: 1, CacheBytes: -1})
	hold := make(chan struct{})
	started := make(chan struct{}, 16)
	srv.hookCellStart = func() {
		started <- struct{}{}
		<-hold
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	done := make(chan error, 1)
	go func() {
		code, body := postQuiet(ts, "/v1/scenarios/run", smallScenario)
		if code != http.StatusOK {
			done <- fmt.Errorf("held request: %d %s", code, body)
			return
		}
		done <- nil
	}()
	<-started // the run holds the only slot and is simulating

	code, body := post(t, ts, "/v1/scenarios/run", smallScenario)
	if code != http.StatusTooManyRequests {
		t.Errorf("second POST = %d %s, want 429 while a run holds the slot", code, body)
	} else if !bytes.Contains(body, []byte("in flight")) {
		t.Errorf("429 body = %s", body)
	}

	close(hold)
	for range startedDrain(started) {
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// startedDrain empties a signal channel without blocking.
func startedDrain(ch chan struct{}) []struct{} {
	var out []struct{}
	for {
		select {
		case v := <-ch:
			out = append(out, v)
		default:
			return out
		}
	}
}

// postQuiet is post without the testing.T (for goroutines).
func postQuiet(ts *httptest.Server, path, body string) (int, []byte) {
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, []byte(err.Error())
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// A slow upload must NOT pin 429 capacity: the in-flight slot is taken
// only after the body is read and validated. Under the old admit-first
// order this test deadlocks into a 429.
func TestSlowUploadDoesNotHoldInFlightSlot(t *testing.T) {
	leakCheck(t)
	ts := httptest.NewServer(New(Options{Workers: 1, MaxInFlight: 1, CacheBytes: -1}))
	defer ts.Close()

	pr, pw := io.Pipe()
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		resp, err := http.Post(ts.URL+"/v1/scenarios/run", "application/json", pr)
		if err == nil {
			resp.Body.Close()
		}
	}()
	// Trickle a few bytes so the handler is inside its body read.
	if _, err := pw.Write([]byte("{")); err != nil {
		t.Fatal(err)
	}

	code, body := post(t, ts, "/v1/scenarios/run", smallScenario)
	if code != http.StatusOK {
		t.Errorf("live POST while another client uploads slowly = %d %s, want 200", code, body)
	}
	if !bytes.Contains(body, []byte(`"done":true`)) {
		t.Errorf("live POST response missing footer: %s", body)
	}

	pw.CloseWithError(io.ErrUnexpectedEOF)
	<-slowDone
}

// An oversized upload is rejected with 413 via http.MaxBytesReader.
func TestOversizedUploadRejected(t *testing.T) {
	ts := httptest.NewServer(New(Options{Workers: 1, CacheBytes: -1}))
	defer ts.Close()
	big := strings.Repeat("x", MaxScenarioBytes+16)
	for _, path := range []string{"/v1/scenarios/run", "/v1/scenarios/check"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(big))
		if err != nil {
			// MaxBytesReader may cut the connection before the client
			// finishes writing; either a 413 or a transport error is a
			// correct rejection.
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversized upload = %d %s, want 413", path, resp.StatusCode, body)
		}
	}
}

// TestCanceledRequestFreesCellGate is the regression test for the
// request-lifecycle bug: a canceled request's queued cells must stop
// waiting for process-wide cell-gate tokens, leaving the capacity to
// concurrent live requests. Under the old code the canceled request's
// queued cell acquires the freed token and simulates anyway.
func TestCanceledRequestFreesCellGate(t *testing.T) {
	leakCheck(t)
	srv := New(Options{Workers: 1, MaxInFlight: 8, CacheBytes: -1})
	hold := make(chan struct{})
	var cellsRun atomic.Int32
	started := make(chan struct{}, 64)
	gateWaits := make(chan struct{}, 64)
	srv.hookCellStart = func() {
		cellsRun.Add(1)
		started <- struct{}{}
		<-hold
	}
	srv.hookGateWait = func() { gateWaits <- struct{}{} }
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Live request L: its first cell acquires the only token and blocks
	// in the hook.
	liveDone := make(chan error, 1)
	go func() {
		code, body := postQuiet(ts, "/v1/scenarios/run", smallScenario)
		if code != http.StatusOK || !bytes.Contains(body, []byte(`"done":true`)) {
			liveDone <- fmt.Errorf("live request: %d %s", code, body)
			return
		}
		liveDone <- nil
	}()
	<-gateWaits // L cell 0 about to acquire
	<-started   // L cell 0 holds the token

	// Canceled request C: its first cell queues on the gate, then the
	// client disconnects.
	ctx, cancel := context.WithCancel(context.Background())
	cReq, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/scenarios/run",
		strings.NewReader(testScenario))
	if err != nil {
		t.Fatal(err)
	}
	cReq.Header.Set("Content-Type", "application/json")
	cDone := make(chan struct{})
	go func() {
		defer close(cDone)
		resp, err := http.DefaultClient.Do(cReq)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-gateWaits // C cell 0 queued on the gate
	cancel()
	<-cDone

	// Wait until the server has observed the disconnect and aborted C's
	// stream — before any token is freed.
	h0 := health(t, ts)
	deadline := time.Now().Add(5 * time.Second)
	for h0.AbortedStreams == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never recorded the aborted stream")
		}
		time.Sleep(5 * time.Millisecond)
		h0 = health(t, ts)
	}

	// Release the token. L must finish; C must not have simulated a
	// single cell.
	close(hold)
	if err := <-liveDone; err != nil {
		t.Fatal(err)
	}
	// smallScenario has 2 cells; the canceled request contributes none.
	if got := cellsRun.Load(); got != 2 {
		t.Errorf("cells simulated = %d, want 2 (canceled request must not consume gate tokens)", got)
	}
}

// A client that disconnects mid-stream aborts the response and is
// counted in healthz.
func TestClientDisconnectCountsAbortedStream(t *testing.T) {
	leakCheck(t)
	srv := New(Options{Workers: 1, MaxInFlight: 4, CacheBytes: -1})
	hold := make(chan struct{})
	started := make(chan struct{}, 16)
	srv.hookCellStart = func() {
		started <- struct{}{}
		<-hold
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	before := health(t, ts).AbortedStreams
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/scenarios/run",
		strings.NewReader(smallScenario))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-started // the run is mid-stream
	cancel()
	<-done
	close(hold)

	deadline := time.Now().Add(5 * time.Second)
	for {
		if h := health(t, ts); h.AbortedStreams > before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("aborted stream never counted in healthz")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCheckEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(Options{Workers: 2}))
	defer ts.Close()

	code, body := post(t, ts, "/v1/scenarios/check", testScenario)
	if code != http.StatusOK {
		t.Fatalf("check: %d %s", code, body)
	}
	var ok CheckResponse
	if err := json.Unmarshal(body, &ok); err != nil {
		t.Fatal(err)
	}
	if !ok.Valid || ok.Cells != 4 || len(ok.Fingerprint) != 64 || ok.Scenario != "server-test" {
		t.Errorf("check response: %+v", ok)
	}

	bad := strings.Replace(testScenario, `"slots": 32`, `"slots": -1`, 1)
	code, body = post(t, ts, "/v1/scenarios/check", bad)
	if code != http.StatusOK {
		t.Fatalf("check(bad): %d %s", code, body)
	}
	var nok CheckResponse
	if err := json.Unmarshal(body, &nok); err != nil {
		t.Fatal(err)
	}
	if nok.Valid || !strings.Contains(nok.Error, "sites[0].slots") ||
		!strings.Contains(nok.Error, "request:") {
		t.Errorf("invalid scenario not rejected with a field-qualified error: %+v", nok)
	}
}

func TestInvalidScenarioRejectedOnRun(t *testing.T) {
	ts := httptest.NewServer(New(Options{Workers: 2}))
	defer ts.Close()
	code, body := post(t, ts, "/v1/scenarios/run", `{"version": 1}`)
	if code != http.StatusUnprocessableEntity {
		t.Errorf("run(invalid) = %d %s, want 422", code, body)
	}
}

func TestHealth(t *testing.T) {
	ts := httptest.NewServer(New(Options{Workers: 3, MaxInFlight: 7}))
	defer ts.Close()
	h := health(t, ts)
	if !h.OK || h.Workers != 3 || h.MaxInFlight != 7 {
		t.Errorf("health: %+v", h)
	}
	if h.Results == nil || h.Results.MaxBytes != DefaultCacheBytes {
		t.Errorf("health result-cache stats: %+v", h.Results)
	}
}
