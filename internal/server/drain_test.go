package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestGracefulDrainRefusesNewWorkAndFinishesStreams is the drain
// regression test: once StartDraining is called, new POSTs get 503 with a
// Retry-After hint and healthz reports draining, while a stream already
// in flight runs to completion.
func TestGracefulDrainRefusesNewWorkAndFinishesStreams(t *testing.T) {
	leakCheck(t)
	srv := New(Options{Workers: 1, MaxInFlight: 4, CacheBytes: -1})
	hold := make(chan struct{})
	started := make(chan struct{}, 16)
	first := true
	srv.hookCellStart = func() {
		if first {
			first = false
			started <- struct{}{}
			<-hold
		}
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	inFlight := make(chan error, 1)
	go func() {
		code, body := postQuiet(ts, "/v1/scenarios/run", smallScenario)
		if code != http.StatusOK || !bytes.Contains(body, []byte(`"done":true`)) {
			inFlight <- fmt.Errorf("in-flight stream: %d %s", code, body)
			return
		}
		inFlight <- nil
	}()
	<-started // the stream is admitted and simulating its first cell

	srv.StartDraining()

	h := health(t, ts)
	if !h.Draining || h.InFlight != 1 {
		t.Errorf("healthz during drain: draining=%v inflight=%d, want true and 1", h.Draining, h.InFlight)
	}
	for _, path := range []string{"/v1/scenarios/run", "/v1/scenarios/check"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(smallScenario))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("POST %s during drain = %d, want 503", path, resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != fmt.Sprintf("%d", RetryAfterSeconds) {
			t.Errorf("POST %s during drain Retry-After = %q, want %d", path, ra, RetryAfterSeconds)
		}
	}

	// The admitted stream must still finish cleanly.
	close(hold)
	if err := <-inFlight; err != nil {
		t.Fatal(err)
	}
	if h := health(t, ts); h.InFlight != 0 {
		t.Errorf("healthz after streams finished: inflight=%d, want 0", h.InFlight)
	}
}

// A panicking cell must not take the process down: the stream ends with a
// structured error line naming the cell, aborted_cells ticks in healthz,
// and the server keeps serving subsequent requests.
func TestCellPanicEmitsStructuredErrorAndServerSurvives(t *testing.T) {
	leakCheck(t)
	srv := New(Options{Workers: 1, MaxInFlight: 4, CacheBytes: -1})
	var calls atomic.Int32
	srv.hookCellStart = func() {
		if calls.Add(1) == 1 {
			panic("injected cell failure")
		}
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, body := post(t, ts, "/v1/scenarios/run", smallScenario)
	if code != http.StatusOK {
		t.Fatalf("run with panicking cell: %d %s", code, body)
	}
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	last := lines[len(lines)-1]
	var errLine struct {
		Error string `json:"error"`
		Cell  *int   `json:"cell"`
		Panic bool   `json:"panic"`
	}
	if err := json.Unmarshal(last, &errLine); err != nil {
		t.Fatalf("final line is not JSON: %s (%v)", last, err)
	}
	if !errLine.Panic || errLine.Cell == nil ||
		!strings.Contains(errLine.Error, "injected cell failure") {
		t.Errorf("final line is not a structured panic report: %s", last)
	}
	if h := health(t, ts); h.AbortedCells != 1 {
		t.Errorf("healthz aborted_cells = %d, want 1", h.AbortedCells)
	}

	// The process keeps serving: the same document now runs clean.
	code, body = post(t, ts, "/v1/scenarios/run", smallScenario)
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"done":true`)) {
		t.Errorf("run after panic: %d %s, want a complete stream", code, body)
	}
	if h := health(t, ts); h.AbortedCells != 1 {
		t.Errorf("healthz aborted_cells after clean run = %d, want still 1", h.AbortedCells)
	}
}

// A RequestTimeout expiry is reported in-band to the still-connected
// client — an error line, not an aborted stream.
func TestRequestTimeoutEndsStreamInBand(t *testing.T) {
	leakCheck(t)
	srv := New(Options{Workers: 1, MaxInFlight: 4, CacheBytes: -1, RequestTimeout: time.Nanosecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, body := post(t, ts, "/v1/scenarios/run", smallScenario)
	if code != http.StatusOK {
		t.Fatalf("run under timeout: %d %s", code, body)
	}
	sc := bufio.NewScanner(bytes.NewReader(body))
	var sawDeadline bool
	for sc.Scan() {
		var line struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(sc.Bytes(), &line) == nil &&
			strings.Contains(line.Error, "context deadline exceeded") {
			sawDeadline = true
		}
	}
	if !sawDeadline {
		t.Errorf("timed-out stream has no in-band deadline error:\n%s", body)
	}
	if h := health(t, ts); h.AbortedStreams != 0 {
		t.Errorf("healthz aborted_streams = %d, want 0 (client kept reading)", h.AbortedStreams)
	}
}
