package fifo

import "testing"

func TestQueueOrder(t *testing.T) {
	var q Queue[int]
	if q.Len() != 0 {
		t.Fatalf("zero-value Len = %d", q.Len())
	}
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	for i := 0; i < 100; i++ {
		if got := q.Peek(); got != i {
			t.Fatalf("Peek = %d, want %d", got, i)
		}
		if got := q.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
	if q.Len() != 0 {
		t.Errorf("Len after drain = %d", q.Len())
	}
}

func TestQueueInterleaved(t *testing.T) {
	var q Queue[int]
	next, expect := 0, 0
	// Push bursts of 3, pop bursts of 2, so the live window slides through
	// many compactions while staying non-empty.
	for round := 0; round < 5000; round++ {
		for i := 0; i < 3; i++ {
			q.Push(next)
			next++
		}
		for i := 0; i < 2; i++ {
			if got := q.Pop(); got != expect {
				t.Fatalf("round %d: Pop = %d, want %d", round, got, expect)
			}
			expect++
		}
	}
	for q.Len() > 0 {
		if got := q.Pop(); got != expect {
			t.Fatalf("drain: Pop = %d, want %d", got, expect)
		}
		expect++
	}
	if expect != next {
		t.Errorf("popped %d elements, pushed %d", expect, next)
	}
}

// The backing array must stay O(live): after steady one-in-one-out traffic
// the dead prefix is bounded by the compaction threshold, not by the total
// number of elements that ever passed through.
func TestQueueBoundedRetention(t *testing.T) {
	var q Queue[*int]
	for i := 0; i < 100000; i++ {
		v := i
		q.Push(&v)
		q.Pop()
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0", q.Len())
	}
	if len(q.buf) != 0 || q.head != 0 {
		t.Errorf("internal state not reset: len(buf)=%d head=%d", len(q.buf), q.head)
	}
	// A partially drained queue keeps its dead prefix under control.
	for i := 0; i < 1000; i++ {
		q.Push(new(int))
	}
	for i := 0; i < 999; i++ {
		q.Pop()
	}
	if q.head > len(q.buf)/2 && q.head >= compactThreshold {
		t.Errorf("dead prefix not compacted: head=%d len(buf)=%d", q.head, len(q.buf))
	}
	// Popped slots are zeroed so the elements are collectable.
	for i := 0; i < q.head; i++ {
		if q.buf[i] != nil {
			t.Fatalf("popped slot %d still pins its element", i)
		}
	}
}

func TestQueuePopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pop on empty queue did not panic")
		}
	}()
	var q Queue[int]
	q.Pop()
}

func TestQueuePeekEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Peek on empty queue did not panic")
		}
	}()
	var q Queue[string]
	q.Peek()
}
