// Package fifo provides a slice-backed FIFO queue that does not pin popped
// elements. The naive pop idiom `q = q[1:]` keeps the whole backing array
// reachable (and the popped element with it) for as long as the slice
// lives; over a long producer/consumer run — a simulation delivering
// millions of events — that is unbounded retention. Queue zeroes each
// popped slot immediately and compacts the backing array once the dead
// prefix dominates, so memory stays O(live elements) with amortized O(1)
// operations.
package fifo
