package fifo

// compactThreshold is the minimum dead-prefix length before a compaction
// is considered; below it the copy would cost more than it frees.
const compactThreshold = 32

// Queue is a first-in-first-out queue of T. The zero value is ready to use.
//
// Copying a Queue by value aliases buf between the copies while head
// diverges, silently re-delivering or dropping elements; slabcopy flags
// by-value copies.
//
//pegflow:slab
type Queue[T any] struct {
	buf  []T
	head int
}

// Len returns the number of queued elements.
func (q *Queue[T]) Len() int { return len(q.buf) - q.head }

// Push appends v to the tail.
func (q *Queue[T]) Push(v T) { q.buf = append(q.buf, v) }

// Pop removes and returns the head element. It panics on an empty queue.
func (q *Queue[T]) Pop() T {
	if q.head >= len(q.buf) {
		panic("fifo: Pop from empty queue")
	}
	var zero T
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head++
	switch {
	case q.head == len(q.buf):
		q.buf = q.buf[:0]
		q.head = 0
	case q.head >= compactThreshold && q.head > len(q.buf)/2:
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = zero
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	return v
}

// Peek returns the head element without removing it. It panics on an empty
// queue.
func (q *Queue[T]) Peek() T {
	if q.head >= len(q.buf) {
		panic("fifo: Peek on empty queue")
	}
	return q.buf[q.head]
}
