package ensemble

import (
	"container/heap"
	"fmt"

	"pegflow/internal/dax"
	"pegflow/internal/engine"
	"pegflow/internal/fifo"
	"pegflow/internal/kickstart"
	"pegflow/internal/planner"
	"pegflow/internal/pool"
	"pegflow/internal/sim/platform"
	"pegflow/internal/stats"
)

// Spec is one ensemble member: a planned workflow plus its scheduling
// parameters.
type Spec struct {
	// Name labels the workflow in reports. Names must be distinct.
	Name string
	// Plan is the executable (possibly multi-site) workflow.
	Plan *planner.Plan
	// Priority orders held jobs across members when the global throttle
	// is saturated; higher releases first.
	Priority int
	// RetryLimit is the per-job retry budget (engine.Options.RetryLimit).
	RetryLimit int
	// MaxActive caps this member's own jobs in flight (0 = unlimited).
	MaxActive int
	// Retry, when set, re-targets this member's retries (cross-site
	// failover). Each member needs its own policy instance: the policy
	// carries adaptive per-run state.
	Retry engine.RetryPolicy
	// Backoff, when set, delays this member's retries (virtual-time
	// exponential backoff). Each member needs its own policy instance:
	// the jitter stream is stateful.
	Backoff engine.BackoffPolicy
}

// Options tunes the ensemble driver.
type Options struct {
	// MaxInFlight caps jobs submitted to the platform pool across all
	// members (0 = unlimited) — the ensemble-manager counterpart of
	// DAGMan's maxjobs.
	MaxInFlight int
	// Aggregate runs every member engine in aggregation mode
	// (engine.Options.Aggregate): member logs fold into fixed-size
	// accumulators and sketches instead of retaining records, and spent
	// records are recycled into the pool's arenas — the memory-flat path
	// for large ensembles.
	Aggregate bool
}

// WorkflowResult pairs a member with its engine outcome.
type WorkflowResult struct {
	// Name and Priority echo the spec.
	Name     string
	Priority int
	// Result is the engine outcome. Makespans are in ensemble virtual
	// time; since every member is admitted at time zero, a member's
	// makespan is its completion time.
	Result *engine.Result
}

// SiteUsage summarizes one platform of the pool after the run.
type SiteUsage struct {
	// Site is the platform name.
	Site string
	// Slots is the configured slot count.
	Slots int
	// MaxBusySlots is the high-water mark of concurrently busy slots.
	MaxBusySlots int
	// BusySlotSeconds and CapacitySlotSeconds integrate occupancy and
	// capacity over virtual time.
	BusySlotSeconds, CapacitySlotSeconds float64
	// Outages counts fault-imposed full outages of the site, and
	// DowntimeSeconds integrates them over virtual time (an outage still
	// open at end of run is counted up to the last event).
	Outages         int
	DowntimeSeconds float64
}

// Result is the outcome of one ensemble run.
type Result struct {
	// Makespan is the ensemble wall time: the time of the last event.
	Makespan float64
	// Workflows lists member results in admission order.
	Workflows []WorkflowResult
	// Sites lists per-site usage, sorted by site name.
	Sites []SiteUsage
}

// Report renders the result as a stats.EnsembleReport under the given
// policy label.
func (r *Result) Report(policy string) *stats.EnsembleReport {
	rep := &stats.EnsembleReport{Policy: policy, Makespan: r.Makespan}
	for _, s := range r.Sites {
		util := 0.0
		if s.CapacitySlotSeconds > 0 {
			util = s.BusySlotSeconds / s.CapacitySlotSeconds
		}
		rep.Sites = append(rep.Sites, stats.EnsembleSite{
			Site:            s.Site,
			Slots:           s.Slots,
			MaxBusySlots:    s.MaxBusySlots,
			BusySlotSeconds: s.BusySlotSeconds,
			Utilization:     util,
			Outages:         s.Outages,
			DowntimeSeconds: s.DowntimeSeconds,
		})
		rep.TotalOutages += s.Outages
	}
	var sum float64
	for _, w := range r.Workflows {
		res := w.Result
		rep.Workflows = append(rep.Workflows, stats.EnsembleWorkflow{
			Name:      w.Name,
			Priority:  w.Priority,
			Success:   res.Success,
			Makespan:  res.Makespan,
			Jobs:      len(res.Completed) + len(res.Unfinished),
			Attempts:  res.Log.Len(),
			Retries:   res.Retries,
			Evictions: res.Evictions,
			Failovers: res.Failovers,
			Backoffs:  res.Backoffs,
		})
		sum += res.Makespan
		rep.TotalRetries += res.Retries
		rep.TotalEvictions += res.Evictions
		rep.TotalFailovers += res.Failovers
		rep.TotalBackoffs += res.Backoffs
	}
	if len(r.Workflows) > 0 {
		rep.MeanWorkflowMakespan = sum / float64(len(r.Workflows))
	}
	return rep
}

// WorkflowSource is an unplanned ensemble member for PlanAll.
type WorkflowSource struct {
	// Name labels the workflow.
	Name string
	// Abstract is the workflow to plan.
	Abstract *dax.Workflow
	// Priority, RetryLimit and MaxActive carry over to the Spec.
	Priority, RetryLimit, MaxActive int
}

// PlanOptions configures PlanAll.
type PlanOptions struct {
	// Sites are the target sites for every member.
	Sites []string
	// Policy is the site-selection policy name (planner.PolicyNames).
	Policy string
	// AddStageIn synthesizes per-site stage-in jobs for external inputs
	// (requires replicas to be registered for them).
	AddStageIn bool
	// Cluster, when enabled, runs the post-planning clustering pass on
	// every member plan (planner.Cluster).
	Cluster planner.ClusterOptions
	// Failover gives every member a cross-site retry policy over the
	// target sites (planner.Failover), so jobs evicted on one pool site
	// are re-resolved and resubmitted to a sibling.
	Failover bool
	// Workers bounds planning parallelism (<= 0 means all CPUs).
	Workers int
}

// PlanAll maps every source onto the target sites under a fresh instance
// of the named policy, fanning the independent planning runs across the
// shared worker pool. Results are identical for any worker count: each
// member gets its own policy state, so plans do not depend on planning
// order.
func PlanAll(srcs []WorkflowSource, cats planner.Catalogs, opts PlanOptions) ([]Spec, error) {
	specs := make([]Spec, len(srcs))
	err := pool.ForEach(opts.Workers, len(srcs), func(i int) error {
		pol, err := planner.NewPolicy(opts.Policy)
		if err != nil {
			return err
		}
		p, err := planner.NewMulti(srcs[i].Abstract, cats, planner.MultiOptions{
			Sites:      opts.Sites,
			Policy:     pol,
			AddStageIn: opts.AddStageIn,
		})
		if err != nil {
			return fmt.Errorf("ensemble: planning %q: %w", srcs[i].Name, err)
		}
		if opts.Cluster.Enabled() {
			p, err = planner.Cluster(p, opts.Cluster)
			if err != nil {
				return fmt.Errorf("ensemble: clustering %q: %w", srcs[i].Name, err)
			}
		}
		specs[i] = Spec{
			Name:       srcs[i].Name,
			Plan:       p,
			Priority:   srcs[i].Priority,
			RetryLimit: srcs[i].RetryLimit,
			MaxActive:  srcs[i].MaxActive,
		}
		if opts.Failover {
			fo, err := planner.NewFailover(cats, opts.Sites)
			if err != nil {
				return fmt.Errorf("ensemble: failover for %q: %w", srcs[i].Name, err)
			}
			specs[i].Retry = fo.Resite
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return specs, nil
}

// tagged is a platform event attributed to a member workflow.
type tagged struct {
	wf int
	ev engine.Event
}

// ctrl is a message from a member goroutine to the driver: either a yield
// (parked in Next, waiting for an event) or completion.
type ctrl struct {
	wf       int
	finished bool
	res      *engine.Result
	err      error
}

// held is a submission waiting for global in-flight capacity.
type held struct {
	wf      int
	job     *planner.Job
	attempt int
	prio    int
	seq     int
}

// holdQueue orders held submissions by member priority (higher first),
// breaking ties by submission sequence (FIFO).
type holdQueue []*held

func (q holdQueue) Len() int { return len(q) }
func (q holdQueue) Less(i, j int) bool {
	if q[i].prio != q[j].prio {
		return q[i].prio > q[j].prio
	}
	return q[i].seq < q[j].seq
}
func (q holdQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *holdQueue) Push(x any)   { *q = append(*q, x.(*held)) }
func (q *holdQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// driver owns all shared ensemble state. The cooperative hand-off protocol
// guarantees at most one goroutine (the driver or exactly one member)
// touches it at a time: a member runs only between the driver's mailbox
// send and the member's next control send, during which the driver is
// blocked receiving.
type driver struct {
	pool    *platform.MultiExecutor
	specs   []Spec
	opts    Options
	control chan ctrl
	mailbox []chan engine.Event
	done    []bool

	queue    fifo.Queue[tagged]
	hold     holdQueue
	inflight int
	seq      int
}

// facade adapts the driver to engine.Executor for one member.
type facade struct {
	d  *driver
	wf int
}

func (f *facade) Submit(job *planner.Job, attempt int) { f.d.submit(f.wf, job, attempt) }

// SubmitAfter implements engine.DelayedSubmitter: the re-submission is
// scheduled on the pool's virtual clock and re-enters the driver's hold
// queue when it fires, so backoff delays and the global in-flight
// throttle compose. Safe under the hand-off protocol: the callback runs
// inside the driver's Step loop.
func (f *facade) SubmitAfter(job *planner.Job, attempt int, delay float64) {
	if delay <= 0 {
		f.Submit(job, attempt)
		return
	}
	f.d.pool.After(delay, func() { f.d.submit(f.wf, job, attempt) })
}

func (f *facade) Next() engine.Event {
	f.d.control <- ctrl{wf: f.wf}
	return <-f.d.mailbox[f.wf]
}

func (f *facade) Now() float64 { return f.d.pool.Now() }

// Recycle implements engine.RecordRecycler by routing the spent record
// back to the pool site that allocated it. Safe under the hand-off
// protocol: the engine recycles between Next calls, while the driver is
// blocked and the pool clock is not advancing.
func (f *facade) Recycle(r *kickstart.Record) { f.d.pool.Recycle(r) }

// submit holds the job and releases as much held work as global capacity
// allows.
func (d *driver) submit(wf int, job *planner.Job, attempt int) {
	heap.Push(&d.hold, &held{wf: wf, job: job, attempt: attempt, prio: d.specs[wf].Priority, seq: d.seq})
	d.seq++
	d.release()
}

// release submits held jobs to the platform pool while the global
// in-flight cap permits, highest member priority first.
func (d *driver) release() {
	for d.hold.Len() > 0 && (d.opts.MaxInFlight == 0 || d.inflight < d.opts.MaxInFlight) {
		h := heap.Pop(&d.hold).(*held)
		wf := h.wf
		d.pool.SubmitTagged(h.job, h.attempt, func(ev engine.Event) {
			d.queue.Push(tagged{wf: wf, ev: ev})
		})
		d.inflight++
	}
}

// Run executes the ensemble on the shared platform pool. Members are
// admitted in spec order at virtual time zero.
func Run(p *platform.MultiExecutor, specs []Spec, opts Options) (*Result, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("ensemble: no workflows")
	}
	names := make(map[string]bool, len(specs))
	for _, s := range specs {
		if s.Name == "" {
			return nil, fmt.Errorf("ensemble: workflow with empty name")
		}
		if names[s.Name] {
			return nil, fmt.Errorf("ensemble: duplicate workflow name %q", s.Name)
		}
		names[s.Name] = true
		if err := p.CheckPlan(s.Plan); err != nil {
			return nil, fmt.Errorf("ensemble: workflow %q: %w", s.Name, err)
		}
	}
	if opts.MaxInFlight < 0 {
		return nil, fmt.Errorf("ensemble: negative MaxInFlight %d", opts.MaxInFlight)
	}

	d := &driver{
		pool:    p,
		specs:   specs,
		opts:    opts,
		control: make(chan ctrl),
		mailbox: make([]chan engine.Event, len(specs)),
		done:    make([]bool, len(specs)),
	}
	results := make([]*engine.Result, len(specs))
	errs := make([]error, len(specs))
	active := 0

	finish := func(msg ctrl) {
		d.done[msg.wf] = true
		results[msg.wf] = msg.res
		errs[msg.wf] = msg.err
	}

	// Admit members one at a time: start the goroutine, then wait until
	// it parks in Next (or finishes), so exactly one goroutine is ever
	// runnable and the interleaving is fully deterministic.
	for w := range specs {
		d.mailbox[w] = make(chan engine.Event)
		w := w
		go func() {
			res, err := engine.Run(specs[w].Plan, &facade{d: d, wf: w}, engine.Options{
				RetryLimit: specs[w].RetryLimit,
				MaxActive:  specs[w].MaxActive,
				Retry:      specs[w].Retry,
				Backoff:    specs[w].Backoff,
				Aggregate:  opts.Aggregate,
			})
			d.control <- ctrl{wf: w, finished: true, res: res, err: err}
		}()
		msg := <-d.control
		if msg.finished {
			finish(msg)
		} else {
			active++
		}
	}

	for active > 0 {
		if d.queue.Len() == 0 {
			if !d.pool.Step() {
				return nil, fmt.Errorf("ensemble: deadlock: %d workflows active with no platform events", active)
			}
			continue
		}
		te := d.queue.Pop()
		d.inflight--
		d.release()
		if d.done[te.wf] {
			// The member engine already returned (failed run); its
			// straggler events are dropped.
			continue
		}
		d.mailbox[te.wf] <- te.ev
		msg := <-d.control
		if msg.finished {
			finish(msg)
			active--
		}
	}

	for w, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("ensemble: workflow %q: %w", specs[w].Name, err)
		}
	}

	out := &Result{Makespan: p.Now()}
	for w, s := range specs {
		out.Workflows = append(out.Workflows, WorkflowResult{
			Name:     s.Name,
			Priority: s.Priority,
			Result:   results[w],
		})
	}
	for _, name := range p.SiteNames() {
		site := p.Site(name)
		out.Sites = append(out.Sites, SiteUsage{
			Site:                name,
			Slots:               site.Config().Slots,
			MaxBusySlots:        site.MaxBusySlots(),
			BusySlotSeconds:     site.BusySlotSeconds(),
			CapacitySlotSeconds: site.CapacitySlotSeconds(),
			Outages:             site.Outages(),
			DowntimeSeconds:     site.DowntimeSeconds(),
		})
	}
	return out, nil
}
