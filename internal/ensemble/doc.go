// Package ensemble runs many workflows concurrently against a shared pool
// of simulated platforms — the role of the Pegasus Ensemble Manager. Each
// member workflow is driven by the ordinary meta-scheduler (engine.Run);
// the ensemble adds a global in-flight throttle across members and
// per-workflow priorities that decide which held job reaches the platform
// pool first when capacity frees up.
//
// Execution is deterministic: member engines run as coroutines that are
// resumed one at a time by a single driver, so for a fixed seed the
// interleaving — and therefore every statistic — is bit-identical across
// runs regardless of how many OS threads or planning workers are used.
package ensemble
