package ensemble

import (
	"bytes"
	"fmt"
	"testing"

	"pegflow/internal/catalog"
	"pegflow/internal/dax"
	"pegflow/internal/planner"
	"pegflow/internal/sim/platform"
)

// testCatalogs builds a two-site world: "alpha" has everything
// preinstalled, "beta" installs per job.
func testCatalogs(t *testing.T) planner.Catalogs {
	t.Helper()
	sc := catalog.NewSiteCatalog()
	for _, s := range []*catalog.Site{
		{Name: "alpha", Slots: 8, SpeedFactor: 1.0, SharedSoftware: true, StageInMBps: 100},
		{Name: "beta", Slots: 8, SpeedFactor: 1.5, Heterogeneous: true, StageInMBps: 20},
	} {
		if err := sc.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	tc := catalog.NewTransformationCatalog()
	for _, tr := range []string{"split", "run_cap3", "merge"} {
		if err := tc.Add(&catalog.Transformation{Name: tr, Site: "alpha", PFN: "/opt/" + tr, Installed: true}); err != nil {
			t.Fatal(err)
		}
		if err := tc.Add(&catalog.Transformation{Name: tr, Site: "beta", PFN: tr + ".tar.gz", InstallBytes: 10 << 20}); err != nil {
			t.Fatal(err)
		}
	}
	return planner.Catalogs{Sites: sc, Transformations: tc, Replicas: catalog.NewReplicaCatalog()}
}

func fanDAX(t *testing.T, name string, width int, runtime float64) *dax.Workflow {
	t.Helper()
	w := dax.New(name)
	w.NewJob("split", "split").AddOutput("chunks", 1000).
		SetProfile("pegasus", "runtime", "5")
	for i := 0; i < width; i++ {
		id := fmt.Sprintf("cap3_%03d", i)
		w.NewJob(id, "run_cap3").AddInput("chunks", 1000).
			AddOutput(fmt.Sprintf("j%03d", i), 100).
			SetProfile("pegasus", "runtime", fmt.Sprintf("%.1f", runtime))
		if err := w.AddDependency("split", id); err != nil {
			t.Fatal(err)
		}
	}
	w.NewJob("merge", "merge").SetProfile("pegasus", "runtime", "3")
	for i := 0; i < width; i++ {
		w.Job("merge").AddInput(fmt.Sprintf("j%03d", i), 100)
		if err := w.AddDependency(fmt.Sprintf("cap3_%03d", i), "merge"); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func testConfigs(seed uint64) []platform.Config {
	return []platform.Config{
		{
			Name: "alpha", Slots: 8, SubmitInterval: 0.1,
			DispatchMean: 2, DispatchCV: 0.3, SpeedFactor: 1.0, SpeedJitter: 0.05,
			Seed: seed,
		},
		{
			Name: "beta", Slots: 8, SubmitInterval: 0.2,
			DispatchMean: 10, DispatchCV: 0.8, SpeedFactor: 1.5, SpeedJitter: 0.3,
			SetupMean: 8, SetupCV: 0.4, SetupBytesPerSec: 10e6,
			EvictionRate: 1e-4,
			Seed:         seed,
		},
	}
}

func testSources(t *testing.T, n int) []WorkflowSource {
	t.Helper()
	srcs := make([]WorkflowSource, n)
	for i := range srcs {
		srcs[i] = WorkflowSource{
			Name:       fmt.Sprintf("wf%02d", i),
			Abstract:   fanDAX(t, fmt.Sprintf("wf%02d", i), 6+i%3, 20+float64(i)),
			Priority:   n - i,
			RetryLimit: 5,
		}
	}
	return srcs
}

func runEnsemble(t *testing.T, seed uint64, workers, maxInFlight int, policy string) (*Result, []Spec) {
	t.Helper()
	cats := testCatalogs(t)
	specs, err := PlanAll(testSources(t, 8), cats, PlanOptions{Sites: []string{"alpha", "beta"}, Policy: policy, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := platform.NewMultiExecutor(testConfigs(seed))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(pool, specs, Options{MaxInFlight: maxInFlight})
	if err != nil {
		t.Fatal(err)
	}
	return res, specs
}

// Acceptance: an ensemble of 8 workflows across 2 sites is deterministic
// for a fixed seed — byte-identical JSON stats across repeated runs and
// across planning worker counts.
func TestEnsembleDeterministic(t *testing.T) {
	for _, policy := range planner.PolicyNames() {
		var first []byte
		for run, workers := range []int{1, 4, 8} {
			res, _ := runEnsemble(t, 42, workers, 24, policy)
			var buf bytes.Buffer
			if err := res.Report(policy).WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			if run == 0 {
				first = buf.Bytes()
				continue
			}
			if !bytes.Equal(first, buf.Bytes()) {
				t.Fatalf("policy %s: run with %d workers differs from first run:\n%s\n---\n%s",
					policy, workers, first, buf.Bytes())
			}
		}
	}
}

func TestEnsembleCompletesAllWorkflows(t *testing.T) {
	res, specs := runEnsemble(t, 7, 0, 0, planner.PolicyDataAware)
	if len(res.Workflows) != len(specs) {
		t.Fatalf("got %d workflow results, want %d", len(res.Workflows), len(specs))
	}
	for i, w := range res.Workflows {
		if !w.Result.Success {
			t.Errorf("workflow %s incomplete: unfinished %v", w.Name, w.Result.Unfinished)
		}
		want := specs[i].Plan.Graph.Len()
		if got := len(w.Result.Completed) + len(w.Result.Unfinished); got != want {
			t.Errorf("workflow %s: completed+unfinished = %d, want %d jobs", w.Name, got, want)
		}
		if w.Result.Makespan > res.Makespan {
			t.Errorf("workflow %s makespan %v exceeds ensemble makespan %v",
				w.Name, w.Result.Makespan, res.Makespan)
		}
	}
	if len(res.Sites) != 2 {
		t.Fatalf("sites = %d, want 2", len(res.Sites))
	}
	for _, s := range res.Sites {
		if s.BusySlotSeconds <= 0 {
			t.Errorf("site %s: no recorded occupancy", s.Site)
		}
		if s.CapacitySlotSeconds < s.BusySlotSeconds {
			t.Errorf("site %s: busy %v exceeds capacity integral %v",
				s.Site, s.BusySlotSeconds, s.CapacitySlotSeconds)
		}
	}
}

// The global throttle bounds concurrently busy slots across the pool.
func TestEnsembleGlobalThrottle(t *testing.T) {
	const cap = 3
	res, _ := runEnsemble(t, 11, 1, cap, planner.PolicyRoundRobin)
	for _, s := range res.Sites {
		// Per-site maxima are reached at different times, so only each
		// individual site is bounded by the global in-flight cap.
		if s.MaxBusySlots > cap {
			t.Errorf("site %s max busy slots = %d, want <= %d", s.Site, s.MaxBusySlots, cap)
		}
	}
	throttled := res.Makespan
	free, _ := runEnsemble(t, 11, 1, 0, planner.PolicyRoundRobin)
	if throttled <= free.Makespan {
		t.Errorf("throttled makespan %v not larger than unthrottled %v", throttled, free.Makespan)
	}
}

// Under a tight throttle, the higher-priority member's held jobs release
// first, so it finishes no later than an identical low-priority member.
func TestEnsemblePriorityOrdering(t *testing.T) {
	cats := testCatalogs(t)
	srcs := []WorkflowSource{
		{Name: "low", Abstract: fanDAX(t, "low", 8, 30), Priority: 1, RetryLimit: 5},
		{Name: "high", Abstract: fanDAX(t, "high", 8, 30), Priority: 10, RetryLimit: 5},
	}
	specs, err := PlanAll(srcs, cats, PlanOptions{Sites: []string{"alpha"}, Policy: planner.PolicyRoundRobin, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := platform.NewMultiExecutor(testConfigs(3)[:1])
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(pool, specs, Options{MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	low, high := res.Workflows[0].Result.Makespan, res.Workflows[1].Result.Makespan
	if high > low {
		t.Errorf("high-priority makespan %v exceeds low-priority %v", high, low)
	}
}

func TestEnsembleRejectsBadSpecs(t *testing.T) {
	cats := testCatalogs(t)
	specs, err := PlanAll(testSources(t, 2), cats, PlanOptions{Sites: []string{"alpha"}, Policy: planner.PolicyRoundRobin, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := platform.NewMultiExecutor(testConfigs(1)[:1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(pool, nil, Options{}); err == nil {
		t.Error("no error for empty ensemble")
	}
	dup := []Spec{specs[0], {Name: specs[0].Name, Plan: specs[1].Plan}}
	if _, err := Run(pool, dup, Options{}); err == nil {
		t.Error("no error for duplicate names")
	}
	// A plan targeting a site missing from the pool is rejected up front.
	multi, err := PlanAll(testSources(t, 1), cats, PlanOptions{Sites: []string{"alpha", "beta"}, Policy: planner.PolicyRoundRobin, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(pool, multi, Options{}); err == nil {
		t.Error("no error for plan targeting a site outside the pool")
	}
}

func TestPlanAllUnknownPolicy(t *testing.T) {
	cats := testCatalogs(t)
	if _, err := PlanAll(testSources(t, 1), cats, PlanOptions{Sites: []string{"alpha"}, Policy: "nope", Workers: 1}); err == nil {
		t.Error("no error for unknown policy")
	}
}

// runEnsembleOn is runEnsemble with the pool construction pluggable, so
// the per-site parallel pool can be driven through the full ensemble
// stack (hand-off facade, priority holds, backoff via pool.After).
func runEnsembleOn(t *testing.T, build func([]platform.Config) (*platform.MultiExecutor, error),
	opts Options) *Result {
	t.Helper()
	cats := testCatalogs(t)
	specs, err := PlanAll(testSources(t, 8), cats,
		PlanOptions{Sites: []string{"alpha", "beta"}, Policy: planner.PolicyDataAware})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := build(testConfigs(42))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(pool, specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEnsembleParallelPoolByteIdentical: the ensemble report produced on
// a per-site parallel pool is byte-identical to the serial pool's —
// including the constrained (MaxInFlight + backoff) path, which routes
// delayed re-submissions through boundary events on the pool clock.
func TestEnsembleParallelPoolByteIdentical(t *testing.T) {
	for _, opts := range []Options{{}, {MaxInFlight: 3}} {
		report := func(build func([]platform.Config) (*platform.MultiExecutor, error)) []byte {
			var buf bytes.Buffer
			if err := runEnsembleOn(t, build, opts).Report(planner.PolicyDataAware).WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		serial := report(platform.NewMultiExecutor)
		par := report(platform.NewParallelMultiExecutor)
		if !bytes.Equal(serial, par) {
			t.Errorf("MaxInFlight=%d: parallel-pool ensemble report diverged:\n%s\n---\n%s",
				opts.MaxInFlight, serial, par)
		}
	}
}
