package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CloneGate enforces the clone-before-mutate rule behind the keyed plan
// cache (PR 4): a *planner.Plan, *planner.Job, *dax.Workflow or *dax.Job
// handed out of a cache is an immutable shared master — mutating it
// corrupts every future retrieval. Mutation is therefore only legal in
// the defining packages (whose constructors and Clone methods build fresh
// values) and in an explicitly whitelisted set of functions that have
// been audited to operate on freshly cloned or freshly constructed
// values. Everything else must Clone first.
type CloneGate struct {
	// Protected lists the guarded named types as "pkg/path.Name".
	Protected []string
	// DefiningPkgs may mutate freely: the packages that own the types.
	DefiningPkgs []string
	// AllowedFuncs maps "pkg/path.FuncName" (or "pkg/path.Recv.Name") to
	// the justification for why its writes are safe (fresh clone or
	// under-construction value).
	AllowedFuncs map[string]string
}

func (*CloneGate) Name() string { return "clonegate" }
func (*CloneGate) Doc() string {
	return "forbid field writes through cached plan/DAX types outside whitelisted clone/constructor functions"
}

func (c *CloneGate) Run(prog *Program, report func(pos token.Position, key, message string)) error {
	protected := make(map[string]bool, len(c.Protected))
	for _, p := range c.Protected {
		protected[p] = true
	}
	for _, pkg := range prog.Module {
		if matchPath(pkg.Path, c.DefiningPkgs) {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if _, ok := c.AllowedFuncs[pkg.Path+"."+funcDisplayName(fd)]; ok {
					continue
				}
				c.checkFunc(prog, pkg, fd, protected, report)
			}
		}
	}
	return nil
}

func (c *CloneGate) checkFunc(prog *Program, pkg *Package, fd *ast.FuncDecl, protected map[string]bool, report func(pos token.Position, key, message string)) {
	flag := func(lhs ast.Expr) {
		if key, field := c.protectedWrite(pkg.Info, lhs, protected); key != "" {
			pos := prog.Fset.Position(lhs.Pos())
			report(pos, shortTypeKey(key)+"."+field,
				"write to "+shortTypeKey(key)+"."+field+" outside its defining package: cached masters are shared — Clone before mutating, or whitelist this function with a justification")
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				flag(lhs)
			}
		case *ast.IncDecStmt:
			flag(n.X)
		}
		return true
	})
}

// protectedWrite reports whether assigning through lhs mutates a
// protected value, returning the protected type key and the written
// field ("*" for whole-value stores through a pointer). It walks the LHS
// inward: an index or star step keeps the search going (writing p.Info[k]
// or *p mutates p's reachable state), a field selection on a protected
// base is the violation.
func (c *CloneGate) protectedWrite(info *types.Info, lhs ast.Expr, protected map[string]bool) (typeKey_, field string) {
	expr := ast.Unparen(lhs)
	for {
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			base := info.TypeOf(e.X)
			if base != nil {
				if k := typeKey(base); protected[k] {
					return k, e.Sel.Name
				}
			}
			expr = ast.Unparen(e.X)
		case *ast.IndexExpr:
			expr = ast.Unparen(e.X)
		case *ast.StarExpr:
			inner := info.TypeOf(e.X)
			if inner != nil {
				if k := typeKey(inner); protected[k] {
					return k, "*"
				}
			}
			expr = ast.Unparen(e.X)
		default:
			return "", ""
		}
	}
}

// shortTypeKey trims the module-internal prefix for readable finding keys:
// "pegflow/internal/planner.Job" -> "planner.Job".
func shortTypeKey(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}
