package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoLintsClean is the self-check the CI lint job mirrors: the full
// production suite, with the repo's committed allowlist, finds nothing in
// the repo itself. Any new finding here means either a real invariant
// violation or a needed (justified) allowlist entry.
func TestRepoLintsClean(t *testing.T) {
	root := moduleRoot(t)
	prog, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	allow, err := LoadAllowlist(filepath.Join(root, "lint.allow"))
	if err != nil {
		t.Fatal(err)
	}
	suite := &Suite{Analyzers: Analyzers(), Allow: allow}
	findings, err := suite.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("repo is not lint-clean: %s", f.String())
	}
}

// TestEscapeGuardsCoverLoadedPackages asserts every production guard
// names a package that actually exists, so renaming a kernel package
// cannot silently drop its coverage.
func TestEscapeGuardsCoverLoadedPackages(t *testing.T) {
	prog, err := Load(moduleRoot(t), "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range NewEscapeGate().Guards {
		if prog.Pkgs[g.Pkg] == nil {
			t.Errorf("escapegate guard names package %s, which ./... did not load", g.Pkg)
		}
	}
}

func writeAllow(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "lint.allow")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAllowlistParsing(t *testing.T) {
	t.Run("missing file is empty", func(t *testing.T) {
		al, err := LoadAllowlist(filepath.Join(t.TempDir(), "nope"))
		if err != nil || len(al.Entries) != 0 {
			t.Fatalf("got %v, %v", al.Entries, err)
		}
	})

	t.Run("entry without justification is rejected", func(t *testing.T) {
		path := writeAllow(t, "detsource internal/engine/local.go time.Now\n")
		if _, err := LoadAllowlist(path); err == nil || !strings.Contains(err.Error(), "justification") {
			t.Fatalf("want justification parse error, got %v", err)
		}
	})

	t.Run("wrong field count is rejected", func(t *testing.T) {
		path := writeAllow(t, "detsource time.Now -- why\n")
		if _, err := LoadAllowlist(path); err == nil {
			t.Fatal("want field-count parse error, got nil")
		}
	})

	t.Run("comments and blanks are skipped", func(t *testing.T) {
		path := writeAllow(t, "# header\n\ndetsource internal/engine/local.go time.Now -- wall clock\n")
		al, err := LoadAllowlist(path)
		if err != nil || len(al.Entries) != 1 {
			t.Fatalf("got %v, %v", al.Entries, err)
		}
		e := al.Entries[0]
		if e.Analyzer != "detsource" || e.Key != "time.Now" || e.Justification != "wall clock" {
			t.Fatalf("bad entry: %+v", e)
		}
	})
}

func TestAllowlistMatchingAndStaleness(t *testing.T) {
	al := &Allowlist{Path: "lint.allow", Entries: []*AllowEntry{
		{Analyzer: "detsource", File: "internal/engine/local.go", Key: "time.Now", Justification: "wall clock", line: 1},
		{Analyzer: "detsource", File: "internal/engine/local.go", Key: "time.Since", Justification: "wall clock", line: 2},
	}}
	f := Finding{Analyzer: "detsource", File: "internal/engine/local.go", Key: "time.Now"}
	if !al.permits(f) {
		t.Fatal("entry did not permit its matching finding")
	}
	if al.permits(Finding{Analyzer: "detrange", File: "internal/engine/local.go", Key: "time.Now"}) {
		t.Fatal("entry leaked across analyzers")
	}
	if al.permits(Finding{Analyzer: "detsource", File: "internal/sim/des/des.go", Key: "time.Now"}) {
		t.Fatal("entry leaked across files")
	}

	// time.Since never matched: stale when detsource ran, silent when not.
	stale := al.unused(map[string]bool{"detsource": true})
	if len(stale) != 1 || !strings.Contains(stale[0].Message, "time.Since") {
		t.Fatalf("want one stale finding for time.Since, got %v", stale)
	}
	if got := al.unused(map[string]bool{"detrange": true}); len(got) != 0 {
		t.Fatalf("stale reporting fired for a disabled analyzer: %v", got)
	}
}
