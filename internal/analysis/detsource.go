package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// DetSource forbids nondeterministic inputs inside the simulation
// boundary: wall-clock reads, the global math/rand source, environment
// variables, and fmt formatting of map values. A simulation cell must be
// a pure function of (scenario, seed) — the byte-identical-across-workers
// guarantee every golden test leans on — so any ambient input is a bug
// even when it happens to be harmless today. Legitimate uses (the
// real-time local executor) are excused in the allowlist file, each with
// a justification.
type DetSource struct {
	// Packages are the boundary package patterns ("..."-suffix subtrees
	// allowed).
	Packages []string
}

func (*DetSource) Name() string { return "detsource" }
func (*DetSource) Doc() string {
	return "forbid time.Now, global math/rand, os.Getenv and map-formatting fmt calls inside the simulation boundary"
}

// randConstructors are the math/rand functions that build seeded private
// generators — the deterministic way to use the package.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func (d *DetSource) Run(prog *Program, report func(pos token.Position, key, message string)) error {
	for _, pkg := range prog.Module {
		if !matchPath(pkg.Path, d.Packages) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				d.checkCall(prog, pkg, call, report)
				return true
			})
		}
	}
	return nil
}

func (d *DetSource) checkCall(prog *Program, pkg *Package, call *ast.CallExpr, report func(pos token.Position, key, message string)) {
	obj := calleeObj(pkg.Info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn) are fine
	}
	pos := prog.Fset.Position(call.Pos())
	path, name := fn.Pkg().Path(), fn.Name()
	key := path + "." + name
	switch path {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			report(pos, "time."+name, "time."+name+" inside the simulation boundary: virtual time must come from the DES clock, not the wall clock")
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[name] {
			report(pos, key, key+" uses the global process-wide source; build a seeded generator with "+path+".New instead")
		}
	case "os":
		switch name {
		case "Getenv", "LookupEnv", "Environ":
			report(pos, "os."+name, "os."+name+" inside the simulation boundary: environment reads make results machine-dependent")
		}
	case "fmt":
		d.checkFmtCall(prog, pkg, call, name, report)
	}
}

// formattedFmtFuncs maps fmt functions to the index of their format-string
// argument; unformatted print variants are handled separately.
var formattedFmtFuncs = map[string]int{
	"Sprintf": 0, "Printf": 0, "Errorf": 0, "Fprintf": 1, "Appendf": 1,
}

var unformattedFmtFuncs = map[string]bool{
	"Sprint": true, "Sprintln": true, "Print": true, "Println": true,
	"Fprint": true, "Fprintln": true,
}

// checkFmtCall flags fmt calls that format a map value: the %v rendering
// iterates the map, and although fmt sorts keys these strings routinely
// become cache keys or log lines whose stability must not hinge on fmt
// internals — the sim boundary builds keys explicitly instead.
func (d *DetSource) checkFmtCall(prog *Program, pkg *Package, call *ast.CallExpr, name string, report func(pos token.Position, key, message string)) {
	argStart := 0
	if idx, ok := formattedFmtFuncs[name]; ok {
		if len(call.Args) <= idx {
			return
		}
		tv, ok := pkg.Info.Types[call.Args[idx]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return
		}
		format := constant.StringVal(tv.Value)
		if !strings.Contains(format, "%v") && !strings.Contains(format, "%+v") && !strings.Contains(format, "%#v") {
			return
		}
		argStart = idx + 1
	} else if unformattedFmtFuncs[name] {
		// Fprint family: first arg is the writer, never the payload.
		if strings.HasPrefix(name, "F") {
			argStart = 1
		}
	} else {
		return
	}
	for _, arg := range call.Args[argStart:] {
		t := pkg.Info.TypeOf(arg)
		if t == nil {
			continue
		}
		if _, isMap := t.Underlying().(*types.Map); isMap {
			pos := prog.Fset.Position(call.Pos())
			report(pos, "fmt."+name+"(map)",
				"fmt."+name+" formats a map value inside the simulation boundary; render keys in an explicit deterministic order instead")
			return
		}
	}
}
