package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// slabMarker is the doc-comment marker that opts a type into copy
// checking.
const slabMarker = "//pegflow:slab"

// SlabCopy guards the zero-allocation kernel's ownership model. Types
// marked //pegflow:slab carry arena state — a slab of by-value entries
// plus a free list and generation counters (des.Simulation, des.Resource,
// fifo.Queue) — and a by-value copy silently aliases that state: both
// copies pop the same free slots, hand out colliding generations, and
// corrupt each other's heaps. The analyzer flags every construct that
// copies a marked type (or a struct embedding one by value): assignments
// reading an existing value, by-value parameters, results and receivers,
// and range clauses over slices of marked types. It is marker-driven, so
// adding protection to a new arena type is a one-line comment.
type SlabCopy struct{}

func (*SlabCopy) Name() string { return "slabcopy" }
func (*SlabCopy) Doc() string {
	return "flag by-value copies of //pegflow:slab arena types whose copy would alias the free list"
}

func (s *SlabCopy) Run(prog *Program, report func(pos token.Position, key, message string)) error {
	marked := markedTypes(prog)
	if len(marked) == 0 {
		return nil
	}
	cache := map[types.Type]bool{}
	isProtected := func(t types.Type) (string, bool) {
		return protectedSlabType(t, marked, cache, 0)
	}
	for _, pkg := range prog.Module {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					s.checkSignature(prog, pkg, n, isProtected, report)
				case *ast.AssignStmt:
					for i, rhs := range n.Rhs {
						// `_ = v` discards the copy; nothing aliases.
						if i < len(n.Lhs) {
							if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
								continue
							}
						}
						s.checkValueRead(prog, pkg, rhs, "assignment copies", isProtected, report)
					}
				case *ast.ValueSpec:
					for _, v := range n.Values {
						s.checkValueRead(prog, pkg, v, "assignment copies", isProtected, report)
					}
				case *ast.ReturnStmt:
					for _, r := range n.Results {
						s.checkValueRead(prog, pkg, r, "return copies", isProtected, report)
					}
				case *ast.RangeStmt:
					if n.Value != nil {
						if t := pkg.Info.TypeOf(n.Value); t != nil {
							if key, ok := isProtected(t); ok {
								pos := prog.Fset.Position(n.Value.Pos())
								report(pos, key, "range value copies slab type "+key+" per element; iterate by index or over pointers")
							}
						}
					}
				}
				return true
			})
		}
	}
	return nil
}

// checkSignature flags by-value slab params, results and receivers.
func (s *SlabCopy) checkSignature(prog *Program, pkg *Package, fd *ast.FuncDecl, isProtected func(types.Type) (string, bool), report func(pos token.Position, key, message string)) {
	check := func(fields *ast.FieldList, what string) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			t := pkg.Info.TypeOf(f.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if key, ok := isProtected(t); ok {
				pos := prog.Fset.Position(f.Type.Pos())
				report(pos, key, what+" of slab type "+key+" copies the arena and free list by value; use a pointer")
			}
		}
	}
	check(fd.Recv, "value receiver")
	check(fd.Type.Params, "by-value parameter")
	check(fd.Type.Results, "by-value result")
}

// checkValueRead flags expressions that read an existing slab value
// (identifier, field, index or deref) in a copying position. Fresh
// composite literals and zero values are fine: they alias nothing yet.
func (s *SlabCopy) checkValueRead(prog *Program, pkg *Package, expr ast.Expr, what string, isProtected func(types.Type) (string, bool), report func(pos token.Position, key, message string)) {
	e := ast.Unparen(expr)
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	t := pkg.Info.TypeOf(e)
	if t == nil {
		return
	}
	if key, ok := isProtected(t); ok {
		pos := prog.Fset.Position(e.Pos())
		report(pos, key, what+" slab type "+key+" by value, aliasing its arena and free list; use a pointer")
	}
}

// markedTypes collects every type declaration carrying the //pegflow:slab
// marker in its doc comment.
func markedTypes(prog *Program) map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	for _, pkg := range prog.Module {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if !hasMarker(ts.Doc) && !(len(gd.Specs) == 1 && hasMarker(gd.Doc)) {
						continue
					}
					if obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
						out[obj] = true
					}
				}
			}
		}
	}
	return out
}

func hasMarker(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), slabMarker) {
			return true
		}
	}
	return false
}

// protectedSlabType reports whether t is a marked type or a struct/array
// carrying one by value, returning a short display key. Pointers, slices
// and maps reference rather than carry, so they stop the recursion.
func protectedSlabType(t types.Type, marked map[*types.TypeName]bool, cache map[types.Type]bool, depth int) (string, bool) {
	if depth > 10 {
		return "", false
	}
	t = types.Unalias(t)
	if done, ok := cache[t]; ok && !done {
		return "", false
	}
	if n, ok := t.(*types.Named); ok {
		if marked[n.Origin().Obj()] {
			return shortTypeKey(typeKey(n)), true
		}
		cache[t] = false // cycle guard while we look inside
		key, ok := protectedSlabType(n.Underlying(), marked, cache, depth+1)
		delete(cache, t)
		if ok {
			// Report the outermost named carrier, not the inner field type.
			return shortTypeKey(typeKey(n)), true
		}
		return key, ok
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if key, ok := protectedSlabType(u.Field(i).Type(), marked, cache, depth+1); ok {
				return key, true
			}
		}
	case *types.Array:
		return protectedSlabType(u.Elem(), marked, cache, depth+1)
	}
	return "", false
}
