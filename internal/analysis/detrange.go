package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetRange guards the repo's first invariant — byte-identical output for a
// given (scenario, seed) regardless of worker count — at its most common
// failure point: Go map iteration order. A `range` over a map that builds
// output (appends rows, writes to an encoder or writer, or calls a local
// closure that does) emits in a different order every run unless the
// collected values are deterministically sorted afterwards. The analyzer
// accepts the canonical two-phase idiom (collect keys, sort, then emit)
// and flags everything else on the output-path packages.
type DetRange struct {
	// Packages are the output-path package patterns.
	Packages []string
}

func (*DetRange) Name() string { return "detrange" }
func (*DetRange) Doc() string {
	return "flag map iteration that builds output without a subsequent deterministic sort"
}

func (d *DetRange) Run(prog *Program, report func(pos token.Position, key, message string)) error {
	for _, pkg := range prog.Module {
		if !matchPath(pkg.Path, d.Packages) {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				d.checkFunc(prog, pkg, fd, report)
			}
		}
	}
	return nil
}

// rangeEffect describes what a map-range body does with the iteration.
type rangeEffect struct {
	kind string // "append", "write" or "closure"
	// target is the object appended to, when known — used to recognize a
	// later sort of the same slice.
	target types.Object
}

func (d *DetRange) checkFunc(prog *Program, pkg *Package, fd *ast.FuncDecl, report func(pos token.Position, key, message string)) {
	closures := localClosures(fd.Body, pkg.Info)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pkg.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		eff := bodyEffect(rs.Body, pkg.Info, closures, 2)
		if eff == nil {
			return true
		}
		if eff.target != nil && sortedAfter(fd.Body, rs, eff.target, pkg.Info) {
			return true
		}
		pos := prog.Fset.Position(rs.Pos())
		key := funcDisplayName(fd) + "." + eff.kind
		var what string
		switch eff.kind {
		case "append":
			what = "appends to a slice"
		case "write":
			what = "writes output"
		case "closure":
			what = "calls a closure that builds output"
		case "callback":
			what = "invokes a callback whose side effects the analyzer cannot see"
		}
		report(pos, key, "map iteration order is nondeterministic and the body "+what+
			" with no deterministic sort afterwards; collect keys, sort, then emit")
		return true
	})
}

// localClosures maps closure variables (`name := func(...) {...}`) to
// their bodies, so calls through them can be inspected for output effects.
func localClosures(body *ast.BlockStmt, info *types.Info) map[types.Object]*ast.FuncLit {
	out := map[types.Object]*ast.FuncLit{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
			if !ok {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					out[obj] = lit
				} else if obj := info.Uses[id]; obj != nil {
					out[obj] = lit
				}
			}
		}
		return true
	})
	return out
}

// writerMethod reports whether a method name smells like an output sink.
func writerMethod(name string) bool {
	switch name {
	case "Encode", "Print", "Printf", "Println", "Flush":
		return true
	}
	return len(name) >= 5 && name[:5] == "Write"
}

// bodyEffect scans a statement body for output-building effects. depth
// bounds closure-following recursion.
func bodyEffect(body ast.Node, info *types.Info, closures map[types.Object]*ast.FuncLit, depth int) *rangeEffect {
	var eff *rangeEffect
	ast.Inspect(body, func(n ast.Node) bool {
		if eff != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				if b, ok := calleeObj(info, call).(*types.Builtin); ok && b.Name() == "append" {
					e := &rangeEffect{kind: "append"}
					if i < len(n.Lhs) {
						if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
							if obj := info.Uses[id]; obj != nil {
								e.target = obj
							} else if obj := info.Defs[id]; obj != nil {
								e.target = obj
							}
						}
					}
					eff = e
					return false
				}
			}
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.SelectorExpr:
				if _, isMethod := info.Selections[fun]; isMethod && writerMethod(fun.Sel.Name) {
					eff = &rangeEffect{kind: "write"}
					return false
				}
				if obj := info.Uses[fun.Sel]; obj != nil {
					if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
						name := fn.Name()
						if len(name) >= 6 && name[:6] == "Fprint" {
							eff = &rangeEffect{kind: "write"}
							return false
						}
					}
				}
			case *ast.Ident:
				obj := info.Uses[fun]
				if obj == nil {
					return true
				}
				if lit, ok := closures[obj]; ok {
					if depth > 0 && bodyEffect(lit.Body, info, closures, depth-1) != nil {
						eff = &rangeEffect{kind: "closure"}
						return false
					}
					return true
				}
				// A call through a func-typed variable whose body we cannot
				// see (a callback parameter): its side effects happen once
				// per map element in nondeterministic order.
				if v, ok := obj.(*types.Var); ok {
					if _, isFunc := v.Type().Underlying().(*types.Signature); isFunc {
						eff = &rangeEffect{kind: "callback"}
						return false
					}
				}
			}
		}
		return true
	})
	return eff
}

// sortedAfter reports whether some statement after rs (in any block of the
// function that contains rs) sorts the append target.
func sortedAfter(funcBody *ast.BlockStmt, rs *ast.RangeStmt, target types.Object, info *types.Info) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		idx := -1
		for i, st := range block.List {
			if st == rs {
				idx = i
				break
			}
		}
		if idx < 0 {
			return true
		}
		for _, st := range block.List[idx+1:] {
			if stmtSortsTarget(st, target, info) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// stmtSortsTarget reports whether the statement calls a sort.* or
// slices.Sort* function with the target slice as an argument.
func stmtSortsTarget(st ast.Stmt, target types.Object, info *types.Info) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := calleeObj(info, call).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == target {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
