package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// scratchModule materializes a throwaway module so Load's failure modes
// can be exercised without checking broken Go files into the repo.
func scratchModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module scratch\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadParseError(t *testing.T) {
	dir := scratchModule(t, map[string]string{
		"a.go": "package scratch\n\nfunc broken( {\n",
	})
	_, err := Load(dir, "./...")
	if err == nil {
		t.Fatal("Load succeeded on a module with a syntax error")
	}
	if !strings.Contains(err.Error(), "analysis:") {
		t.Errorf("error %q does not carry the analysis: prefix", err)
	}
}

func TestLoadTypeCheckError(t *testing.T) {
	dir := scratchModule(t, map[string]string{
		"a.go": "package scratch\n\nvar x = undefinedIdent\n",
	})
	_, err := Load(dir, "./...")
	if err == nil {
		t.Fatal("Load succeeded on a module that does not type-check")
	}
	if !strings.Contains(err.Error(), "type-checking") {
		t.Errorf("error %q does not identify the type-check phase", err)
	}
}

func TestLoadNonexistentPattern(t *testing.T) {
	dir := scratchModule(t, map[string]string{
		"a.go": "package scratch\n",
	})
	_, err := Load(dir, "./no/such/dir")
	if err == nil {
		t.Fatal("Load succeeded on a pattern matching nothing")
	}
}

func TestLoadEmptyModule(t *testing.T) {
	dir := scratchModule(t, map[string]string{})
	_, err := Load(dir, "./...")
	if err == nil {
		t.Fatal("Load succeeded on a module with no Go files")
	}
	if !strings.Contains(err.Error(), "no module packages matched") {
		t.Errorf("error %q does not report the empty match", err)
	}
}
