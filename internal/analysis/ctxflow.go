package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlow enforces context plumbing on the request path. In the
// configured packages (the serve/scenario tier), a function that
// receives a context — a context.Context parameter or an *http.Request
// — must thread it: calling context.Background() or context.TODO()
// there severs cancellation from the caller, which is precisely the
// bug class behind PR 7's leaked gate tokens. Two shapes of
// unobservable blocking are flagged alongside:
//
//   - a bare channel send/receive in a context-receiving function (it
//     cannot be interrupted; wrap it in a select with ctx.Done()), and
//   - a blocking select (no default case) with no ctx.Done() arm in
//     any function where a context is in scope, including closures
//     that capture one.
//
// The checks are syntactic per function: closures are independent
// functions, so a deferred `func() { <-gate }` that captures no
// context stays legal (it releases a token and must not be
// cancelable).
type CtxFlow struct {
	// Packages restricts checking to the request path; patterns as in
	// matchPath.
	Packages []string
}

func (*CtxFlow) Name() string { return "ctxflow" }
func (*CtxFlow) Doc() string {
	return "flag dropped contexts and unobservable blocking on the serve/scenario request path"
}

func (c *CtxFlow) Run(prog *Program, report func(pos token.Position, key, message string)) error {
	for _, pkg := range prog.Module {
		if !matchPath(pkg.Path, c.Packages) {
			continue
		}
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					c.checkFunc(prog, pkg, fd.Type, fd.Body, report)
				}
			}
			ast.Inspect(file, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					c.checkFunc(prog, pkg, fl.Type, fl.Body, report)
				}
				return true
			})
		}
	}
	return nil
}

func (c *CtxFlow) checkFunc(prog *Program, pkg *Package, ft *ast.FuncType, body *ast.BlockStmt, report func(pos token.Position, key, message string)) {
	receivesCtx := c.signatureReceivesContext(pkg, ft)
	ctxInScope := receivesCtx || referencesContext(pkg, body)
	if !ctxInScope {
		return
	}
	// Channel operations managed by a select are judged via the select
	// itself, not as bare operations.
	selectOps := map[ast.Node]bool{}
	collect := func(sel *ast.SelectStmt) {
		for _, cl := range sel.Body.List {
			cc := cl.(*ast.CommClause)
			switch comm := cc.Comm.(type) {
			case *ast.SendStmt:
				selectOps[comm] = true
			case *ast.ExprStmt:
				selectOps[ast.Unparen(comm.X)] = true
			case *ast.AssignStmt:
				if len(comm.Rhs) == 1 {
					selectOps[ast.Unparen(comm.Rhs[0])] = true
				}
			}
		}
	}
	walkFunc(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.SelectStmt:
			collect(n)
			if selectHasDefault(n) {
				return
			}
			if !c.selectHasDoneCase(pkg, n) {
				report(prog.Fset.Position(n.Pos()), "select",
					"blocking select with a context in scope has no ctx.Done() case; cancellation cannot interrupt it")
			}
		case *ast.SendStmt:
			if receivesCtx && !selectOps[n] {
				report(prog.Fset.Position(n.Pos()), "send",
					"bare channel send in a context-receiving function cannot observe cancellation; use a select with ctx.Done()")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && receivesCtx && !selectOps[n] {
				report(prog.Fset.Position(n.Pos()), "recv",
					"bare channel receive in a context-receiving function cannot observe cancellation; use a select with ctx.Done()")
			}
		case *ast.CallExpr:
			obj := calleeObj(pkg.Info, n)
			if receivesCtx && (isPkgFunc(obj, "context", "Background") || isPkgFunc(obj, "context", "TODO")) {
				report(prog.Fset.Position(n.Pos()), "context."+obj.Name(),
					"function already receives a context; thread it instead of starting a fresh context."+obj.Name()+"()")
			}
		}
	})
}

// signatureReceivesContext reports whether the function's parameters
// include a context.Context or an *http.Request (whose Context() is
// the request's lifetime).
func (c *CtxFlow) signatureReceivesContext(pkg *Package, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, p := range ft.Params.List {
		t := pkg.Info.TypeOf(p.Type)
		if t == nil {
			continue
		}
		if k := typeKey(t); k == "context.Context" || k == "net/http.Request" {
			return true
		}
	}
	return false
}

// referencesContext reports whether the body mentions any
// context.Context-typed identifier (including captured ones), without
// descending into nested function literals.
func referencesContext(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	walkFunc(body, func(n ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return
		}
		obj := pkg.Info.Uses[id]
		if obj == nil {
			return
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return
		}
		if typeKey(obj.Type()) == "context.Context" {
			found = true
		}
	})
	return found
}

// selectHasDoneCase reports whether any comm clause receives from
// <-x.Done() with x a context.Context.
func (c *CtxFlow) selectHasDoneCase(pkg *Package, sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		cc := cl.(*ast.CommClause)
		var recv ast.Expr
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			recv = comm.X
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				recv = comm.Rhs[0]
			}
		}
		un, ok := ast.Unparen(recv).(*ast.UnaryExpr)
		if !ok || un.Op != token.ARROW {
			continue
		}
		call, ok := ast.Unparen(un.X).(*ast.CallExpr)
		if !ok {
			continue
		}
		selExpr, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || selExpr.Sel.Name != "Done" {
			continue
		}
		if t := pkg.Info.TypeOf(selExpr.X); t != nil && typeKey(t) == "context.Context" {
			return true
		}
	}
	return false
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		if cl.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

// walkFunc visits every node of one function body without entering
// nested function literals (they are checked as their own functions).
func walkFunc(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
