package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path (e.g. "pegflow/internal/sim/des").
	Path string
	// Dir is the directory holding the package sources.
	Dir string
	// Files are the parsed non-test Go files, in go list order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds full type information. It is populated only for module
	// packages (Standard == false); dependency packages carry nil Info to
	// bound memory.
	Info *types.Info
	// Standard marks GOROOT packages.
	Standard bool
}

// Program is a loaded module: every requested package plus its transitive
// dependencies, type-checked against a shared FileSet.
type Program struct {
	Fset *token.FileSet
	// Pkgs maps import path to package, for the full dependency closure.
	Pkgs map[string]*Package
	// Module lists the non-Standard packages in go list (dependency)
	// order — the packages analyzers run over.
	Module []*Package
	// Dir is the directory Load resolved patterns from (the module root
	// for "./..." invocations).
	Dir string
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
	Error      *struct{ Err string }
	DepsErrors []struct{ Err string }
}

// Load enumerates patterns with `go list -deps -json` from dir, parses
// every package in the closure and type-checks them in dependency order.
// CGO is disabled so cgo-variant files never enter the parse set; the
// repo itself is pure Go, so analysis results are identical.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	prog := &Program{
		Fset: token.NewFileSet(),
		Pkgs: make(map[string]*Package),
		Dir:  dir,
	}
	imp := &progImporter{prog: prog, fallback: importer.Default()}
	sizes := types.SizesFor("gc", runtime.GOARCH)

	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.ImportPath == "unsafe" {
			prog.Pkgs["unsafe"] = &Package{Path: "unsafe", Types: types.Unsafe, Standard: true}
			continue
		}
		pkg := &Package{Path: lp.ImportPath, Dir: lp.Dir, Standard: lp.Standard}
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(prog.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: %v", err)
			}
			pkg.Files = append(pkg.Files, f)
		}
		if !lp.Standard {
			pkg.Info = &types.Info{
				Types:      make(map[ast.Expr]types.TypeAndValue),
				Defs:       make(map[*ast.Ident]types.Object),
				Uses:       make(map[*ast.Ident]types.Object),
				Selections: make(map[*ast.SelectorExpr]*types.Selection),
				Scopes:     make(map[ast.Node]*types.Scope),
				Implicits:  make(map[ast.Node]types.Object),
			}
		}
		conf := types.Config{Importer: imp, Sizes: sizes}
		tpkg, err := conf.Check(lp.ImportPath, prog.Fset, pkg.Files, pkg.Info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, err)
		}
		pkg.Types = tpkg
		prog.Pkgs[lp.ImportPath] = pkg
		if !lp.Standard {
			prog.Module = append(prog.Module, pkg)
		}
	}
	if len(prog.Module) == 0 {
		return nil, fmt.Errorf("analysis: no module packages matched %s", strings.Join(patterns, " "))
	}
	return prog, nil
}

// progImporter resolves imports against the already-checked closure.
// `go list -deps` emits dependencies before dependents, so by the time a
// package is checked every import is present. The fallback importer is
// only consulted for paths outside the closure (it should never fire for
// a -deps load, but keeps errors comprehensible if it does).
type progImporter struct {
	prog     *Program
	fallback types.Importer
}

func (i *progImporter) Import(path string) (*types.Package, error) {
	if p, ok := i.prog.Pkgs[path]; ok {
		return p.Types, nil
	}
	// GOROOT-vendored dependencies (golang.org/x/...) are listed by the
	// go command under a "vendor/" prefix, but imported by their
	// unprefixed path.
	if p, ok := i.prog.Pkgs["vendor/"+path]; ok {
		return p.Types, nil
	}
	if i.fallback != nil {
		if p, err := i.fallback.Import(path); err == nil {
			return p, nil
		}
	}
	return nil, fmt.Errorf("package %q not in dependency closure", path)
}
