// Package analysis is pegflow's project-specific static-analysis suite —
// the mechanical enforcement of the three invariants every PR so far has
// defended by hand: byte-identical output across worker counts
// (determinism), clone-before-mutate on cached plan/DAX masters, and a
// zero-allocation simulation kernel.
//
// The package is built purely on the standard library (go/parser,
// go/types, and a `go list`-driven package loader) so the module keeps its
// zero-dependency rule; there is no golang.org/x/tools import anywhere.
// Five analyzers run over the fully type-checked repo:
//
//   - detrange: flags `range` over a map whose body builds output
//     (appends, writes to an encoder/writer, or calls a closure that
//     does) without a subsequent deterministic sort, in the packages on
//     the output path.
//   - detsource: forbids wall-clock, global math/rand, environment reads
//     and map-formatting fmt calls inside the simulation boundary, with
//     an explicit allowlist file for the few legitimate uses.
//   - clonegate: forbids assignments through *planner.Plan, *planner.Job,
//     *dax.Workflow or *dax.Job outside the defining packages and a
//     justified whitelist of clone/constructor functions, keeping cached
//     masters immutable.
//   - slabcopy: flags by-value copies of types marked //pegflow:slab
//     (arena/free-list carriers and types that embed them), where a copy
//     would alias the free list.
//   - escapegate: runs `go build -gcflags=-m` and asserts that a declared
//     list of hot kernel functions has zero heap escapes outside panic
//     paths, generalizing the TestAllocs gates to the whole kernel.
//
// The cmd/pegflow-lint binary drives the suite; docs/LINTING.md documents
// each analyzer, the invariant it guards, and the allowlist workflow.
package analysis
