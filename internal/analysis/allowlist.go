package analysis

import (
	"bufio"
	"fmt"
	"os"
	"strings"
)

// AllowEntry is one justified suppression.
type AllowEntry struct {
	// Analyzer is the analyzer the entry applies to.
	Analyzer string
	// File is a slash-separated path suffix the finding's file must end
	// with (normally the module-relative path).
	File string
	// Key must equal the finding's Key (e.g. "time.Now").
	Key string
	// Justification explains why the use is legitimate. Required: an
	// entry without a reason is a parse error.
	Justification string

	line int
	used bool
}

// Allowlist is a parsed allowlist file. The format is line-oriented:
//
//	# comment
//	<analyzer> <file-suffix> <key> -- <justification>
//
// e.g.
//
//	detsource internal/engine/local.go time.Now -- real-time executor measures wall clock
//
// Keys are position-independent so entries survive unrelated edits, and
// entries that stop matching anything are themselves reported as findings
// (see Suite.Run).
type Allowlist struct {
	Path    string
	Entries []*AllowEntry
}

// LoadAllowlist parses the allowlist at path. A missing file yields an
// empty allowlist, so repos without exemptions need no file at all.
func LoadAllowlist(path string) (*Allowlist, error) {
	al := &Allowlist{Path: path}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return al, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		spec, just, ok := strings.Cut(line, " -- ")
		if !ok || strings.TrimSpace(just) == "" {
			return nil, fmt.Errorf("%s:%d: allowlist entry needs a ' -- justification'", path, lineno)
		}
		fields := strings.Fields(spec)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: want '<analyzer> <file> <key> -- <justification>', got %d fields", path, lineno, len(fields))
		}
		al.Entries = append(al.Entries, &AllowEntry{
			Analyzer:      fields[0],
			File:          fields[1],
			Key:           fields[2],
			Justification: strings.TrimSpace(just),
			line:          lineno,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return al, nil
}

// permits reports whether the finding matches an entry, marking the entry
// used.
func (al *Allowlist) permits(f Finding) bool {
	for _, e := range al.Entries {
		if e.Analyzer != f.Analyzer || e.Key != f.Key {
			continue
		}
		if f.File == e.File || strings.HasSuffix(f.File, "/"+e.File) {
			e.used = true
			return true
		}
	}
	return false
}

// unused returns a finding per entry that never matched, restricted to
// analyzers that actually ran (disabling an analyzer must not flag its
// entries as stale).
func (al *Allowlist) unused(enabled map[string]bool) []Finding {
	var out []Finding
	for _, e := range al.Entries {
		if e.used || !enabled[e.Analyzer] {
			continue
		}
		out = append(out, Finding{
			Analyzer: "allowlist",
			File:     al.Path,
			Line:     e.line,
			Col:      1,
			Key:      e.Analyzer + "/" + e.Key,
			Message:  fmt.Sprintf("stale allowlist entry: no %s finding matches %s %s", e.Analyzer, e.File, e.Key),
		})
	}
	return out
}
