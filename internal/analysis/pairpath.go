package analysis

import (
	"fmt"
	"go/ast"
	"go/token"

	"pegflow/internal/analysis/cfg"
)

// PairPath enforces acquire/release pairing along every non-panic
// control-flow path: sync.Mutex.Lock must reach Unlock, RLock must
// reach RUnlock (a plain Unlock does not release a read hold),
// WaitGroup.Add must reach Done, and a send into a //pegflow:token
// semaphore channel (the cell gate, the in-flight request slots) must
// reach the receive that returns the slot. The classic bug this kills
// is the early-return leak: acquire, then a later `if err != nil {
// return err }` added between acquire and release.
//
// Releases count in three forms: a direct release on the path, a
// `defer` that performs the release (from the defer statement onward
// the release is guaranteed on every exit, panics included), and a
// `go` statement whose function literal performs it (the
// `wg.Add(1); go func() { defer wg.Done() }()` idiom hands the
// obligation to the spawned goroutine). Paths that end in panic or
// os.Exit are exempt — the process is going down anyway.
type PairPath struct{}

func (*PairPath) Name() string { return "pairpath" }
func (*PairPath) Doc() string {
	return "flag Lock/Add/token acquires that can return without reaching their paired release"
}

// pairMode separates the pairing families so a mismatched release
// (RLock closed by Unlock) cannot satisfy the acquire.
type pairMode int

const (
	pairExcl pairMode = iota
	pairRead
	pairWG
	pairToken
)

type pairKey struct {
	holdKey
	mode pairMode
}

// acquire records where an obligation was created, for reporting.
type acquire struct {
	pos  token.Pos
	desc string
}

// pairFact maps open obligations to their acquire site. Union merge:
// leaked on ANY path is a finding; the earliest acquire position wins
// so reports are deterministic.
type pairFact map[pairKey]acquire

func (*PairPath) mergeFacts(a, b pairFact) pairFact {
	out := make(pairFact, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if have, ok := out[k]; !ok || v.pos < have.pos {
			out[k] = v
		}
	}
	return out
}

func equalPair(a, b pairFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func (p *PairPath) Run(prog *Program, report func(pos token.Position, key, message string)) error {
	m := collectConcMarkers(prog)
	for _, pkg := range prog.Module {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					p.checkFunc(prog, pkg, m, fd.Body, report)
				}
			}
			ast.Inspect(file, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					p.checkFunc(prog, pkg, m, fl.Body, report)
				}
				return true
			})
		}
	}
	return nil
}

func (p *PairPath) checkFunc(prog *Program, pkg *Package, m *concMarkers, body *ast.BlockStmt, report func(pos token.Position, key, message string)) {
	graph := cfg.Build(body)
	in := cfg.Forward(graph, pairFact{}, p.mergeFacts, equalPair, func(blk *cfg.Block, f pairFact) pairFact {
		for _, n := range blk.Nodes {
			f = p.step(pkg, m, f, n)
		}
		return f
	})
	leaked, reached := in[graph.Exit]
	if !reached {
		return
	}
	// Deterministic order: by acquire position.
	keys := make([]pairKey, 0, len(leaked))
	for k := range leaked {
		keys = append(keys, k)
	}
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if leaked[keys[j]].pos < leaked[keys[i]].pos {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	for _, k := range keys {
		acq := leaked[k]
		report(prog.Fset.Position(acq.pos), k.holdKey.String(),
			fmt.Sprintf("%s is not released on every non-panic path to return; release before each return or use defer", acq.desc))
	}
}

// step applies one node's acquire/release effects.
func (p *PairPath) step(pkg *Package, m *concMarkers, f pairFact, n ast.Node) pairFact {
	switch n := n.(type) {
	case *ast.DeferStmt:
		// The registered call runs on every exit from here on: its
		// releases discharge obligations.
		return p.kill(pkg, m, f, releaseEffects(pkg, m, n.Call))
	case *ast.GoStmt:
		// Releases inside the spawned goroutine discharge the
		// obligation by handing it off (wg.Add / go func(){defer
		// wg.Done()} and token-returning workers).
		if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
			return p.kill(pkg, m, f, releasesInBody(pkg, m, fl.Body))
		}
		return f
	case *ast.SendStmt:
		if key, ok := m.tokenChan(pkg.Info, n.Chan); ok {
			return p.gen(f, pairKey{holdKey: key, mode: pairToken}, n.Pos(), fmt.Sprintf("token acquired by send into %s", key))
		}
		return f
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if c.Op == token.ARROW {
				if key, ok := m.tokenChan(pkg.Info, c.X); ok {
					f = p.kill(pkg, m, f, []pairKey{{holdKey: key, mode: pairToken}})
				}
			}
		case *ast.CallExpr:
			f = p.stepCall(pkg, f, c)
		}
		return true
	})
	return f
}

func (p *PairPath) stepCall(pkg *Package, f pairFact, call *ast.CallExpr) pairFact {
	op, recv := syncCall(pkg.Info, call)
	if op == opNone {
		return f
	}
	key, ok := syncKey(pkg.Info, recv)
	if !ok {
		return f
	}
	switch op {
	case opLock:
		return p.gen(f, pairKey{holdKey: key, mode: pairExcl}, call.Pos(), key.String()+".Lock()")
	case opRLock:
		return p.gen(f, pairKey{holdKey: key, mode: pairRead}, call.Pos(), key.String()+".RLock()")
	case opWGAdd:
		return p.gen(f, pairKey{holdKey: key, mode: pairWG}, call.Pos(), key.String()+".Add()")
	case opUnlock:
		return p.killOne(f, pairKey{holdKey: key, mode: pairExcl})
	case opRUnlock:
		return p.killOne(f, pairKey{holdKey: key, mode: pairRead})
	case opWGDone:
		return p.killOne(f, pairKey{holdKey: key, mode: pairWG})
	}
	return f
}

func (p *PairPath) gen(f pairFact, k pairKey, pos token.Pos, desc string) pairFact {
	out := make(pairFact, len(f)+1)
	for key, v := range f {
		out[key] = v
	}
	if have, ok := out[k]; !ok || pos < have.pos {
		out[k] = acquire{pos: pos, desc: desc}
	}
	return out
}

func (p *PairPath) killOne(f pairFact, k pairKey) pairFact {
	if _, ok := f[k]; !ok {
		return f
	}
	out := make(pairFact, len(f))
	for key, v := range f {
		if key != k {
			out[key] = v
		}
	}
	return out
}

func (p *PairPath) kill(pkg *Package, m *concMarkers, f pairFact, keys []pairKey) pairFact {
	for _, k := range keys {
		f = p.killOne(f, k)
	}
	return f
}

// releaseEffects lists the obligations a deferred call discharges:
// either a direct release call, or every release inside a deferred
// function literal.
func releaseEffects(pkg *Package, m *concMarkers, call *ast.CallExpr) []pairKey {
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		return releasesInBody(pkg, m, fl.Body)
	}
	op, recv := syncCall(pkg.Info, call)
	if op == opNone {
		return nil
	}
	key, ok := syncKey(pkg.Info, recv)
	if !ok {
		return nil
	}
	switch op {
	case opUnlock:
		return []pairKey{{holdKey: key, mode: pairExcl}}
	case opRUnlock:
		return []pairKey{{holdKey: key, mode: pairRead}}
	case opWGDone:
		return []pairKey{{holdKey: key, mode: pairWG}}
	}
	return nil
}

// releasesInBody collects every release performed anywhere in a
// function body (deferred goroutine/closure hand-off).
func releasesInBody(pkg *Package, m *concMarkers, body ast.Node) []pairKey {
	var out []pairKey
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			out = append(out, releaseEffects(pkg, m, n)...)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if key, ok := m.tokenChan(pkg.Info, n.X); ok {
					out = append(out, pairKey{holdKey: key, mode: pairToken})
				}
			}
		}
		return true
	})
	return out
}
