package analysis

import "fmt"

// Production configuration: the boundaries, protected types and guarded
// hot functions of this repo. Fixture tests build analyzers with their
// own configs; this file is the single place the real invariant surface
// is declared.

// OutputPathPackages are the packages whose emissions reach users —
// reports, NDJSON, golden files, HTTP responses. detrange runs here.
var OutputPathPackages = []string{
	"pegflow/internal/stats",
	"pegflow/internal/scenario",
	"pegflow/internal/server/...",
	"pegflow/internal/core",
	"pegflow/internal/ensemble",
	"pegflow/internal/dax",
	"pegflow/cmd/...",
}

// SimBoundaryPackages are the packages inside the simulation boundary,
// where every input must derive from (scenario, seed). detsource runs
// here.
var SimBoundaryPackages = []string{
	"pegflow/internal/sim/...",
	"pegflow/internal/engine",
	"pegflow/internal/fault",
	"pegflow/internal/planner",
	"pegflow/internal/ensemble",
}

// RequestPathPackages are the packages on the serve/scenario request
// path, where every blocking wait must be cancelable by the request's
// context. ctxflow runs here.
var RequestPathPackages = []string{
	"pegflow/internal/server/...",
	"pegflow/internal/scenario",
}

// LockHoldPackages are the packages holding request-path mutexes (cache
// shards, output serialization, progress, first-error collection).
// lockhold runs here.
var LockHoldPackages = []string{
	"pegflow/internal/server/...",
	"pegflow/internal/scenario",
	"pegflow/internal/core",
	"pegflow/internal/pool",
}

// NewLockHold returns the production lockhold: the serve-tier lock
// packages plus the calls that are blocking by fiat — cell-simulation
// entry points (seconds of DES work per call) and stdlib network/file
// I/O, none of which may run inside a critical section.
func NewLockHold() *LockHold {
	return &LockHold{
		Packages: LockHoldPackages,
		BlockingCalls: []string{
			// Simulation entry points.
			"pegflow/internal/core.Experiment.RunWorkflow",
			"pegflow/internal/core.Experiment.RunSerial",
			"pegflow/internal/core.Experiment.RunClustered",
			"pegflow/internal/core.Experiment.RunVariant",
			"pegflow/internal/core.Experiment.RunAll",
			"pegflow/internal/core.EnsembleExperiment.Run",
			"pegflow/internal/core.MonteCarloSweep",
			// Network and file I/O on the serve tier.
			"net/http.Client.Do",
			"net/http.Client.Get",
			"net/http.Client.Post",
			"net/http.ResponseWriter.Write",
			"net/http.Flusher.Flush",
			"io.Copy",
			"os.ReadFile",
			"os.WriteFile",
			"os.Open",
			"os.Create",
		},
	}
}

// NewCloneGate returns the production clonegate: the cached plan/DAX
// types, their defining packages, and the audited whitelist of functions
// that mutate fresh (not cached) values.
func NewCloneGate() *CloneGate {
	return &CloneGate{
		Protected: []string{
			"pegflow/internal/planner.Plan",
			"pegflow/internal/planner.Job",
			"pegflow/internal/dax.Workflow",
			"pegflow/internal/dax.Job",
		},
		DefiningPkgs: []string{
			"pegflow/internal/planner",
			"pegflow/internal/dax",
		},
		AllowedFuncs: map[string]string{
			"pegflow/internal/workflow.BuildDAX":                  "constructor: assembles a brand-new abstract DAX; nothing it touches is cached yet",
			"pegflow/internal/workflow.BuildSerialDAX":            "constructor: assembles the serial-baseline DAX from scratch",
			"pegflow/internal/core.Experiment.cachedWorkflowPlan": "patches seed-dependent chunk runtimes into the private Clone it just took from the plan cache",
			"pegflow/internal/core.EnsembleExperiment.Sources":    "renames the private Clone returned by memberDAX, never the cached master",
		},
	}
}

// NewEscapeGate returns the production escapegate: the allocation-free
// hot path of the slab DES kernel, the resource arena, the engine ready
// queue and the fifo ring. Growth paths (arena append) never show in -m
// output — escape analysis reports forced-to-heap values, not amortized
// slice growth — so guarding schedule/fire wholesale is sound.
func NewEscapeGate() *EscapeGate {
	return &EscapeGate{Guards: []EscapeGuard{
		{
			Pkg: "pegflow/internal/sim/des",
			Funcs: []string{
				// event slab + heap
				"Simulation.At", "Simulation.After", "Simulation.Cancel",
				"Simulation.Step", "Simulation.release", "Simulation.lookup",
				"Simulation.heapPush", "Simulation.heapRemove",
				"Simulation.siftUp", "Simulation.siftDown", "Simulation.heapSwap",
				"Simulation.less",
				// resource request arena
				"Resource.Acquire", "Resource.Release", "Resource.releaseReq",
				"Resource.popHead", "Resource.maybeCompact", "Resource.dispatch",
				"Resource.account", "Acquisition.Cancel",
			},
		},
		{
			Pkg:   "pegflow/internal/engine",
			Funcs: []string{"readyQueue.push", "readyQueue.pop", "readyQueue.less"},
		},
		{
			Pkg:   "pegflow/internal/fifo",
			Funcs: []string{"Queue.Push", "Queue.Pop", "Queue.Peek"},
		},
	}}
}

// Analyzers returns the full production suite in a stable order.
func Analyzers() []Analyzer {
	return []Analyzer{
		&DetRange{Packages: OutputPathPackages},
		&DetSource{Packages: SimBoundaryPackages},
		NewCloneGate(),
		&SlabCopy{},
		NewEscapeGate(),
		&GuardField{},
		&PairPath{},
		&CtxFlow{Packages: RequestPathPackages},
		NewLockHold(),
	}
}

// Select filters analyzers by the enable/disable name sets (nil or empty
// enable means all). Unknown names error so a typo cannot silently run
// nothing.
func Select(all []Analyzer, enable, disable map[string]bool) ([]Analyzer, error) {
	known := make(map[string]bool, len(all))
	for _, a := range all {
		known[a.Name()] = true
	}
	for name := range enable {
		if !known[name] {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
	}
	for name := range disable {
		if !known[name] {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
	}
	var out []Analyzer
	for _, a := range all {
		if len(enable) > 0 && !enable[a.Name()] {
			continue
		}
		if disable[a.Name()] {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}
