package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"pegflow/internal/analysis/cfg"
)

// LockHold forbids blocking while a mutex is held. Shard and server
// mutexes in this repo guard short critical sections on the request
// path; a channel operation, a WaitGroup.Wait, a sync.Once.Do (which
// can run an arbitrarily slow init), an I/O call or a cell-simulation
// entry point inside such a section turns every sibling request into a
// convoy — or a deadlock when the blocked operation needs the lock to
// make progress.
//
// What counts as blocking: channel send/receive (including range over
// a channel and selects without a default), WaitGroup.Wait, Once.Do,
// acquiring another mutex (lock-ordering hazard; re-acquiring the SAME
// mutex is self-deadlock), anything annotated //pegflow:blocking, the
// configured entry points in BlockingCalls, and — transitively — any
// module function whose body synchronously does one of the above.
// Internally lock-bounded helpers (lock, touch state, unlock) are NOT
// propagated as blocking: a bounded critical section is what locks are
// for.
//
// Held-ness is a may-dataflow over the CFG: Lock/RLock generate, only
// an explicit Unlock on the path kills — a deferred unlock keeps the
// section open to function exit, which is the point. Deferred calls
// themselves are exempt from checking: they run LIFO after the
// deferred unlock at exit.
type LockHold struct {
	// Packages restricts checking; patterns as in matchPath.
	Packages []string
	// BlockingCalls are functions treated as blocking regardless of
	// body analysis, as "pkg/path.Func" or "pkg/path.Type.Method"
	// (matching clonegate/escapegate config syntax). Use it for
	// simulation entry points and stdlib I/O.
	BlockingCalls []string
}

func (*LockHold) Name() string { return "lockhold" }
func (*LockHold) Doc() string {
	return "flag blocking operations (channels, I/O, simulation entry points) performed while a mutex is held"
}

func (l *LockHold) Run(prog *Program, report func(pos token.Position, key, message string)) error {
	m := collectConcMarkers(prog)
	blocking := l.propagateBlocking(prog, m)
	for _, pkg := range prog.Module {
		if !matchPath(pkg.Path, l.Packages) {
			continue
		}
		for _, file := range pkg.Files {
			sel := collectSelectInfo(file)
			for _, d := range file.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					l.checkFunc(prog, pkg, m, blocking, sel, fd.Body, report)
				}
			}
			ast.Inspect(file, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					l.checkFunc(prog, pkg, m, blocking, sel, fl.Body, report)
				}
				return true
			})
		}
	}
	return nil
}

// selectInfo classifies channel operations that are select comms, so
// they are judged through their select (a default case makes the whole
// construct non-blocking).
type selectInfo struct {
	// op maps a comm operation node to its select statement.
	op map[ast.Node]*ast.SelectStmt
	// hasDefault marks selects with a default clause.
	hasDefault map[*ast.SelectStmt]bool
	// rangeChan maps the X expression of `for range ch` to the range
	// statement (a blocking receive per iteration).
	rangeChan map[ast.Node]*ast.RangeStmt
}

func collectSelectInfo(file *ast.File) *selectInfo {
	si := &selectInfo{
		op:         map[ast.Node]*ast.SelectStmt{},
		hasDefault: map[*ast.SelectStmt]bool{},
		rangeChan:  map[ast.Node]*ast.RangeStmt{},
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			si.hasDefault[n] = selectHasDefault(n)
			for _, cl := range n.Body.List {
				cc := cl.(*ast.CommClause)
				switch comm := cc.Comm.(type) {
				case *ast.SendStmt:
					si.op[comm] = n
				case *ast.ExprStmt:
					si.op[ast.Unparen(comm.X)] = n
				case *ast.AssignStmt:
					if len(comm.Rhs) == 1 {
						si.op[ast.Unparen(comm.Rhs[0])] = n
					}
				}
			}
		case *ast.RangeStmt:
			si.rangeChan[ast.Unparen(n.X)] = n
		}
		return true
	})
	return si
}

// propagateBlocking seeds the blocking set from //pegflow:blocking
// markers and closes it over the module call graph: a named function
// or closure-valued variable whose body synchronously blocks is itself
// blocking.
func (l *LockHold) propagateBlocking(prog *Program, m *concMarkers) map[types.Object]bool {
	blocking := make(map[types.Object]bool, len(m.blocking))
	for obj := range m.blocking {
		blocking[obj] = true
	}
	type fnBody struct {
		pkg  *Package
		body *ast.BlockStmt
	}
	bodies := map[types.Object]fnBody{}
	for _, pkg := range prog.Module {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					if obj := pkg.Info.Defs[fd.Name]; obj != nil {
						bodies[obj] = fnBody{pkg, fd.Body}
					}
				}
			}
			// Closures bound to a variable: x := func() {...} and
			// var x = func() {...}.
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for i, rhs := range n.Rhs {
						fl, ok := rhs.(*ast.FuncLit)
						if !ok || i >= len(n.Lhs) {
							continue
						}
						id, ok := n.Lhs[i].(*ast.Ident)
						if !ok {
							continue
						}
						obj := pkg.Info.Defs[id]
						if obj == nil {
							obj = pkg.Info.Uses[id]
						}
						if obj != nil {
							bodies[obj] = fnBody{pkg, fl.Body}
						}
					}
				case *ast.ValueSpec:
					for i, v := range n.Values {
						if fl, ok := v.(*ast.FuncLit); ok && i < len(n.Names) {
							if obj := pkg.Info.Defs[n.Names[i]]; obj != nil {
								bodies[obj] = fnBody{pkg, fl.Body}
							}
						}
					}
				}
				return true
			})
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, fb := range bodies {
			if blocking[obj] {
				continue
			}
			if l.bodyBlocks(fb.pkg, m, blocking, fb.body) {
				blocking[obj] = true
				changed = true
			}
		}
	}
	return blocking
}

// bodyBlocks reports whether a function body synchronously performs a
// blocking operation. Deferred calls, spawned goroutines and nested
// literals (values, not calls) do not count.
func (l *LockHold) bodyBlocks(pkg *Package, m *concMarkers, blocking map[types.Object]bool, body *ast.BlockStmt) bool {
	si := &selectInfo{op: map[ast.Node]*ast.SelectStmt{}, hasDefault: map[*ast.SelectStmt]bool{}}
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			si.hasDefault[sel] = selectHasDefault(sel)
			for _, cl := range sel.Body.List {
				cc := cl.(*ast.CommClause)
				switch comm := cc.Comm.(type) {
				case *ast.SendStmt:
					si.op[comm] = sel
				case *ast.ExprStmt:
					si.op[ast.Unparen(comm.X)] = sel
				case *ast.AssignStmt:
					if len(comm.Rhs) == 1 {
						si.op[ast.Unparen(comm.Rhs[0])] = sel
					}
				}
			}
		}
		return true
	})
	blocks := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if blocks {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			if sel := si.op[n]; sel == nil || !si.hasDefault[sel] {
				blocks = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if sel := si.op[n]; sel == nil || !si.hasDefault[sel] {
					blocks = true
				}
			}
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(n.X); t != nil && isChanType(t) {
				blocks = true
			}
		case *ast.CallExpr:
			if op, _ := syncCall(pkg.Info, n); op == opWGWait || op == opOnceDo {
				blocks = true
				return false
			}
			if _, _, isBlocking := l.calleeBlocking(pkg, blocking, n); isBlocking {
				blocks = true
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return blocks
}

// calleeBlocking resolves a call's target and reports whether it is in
// the blocking set (markers + propagation) or matches BlockingCalls.
func (l *LockHold) calleeBlocking(pkg *Package, blocking map[types.Object]bool, call *ast.CallExpr) (name, qualified string, isBlocking bool) {
	obj := calleeObj(pkg.Info, call)
	if obj == nil {
		// Indirect call through a plain variable (closure, callback
		// field): resolve the identifier / field object.
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			obj = pkg.Info.Uses[fun]
		case *ast.SelectorExpr:
			if sel, ok := pkg.Info.Selections[fun]; ok {
				obj = sel.Obj()
			}
		}
	}
	if obj == nil {
		return "", "", false
	}
	if blocking[obj] {
		return obj.Name(), obj.Name(), true
	}
	if fn, ok := obj.(*types.Func); ok {
		q := funcKey(fn)
		for _, pat := range l.BlockingCalls {
			if q == pat {
				return obj.Name(), q, true
			}
		}
	}
	return "", "", false
}

// lockFact is the may-set of held mutexes: held on SOME path reaching
// this point is enough to flag. Values describe the acquire for the
// message.
type lockFact map[holdKey]string

func mergeLock(a, b lockFact) lockFact {
	out := make(lockFact, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if have, ok := out[k]; !ok || v < have {
			out[k] = v
		}
	}
	return out
}

func equalLock(a, b lockFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func (l *LockHold) checkFunc(prog *Program, pkg *Package, m *concMarkers, blocking map[types.Object]bool, si *selectInfo, body *ast.BlockStmt, report func(pos token.Position, key, message string)) {
	graph := cfg.Build(body)
	in := cfg.Forward(graph, lockFact{}, mergeLock, equalLock, func(blk *cfg.Block, f lockFact) lockFact {
		for _, n := range blk.Nodes {
			f = l.step(pkg, f, n)
		}
		return f
	})
	reportedSelects := map[*ast.SelectStmt]bool{}
	for _, blk := range graph.Blocks {
		f, reached := in[blk]
		if !reached {
			continue
		}
		for _, n := range blk.Nodes {
			if len(f) > 0 {
				l.checkNode(prog, pkg, m, blocking, si, f, n, reportedSelects, report)
			}
			f = l.step(pkg, f, n)
		}
	}
}

// step applies lock gen/kill. Defers are skipped: a deferred unlock
// releases at exit, after every statement in the function, so it never
// shortens the held region.
func (l *LockHold) step(pkg *Package, f lockFact, n ast.Node) lockFact {
	if _, ok := n.(*ast.DeferStmt); ok {
		return f
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, recv := syncCall(pkg.Info, call)
		key, keyOK := syncKey(pkg.Info, recv)
		if !keyOK {
			return true
		}
		switch op {
		case opLock:
			f = withLock(f, key, key.String()+" (Lock)")
		case opRLock:
			f = withLock(f, key, key.String()+" (RLock)")
		case opUnlock, opRUnlock:
			f = withoutLock(f, key)
		}
		return true
	})
	return f
}

func withLock(f lockFact, k holdKey, desc string) lockFact {
	out := make(lockFact, len(f)+1)
	for key, v := range f {
		out[key] = v
	}
	out[k] = desc
	return out
}

func withoutLock(f lockFact, k holdKey) lockFact {
	if _, ok := f[k]; !ok {
		return f
	}
	out := make(lockFact, len(f))
	for key, v := range f {
		if key != k {
			out[key] = v
		}
	}
	return out
}

// heldDesc renders the held set for messages, smallest key first for
// determinism.
func heldDesc(f lockFact) string {
	var best string
	for _, v := range f {
		if best == "" || v < best {
			best = v
		}
	}
	return best
}

func (l *LockHold) checkNode(prog *Program, pkg *Package, m *concMarkers, blocking map[types.Object]bool, si *selectInfo, f lockFact, n ast.Node, reportedSelects map[*ast.SelectStmt]bool, report func(pos token.Position, key, message string)) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	held := heldDesc(f)
	chanOp := func(pos token.Pos, kind string, node ast.Node) {
		if sel, inSelect := si.op[node]; inSelect {
			if si.hasDefault[sel] || reportedSelects[sel] {
				return
			}
			reportedSelects[sel] = true
			report(prog.Fset.Position(sel.Pos()), "select",
				fmt.Sprintf("blocking select while %s is held; add a default case or move it outside the critical section", held))
			return
		}
		report(prog.Fset.Position(pos), kind,
			fmt.Sprintf("channel %s while %s is held blocks every contender for the lock; move it outside the critical section", kind, held))
	}
	switch n := n.(type) {
	case *ast.SendStmt:
		chanOp(n.Pos(), "send", n)
		return
	case *ast.GoStmt:
		return
	}
	// Range-over-channel: the range operand appears as a node of the
	// block evaluating it.
	if e, isExpr := n.(ast.Expr); isExpr {
		if rs, isRange := si.rangeChan[ast.Unparen(e)]; isRange {
			if t := pkg.Info.TypeOf(rs.X); t != nil && isChanType(t) {
				report(prog.Fset.Position(rs.Pos()), "range",
					fmt.Sprintf("range over a channel while %s is held; each iteration is a blocking receive", held))
				return
			}
		}
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.UnaryExpr:
			if c.Op == token.ARROW {
				chanOp(c.Pos(), "receive", ast.Unparen(c))
			}
		case *ast.CallExpr:
			op, recv := syncCall(pkg.Info, c)
			switch op {
			case opWGWait:
				report(prog.Fset.Position(c.Pos()), "sync.WaitGroup.Wait",
					fmt.Sprintf("WaitGroup.Wait while %s is held; waiting goroutines may need the lock — deadlock", held))
				return true
			case opOnceDo:
				report(prog.Fset.Position(c.Pos()), "sync.Once.Do",
					fmt.Sprintf("sync.Once.Do while %s is held can run an arbitrarily slow init inside the critical section", held))
				return true
			case opLock, opRLock:
				if key, ok := syncKey(pkg.Info, recv); ok {
					if _, same := f[key]; same {
						report(prog.Fset.Position(c.Pos()), key.String(),
							fmt.Sprintf("re-acquires %s while it may already be held on this path: self-deadlock", key))
					} else {
						report(prog.Fset.Position(c.Pos()), key.String(),
							fmt.Sprintf("acquires %s while %s is held; nested locks order-deadlock under contention — release first", key, held))
					}
				}
				return true
			}
			if name, qualified, isBlocking := l.calleeBlocking(pkg, blocking, c); isBlocking {
				report(prog.Fset.Position(c.Pos()), name,
					fmt.Sprintf("call to blocking %s while %s is held; move it outside the critical section", qualified, held))
			}
		}
		return true
	})
}
