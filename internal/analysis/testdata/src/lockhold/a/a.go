// Package a is a lockhold fixture: blocking operations inside and
// outside critical sections.
package a

import "sync"

type store struct {
	mu    sync.Mutex
	other sync.Mutex
	ch    chan int
	// sink delivers a value to a consumer; a slow consumer blocks it.
	//pegflow:blocking
	sink func(int)
}

func (s *store) badSendUnderLock(v int) {
	s.mu.Lock()
	s.ch <- v // want `channel send while s\.mu \(Lock\) is held`
	s.mu.Unlock()
}

func (s *store) badRecvUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want `channel receive while s\.mu \(Lock\) is held`
}

func (s *store) goodAfterUnlock(v int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- v
}

func (s *store) badCallbackUnderLock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink(v) // want `call to blocking sink while s\.mu \(Lock\) is held`
}

func (s *store) goodSelectDefault(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- v:
	default:
	}
}

func (s *store) badBlockingSelect() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `blocking select while s\.mu \(Lock\) is held`
	case v := <-s.ch:
		return v
	}
}

func (s *store) badNestedLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.other.Lock() // want `acquires s\.other while s\.mu \(Lock\) is held`
	s.other.Unlock()
}

func (s *store) badReacquire() {
	s.mu.Lock()
	s.mu.Lock() // want `re-acquires s\.mu while it may already be held`
	s.mu.Unlock()
	s.mu.Unlock()
}

func (s *store) badRangeUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for v := range s.ch { // want `range over a channel while s\.mu \(Lock\) is held`
		total += v
	}
	return total
}

func (s *store) badWaitUnderLock(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want `WaitGroup\.Wait while s\.mu \(Lock\) is held`
}

func (s *store) badOnceUnderLock(once *sync.Once) {
	s.mu.Lock()
	defer s.mu.Unlock()
	once.Do(setup) // want `sync\.Once\.Do while s\.mu \(Lock\) is held`
}

func setup() {}

// emitAll blocks by body analysis: range over a channel.
func (s *store) emitAll() {
	for v := range s.ch {
		s.sink(v)
	}
}

func (s *store) badTransitive() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.emitAll() // want `call to blocking emitAll while s\.mu \(Lock\) is held`
}

// simulate is blocking by configuration (BlockingCalls), standing in
// for a cell-simulation entry point.
func simulate() int { return 42 }

func (s *store) badSimulateUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return simulate() // want `call to blocking .*simulate while s\.mu \(Lock\) is held`
}

// goodGoUnderLock: spawning is instant; the goroutine body is checked
// as its own (lock-free) function.
func (s *store) goodGoUnderLock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() { s.ch <- v }()
}
