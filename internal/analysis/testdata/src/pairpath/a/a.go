// Package a is a pairpath fixture: acquires that do or do not reach
// their paired release on every non-panic path.
package a

import "sync"

type box struct {
	mu sync.Mutex
	rw sync.RWMutex
	// slots is a semaphore: a send takes a slot, a receive returns it.
	//pegflow:token
	slots chan struct{}
}

func (b *box) goodDefer() {
	b.mu.Lock()
	defer b.mu.Unlock()
}

func (b *box) goodExplicit(v bool) int {
	b.mu.Lock()
	if v {
		b.mu.Unlock()
		return 1
	}
	b.mu.Unlock()
	return 0
}

func (b *box) badEarlyReturn(err error) error {
	b.mu.Lock() // want `b\.mu\.Lock\(\) is not released on every non-panic path`
	if err != nil {
		return err
	}
	b.mu.Unlock()
	return nil
}

// badMismatch: a plain Unlock does not discharge a read hold.
func (b *box) badMismatch() {
	b.rw.RLock() // want `b\.rw\.RLock\(\) is not released on every non-panic path`
	b.rw.Unlock()
}

func (b *box) goodRead() {
	b.rw.RLock()
	defer b.rw.RUnlock()
}

func (b *box) goodToken() {
	b.slots <- struct{}{}
	defer func() { <-b.slots }()
}

func (b *box) badTokenLeak(err error) error {
	b.slots <- struct{}{} // want `token acquired by send into b\.slots is not released on every non-panic path`
	if err != nil {
		return err
	}
	<-b.slots
	return nil
}

// goodSelectAcquire: the token is only acquired on the branch that
// takes the slot, and that branch releases by deferred receive.
func (b *box) goodSelectAcquire() bool {
	select {
	case b.slots <- struct{}{}:
	default:
		return false
	}
	defer func() { <-b.slots }()
	return true
}

// goodWG: the obligation is handed off to the spawned goroutine.
func goodWG(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func badWG() {
	var wg sync.WaitGroup
	wg.Add(1) // want `wg\.Add\(\) is not released on every non-panic path`
}

// panicPathExempt: a path that ends in panic owes nothing.
func (b *box) panicPathExempt(bad bool) {
	b.mu.Lock()
	if bad {
		panic("invariant violated")
	}
	b.mu.Unlock()
}
