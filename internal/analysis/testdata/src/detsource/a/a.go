// Package a is the detsource fixture: positive and negative cases for
// nondeterministic inputs inside the simulation boundary.
package a

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"
)

func badClock() time.Time {
	return time.Now() // want "time.Now inside the simulation boundary"
}

func badSince(t0 time.Time) float64 {
	return time.Since(t0).Seconds() // want "time.Since inside the simulation boundary"
}

func badGlobalRand() int {
	return rand.Intn(10) // want `math/rand\.Intn uses the global process-wide source`
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `math/rand\.Shuffle uses the global`
}

func goodSeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // constructor: fine
	return r.Intn(10)                   // method on a private generator: fine
}

func badEnv() string {
	return os.Getenv("PEGFLOW_MODE") // want `os\.Getenv inside the simulation boundary`
}

func badLookupEnv() bool {
	_, ok := os.LookupEnv("PEGFLOW_MODE") // want `os\.LookupEnv inside the simulation boundary`
	return ok
}

func badFmtMap(m map[string]int) string {
	return fmt.Sprintf("cfg=%v", m) // want `fmt\.Sprintf formats a map value`
}

func badFmtSprint(m map[string]int) string {
	return fmt.Sprint(m) // want `fmt\.Sprint formats a map value`
}

func goodFmtKeys(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return fmt.Sprintf("keys=%v", keys) // slice arg, deterministic: fine
}

func goodFmtScalar(n int) string {
	return fmt.Sprintf("n=%v", n) // fine
}
