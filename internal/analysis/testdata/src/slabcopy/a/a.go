// Package a is the slabcopy fixture: by-value copies of marker-protected
// arena types, plus the constructs that are fine.
package a

// arena is a slab carrier.
//
//pegflow:slab — fixture marker
type arena struct {
	slab []int64
	free []int32
}

// wrapper embeds an arena by value, so it is transitively protected.
type wrapper struct {
	a arena
	n int
}

// holder references the arena through a pointer: copying a holder copies
// only the pointer, which is fine.
type holder struct {
	a *arena
}

func newArena() *arena { return &arena{} }

func (a *arena) push(v int64) { // pointer receiver: fine
	a.slab = append(a.slab, v)
}

func badValueParam(a arena) int { // want `by-value parameter of slab type`
	return len(a.slab)
}

func (w wrapper) badSize() int { // want `value receiver of slab type`
	return len(w.a.slab) + w.n
}

func badDerefCopy(a *arena) {
	b := *a // want `assignment copies slab type`
	_ = b
}

func badFieldCopy(w *wrapper) {
	inner := w.a // want `assignment copies slab type`
	_ = inner
}

func badWrapperReturn(w *wrapper) wrapper { // want `by-value result of slab type`
	return *w // want `return copies slab type`
}

func badRangeCopy(as []arena) int {
	total := 0
	for _, a := range as { // want `range value copies slab type`
		total += len(a.slab)
	}
	return total
}

func goodPointerUse(as []arena) int {
	total := 0
	for i := range as { // index iteration: fine
		total += len(as[i].slab)
	}
	return total
}

func goodHolderCopy(h holder) holder { // pointer-holding struct: fine
	g := h
	return g
}

func goodFreshLiteral() *arena {
	a := &arena{} // fresh value, no aliasing: fine
	return a
}
