// Package a is the detrange fixture: map iterations that build output
// with and without a deterministic sort.
package a

import (
	"fmt"
	"io"
	"sort"
)

func badAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration order is nondeterministic and the body appends"
		out = append(out, k)
	}
	return out
}

func goodCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // canonical two-phase idiom: fine
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodSlicesSort(m map[string]int) []string {
	var keys []string
	for k := range m { // sorted via sort.Slice: fine
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func badWrite(w io.Writer, m map[string]int) {
	for k, v := range m { // want "map iteration order is nondeterministic and the body writes output"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func badClosure(m map[string]int) []string {
	var errs []string
	add := func(s string) { errs = append(errs, s) }
	for k := range m { // want "calls a closure that builds output"
		add(k)
	}
	return errs
}

func badCallback(m map[string]int, emit func(string)) {
	for k := range m { // want "invokes a callback"
		emit(k)
	}
}

func goodReduction(m map[string]int) int {
	total := 0
	for _, v := range m { // commutative fold: fine
		total += v
	}
	return total
}

func goodSliceRange(xs []string, w io.Writer) {
	for _, x := range xs { // slice range: deterministic, fine
		fmt.Fprintln(w, x)
	}
}
