// Package a is a ctxflow fixture: context threading and observable
// blocking on the request path.
package a

import (
	"context"
	"net/http"
)

func goodSelect(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

func badSelect(ctx context.Context, ch chan int) int {
	select { // want `blocking select with a context in scope has no ctx\.Done\(\) case`
	case v := <-ch:
		return v
	}
}

// goodDefaultSelect never blocks: default makes the select a poll.
func goodDefaultSelect(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	default:
	}
}

func badBareSend(ctx context.Context, ch chan int) {
	ch <- 1 // want `bare channel send in a context-receiving function`
}

func badBareRecv(ctx context.Context, ch chan int) int {
	return <-ch // want `bare channel receive in a context-receiving function`
}

func badBackground(ctx context.Context) error {
	return work(context.Background()) // want `thread it instead of starting a fresh context\.Background\(\)`
}

func badTODO(ctx context.Context) error {
	return work(context.TODO()) // want `thread it instead of starting a fresh context\.TODO\(\)`
}

func work(ctx context.Context) error { return ctx.Err() }

// noCtx has no context anywhere: bare channel operations and a root
// Background() are exactly right here.
func noCtx(ch chan int) context.Context {
	ch <- 1
	<-ch
	return context.Background()
}

// capturedCtx: the closure captures ctx, so its blocking select must
// still offer a ctx.Done() arm.
func capturedCtx(ctx context.Context, ch chan int) func() int {
	return func() int {
		if ctx.Err() != nil {
			return 0
		}
		select { // want `blocking select with a context in scope has no ctx\.Done\(\) case`
		case v := <-ch:
			return v
		}
	}
}

// tokenRelease captures no context: an uncancelable token return is
// legal (and must stay so — the slot has to go back).
func tokenRelease(gate chan struct{}) func() {
	return func() { <-gate }
}

// handler receives the context through *http.Request.
func handler(w http.ResponseWriter, r *http.Request) {
	_ = work(context.Background()) // want `thread it instead of starting a fresh context\.Background\(\)`
}
