// Package a is a guardfield fixture: accesses to //pegflow:guarded
// fields with and without the guarding mutex held on every path.
package a

import "sync"

type counter struct {
	mu sync.Mutex
	//pegflow:guarded mu
	n int

	rw sync.RWMutex
	//pegflow:guarded rw
	m map[string]int
}

func (c *counter) goodLocked() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) goodDeferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) badUnlocked() int {
	return c.n // want "c.mu is not held on every path"
}

func (c *counter) badAfterUnlock() {
	c.mu.Lock()
	c.n = 1
	c.mu.Unlock()
	c.n = 2 // want "not held on every path"
}

// badOneArm locks on only one branch: the join must not count as held.
func (c *counter) badOneArm(b bool) {
	if b {
		c.mu.Lock()
	}
	c.n = 3 // want "not held on every path"
	if b {
		c.mu.Unlock()
	}
}

// goodLoop: the hold survives the loop's back edge.
func (c *counter) goodLoop() {
	c.mu.Lock()
	for i := 0; i < 8; i++ {
		c.n += i
	}
	c.mu.Unlock()
}

func (c *counter) badAfterLoopUnlock(xs []int) {
	for range xs {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
	c.n = 0 // want "not held on every path"
}

func (c *counter) goodRead(k string) int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.m[k]
}

func (c *counter) badWriteUnderRLock(k string) {
	c.rw.RLock()
	defer c.rw.RUnlock()
	c.m[k] = 1 // want "holding only the read lock"
}

func (c *counter) goodWriteLock(k string) {
	c.rw.Lock()
	defer c.rw.Unlock()
	c.m[k] = 1
}

// bump requires the caller to hold c.mu; its own body is checked with
// the mutex assumed held.
//
//pegflow:holds mu
func (c *counter) bump() { c.n++ }

func (c *counter) goodHoldsCall() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump()
}

func (c *counter) badHoldsCall() {
	c.bump() // want "requires c.mu held"
}

// goroutine bodies are their own functions: the closure must lock for
// itself even though the spawner held the mutex.
func (c *counter) badClosureInheritsNothing() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want "not held on every path"
	}()
	c.n++
}

// Guarded locals: the var-block sibling mutex guards them.
func locals(xs []int) int {
	var (
		mu sync.Mutex
		//pegflow:guarded mu
		total int
	)
	for _, x := range xs {
		mu.Lock()
		total += x
		mu.Unlock()
	}
	return total // want "mu is not held on every path"
}

type broken struct {
	//pegflow:guarded nosuch
	v int // want "names no sibling field"
}

func useBroken(b *broken) int { return b.v }
