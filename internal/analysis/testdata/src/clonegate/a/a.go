// Package a is the clonegate fixture: writes through the cached plan/DAX
// types from outside their defining packages.
package a

import (
	"pegflow/internal/dax"
	"pegflow/internal/planner"
)

func badPatchJob(p *planner.Plan) {
	for _, j := range p.Jobs() {
		j.ExecSeconds = 1 // want `write to planner\.Job\.ExecSeconds`
	}
}

func badGraphRename(p *planner.Plan) {
	p.Graph.Name = "renamed" // want `write to dax\.Workflow\.Name`
}

func badInfoStore(p *planner.Plan, j *planner.Job) {
	p.Info["extra"] = j // want `write to planner\.Plan\.Info`
}

func badDaxJobArgs(w *dax.Workflow) {
	w.Job("chunk").Args = nil // want `write to dax\.Job\.Args`
}

func badPriorityBump(j *planner.Job) {
	j.Priority++ // want `write to planner\.Job\.Priority`
}

func badSiteList(p *planner.Plan) {
	p.Sites[0] = "osg" // want `write to planner\.Plan\.Sites`
}

// freshCloneMutation is whitelisted in the test's analyzer config: it
// mutates a value it just cloned, the pattern the whitelist exists for.
func freshCloneMutation(p *planner.Plan) *planner.Plan {
	q := p.Clone()
	q.Site = "elsewhere"
	return q
}

func goodReads(p *planner.Plan) float64 {
	return p.TotalExecSeconds() // reads never flag
}

func goodLocalState(p *planner.Plan) map[string]bool {
	seen := make(map[string]bool)
	for _, j := range p.Jobs() {
		seen[j.ID] = true // write to a local map keyed by job data: fine
	}
	return seen
}
