// Package kernel is the escapegate fixture: a miniature slab kernel with
// one clean hot function, one that allocates only on its panic path, and
// one with a deliberate steady-state heap allocation.
package kernel

import "fmt"

// Sim is a toy slab arena.
type Sim struct {
	arena []int64
	free  []int32
	sink  *int64
}

// Clean reuses free-list slots and grows by append: no value is forced to
// the heap, so the gate must pass it.
func (s *Sim) Clean(v int64) {
	if n := len(s.free); n > 0 {
		slot := s.free[n-1]
		s.free = s.free[:n-1]
		s.arena[slot] = v
		return
	}
	s.arena = append(s.arena, v)
}

// PanicsOnly allocates only inside the panic call; the gate's panic-path
// exemption must pass it.
func (s *Sim) PanicsOnly(i int) int64 {
	if i < 0 || i >= len(s.arena) {
		panic(fmt.Sprintf("kernel: slot %d out of range (%d slots)", i, len(s.arena)))
	}
	return s.arena[i]
}

// Dirty allocates on every call: new(int64) escapes into the struct. The
// gate must flag it.
func (s *Sim) Dirty(v int64) {
	p := new(int64)
	*p = v
	s.sink = p
}
