package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Concurrency annotation markers. Like //pegflow:slab, these are doc
// comments that opt code into checking — see docs/LINTING.md.
//
//	//pegflow:guarded <mutex>  on a struct field or var: the sibling
//	                           mutex must be held to touch it (guardfield)
//	//pegflow:holds <mutex>    on a func: callers must hold the mutex;
//	                           the body is checked as if it is held
//	//pegflow:token            on a semaphore channel: sends acquire a
//	                           slot, receives release it (pairpath)
//	//pegflow:blocking         on a func or callback field: calling it
//	                           can block indefinitely (lockhold)
const (
	guardedMarker  = "//pegflow:guarded"
	holdsMarker    = "//pegflow:holds"
	tokenMarker    = "//pegflow:token"
	blockingMarker = "//pegflow:blocking"
)

// holdKey identifies one mutex or token instance as seen from inside a
// function: the root identifier's object plus the dotted selector path
// to the synchronizer ("" for a plain variable, "mu" for s.mu,
// "inner.mu" for s.inner.mu). Tracking only identifier-rooted paths is
// what makes the analysis sound-by-construction for the code it can
// see; accesses through computed bases are reported separately so the
// idiom stays `sh := &m.shards[i]`.
type holdKey struct {
	root types.Object
	path string
}

func (k holdKey) String() string {
	if k.root == nil {
		return k.path
	}
	if k.path == "" {
		return k.root.Name()
	}
	return k.root.Name() + "." + k.path
}

func joinPath(base, name string) string {
	if base == "" {
		return name
	}
	return base + "." + name
}

// exprRootPath resolves an ident(.field)* chain to its root object and
// dotted path. ok is false for any other shape (index, call, deref).
func exprRootPath(info *types.Info, e ast.Expr) (root types.Object, path string, ok bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return nil, "", false
		}
		return obj, "", true
	case *ast.SelectorExpr:
		root, base, ok := exprRootPath(info, e.X)
		if !ok {
			return nil, "", false
		}
		return root, joinPath(base, e.Sel.Name), true
	}
	return nil, "", false
}

// fieldGuard describes one //pegflow:guarded struct field: its guard is
// the named sibling field, resolved per-instance at each access site.
type fieldGuard struct {
	guardName string
	display   string // "shard.entries" — owning type dot field
}

// varGuard describes one //pegflow:guarded variable: its guard is a
// concrete object (a sibling of the same var block, or a package var).
type varGuard struct {
	guard   types.Object
	display string
}

// holdsSpec describes one //pegflow:holds function: methods resolve the
// mutex name against the receiver at each call site; plain functions
// bind a package-level var at collection time.
type holdsSpec struct {
	name    string
	pkgVar  types.Object // non-nil for non-method holds
	display string
}

// markerProblem is a malformed annotation; guardfield reports these so
// a typo cannot silently disable checking.
type markerProblem struct {
	pos token.Pos
	key string
	msg string
}

// concMarkers is the collected concurrency annotation surface of a
// program.
type concMarkers struct {
	fields   map[*types.Var]fieldGuard
	vars     map[*types.Var]varGuard
	token    map[*types.Var]bool
	blocking map[types.Object]bool
	holds    map[*types.Func]holdsSpec
	problems []markerProblem
}

// markerArg scans a comment group for marker and returns its (possibly
// empty) argument.
func markerArg(cg *ast.CommentGroup, marker string) (string, bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if text == marker {
			return "", true
		}
		if rest, ok := strings.CutPrefix(text, marker+" "); ok {
			f := strings.Fields(rest)
			if len(f) == 0 {
				return "", true
			}
			return f[0], true
		}
	}
	return "", false
}

func fieldMarkerArg(f *ast.Field, marker string) (string, bool) {
	if arg, ok := markerArg(f.Doc, marker); ok {
		return arg, ok
	}
	return markerArg(f.Comment, marker)
}

// collectConcMarkers gathers every guarded/holds/token/blocking
// annotation in the module.
func collectConcMarkers(prog *Program) *concMarkers {
	m := &concMarkers{
		fields:   map[*types.Var]fieldGuard{},
		vars:     map[*types.Var]varGuard{},
		token:    map[*types.Var]bool{},
		blocking: map[types.Object]bool{},
		holds:    map[*types.Func]holdsSpec{},
	}
	for _, pkg := range prog.Module {
		for _, file := range pkg.Files {
			m.collectFile(pkg, file)
		}
	}
	return m
}

func (m *concMarkers) problem(pos token.Pos, key, msg string) {
	m.problems = append(m.problems, markerProblem{pos: pos, key: key, msg: msg})
}

func (m *concMarkers) collectFile(pkg *Package, file *ast.File) {
	// Struct fields, wherever the struct type appears.
	ast.Inspect(file, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		for _, f := range st.Fields.List {
			m.collectField(pkg, st, f)
		}
		return true
	})
	// Var declarations (package-level and in-function var blocks).
	ast.Inspect(file, func(n ast.Node) bool {
		gd, ok := n.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			m.collectVarSpec(pkg, gd, vs)
		}
		return true
	})
	// Function declarations.
	for _, d := range file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		m.collectFuncDecl(pkg, fd)
	}
}

func (m *concMarkers) collectField(pkg *Package, st *ast.StructType, f *ast.Field) {
	if arg, ok := fieldMarkerArg(f, guardedMarker); ok {
		if arg == "" {
			m.problem(f.Pos(), "annotation", "//pegflow:guarded needs the name of the sibling mutex field")
		} else if guard := structFieldNamed(st, arg); guard == nil {
			m.problem(f.Pos(), "annotation", "//pegflow:guarded "+arg+" names no sibling field in this struct")
		} else {
			for _, name := range f.Names {
				if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
					m.fields[v] = fieldGuard{guardName: arg, display: ownerDisplay(pkg, v) + name.Name}
				}
			}
		}
	}
	if _, ok := fieldMarkerArg(f, tokenMarker); ok {
		for _, name := range f.Names {
			v, isVar := pkg.Info.Defs[name].(*types.Var)
			if !isVar {
				continue
			}
			if !isChanType(v.Type()) {
				m.problem(f.Pos(), "annotation", "//pegflow:token applies only to channel-typed fields")
				continue
			}
			m.token[v] = true
		}
	}
	if _, ok := fieldMarkerArg(f, blockingMarker); ok {
		for _, name := range f.Names {
			if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
				m.blocking[v] = true
			}
		}
	}
}

func (m *concMarkers) collectVarSpec(pkg *Package, gd *ast.GenDecl, vs *ast.ValueSpec) {
	specArg := func(marker string) (string, bool) {
		if arg, ok := markerArg(vs.Doc, marker); ok {
			return arg, ok
		}
		if len(gd.Specs) == 1 {
			return markerArg(gd.Doc, marker)
		}
		return "", false
	}
	if arg, ok := specArg(guardedMarker); ok {
		if arg == "" {
			m.problem(vs.Pos(), "annotation", "//pegflow:guarded needs the name of the guarding mutex variable")
		} else if guard := siblingVar(pkg, gd, arg); guard == nil {
			m.problem(vs.Pos(), "annotation", "//pegflow:guarded "+arg+" names no variable in the same var block")
		} else {
			for _, name := range vs.Names {
				if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
					m.vars[v] = varGuard{guard: guard, display: name.Name}
				}
			}
		}
	}
	if _, ok := specArg(tokenMarker); ok {
		for _, name := range vs.Names {
			v, isVar := pkg.Info.Defs[name].(*types.Var)
			if !isVar {
				continue
			}
			if !isChanType(v.Type()) {
				m.problem(vs.Pos(), "annotation", "//pegflow:token applies only to channel-typed variables")
				continue
			}
			m.token[v] = true
		}
	}
	if _, ok := specArg(blockingMarker); ok {
		for _, name := range vs.Names {
			if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
				m.blocking[v] = true
			}
		}
	}
}

func (m *concMarkers) collectFuncDecl(pkg *Package, fd *ast.FuncDecl) {
	if arg, ok := markerArg(fd.Doc, holdsMarker); ok {
		fn, isFn := pkg.Info.Defs[fd.Name].(*types.Func)
		switch {
		case !isFn:
		case arg == "":
			m.problem(fd.Pos(), "annotation", "//pegflow:holds needs the name of the mutex the caller must hold")
		case fd.Recv != nil:
			m.holds[fn] = holdsSpec{name: arg, display: funcDisplayName(fd)}
		default:
			pv := pkg.Types.Scope().Lookup(arg)
			if pv == nil {
				m.problem(fd.Pos(), "annotation", "//pegflow:holds "+arg+" names no package-level variable (non-method holds must guard a package var)")
			} else {
				m.holds[fn] = holdsSpec{name: arg, pkgVar: pv, display: funcDisplayName(fd)}
			}
		}
	}
	if _, ok := markerArg(fd.Doc, blockingMarker); ok {
		if fn, isFn := pkg.Info.Defs[fd.Name].(*types.Func); isFn {
			m.blocking[fn] = true
		}
	}
}

func structFieldNamed(st *ast.StructType, name string) *ast.Field {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == name {
				return f
			}
		}
	}
	return nil
}

// siblingVar resolves name among the names declared in the same var
// block, falling back to a package-level variable.
func siblingVar(pkg *Package, gd *ast.GenDecl, name string) types.Object {
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, n := range vs.Names {
			if n.Name == name {
				return pkg.Info.Defs[n]
			}
		}
	}
	return pkg.Types.Scope().Lookup(name)
}

// ownerDisplay renders "Type." for a struct field's owning type, best
// effort (anonymous structs yield "").
func ownerDisplay(pkg *Package, field *types.Var) string {
	scope := pkg.Types.Scope()
	for _, tn := range scope.Names() {
		obj, ok := scope.Lookup(tn).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return obj.Name() + "."
			}
		}
	}
	return ""
}

func isChanType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// syncOp classifies calls to the sync package's pairing methods.
type syncOp int

const (
	opNone syncOp = iota
	opLock
	opRLock
	opUnlock
	opRUnlock
	opWGAdd
	opWGDone
	opWGWait
	opOnceDo
)

// syncCall classifies call as a sync.Mutex/RWMutex/WaitGroup/Once
// method call and returns the receiver expression (for key resolution).
// Promoted methods of embedded mutexes resolve too; the receiver
// expression is then the embedding value.
func syncCall(info *types.Info, call *ast.CallExpr) (syncOp, ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return opNone, nil
	}
	fn, ok := calleeObj(info, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return opNone, nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return opNone, nil
	}
	recvType := namedType(sig.Recv().Type())
	if recvType == nil {
		return opNone, nil
	}
	switch recvType.Obj().Name() + "." + fn.Name() {
	case "Mutex.Lock", "RWMutex.Lock":
		return opLock, sel.X
	case "Mutex.Unlock", "RWMutex.Unlock":
		return opUnlock, sel.X
	case "RWMutex.RLock":
		return opRLock, sel.X
	case "RWMutex.RUnlock":
		return opRUnlock, sel.X
	case "WaitGroup.Add":
		return opWGAdd, sel.X
	case "WaitGroup.Done":
		return opWGDone, sel.X
	case "WaitGroup.Wait":
		return opWGWait, sel.X
	case "Once.Do":
		return opOnceDo, sel.X
	}
	return opNone, nil
}

// syncKey resolves the receiver expression of a sync call to a holdKey;
// ok=false when the receiver is not an identifier-rooted chain.
func syncKey(info *types.Info, recv ast.Expr) (holdKey, bool) {
	root, path, ok := exprRootPath(info, recv)
	if !ok {
		return holdKey{}, false
	}
	return holdKey{root: root, path: path}, true
}

// tokenChan resolves e as a reference to a //pegflow:token channel and
// returns its holdKey.
func (m *concMarkers) tokenChan(info *types.Info, e ast.Expr) (holdKey, bool) {
	e = ast.Unparen(e)
	var obj types.Object
	switch e := e.(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[e.Sel]
		}
	default:
		return holdKey{}, false
	}
	v, ok := obj.(*types.Var)
	if !ok || !m.token[v] {
		return holdKey{}, false
	}
	root, path, ok := exprRootPath(info, e)
	if !ok {
		return holdKey{}, false
	}
	return holdKey{root: root, path: path}, true
}

// funcKey renders a *types.Func as "pkg/path.Name" or
// "pkg/path.Recv.Name", the configuration syntax used by the analyzers
// (matching clonegate/escapegate style).
func funcKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	prefix := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		// Works for concrete and interface methods alike: namedType
		// unwraps the pointer and yields the receiver's named type.
		if n := namedType(sig.Recv().Type()); n != nil {
			return prefix + n.Obj().Name() + "." + fn.Name()
		}
	}
	return prefix + fn.Name()
}
