package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// EscapeGuard declares the hot functions of one package that must stay
// free of heap escapes.
type EscapeGuard struct {
	// Pkg is the import path.
	Pkg string
	// Funcs lists guarded functions as "Name" or "Recv.Name".
	Funcs []string
}

// EscapeGate generalizes the narrow TestAllocs benchmarks to the whole
// kernel: it compiles the guarded packages with -gcflags=-m, parses the
// compiler's escape-analysis diagnostics, and reports any value that
// escapes to the heap inside a declared hot function. Escapes on panic
// paths (arguments of a panic call) are exempt — they allocate only when
// the simulation is already dead. Unlike allocs/op measurements this
// catches the escape at the exact source position, before it costs a
// benchmark regression to notice.
type EscapeGate struct {
	Guards []EscapeGuard
}

func (*EscapeGate) Name() string { return "escapegate" }
func (*EscapeGate) Doc() string {
	return "assert declared hot kernel functions have zero non-panic heap escapes (go build -gcflags=-m)"
}

// escapeLine matches `file.go:line:col: msg` diagnostics.
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+)$`)

func (g *EscapeGate) Run(prog *Program, report func(pos token.Position, key, message string)) error {
	if len(g.Guards) == 0 {
		return nil
	}
	guarded := make(map[string]map[string]bool, len(g.Guards)) // pkg -> func set
	args := []string{"build", "-gcflags=-m"}
	for _, gd := range g.Guards {
		pkg := prog.Pkgs[gd.Pkg]
		if pkg == nil {
			// The load was narrowed to a package subset that excludes this
			// guard. Full-module runs cover every guard; the suite's
			// self-check test asserts each guarded package still exists.
			continue
		}
		set := make(map[string]bool, len(gd.Funcs))
		for _, fn := range gd.Funcs {
			if !funcExists(pkg, fn) {
				return fmt.Errorf("guarded function %s.%s does not exist (stale guard list?)", gd.Pkg, fn)
			}
			set[fn] = true
		}
		guarded[gd.Pkg] = set
		args = append(args, gd.Pkg)
	}
	if len(guarded) == 0 {
		return nil
	}

	cmd := exec.Command("go", args...)
	cmd.Dir = prog.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go build -gcflags=-m: %v\n%s", err, stderr.String())
	}

	// Map each guarded package's absolute file paths to the package.
	fileToPkg := map[string]*Package{}
	for pkgPath := range guarded {
		pkg := prog.Pkgs[pkgPath]
		for _, f := range pkg.Files {
			fileToPkg[prog.Fset.Position(f.Pos()).Filename] = pkg
		}
	}

	for _, line := range strings.Split(stderr.String(), "\n") {
		m := escapeLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.HasSuffix(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap:") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(prog.Dir, file)
		}
		file = filepath.Clean(file)
		abs, err := filepath.Abs(file)
		if err == nil {
			file = abs
		}
		pkg, ok := fileToPkg[file]
		if !ok {
			continue
		}
		lineNo, _ := strconv.Atoi(m[2])
		colNo, _ := strconv.Atoi(m[3])
		pos := posAt(prog.Fset, file, lineNo, colNo)
		if pos == token.NoPos {
			continue
		}
		fd := enclosingFuncDecl(pkg.Files, pos)
		if fd == nil {
			continue
		}
		name := funcDisplayName(fd)
		if !guarded[pkg.Path][name] {
			continue
		}
		if onPanicPath(pkg.Info, fd, pos) {
			continue
		}
		report(prog.Fset.Position(pos), name,
			fmt.Sprintf("heap escape in guarded kernel function %s: %s — the hot path must stay allocation-free", name, msg))
	}
	return nil
}

// funcExists reports whether the package declares a function matching the
// "Name" / "Recv.Name" spec, so stale guard lists fail loudly instead of
// guarding nothing.
func funcExists(pkg *Package, spec string) bool {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && funcDisplayName(fd) == spec {
				return true
			}
		}
	}
	return false
}

// posAt converts file:line:col to a token.Pos within fset.
func posAt(fset *token.FileSet, file string, line, col int) token.Pos {
	var tf *token.File
	fset.Iterate(func(f *token.File) bool {
		if f.Name() == file {
			tf = f
			return false
		}
		return true
	})
	if tf == nil || line < 1 || line > tf.LineCount() {
		return token.NoPos
	}
	p := tf.LineStart(line)
	return p + token.Pos(col-1)
}

// onPanicPath reports whether pos sits inside the arguments of a panic
// call: those escapes only allocate when the program is already aborting.
func onPanicPath(info *types.Info, fd *ast.FuncDecl, pos token.Pos) bool {
	for _, n := range nodesAt(fd, pos) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			continue
		}
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	}
	return false
}
