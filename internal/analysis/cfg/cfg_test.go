package cfg

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"sort"
	"testing"
)

// parseBody wraps src in a function and returns its body.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// events runs an event-set dataflow over the graph: every `name()` call
// statement is an event. With must=true the merge is set intersection
// ("on every path"); otherwise union ("on some path"). It returns the
// sorted events reaching Exit, or nil with ok=false if Exit is
// unreachable.
func events(g *Graph, must bool) (names []string, ok bool) {
	type fact = map[string]bool
	merge := func(a, b fact) fact {
		out := fact{}
		for k := range a {
			if !must || b[k] {
				out[k] = true
			}
		}
		if !must {
			for k := range b {
				out[k] = true
			}
		}
		return out
	}
	equal := func(a, b fact) bool { return reflect.DeepEqual(a, b) }
	transfer := func(blk *Block, in fact) fact {
		out := in
		add := func(name string) {
			next := fact{}
			for k := range out {
				next[k] = true
			}
			next[name] = true
			out = next
		}
		for _, n := range blk.Nodes {
			es, isExpr := n.(*ast.ExprStmt)
			if !isExpr {
				continue
			}
			call, isCall := es.X.(*ast.CallExpr)
			if !isCall {
				continue
			}
			if id, isIdent := call.Fun.(*ast.Ident); isIdent {
				add(id.Name)
			}
		}
		return out
	}
	in := Forward(g, fact{}, merge, equal, transfer)
	f, reached := in[g.Exit]
	if !reached {
		return nil, false
	}
	for k := range f {
		names = append(names, k)
	}
	sort.Strings(names)
	return names, true
}

func checkEvents(t *testing.T, src string, wantMust, wantMay []string) {
	t.Helper()
	g := Build(parseBody(t, src))
	for _, c := range []struct {
		must bool
		want []string
	}{{true, wantMust}, {false, wantMay}} {
		got, ok := events(g, c.must)
		if !ok {
			t.Fatalf("must=%v: Exit unreachable\nsrc:\n%s", c.must, src)
		}
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("must=%v: events = %v, want %v\nsrc:\n%s", c.must, got, c.want, src)
		}
	}
}

func TestIfElse(t *testing.T) {
	checkEvents(t, `
a()
if cond {
	b()
} else {
	c()
}
d()`,
		[]string{"a", "d"},
		[]string{"a", "b", "c", "d"})
}

func TestIfWithoutElse(t *testing.T) {
	checkEvents(t, `
if cond {
	b()
}
d()`,
		[]string{"d"},
		[]string{"b", "d"})
}

func TestElseIfChain(t *testing.T) {
	checkEvents(t, `
if c1 {
	a()
} else if c2 {
	b()
} else {
	c()
}
d()`,
		[]string{"d"},
		[]string{"a", "b", "c", "d"})
}

func TestForLoop(t *testing.T) {
	// A conditional loop may run zero times: body events are may-only.
	checkEvents(t, `
for i := 0; i < n; i++ {
	b()
}
d()`,
		[]string{"d"},
		[]string{"b", "d"})
}

func TestInfiniteForWithBreak(t *testing.T) {
	// The only way out is past b(), so b is a must-event.
	checkEvents(t, `
for {
	b()
	if cond {
		break
	}
}
d()`,
		[]string{"b", "d"},
		[]string{"b", "d"})
}

func TestForContinueSkipsTail(t *testing.T) {
	checkEvents(t, `
for i := 0; i < n; i++ {
	if cond {
		continue
	}
	b()
}
d()`,
		[]string{"d"},
		[]string{"b", "d"})
}

func TestRangeLoop(t *testing.T) {
	checkEvents(t, `
for range xs {
	b()
}
d()`,
		[]string{"d"},
		[]string{"b", "d"})
}

func TestSwitchNoDefault(t *testing.T) {
	// Without default the head can fall through to after: no case body
	// is a must-event.
	checkEvents(t, `
switch x {
case 1:
	a()
case 2:
	b()
}
d()`,
		[]string{"d"},
		[]string{"a", "b", "d"})
}

func TestSwitchWithDefaultAllPathsEmit(t *testing.T) {
	checkEvents(t, `
switch x {
case 1:
	a()
	c()
case 2:
	b()
	c()
default:
	c()
}
d()`,
		[]string{"c", "d"},
		[]string{"a", "b", "c", "d"})
}

func TestSwitchFallthrough(t *testing.T) {
	// case 1 falls into case 2, so a-path also sees b.
	src := `
switch x {
case 1:
	a()
	fallthrough
case 2:
	b()
default:
	b()
}
d()`
	checkEvents(t, src, []string{"b", "d"}, []string{"a", "b", "d"})
}

func TestTypeSwitch(t *testing.T) {
	checkEvents(t, `
switch v := x.(type) {
case int:
	a()
	use(v)
default:
	b()
}
d()`,
		[]string{"d"},
		[]string{"a", "b", "d", "use"})
}

func TestSelect(t *testing.T) {
	checkEvents(t, `
select {
case <-ch1:
	a()
case ch2 <- v:
	b()
}
d()`,
		[]string{"d"},
		[]string{"a", "b", "d"})
}

func TestGotoForward(t *testing.T) {
	// goto skips b() on one path; label is also reached by fallthrough
	// from b().
	checkEvents(t, `
a()
if cond {
	goto done
}
b()
done:
d()`,
		[]string{"a", "d"},
		[]string{"a", "b", "d"})
}

func TestGotoBackward(t *testing.T) {
	checkEvents(t, `
retry:
a()
if cond {
	goto retry
}
d()`,
		[]string{"a", "d"},
		[]string{"a", "d"})
}

func TestLabeledBreak(t *testing.T) {
	// break outer exits both loops, skipping c(); b() precedes every
	// exit from the loop nest... but the outer loop may run zero times.
	checkEvents(t, `
outer:
for i := 0; i < n; i++ {
	for {
		b()
		if cond {
			break outer
		}
	}
}
d()`,
		[]string{"d"},
		[]string{"b", "d"})
}

func TestLabeledContinue(t *testing.T) {
	checkEvents(t, `
outer:
for i := 0; i < n; i++ {
	for j := 0; j < n; j++ {
		if cond {
			continue outer
		}
		b()
	}
	c()
}
d()`,
		[]string{"d"},
		[]string{"b", "c", "d"})
}

func TestEarlyReturn(t *testing.T) {
	checkEvents(t, `
a()
if cond {
	b()
	return
}
d()`,
		[]string{"a"},
		[]string{"a", "b", "d"})
}

func TestPanicTerminatesPath(t *testing.T) {
	// The panic arm never reaches Exit, so b() is on every normal path.
	checkEvents(t, `
a()
if cond {
	panic("boom")
}
b()`,
		[]string{"a", "b"},
		[]string{"a", "b"})
}

func TestUnconditionalPanicMakesExitUnreachable(t *testing.T) {
	g := Build(parseBody(t, `
a()
panic("boom")`))
	if _, ok := events(g, false); ok {
		t.Fatal("Exit should be unreachable after unconditional panic")
	}
	if len(g.Panic.Preds) == 0 {
		t.Fatal("panic call should edge into the Panic block")
	}
}

func TestOsExitIsTerminal(t *testing.T) {
	checkEvents(t, `
if cond {
	os.Exit(1)
}
b()`,
		[]string{"b"},
		[]string{"b"})
}

func TestDeferIsAnOrdinaryNode(t *testing.T) {
	g := Build(parseBody(t, `
a()
defer cleanup()
b()`))
	var defers int
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				defers++
			}
		}
	}
	if defers != 1 {
		t.Fatalf("found %d DeferStmt nodes, want 1", defers)
	}
	// The defer registration point is on the straight-line path, so it
	// is a node of a block from which Exit is reachable.
	checkEvents(t, `
a()
defer cleanup()
b()`, []string{"a", "b"}, []string{"a", "b"})
}

func TestNoCompositeStatementsInNodes(t *testing.T) {
	g := Build(parseBody(t, `
a()
if c1 {
	for i := 0; i < n; i++ {
		switch x {
		case 1:
			select {
			case <-ch:
				b()
			}
		}
	}
}
L:
for range xs {
	break L
}
d()`))
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			switch n.(type) {
			case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
				*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt,
				*ast.BlockStmt, *ast.LabeledStmt:
				t.Errorf("composite statement %T stored in Block.Nodes", n)
			}
		}
	}
}

func TestFuncLitIsOpaque(t *testing.T) {
	// The literal's body must not leak events into the outer graph.
	checkEvents(t, `
a()
f := func() {
	hidden()
}
f()
d()`,
		[]string{"a", "d", "f"},
		[]string{"a", "d", "f"})
}

func TestPredsMirrorSuccs(t *testing.T) {
	g := Build(parseBody(t, `
a()
if cond {
	b()
}
for i := 0; i < n; i++ {
	c()
}
d()`))
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			found := false
			for _, p := range s.Preds {
				if p == blk {
					found = true
				}
			}
			if !found {
				t.Fatalf("block %d -> %d edge missing from Preds", blk.Index, s.Index)
			}
		}
	}
}

func TestDeadCodeIsUnreached(t *testing.T) {
	// Code after return parses into blocks but has no in-fact.
	g := Build(parseBody(t, `
a()
return
b()`))
	must, ok := events(g, true)
	if !ok {
		t.Fatal("Exit should be reachable via return")
	}
	if fmt.Sprint(must) != fmt.Sprint([]string{"a"}) {
		t.Fatalf("events = %v, want [a]", must)
	}
}
