package cfg

import (
	"go/ast"
	"go/token"
)

// Block is a basic block: a maximal straight-line run of nodes with
// edges only at the end. Nodes holds simple statements whole and the
// evaluated components of composite statements (see package doc).
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// Graph is the control-flow graph of one function body.
//
// Entry is where execution starts. Exit is the unique normal-return
// block: every return statement and the fall-off-the-end path edge
// into it. Panic collects abnormal exits — panic calls, os.Exit,
// log.Fatal* and runtime.Goexit — so analyses of "every non-panic
// path" can simply ignore it. Exit and Panic carry no nodes and no
// successors.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	Panic  *Block
}

// Build constructs the graph for one function body. The body is not
// mutated. Function literals inside the body are treated as opaque
// values: their inner statements contribute nothing to this graph.
func Build(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: map[string]*Block{}}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	g.Panic = b.newBlock()
	b.cur = g.Entry
	b.stmts(body.List)
	if b.cur != nil {
		b.edge(b.cur, g.Exit)
	}
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return g
}

// builder threads the "current block" through a recursive statement
// walk. cur == nil means the walk is past a terminator (return, goto,
// panic) and subsequent code is unreachable until a label or join
// re-anchors it.
type builder struct {
	g    *Graph
	cur  *Block
	ctrl []ctrlEntry
	// labels maps label names to their blocks; created lazily on first
	// reference so forward gotos work.
	labels map[string]*Block
	// pendingLabel is the label naming the next loop/switch/select, so
	// "break L" and "continue L" can find their targets.
	pendingLabel string
	// fall is the block that ended with a fallthrough, to be wired to
	// the next case clause by the enclosing switch builder.
	fall *Block
}

// ctrlEntry is one enclosing breakable construct (loop, switch or
// select); loops additionally accept continue.
type ctrlEntry struct {
	label      string
	isLoop     bool
	breakTo    *Block
	continueTo *Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// block returns the current block, creating a fresh (unreachable) one
// if the walk is past a terminator, so that dead code still parses into
// blocks instead of panicking the builder.
func (b *builder) block() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *builder) edge(from, to *Block) {
	if from == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

func (b *builder) add(n ast.Node) {
	blk := b.block()
	blk.Nodes = append(blk.Nodes, n)
}

func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) breakTarget(label string) *Block {
	for i := len(b.ctrl) - 1; i >= 0; i-- {
		c := b.ctrl[i]
		if label == "" || c.label == label {
			return c.breakTo
		}
	}
	return nil
}

func (b *builder) continueTarget(label string) *Block {
	for i := len(b.ctrl) - 1; i >= 0; i-- {
		c := b.ctrl[i]
		if !c.isLoop {
			continue
		}
		if label == "" || c.label == label {
			return c.continueTo
		}
	}
	return nil
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.breakTarget(labelName(s)); t != nil {
				b.edge(b.block(), t)
			}
			b.cur = nil
		case token.CONTINUE:
			if t := b.continueTarget(labelName(s)); t != nil {
				b.edge(b.block(), t)
			}
			b.cur = nil
		case token.GOTO:
			b.edge(b.block(), b.labelBlock(s.Label.Name))
			b.cur = nil
		case token.FALLTHROUGH:
			b.fall = b.block()
			b.cur = nil
		}
	case *ast.ExprStmt:
		if isTerminalCall(s.X) {
			b.add(s)
			b.edge(b.cur, b.g.Panic)
			b.cur = nil
			return
		}
		b.add(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	default:
		// Simple statements: assign, send, inc/dec, decl, defer, go,
		// empty. Stored whole.
		b.add(s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	head := b.block()
	after := b.newBlock()
	then := b.newBlock()
	b.edge(head, then)
	if s.Else != nil {
		elseB := b.newBlock()
		b.edge(head, elseB)
		b.cur = then
		b.stmts(s.Body.List)
		b.edge(b.cur, after)
		b.cur = elseB
		b.stmt(s.Else)
		b.edge(b.cur, after)
	} else {
		b.edge(head, after)
		b.cur = then
		b.stmts(s.Body.List)
		b.edge(b.cur, after)
	}
	b.cur = after
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock()
	b.edge(b.block(), head)
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
	}
	body := b.newBlock()
	after := b.newBlock()
	b.edge(head, body)
	if s.Cond != nil {
		b.edge(head, after)
	}
	contTo := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		contTo = post
	}
	b.ctrl = append(b.ctrl, ctrlEntry{label: label, isLoop: true, breakTo: after, continueTo: contTo})
	b.cur = body
	b.stmts(s.Body.List)
	b.edge(b.cur, contTo)
	b.ctrl = b.ctrl[:len(b.ctrl)-1]
	if post != nil {
		b.cur = post
		b.stmt(s.Post)
		b.edge(b.cur, head)
	}
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	b.add(s.X)
	head := b.newBlock()
	b.edge(b.block(), head)
	b.cur = head
	if s.Key != nil {
		b.add(s.Key)
	}
	if s.Value != nil {
		b.add(s.Value)
	}
	body := b.newBlock()
	after := b.newBlock()
	b.edge(head, body)
	b.edge(head, after)
	b.ctrl = append(b.ctrl, ctrlEntry{label: label, isLoop: true, breakTo: after, continueTo: head})
	b.cur = body
	b.stmts(s.Body.List)
	b.edge(b.cur, head)
	b.ctrl = b.ctrl[:len(b.ctrl)-1]
	b.cur = after
}

func (b *builder) switchStmt(s *ast.SwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	head := b.block()
	after := b.newBlock()
	b.caseClauses(s.Body.List, head, after, label, func(cc *ast.CaseClause) {
		for _, e := range cc.List {
			b.add(e)
		}
	})
	b.cur = after
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	// The guard (`v := x.(type)` or `x.(type)`) is stored whole; its
	// type-assert operand is evaluated once at the head.
	b.add(s.Assign)
	head := b.block()
	after := b.newBlock()
	b.caseClauses(s.Body.List, head, after, label, func(*ast.CaseClause) {})
	b.cur = after
}

// caseClauses wires the shared case structure of switch and type
// switch: head fans out to each clause, clauses without fallthrough
// join at after, and a missing default adds a head→after edge.
func (b *builder) caseClauses(list []ast.Stmt, head, after *Block, label string, addExprs func(*ast.CaseClause)) {
	blocks := make([]*Block, len(list))
	hasDefault := false
	for i, c := range list {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		if c.(*ast.CaseClause).List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.ctrl = append(b.ctrl, ctrlEntry{label: label, breakTo: after})
	for i, c := range list {
		cc := c.(*ast.CaseClause)
		b.cur = blocks[i]
		addExprs(cc)
		b.stmts(cc.Body)
		if b.fall != nil {
			if i+1 < len(blocks) {
				b.edge(b.fall, blocks[i+1])
			}
			b.fall = nil
		}
		b.edge(b.cur, after)
	}
	b.ctrl = b.ctrl[:len(b.ctrl)-1]
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.block()
	after := b.newBlock()
	b.ctrl = append(b.ctrl, ctrlEntry{label: label, breakTo: after})
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		blk := b.newBlock()
		b.edge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmts(cc.Body)
		b.edge(b.cur, after)
	}
	b.ctrl = b.ctrl[:len(b.ctrl)-1]
	b.cur = after
}

func labelName(s *ast.BranchStmt) string {
	if s.Label != nil {
		return s.Label.Name
	}
	return ""
}

// isTerminalCall reports whether the expression is a call that never
// returns: panic(...), os.Exit, log.Fatal*, log.Panic*, runtime.Goexit.
// Detection is syntactic — a shadowed `panic` identifier would be
// misclassified — which is acceptable for lint-grade analysis.
func isTerminalCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name {
		case "os":
			return fun.Sel.Name == "Exit"
		case "log":
			return hasPrefix(fun.Sel.Name, "Fatal") || hasPrefix(fun.Sel.Name, "Panic")
		case "runtime":
			return fun.Sel.Name == "Goexit"
		}
	}
	return false
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}
