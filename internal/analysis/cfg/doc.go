// Package cfg builds intra-procedural control-flow graphs over go/ast
// function bodies — basic blocks connected by branch, loop, switch,
// select, goto and panic edges — plus a generic forward-dataflow driver
// for computing per-block reaching facts to a fixpoint.
//
// It is the foundation the concurrency-invariant analyzers (guardfield,
// pairpath, lockhold) stand on: they phrase "the mutex is held on every
// path to this access" and "every acquire reaches a release on all
// non-panic paths" as dataflow over these graphs. The package is pure
// syntax — it never consults go/types — so it stays reusable for any
// statement-level path property.
//
// Two modeling decisions matter to clients:
//
//   - Composite statements never appear in Block.Nodes. An if/for/
//     switch/select contributes its component expressions (condition,
//     range operand, case expressions, comm statements) to the blocks
//     where they are evaluated; simple statements are stored whole.
//     Walking every node of every block therefore visits each
//     expression exactly once.
//   - defer carries no special edges. A DeferStmt appears as an
//     ordinary node at its registration point; analyzers that care
//     (pairpath) treat registering a releasing defer as the release,
//     because from that point on the release runs on every exit,
//     panics included.
//
// Function literals are opaque: their bodies are not folded into the
// enclosing graph, because they execute at some other time (or on some
// other goroutine). Analyzers build a separate graph per literal.
package cfg
