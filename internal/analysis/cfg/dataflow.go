package cfg

// Forward runs a forward dataflow analysis to a fixpoint and returns
// the fact flowing INTO each reached block. Blocks never reached from
// Entry (dead code) are absent from the result.
//
// The merge discipline makes one analysis driver serve both may- and
// must-style analyses: a block's in-fact merges only the facts of
// predecessors actually reached so far, so a must-analysis
// (intersection merge) needs no artificial "top" element — the first
// reaching predecessor seeds the fact and later ones intersect into it.
//
// Facts are treated as immutable values: transfer must not mutate its
// input, and merge must either return one of its arguments unchanged or
// a fresh value. equal stops propagation, so it must be reflexive over
// whatever merge returns.
func Forward[F any](g *Graph, entry F, merge func(F, F) F, equal func(F, F) bool, transfer func(*Block, F) F) map[*Block]F {
	in := map[*Block]F{g.Entry: entry}
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		out := transfer(blk, in[blk])
		for _, s := range blk.Succs {
			cur, seen := in[s]
			next := out
			if seen {
				next = merge(cur, out)
				if equal(next, cur) {
					continue
				}
			}
			in[s] = next
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}
