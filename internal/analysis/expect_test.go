package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// moduleRoot returns the pegflow module root (this package lives at
// internal/analysis).
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// wantRe extracts the expectation from a `// want "regex"` or
// // want `regex` comment.
var wantRe = regexp.MustCompile("// want\\s+[\"`](.+)[\"`]")

// expectation is one `// want` comment in a fixture file.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// runFixture loads the fixture package pattern, runs the single analyzer,
// and matches findings 1:1 against the fixture's `// want` comments. A
// missing finding means the analyzer has been neutered; an extra one
// means it over-reports. Both fail.
func runFixture(t *testing.T, a Analyzer, pattern string) {
	t.Helper()
	prog, err := Load(moduleRoot(t), pattern)
	if err != nil {
		t.Fatal(err)
	}
	suite := &Suite{Analyzers: []Analyzer{a}}
	findings, err := suite.Run(prog)
	if err != nil {
		t.Fatal(err)
	}

	var wants []*expectation
	for _, pkg := range prog.Module {
		if !strings.Contains(pkg.Path, "testdata") {
			continue
		}
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regex %q: %v", m[1], err)
					}
					pos := prog.Fset.Position(c.Pos())
					wants = append(wants, &expectation{
						file: relFile(prog.Dir, pos.Filename),
						line: pos.Line,
						re:   re,
					})
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no // want comments", pattern)
	}

	var unexpected []string
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == f.File && w.line == f.Line && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			unexpected = append(unexpected, f.String())
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected finding matching %q was not reported (analyzer neutered?)", w.file, w.line, w.re)
		}
	}
	for _, u := range unexpected {
		t.Errorf("unexpected finding: %s", u)
	}
}

func fixturePath(analyzer string) string {
	return "./internal/analysis/testdata/src/" + analyzer + "/a"
}

func TestDetSourceFixture(t *testing.T) {
	a := &DetSource{Packages: []string{"pegflow/internal/analysis/testdata/src/detsource/..."}}
	runFixture(t, a, fixturePath("detsource"))
}

func TestDetRangeFixture(t *testing.T) {
	a := &DetRange{Packages: []string{"pegflow/internal/analysis/testdata/src/detrange/..."}}
	runFixture(t, a, fixturePath("detrange"))
}

func TestCloneGateFixture(t *testing.T) {
	a := NewCloneGate()
	a.AllowedFuncs = map[string]string{
		"pegflow/internal/analysis/testdata/src/clonegate/a.freshCloneMutation": "fixture: mutates its own fresh clone",
	}
	runFixture(t, a, fixturePath("clonegate"))
}

func TestSlabCopyFixture(t *testing.T) {
	runFixture(t, &SlabCopy{}, fixturePath("slabcopy"))
}

func TestGuardFieldFixture(t *testing.T) {
	runFixture(t, &GuardField{}, fixturePath("guardfield"))
}

func TestPairPathFixture(t *testing.T) {
	runFixture(t, &PairPath{}, fixturePath("pairpath"))
}

func TestCtxFlowFixture(t *testing.T) {
	a := &CtxFlow{Packages: []string{"pegflow/internal/analysis/testdata/src/ctxflow/..."}}
	runFixture(t, a, fixturePath("ctxflow"))
}

func TestLockHoldFixture(t *testing.T) {
	a := &LockHold{
		Packages:      []string{"pegflow/internal/analysis/testdata/src/lockhold/..."},
		BlockingCalls: []string{"pegflow/internal/analysis/testdata/src/lockhold/a.simulate"},
	}
	runFixture(t, a, fixturePath("lockhold"))
}

// TestFixturesAreOutsideRepoLintScope pins the property the self-check
// relies on: `go list ./...` never expands into testdata, so the
// deliberately broken fixtures cannot dirty the repo lint.
func TestFixturesAreOutsideRepoLintScope(t *testing.T) {
	prog, err := Load(moduleRoot(t), "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range prog.Module {
		if strings.Contains(pkg.Path, "testdata") {
			t.Fatalf("testdata package %s leaked into ./... load", pkg.Path)
		}
	}
}
