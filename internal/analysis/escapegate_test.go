package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// escapemodDir is the standalone fixture module (its own go.mod, so the
// repo's ./... never sees it).
func escapemodDir(t *testing.T) string {
	t.Helper()
	return filepath.Join(moduleRoot(t), "internal", "analysis", "testdata", "escapemod")
}

func runEscapeGate(t *testing.T, dir string, gate *EscapeGate, patterns ...string) []Finding {
	t.Helper()
	prog, err := Load(dir, patterns...)
	if err != nil {
		t.Fatal(err)
	}
	suite := &Suite{Analyzers: []Analyzer{gate}}
	findings, err := suite.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

// TestEscapeGateFixture drives the toy kernel module: the clean function
// and the panic-path-only function pass, the deliberate allocation fails.
func TestEscapeGateFixture(t *testing.T) {
	dir := escapemodDir(t)

	t.Run("clean and panic-path functions pass", func(t *testing.T) {
		gate := &EscapeGate{Guards: []EscapeGuard{{
			Pkg: "escapemod/kernel", Funcs: []string{"Sim.Clean", "Sim.PanicsOnly"},
		}}}
		if fs := runEscapeGate(t, dir, gate, "./..."); len(fs) != 0 {
			t.Fatalf("clean guards produced findings: %v", fs)
		}
	})

	t.Run("deliberate allocation is flagged", func(t *testing.T) {
		gate := &EscapeGate{Guards: []EscapeGuard{{
			Pkg: "escapemod/kernel", Funcs: []string{"Sim.Clean", "Sim.Dirty"},
		}}}
		fs := runEscapeGate(t, dir, gate, "./...")
		if len(fs) == 0 {
			t.Fatal("escapegate did not flag Sim.Dirty's new(int64) escape")
		}
		for _, f := range fs {
			if f.Key != "Sim.Dirty" {
				t.Errorf("finding outside Sim.Dirty: %v", f)
			}
			if !strings.Contains(f.Message, "escapes to heap") {
				t.Errorf("finding does not carry the compiler diagnostic: %v", f)
			}
		}
	})

	t.Run("stale guard list errors instead of guarding nothing", func(t *testing.T) {
		gate := &EscapeGate{Guards: []EscapeGuard{{
			Pkg: "escapemod/kernel", Funcs: []string{"Sim.Renamed"},
		}}}
		prog, err := Load(dir, "./...")
		if err != nil {
			t.Fatal(err)
		}
		err = gate.Run(prog, func(token.Position, string, string) {})
		if err == nil || !strings.Contains(err.Error(), "Sim.Renamed") {
			t.Fatalf("want stale-guard error naming Sim.Renamed, got %v", err)
		}
	})
}

// TestEscapeGateCatchesInjectedKernelAllocation is the acceptance demo:
// copy the real DES kernel into a scratch module, inject one allocation
// into the guarded Step hot path, and assert the gate fails. This proves
// the production guard list would catch a real regression, not just the
// toy fixture.
func TestEscapeGateCatchesInjectedKernelAllocation(t *testing.T) {
	root := moduleRoot(t)
	src := filepath.Join(root, "internal", "sim", "des")
	tmp := t.TempDir()
	if err := os.WriteFile(filepath.Join(tmp, "go.mod"), []byte("module desmod\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	injected := false
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		text := string(data)
		if name == "des.go" {
			// One deliberate allocation on the fire path of Step.
			const anchor = "s.processed++"
			if !strings.Contains(text, anchor) {
				t.Fatalf("injection anchor %q missing from des.go; update the test", anchor)
			}
			text = strings.Replace(text, anchor,
				anchor+"\n\tescapeSink = append(escapeSink, new(uint64)) // injected regression\n\t_ = escapeSink",
				1)
			text += "\n// escapeSink forces the injected allocation to escape.\nvar escapeSink []*uint64\n"
			injected = true
		}
		if err := os.WriteFile(filepath.Join(tmp, name), []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if !injected {
		t.Fatal("des.go not found in kernel copy")
	}

	gate := &EscapeGate{Guards: []EscapeGuard{{Pkg: "desmod", Funcs: []string{"Simulation.Step"}}}}
	fs := runEscapeGate(t, tmp, gate, ".")
	if len(fs) == 0 {
		t.Fatal("escapegate passed a kernel with an injected allocation in Simulation.Step")
	}
	for _, f := range fs {
		if f.Key != "Simulation.Step" {
			t.Errorf("finding attributed outside Step: %v", f)
		}
	}

	// Control: the pristine kernel under the same guard is clean.
	clean := &EscapeGate{Guards: []EscapeGuard{{
		Pkg: "pegflow/internal/sim/des", Funcs: []string{"Simulation.Step"},
	}}}
	if fs := runEscapeGate(t, root, clean, "./internal/sim/des"); len(fs) != 0 {
		t.Fatalf("pristine kernel flagged: %v", fs)
	}
}
