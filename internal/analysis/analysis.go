package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	// Analyzer names the analyzer that produced the finding.
	Analyzer string `json:"analyzer"`
	// File is the source file, relative to the analyzed module root when
	// possible.
	File string `json:"file"`
	// Line and Col locate the finding (1-based).
	Line int `json:"line"`
	Col  int `json:"col"`
	// Key is the stable allowlist key — what was matched (e.g. the
	// forbidden callee "time.Now", or the mutated field
	// "planner.Job.ExecSeconds"), independent of line numbers so
	// allowlist entries survive unrelated edits.
	Key string `json:"key"`
	// Message is the human-readable diagnostic.
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzer is one whole-program check.
type Analyzer interface {
	// Name is the analyzer's flag/allowlist identifier.
	Name() string
	// Doc is a one-line description of the invariant the analyzer guards.
	Doc() string
	// Run inspects the program and reports findings. Position and
	// analyzer stamping are handled by the caller's report func.
	Run(prog *Program, report func(pos token.Position, key, message string)) error
}

// Suite is a configured set of analyzers plus an allowlist.
type Suite struct {
	Analyzers []Analyzer
	Allow     *Allowlist
}

// Run executes every analyzer over the program, applies the allowlist,
// and returns the surviving findings sorted by position. Allowlist
// entries that matched nothing become findings themselves: a stale
// suppression is a lint error, so the file can only shrink when the code
// it excuses is gone.
func (s *Suite) Run(prog *Program) ([]Finding, error) {
	var out []Finding
	for _, a := range s.Analyzers {
		name := a.Name()
		report := func(pos token.Position, key, message string) {
			f := Finding{
				Analyzer: name,
				File:     relFile(prog.Dir, pos.Filename),
				Line:     pos.Line,
				Col:      pos.Column,
				Key:      key,
				Message:  message,
			}
			if s.Allow != nil && s.Allow.permits(f) {
				return
			}
			out = append(out, f)
		}
		if err := a.Run(prog, report); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
	}
	if s.Allow != nil {
		enabled := make(map[string]bool, len(s.Analyzers))
		for _, a := range s.Analyzers {
			enabled[a.Name()] = true
		}
		out = append(out, s.Allow.unused(enabled)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out, nil
}

// relFile rewrites filename relative to dir (slash-separated) when it is
// inside it, for stable, machine-independent finding output.
func relFile(dir, filename string) string {
	if dir == "" {
		return filepath.ToSlash(filename)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return filepath.ToSlash(filename)
	}
	if rel, err := filepath.Rel(abs, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

// matchPath reports whether an import path matches any pattern. Patterns
// are exact import paths, or subtree patterns ending in "/..." which
// match the prefix package and everything below it.
func matchPath(path string, patterns []string) bool {
	for _, p := range patterns {
		if prefix, ok := strings.CutSuffix(p, "/..."); ok {
			if path == prefix || strings.HasPrefix(path, prefix+"/") {
				return true
			}
			continue
		}
		if path == p {
			return true
		}
	}
	return false
}
