package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// calleeObj resolves the called object of a call expression: a
// *types.Func for ordinary and method calls, a *types.Builtin for
// builtins, nil for indirect calls through variables.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		// Package-qualified call (pkg.Func): the selector identifier
		// resolves directly.
		return info.Uses[fun.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is the package-level function pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// funcDisplayName renders a FuncDecl as "Name" or "Recv.Name" with any
// pointer/generic decoration stripped, matching the escapegate and
// clonegate configuration syntax.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name + "." + fd.Name.Name
		default:
			return fd.Name.Name
		}
	}
}

// enclosingFuncDecl returns the function declaration whose body spans pos,
// or nil.
func enclosingFuncDecl(files []*ast.File, pos token.Pos) *ast.FuncDecl {
	for _, f := range files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil && fd.Body.Pos() <= pos && pos <= fd.Body.End() {
				return fd
			}
		}
	}
	return nil
}

// nodesAt returns the chain of nodes containing pos, outermost first.
func nodesAt(root ast.Node, pos token.Pos) []ast.Node {
	var path []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() <= pos && pos < n.End() {
			path = append(path, n)
			return true
		}
		return false
	})
	return path
}

// namedType unwraps t to its *types.Named form, looking through pointers
// and aliases; nil if t has no named core.
func namedType(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// typeKey renders a named type as "pkg/path.Name" (the generic origin for
// instantiated types), or "" for unnamed types.
func typeKey(t types.Type) string {
	n := namedType(t)
	if n == nil {
		return ""
	}
	n = n.Origin()
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
