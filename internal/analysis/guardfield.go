package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"pegflow/internal/analysis/cfg"
)

// GuardField enforces mutex/field association: a field or variable
// annotated //pegflow:guarded <mutex> may only be read while the mutex
// is held on EVERY control-flow path to the access, and only written
// while it is held exclusively (an RLock does not license writes).
// Functions annotated //pegflow:holds <mutex> are checked with the
// mutex assumed held and their callers are checked for holding it.
//
// The analysis is a must-dataflow over the intra-procedural CFG:
// Lock/RLock generate a hold fact keyed by (root identifier, selector
// path), Unlock/RUnlock kill it, and joins intersect — so a lock taken
// on only one arm of a branch does not count after the join. A
// `defer mu.Unlock()` deliberately does NOT kill the fact: the mutex
// stays held until the function returns. Function literals are
// analyzed as separate functions with no inherited holds, which is
// exactly right for goroutine bodies and deferred closures that must
// do their own locking.
type GuardField struct{}

func (*GuardField) Name() string { return "guardfield" }
func (*GuardField) Doc() string {
	return "flag accesses to //pegflow:guarded fields on paths where the guarding mutex is not held"
}

// guardKind is the strength of a held lock.
type guardKind int

const (
	heldRead guardKind = iota + 1
	heldExcl
)

// guardFact maps held synchronizers to the strength of the hold.
// Treated as immutable; transfer copies on write.
type guardFact map[holdKey]guardKind

func (g *GuardField) Run(prog *Program, report func(pos token.Position, key, message string)) error {
	m := collectConcMarkers(prog)
	for _, p := range m.problems {
		report(prog.Fset.Position(p.pos), p.key, p.msg)
	}
	if len(m.fields) == 0 && len(m.vars) == 0 && len(m.holds) == 0 {
		return nil
	}
	for _, pkg := range prog.Module {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				g.checkFunc(prog, pkg, m, fd.Body, g.entryFact(pkg, m, fd), report)
			}
			ast.Inspect(file, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					g.checkFunc(prog, pkg, m, fl.Body, guardFact{}, report)
				}
				return true
			})
		}
	}
	return nil
}

// entryFact seeds the dataflow for //pegflow:holds functions: the named
// mutex is held (exclusively) on entry.
func (g *GuardField) entryFact(pkg *Package, m *concMarkers, fd *ast.FuncDecl) guardFact {
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return guardFact{}
	}
	spec, ok := m.holds[fn]
	if !ok {
		return guardFact{}
	}
	if spec.pkgVar != nil {
		return guardFact{{root: spec.pkgVar}: heldExcl}
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return guardFact{}
	}
	recvObj := pkg.Info.Defs[fd.Recv.List[0].Names[0]]
	if recvObj == nil {
		return guardFact{}
	}
	return guardFact{{root: recvObj, path: spec.name}: heldExcl}
}

func (g *GuardField) checkFunc(prog *Program, pkg *Package, m *concMarkers, body *ast.BlockStmt, entry guardFact, report func(pos token.Position, key, message string)) {
	graph := cfg.Build(body)
	in := cfg.Forward(graph, entry, mergeGuard, equalGuard, func(blk *cfg.Block, f guardFact) guardFact {
		for _, n := range blk.Nodes {
			f = g.step(pkg, f, n)
		}
		return f
	})
	for _, blk := range graph.Blocks {
		f, reached := in[blk]
		if !reached {
			continue
		}
		for _, n := range blk.Nodes {
			g.checkNode(prog, pkg, m, f, n, report)
			f = g.step(pkg, f, n)
		}
	}
}

// step applies the lock gen/kill effects of one CFG node. Defers are
// skipped wholesale: `defer mu.Unlock()` keeps the mutex held to the
// end of the function, so it must not kill the fact.
func (g *GuardField) step(pkg *Package, f guardFact, n ast.Node) guardFact {
	if _, ok := n.(*ast.DeferStmt); ok {
		return f
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, recv := syncCall(pkg.Info, call)
		if op == opNone {
			return true
		}
		key, ok := syncKey(pkg.Info, recv)
		if !ok {
			return true
		}
		switch op {
		case opLock:
			f = f.with(key, heldExcl)
		case opRLock:
			f = f.with(key, heldRead)
		case opUnlock, opRUnlock:
			f = f.without(key)
		}
		return true
	})
	return f
}

// checkNode reports guarded accesses and //pegflow:holds calls in one
// node against the fact holding before the node executes.
func (g *GuardField) checkNode(prog *Program, pkg *Package, m *concMarkers, f guardFact, n ast.Node, report func(pos token.Position, key, message string)) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	writes := writeTargets(n)
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectorExpr:
			g.checkFieldAccess(prog, pkg, m, f, c, writes[c], report)
		case *ast.Ident:
			g.checkVarAccess(prog, pkg, m, f, c, writes[c], report)
		case *ast.CallExpr:
			g.checkHoldsCall(prog, pkg, m, f, c, report)
		}
		return true
	})
}

func (g *GuardField) checkFieldAccess(prog *Program, pkg *Package, m *concMarkers, f guardFact, sel *ast.SelectorExpr, isWrite bool, report func(pos token.Position, key, message string)) {
	var obj types.Object
	if s, ok := pkg.Info.Selections[sel]; ok {
		obj = s.Obj()
	} else {
		obj = pkg.Info.Uses[sel.Sel]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	ref, guarded := m.fields[v]
	if !guarded {
		return
	}
	pos := prog.Fset.Position(sel.Pos())
	root, basePath, ok := exprRootPath(pkg.Info, sel.X)
	if !ok {
		report(pos, ref.display, fmt.Sprintf("guarded field %s accessed through a non-identifier base; bind the owner to a local (sh := &...) so its mutex can be tracked", ref.display))
		return
	}
	key := holdKey{root: root, path: joinPath(basePath, ref.guardName)}
	g.reportHold(pos, f, key, ref.display, isWrite, report)
}

func (g *GuardField) checkVarAccess(prog *Program, pkg *Package, m *concMarkers, f guardFact, id *ast.Ident, isWrite bool, report func(pos token.Position, key, message string)) {
	v, ok := pkg.Info.Uses[id].(*types.Var)
	if !ok {
		return
	}
	ref, guarded := m.vars[v]
	if !guarded {
		return
	}
	key := holdKey{root: ref.guard}
	g.reportHold(prog.Fset.Position(id.Pos()), f, key, ref.display, isWrite, report)
}

func (g *GuardField) reportHold(pos token.Position, f guardFact, key holdKey, display string, isWrite bool, report func(pos token.Position, key, message string)) {
	kind, held := f[key]
	switch {
	case !held:
		report(pos, display, fmt.Sprintf("%s is //pegflow:guarded, but %s is not held on every path to this access", display, key))
	case isWrite && kind == heldRead:
		report(pos, display, fmt.Sprintf("write to %s while holding only the read lock on %s; writes need the exclusive Lock", display, key))
	}
}

func (g *GuardField) checkHoldsCall(prog *Program, pkg *Package, m *concMarkers, f guardFact, call *ast.CallExpr, report func(pos token.Position, key, message string)) {
	fn, ok := calleeObj(pkg.Info, call).(*types.Func)
	if !ok {
		return
	}
	spec, ok := m.holds[fn]
	if !ok {
		return
	}
	pos := prog.Fset.Position(call.Pos())
	var key holdKey
	if spec.pkgVar != nil {
		key = holdKey{root: spec.pkgVar}
	} else {
		sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !isSel {
			return
		}
		root, basePath, okRoot := exprRootPath(pkg.Info, sel.X)
		if !okRoot {
			report(pos, spec.display, fmt.Sprintf("call to %s (//pegflow:holds %s) through a non-identifier receiver; bind it to a local so the held mutex can be tracked", spec.display, spec.name))
			return
		}
		key = holdKey{root: root, path: joinPath(basePath, spec.name)}
	}
	if f[key] != heldExcl {
		report(pos, spec.display, fmt.Sprintf("call to %s requires %s held (//pegflow:holds %s), but it is not held on every path here", spec.display, key, spec.name))
	}
}

// writeTargets returns the set of lvalue expressions a node writes to
// (or escapes with &), with index/star wrappers stripped so the map or
// struct field itself is the recorded target.
func writeTargets(n ast.Node) map[ast.Node]bool {
	out := map[ast.Node]bool{}
	mark := func(e ast.Expr) {
		for {
			switch t := ast.Unparen(e).(type) {
			case *ast.IndexExpr:
				e = t.X
			case *ast.StarExpr:
				e = t.X
			default:
				out[ast.Unparen(e)] = true
				return
			}
		}
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range c.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(c.X)
		case *ast.UnaryExpr:
			if c.Op == token.AND {
				mark(c.X)
			}
		}
		return true
	})
	return out
}

func (f guardFact) with(k holdKey, kind guardKind) guardFact {
	out := make(guardFact, len(f)+1)
	for key, v := range f {
		out[key] = v
	}
	out[k] = kind
	return out
}

func (f guardFact) without(k holdKey) guardFact {
	if _, ok := f[k]; !ok {
		return f
	}
	out := make(guardFact, len(f))
	for key, v := range f {
		if key != k {
			out[key] = v
		}
	}
	return out
}

// mergeGuard intersects: a hold survives a join only if every reaching
// path holds it, at the weaker of the two strengths.
func mergeGuard(a, b guardFact) guardFact {
	out := guardFact{}
	for k, ka := range a {
		if kb, ok := b[k]; ok {
			kind := ka
			if kb < kind {
				kind = kb
			}
			out[k] = kind
		}
	}
	return out
}

func equalGuard(a, b guardFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
