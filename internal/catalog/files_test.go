package catalog

import (
	"bytes"
	"strings"
	"testing"
)

func TestSiteCatalogFileRoundTrip(t *testing.T) {
	c := NewSiteCatalog()
	if err := c.Add(&Site{Name: "sandhills", Arch: "x86_64", OS: "linux",
		Slots: 300, SpeedFactor: 1.0, SharedSoftware: true, StageInMBps: 200}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(&Site{Name: "osg", Slots: 600, SpeedFactor: 0.85,
		Heterogeneous: true, StageInMBps: 40}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteSites(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSites(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := got.Lookup("sandhills")
	if err != nil {
		t.Fatal(err)
	}
	if sh.Arch != "x86_64" || sh.Slots != 300 || !sh.SharedSoftware || sh.StageInMBps != 200 {
		t.Errorf("sandhills = %+v", sh)
	}
	osg, err := got.Lookup("osg")
	if err != nil {
		t.Fatal(err)
	}
	if osg.Arch != "" || !osg.Heterogeneous || osg.SpeedFactor != 0.85 {
		t.Errorf("osg = %+v", osg)
	}
}

func TestReadSitesErrors(t *testing.T) {
	bad := []string{
		"notasite x slots=1 speed=1\n",
		"site\n",
		"site x slots=abc speed=1\n",
		"site x slots=1 speed=1 wat=7\n",
		"site x slots=1 speed=1 shared_software\n",
		"site x slots=0 speed=1\n", // rejected by Add
	}
	for i, in := range bad {
		if _, err := ReadSites(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: bad site line accepted: %q", i, in)
		}
	}
}

func TestReadSitesSkipsCommentsAndBlank(t *testing.T) {
	in := "# header\n\nsite a slots=2 speed=1.5\n"
	c, err := ReadSites(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Lookup("a")
	if err != nil || s.SpeedFactor != 1.5 {
		t.Errorf("site a = %+v, %v", s, err)
	}
}

func TestTransformationCatalogFileRoundTrip(t *testing.T) {
	c := NewTransformationCatalog()
	if err := c.Add(&Transformation{Name: "run_cap3", Site: "sandhills",
		PFN: "/util/opt/cap3", Installed: true}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(&Transformation{Name: "run_cap3", Site: "osg",
		PFN: "cap3.tar.gz", InstallBytes: 45 << 20}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteTransformations(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTransformations(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := got.Lookup("run_cap3", "sandhills")
	if err != nil || !a.Installed || a.PFN != "/util/opt/cap3" {
		t.Errorf("sandhills entry = %+v, %v", a, err)
	}
	b, err := got.Lookup("run_cap3", "osg")
	if err != nil || b.Installed || b.InstallBytes != 45<<20 {
		t.Errorf("osg entry = %+v, %v", b, err)
	}
}

func TestReadTransformationsErrors(t *testing.T) {
	bad := []string{
		"xx name site=s\n",
		"tr\n",
		"tr t site=s installed=maybe\n",
		"tr t site=s install_bytes=many\n",
		"tr t site=s color=red\n",
		"tr t\n", // empty site rejected by Add
	}
	for i, in := range bad {
		if _, err := ReadTransformations(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: bad tr line accepted: %q", i, in)
		}
	}
}

func TestReplicaCatalogFileRoundTrip(t *testing.T) {
	c := NewReplicaCatalog()
	if err := c.Add("transcripts.fasta", Replica{Site: "local", PFN: "/data/t.fasta"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("transcripts.fasta", Replica{Site: "osg", PFN: "gsiftp://x/t.fasta"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("alignments.out", Replica{Site: "local", PFN: "/data/a.out"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteReplicas(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReplicas(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := got.Lookup("transcripts.fasta")
	if err != nil || len(rs) != 2 {
		t.Fatalf("replicas = %v, %v", rs, err)
	}
	if rs[0].Site != "local" || rs[1].PFN != "gsiftp://x/t.fasta" {
		t.Errorf("replicas = %v", rs)
	}
}

func TestReadReplicasDefaultSiteAndErrors(t *testing.T) {
	got, err := ReadReplicas(strings.NewReader("f /path/f\n"))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := got.Lookup("f")
	if err != nil || rs[0].Site != "local" {
		t.Errorf("default site = %v, %v", rs, err)
	}
	for i, in := range []string{"justonefield\n", "f /p color=red\n"} {
		if _, err := ReadReplicas(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: bad replica line accepted", i)
		}
	}
}
