package catalog

import (
	"strings"
	"testing"
)

func TestSiteCatalogAddLookup(t *testing.T) {
	c := NewSiteCatalog()
	s := &Site{Name: "sandhills", Slots: 50, SpeedFactor: 1.0, SharedSoftware: true}
	if err := c.Add(s); err != nil {
		t.Fatal(err)
	}
	got, err := c.Lookup("sandhills")
	if err != nil || got != s {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
	if _, err := c.Lookup("nowhere"); err == nil {
		t.Error("unknown site lookup succeeded")
	}
}

func TestSiteCatalogRejectsInvalid(t *testing.T) {
	c := NewSiteCatalog()
	cases := []*Site{
		{Name: "", Slots: 1, SpeedFactor: 1},
		{Name: "x", Slots: 0, SpeedFactor: 1},
		{Name: "x", Slots: -3, SpeedFactor: 1},
		{Name: "x", Slots: 1, SpeedFactor: 0},
	}
	for i, s := range cases {
		if err := c.Add(s); err == nil {
			t.Errorf("case %d: invalid site accepted: %+v", i, s)
		}
	}
	ok := &Site{Name: "x", Slots: 1, SpeedFactor: 1}
	if err := c.Add(ok); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(&Site{Name: "x", Slots: 2, SpeedFactor: 1}); err == nil {
		t.Error("duplicate site accepted")
	}
}

func TestSiteCatalogNamesSorted(t *testing.T) {
	c := NewSiteCatalog()
	for _, n := range []string{"osg", "local", "sandhills"} {
		if err := c.Add(&Site{Name: n, Slots: 1, SpeedFactor: 1}); err != nil {
			t.Fatal(err)
		}
	}
	names := c.Names()
	if len(names) != 3 || names[0] != "local" || names[1] != "osg" || names[2] != "sandhills" {
		t.Errorf("Names = %v", names)
	}
}

func TestTransformationCatalog(t *testing.T) {
	c := NewTransformationCatalog()
	if err := c.Add(&Transformation{Name: "run_cap3", Site: "sandhills", PFN: "/usr/bin/cap3", Installed: true}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(&Transformation{Name: "run_cap3", Site: "osg", PFN: "cap3.tar.gz", InstallBytes: 40 << 20}); err != nil {
		t.Fatal(err)
	}
	sh, err := c.Lookup("run_cap3", "sandhills")
	if err != nil || !sh.Installed {
		t.Fatalf("sandhills entry: %+v, %v", sh, err)
	}
	osg, err := c.Lookup("run_cap3", "osg")
	if err != nil || osg.Installed {
		t.Fatalf("osg entry: %+v, %v", osg, err)
	}
	if _, err := c.Lookup("run_cap3", "cloud"); err == nil {
		t.Error("missing site lookup succeeded")
	}
	if _, err := c.Lookup("nope", "osg"); err == nil {
		t.Error("missing transformation lookup succeeded")
	}
}

func TestTransformationCatalogErrors(t *testing.T) {
	c := NewTransformationCatalog()
	if err := c.Add(&Transformation{Name: "", Site: "x"}); err == nil {
		t.Error("empty name accepted")
	}
	if err := c.Add(&Transformation{Name: "t", Site: ""}); err == nil {
		t.Error("empty site accepted")
	}
	if err := c.Add(&Transformation{Name: "t", Site: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(&Transformation{Name: "t", Site: "x"}); err == nil {
		t.Error("duplicate (name, site) accepted")
	}
	if names := c.Names(); len(names) != 1 || names[0] != "t" {
		t.Errorf("Names = %v", names)
	}
}

func TestReplicaCatalog(t *testing.T) {
	c := NewReplicaCatalog()
	if c.Has("transcripts.fasta") {
		t.Error("Has on empty catalog")
	}
	if err := c.Add("transcripts.fasta", Replica{Site: "local", PFN: "/data/transcripts.fasta"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("transcripts.fasta", Replica{Site: "osg", PFN: "gsiftp://osg/transcripts.fasta"}); err != nil {
		t.Fatal(err)
	}
	rs, err := c.Lookup("transcripts.fasta")
	if err != nil || len(rs) != 2 {
		t.Fatalf("Lookup = %v, %v", rs, err)
	}
	if !c.Has("transcripts.fasta") {
		t.Error("Has = false after Add")
	}
	if _, err := c.Lookup("missing"); err == nil {
		t.Error("missing LFN lookup succeeded")
	}
}

func TestReplicaCatalogRejectsDupAndEmpty(t *testing.T) {
	c := NewReplicaCatalog()
	if err := c.Add("", Replica{Site: "local", PFN: "/x"}); err == nil {
		t.Error("empty LFN accepted")
	}
	r := Replica{Site: "local", PFN: "/x"}
	if err := c.Add("f", r); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("f", r); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate replica accepted: %v", err)
	}
	if lfns := c.LFNs(); len(lfns) != 1 || lfns[0] != "f" {
		t.Errorf("LFNs = %v", lfns)
	}
}
