// Package catalog implements the three Pegasus-style catalogs the planner
// consults when mapping an abstract workflow onto a concrete site:
//
//   - the site catalog, describing execution sites and their resources;
//   - the transformation catalog, mapping logical executable names to
//     physical locations per site (and whether they are preinstalled);
//   - the replica catalog, mapping logical file names to physical replicas.
package catalog
