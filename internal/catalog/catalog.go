package catalog

import (
	"fmt"
	"sort"
)

// Site describes one execution platform entry in the site catalog.
type Site struct {
	// Name identifies the site (e.g. "sandhills", "osg", "local").
	Name string
	// Arch and OS describe the platform (informational).
	Arch, OS string
	// Slots is the number of job slots the workflow can hold at once.
	Slots int
	// SpeedFactor scales job execution time relative to the reference
	// machine (1.0 = reference; <1.0 = faster nodes).
	SpeedFactor float64
	// Heterogeneous marks sites whose nodes vary in speed; the platform
	// model then draws a per-node factor around SpeedFactor.
	Heterogeneous bool
	// SharedSoftware reports whether the site maintains a shared software
	// stack (true for a campus cluster). When false, any transformation
	// not marked installed at the site needs a download/install step.
	SharedSoftware bool
	// StageInMBps is the effective data staging bandwidth in MB/s.
	StageInMBps float64
	// Profiles carries site-level tuning knobs.
	Profiles map[string]string
}

// SiteCatalog is a set of sites keyed by name.
type SiteCatalog struct {
	sites map[string]*Site
}

// NewSiteCatalog returns an empty site catalog.
func NewSiteCatalog() *SiteCatalog {
	return &SiteCatalog{sites: make(map[string]*Site)}
}

// Add inserts a site, rejecting duplicates and invalid entries.
func (c *SiteCatalog) Add(s *Site) error {
	if s.Name == "" {
		return fmt.Errorf("catalog: site with empty name")
	}
	if s.Slots <= 0 {
		return fmt.Errorf("catalog: site %q with non-positive slots %d", s.Name, s.Slots)
	}
	if s.SpeedFactor <= 0 {
		return fmt.Errorf("catalog: site %q with non-positive speed factor %v", s.Name, s.SpeedFactor)
	}
	if _, dup := c.sites[s.Name]; dup {
		return fmt.Errorf("catalog: duplicate site %q", s.Name)
	}
	c.sites[s.Name] = s
	return nil
}

// Lookup returns the site with the given name.
func (c *SiteCatalog) Lookup(name string) (*Site, error) {
	s, ok := c.sites[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown site %q", name)
	}
	return s, nil
}

// Names returns the sorted site names.
func (c *SiteCatalog) Names() []string {
	out := make([]string, 0, len(c.sites))
	for n := range c.sites {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Transformation is one entry in the transformation catalog.
type Transformation struct {
	// Name is the logical transformation name (e.g. "run_cap3").
	Name string
	// Site is the site this entry applies to.
	Site string
	// PFN is the physical path of the executable at the site.
	PFN string
	// Installed reports whether the executable (and its dependency
	// stack, e.g. Python+Biopython for blast2cap3) is preinstalled at
	// the site. When false the planner injects a download/install step.
	Installed bool
	// InstallBytes is the approximate download size of the software
	// stack when it must be staged (0 when Installed).
	InstallBytes int64
}

// TransformationCatalog maps (name, site) to transformation entries.
type TransformationCatalog struct {
	entries map[string]map[string]*Transformation // name → site → entry
}

// NewTransformationCatalog returns an empty transformation catalog.
func NewTransformationCatalog() *TransformationCatalog {
	return &TransformationCatalog{entries: make(map[string]map[string]*Transformation)}
}

// Add inserts an entry, rejecting duplicates for the same (name, site).
func (c *TransformationCatalog) Add(t *Transformation) error {
	if t.Name == "" || t.Site == "" {
		return fmt.Errorf("catalog: transformation with empty name or site")
	}
	bySite := c.entries[t.Name]
	if bySite == nil {
		bySite = make(map[string]*Transformation)
		c.entries[t.Name] = bySite
	}
	if _, dup := bySite[t.Site]; dup {
		return fmt.Errorf("catalog: duplicate transformation %q at site %q", t.Name, t.Site)
	}
	bySite[t.Site] = t
	return nil
}

// Lookup returns the entry for (name, site).
func (c *TransformationCatalog) Lookup(name, site string) (*Transformation, error) {
	if bySite, ok := c.entries[name]; ok {
		if t, ok := bySite[site]; ok {
			return t, nil
		}
	}
	return nil, fmt.Errorf("catalog: transformation %q not registered at site %q", name, site)
}

// Names returns the sorted logical transformation names.
func (c *TransformationCatalog) Names() []string {
	out := make([]string, 0, len(c.entries))
	for n := range c.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Replica is one physical copy of a logical file.
type Replica struct {
	// Site holds the replica ("local" = the submit host).
	Site string
	// PFN is the physical file name at that site.
	PFN string
}

// ReplicaCatalog maps logical file names to their replicas.
type ReplicaCatalog struct {
	replicas map[string][]Replica
}

// NewReplicaCatalog returns an empty replica catalog.
func NewReplicaCatalog() *ReplicaCatalog {
	return &ReplicaCatalog{replicas: make(map[string][]Replica)}
}

// Add registers a replica for a logical file name.
func (c *ReplicaCatalog) Add(lfn string, r Replica) error {
	if lfn == "" {
		return fmt.Errorf("catalog: replica with empty LFN")
	}
	for _, old := range c.replicas[lfn] {
		if old == r {
			return fmt.Errorf("catalog: duplicate replica %v for %q", r, lfn)
		}
	}
	c.replicas[lfn] = append(c.replicas[lfn], r)
	return nil
}

// Lookup returns the replicas of a logical file.
func (c *ReplicaCatalog) Lookup(lfn string) ([]Replica, error) {
	rs := c.replicas[lfn]
	if len(rs) == 0 {
		return nil, fmt.Errorf("catalog: no replica registered for %q", lfn)
	}
	return rs, nil
}

// Has reports whether the logical file has at least one replica.
func (c *ReplicaCatalog) Has(lfn string) bool { return len(c.replicas[lfn]) > 0 }

// LFNs returns the sorted logical file names with registered replicas.
func (c *ReplicaCatalog) LFNs() []string {
	out := make([]string, 0, len(c.replicas))
	for n := range c.replicas {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
