package catalog

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// File formats for the three catalogs, modeled on the plain-text catalog
// files of Pegasus deployments (replica catalog "rc.txt", transformation
// catalog "tc.txt", and a line-oriented site catalog). Lines starting with
// '#' and blank lines are ignored everywhere.
//
// Site catalog, one site per line:
//
//	site <name> arch=<arch> os=<os> slots=<n> speed=<f> shared_software=<bool> stagein_mbps=<f> [heterogeneous=<bool>]
//
// Transformation catalog:
//
//	tr <name> site=<site> pfn=<path> [installed=<bool>] [install_bytes=<n>]
//
// Replica catalog:
//
//	<lfn> <pfn> site=<site>

// WriteSites serializes the site catalog.
func (c *SiteCatalog) WriteSites(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# pegflow site catalog")
	for _, name := range c.Names() {
		s := c.sites[name]
		fmt.Fprintf(bw, "site %s arch=%s os=%s slots=%d speed=%g shared_software=%t stagein_mbps=%g heterogeneous=%t\n",
			s.Name, orDash(s.Arch), orDash(s.OS), s.Slots, s.SpeedFactor,
			s.SharedSoftware, s.StageInMBps, s.Heterogeneous)
	}
	return bw.Flush()
}

// ReadSites parses a site catalog file.
func ReadSites(r io.Reader) (*SiteCatalog, error) {
	c := NewSiteCatalog()
	err := eachLine(r, func(lineNo int, fields []string) error {
		if fields[0] != "site" || len(fields) < 2 {
			return fmt.Errorf("catalog: line %d: expected \"site <name> k=v...\"", lineNo)
		}
		s := &Site{Name: fields[1], SpeedFactor: 1}
		for _, kv := range fields[2:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("catalog: line %d: bad attribute %q", lineNo, kv)
			}
			var err error
			switch k {
			case "arch":
				s.Arch = dashEmpty(v)
			case "os":
				s.OS = dashEmpty(v)
			case "slots":
				s.Slots, err = strconv.Atoi(v)
			case "speed":
				s.SpeedFactor, err = strconv.ParseFloat(v, 64)
			case "shared_software":
				s.SharedSoftware, err = strconv.ParseBool(v)
			case "stagein_mbps":
				s.StageInMBps, err = strconv.ParseFloat(v, 64)
			case "heterogeneous":
				s.Heterogeneous, err = strconv.ParseBool(v)
			default:
				return fmt.Errorf("catalog: line %d: unknown site attribute %q", lineNo, k)
			}
			if err != nil {
				return fmt.Errorf("catalog: line %d: attribute %s: %v", lineNo, k, err)
			}
		}
		return c.Add(s)
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// WriteTransformations serializes the transformation catalog.
func (c *TransformationCatalog) WriteTransformations(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# pegflow transformation catalog")
	for _, name := range c.Names() {
		bySite := c.entries[name]
		sites := make([]string, 0, len(bySite))
		for s := range bySite {
			sites = append(sites, s)
		}
		sort.Strings(sites)
		for _, s := range sites {
			t := bySite[s]
			fmt.Fprintf(bw, "tr %s site=%s pfn=%s installed=%t install_bytes=%d\n",
				t.Name, t.Site, orDash(t.PFN), t.Installed, t.InstallBytes)
		}
	}
	return bw.Flush()
}

// ReadTransformations parses a transformation catalog file.
func ReadTransformations(r io.Reader) (*TransformationCatalog, error) {
	c := NewTransformationCatalog()
	err := eachLine(r, func(lineNo int, fields []string) error {
		if fields[0] != "tr" || len(fields) < 2 {
			return fmt.Errorf("catalog: line %d: expected \"tr <name> k=v...\"", lineNo)
		}
		t := &Transformation{Name: fields[1]}
		for _, kv := range fields[2:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("catalog: line %d: bad attribute %q", lineNo, kv)
			}
			var err error
			switch k {
			case "site":
				t.Site = v
			case "pfn":
				t.PFN = dashEmpty(v)
			case "installed":
				t.Installed, err = strconv.ParseBool(v)
			case "install_bytes":
				t.InstallBytes, err = strconv.ParseInt(v, 10, 64)
			default:
				return fmt.Errorf("catalog: line %d: unknown transformation attribute %q", lineNo, k)
			}
			if err != nil {
				return fmt.Errorf("catalog: line %d: attribute %s: %v", lineNo, k, err)
			}
		}
		return c.Add(t)
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// WriteReplicas serializes the replica catalog (rc.txt style).
func (c *ReplicaCatalog) WriteReplicas(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# pegflow replica catalog")
	for _, lfn := range c.LFNs() {
		for _, rep := range c.replicas[lfn] {
			fmt.Fprintf(bw, "%s %s site=%s\n", lfn, rep.PFN, rep.Site)
		}
	}
	return bw.Flush()
}

// ReadReplicas parses a replica catalog file.
func ReadReplicas(r io.Reader) (*ReplicaCatalog, error) {
	c := NewReplicaCatalog()
	err := eachLine(r, func(lineNo int, fields []string) error {
		if len(fields) < 2 {
			return fmt.Errorf("catalog: line %d: expected \"<lfn> <pfn> [site=...]\"", lineNo)
		}
		rep := Replica{PFN: fields[1], Site: "local"}
		for _, kv := range fields[2:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok || k != "site" {
				return fmt.Errorf("catalog: line %d: unknown replica attribute %q", lineNo, kv)
			}
			rep.Site = v
		}
		return c.Add(fields[0], rep)
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// eachLine tokenizes non-empty, non-comment lines.
func eachLine(r io.Reader, fn func(lineNo int, fields []string) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := fn(lineNo, strings.Fields(line)); err != nil {
			return err
		}
	}
	return sc.Err()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func dashEmpty(s string) string {
	if s == "-" {
		return ""
	}
	return s
}
