package planner

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"pegflow/internal/dax"
	"pegflow/internal/sim/rng"
)

// randomAbstract builds a random layered DAG: `width` jobs per level over
// `depth` levels, random forward edges, random runtimes, a couple of
// transformations per level.
func randomAbstract(t *testing.T, seed uint64, width, depth int) *dax.Workflow {
	t.Helper()
	r := rng.New(seed).Derive("cluster-dag")
	w := dax.New(fmt.Sprintf("rand-%d", seed))
	for d := 0; d < depth; d++ {
		for i := 0; i < width; i++ {
			id := fmt.Sprintf("j_%d_%d", d, i)
			tr := fmt.Sprintf("t%d", r.Intn(3))
			w.NewJob(id, tr).SetProfile("pegasus", "runtime",
				fmt.Sprintf("%d", 10+r.Intn(200)))
			if d > 0 {
				// At least one parent keeps the levels honest; extras at
				// random.
				p := fmt.Sprintf("j_%d_%d", d-1, r.Intn(width))
				if err := w.AddDependency(p, id); err != nil {
					t.Fatal(err)
				}
				for k := 0; k < width; k++ {
					if r.Float64() < 0.15 {
						if err := w.AddDependency(fmt.Sprintf("j_%d_%d", d-1, k), id); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
		}
	}
	return w
}

// checkClusterInvariants verifies the tentpole's plan properties:
//
//   - partition: every job of the original plan appears in exactly one
//     output job (as itself or as a composite member);
//   - no inverted or dropped dependencies: every original edge maps to an
//     edge between the corresponding output jobs (or is internal, which
//     same-level grouping forbids);
//   - composites are single-site, single-transformation, within the member
//     cap, and their ExecSeconds is the sum of their members'.
func checkClusterInvariants(t *testing.T, orig, clustered *Plan, opts ClusterOptions) {
	t.Helper()

	groupOf := make(map[string]string)
	for _, j := range clustered.Jobs() {
		if len(j.Members) == 0 {
			groupOf[j.ID] = j.ID
			continue
		}
		if opts.MaxTasksPerJob > 0 && len(j.Members) > opts.MaxTasksPerJob {
			t.Errorf("composite %s has %d members, cap %d", j.ID, len(j.Members), opts.MaxTasksPerJob)
		}
		if len(j.Members) < 2 {
			t.Errorf("composite %s has %d members; singletons must stay unclustered", j.ID, len(j.Members))
		}
		var sum float64
		for _, m := range j.Members {
			if prev, dup := groupOf[m.TaskID]; dup {
				t.Errorf("task %s in both %s and %s", m.TaskID, prev, j.ID)
			}
			groupOf[m.TaskID] = j.ID
			mo := orig.Job(m.TaskID)
			if mo == nil {
				t.Fatalf("composite %s contains unknown task %s", j.ID, m.TaskID)
			}
			if mo.Site != j.Site {
				t.Errorf("composite %s at %s contains task %s bound to %s", j.ID, j.Site, m.TaskID, mo.Site)
			}
			if mo.Transformation != j.Transformation {
				t.Errorf("composite %s (%s) contains task %s of %s",
					j.ID, j.Transformation, m.TaskID, mo.Transformation)
			}
			if m.ExecSeconds != mo.ExecSeconds {
				t.Errorf("member %s exec %v, original %v", m.TaskID, m.ExecSeconds, mo.ExecSeconds)
			}
			sum += m.ExecSeconds
		}
		if math.Abs(sum-j.ExecSeconds) > 1e-9 {
			t.Errorf("composite %s ExecSeconds %v, member sum %v", j.ID, j.ExecSeconds, sum)
		}
		if opts.TargetJobSeconds > 0 {
			lastID := j.Members[len(j.Members)-1].TaskID
			if sum-orig.Job(lastID).ExecSeconds >= opts.TargetJobSeconds {
				t.Errorf("composite %s was already at target before its last member (%v ≥ %v)",
					j.ID, sum-orig.Job(lastID).ExecSeconds, opts.TargetJobSeconds)
			}
		}
	}

	// Partition: exactly the original job IDs, each exactly once.
	if len(groupOf) != orig.Graph.Len() {
		t.Errorf("clustered plan covers %d of %d original jobs", len(groupOf), orig.Graph.Len())
	}
	for _, j := range orig.Jobs() {
		if _, ok := groupOf[j.ID]; !ok {
			t.Errorf("original job %s missing from clustered plan", j.ID)
		}
	}

	// Dependency preservation.
	for _, gj := range orig.Graph.Jobs() {
		for _, parent := range orig.Graph.Parents(gj.ID) {
			gp, gc := groupOf[parent], groupOf[gj.ID]
			if gp == gc {
				t.Errorf("edge %s -> %s folded into one composite %s", parent, gj.ID, gp)
				continue
			}
			found := false
			for _, pp := range clustered.Graph.Parents(gc) {
				if pp == gp {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("edge %s -> %s lost: no edge %s -> %s in clustered plan",
					parent, gj.ID, gp, gc)
			}
		}
	}

	if _, err := clustered.Graph.TopoSort(); err != nil {
		t.Errorf("clustered plan not topologically sortable: %v", err)
	}
}

func TestClusterPropertyRandomDAGs(t *testing.T) {
	optsList := []ClusterOptions{
		{MaxTasksPerJob: 2},
		{MaxTasksPerJob: 5},
		{MaxTasksPerJob: 100},
		{TargetJobSeconds: 300},
		{MaxTasksPerJob: 4, TargetJobSeconds: 250},
	}
	for seed := uint64(0); seed < 12; seed++ {
		opts := optsList[seed%uint64(len(optsList))]
		t.Run(fmt.Sprintf("seed%d_max%d_target%.0f", seed, opts.MaxTasksPerJob, opts.TargetJobSeconds), func(t *testing.T) {
			cats := testCatalogs(t, "t0", "t1", "t2")
			abstract := randomAbstract(t, seed, 6, 4)
			var orig *Plan
			var err error
			if seed%2 == 0 {
				orig, err = New(abstract, cats, Options{Site: "osg"})
			} else {
				pol, perr := NewPolicy(PolicyRoundRobin)
				if perr != nil {
					t.Fatal(perr)
				}
				orig, err = NewMulti(abstract, cats, MultiOptions{
					Sites: []string{"sandhills", "osg"}, Policy: pol,
				})
			}
			if err != nil {
				t.Fatal(err)
			}
			clustered, err := Cluster(orig, opts)
			if err != nil {
				t.Fatal(err)
			}
			checkClusterInvariants(t, orig, clustered, opts)

			// Determinism: clustering the same plan twice is identical.
			again, err := Cluster(orig, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(clustered.Info, again.Info) {
				t.Error("Cluster not deterministic: Info differs between runs")
			}
		})
	}
}

func TestClusterFanAmortizesInstalls(t *testing.T) {
	cats := testCatalogs(t, "split", "run_cap3", "merge")
	orig, err := New(fanWorkflow(t, 10), cats, Options{Site: "osg"})
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := Cluster(orig, ClusterOptions{MaxTasksPerJob: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkClusterInvariants(t, orig, clustered, ClusterOptions{MaxTasksPerJob: 4})
	// 10 run_cap3 tasks at one level pack into ceil(10/4) = 3 composites;
	// split and merge stay solo: 5 executable jobs, 5 installs where the
	// original paid 12.
	if got := clustered.Graph.Len(); got != 5 {
		t.Errorf("clustered plan has %d jobs, want 5", got)
	}
	installs := 0
	for _, j := range clustered.Jobs() {
		if j.NeedsInstall {
			installs++
		}
	}
	if installs != 5 {
		t.Errorf("clustered plan pays %d installs, want 5 (orig pays %d)", installs, orig.Graph.Len())
	}
	composites := 0
	for _, j := range clustered.Jobs() {
		if len(j.Members) > 0 {
			composites++
			if !strings.HasPrefix(j.ID, "cluster_run_cap3_osg_") {
				t.Errorf("unexpected composite ID %q", j.ID)
			}
			if j.Args != nil {
				t.Errorf("composite %s has args %v", j.ID, j.Args)
			}
		}
	}
	if composites != 3 {
		t.Errorf("%d composites, want 3", composites)
	}
}

func TestClusterTargetLeavesHeavyTasksAlone(t *testing.T) {
	w := dax.New("skewed")
	w.NewJob("big", "t0").SetProfile("pegasus", "runtime", "5000")
	for i := 0; i < 6; i++ {
		w.NewJob(fmt.Sprintf("small_%d", i), "t0").SetProfile("pegasus", "runtime", "50")
	}
	cats := testCatalogs(t, "t0")
	orig, err := New(w, cats, Options{Site: "osg"})
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := Cluster(orig, ClusterOptions{TargetJobSeconds: 200})
	if err != nil {
		t.Fatal(err)
	}
	checkClusterInvariants(t, orig, clustered, ClusterOptions{TargetJobSeconds: 200})
	if big := clustered.Job("big"); big == nil || len(big.Members) != 0 {
		t.Errorf("heavy task was clustered: %+v", big)
	}
	// Six 50-second tasks pack 4 to a composite (sum reaches 200 on the
	// 4th), leaving one composite of 4 and one of 2.
	var sizes []int
	for _, j := range clustered.Jobs() {
		if len(j.Members) > 0 {
			sizes = append(sizes, len(j.Members))
		}
	}
	if !reflect.DeepEqual(sizes, []int{4, 2}) {
		t.Errorf("composite sizes = %v, want [4 2]", sizes)
	}
}

func TestClusterDisabledAndInvalid(t *testing.T) {
	cats := testCatalogs(t, "split", "run_cap3", "merge")
	orig, err := New(fanWorkflow(t, 4), cats, Options{Site: "osg"})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []ClusterOptions{{}, {MaxTasksPerJob: 1}} {
		got, err := Cluster(orig, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got != orig {
			t.Errorf("disabled options %+v did not return the plan unchanged", opts)
		}
	}
	if _, err := Cluster(orig, ClusterOptions{MaxTasksPerJob: -1}); err == nil {
		t.Error("negative MaxTasksPerJob accepted")
	}
	if _, err := Cluster(orig, ClusterOptions{TargetJobSeconds: -2}); err == nil {
		t.Error("negative TargetJobSeconds accepted")
	}
}

// Multi-site plans cluster within a site only: round-robin alternates the
// ten fan tasks between two sites, and every composite must stay pure.
func TestClusterMultiSitePurity(t *testing.T) {
	cats := testCatalogs(t, "split", "run_cap3", "merge")
	pol, err := NewPolicy(PolicyRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := NewMulti(fanWorkflow(t, 10), cats, MultiOptions{
		Sites: []string{"sandhills", "osg"}, Policy: pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := Cluster(orig, ClusterOptions{MaxTasksPerJob: 8})
	if err != nil {
		t.Fatal(err)
	}
	checkClusterInvariants(t, orig, clustered, ClusterOptions{MaxTasksPerJob: 8})
	bySite := map[string]int{}
	for _, j := range clustered.Jobs() {
		if len(j.Members) > 0 {
			bySite[j.Site]++
		}
	}
	if bySite["sandhills"] == 0 || bySite["osg"] == 0 {
		t.Errorf("expected composites at both sites, got %v", bySite)
	}
}
