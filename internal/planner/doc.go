// Package planner maps an abstract workflow (package dax) plus catalogs
// (package catalog) onto an executable plan for one concrete site — the
// role of pegasus-plan.
//
// Planning performs, in order:
//
//  1. validation of the abstract workflow;
//  2. site and transformation resolution — every logical transformation
//     must be registered at the target site;
//  3. install-step injection — at sites without a shared software stack
//     (the OSG case in the paper, Fig. 3), jobs whose transformation is
//     not preinstalled gain a download/install setup phase;
//  4. optional stage-in job synthesis for external input files;
//  5. optional horizontal task clustering — small jobs of the same
//     transformation at the same DAG level are merged into clustered jobs
//     executed on one slot, reducing per-job overhead (Pegasus's task
//     clustering, paper §III).
package planner
