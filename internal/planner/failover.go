// Cross-site failover: retry-elsewhere rescheduling for multi-site plans.
// DAGMan's default retry resubmits a failed job to the same site; on an
// opportunistic grid that often means queueing behind the same heavy-tailed
// dispatch latency — or landing back in the same preemption storm — that
// just killed the attempt. Failover re-resolves the job onto a sibling site
// of the plan's site set, reusing the planner's per-site transformation
// resolution so installs are re-injected exactly where the new site needs
// them.

package planner

import (
	"fmt"

	"pegflow/internal/catalog"
)

// Failover re-targets failed job attempts to sibling sites. Its Resite
// method matches engine.RetryPolicy; wire it via engine.Options.Retry (or
// ensemble.PlanOptions.Failover). A Failover instance carries per-run
// adaptive state and must not be shared between concurrent engine runs.
type Failover struct {
	cats  Catalogs
	sites []*catalog.Site
	// failures counts failed or evicted attempts observed per site. The
	// policy is adaptive: it prefers the sibling with the fewest observed
	// failures, so a site that keeps evicting work drains toward its
	// healthier peers instead of round-robining back in.
	failures map[string]int
}

// NewFailover builds a failover policy over the given site set — normally
// the Sites of the multi-site plan being executed.
func NewFailover(cats Catalogs, sites []string) (*Failover, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("planner: failover with no sites")
	}
	seen := make(map[string]bool, len(sites))
	resolved := make([]*catalog.Site, 0, len(sites))
	for _, name := range sites {
		if seen[name] {
			return nil, fmt.Errorf("planner: duplicate failover site %q", name)
		}
		seen[name] = true
		s, err := cats.Sites.Lookup(name)
		if err != nil {
			return nil, fmt.Errorf("planner: %w", err)
		}
		resolved = append(resolved, s)
	}
	return &Failover{cats: cats, sites: resolved, failures: make(map[string]int)}, nil
}

// Resite returns a copy of the job re-resolved onto the least-failing
// sibling site, or nil when no other site resolves the transformation
// (the engine then retries in place). It matches engine.RetryPolicy.
func (f *Failover) Resite(job *Job, attempt int, lastSite string, evicted bool) *Job {
	f.failures[lastSite]++
	cands := siteCandidates(f.cats, f.sites, job.Transformation)
	best := -1
	for i, c := range cands {
		if c.Site.Name == lastSite {
			continue
		}
		if best < 0 || f.failures[c.Site.Name] < f.failures[cands[best].Site.Name] {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	chosen := cands[best]
	nj := *job
	nj.Site = chosen.Site.Name
	nj.NeedsInstall = !chosen.Entry.Installed
	nj.InstallBytes = 0
	if nj.NeedsInstall {
		nj.InstallBytes = chosen.Entry.InstallBytes
	}
	return &nj
}
