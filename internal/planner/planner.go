package planner

import (
	"fmt"
	"sort"
	"strconv"

	"pegflow/internal/catalog"
	"pegflow/internal/dax"
)

// Job is one executable job in a plan.
type Job struct {
	// ID identifies the executable job (equal to the abstract job ID
	// except for synthesized stage-in and clustered jobs).
	ID string
	// Transformation is the logical executable name.
	Transformation string
	// Args are the command-line arguments (empty for clustered jobs;
	// the per-task arguments live in the task list).
	Args []string
	// Site is the execution site.
	Site string
	// Priority orders ready jobs; higher runs first.
	Priority int
	// ExecSeconds is the estimated execution time on a reference-speed
	// node (from the job's "pegasus::runtime" profile; 0 = unknown).
	ExecSeconds float64
	// NeedsInstall marks jobs that must download and install their
	// software stack on the node before executing (OSG-style sites).
	NeedsInstall bool
	// InstallBytes is the size of the software stack to stage when
	// NeedsInstall is set.
	InstallBytes int64
	// InputBytes and OutputBytes total the declared file sizes.
	InputBytes, OutputBytes int64
	// Tasks lists the abstract job IDs folded into this executable job
	// (len > 1 only for clustered jobs; empty for synthesized jobs).
	Tasks []string
	// Members lists the payload tasks of a composite job built by the
	// post-planning Cluster pass, in on-node execution order, with their
	// per-task runtime estimates. Executors that understand Members run
	// the payloads sequentially on one slot — one dispatch and one
	// software install amortized over all of them — and emit one
	// kickstart record per member. Empty for ordinary jobs.
	Members []Member
}

// Member is one payload task folded into a composite (clustered) job.
type Member struct {
	// TaskID is the folded executable job's ID.
	TaskID string
	// ExecSeconds is the member's reference-speed runtime estimate.
	ExecSeconds float64
}

// Plan is an executable workflow bound to a site.
type Plan struct {
	// Graph holds the executable jobs and their dependencies. Its Job
	// entries are structural only; per-job planning attributes live in
	// Info.
	Graph *dax.Workflow
	// Info maps executable job ID to its planning attributes.
	Info map[string]*Job
	// Site is the execution site name. For multi-site plans (NewMulti) it
	// is the comma-joined site list; per-job sites live in Info.
	Site string
	// Sites lists the target sites of a multi-site plan, in the order
	// given to NewMulti. It is nil for single-site plans.
	Sites []string
	// SiteEntry is the resolved site catalog entry. It is nil for
	// multi-site plans, whose jobs resolve sites individually.
	SiteEntry *catalog.Site

	// index is the immutable dense-integer topology (see Indexed), built
	// at plan construction and shared with clones.
	index *Index
	// jobsByPos aligns this plan's *Job values with index.Order.
	jobsByPos []*Job
}

// Jobs returns the plan's jobs in insertion order.
func (p *Plan) Jobs() []*Job {
	out := make([]*Job, 0, len(p.Info))
	for _, j := range p.Graph.Jobs() {
		out = append(out, p.Info[j.ID])
	}
	return out
}

// Job returns the planned job with the given ID, or nil.
func (p *Plan) Job(id string) *Job { return p.Info[id] }

// TotalExecSeconds sums the estimated execution time over all jobs — the
// serial-work content of the plan.
func (p *Plan) TotalExecSeconds() float64 {
	var sum float64
	for _, j := range p.Info {
		sum += j.ExecSeconds
	}
	return sum
}

// Options configures planning.
type Options struct {
	// Site is the target execution site (required).
	Site string
	// AddStageIn synthesizes a stage-in job for external inputs that
	// have replicas registered away from the site.
	AddStageIn bool
	// ClusterSize is the horizontal clustering factor: the maximum
	// number of same-transformation, same-level tasks merged into one
	// clustered job. 0 or 1 disables clustering.
	ClusterSize int
	// ClusterTransformations restricts clustering to the listed
	// transformations; empty means all are eligible.
	ClusterTransformations []string
}

// Catalogs bundles the three catalogs planning consults.
type Catalogs struct {
	Sites           *catalog.SiteCatalog
	Transformations *catalog.TransformationCatalog
	Replicas        *catalog.ReplicaCatalog
}

// StageInTransformation names the synthesized data staging transformation.
const StageInTransformation = "stage_in"

// New maps the abstract workflow onto the target site.
func New(abstract *dax.Workflow, cats Catalogs, opts Options) (*Plan, error) {
	if err := abstract.Validate(); err != nil {
		return nil, fmt.Errorf("planner: invalid abstract workflow: %w", err)
	}
	if opts.Site == "" {
		return nil, fmt.Errorf("planner: no target site given")
	}
	site, err := cats.Sites.Lookup(opts.Site)
	if err != nil {
		return nil, fmt.Errorf("planner: %w", err)
	}

	work := abstract
	if opts.ClusterSize > 1 {
		work, err = clusterTasks(abstract, opts)
		if err != nil {
			return nil, err
		}
	}

	plan := &Plan{
		Graph:     dax.New(work.Name + "-" + opts.Site),
		Info:      make(map[string]*Job),
		Site:      opts.Site,
		SiteEntry: site,
	}

	// Resolve each job against the transformation catalog and compute
	// its planning attributes.
	for _, aj := range work.Jobs() {
		tc, err := cats.Transformations.Lookup(aj.Transformation, opts.Site)
		if err != nil {
			return nil, fmt.Errorf("planner: job %q: %w", aj.ID, err)
		}
		pj, err := jobAttributes(aj)
		if err != nil {
			return nil, err
		}
		pj.Site = opts.Site
		if !tc.Installed {
			if site.SharedSoftware {
				return nil, fmt.Errorf(
					"planner: transformation %q not installed at shared-software site %q",
					aj.Transformation, opts.Site)
			}
			pj.NeedsInstall = true
			pj.InstallBytes = tc.InstallBytes
		}
		gj := &dax.Job{ID: aj.ID, Transformation: aj.Transformation, Uses: aj.Uses, Priority: aj.Priority}
		if err := plan.Graph.AddJob(gj); err != nil {
			return nil, err
		}
		plan.Info[aj.ID] = pj
	}
	for _, aj := range work.Jobs() {
		for _, parent := range work.Parents(aj.ID) {
			if err := plan.Graph.AddDependency(parent, aj.ID); err != nil {
				return nil, err
			}
		}
	}

	if opts.AddStageIn {
		if err := addStageIn(plan, work, cats); err != nil {
			return nil, err
		}
	}

	if err := plan.finalize(); err != nil {
		return nil, err
	}
	return plan, nil
}

// jobAttributes converts an abstract job into a planned job with its
// site-independent attributes: the pegasus::runtime estimate, the folded
// task list of clustered jobs, and the declared input/output byte totals.
// The caller fills in the site-dependent fields (Site, NeedsInstall,
// InstallBytes).
func jobAttributes(aj *dax.Job) (*Job, error) {
	pj := &Job{
		ID:             aj.ID,
		Transformation: aj.Transformation,
		Args:           aj.Args,
		Priority:       aj.Priority,
	}
	if rt := aj.Profile("pegasus", "runtime"); rt != "" {
		v, err := strconv.ParseFloat(rt, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("planner: job %q: bad pegasus::runtime %q", aj.ID, rt)
		}
		pj.ExecSeconds = v
	}
	if nt := aj.Profile("pegasus", "clustered_tasks"); nt != "" {
		count, err := strconv.Atoi(nt)
		if err != nil || count < 1 {
			return nil, fmt.Errorf("planner: job %q: bad clustered_tasks %q", aj.ID, nt)
		}
		for i := 0; i < count; i++ {
			tid := aj.Profile("pegasus", fmt.Sprintf("task_%03d", i))
			if tid == "" {
				return nil, fmt.Errorf("planner: job %q: missing task_%03d profile", aj.ID, i)
			}
			pj.Tasks = append(pj.Tasks, tid)
		}
	}
	for _, u := range aj.Uses {
		if u.Link == dax.LinkInput {
			pj.InputBytes += u.Size
		} else {
			pj.OutputBytes += u.Size
		}
	}
	return pj, nil
}

// addStageIn synthesizes a single stage_in job transferring every external
// input (a file consumed but produced by no job) to the site, and makes it
// a parent of all consumers. External inputs must have a registered
// replica.
func addStageIn(plan *Plan, work *dax.Workflow, cats Catalogs) error {
	produced := make(map[string]bool)
	for _, j := range work.Jobs() {
		for _, lfn := range j.Outputs() {
			produced[lfn] = true
		}
	}
	type ext struct {
		lfn  string
		size int64
	}
	var externals []ext
	consumers := make(map[string][]string)
	seen := make(map[string]bool)
	for _, j := range work.Jobs() {
		for _, u := range j.Uses {
			if u.Link != dax.LinkInput || produced[u.LFN] {
				continue
			}
			if !cats.Replicas.Has(u.LFN) {
				return fmt.Errorf("planner: external input %q of job %q has no replica", u.LFN, j.ID)
			}
			consumers[u.LFN] = append(consumers[u.LFN], j.ID)
			if !seen[u.LFN] {
				seen[u.LFN] = true
				externals = append(externals, ext{u.LFN, u.Size})
			}
		}
	}
	if len(externals) == 0 {
		return nil
	}
	sort.Slice(externals, func(i, j int) bool { return externals[i].lfn < externals[j].lfn })

	id := "stage_in_0"
	gj := &dax.Job{ID: id, Transformation: StageInTransformation}
	var totalBytes int64
	for _, e := range externals {
		gj.Uses = append(gj.Uses, dax.Use{LFN: e.lfn, Link: dax.LinkOutput, Size: e.size})
		totalBytes += e.size
	}
	if err := plan.Graph.AddJob(gj); err != nil {
		return err
	}
	plan.Info[id] = &Job{
		ID:             id,
		Transformation: StageInTransformation,
		Site:           plan.Site,
		ExecSeconds:    float64(totalBytes) / (stageInMBps(plan.SiteEntry) * 1e6),
		OutputBytes:    totalBytes,
		// Stage-in runs on the submit side; it never needs installs
		// and gets top priority so transfers start immediately.
		Priority: 1 << 20,
	}
	added := make(map[string]bool)
	for _, e := range externals {
		for _, c := range consumers[e.lfn] {
			if added[c] {
				continue
			}
			added[c] = true
			if err := plan.Graph.AddDependency(id, c); err != nil {
				return err
			}
		}
	}
	return nil
}

// clusterTasks merges same-transformation jobs at the same DAG level into
// clustered jobs of at most opts.ClusterSize tasks each, returning a new
// abstract workflow. A clustered job:
//
//   - has ID "cluster_<transformation>_l<level>_<index>";
//   - sums its tasks' pegasus::runtime estimates (tasks run sequentially
//     on one slot);
//   - takes the union of its tasks' file usages and dependencies.
func clusterTasks(abstract *dax.Workflow, opts Options) (*dax.Workflow, error) {
	eligible := func(tr string) bool {
		if len(opts.ClusterTransformations) == 0 {
			return true
		}
		for _, t := range opts.ClusterTransformations {
			if t == tr {
				return true
			}
		}
		return false
	}

	levels, err := abstract.Levels()
	if err != nil {
		return nil, err
	}
	// group[jobID] = clustered ID (or its own ID when unclustered).
	group := make(map[string]string, abstract.Len())
	type bucket struct {
		id    string
		tasks []string
	}
	var buckets []bucket
	for li, level := range levels {
		byTr := make(map[string][]string)
		var trOrder []string
		for _, id := range level {
			tr := abstract.Job(id).Transformation
			if !eligible(tr) || opts.ClusterSize <= 1 {
				group[id] = id
				continue
			}
			if _, ok := byTr[tr]; !ok {
				trOrder = append(trOrder, tr)
			}
			byTr[tr] = append(byTr[tr], id)
		}
		for _, tr := range trOrder {
			ids := byTr[tr]
			if len(ids) == 1 {
				group[ids[0]] = ids[0]
				continue
			}
			for i := 0; i < len(ids); i += opts.ClusterSize {
				end := i + opts.ClusterSize
				if end > len(ids) {
					end = len(ids)
				}
				chunk := ids[i:end]
				if len(chunk) == 1 {
					group[chunk[0]] = chunk[0]
					continue
				}
				cid := fmt.Sprintf("cluster_%s_l%d_%d", tr, li, i/opts.ClusterSize)
				for _, id := range chunk {
					group[id] = cid
				}
				buckets = append(buckets, bucket{id: cid, tasks: chunk})
			}
		}
	}

	clustered := make(map[string]bucket)
	for _, b := range buckets {
		clustered[b.id] = b
	}

	out := dax.New(abstract.Name)
	emitted := make(map[string]bool)
	for _, aj := range abstract.Jobs() {
		gid := group[aj.ID]
		if emitted[gid] {
			continue
		}
		emitted[gid] = true
		if gid == aj.ID {
			cp := *aj
			if err := out.AddJob(&cp); err != nil {
				return nil, err
			}
			continue
		}
		b := clustered[gid]
		nj := &dax.Job{ID: gid, Transformation: aj.Transformation}
		var runtime float64
		for _, tid := range b.tasks {
			task := abstract.Job(tid)
			nj.Uses = append(nj.Uses, task.Uses...)
			if rt := task.Profile("pegasus", "runtime"); rt != "" {
				v, err := strconv.ParseFloat(rt, 64)
				if err != nil {
					return nil, fmt.Errorf("planner: task %q: bad runtime %q", tid, rt)
				}
				runtime += v
			}
			if task.Priority > nj.Priority {
				nj.Priority = task.Priority
			}
		}
		if runtime > 0 {
			nj.SetProfile("pegasus", "runtime", strconv.FormatFloat(runtime, 'f', -1, 64))
		}
		nj.SetProfile("pegasus", "clustered_tasks", strconv.Itoa(len(b.tasks)))
		if err := out.AddJob(nj); err != nil {
			return nil, err
		}
	}
	// Rewire dependencies through the grouping map, skipping intra-group
	// edges.
	for _, aj := range abstract.Jobs() {
		for _, p := range abstract.Parents(aj.ID) {
			gp, gc := group[p], group[aj.ID]
			if gp == gc {
				continue
			}
			if err := out.AddDependency(gp, gc); err != nil {
				return nil, err
			}
		}
	}
	// Stash task membership in profiles so New can recover it without a
	// side channel between the two passes.
	for _, b := range buckets {
		j := out.Job(b.id)
		for i, tid := range b.tasks {
			j.SetProfile("pegasus", fmt.Sprintf("task_%03d", i), tid)
		}
	}
	return out, nil
}
