// Dense-integer plan indexing: the engine's per-run bookkeeping (indegree
// counts, attempt counters, completion flags) used to live in string-keyed
// maps consulted on every dispatch. An Index interns the plan's job IDs to
// contiguous integers at plan time — topological order, adjacency and
// indegrees precomputed once — so the engine's hot loop runs on
// index-addressed slices with a single map lookup per executor event.
//
// The Index captures topology only (IDs, edges, degrees) and is immutable
// after construction, so a cloned plan shares its parent's Index while
// owning independent job attributes.

package planner

import (
	"fmt"
)

// Index is the dense-integer view of a plan's DAG. Positions follow the
// deterministic topological order of the graph (Kahn's algorithm with
// insertion-order tie-breaking, exactly dax.Workflow.TopoSort); children
// of each position appear in sorted-ID order, matching the iteration order
// the engine previously obtained from Graph.Children. An Index is
// immutable once built and safe for concurrent readers.
type Index struct {
	// Order holds the job IDs in topological order; Order[i] is the job at
	// position i.
	Order []string
	// ByID maps a job ID to its position.
	ByID map[string]int32
	// Children lists, per position, the positions of the job's children in
	// sorted-ID order.
	Children [][]int32
	// Indegree is the number of parents per position.
	Indegree []int32
	// edges snapshots Graph.Edges() at build time for staleness detection.
	edges int
}

// Indexed returns the plan's dense index, building it on first use and
// rebuilding it if the graph was mutated since (dax workflows only ever
// grow, so a changed job or edge count is a complete staleness signal).
// It returns an error when the graph is cyclic. Plans produced by New,
// NewMulti and Cluster are indexed at construction; hand-assembled plans
// are indexed lazily here and must not be shared across goroutines before
// the first call.
func (p *Plan) Indexed() (*Index, error) {
	if p.index == nil || len(p.index.Order) != p.Graph.Len() || p.index.edges != p.Graph.Edges() {
		if err := p.finalize(); err != nil {
			return nil, err
		}
	}
	return p.index, nil
}

// JobAt returns the planned job at topological position i of the index.
func (p *Plan) JobAt(i int32) *Job { return p.jobsByPos[i] }

// finalize validates the executable graph (cycle check via TopoSort) and
// builds the dense index plus the position-aligned job table.
func (p *Plan) finalize() error {
	order, err := p.Graph.TopoSort()
	if err != nil {
		return fmt.Errorf("planner: executable workflow broken: %w", err)
	}
	idx := &Index{
		Order:    order,
		ByID:     make(map[string]int32, len(order)),
		Children: make([][]int32, len(order)),
		Indegree: make([]int32, len(order)),
		edges:    p.Graph.Edges(),
	}
	for i, id := range order {
		idx.ByID[id] = int32(i)
	}
	for i, id := range order {
		idx.Indegree[i] = int32(len(p.Graph.Parents(id)))
		kids := p.Graph.Children(id)
		if len(kids) == 0 {
			continue
		}
		cs := make([]int32, len(kids))
		for k, c := range kids {
			cs[k] = idx.ByID[c]
		}
		idx.Children[i] = cs
	}
	p.index = idx
	return p.reindexJobs()
}

// reindexJobs (re)builds the position-aligned job table from Info.
func (p *Plan) reindexJobs() error {
	jobs := make([]*Job, len(p.index.Order))
	for i, id := range p.index.Order {
		j := p.Info[id]
		if j == nil {
			return fmt.Errorf("planner: job %q has no planning info", id)
		}
		jobs[i] = j
	}
	p.jobsByPos = jobs
	return nil
}

// Clone returns a deep copy of the plan: the graph, the planned jobs and
// every slice they carry are duplicated, so mutating one plan (including
// its runtime estimates) never changes the other. The immutable Index is
// shared, which makes cloning O(jobs + edges) with no re-sorting — the
// cheap per-use step of the plan cache.
func (p *Plan) Clone() *Plan {
	out := &Plan{
		Graph:     p.Graph.Clone(),
		Info:      make(map[string]*Job, len(p.Info)),
		Site:      p.Site,
		Sites:     append([]string(nil), p.Sites...),
		SiteEntry: p.SiteEntry,
		index:     p.index,
	}
	for id, j := range p.Info {
		out.Info[id] = j.clone()
	}
	if out.index != nil {
		if err := out.reindexJobs(); err != nil {
			// Info and index came from a consistent plan; a mismatch here
			// is a programming error, not an input error.
			panic(err)
		}
	}
	return out
}

// clone deep-copies a planned job, including its Args, Tasks and Members.
func (j *Job) clone() *Job {
	cp := *j
	cp.Args = append([]string(nil), j.Args...)
	cp.Tasks = append([]string(nil), j.Tasks...)
	cp.Members = append([]Member(nil), j.Members...)
	return &cp
}
