package planner

import (
	"fmt"
	"testing"
	"testing/quick"

	"pegflow/internal/catalog"
	"pegflow/internal/dax"
)

func TestStageInCombinesWithClustering(t *testing.T) {
	cats := testCatalogs(t, "split", "run_cap3", "merge")
	if err := cats.Replicas.Add("alignments.out", catalog.Replica{Site: "local", PFN: "/d/a"}); err != nil {
		t.Fatal(err)
	}
	p, err := New(fanWorkflow(t, 9), cats, Options{
		Site:                   "osg",
		AddStageIn:             true,
		ClusterSize:            3,
		ClusterTransformations: []string{"run_cap3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 9 cap3 → 3 clustered + split + merge + stage_in = 6.
	if p.Graph.Len() != 6 {
		t.Fatalf("plan jobs = %d: %v", p.Graph.Len(), ids(p))
	}
	si := p.Job("stage_in_0")
	if si == nil {
		t.Fatal("stage_in missing")
	}
	// stage_in feeds split only (the sole consumer of alignments.out).
	if kids := p.Graph.Children("stage_in_0"); len(kids) != 1 || kids[0] != "split" {
		t.Errorf("stage_in children = %v", kids)
	}
	if _, err := p.Graph.TopoSort(); err != nil {
		t.Fatal(err)
	}
}

func TestStageInJobHasTopPriority(t *testing.T) {
	cats := testCatalogs(t, "split", "run_cap3", "merge")
	if err := cats.Replicas.Add("alignments.out", catalog.Replica{Site: "local", PFN: "/d/a"}); err != nil {
		t.Fatal(err)
	}
	p, err := New(fanWorkflow(t, 2), cats, Options{Site: "sandhills", AddStageIn: true})
	if err != nil {
		t.Fatal(err)
	}
	si := p.Job("stage_in_0")
	for _, j := range p.Jobs() {
		if j.ID != si.ID && j.Priority >= si.Priority {
			t.Errorf("job %s priority %d ≥ stage_in %d", j.ID, j.Priority, si.Priority)
		}
	}
}

func TestClusteredJobInheritsMaxPriority(t *testing.T) {
	cats := testCatalogs(t, "work")
	w := dax.New("prio")
	for i := 0; i < 4; i++ {
		j := w.NewJob(fmt.Sprintf("J%d", i), "work")
		j.Priority = i * 10
		j.SetProfile("pegasus", "runtime", "5")
	}
	p, err := New(w, cats, Options{Site: "sandhills", ClusterSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.Graph.Len() != 1 {
		t.Fatalf("jobs = %d", p.Graph.Len())
	}
	only := p.Jobs()[0]
	if only.Priority != 30 {
		t.Errorf("clustered priority = %d, want max 30", only.Priority)
	}
	if len(only.Tasks) != 4 || only.ExecSeconds != 20 {
		t.Errorf("tasks = %v exec = %v", only.Tasks, only.ExecSeconds)
	}
}

func TestInputOutputByteTotals(t *testing.T) {
	cats := testCatalogs(t, "t")
	w := dax.New("io")
	w.NewJob("a", "t").AddInput("x", 100).AddInput("y", 50).AddOutput("z", 25)
	p, err := New(w, cats, Options{Site: "sandhills"})
	if err != nil {
		t.Fatal(err)
	}
	j := p.Job("a")
	if j.InputBytes != 150 || j.OutputBytes != 25 {
		t.Errorf("bytes = %d/%d", j.InputBytes, j.OutputBytes)
	}
}

// Property: for any fan width and cluster size, planning preserves total
// estimated work and yields an acyclic executable graph whose cap3 task
// count sums to the original width.
func TestPropertyClusteringInvariants(t *testing.T) {
	cats := testCatalogs(t, "split", "run_cap3", "merge")
	f := func(widthRaw, sizeRaw uint8) bool {
		width := int(widthRaw%40) + 1
		size := int(sizeRaw%8) + 1
		w := fanWorkflowQuick(width)
		p, err := New(w, cats, Options{
			Site: "sandhills", ClusterSize: size,
			ClusterTransformations: []string{"run_cap3"},
		})
		if err != nil {
			return false
		}
		if _, err := p.Graph.TopoSort(); err != nil {
			return false
		}
		if p.TotalExecSeconds() != 60+float64(width)*100+30 {
			return false
		}
		tasks := 0
		for _, j := range p.Jobs() {
			if j.Transformation != "run_cap3" {
				continue
			}
			if len(j.Tasks) > 0 {
				tasks += len(j.Tasks)
			} else {
				tasks++
			}
		}
		return tasks == width
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// fanWorkflowQuick is fanWorkflow without *testing.T for property use.
func fanWorkflowQuick(width int) *dax.Workflow {
	w := dax.New("fan")
	w.NewJob("split", "split").AddInput("alignments.out", 1000).AddOutput("chunks", 0).
		SetProfile("pegasus", "runtime", "60")
	for i := 0; i < width; i++ {
		id := fmt.Sprintf("run_cap3_%03d", i)
		w.NewJob(id, "run_cap3").AddInput("chunks", 0).AddOutput(fmt.Sprintf("j%03d", i), 0).
			SetProfile("pegasus", "runtime", "100")
		_ = w.AddDependency("split", id)
	}
	w.NewJob("merge", "merge").SetProfile("pegasus", "runtime", "30")
	for i := 0; i < width; i++ {
		w.Job("merge").AddInput(fmt.Sprintf("j%03d", i), 0)
		_ = w.AddDependency(fmt.Sprintf("run_cap3_%03d", i), "merge")
	}
	return w
}
