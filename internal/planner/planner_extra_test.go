package planner

import (
	"fmt"
	"testing"
	"testing/quick"

	"pegflow/internal/catalog"
	"pegflow/internal/dax"
)

func TestStageInCombinesWithClustering(t *testing.T) {
	cats := testCatalogs(t, "split", "run_cap3", "merge")
	if err := cats.Replicas.Add("alignments.out", catalog.Replica{Site: "local", PFN: "/d/a"}); err != nil {
		t.Fatal(err)
	}
	p, err := New(fanWorkflow(t, 9), cats, Options{
		Site:                   "osg",
		AddStageIn:             true,
		ClusterSize:            3,
		ClusterTransformations: []string{"run_cap3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 9 cap3 → 3 clustered + split + merge + stage_in = 6.
	if p.Graph.Len() != 6 {
		t.Fatalf("plan jobs = %d: %v", p.Graph.Len(), ids(p))
	}
	si := p.Job("stage_in_0")
	if si == nil {
		t.Fatal("stage_in missing")
	}
	// stage_in feeds split only (the sole consumer of alignments.out).
	if kids := p.Graph.Children("stage_in_0"); len(kids) != 1 || kids[0] != "split" {
		t.Errorf("stage_in children = %v", kids)
	}
	if _, err := p.Graph.TopoSort(); err != nil {
		t.Fatal(err)
	}
}

func TestStageInJobHasTopPriority(t *testing.T) {
	cats := testCatalogs(t, "split", "run_cap3", "merge")
	if err := cats.Replicas.Add("alignments.out", catalog.Replica{Site: "local", PFN: "/d/a"}); err != nil {
		t.Fatal(err)
	}
	p, err := New(fanWorkflow(t, 2), cats, Options{Site: "sandhills", AddStageIn: true})
	if err != nil {
		t.Fatal(err)
	}
	si := p.Job("stage_in_0")
	for _, j := range p.Jobs() {
		if j.ID != si.ID && j.Priority >= si.Priority {
			t.Errorf("job %s priority %d ≥ stage_in %d", j.ID, j.Priority, si.Priority)
		}
	}
}

func TestClusteredJobInheritsMaxPriority(t *testing.T) {
	cats := testCatalogs(t, "work")
	w := dax.New("prio")
	for i := 0; i < 4; i++ {
		j := w.NewJob(fmt.Sprintf("J%d", i), "work")
		j.Priority = i * 10
		j.SetProfile("pegasus", "runtime", "5")
	}
	p, err := New(w, cats, Options{Site: "sandhills", ClusterSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.Graph.Len() != 1 {
		t.Fatalf("jobs = %d", p.Graph.Len())
	}
	only := p.Jobs()[0]
	if only.Priority != 30 {
		t.Errorf("clustered priority = %d, want max 30", only.Priority)
	}
	if len(only.Tasks) != 4 || only.ExecSeconds != 20 {
		t.Errorf("tasks = %v exec = %v", only.Tasks, only.ExecSeconds)
	}
}

func TestInputOutputByteTotals(t *testing.T) {
	cats := testCatalogs(t, "t")
	w := dax.New("io")
	w.NewJob("a", "t").AddInput("x", 100).AddInput("y", 50).AddOutput("z", 25)
	p, err := New(w, cats, Options{Site: "sandhills"})
	if err != nil {
		t.Fatal(err)
	}
	j := p.Job("a")
	if j.InputBytes != 150 || j.OutputBytes != 25 {
		t.Errorf("bytes = %d/%d", j.InputBytes, j.OutputBytes)
	}
}

// Property: for any fan width and cluster size, planning preserves total
// estimated work and yields an acyclic executable graph whose cap3 task
// count sums to the original width.
func TestPropertyClusteringInvariants(t *testing.T) {
	cats := testCatalogs(t, "split", "run_cap3", "merge")
	f := func(widthRaw, sizeRaw uint8) bool {
		width := int(widthRaw%40) + 1
		size := int(sizeRaw%8) + 1
		w := fanWorkflowQuick(width)
		p, err := New(w, cats, Options{
			Site: "sandhills", ClusterSize: size,
			ClusterTransformations: []string{"run_cap3"},
		})
		if err != nil {
			return false
		}
		if _, err := p.Graph.TopoSort(); err != nil {
			return false
		}
		if p.TotalExecSeconds() != 60+float64(width)*100+30 {
			return false
		}
		tasks := 0
		for _, j := range p.Jobs() {
			if j.Transformation != "run_cap3" {
				continue
			}
			if len(j.Tasks) > 0 {
				tasks += len(j.Tasks)
			} else {
				tasks++
			}
		}
		return tasks == width
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// taskOwners maps every abstract task to the executable job that carries
// it (clustered jobs own their Tasks; plain jobs own themselves).
func taskOwners(t *testing.T, p *Plan) map[string]string {
	t.Helper()
	owner := make(map[string]string)
	for _, j := range p.Jobs() {
		if j.Transformation == StageInTransformation {
			continue
		}
		tasks := j.Tasks
		if len(tasks) == 0 {
			tasks = []string{j.ID}
		}
		for _, task := range tasks {
			if prev, dup := owner[task]; dup {
				t.Errorf("task %q owned by both %q and %q", task, prev, j.ID)
			}
			owner[task] = j.ID
		}
	}
	return owner
}

// checkPlanInvariants asserts the planning properties the ISSUE names:
// every abstract task appears in exactly one executable job, dependencies
// are never inverted, and every job lands on a site where its
// transformation resolves.
func checkPlanInvariants(t *testing.T, abstract *dax.Workflow, p *Plan, cats Catalogs) {
	t.Helper()
	owner := taskOwners(t, p)
	for _, aj := range abstract.Jobs() {
		if _, ok := owner[aj.ID]; !ok {
			t.Errorf("abstract task %q missing from the plan", aj.ID)
		}
	}
	if len(owner) != abstract.Len() {
		t.Errorf("plan carries %d tasks, abstract has %d", len(owner), abstract.Len())
	}

	// Dependencies are never inverted: for every abstract edge, the
	// owners are the same executable job or ordered by a plan edge.
	pos := make(map[string]int)
	order, err := p.Graph.TopoSort()
	if err != nil {
		t.Fatalf("plan not acyclic: %v", err)
	}
	for i, id := range order {
		pos[id] = i
	}
	for _, aj := range abstract.Jobs() {
		for _, parent := range abstract.Parents(aj.ID) {
			po, co := owner[parent], owner[aj.ID]
			if po == co {
				continue
			}
			if pos[po] >= pos[co] {
				t.Errorf("dependency %q -> %q inverted: owner %q at %d, %q at %d",
					parent, aj.ID, po, pos[po], co, pos[co])
			}
			found := false
			for _, c := range p.Graph.Children(po) {
				if c == co {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("no plan edge for abstract dependency %q -> %q (owners %q -> %q)",
					parent, aj.ID, po, co)
			}
		}
	}

	// Every job resolves at its site; installs only where allowed.
	for _, j := range p.Jobs() {
		if j.Transformation == StageInTransformation {
			continue
		}
		tc, err := cats.Transformations.Lookup(j.Transformation, j.Site)
		if err != nil {
			t.Errorf("job %q: transformation %q does not resolve at its site %q",
				j.ID, j.Transformation, j.Site)
			continue
		}
		site, err := cats.Sites.Lookup(j.Site)
		if err != nil {
			t.Errorf("job %q: unknown site %q", j.ID, j.Site)
			continue
		}
		if j.NeedsInstall != !tc.Installed {
			t.Errorf("job %q at %q: NeedsInstall = %v, catalog Installed = %v",
				j.ID, j.Site, j.NeedsInstall, tc.Installed)
		}
		if j.NeedsInstall && site.SharedSoftware {
			t.Errorf("job %q needs install at shared-software site %q", j.ID, j.Site)
		}
	}
}

// Property: single-site planning with clustering preserves the task set,
// dependency order and site resolution for any fan width and cluster size.
func TestPropertySingleSitePlanInvariants(t *testing.T) {
	cats := testCatalogs(t, "split", "run_cap3", "merge")
	f := func(widthRaw, sizeRaw uint8, osg bool) bool {
		width := int(widthRaw%40) + 1
		size := int(sizeRaw%8) + 1
		site := "sandhills"
		if osg {
			site = "osg"
		}
		w := fanWorkflowQuick(width)
		p, err := New(w, cats, Options{
			Site: site, ClusterSize: size,
			ClusterTransformations: []string{"run_cap3"},
		})
		if err != nil {
			return false
		}
		checkPlanInvariants(t, w, p, cats)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: multi-site planning keeps the same invariants for every
// policy, site-set permutation and cluster size, and only ever assigns
// jobs to the declared target sites.
func TestPropertyMultiSitePlanInvariants(t *testing.T) {
	cats := testCatalogs(t, "split", "run_cap3", "merge")
	siteSets := [][]string{
		{"sandhills"},
		{"osg"},
		{"sandhills", "osg"},
		{"osg", "sandhills"},
	}
	f := func(widthRaw, sizeRaw, setRaw, polRaw uint8) bool {
		width := int(widthRaw%30) + 1
		size := int(sizeRaw % 6) // 0/1 disable clustering
		sites := siteSets[int(setRaw)%len(siteSets)]
		polName := PolicyNames()[int(polRaw)%len(PolicyNames())]
		pol, err := NewPolicy(polName)
		if err != nil {
			t.Fatal(err)
		}
		w := fanWorkflowQuick(width)
		p, err := NewMulti(w, cats, MultiOptions{
			Sites:                  sites,
			Policy:                 pol,
			ClusterSize:            size,
			ClusterTransformations: []string{"run_cap3"},
		})
		if err != nil {
			return false
		}
		checkPlanInvariants(t, w, p, cats)
		allowed := make(map[string]bool, len(sites))
		for _, s := range sites {
			allowed[s] = true
		}
		for _, j := range p.Jobs() {
			if !allowed[j.Site] {
				t.Errorf("job %q landed on %q, outside target set %v", j.ID, j.Site, sites)
			}
		}
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// fanWorkflowQuick is fanWorkflow without *testing.T for property use.
func fanWorkflowQuick(width int) *dax.Workflow {
	w := dax.New("fan")
	w.NewJob("split", "split").AddInput("alignments.out", 1000).AddOutput("chunks", 0).
		SetProfile("pegasus", "runtime", "60")
	for i := 0; i < width; i++ {
		id := fmt.Sprintf("run_cap3_%03d", i)
		w.NewJob(id, "run_cap3").AddInput("chunks", 0).AddOutput(fmt.Sprintf("j%03d", i), 0).
			SetProfile("pegasus", "runtime", "100")
		_ = w.AddDependency("split", id)
	}
	w.NewJob("merge", "merge").SetProfile("pegasus", "runtime", "30")
	for i := 0; i < width; i++ {
		w.Job("merge").AddInput(fmt.Sprintf("j%03d", i), 0)
		_ = w.AddDependency(fmt.Sprintf("run_cap3_%03d", i), "merge")
	}
	return w
}
