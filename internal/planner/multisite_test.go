package planner

import (
	"fmt"
	"strings"
	"testing"

	"pegflow/internal/catalog"
	"pegflow/internal/dax"
)

func TestNewMultiRoundRobinSpreadsJobs(t *testing.T) {
	cats := testCatalogs(t, "split", "run_cap3", "merge")
	p, err := NewMulti(fanWorkflow(t, 6), cats, MultiOptions{
		Sites: []string{"sandhills", "osg"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.Site, "sandhills,osg"; got != want {
		t.Errorf("plan Site = %q, want %q", got, want)
	}
	if len(p.Sites) != 2 || p.SiteEntry != nil {
		t.Errorf("Sites = %v, SiteEntry = %v", p.Sites, p.SiteEntry)
	}
	counts := map[string]int{}
	for _, j := range p.Jobs() {
		counts[j.Site]++
	}
	// 8 jobs round-robin over 2 sites → 4 each.
	if counts["sandhills"] != 4 || counts["osg"] != 4 {
		t.Errorf("round-robin distribution = %v, want 4/4", counts)
	}
	for _, j := range p.Jobs() {
		wantInstall := j.Site == "osg"
		if j.NeedsInstall != wantInstall {
			t.Errorf("job %s at %s: NeedsInstall = %v", j.ID, j.Site, j.NeedsInstall)
		}
	}
}

func TestNewMultiDataAwarePrefersCheapSite(t *testing.T) {
	cats := testCatalogs(t, "work")
	pol, err := NewPolicy(PolicyDataAware)
	if err != nil {
		t.Fatal(err)
	}
	w := dax.New("data")
	// A single small job: the data-aware policy should avoid the osg
	// install payload (50 MB at 20 MB/s) and pick sandhills even though
	// osg is listed first.
	w.NewJob("j", "work").AddInput("in", 1<<20).SetProfile("pegasus", "runtime", "10")
	p, err := NewMulti(w, cats, MultiOptions{Sites: []string{"osg", "sandhills"}, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Job("j").Site; got != "sandhills" {
		t.Errorf("data-aware chose %q, want sandhills", got)
	}
}

func TestNewMultiBalancesLoadAcrossSites(t *testing.T) {
	cats := testCatalogs(t, "work")
	pol, err := NewPolicy(PolicyRuntimeAware)
	if err != nil {
		t.Fatal(err)
	}
	w := dax.New("load")
	for i := 0; i < 40; i++ {
		w.NewJob(fmt.Sprintf("j%02d", i), "work").SetProfile("pegasus", "runtime", "100")
	}
	p, err := NewMulti(w, cats, MultiOptions{Sites: []string{"sandhills", "osg"}, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, j := range p.Jobs() {
		counts[j.Site]++
	}
	// Equal-cost identical jobs: the load term must force both sites into
	// play rather than piling everything on one.
	if counts["sandhills"] == 0 || counts["osg"] == 0 {
		t.Errorf("runtime-aware used only one site: %v", counts)
	}
}

func TestNewMultiSharedSoftwareSiteExcludedWhenNotInstalled(t *testing.T) {
	sc := catalog.NewSiteCatalog()
	for _, s := range []*catalog.Site{
		{Name: "campus", Slots: 10, SpeedFactor: 1, SharedSoftware: true},
		{Name: "grid", Slots: 10, SpeedFactor: 1},
	} {
		if err := sc.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	tc := catalog.NewTransformationCatalog()
	// "work" is registered at the campus but NOT installed — the campus
	// refuses per-job installs, so only the grid is a candidate.
	if err := tc.Add(&catalog.Transformation{Name: "work", Site: "campus", PFN: "/x"}); err != nil {
		t.Fatal(err)
	}
	if err := tc.Add(&catalog.Transformation{Name: "work", Site: "grid", PFN: "w.tgz", InstallBytes: 1}); err != nil {
		t.Fatal(err)
	}
	cats := Catalogs{Sites: sc, Transformations: tc, Replicas: catalog.NewReplicaCatalog()}
	w := dax.New("x")
	w.NewJob("j", "work")
	p, err := NewMulti(w, cats, MultiOptions{Sites: []string{"campus", "grid"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Job("j").Site; got != "grid" {
		t.Errorf("job planned at %q, want grid", got)
	}

	// With only the campus as target there is no candidate at all.
	if _, err := NewMulti(w, cats, MultiOptions{Sites: []string{"campus"}}); err == nil {
		t.Error("no error when the only site cannot host the transformation")
	}
}

func TestNewMultiErrors(t *testing.T) {
	cats := testCatalogs(t, "split", "run_cap3", "merge")
	w := fanWorkflow(t, 2)
	if _, err := NewMulti(w, cats, MultiOptions{}); err == nil {
		t.Error("no error for empty site set")
	}
	if _, err := NewMulti(w, cats, MultiOptions{Sites: []string{"sandhills", "sandhills"}}); err == nil {
		t.Error("no error for duplicate sites")
	}
	if _, err := NewMulti(w, cats, MultiOptions{Sites: []string{"nowhere"}}); err == nil {
		t.Error("no error for unknown site")
	}
	if _, err := NewPolicy("optimal"); err == nil {
		t.Error("no error for unknown policy name")
	}
}

func TestNewMultiPerSiteStageIn(t *testing.T) {
	cats := testCatalogs(t, "split", "run_cap3", "merge")
	if err := cats.Replicas.Add("alignments.out", catalog.Replica{Site: "local", PFN: "/d/a"}); err != nil {
		t.Fatal(err)
	}
	// Two parallel splits so round-robin lands one on each site; both
	// consume the external input, so each site gets its own stage-in.
	w := dax.New("two")
	w.NewJob("split_a", "split").AddInput("alignments.out", 1000).SetProfile("pegasus", "runtime", "5")
	w.NewJob("split_b", "split").AddInput("alignments.out", 1000).SetProfile("pegasus", "runtime", "5")
	p, err := NewMulti(w, cats, MultiOptions{
		Sites:      []string{"sandhills", "osg"},
		AddStageIn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var stageIns []*Job
	for _, j := range p.Jobs() {
		if j.Transformation == StageInTransformation {
			stageIns = append(stageIns, j)
		}
	}
	if len(stageIns) != 2 {
		t.Fatalf("stage-in jobs = %d, want one per site", len(stageIns))
	}
	for _, si := range stageIns {
		if !strings.HasPrefix(si.ID, "stage_in_") {
			t.Errorf("stage-in ID %q", si.ID)
		}
		kids := p.Graph.Children(si.ID)
		if len(kids) != 1 {
			t.Errorf("stage-in %s feeds %v, want exactly its site's consumer", si.ID, kids)
			continue
		}
		if consumer := p.Job(kids[0]); consumer.Site != si.Site {
			t.Errorf("stage-in at %s feeds consumer at %s", si.Site, consumer.Site)
		}
		if si.ExecSeconds <= 0 {
			t.Errorf("stage-in %s has no transfer time", si.ID)
		}
	}
	// Transfer at the slower osg bandwidth takes longer.
	bySite := map[string]*Job{}
	for _, si := range stageIns {
		bySite[si.Site] = si
	}
	if bySite["osg"].ExecSeconds <= bySite["sandhills"].ExecSeconds {
		t.Errorf("osg stage-in %.6fs not slower than sandhills %.6fs",
			bySite["osg"].ExecSeconds, bySite["sandhills"].ExecSeconds)
	}
}

func TestNewMultiWithClustering(t *testing.T) {
	cats := testCatalogs(t, "split", "run_cap3", "merge")
	pol, err := NewPolicy(PolicyRuntimeAware)
	if err != nil {
		t.Fatal(err)
	}
	abstract := fanWorkflow(t, 9)
	p, err := NewMulti(abstract, cats, MultiOptions{
		Sites:                  []string{"sandhills", "osg"},
		Policy:                 pol,
		ClusterSize:            3,
		ClusterTransformations: []string{"run_cap3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 9 cap3 → 3 clustered + split + merge = 5.
	if p.Graph.Len() != 5 {
		t.Fatalf("plan jobs = %d, want 5", p.Graph.Len())
	}
	checkPlanInvariants(t, abstract, p, cats)
}
