// Multi-site planning: map an abstract workflow onto a *set* of execution
// sites under a pluggable site-selection policy — the paper's central
// scenario of one WMS driving both a campus cluster and an opportunistic
// grid at once (§III, §VI), generalized so any number of heterogeneous
// backends can share one executable plan.
//
// Every job is resolved against the transformation catalog at its chosen
// site, and install steps are injected only where the site lacks a shared
// software stack (the OSG case); stage-in jobs are synthesized per site, so
// data transfers are paid once per site rather than once per workflow.

package planner

import (
	"fmt"
	"sort"
	"strings"

	"pegflow/internal/catalog"
	"pegflow/internal/dax"
)

// PolicyJob is the job information a site-selection policy sees.
type PolicyJob struct {
	// ID is the executable job ID.
	ID string
	// Transformation is the logical executable name.
	Transformation string
	// ExecSeconds is the estimated reference-speed runtime (0 = unknown).
	ExecSeconds float64
	// InputBytes and OutputBytes total the declared file sizes.
	InputBytes, OutputBytes int64
}

// Candidate is one site at which a job's transformation resolves.
type Candidate struct {
	// Site is the site catalog entry.
	Site *catalog.Site
	// Entry is the transformation catalog entry at that site.
	Entry *catalog.Transformation
}

// SitePolicy chooses an execution site for each job during multi-site
// planning. Choose returns an index into cands (always non-empty, ordered
// as in MultiOptions.Sites). Policies may carry state (e.g. accumulated
// per-site load); a fresh policy instance is used per planning run, so
// plans are independent of each other.
type SitePolicy interface {
	// Name identifies the policy ("round-robin", "data-aware", ...).
	Name() string
	// Choose picks the candidate for the job.
	Choose(job PolicyJob, cands []Candidate) int
}

// Policy names accepted by NewPolicy.
const (
	PolicyRoundRobin   = "round-robin"
	PolicyDataAware    = "data-aware"
	PolicyRuntimeAware = "runtime-aware"
)

// PolicyNames lists the built-in site-selection policies.
func PolicyNames() []string {
	return []string{PolicyRoundRobin, PolicyDataAware, PolicyRuntimeAware}
}

// NewPolicy returns a fresh instance of a built-in policy by name.
func NewPolicy(name string) (SitePolicy, error) {
	switch name {
	case PolicyRoundRobin:
		return &roundRobinPolicy{}, nil
	case PolicyDataAware:
		return &costPolicy{name: PolicyDataAware, includeData: true, load: map[string]float64{}}, nil
	case PolicyRuntimeAware:
		return &costPolicy{name: PolicyRuntimeAware, load: map[string]float64{}}, nil
	default:
		return nil, fmt.Errorf("planner: unknown site policy %q (have %s)",
			name, strings.Join(PolicyNames(), ", "))
	}
}

// roundRobinPolicy cycles through the candidate sites in order, ignoring
// job attributes — the baseline spreading strategy.
type roundRobinPolicy struct {
	next int
}

func (p *roundRobinPolicy) Name() string { return PolicyRoundRobin }

func (p *roundRobinPolicy) Choose(job PolicyJob, cands []Candidate) int {
	i := p.next % len(cands)
	p.next++
	return i
}

// costPolicy greedily minimizes the estimated completion cost of each job:
// accumulated site load (normalized by slot count) plus the job's scaled
// execution time, and — for the data-aware variant — the time to move the
// job's inputs and software stack to the site at its staging bandwidth.
type costPolicy struct {
	name        string
	includeData bool
	// load accumulates assigned work seconds per site.
	load map[string]float64
}

func (p *costPolicy) Name() string { return p.name }

func (p *costPolicy) Choose(job PolicyJob, cands []Candidate) int {
	best, bestCost := 0, 0.0
	for i, c := range cands {
		exec := job.ExecSeconds * c.Site.SpeedFactor
		cost := p.load[c.Site.Name]/float64(c.Site.Slots) + exec
		if p.includeData {
			cost += dataSeconds(job, c)
		}
		if i == 0 || cost < bestCost {
			best, bestCost = i, cost
		}
	}
	chosen := cands[best]
	p.load[chosen.Site.Name] += job.ExecSeconds * chosen.Site.SpeedFactor
	if p.includeData {
		p.load[chosen.Site.Name] += dataSeconds(job, chosen)
	}
	return best
}

// dataSeconds estimates the time to stage the job's inputs — and, where
// the transformation is not preinstalled, its software stack — to the
// candidate site.
func dataSeconds(job PolicyJob, c Candidate) float64 {
	bytes := job.InputBytes
	if !c.Entry.Installed {
		bytes += c.Entry.InstallBytes
	}
	return float64(bytes) / (stageInMBps(c.Site) * 1e6)
}

// siteCandidates returns the sites at which the transformation resolves,
// in the given site order: preinstalled entries always qualify, uninstalled
// entries only where per-job installs are allowed (no shared software
// stack). Both NewMulti's site selection and Failover's retry-elsewhere
// re-resolution go through this, so a failover lands exactly where the
// planner could have placed the job in the first place.
func siteCandidates(cats Catalogs, sites []*catalog.Site, transformation string) []Candidate {
	var cands []Candidate
	for _, s := range sites {
		tc, err := cats.Transformations.Lookup(transformation, s.Name)
		if err != nil {
			continue
		}
		if !tc.Installed && s.SharedSoftware {
			// A shared-software site refuses per-job installs.
			continue
		}
		cands = append(cands, Candidate{Site: s, Entry: tc})
	}
	return cands
}

// stageInMBps returns the site's staging bandwidth, defaulting to 100 MB/s
// when the catalog leaves it unset.
func stageInMBps(s *catalog.Site) float64 {
	if s.StageInMBps <= 0 {
		return 100
	}
	return s.StageInMBps
}

// MultiOptions configures multi-site planning.
type MultiOptions struct {
	// Sites are the target execution sites (at least one, all distinct).
	Sites []string
	// Policy selects a site per job; nil means round-robin.
	Policy SitePolicy
	// AddStageIn synthesizes one stage-in job per site holding external
	// inputs consumed there.
	AddStageIn bool
	// ClusterSize and ClusterTransformations configure horizontal task
	// clustering exactly as in Options.
	ClusterSize            int
	ClusterTransformations []string
}

// NewMulti maps the abstract workflow onto a set of sites, choosing an
// execution site per job via the policy. The resulting Plan has per-job
// sites in Info and lists the target sites in Plan.Sites; Plan.SiteEntry
// is nil for multi-site plans.
func NewMulti(abstract *dax.Workflow, cats Catalogs, opts MultiOptions) (*Plan, error) {
	if err := abstract.Validate(); err != nil {
		return nil, fmt.Errorf("planner: invalid abstract workflow: %w", err)
	}
	if len(opts.Sites) == 0 {
		return nil, fmt.Errorf("planner: no target sites given")
	}
	seen := make(map[string]bool, len(opts.Sites))
	sites := make([]*catalog.Site, 0, len(opts.Sites))
	for _, name := range opts.Sites {
		if seen[name] {
			return nil, fmt.Errorf("planner: duplicate target site %q", name)
		}
		seen[name] = true
		s, err := cats.Sites.Lookup(name)
		if err != nil {
			return nil, fmt.Errorf("planner: %w", err)
		}
		sites = append(sites, s)
	}
	policy := opts.Policy
	if policy == nil {
		policy = &roundRobinPolicy{}
	}

	work := abstract
	if opts.ClusterSize > 1 {
		var err error
		work, err = clusterTasks(abstract, Options{
			ClusterSize:            opts.ClusterSize,
			ClusterTransformations: opts.ClusterTransformations,
		})
		if err != nil {
			return nil, err
		}
	}

	plan := &Plan{
		Graph: dax.New(work.Name + "-multi"),
		Info:  make(map[string]*Job),
		Site:  strings.Join(opts.Sites, ","),
		Sites: append([]string(nil), opts.Sites...),
	}

	// Choose sites in topological order so load-based policies see jobs
	// roughly in execution order; the order is deterministic (Kahn's
	// algorithm with insertion-order tie-breaking).
	order, err := work.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("planner: %w", err)
	}
	for _, id := range order {
		aj := work.Job(id)
		pj, err := jobAttributes(aj)
		if err != nil {
			return nil, err
		}

		// Candidate sites: those where the transformation resolves and
		// is either preinstalled or installable (no shared stack).
		cands := siteCandidates(cats, sites, aj.Transformation)
		if len(cands) == 0 {
			return nil, fmt.Errorf(
				"planner: job %q: transformation %q resolves at none of the target sites %v",
				aj.ID, aj.Transformation, opts.Sites)
		}
		choice := policy.Choose(PolicyJob{
			ID:             pj.ID,
			Transformation: pj.Transformation,
			ExecSeconds:    pj.ExecSeconds,
			InputBytes:     pj.InputBytes,
			OutputBytes:    pj.OutputBytes,
		}, cands)
		if choice < 0 || choice >= len(cands) {
			return nil, fmt.Errorf("planner: policy %q chose candidate %d of %d for job %q",
				policy.Name(), choice, len(cands), aj.ID)
		}
		chosen := cands[choice]
		pj.Site = chosen.Site.Name
		if !chosen.Entry.Installed {
			pj.NeedsInstall = true
			pj.InstallBytes = chosen.Entry.InstallBytes
		}

		gj := &dax.Job{ID: aj.ID, Transformation: aj.Transformation, Uses: aj.Uses, Priority: aj.Priority}
		if err := plan.Graph.AddJob(gj); err != nil {
			return nil, err
		}
		plan.Info[aj.ID] = pj
	}
	for _, aj := range work.Jobs() {
		for _, parent := range work.Parents(aj.ID) {
			if err := plan.Graph.AddDependency(parent, aj.ID); err != nil {
				return nil, err
			}
		}
	}

	if opts.AddStageIn {
		if err := addStageInMulti(plan, work, cats); err != nil {
			return nil, err
		}
	}

	if err := plan.finalize(); err != nil {
		return nil, err
	}
	return plan, nil
}

// addStageInMulti synthesizes one stage-in job per site that consumes
// external inputs, transferring every external input consumed at that site
// and feeding its consumers there. External inputs must have a registered
// replica.
func addStageInMulti(plan *Plan, work *dax.Workflow, cats Catalogs) error {
	produced := make(map[string]bool)
	for _, j := range work.Jobs() {
		for _, lfn := range j.Outputs() {
			produced[lfn] = true
		}
	}
	type ext struct {
		lfn  string
		size int64
	}
	// Per site: the external inputs staged there and their consumers.
	externals := make(map[string][]ext)
	consumers := make(map[string][]string) // site → consumer job IDs
	seen := make(map[string]map[string]bool)
	for _, j := range work.Jobs() {
		site := plan.Info[j.ID].Site
		for _, u := range j.Uses {
			if u.Link != dax.LinkInput || produced[u.LFN] {
				continue
			}
			if !cats.Replicas.Has(u.LFN) {
				return fmt.Errorf("planner: external input %q of job %q has no replica", u.LFN, j.ID)
			}
			consumers[site] = append(consumers[site], j.ID)
			if seen[site] == nil {
				seen[site] = make(map[string]bool)
			}
			if !seen[site][u.LFN] {
				seen[site][u.LFN] = true
				externals[site] = append(externals[site], ext{u.LFN, u.Size})
			}
		}
	}
	siteNames := make([]string, 0, len(externals))
	for s := range externals {
		siteNames = append(siteNames, s)
	}
	sort.Strings(siteNames)
	for _, site := range siteNames {
		exts := externals[site]
		sort.Slice(exts, func(i, j int) bool { return exts[i].lfn < exts[j].lfn })
		id := "stage_in_" + site
		gj := &dax.Job{ID: id, Transformation: StageInTransformation}
		var totalBytes int64
		for _, e := range exts {
			gj.Uses = append(gj.Uses, dax.Use{LFN: e.lfn, Link: dax.LinkOutput, Size: e.size})
			totalBytes += e.size
		}
		if err := plan.Graph.AddJob(gj); err != nil {
			return err
		}
		entry, err := cats.Sites.Lookup(site)
		if err != nil {
			return err
		}
		plan.Info[id] = &Job{
			ID:             id,
			Transformation: StageInTransformation,
			Site:           site,
			ExecSeconds:    float64(totalBytes) / (stageInMBps(entry) * 1e6),
			OutputBytes:    totalBytes,
			// Stage-in never needs installs and gets top priority so
			// transfers start immediately.
			Priority: 1 << 20,
		}
		added := make(map[string]bool)
		for _, c := range consumers[site] {
			if added[c] {
				continue
			}
			added[c] = true
			if err := plan.Graph.AddDependency(id, c); err != nil {
				return err
			}
		}
	}
	return nil
}
