package planner

import (
	"fmt"
	"strings"
	"testing"

	"pegflow/internal/catalog"
	"pegflow/internal/dax"
)

// testCatalogs builds a two-site world resembling the paper's: "sandhills"
// has everything preinstalled; "osg" has nothing preinstalled.
func testCatalogs(t *testing.T, transformations ...string) Catalogs {
	t.Helper()
	sc := catalog.NewSiteCatalog()
	for _, s := range []*catalog.Site{
		{Name: "sandhills", Slots: 50, SpeedFactor: 1.0, SharedSoftware: true, StageInMBps: 100},
		{Name: "osg", Slots: 200, SpeedFactor: 0.9, Heterogeneous: true, StageInMBps: 20},
	} {
		if err := sc.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	tc := catalog.NewTransformationCatalog()
	for _, tr := range transformations {
		if err := tc.Add(&catalog.Transformation{Name: tr, Site: "sandhills", PFN: "/opt/" + tr, Installed: true}); err != nil {
			t.Fatal(err)
		}
		if err := tc.Add(&catalog.Transformation{Name: tr, Site: "osg", PFN: tr + ".tar.gz", InstallBytes: 50 << 20}); err != nil {
			t.Fatal(err)
		}
	}
	return Catalogs{Sites: sc, Transformations: tc, Replicas: catalog.NewReplicaCatalog()}
}

func fanWorkflow(t *testing.T, width int) *dax.Workflow {
	t.Helper()
	w := dax.New("fan")
	w.NewJob("split", "split").AddInput("alignments.out", 1000).AddOutput("chunks", 0).
		SetProfile("pegasus", "runtime", "60")
	for i := 0; i < width; i++ {
		id := fmt.Sprintf("run_cap3_%03d", i)
		w.NewJob(id, "run_cap3").AddInput("chunks", 0).AddOutput(fmt.Sprintf("joined_%03d", i), 0).
			SetProfile("pegasus", "runtime", "100")
		if err := w.AddDependency("split", id); err != nil {
			t.Fatal(err)
		}
	}
	w.NewJob("merge", "merge").SetProfile("pegasus", "runtime", "30")
	for i := 0; i < width; i++ {
		w.Job("merge").AddInput(fmt.Sprintf("joined_%03d", i), 0)
		if err := w.AddDependency(fmt.Sprintf("run_cap3_%03d", i), "merge"); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func TestPlanSandhillsNoInstall(t *testing.T) {
	cats := testCatalogs(t, "split", "run_cap3", "merge")
	p, err := New(fanWorkflow(t, 4), cats, Options{Site: "sandhills"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Graph.Len() != 6 {
		t.Fatalf("plan has %d jobs, want 6", p.Graph.Len())
	}
	for _, j := range p.Jobs() {
		if j.NeedsInstall {
			t.Errorf("job %s needs install on sandhills", j.ID)
		}
	}
	if got := p.Job("split").ExecSeconds; got != 60 {
		t.Errorf("split ExecSeconds = %v, want 60", got)
	}
	if got := p.TotalExecSeconds(); got != 60+4*100+30 {
		t.Errorf("TotalExecSeconds = %v, want 490", got)
	}
}

func TestPlanOSGInjectsInstall(t *testing.T) {
	cats := testCatalogs(t, "split", "run_cap3", "merge")
	p, err := New(fanWorkflow(t, 4), cats, Options{Site: "osg"})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range p.Jobs() {
		if !j.NeedsInstall {
			t.Errorf("job %s (%s) lacks install step on osg", j.ID, j.Transformation)
		}
		if j.InstallBytes != 50<<20 {
			t.Errorf("job %s InstallBytes = %d", j.ID, j.InstallBytes)
		}
	}
}

func TestPlanPreservesDependencies(t *testing.T) {
	cats := testCatalogs(t, "split", "run_cap3", "merge")
	p, err := New(fanWorkflow(t, 3), cats, Options{Site: "sandhills"})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Graph.Parents("merge"); len(got) != 3 {
		t.Errorf("Parents(merge) = %v", got)
	}
	if got := p.Graph.Children("split"); len(got) != 3 {
		t.Errorf("Children(split) = %v", got)
	}
}

func TestPlanUnknownSiteAndTransformation(t *testing.T) {
	cats := testCatalogs(t, "split", "run_cap3", "merge")
	if _, err := New(fanWorkflow(t, 2), cats, Options{Site: "cloud"}); err == nil {
		t.Error("unknown site accepted")
	}
	if _, err := New(fanWorkflow(t, 2), cats, Options{}); err == nil {
		t.Error("empty site accepted")
	}
	w := dax.New("w")
	w.NewJob("x", "exotic_tool")
	if _, err := New(w, cats, Options{Site: "sandhills"}); err == nil {
		t.Error("unregistered transformation accepted")
	}
}

func TestPlanRejectsBadRuntimeProfile(t *testing.T) {
	cats := testCatalogs(t, "t")
	w := dax.New("w")
	w.NewJob("a", "t").SetProfile("pegasus", "runtime", "soon")
	if _, err := New(w, cats, Options{Site: "sandhills"}); err == nil {
		t.Error("non-numeric runtime accepted")
	}
	w2 := dax.New("w2")
	w2.NewJob("a", "t").SetProfile("pegasus", "runtime", "-5")
	if _, err := New(w2, cats, Options{Site: "sandhills"}); err == nil {
		t.Error("negative runtime accepted")
	}
}

func TestPlanNotInstalledAtSharedSoftwareSiteFails(t *testing.T) {
	sc := catalog.NewSiteCatalog()
	if err := sc.Add(&catalog.Site{Name: "campus", Slots: 10, SpeedFactor: 1, SharedSoftware: true}); err != nil {
		t.Fatal(err)
	}
	tc := catalog.NewTransformationCatalog()
	if err := tc.Add(&catalog.Transformation{Name: "t", Site: "campus", Installed: false}); err != nil {
		t.Fatal(err)
	}
	w := dax.New("w")
	w.NewJob("a", "t")
	_, err := New(w, Catalogs{Sites: sc, Transformations: tc, Replicas: catalog.NewReplicaCatalog()},
		Options{Site: "campus"})
	if err == nil || !strings.Contains(err.Error(), "not installed") {
		t.Errorf("want not-installed error, got %v", err)
	}
}

func TestStageInSynthesis(t *testing.T) {
	cats := testCatalogs(t, "split", "run_cap3", "merge")
	if err := cats.Replicas.Add("alignments.out", catalog.Replica{Site: "local", PFN: "/data/alignments.out"}); err != nil {
		t.Fatal(err)
	}
	p, err := New(fanWorkflow(t, 2), cats, Options{Site: "osg", AddStageIn: true})
	if err != nil {
		t.Fatal(err)
	}
	si := p.Job("stage_in_0")
	if si == nil {
		t.Fatal("no stage_in job synthesized")
	}
	if si.Transformation != StageInTransformation {
		t.Errorf("transformation = %q", si.Transformation)
	}
	if si.OutputBytes != 1000 {
		t.Errorf("OutputBytes = %d, want 1000", si.OutputBytes)
	}
	// ExecSeconds = bytes / (MBps*1e6) = 1000 / 20e6.
	if want := 1000.0 / 20e6; si.ExecSeconds != want {
		t.Errorf("ExecSeconds = %v, want %v", si.ExecSeconds, want)
	}
	if parents := p.Graph.Parents("split"); len(parents) != 1 || parents[0] != "stage_in_0" {
		t.Errorf("Parents(split) = %v, want [stage_in_0]", parents)
	}
	// Jobs that don't consume external inputs are not children of stage_in.
	if parents := p.Graph.Parents("merge"); len(parents) != 2 {
		t.Errorf("Parents(merge) = %v", parents)
	}
}

func TestStageInMissingReplicaFails(t *testing.T) {
	cats := testCatalogs(t, "split", "run_cap3", "merge")
	_, err := New(fanWorkflow(t, 2), cats, Options{Site: "osg", AddStageIn: true})
	if err == nil || !strings.Contains(err.Error(), "no replica") {
		t.Errorf("want no-replica error, got %v", err)
	}
}

func TestStageInNoExternalInputsNoJob(t *testing.T) {
	cats := testCatalogs(t, "gen", "use")
	w := dax.New("w")
	w.NewJob("g", "gen").AddOutput("data", 5)
	w.NewJob("u", "use").AddInput("data", 5)
	if err := w.AddDependency("g", "u"); err != nil {
		t.Fatal(err)
	}
	p, err := New(w, cats, Options{Site: "osg", AddStageIn: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Job("stage_in_0") != nil {
		t.Error("stage_in synthesized with no external inputs")
	}
}

func TestHorizontalClustering(t *testing.T) {
	cats := testCatalogs(t, "split", "run_cap3", "merge")
	p, err := New(fanWorkflow(t, 10), cats, Options{
		Site:                   "sandhills",
		ClusterSize:            4,
		ClusterTransformations: []string{"run_cap3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 10 tasks at cluster size 4 → 3 clustered jobs (4+4+2), plus split
	// and merge = 5 jobs.
	if p.Graph.Len() != 5 {
		t.Fatalf("plan has %d jobs, want 5: %v", p.Graph.Len(), ids(p))
	}
	var clustered []*Job
	for _, j := range p.Jobs() {
		if len(j.Tasks) > 0 {
			clustered = append(clustered, j)
		}
	}
	if len(clustered) != 3 {
		t.Fatalf("clustered jobs = %d, want 3", len(clustered))
	}
	total := 0
	var runtime float64
	for _, c := range clustered {
		total += len(c.Tasks)
		runtime += c.ExecSeconds
		if c.Transformation != "run_cap3" {
			t.Errorf("clustered job %s transformation = %s", c.ID, c.Transformation)
		}
	}
	if total != 10 {
		t.Errorf("clustered task count = %d, want 10", total)
	}
	if runtime != 1000 {
		t.Errorf("clustered runtime sum = %v, want 1000", runtime)
	}
	// Structure: split → each cluster → merge.
	for _, c := range clustered {
		if parents := p.Graph.Parents(c.ID); len(parents) != 1 || parents[0] != "split" {
			t.Errorf("Parents(%s) = %v", c.ID, parents)
		}
	}
	if parents := p.Graph.Parents("merge"); len(parents) != 3 {
		t.Errorf("Parents(merge) = %v, want 3 clustered parents", parents)
	}
}

func TestClusteringSkipsOtherTransformations(t *testing.T) {
	cats := testCatalogs(t, "split", "run_cap3", "merge")
	p, err := New(fanWorkflow(t, 6), cats, Options{
		Site:                   "sandhills",
		ClusterSize:            2,
		ClusterTransformations: []string{"does_not_exist"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Graph.Len() != 8 {
		t.Errorf("plan has %d jobs, want 8 (untouched)", p.Graph.Len())
	}
}

func TestClusteringDisabledBySize(t *testing.T) {
	cats := testCatalogs(t, "split", "run_cap3", "merge")
	for _, size := range []int{0, 1} {
		p, err := New(fanWorkflow(t, 6), cats, Options{Site: "sandhills", ClusterSize: size})
		if err != nil {
			t.Fatal(err)
		}
		if p.Graph.Len() != 8 {
			t.Errorf("ClusterSize=%d: plan has %d jobs, want 8", size, p.Graph.Len())
		}
	}
}

func TestClusteringPreservesTotalWork(t *testing.T) {
	cats := testCatalogs(t, "split", "run_cap3", "merge")
	base, err := New(fanWorkflow(t, 17), cats, Options{Site: "sandhills"})
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{2, 3, 5, 16, 100} {
		p, err := New(fanWorkflow(t, 17), cats, Options{Site: "sandhills", ClusterSize: size})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := p.TotalExecSeconds(), base.TotalExecSeconds(); got != want {
			t.Errorf("ClusterSize=%d: total work %v, want %v", size, got, want)
		}
		if _, err := p.Graph.TopoSort(); err != nil {
			t.Errorf("ClusterSize=%d: %v", size, err)
		}
	}
}

func ids(p *Plan) []string {
	var out []string
	for _, j := range p.Graph.Jobs() {
		out = append(out, j.ID)
	}
	return out
}
