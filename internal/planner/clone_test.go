package planner

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// snapshot captures everything observable about a plan for deep-equality
// comparison: job attributes, graph structure, and topological index.
func snapshot(t *testing.T, p *Plan) map[string]any {
	t.Helper()
	out := map[string]any{
		"site":  p.Site,
		"sites": append([]string(nil), p.Sites...),
	}
	idx, err := p.Indexed()
	if err != nil {
		t.Fatal(err)
	}
	out["order"] = append([]string(nil), idx.Order...)
	for _, id := range idx.Order {
		j := p.Info[id]
		out["job/"+id] = *j.clone() // deep value copy of the planned job
		gj := p.Graph.Job(id)
		out["graph/"+id] = *gj.Clone()
		out["parents/"+id] = p.Graph.Parents(id)
		out["children/"+id] = p.Graph.Children(id)
	}
	return out
}

// mutate applies one random deep mutation to the plan, exercising every
// layer a clone must have copied: job scalar fields, job slices, graph job
// usages, and graph edges.
func mutate(t *testing.T, p *Plan, r *rand.Rand) {
	t.Helper()
	idx, err := p.Indexed()
	if err != nil {
		t.Fatal(err)
	}
	id := idx.Order[r.Intn(len(idx.Order))]
	j := p.Info[id]
	switch r.Intn(6) {
	case 0:
		j.ExecSeconds += 17.5
	case 1:
		j.Args = append(j.Args, "--mutated")
	case 2:
		j.Site = "elsewhere"
		j.NeedsInstall = !j.NeedsInstall
	case 3:
		j.Members = append(j.Members, Member{TaskID: "ghost", ExecSeconds: 1})
		j.Tasks = append(j.Tasks, "ghost")
	case 4:
		gj := p.Graph.Job(id)
		gj.SetProfile("pegasus", "runtime", "999")
		if len(gj.Uses) > 0 {
			gj.Uses[0].Size += 1
		}
	case 5:
		// Add a fresh job and an edge: structural graph growth.
		nid := fmt.Sprintf("extra_%d", r.Int63())
		p.Graph.NewJob(nid, "t")
		p.Info[nid] = &Job{ID: nid, Transformation: "t", Site: j.Site}
		if err := p.Graph.AddDependency(id, nid); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPlanCloneDeeplyIndependent is the clone property test: for many
// random mutation sequences, mutating a clone never changes the original
// and mutating the original never changes the clone.
func TestPlanCloneDeeplyIndependent(t *testing.T) {
	cats := testCatalogs(t, "split", "run_cap3", "merge")
	r := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		site := []string{"sandhills", "osg"}[round%2]
		plan, err := New(fanWorkflow(t, 3+r.Intn(5)), cats, Options{Site: site})
		if err != nil {
			t.Fatal(err)
		}
		if round%3 == 0 {
			plan, err = Cluster(plan, ClusterOptions{MaxTasksPerJob: 2})
			if err != nil {
				t.Fatal(err)
			}
		}

		before := snapshot(t, plan)
		clone := plan.Clone()
		if !reflect.DeepEqual(before, snapshot(t, clone)) {
			t.Fatalf("round %d: clone does not reproduce the original", round)
		}
		for m := 0; m < 5; m++ {
			mutate(t, clone, r)
		}
		if !reflect.DeepEqual(before, snapshot(t, plan)) {
			t.Fatalf("round %d: mutating the clone changed the original", round)
		}

		// And the other direction: the clone must survive original edits.
		cloneBefore := snapshot(t, clone)
		for m := 0; m < 5; m++ {
			mutate(t, plan, r)
		}
		if !reflect.DeepEqual(cloneBefore, snapshot(t, clone)) {
			t.Fatalf("round %d: mutating the original changed the clone", round)
		}
	}
}
