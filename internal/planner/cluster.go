// Horizontal task clustering as a post-planning pass: merge small planned
// jobs into composite grid jobs so one dispatch latency and one software
// install are amortized over many payloads — Pegasus's answer (paper §III)
// to the opportunistic grid's dominant cost, per-job overhead.
//
// Unlike the abstract-level ClusterSize option (which groups tasks before
// site resolution), Cluster runs on an executable Plan, so it can respect
// per-job site bindings of multi-site plans: only jobs of the same
// transformation, bound to the same site, at the same DAG level are merged.
// Same-level grouping guarantees dependency compatibility — two jobs at one
// level are never connected by a path, so folding them into one node cannot
// invert or cycle the DAG.

package planner

import (
	"fmt"

	"pegflow/internal/dax"
)

// ClusterOptions configures the post-planning clustering pass.
type ClusterOptions struct {
	// MaxTasksPerJob caps the payload tasks folded into one composite job.
	// 0 leaves the count unbounded (TargetJobSeconds alone closes
	// composites); 1 disables clustering.
	MaxTasksPerJob int
	// TargetJobSeconds closes a composite once its summed runtime
	// estimate reaches this many reference-speed seconds. Packing is
	// runtime-aware: a task whose own estimate already exceeds the target
	// stays unclustered, so clustering soaks up the many small tasks
	// (where per-job overhead dominates) without serializing the large
	// ones that set the makespan floor. 0 disables the time criterion.
	TargetJobSeconds float64
	// Transformations restricts clustering to the listed transformations;
	// empty means all are eligible. Synthesized stage-in jobs are never
	// clustered.
	Transformations []string
}

// Enabled reports whether the options ask for any clustering.
func (o ClusterOptions) Enabled() bool {
	return o.MaxTasksPerJob > 1 || (o.MaxTasksPerJob == 0 && o.TargetJobSeconds > 0)
}

// Validate checks the options.
func (o ClusterOptions) Validate() error {
	if o.MaxTasksPerJob < 0 {
		return fmt.Errorf("planner: negative MaxTasksPerJob %d", o.MaxTasksPerJob)
	}
	if o.TargetJobSeconds < 0 {
		return fmt.Errorf("planner: negative TargetJobSeconds %v", o.TargetJobSeconds)
	}
	return nil
}

// clusterBucket accumulates the members of one composite under construction.
type clusterBucket struct {
	id    string
	site  string
	tr    string
	ids   []string
	exec  float64
	level int
}

// Cluster merges same-transformation, same-site, same-level jobs of the
// plan into composite jobs and returns the clustered plan (the input plan
// is not modified). Every original job appears in exactly one output job:
// either unchanged, or as a member of a composite whose ExecSeconds is the
// sum of its members'. Returns the plan unchanged when the options disable
// clustering.
func Cluster(p *Plan, opts ClusterOptions) (*Plan, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if !opts.Enabled() {
		return p, nil
	}
	eligible := func(j *Job) bool {
		if j.Transformation == StageInTransformation {
			return false
		}
		// Jobs that already fold several tasks (abstract-level clustering
		// or a previous Cluster pass) are left alone.
		if len(j.Tasks) > 0 || len(j.Members) > 0 {
			return false
		}
		if len(opts.Transformations) == 0 {
			return true
		}
		for _, tr := range opts.Transformations {
			if tr == j.Transformation {
				return true
			}
		}
		return false
	}

	levels, err := p.Graph.Levels()
	if err != nil {
		return nil, fmt.Errorf("planner: clustering: %w", err)
	}

	// group maps every original job ID to its output job ID (itself when
	// unclustered, the composite ID otherwise).
	group := make(map[string]string, p.Graph.Len())
	var buckets []*clusterBucket
	byID := make(map[string]*clusterBucket)

	for li, level := range levels {
		// Open at most one bucket per (site, transformation) key; close it
		// when full (member cap) or heavy enough (runtime target).
		open := make(map[string]*clusterBucket)
		seq := make(map[string]int)
		for _, id := range level {
			j := p.Info[id]
			if j == nil {
				return nil, fmt.Errorf("planner: clustering: job %q has no planning info", id)
			}
			if !eligible(j) {
				group[id] = id
				continue
			}
			if opts.TargetJobSeconds > 0 && j.ExecSeconds >= opts.TargetJobSeconds {
				group[id] = id
				continue
			}
			key := j.Site + "\x00" + j.Transformation
			b := open[key]
			if b == nil {
				b = &clusterBucket{
					id: fmt.Sprintf("cluster_%s_%s_l%d_%d",
						j.Transformation, j.Site, li, seq[key]),
					site: j.Site, tr: j.Transformation, level: li,
				}
				seq[key]++
				open[key] = b
				buckets = append(buckets, b)
				byID[b.id] = b
			}
			b.ids = append(b.ids, id)
			b.exec += j.ExecSeconds
			group[id] = b.id
			if (opts.MaxTasksPerJob > 0 && len(b.ids) >= opts.MaxTasksPerJob) ||
				(opts.TargetJobSeconds > 0 && b.exec >= opts.TargetJobSeconds) {
				delete(open, key)
			}
		}
	}

	// Unwrap singleton buckets: a composite of one task is just the task.
	kept := buckets[:0]
	for _, b := range buckets {
		if len(b.ids) == 1 {
			group[b.ids[0]] = b.ids[0]
			delete(byID, b.id)
			continue
		}
		kept = append(kept, b)
	}
	buckets = kept

	out := &Plan{
		Graph:     dax.New(p.Graph.Name + "-clustered"),
		Info:      make(map[string]*Job, p.Graph.Len()),
		Site:      p.Site,
		Sites:     append([]string(nil), p.Sites...),
		SiteEntry: p.SiteEntry,
	}

	emitted := make(map[string]bool)
	for _, gj := range p.Graph.Jobs() {
		gid := group[gj.ID]
		if emitted[gid] {
			continue
		}
		emitted[gid] = true
		if gid == gj.ID {
			cp := *gj
			icp := *p.Info[gj.ID]
			if err := out.Graph.AddJob(&cp); err != nil {
				return nil, err
			}
			out.Info[gj.ID] = &icp
			continue
		}
		b := byID[gid]
		if p.Graph.Job(b.id) != nil {
			return nil, fmt.Errorf("planner: clustering: composite ID %q collides with an existing job", b.id)
		}
		nj := &dax.Job{ID: b.id, Transformation: b.tr}
		cj := &Job{
			ID:             b.id,
			Transformation: b.tr,
			Site:           b.site,
			ExecSeconds:    b.exec,
		}
		for _, mid := range b.ids {
			m := p.Info[mid]
			nj.Uses = append(nj.Uses, p.Graph.Job(mid).Uses...)
			if m.Priority > cj.Priority {
				cj.Priority = m.Priority
			}
			// All members resolve the same transformation at the same
			// site, so they share one install decision — the point of the
			// pass: the stack is staged once per composite, not per task.
			cj.NeedsInstall = m.NeedsInstall
			cj.InstallBytes = m.InstallBytes
			cj.InputBytes += m.InputBytes
			cj.OutputBytes += m.OutputBytes
			cj.Tasks = append(cj.Tasks, mid)
			cj.Members = append(cj.Members, Member{TaskID: mid, ExecSeconds: m.ExecSeconds})
		}
		nj.Priority = cj.Priority
		if err := out.Graph.AddJob(nj); err != nil {
			return nil, err
		}
		out.Info[b.id] = cj
	}

	// Rewire dependencies through the grouping, skipping intra-group
	// edges. Same-level grouping makes intra-group edges impossible; an
	// occurrence means the level computation is broken, so fail loudly
	// rather than emit a plan that silently dropped an ordering constraint.
	for _, gj := range p.Graph.Jobs() {
		for _, parent := range p.Graph.Parents(gj.ID) {
			gp, gc := group[parent], group[gj.ID]
			if gp == gc {
				return nil, fmt.Errorf(
					"planner: clustering folded dependent jobs %q -> %q into composite %q",
					parent, gj.ID, gp)
			}
			if err := out.Graph.AddDependency(gp, gc); err != nil {
				return nil, err
			}
		}
	}

	if err := out.finalize(); err != nil {
		return nil, fmt.Errorf("planner: clustered workflow broken: %w", err)
	}
	return out, nil
}
