package platform

import (
	"fmt"
	"testing"

	"pegflow/internal/catalog"
	"pegflow/internal/dax"
	"pegflow/internal/engine"
	"pegflow/internal/planner"
)

// plainConfig is a deterministic platform: no jitter, no dispatch noise,
// no preemption — useful for exact-time assertions.
func plainConfig(slots int) Config {
	return Config{Name: "plain", Slots: slots, SpeedFactor: 1.0, Seed: 1}
}

func buildPlan(t *testing.T, site *catalog.Site, installed bool, runtimes []float64) *planner.Plan {
	t.Helper()
	w := dax.New("w")
	for i, rt := range runtimes {
		w.NewJob(fmt.Sprintf("J%03d", i), "work").
			SetProfile("pegasus", "runtime", fmt.Sprintf("%v", rt))
	}
	sc := catalog.NewSiteCatalog()
	if err := sc.Add(site); err != nil {
		t.Fatal(err)
	}
	tc := catalog.NewTransformationCatalog()
	if err := tc.Add(&catalog.Transformation{
		Name: "work", Site: site.Name, Installed: installed, InstallBytes: 50e6,
	}); err != nil {
		t.Fatal(err)
	}
	p, err := planner.New(w, planner.Catalogs{
		Sites: sc, Transformations: tc, Replicas: catalog.NewReplicaCatalog(),
	}, planner.Options{Site: site.Name})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func plainSite(name string, slots int) *catalog.Site {
	return &catalog.Site{Name: name, Slots: slots, SpeedFactor: 1, SharedSoftware: true}
}

func TestDeterministicMakespanSingleJob(t *testing.T) {
	p := buildPlan(t, plainSite("plain", 4), true, []float64{100})
	ex, err := NewExecutor(plainConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(p, ex, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("run failed")
	}
	if res.Makespan != 100 {
		t.Errorf("Makespan = %v, want exactly 100 (no noise configured)", res.Makespan)
	}
	rec := res.Log.Records()[0]
	if rec.Waiting() != 0 || rec.Setup() != 0 || rec.Exec() != 100 {
		t.Errorf("phases = %v/%v/%v, want 0/0/100", rec.Waiting(), rec.Setup(), rec.Exec())
	}
}

func TestSlotContentionSerializes(t *testing.T) {
	// 3 jobs of 10 s on 1 slot: makespan 30 s.
	p := buildPlan(t, plainSite("plain", 1), true, []float64{10, 10, 10})
	ex, err := NewExecutor(plainConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(p, ex, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 30 {
		t.Errorf("Makespan = %v, want 30", res.Makespan)
	}
	// The third job waited 20 s.
	var maxWait float64
	for _, r := range res.Log.Records() {
		if r.Waiting() > maxWait {
			maxWait = r.Waiting()
		}
	}
	if maxWait != 20 {
		t.Errorf("max waiting = %v, want 20", maxWait)
	}
	if ex.MaxBusySlots() != 1 {
		t.Errorf("MaxBusySlots = %d, want 1", ex.MaxBusySlots())
	}
}

func TestParallelSlotsShrinkMakespan(t *testing.T) {
	runtimes := make([]float64, 16)
	for i := range runtimes {
		runtimes[i] = 50
	}
	for _, tc := range []struct {
		slots int
		want  float64
	}{{1, 800}, {4, 200}, {16, 50}} {
		p := buildPlan(t, plainSite("plain", tc.slots), true, runtimes)
		ex, err := NewExecutor(plainConfig(tc.slots))
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.Run(p, ex, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan != tc.want {
			t.Errorf("slots=%d: Makespan = %v, want %v", tc.slots, res.Makespan, tc.want)
		}
	}
}

func TestSubmitIntervalDelaysLaterJobs(t *testing.T) {
	cfg := plainConfig(100)
	cfg.SubmitInterval = 5
	p := buildPlan(t, plainSite("plain", 100), true, []float64{10, 10, 10, 10})
	ex, err := NewExecutor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(p, ex, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Job k released at k*5, runs 10 s → last ends at 15+10 = 25.
	if res.Makespan != 25 {
		t.Errorf("Makespan = %v, want 25", res.Makespan)
	}
}

func TestInstallPhaseOnlyWhenNotPreinstalled(t *testing.T) {
	cfg := plainConfig(4)
	cfg.SetupMean = 200
	// CV 0 → setup is exactly the mean.
	gridSite := &catalog.Site{Name: "plain", Slots: 4, SpeedFactor: 1, SharedSoftware: false}

	p := buildPlan(t, gridSite, false, []float64{100})
	ex, err := NewExecutor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(p, ex, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Log.Records()[0]
	if rec.Setup() != 200 {
		t.Errorf("Setup = %v, want 200", rec.Setup())
	}
	if res.Makespan != 300 {
		t.Errorf("Makespan = %v, want 300", res.Makespan)
	}

	// Preinstalled at the same platform: no setup.
	p2 := buildPlan(t, gridSite, true, []float64{100})
	ex2, err := NewExecutor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := engine.Run(p2, ex2, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec2 := res2.Log.Records()[0]; rec2.Setup() != 0 {
		t.Errorf("preinstalled Setup = %v, want 0", rec2.Setup())
	}
}

func TestInstallBytesExtendSetup(t *testing.T) {
	cfg := plainConfig(1)
	cfg.SetupMean = 100
	cfg.SetupBytesPerSec = 10e6 // 50e6 bytes → +5 s
	gridSite := &catalog.Site{Name: "plain", Slots: 1, SpeedFactor: 1}
	p := buildPlan(t, gridSite, false, []float64{10})
	ex, err := NewExecutor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(p, ex, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec := res.Log.Records()[0]; rec.Setup() != 105 {
		t.Errorf("Setup = %v, want 105", rec.Setup())
	}
}

func TestSpeedFactorScalesExec(t *testing.T) {
	cfg := plainConfig(1)
	cfg.SpeedFactor = 0.5 // nodes twice as fast
	p := buildPlan(t, plainSite("plain", 1), true, []float64{100})
	ex, err := NewExecutor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(p, ex, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 50 {
		t.Errorf("Makespan = %v, want 50", res.Makespan)
	}
}

func TestEvictionTriggersRetryAndRecovers(t *testing.T) {
	cfg := plainConfig(2)
	cfg.EvictionRate = 1e-3 // ~63% of a 1000 s job evicted
	runtimes := make([]float64, 20)
	for i := range runtimes {
		runtimes[i] = 1000
	}
	p := buildPlan(t, plainSite("plain", 2), true, runtimes)
	ex, err := NewExecutor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(p, ex, engine.Options{RetryLimit: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("workflow failed despite retries: %+v", res.PermanentlyFailed)
	}
	if res.Evictions == 0 {
		t.Error("no evictions at hazard 1e-3 over 20 ks of work")
	}
	if res.Evictions != res.Retries {
		t.Errorf("Evictions=%d Retries=%d, want equal (all failures are evictions)",
			res.Evictions, res.Retries)
	}
	for _, r := range res.Log.Records() {
		if err := r.Validate(); err != nil {
			t.Errorf("invalid record: %v", err)
		}
	}
}

func TestEvictionExhaustsRetries(t *testing.T) {
	cfg := plainConfig(1)
	cfg.EvictionRate = 1.0 // evicted almost immediately, always
	p := buildPlan(t, plainSite("plain", 1), true, []float64{1000})
	ex, err := NewExecutor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(p, ex, engine.Options{RetryLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Success {
		t.Fatal("success despite certain eviction")
	}
	if len(res.PermanentlyFailed) != 1 {
		t.Errorf("PermanentlyFailed = %v", res.PermanentlyFailed)
	}
	if got := res.Log.Len(); got != 3 {
		t.Errorf("attempts = %d, want 3 (1 + 2 retries)", got)
	}
}

func TestReproducibility(t *testing.T) {
	cfg := OSG(12345)
	run := func() float64 {
		p := buildPlan(t, &catalog.Site{Name: "osg", Slots: cfg.Slots, SpeedFactor: 1},
			false, []float64{500, 700, 900, 1100, 300})
		ex, err := NewExecutor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.Run(p, ex, engine.Options{RetryLimit: 10})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed produced different makespans: %v vs %v", a, b)
	}
	cfg2 := OSG(54321)
	p := buildPlan(t, &catalog.Site{Name: "osg", Slots: cfg2.Slots, SpeedFactor: 1},
		false, []float64{500, 700, 900, 1100, 300})
	ex, err := NewExecutor(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(p, ex, engine.Options{RetryLimit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan == a {
		t.Error("different seeds produced identical makespans (suspicious)")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "", Slots: 1, SpeedFactor: 1},
		{Name: "x", Slots: 0, SpeedFactor: 1},
		{Name: "x", Slots: 1, SpeedFactor: 0},
		{Name: "x", Slots: 1, SpeedFactor: 1, SpeedJitter: 1.5},
		{Name: "x", Slots: 1, SpeedFactor: 1, DispatchMean: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
		if _, err := NewExecutor(c); err == nil {
			t.Errorf("case %d: NewExecutor accepted invalid config", i)
		}
	}
	for _, c := range []Config{Sandhills(1), OSG(1)} {
		if err := c.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", c.Name, err)
		}
	}
}

func TestSandhillsVsOSGPresetCharacter(t *testing.T) {
	// The presets must realize the paper's qualitative platform contrast
	// on an identical 64-task workload.
	runtimes := make([]float64, 64)
	for i := range runtimes {
		runtimes[i] = 2000
	}
	run := func(cfg Config, installed bool) *engine.Result {
		site := &catalog.Site{Name: cfg.Name, Slots: cfg.Slots, SpeedFactor: 1,
			SharedSoftware: installed}
		p := buildPlan(t, site, installed, runtimes)
		ex, err := NewExecutor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.Run(p, ex, engine.Options{RetryLimit: 20})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Success {
			t.Fatalf("%s run failed", cfg.Name)
		}
		return res
	}
	sand := run(Sandhills(7), true)
	osg := run(OSG(7), false)

	var sandWait, osgWait, sandSetup, osgSetup float64
	for _, r := range sand.Log.Successes() {
		sandWait += r.Waiting()
		sandSetup += r.Setup()
	}
	for _, r := range osg.Log.Successes() {
		osgWait += r.Waiting()
		osgSetup += r.Setup()
	}
	n := float64(len(sand.Log.Successes()))
	m := float64(len(osg.Log.Successes()))
	if sandSetup != 0 {
		t.Errorf("Sandhills has download/install time %v, want 0", sandSetup/n)
	}
	if osgSetup/m < 100 {
		t.Errorf("OSG mean setup %v, want ≥ 100 s", osgSetup/m)
	}
	if osgWait/m <= sandWait/n {
		t.Errorf("OSG mean waiting %v not above Sandhills %v", osgWait/m, sandWait/n)
	}
	if sand.Evictions != 0 {
		t.Errorf("Sandhills evictions = %d, want 0", sand.Evictions)
	}
	if osg.Makespan <= sand.Makespan {
		t.Errorf("OSG makespan %v not above Sandhills %v on identical workload",
			osg.Makespan, sand.Makespan)
	}
}
