package platform

import (
	"testing"

	"pegflow/internal/catalog"
	"pegflow/internal/engine"
)

func TestSlotRampDelaysExcessJobs(t *testing.T) {
	// 4 jobs of 10 s; pool starts with 1 slot and gains one every 100 s.
	cfg := plainConfig(4)
	cfg.InitialSlots = 1
	cfg.SlotRampInterval = 100
	p := buildPlan(t, plainSite("plain", 4), true, []float64{10, 10, 10, 10})
	ex, err := NewExecutor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(p, ex, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Job 1 at t=0-10; slot 2 at t=100 → job 2 ends 110; job 3 needs the
	// freed slot at t=10? FIFO: job 2 grabs slot 1 at t=10 and ends 20,
	// job 3 at 30, job 4 at 40. The ramp only helps if jobs outlast it.
	if res.Makespan != 40 {
		t.Errorf("Makespan = %v, want 40 (reuse of the single slot)", res.Makespan)
	}

	// Long jobs actually exercise the ramp: 4 × 1000 s.
	p2 := buildPlan(t, plainSite("plain", 4), true, []float64{1000, 1000, 1000, 1000})
	ex2, err := NewExecutor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := engine.Run(p2, ex2, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Slots appear at 0, 100, 200, 300 → last job ends at 300+1000.
	if res2.Makespan != 1300 {
		t.Errorf("Makespan = %v, want 1300 (ramped slots)", res2.Makespan)
	}
}

func TestSlotRampDisabledWhenInitialAtLeastSlots(t *testing.T) {
	cfg := plainConfig(2)
	cfg.InitialSlots = 2 // == Slots: no ramp
	cfg.SlotRampInterval = 1000
	p := buildPlan(t, plainSite("plain", 2), true, []float64{50, 50})
	ex, err := NewExecutor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(p, ex, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 50 {
		t.Errorf("Makespan = %v, want 50 (both slots available at t=0)", res.Makespan)
	}
}

func TestCloudPresetCharacter(t *testing.T) {
	cfg := Cloud(3)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.SetupMean != 0 {
		t.Error("cloud images should carry the software (no install phase)")
	}
	if cfg.EvictionRate != 0 {
		t.Error("cloud VMs are not preempted")
	}
	if cfg.InitialSlots <= 0 || cfg.SlotRampInterval <= 0 {
		t.Error("cloud should provision with a ramp")
	}
	// Run a workload and check no evictions / setups occur.
	site := &catalog.Site{Name: "cloud", Slots: cfg.Slots, SpeedFactor: 1, SharedSoftware: true}
	p := buildPlan(t, site, true, []float64{500, 500, 500, 500})
	ex, err := NewExecutor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(p, ex, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success || res.Evictions != 0 {
		t.Errorf("cloud run: success=%v evictions=%d", res.Success, res.Evictions)
	}
	for _, r := range res.Log.Records() {
		if r.Setup() != 0 {
			t.Errorf("cloud job %s has setup %v", r.JobID, r.Setup())
		}
	}
}

func TestRampConfigValidation(t *testing.T) {
	cfg := plainConfig(2)
	cfg.InitialSlots = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative initial slots accepted")
	}
	cfg = plainConfig(2)
	cfg.SlotRampInterval = -5
	if err := cfg.Validate(); err == nil {
		t.Error("negative ramp interval accepted")
	}
}
