// Package platform provides discrete-event models of the paper's two
// execution platforms — Sandhills (a campus HPC cluster) and the Open
// Science Grid — and an engine.Executor that runs planned workflows on
// them in virtual time.
//
// A platform is a slot pool plus four stochastic mechanisms, each of which
// the paper identifies as a cause of the observed Sandhills/OSG gap:
//
//   - per-job dispatch latency (submit-host + remote queueing): small and
//     steady on the campus cluster, heavy-tailed and uneven on the
//     opportunistic grid;
//   - a download/install setup phase for jobs whose software stack is not
//     preinstalled (planner.Job.NeedsInstall — the red rectangles of the
//     paper's Fig. 3);
//   - node speed heterogeneity: grid nodes vary, and some are faster than
//     campus nodes (the paper's "Kickstart Time" observation);
//   - preemption: opportunistic slots can be reclaimed by their owners,
//     ending the attempt with an eviction that DAGMan retries.
package platform
