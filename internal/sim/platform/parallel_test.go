package platform

import (
	"bytes"
	"reflect"
	"testing"

	"pegflow/internal/engine"
	"pegflow/internal/fault"
	"pegflow/internal/planner"
)

// stormyConfigs is a two-site pool with enough texture to exercise every
// boundary class: evictions and retries on the flaky site, a slot ramp
// (non-boundary capacity events) on both, and distinct dispatch streams.
func stormyConfigs() []Config {
	return []Config{
		{Name: "stable", Slots: 8, SubmitInterval: 0.5, DispatchMean: 5, DispatchCV: 0.4,
			SpeedFactor: 1, SpeedJitter: 0.1, InitialSlots: 2, SlotRampInterval: 40, Seed: 3},
		{Name: "flaky", Slots: 8, SubmitInterval: 0.5, DispatchMean: 20, DispatchCV: 0.8,
			SpeedFactor: 1, SpeedJitter: 0.2, SetupMean: 30, SetupCV: 0.5,
			EvictionRate: 1.0 / 150, Seed: 3},
	}
}

// runPool executes the two-site storm fixture on a serial or parallel
// pool, with retries, cross-site failover and delayed (backoff) retries —
// the full set of serialized boundary interactions.
func runPool(t *testing.T, parallel bool, faults []fault.Spec) *engine.Result {
	t.Helper()
	cats, plan := twoSiteWorld(t, 16)
	build := NewMultiExecutor
	if parallel {
		build = NewParallelMultiExecutor
	}
	pool, err := build(stormyConfigs())
	if err != nil {
		t.Fatal(err)
	}
	if faults != nil {
		script, err := fault.Compile(faults)
		if err != nil {
			t.Fatal(err)
		}
		if err := pool.InstallFaults(script); err != nil {
			t.Fatal(err)
		}
	}
	fo, err := planner.NewFailover(cats, plan.Sites)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(plan, pool, engine.Options{
		RetryLimit: 6,
		Retry:      fo.Resite,
		Backoff:    func(attempt int) float64 { return float64(attempt) * 7 },
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// logBytes renders the full attempt log, the strongest schedule witness:
// every submit, setup, exec and end timestamp of every attempt.
func logBytes(t *testing.T, res *engine.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Log.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelPoolByteIdenticalSchedule is the tentpole assertion: the
// per-site parallel pool must reproduce the serial pool's schedule bit
// for bit — every record timestamp, every counter — under an eviction
// storm with cross-site failover and backoff retries.
func TestParallelPoolByteIdenticalSchedule(t *testing.T) {
	serial := runPool(t, false, nil)
	par := runPool(t, true, nil)
	if !bytes.Equal(logBytes(t, serial), logBytes(t, par)) {
		t.Error("parallel pool produced a different attempt log than the serial pool")
	}
	if serial.Makespan != par.Makespan {
		t.Errorf("makespan diverged: serial %v, parallel %v", serial.Makespan, par.Makespan)
	}
	if serial.Retries != par.Retries || serial.Evictions != par.Evictions ||
		serial.Failovers != par.Failovers || serial.Backoffs != par.Backoffs {
		t.Errorf("counters diverged:\nserial   %+v\nparallel %+v", serial, par)
	}
	if !reflect.DeepEqual(serial.Completed, par.Completed) {
		t.Errorf("completion sets diverged: serial %v, parallel %v", serial.Completed, par.Completed)
	}
	if serial.Evictions == 0 || serial.Failovers == 0 || serial.Backoffs == 0 {
		t.Fatalf("fixture too tame to certify the parallel schedule: %+v", serial)
	}
}

// TestParallelPoolByteIdenticalUnderFaults adds scripted fault timelines
// — an outage (capacity boundary events), a blackout (dispatch holds) and
// a preemption storm — to the same identity assertion.
func TestParallelPoolByteIdenticalUnderFaults(t *testing.T) {
	faults := []fault.Spec{
		{Type: fault.TypeOutage, Site: "flaky", At: 120, Duration: 90},
		{Type: fault.TypeBlackout, Site: "stable", At: 30, Duration: 40},
		{Type: fault.TypeStorm, Site: "flaky", At: 300, Duration: 60,
			Multiplier: 40, KillFraction: 0.5},
	}
	serial := runPool(t, false, faults)
	par := runPool(t, true, faults)
	if !bytes.Equal(logBytes(t, serial), logBytes(t, par)) {
		t.Error("parallel pool diverged from serial under scripted faults")
	}
	if serial.Makespan != par.Makespan || serial.Evictions != par.Evictions {
		t.Errorf("fault run diverged:\nserial   %+v\nparallel %+v", serial, par)
	}
}

// TestParallelPoolDeterministic: repeated parallel runs are themselves
// byte-identical — window goroutines must not leak scheduling order into
// the result.
func TestParallelPoolDeterministic(t *testing.T) {
	a := logBytes(t, runPool(t, true, nil))
	b := logBytes(t, runPool(t, true, nil))
	if !bytes.Equal(a, b) {
		t.Error("parallel pool output differs between identical runs")
	}
}

// TestParallelPoolAggregateParity composes the two tentpole paths: an
// aggregated run on the parallel pool must fold exactly the records the
// serial exact run retains, with recycling routed back through per-site
// arenas that now live on per-site simulations.
func TestParallelPoolAggregateParity(t *testing.T) {
	_, plan := twoSiteWorld(t, 16)
	runAgg := func(parallel bool) *engine.Result {
		build := NewMultiExecutor
		if parallel {
			build = NewParallelMultiExecutor
		}
		pool, err := build(stormyConfigs())
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.Run(plan, pool, engine.Options{RetryLimit: 6, Aggregate: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, par := runAgg(false), runAgg(true)
	if !reflect.DeepEqual(serial.Log.Aggregates(), par.Log.Aggregates()) {
		t.Errorf("aggregates diverged:\nserial   %+v\nparallel %+v",
			serial.Log.Aggregates(), par.Log.Aggregates())
	}
	if serial.Makespan != par.Makespan || serial.Log.Len() != par.Log.Len() {
		t.Errorf("aggregate run shape diverged: serial %v/%d, parallel %v/%d",
			serial.Makespan, serial.Log.Len(), par.Makespan, par.Log.Len())
	}
}

// TestParallelPoolSharedClockReads: pool-level Now must report serialized
// time in both modes (the engine and ensemble drivers read it), even
// though parallel site clocks run ahead inside windows.
func TestParallelPoolSharedClockReads(t *testing.T) {
	serial := runPoolNow(t, false)
	par := runPoolNow(t, true)
	if serial != par {
		t.Errorf("pool Now diverged after identical runs: serial %v, parallel %v", serial, par)
	}
}

// TestParallelWindowsActuallyFire guards against the identity tests
// passing vacuously: if every event serialized through FireNext the
// schedule would trivially match, but the parallelism would be gone. Each
// Step fires exactly one serialized event, so any surplus in the members'
// processed counts is window work.
func TestParallelWindowsActuallyFire(t *testing.T) {
	_, plan := twoSiteWorld(t, 16)
	pool, err := NewParallelMultiExecutor(stormyConfigs())
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range plan.Jobs() {
		pool.Submit(j, 1)
	}
	steps := 0
	for pool.Step() {
		steps++
	}
	total := 0
	for _, sim := range pool.group.Members() {
		total += int(sim.Processed())
	}
	if total <= steps {
		t.Errorf("windows fired nothing: %d events over %d serialized steps", total, steps)
	}
}

func runPoolNow(t *testing.T, parallel bool) float64 {
	t.Helper()
	_, plan := twoSiteWorld(t, 8)
	build := NewMultiExecutor
	if parallel {
		build = NewParallelMultiExecutor
	}
	pool, err := build(stormyConfigs())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Run(plan, pool, engine.Options{RetryLimit: 6}); err != nil {
		t.Fatal(err)
	}
	return pool.Now()
}
