package platform

import (
	"testing"

	"pegflow/internal/catalog"
	"pegflow/internal/engine"
	"pegflow/internal/kickstart"
	"pegflow/internal/planner"
)

// clusteredPlan builds a plan of `n` equal tasks and folds them into
// composites of `size`.
func clusteredPlan(t *testing.T, site *catalog.Site, installed bool, n, size int, runtime float64) *planner.Plan {
	t.Helper()
	runtimes := make([]float64, n)
	for i := range runtimes {
		runtimes[i] = runtime
	}
	p := buildPlan(t, site, installed, runtimes)
	cp, err := planner.Cluster(p, planner.ClusterOptions{MaxTasksPerJob: size})
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// One composite of 3 tasks on a deterministic platform: the slot is held
// once, the install is paid once, and the three member records tile the
// execution window exactly.
func TestCompositeJobEmitsPerMemberRecords(t *testing.T) {
	site := &catalog.Site{Name: "plain", Slots: 4, SpeedFactor: 1}
	p := clusteredPlan(t, site, false, 3, 3, 100)
	if p.Graph.Len() != 1 {
		t.Fatalf("plan has %d jobs, want 1 composite", p.Graph.Len())
	}
	cfg := plainConfig(4)
	cfg.SetupMean = 40 // deterministic: CV 0 makes LogNormalMeanCV return the mean
	ex, err := NewExecutor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(p, ex, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("run failed")
	}
	recs := res.Log.Records()
	if len(recs) != 3 {
		t.Fatalf("log has %d records, want one per member (3)", len(recs))
	}
	composite := p.Jobs()[0]
	for i, r := range recs {
		if r.ClusterID != composite.ID {
			t.Errorf("record %d ClusterID = %q, want %q", i, r.ClusterID, composite.ID)
		}
		if r.JobID != composite.Members[i].TaskID {
			t.Errorf("record %d JobID = %q, want %q", i, r.JobID, composite.Members[i].TaskID)
		}
		if r.Status != kickstart.StatusSuccess {
			t.Errorf("record %d status %v", i, r.Status)
		}
		if r.Exec() != 100 {
			t.Errorf("record %d exec = %v, want 100", i, r.Exec())
		}
		if i == 0 {
			if r.Setup() != 40 {
				t.Errorf("first member setup = %v, want 40 (paid once)", r.Setup())
			}
		} else {
			if r.Setup() != 0 {
				t.Errorf("member %d setup = %v, want 0 (amortized)", i, r.Setup())
			}
			if r.ExecStart != recs[i-1].EndTime {
				t.Errorf("member %d starts at %v, sibling ended at %v", i, r.ExecStart, recs[i-1].EndTime)
			}
		}
	}
	// Makespan: dispatch(0) + setup(40) + 3*100.
	if res.Makespan != 340 {
		t.Errorf("makespan = %v, want 340", res.Makespan)
	}
	if got := recs[2].EndTime; got != res.Makespan {
		t.Errorf("last member ends at %v, event at %v", got, res.Makespan)
	}
}

// Clustering pays one install per composite instead of one per task, so on
// an install-dominated platform the makespan and the cumulative setup drop.
func TestCompositeAmortizesSetupOnOneSlot(t *testing.T) {
	site := &catalog.Site{Name: "plain", Slots: 1, SpeedFactor: 1}
	run := func(size int) (makespan, setupTotal float64) {
		p := clusteredPlan(t, site, false, 6, size, 10)
		cfg := plainConfig(1)
		cfg.SetupMean = 50
		ex, err := NewExecutor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.Run(p, ex, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Success {
			t.Fatal("run failed")
		}
		for _, r := range res.Log.Records() {
			setupTotal += r.Setup()
		}
		return res.Makespan, setupTotal
	}
	plainMakespan, plainSetup := run(1) // 6 jobs: 6*(50+10) = 360
	clMakespan, clSetup := run(6)       // 1 composite: 50 + 6*10 = 110
	if plainMakespan != 360 || clMakespan != 110 {
		t.Errorf("makespans = %v/%v, want 360/110", plainMakespan, clMakespan)
	}
	if plainSetup != 300 || clSetup != 50 {
		t.Errorf("cumulative setup = %v/%v, want 300/50", plainSetup, clSetup)
	}
}

// An evicted composite produces a single composite-level failure record and
// the whole bundle retries; once it lands cleanly every member record
// appears exactly once.
func TestCompositeEvictionRetriesWholeBundle(t *testing.T) {
	site := &catalog.Site{Name: "plain", Slots: 2, SpeedFactor: 1}
	p := clusteredPlan(t, site, true, 4, 2, 200)
	cfg := plainConfig(2)
	cfg.EvictionRate = 1.0 / 3000
	cfg.Seed = 11
	ex, err := NewExecutor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(p, ex, engine.Options{RetryLimit: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("run failed: %d unfinished", len(res.Unfinished))
	}
	if res.Evictions == 0 {
		t.Skip("seed produced no evictions; adjust rate/seed")
	}
	memberSuccesses := map[string]int{}
	for _, r := range res.Log.Records() {
		if r.ClusterID == "" {
			t.Errorf("record %s has no ClusterID", r.JobID)
		}
		switch r.Status {
		case kickstart.StatusSuccess:
			memberSuccesses[r.JobID]++
		case kickstart.StatusEvicted:
			if r.JobID != r.ClusterID {
				t.Errorf("evicted record %s is not composite-level", r.JobID)
			}
			if r.ExecStart > r.EndTime {
				t.Errorf("evicted record %s: exec start %v past end %v", r.JobID, r.ExecStart, r.EndTime)
			}
		}
	}
	if len(memberSuccesses) != 4 {
		t.Errorf("%d distinct member tasks succeeded, want 4", len(memberSuccesses))
	}
	for id, n := range memberSuccesses {
		if n != 1 {
			t.Errorf("member %s succeeded %d times", id, n)
		}
	}
}
