package platform

import (
	"testing"

	"pegflow/internal/engine"
)

// runAggregatedFlat executes an n-job flat plan on the stormy two-site
// pool in aggregation mode and returns the pool's record-arena high-water
// mark: the number of kickstart records ever allocated fresh, summed over
// sites. With aggregation folding and recycling every record, that mark
// tracks the in-flight population, not the attempt count.
func runAggregatedFlat(t *testing.T, n int) (highWater, attempts int) {
	t.Helper()
	_, plan := twoSiteWorld(t, n)
	pool, err := NewMultiExecutor(stormyConfigs())
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(plan, pool, engine.Options{RetryLimit: 6, Aggregate: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range pool.SiteNames() {
		highWater += pool.Site(name).ArenaRecords()
	}
	return highWater, res.Log.Len()
}

// TestAggregatedArenaRetentionIsFlat is the bounded-retention assertion
// at the platform layer: growing the job count 10× must not grow the
// record-arena high-water mark beyond measurement noise (2×), because
// aggregated runs recycle every record back to its arena at fold time.
// Exact-mode runs retain every record, so the arena mark there is the
// attempt count — asserted as the contrast case.
func TestAggregatedArenaRetentionIsFlat(t *testing.T) {
	smallHW, smallAtt := runAggregatedFlat(t, 200)
	bigHW, bigAtt := runAggregatedFlat(t, 2000)
	if bigAtt < 10*smallAtt/2 {
		t.Fatalf("fixture broken: %d attempts at n=2000 vs %d at n=200", bigAtt, smallAtt)
	}
	if bigHW > 2*smallHW {
		t.Errorf("arena high-water grew with n: %d records at n=2000 vs %d at n=200 (attempts %d vs %d)",
			bigHW, smallHW, bigAtt, smallAtt)
	}
	if bigHW >= bigAtt/10 {
		t.Errorf("arena high-water %d is not small against %d attempts; records are not being recycled",
			bigHW, bigAtt)
	}

	// Contrast: an exact run must retain every record, so its arena mark
	// equals its attempt count — proving the measurement would catch a
	// retention regression.
	_, plan := twoSiteWorld(t, 2000)
	pool, err := NewMultiExecutor(stormyConfigs())
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(plan, pool, engine.Options{RetryLimit: 6})
	if err != nil {
		t.Fatal(err)
	}
	exactHW := 0
	for _, name := range pool.SiteNames() {
		exactHW += pool.Site(name).ArenaRecords()
	}
	if exactHW != res.Log.Len() {
		t.Errorf("exact run arena mark %d != %d attempts", exactHW, res.Log.Len())
	}
}
