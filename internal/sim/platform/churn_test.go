package platform

import (
	"testing"

	"pegflow/internal/catalog"
	"pegflow/internal/engine"
	"pegflow/internal/fault"
	"pegflow/internal/kickstart"
)

// installChurn compiles a fault list and arms a fresh single-site
// executor with it.
func installChurn(t *testing.T, cfg Config, specs []fault.Spec) *Executor {
	t.Helper()
	ex, err := NewExecutor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	script, err := fault.Compile(specs)
	if err != nil {
		t.Fatal(err)
	}
	ex.InstallFaults(script.Site(cfg.Name))
	return ex
}

func intp(v int) *int { return &v }

// TestChurnEdgeCases pins the awkward corners of mid-run site churn: a
// site dying while a job is still in setup, capacity shrinking below the
// occupied slot count, and an outage that is still open when the run
// ends.
func TestChurnEdgeCases(t *testing.T) {
	t.Run("site dies during setup", func(t *testing.T) {
		// Setup takes 100 s; the site dies at t=50, mid-setup. The attempt
		// must finalize as evicted with ExecStart clamped to the eviction
		// time (the payload never started).
		cfg := plainConfig(2)
		cfg.SetupMean = 100
		ex := installChurn(t, cfg, []fault.Spec{
			{Type: fault.TypeOutage, Site: "plain", At: 50, Duration: 100},
		})
		p := buildPlan(t, &catalog.Site{Name: "plain", Slots: 2, SpeedFactor: 1},
			false, []float64{1000})
		res, err := engine.Run(p, ex, engine.Options{RetryLimit: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Success {
			t.Fatalf("workflow failed: %+v", res.PermanentlyFailed)
		}
		if res.Evictions != 1 {
			t.Fatalf("Evictions = %d, want 1", res.Evictions)
		}
		first := res.Log.Records()[0]
		if first.Status != kickstart.StatusEvicted {
			t.Fatalf("first attempt status = %v, want evicted", first.Status)
		}
		if first.EndTime != 50 || first.ExecStart != 50 {
			t.Errorf("evicted-in-setup record: ExecStart=%v EndTime=%v, want both 50",
				first.ExecStart, first.EndTime)
		}
		if err := first.Validate(); err != nil {
			t.Errorf("invalid eviction record: %v", err)
		}
		// Retry waits out the outage: slot back at t=150, setup 100,
		// payload 1000 → done at 1250.
		if res.Makespan != 1250 {
			t.Errorf("Makespan = %v, want 1250 (outage + setup + payload)", res.Makespan)
		}
		if ex.Outages() != 1 || ex.DowntimeSeconds() != 100 {
			t.Errorf("outages=%d downtime=%v, want 1 and 100",
				ex.Outages(), ex.DowntimeSeconds())
		}
	})

	t.Run("capacity shrinks below occupied slots", func(t *testing.T) {
		// Four 1000 s jobs occupy all four slots when capacity steps down
		// to one at t=100. Held slots stay held — the running quartet
		// finishes — but the queue drains one at a time afterwards.
		ex := installChurn(t, plainConfig(4), []fault.Spec{
			{Type: fault.TypeCapacity, Site: "plain", At: 100, Slots: intp(1)},
		})
		runtimes := []float64{1000, 1000, 1000, 1000, 1000, 1000}
		p := buildPlan(t, plainSite("plain", 4), true, runtimes)
		res, err := engine.Run(p, ex, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Success {
			t.Fatalf("workflow failed: %+v", res.PermanentlyFailed)
		}
		if got := ex.MaxBusySlots(); got != 4 {
			t.Errorf("MaxBusySlots = %d, want 4 (held units remain held)", got)
		}
		// First four: 0–1000. Remaining two serialize: 1000–2000, 2000–3000.
		if res.Makespan != 3000 {
			t.Errorf("Makespan = %v, want 3000 (post-shrink serialization)", res.Makespan)
		}
		if ex.Outages() != 0 {
			t.Errorf("Outages = %d, want 0 (shrink is not an outage)", ex.Outages())
		}
	})

	t.Run("outage spans end of run", func(t *testing.T) {
		// A drain-profile outage starts at t=50 and nominally lasts far
		// beyond the workload. The running job finishes (drain does not
		// preempt) and the downtime accounting must include the still-open
		// interval at the end of the run.
		ex := installChurn(t, plainConfig(1), []fault.Spec{
			{Type: fault.TypeOutage, Site: "plain", At: 50, Duration: 1e6,
				Profile: fault.ProfileDrain},
		})
		p := buildPlan(t, plainSite("plain", 1), true, []float64{100})
		res, err := engine.Run(p, ex, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Success || res.Evictions != 0 {
			t.Fatalf("success=%v evictions=%d, want drained run with no evictions",
				res.Success, res.Evictions)
		}
		if res.Makespan != 100 {
			t.Errorf("Makespan = %v, want 100", res.Makespan)
		}
		if ex.Outages() != 1 {
			t.Errorf("Outages = %d, want 1", ex.Outages())
		}
		if got := ex.DowntimeSeconds(); got != 50 {
			t.Errorf("DowntimeSeconds = %v, want 50 (open outage counted to now)", got)
		}
	})
}

func TestOutagePreemptsAndRecovers(t *testing.T) {
	// Two running jobs are preempted when the site dies at t=200; both
	// retries queue until recovery at t=300 and then run to completion.
	ex := installChurn(t, plainConfig(2), []fault.Spec{
		{Type: fault.TypeOutage, Site: "plain", At: 200, Duration: 100},
	})
	p := buildPlan(t, plainSite("plain", 2), true, []float64{1000, 1000})
	res, err := engine.Run(p, ex, engine.Options{RetryLimit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("workflow failed: %+v", res.PermanentlyFailed)
	}
	if res.Evictions != 2 {
		t.Errorf("Evictions = %d, want 2 (both slots preempted)", res.Evictions)
	}
	if res.Makespan != 1300 {
		t.Errorf("Makespan = %v, want 1300 (recover at 300 + 1000 payload)", res.Makespan)
	}
	for _, r := range res.Log.Records() {
		if err := r.Validate(); err != nil {
			t.Errorf("invalid record: %v", err)
		}
	}
}

func TestBlackoutHoldsDispatch(t *testing.T) {
	// Dispatch lands at t=0 inside a [0, 75) blackout, so the slot request
	// is held to the window's end: a 100 s job finishes at 175.
	ex := installChurn(t, plainConfig(1), []fault.Spec{
		{Type: fault.TypeBlackout, Site: "plain", At: 0, Duration: 75},
	})
	p := buildPlan(t, plainSite("plain", 1), true, []float64{100})
	res, err := engine.Run(p, ex, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success || res.Makespan != 175 {
		t.Fatalf("success=%v Makespan=%v, want success at 175", res.Success, res.Makespan)
	}
}

func TestStormKillFractionPreemptsDeterministically(t *testing.T) {
	// A kill-everything storm front at t=50 evicts both running jobs;
	// retries immediately reoccupy the slots (no capacity change) and the
	// run completes at 1050. Two identical runs must agree exactly.
	run := func() (*engine.Result, *Executor) {
		ex := installChurn(t, plainConfig(2), []fault.Spec{
			{Type: fault.TypeStorm, Site: "plain", At: 50, Duration: 1,
				KillFraction: 1},
		})
		p := buildPlan(t, plainSite("plain", 2), true, []float64{1000, 1000})
		res, err := engine.Run(p, ex, engine.Options{RetryLimit: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res, ex
	}
	res, _ := run()
	if !res.Success {
		t.Fatalf("workflow failed: %+v", res.PermanentlyFailed)
	}
	if res.Evictions != 2 {
		t.Errorf("Evictions = %d, want 2", res.Evictions)
	}
	if res.Makespan != 1050 {
		t.Errorf("Makespan = %v, want 1050", res.Makespan)
	}
	res2, _ := run()
	if res2.Makespan != res.Makespan || res2.Evictions != res.Evictions {
		t.Errorf("storm run not reproducible: %v/%d vs %v/%d",
			res.Makespan, res.Evictions, res2.Makespan, res2.Evictions)
	}
}

func TestStormHazardRaisesEvictions(t *testing.T) {
	// The base platform has no eviction hazard at all; an added-rate storm
	// over the whole run evicts aggressively while it lasts, and the same
	// seed reproduces the exact eviction count.
	run := func() *engine.Result {
		cfg := plainConfig(4)
		ex := installChurn(t, cfg, []fault.Spec{
			{Type: fault.TypeStorm, Site: "plain", At: 0, Duration: 5000,
				Rate: 2e-3},
		})
		runtimes := make([]float64, 12)
		for i := range runtimes {
			runtimes[i] = 800
		}
		p := buildPlan(t, plainSite("plain", 4), true, runtimes)
		res, err := engine.Run(p, ex, engine.Options{RetryLimit: 50})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if !res.Success {
		t.Fatalf("workflow failed: %+v", res.PermanentlyFailed)
	}
	if res.Evictions == 0 {
		t.Fatal("no evictions under a 2e-3 added-hazard storm")
	}
	if res2 := run(); res2.Evictions != res.Evictions || res2.Makespan != res.Makespan {
		t.Errorf("storm run not reproducible: %d/%v vs %d/%v",
			res.Evictions, res.Makespan, res2.Evictions, res2.Makespan)
	}
}

func TestMultiInstallFaultsRejectsUnknownSite(t *testing.T) {
	m, err := NewMultiExecutor([]Config{plainConfig(2)})
	if err != nil {
		t.Fatal(err)
	}
	script, err := fault.Compile([]fault.Spec{
		{Type: fault.TypeOutage, Site: "nowhere", At: 0, Duration: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InstallFaults(script); err == nil {
		t.Fatal("InstallFaults accepted a site not in the pool")
	}
	if err := m.InstallFaults(nil); err != nil {
		t.Fatalf("nil script should be a no-op, got %v", err)
	}
}
