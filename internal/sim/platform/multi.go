package platform

import (
	"fmt"
	"sort"
	"sync"

	"pegflow/internal/engine"
	"pegflow/internal/fault"
	"pegflow/internal/fifo"
	"pegflow/internal/kickstart"
	"pegflow/internal/planner"
	"pegflow/internal/sim/des"
)

// MultiExecutor is a pool of simulated platforms sharing one virtual
// clock. It implements engine.Executor for multi-site plans: each
// submitted job is routed to the platform named by its Site, and events
// from every site interleave in global virtual-time order — the paper's
// scenario of one WMS feeding a campus cluster and an opportunistic grid
// at the same time.
//
// An ensemble driver can also use a MultiExecutor as a shared platform
// pool for many concurrent workflows via SubmitTagged, which lets it
// attribute each terminal event to the submitting workflow.
type MultiExecutor struct {
	sim     *des.Simulation
	sites   map[string]*Executor
	order   []string
	pending fifo.Queue[engine.Event]

	// group couples the pool clock with one simulation per site when the
	// pool runs in per-site parallel mode (NewParallelMultiExecutor);
	// nil for the classic shared-clock pool.
	group *des.Group
	// members holds the site executors in order, and ready is the reused
	// scratch list of sites with window work, for the parallel step.
	members []*Executor
	ready   []*Executor
}

// NewMultiExecutor builds a shared-clock pool from the given platform
// configurations. Names must be distinct.
func NewMultiExecutor(cfgs []Config) (*MultiExecutor, error) {
	return newMultiExecutor(cfgs, false)
}

// NewParallelMultiExecutor builds a pool whose sites advance their event
// sub-queues independently — concurrently, when more than one site has
// work — between resource-boundary synchronization points, instead of
// interleaving every event on one shared clock. The schedule it produces
// is byte-identical to NewMultiExecutor's: boundary events (completions,
// evictions, fault steps, delayed re-submissions) fire one at a time in
// global (time, sequence) order, and everything a site does between them
// is invisible outside that site. Only cross-site events at the exact
// same float64 virtual time can tie-break differently (site order rather
// than creation order).
//
// The pool's own clock tracks the serialized schedule; site clocks may
// run ahead of it inside a window, so per-site wall-clock accessors
// (utilization integrals, down-time) read at the site's own frontier.
func NewParallelMultiExecutor(cfgs []Config) (*MultiExecutor, error) {
	return newMultiExecutor(cfgs, true)
}

func newMultiExecutor(cfgs []Config, parallel bool) (*MultiExecutor, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("platform: multi-executor with no platforms")
	}
	m := &MultiExecutor{
		sim:   des.New(),
		sites: make(map[string]*Executor, len(cfgs)),
	}
	if parallel {
		// One simulation per site plus the pool clock, coupled into a
		// shared sequence space. The group must exist before any events
		// are scheduled (site construction schedules slot ramps).
		sims := []*des.Simulation{m.sim}
		for range cfgs {
			sims = append(sims, des.New())
		}
		m.group = des.NewGroup(sims...)
		for i, cfg := range cfgs {
			if err := m.addSite(sims[i+1], cfg); err != nil {
				return nil, err
			}
		}
		return m, nil
	}
	for _, cfg := range cfgs {
		if err := m.addSite(m.sim, cfg); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (m *MultiExecutor) addSite(sim *des.Simulation, cfg Config) error {
	if _, dup := m.sites[cfg.Name]; dup {
		return fmt.Errorf("platform: duplicate platform %q in pool", cfg.Name)
	}
	e, err := newExecutorOn(sim, cfg)
	if err != nil {
		return err
	}
	if m.group != nil {
		e.submitClock = m.sim
	}
	e.emit = func(ev engine.Event) { m.pending.Push(ev) }
	m.sites[cfg.Name] = e
	m.order = append(m.order, cfg.Name)
	m.members = append(m.members, e)
	return nil
}

// Now returns the shared virtual time in seconds.
func (m *MultiExecutor) Now() float64 { return m.sim.Now().Seconds() }

// SiteNames returns the pool's platform names in sorted order.
func (m *MultiExecutor) SiteNames() []string {
	out := append([]string(nil), m.order...)
	sort.Strings(out)
	return out
}

// Site returns the pool member with the given name, or nil.
func (m *MultiExecutor) Site(name string) *Executor { return m.sites[name] }

// Submit routes the job attempt to the platform named by its Site. It
// panics on an unknown site: plans must be validated against the pool
// before execution (see CheckPlan).
func (m *MultiExecutor) Submit(job *planner.Job, attempt int) {
	m.site(job).Submit(job, attempt)
}

// SubmitTagged routes the job attempt like Submit but delivers its
// terminal event through emit instead of the pool's shared queue.
func (m *MultiExecutor) SubmitTagged(job *planner.Job, attempt int, emit func(engine.Event)) {
	m.site(job).SubmitTagged(job, attempt, emit)
}

// SubmitAfter routes the job attempt to its site after a virtual delay —
// the engine's backoff hook.
func (m *MultiExecutor) SubmitAfter(job *planner.Job, attempt int, delay float64) {
	m.site(job).SubmitAfter(job, attempt, delay)
}

// After schedules fn on the pool's shared clock. Ensemble drivers use it
// to delay re-submissions (backoff) in virtual time; fn runs inside the
// pool's event loop like any other simulation callback. Boundary: the
// callback typically re-submits, mutating submit-host state.
func (m *MultiExecutor) After(delay float64, fn func()) {
	m.sim.AfterBoundary(delay, fn)
}

// InstallFaults arms each faulted site with its compiled timeline. Must
// be called before any submissions; a nil script is a no-op. Faulting a
// site the pool does not have is an error — fault scripts are validated
// against the same site list as plans.
func (m *MultiExecutor) InstallFaults(s *fault.Script) error {
	if s == nil {
		return nil
	}
	for _, name := range s.Sites() {
		e := m.sites[name]
		if e == nil {
			return fmt.Errorf("platform: fault script targets site %q, not in pool %v",
				name, m.order)
		}
		e.InstallFaults(s.Site(name))
	}
	return nil
}

func (m *MultiExecutor) site(job *planner.Job) *Executor {
	e := m.sites[job.Site]
	if e == nil {
		panic(fmt.Sprintf("platform: job %q targets site %q, not in pool %v",
			job.ID, job.Site, m.order))
	}
	return e
}

// Next advances shared virtual time until a job event is available.
func (m *MultiExecutor) Next() engine.Event {
	for m.pending.Len() == 0 {
		if !m.Step() {
			panic("platform: multi-executor deadlock: no pending events but jobs outstanding")
		}
	}
	return m.pending.Pop()
}

// Step executes the next simulation event, returning false when the
// virtual-event queue is empty. Ensemble drivers step the pool directly
// instead of calling Next.
//
// In a parallel pool one Step is one phase round: every site first drains
// its private non-boundary events up to its submit-host release horizon —
// concurrently when several sites have work — then the single globally
// earliest remaining event fires serialized.
func (m *MultiExecutor) Step() bool {
	if m.group == nil {
		return m.sim.Step()
	}
	m.group.BeginWindows()
	m.advanceWindows()
	m.group.Reconcile()
	return m.group.FireNext()
}

// advanceWindows drains every site's window. A site's horizon is its own
// submit-host release time (nextFree): every future submission into the
// site lands strictly after it, and events this side of it touch only
// the site's private partition, so sites are mutually invisible and the
// drains may run concurrently.
func (m *MultiExecutor) advanceWindows() {
	m.ready = m.ready[:0]
	for _, e := range m.members {
		if e.sim.CanStepWindow(des.Time(e.nextFree)) {
			m.ready = append(m.ready, e)
		}
	}
	if len(m.ready) == 1 {
		m.ready[0].advanceWindow()
		return
	}
	var wg sync.WaitGroup
	for _, e := range m.ready {
		wg.Add(1)
		go func(e *Executor) {
			defer wg.Done()
			e.advanceWindow()
		}(e)
	}
	wg.Wait()
}

// advanceWindow fires the site's pending non-boundary events up to its
// submit-host release horizon.
func (e *Executor) advanceWindow() {
	h := des.Time(e.nextFree)
	for e.sim.StepWindow(h) {
	}
}

// PendingEvents reports the number of delivered-but-unconsumed job events.
func (m *MultiExecutor) PendingEvents() int { return m.pending.Len() }

// Recycle routes a spent record back to the arena of the site that
// allocated it. Records carry their allocating site in Site (platform
// executors never re-site a record), so the pool can route without
// extra bookkeeping.
func (m *MultiExecutor) Recycle(r *kickstart.Record) {
	if e := m.sites[r.Site]; e != nil {
		e.Recycle(r)
	}
}

// CheckPlan verifies that every job of the plan targets a pool member.
func (m *MultiExecutor) CheckPlan(plan *planner.Plan) error {
	for _, j := range plan.Jobs() {
		if _, ok := m.sites[j.Site]; !ok {
			return fmt.Errorf("platform: plan job %q targets site %q, not in pool %v",
				j.ID, j.Site, m.order)
		}
	}
	return nil
}

var _ engine.Executor = (*MultiExecutor)(nil)
