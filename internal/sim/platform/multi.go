package platform

import (
	"fmt"
	"sort"

	"pegflow/internal/engine"
	"pegflow/internal/fault"
	"pegflow/internal/fifo"
	"pegflow/internal/planner"
	"pegflow/internal/sim/des"
)

// MultiExecutor is a pool of simulated platforms sharing one virtual
// clock. It implements engine.Executor for multi-site plans: each
// submitted job is routed to the platform named by its Site, and events
// from every site interleave in global virtual-time order — the paper's
// scenario of one WMS feeding a campus cluster and an opportunistic grid
// at the same time.
//
// An ensemble driver can also use a MultiExecutor as a shared platform
// pool for many concurrent workflows via SubmitTagged, which lets it
// attribute each terminal event to the submitting workflow.
type MultiExecutor struct {
	sim     *des.Simulation
	sites   map[string]*Executor
	order   []string
	pending fifo.Queue[engine.Event]
}

// NewMultiExecutor builds a shared-clock pool from the given platform
// configurations. Names must be distinct.
func NewMultiExecutor(cfgs []Config) (*MultiExecutor, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("platform: multi-executor with no platforms")
	}
	m := &MultiExecutor{
		sim:   des.New(),
		sites: make(map[string]*Executor, len(cfgs)),
	}
	for _, cfg := range cfgs {
		if _, dup := m.sites[cfg.Name]; dup {
			return nil, fmt.Errorf("platform: duplicate platform %q in pool", cfg.Name)
		}
		e, err := newExecutorOn(m.sim, cfg)
		if err != nil {
			return nil, err
		}
		e.emit = func(ev engine.Event) { m.pending.Push(ev) }
		m.sites[cfg.Name] = e
		m.order = append(m.order, cfg.Name)
	}
	return m, nil
}

// Now returns the shared virtual time in seconds.
func (m *MultiExecutor) Now() float64 { return m.sim.Now().Seconds() }

// SiteNames returns the pool's platform names in sorted order.
func (m *MultiExecutor) SiteNames() []string {
	out := append([]string(nil), m.order...)
	sort.Strings(out)
	return out
}

// Site returns the pool member with the given name, or nil.
func (m *MultiExecutor) Site(name string) *Executor { return m.sites[name] }

// Submit routes the job attempt to the platform named by its Site. It
// panics on an unknown site: plans must be validated against the pool
// before execution (see CheckPlan).
func (m *MultiExecutor) Submit(job *planner.Job, attempt int) {
	m.site(job).Submit(job, attempt)
}

// SubmitTagged routes the job attempt like Submit but delivers its
// terminal event through emit instead of the pool's shared queue.
func (m *MultiExecutor) SubmitTagged(job *planner.Job, attempt int, emit func(engine.Event)) {
	m.site(job).SubmitTagged(job, attempt, emit)
}

// SubmitAfter routes the job attempt to its site after a virtual delay —
// the engine's backoff hook.
func (m *MultiExecutor) SubmitAfter(job *planner.Job, attempt int, delay float64) {
	m.site(job).SubmitAfter(job, attempt, delay)
}

// After schedules fn on the pool's shared clock. Ensemble drivers use it
// to delay re-submissions (backoff) in virtual time; fn runs inside the
// pool's event loop like any other simulation callback.
func (m *MultiExecutor) After(delay float64, fn func()) {
	m.sim.After(delay, fn)
}

// InstallFaults arms each faulted site with its compiled timeline. Must
// be called before any submissions; a nil script is a no-op. Faulting a
// site the pool does not have is an error — fault scripts are validated
// against the same site list as plans.
func (m *MultiExecutor) InstallFaults(s *fault.Script) error {
	if s == nil {
		return nil
	}
	for _, name := range s.Sites() {
		e := m.sites[name]
		if e == nil {
			return fmt.Errorf("platform: fault script targets site %q, not in pool %v",
				name, m.order)
		}
		e.InstallFaults(s.Site(name))
	}
	return nil
}

func (m *MultiExecutor) site(job *planner.Job) *Executor {
	e := m.sites[job.Site]
	if e == nil {
		panic(fmt.Sprintf("platform: job %q targets site %q, not in pool %v",
			job.ID, job.Site, m.order))
	}
	return e
}

// Next advances shared virtual time until a job event is available.
func (m *MultiExecutor) Next() engine.Event {
	for m.pending.Len() == 0 {
		if !m.sim.Step() {
			panic("platform: multi-executor deadlock: no pending events but jobs outstanding")
		}
	}
	return m.pending.Pop()
}

// Step executes the next simulation event, returning false when the
// virtual-event queue is empty. Ensemble drivers step the pool directly
// instead of calling Next.
func (m *MultiExecutor) Step() bool { return m.sim.Step() }

// PendingEvents reports the number of delivered-but-unconsumed job events.
func (m *MultiExecutor) PendingEvents() int { return m.pending.Len() }

// CheckPlan verifies that every job of the plan targets a pool member.
func (m *MultiExecutor) CheckPlan(plan *planner.Plan) error {
	for _, j := range plan.Jobs() {
		if _, ok := m.sites[j.Site]; !ok {
			return fmt.Errorf("platform: plan job %q targets site %q, not in pool %v",
				j.ID, j.Site, m.order)
		}
	}
	return nil
}

var _ engine.Executor = (*MultiExecutor)(nil)
