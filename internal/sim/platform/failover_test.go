package platform

import (
	"fmt"
	"testing"

	"pegflow/internal/catalog"
	"pegflow/internal/dax"
	"pegflow/internal/engine"
	"pegflow/internal/kickstart"
	"pegflow/internal/planner"
)

// twoSiteWorld builds catalogs for a preinstalled "stable" site and an
// install-required "flaky" site, plus a flat workflow of n independent
// tasks planned entirely onto the flaky site.
func twoSiteWorld(t *testing.T, n int) (planner.Catalogs, *planner.Plan) {
	t.Helper()
	sc := catalog.NewSiteCatalog()
	for _, s := range []*catalog.Site{
		{Name: "stable", Slots: 8, SpeedFactor: 1, SharedSoftware: true},
		{Name: "flaky", Slots: 8, SpeedFactor: 1},
	} {
		if err := sc.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	tc := catalog.NewTransformationCatalog()
	if err := tc.Add(&catalog.Transformation{Name: "work", Site: "stable", Installed: true}); err != nil {
		t.Fatal(err)
	}
	if err := tc.Add(&catalog.Transformation{Name: "work", Site: "flaky", InstallBytes: 10e6}); err != nil {
		t.Fatal(err)
	}
	cats := planner.Catalogs{Sites: sc, Transformations: tc, Replicas: catalog.NewReplicaCatalog()}

	w := dax.New("flat")
	for i := 0; i < n; i++ {
		w.NewJob(fmt.Sprintf("J%03d", i), "work").SetProfile("pegasus", "runtime", "500")
	}
	// A policy that pins everything to the flaky site, so failover is the
	// only road to the stable one.
	plan, err := planner.NewMulti(w, cats, planner.MultiOptions{
		Sites:  []string{"stable", "flaky"},
		Policy: pinPolicy{site: "flaky"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cats, plan
}

type pinPolicy struct{ site string }

func (p pinPolicy) Name() string { return "pin" }
func (p pinPolicy) Choose(job planner.PolicyJob, cands []planner.Candidate) int {
	for i, c := range cands {
		if c.Site.Name == p.site {
			return i
		}
	}
	return 0
}

// A job evicted on one pool site is re-resolved and resubmitted to the
// sibling: the rescue road out of a preemption storm. The stable site has
// everything preinstalled, so the re-sited attempts must lose their
// install step.
func TestCrossSiteFailoverEscapesEvictionStorm(t *testing.T) {
	cats, plan := twoSiteWorld(t, 12)
	pool, err := NewMultiExecutor([]Config{
		{Name: "stable", Slots: 8, SpeedFactor: 1, Seed: 3},
		{Name: "flaky", Slots: 8, SpeedFactor: 1, Seed: 3,
			// Mean time to eviction 100 s against 500 s jobs: almost no
			// first attempt survives.
			EvictionRate: 1.0 / 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	fo, err := planner.NewFailover(cats, plan.Sites)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(plan, pool, engine.Options{RetryLimit: 6, Retry: fo.Resite})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("run failed: %d unfinished, %d permanently failed",
			len(res.Unfinished), len(res.PermanentlyFailed))
	}
	if res.Evictions == 0 {
		t.Fatal("eviction storm produced no evictions")
	}
	if res.Failovers == 0 {
		t.Fatal("no failovers despite evictions and a sibling site")
	}
	if res.Failovers > res.Retries {
		t.Errorf("Failovers %d exceeds Retries %d", res.Failovers, res.Retries)
	}
	successBySite := map[string]int{}
	for _, r := range res.Log.Records() {
		if r.Status != kickstart.StatusSuccess {
			continue
		}
		successBySite[r.Site]++
		if r.Site == "stable" && r.Setup() != 0 {
			t.Errorf("job %s paid an install on the preinstalled stable site", r.JobID)
		}
	}
	if successBySite["stable"] == 0 {
		t.Errorf("no successes on the failover target: %v", successBySite)
	}
}

// Without a retry policy the same storm keeps retrying in place and burns
// the whole retry budget on the flaky site — the bound failover beats.
func TestSameSiteRetryStaysInStorm(t *testing.T) {
	_, plan := twoSiteWorld(t, 12)
	pool, err := NewMultiExecutor([]Config{
		{Name: "stable", Slots: 8, SpeedFactor: 1, Seed: 3},
		{Name: "flaky", Slots: 8, SpeedFactor: 1, Seed: 3, EvictionRate: 1.0 / 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(plan, pool, engine.Options{RetryLimit: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Log.Records() {
		if r.Site != "flaky" {
			t.Fatalf("same-site retry ran an attempt at %s", r.Site)
		}
	}
	if res.Failovers != 0 {
		t.Errorf("Failovers = %d without a policy", res.Failovers)
	}
}
