package platform

import (
	"fmt"
	"sort"

	"pegflow/internal/engine"
	"pegflow/internal/fault"
	"pegflow/internal/fifo"
	"pegflow/internal/kickstart"
	"pegflow/internal/planner"
	"pegflow/internal/sim/des"
	"pegflow/internal/sim/rng"
)

// Config describes one simulated platform.
type Config struct {
	// Name labels the platform (used as the site name in records).
	Name string
	// Slots is the number of concurrently usable job slots.
	Slots int
	// SubmitInterval serializes job submission on the submit host:
	// the k-th submission is released k*SubmitInterval seconds after
	// it is handed to the executor (DAGMan/Condor submit throttle).
	SubmitInterval float64
	// DispatchMean and DispatchCV parameterize the lognormal per-job
	// dispatch latency (queueing before a slot request is even made).
	DispatchMean, DispatchCV float64
	// SpeedFactor scales execution time (exec = ExecSeconds * factor /
	// nodeSpeed); 1.0 = reference speed, lower = faster.
	SpeedFactor float64
	// SpeedJitter is the relative node heterogeneity: each attempt draws
	// a node factor uniform in [SpeedFactor*(1-J), SpeedFactor*(1+J)].
	SpeedJitter float64
	// SetupMean and SetupCV parameterize the lognormal download+install
	// duration for jobs with NeedsInstall.
	SetupMean, SetupCV float64
	// SetupBytesPerSec adds InstallBytes/SetupBytesPerSec to the setup
	// phase when positive (bigger software stacks take longer).
	SetupBytesPerSec float64
	// EvictionRate is the preemption hazard (events per second of
	// occupancy). 0 disables preemption.
	EvictionRate float64
	// InitialSlots and SlotRampInterval model opportunistic capacity:
	// the pool starts at InitialSlots and gains one slot every
	// SlotRampInterval seconds until it reaches Slots (glideins joining
	// as other VOs release resources). InitialSlots 0 or ≥ Slots, or a
	// zero interval, disables the ramp (dedicated allocation).
	InitialSlots     int
	SlotRampInterval float64
	// Seed makes runs reproducible.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("platform: config with empty name")
	}
	if c.Slots <= 0 {
		return fmt.Errorf("platform: %s: non-positive slots %d", c.Name, c.Slots)
	}
	if c.SpeedFactor <= 0 {
		return fmt.Errorf("platform: %s: non-positive speed factor %v", c.Name, c.SpeedFactor)
	}
	if c.SpeedJitter < 0 || c.SpeedJitter >= 1 {
		return fmt.Errorf("platform: %s: speed jitter %v outside [0,1)", c.Name, c.SpeedJitter)
	}
	if c.DispatchMean < 0 || c.SetupMean < 0 || c.EvictionRate < 0 || c.SubmitInterval < 0 {
		return fmt.Errorf("platform: %s: negative rate or mean", c.Name)
	}
	if c.InitialSlots < 0 || c.SlotRampInterval < 0 {
		return fmt.Errorf("platform: %s: negative slot ramp parameters", c.Name)
	}
	return nil
}

// Sandhills returns the campus-cluster model: a fixed allocation of
// homogeneous slots with preinstalled software, small steady dispatch
// latency and no preemption — "after these resources are allocated, they
// are utilized until the tasks terminate" (paper §VI.A).
func Sandhills(seed uint64) Config {
	return Config{
		Name:           "sandhills",
		Slots:          400,
		SubmitInterval: 1.0,
		DispatchMean:   30,
		DispatchCV:     0.3,
		SpeedFactor:    1.0,
		SpeedJitter:    0.05,
		Seed:           seed,
	}
}

// OSG returns the opportunistic-grid model: more slots than the campus
// allocation, heterogeneous nodes (some faster than Sandhills), uneven
// heavy-tailed dispatch latency, a download/install phase on every job
// (nothing preinstalled), and a preemption hazard (paper §VI.A-B).
func OSG(seed uint64) Config {
	return Config{
		Name:             "osg",
		Slots:            600,
		SubmitInterval:   1.2,
		DispatchMean:     700,
		DispatchCV:       1.1,
		SpeedFactor:      0.88,
		SpeedJitter:      0.35,
		SetupMean:        480,
		SetupCV:          0.5,
		SetupBytesPerSec: 25e6,
		EvictionRate:     5e-6,
		InitialSlots:     30,
		SlotRampInterval: 25,
		Seed:             seed,
	}
}

// Cloud returns an academic/commercial IaaS model — the paper's future
// work (§VII: "Using academic and commercial clouds as an execution
// platform for the blast2cap3 workflow ... will be challenging, but
// important and useful further step"). Virtual machines boot from an
// image that already contains the software stack (no install step), are
// never preempted, and provision on demand with a short ramp; node speed
// is slightly below the campus cluster's bare metal (virtualization tax).
func Cloud(seed uint64) Config {
	return Config{
		Name:             "cloud",
		Slots:            512,
		SubmitInterval:   1.0,
		DispatchMean:     95, // VM provisioning / scheduler latency
		DispatchCV:       0.5,
		SpeedFactor:      1.08,
		SpeedJitter:      0.08,
		InitialSlots:     24,
		SlotRampInterval: 8,
		Seed:             seed,
	}
}

// Executor runs planned jobs on a simulated platform in virtual time. It
// implements engine.Executor; the engine's control flow is identical to
// the real-execution path.
type Executor struct {
	cfg   Config
	sim   *des.Simulation
	slots *des.Resource
	// submitClock is the simulation whose clock timestamps submissions.
	// Normally sim itself; a parallel pool points it at the pool's clock,
	// which tracks the serialized schedule exactly even while this site's
	// own clock runs ahead inside a window (see NewParallelMultiExecutor).
	submitClock *des.Simulation

	dispatch *rng.Stream
	speed    *rng.Stream
	setup    *rng.Stream
	evict    *rng.Stream
	frng     *rng.Stream // fault decisions (storm kill draws); idle without faults

	// faults is the site's compiled fault timeline; nil for a healthy run,
	// in which case none of the fault paths below are ever entered and the
	// executor's event stream is bit-identical to earlier versions.
	faults *fault.Timeline
	// capBase is the ramp-managed capacity; capLimit the fault-imposed
	// one. The slot pool always runs at min(capBase, capLimit).
	capBase  int
	capLimit int
	// active tracks occupied-slot attempts so correlated preemptions can
	// evict them; maintained only when a fault timeline is installed.
	tracking   bool
	active     map[int64]*runningAttempt
	attemptSeq int64
	// Outage/downtime accounting: an outage is any interval with the
	// fault-imposed limit at zero.
	outages     int
	downSince   float64
	downSeconds float64
	// bpScratch is reused across hazard-window integrations.
	bpScratch []float64

	// emit delivers terminal events; by default it appends to pending,
	// but a MultiExecutor routes it into a shared queue, and per-job
	// overrides (SubmitTagged) let an ensemble driver demultiplex.
	emit      func(engine.Event)
	pending   fifo.Queue[engine.Event]
	submitted int
	nextFree  float64 // submit-host release time for the next submission
	nodeSeq   int
	// nodeNames is the precomputed Slots-sized node-name table, so the
	// per-attempt node label is an index instead of an fmt.Sprintf.
	nodeNames []string
	// recs allocates kickstart records in chunks; records live exactly as
	// long as the run's log, so chunked arena allocation amortizes one
	// heap allocation over recChunk attempts.
	recs recArena
}

// recChunk is the kickstart-record arena chunk size.
const recChunk = 256

// recArena hands out *kickstart.Record values from append-only chunks.
// Handed-out pointers stay valid because a chunk is never regrown — when
// one fills, the arena starts a fresh chunk. Records returned through
// recycle are reissued before any new chunk space is used, so an
// aggregating run (which folds and recycles every record) keeps the
// arena at O(in-flight attempts) regardless of attempt count.
//
// A by-value copy aliases the open chunk, so both copies would hand out
// the same record slots; slabcopy flags it.
//
//pegflow:slab
type recArena struct {
	chunk []kickstart.Record
	free  []*kickstart.Record
	// allocated counts fresh slots ever created (recycled reissues are
	// free): the arena's high-water retention, which an aggregating run
	// must keep at O(in-flight) regardless of attempt count.
	allocated int
}

func (a *recArena) alloc() *kickstart.Record {
	if n := len(a.free); n > 0 {
		r := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		return r
	}
	if len(a.chunk) == cap(a.chunk) {
		a.chunk = make([]kickstart.Record, 0, recChunk)
	}
	a.chunk = append(a.chunk, kickstart.Record{})
	a.allocated++
	return &a.chunk[len(a.chunk)-1]
}

// ArenaRecords reports the number of kickstart-record slots the executor
// has ever materialized — the record-retention high-water mark. An
// aggregating run recycles records through the engine, so this stays at
// the in-flight level however many attempts the run makes.
func (e *Executor) ArenaRecords() int { return e.recs.allocated }

func (a *recArena) recycle(r *kickstart.Record) {
	a.free = append(a.free, r)
}

// NewExecutor builds an executor for the platform configuration with its
// own virtual clock.
func NewExecutor(cfg Config) (*Executor, error) {
	e, err := newExecutorOn(des.New(), cfg)
	if err != nil {
		return nil, err
	}
	e.emit = func(ev engine.Event) { e.pending.Push(ev) }
	return e, nil
}

// newExecutorOn builds an executor sharing the given simulation — the
// building block of multi-site pools, where every site advances one common
// virtual clock. The caller must set emit before submitting.
func newExecutorOn(sim *des.Simulation, cfg Config) (*Executor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	base := rng.New(cfg.Seed).Derive("platform/" + cfg.Name)
	startSlots := cfg.Slots
	ramp := cfg.InitialSlots > 0 && cfg.InitialSlots < cfg.Slots && cfg.SlotRampInterval > 0
	if ramp {
		startSlots = cfg.InitialSlots
	}
	e := &Executor{
		cfg:         cfg,
		sim:         sim,
		submitClock: sim,
		slots:       des.NewResource(sim, startSlots),
		dispatch:    base.Derive("dispatch"),
		speed:       base.Derive("speed"),
		setup:       base.Derive("setup"),
		evict:       base.Derive("evict"),
		frng:        base.Derive("fault"),
		capBase:     startSlots,
		capLimit:    fault.NoLimit,
	}
	e.nodeNames = make([]string, cfg.Slots)
	for i := range e.nodeNames {
		e.nodeNames[i] = fmt.Sprintf("%s-node-%04d", cfg.Name, i)
	}
	if ramp {
		for k := 1; k <= cfg.Slots-cfg.InitialSlots; k++ {
			target := cfg.InitialSlots + k
			sim.At(des.Time(float64(k)*cfg.SlotRampInterval), func() {
				e.setBaseCapacity(target)
			})
		}
	}
	return e, nil
}

// InstallFaults arms the executor with a compiled fault timeline,
// scheduling its capacity steps and correlated preemptions as simulation
// events. Must be called before any submissions, at virtual time zero.
func (e *Executor) InstallFaults(tl *fault.Timeline) {
	if tl == nil {
		return
	}
	e.faults = tl
	e.tracking = true
	if e.active == nil {
		e.active = make(map[int64]*runningAttempt)
	}
	for _, st := range tl.Steps {
		limit := st.Limit
		// Boundary: capacity steps evict running attempts and emit their
		// terminal events, reaching outside the site's window partition.
		e.sim.AtBoundary(des.Time(st.At), func() { e.setCapLimit(limit) })
	}
	for _, p := range tl.Preempts {
		frac := p.Fraction
		e.sim.AtBoundary(des.Time(p.At), func() { e.preemptOccupied(frac) })
	}
}

// runningAttempt is the occupied-slot state a correlated preemption needs
// to evict an attempt: the pending terminal event to cancel and enough of
// the record context to finalize it the way a hazard eviction would.
type runningAttempt struct {
	job        *planner.Job
	attempt    int
	rec        *kickstart.Record
	emit       func(engine.Event)
	setupStart float64
	setupDur   float64
	done       des.EventID
}

// setBaseCapacity updates the ramp-managed capacity.
func (e *Executor) setBaseCapacity(c int) {
	e.capBase = c
	e.applyCapacity()
}

// setCapLimit updates the fault-imposed limit, tracking outage intervals
// (limit at zero) for the downtime accounting.
func (e *Executor) setCapLimit(limit int) {
	wasDown := e.capLimit == 0
	e.capLimit = limit
	if limit == 0 && !wasDown {
		e.outages++
		e.downSince = e.Now()
	} else if limit != 0 && wasDown {
		e.downSeconds += e.Now() - e.downSince
	}
	e.applyCapacity()
}

func (e *Executor) applyCapacity() {
	eff := e.capBase
	if e.capLimit < eff {
		eff = e.capLimit
	}
	e.slots.SetCapacity(eff)
}

// preemptOccupied evicts each occupied-slot attempt independently with
// the given probability (1 = all). Attempts are visited in admission
// order so the draw sequence — and therefore the output — is fully
// deterministic.
func (e *Executor) preemptOccupied(fraction float64) {
	if len(e.active) == 0 {
		return
	}
	keys := make([]int64, 0, len(e.active))
	for k := range e.active {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if fraction < 1 && e.frng.Float64() >= fraction {
			continue
		}
		a := e.active[k]
		delete(e.active, k)
		e.sim.Cancel(a.done)
		e.finishEvicted(a.rec, a.job, a.setupStart, a.setupDur,
			"slot lost to site fault", a.emit)
	}
}

// finishEvicted finalizes an evicted attempt's record, frees its slot and
// emits the eviction event — shared by hazard evictions and correlated
// fault preemptions.
func (e *Executor) finishEvicted(rec *kickstart.Record, job *planner.Job,
	setupStart, setupDur float64, msg string, emit func(engine.Event)) {
	end := e.Now()
	rec.ExecStart = setupStart + setupDur
	if rec.ExecStart > end {
		rec.ExecStart = end // evicted during setup
	}
	rec.EndTime = end
	rec.Status = kickstart.StatusEvicted
	rec.ExitMessage = msg
	e.slots.Release(1)
	emit(engine.Event{
		JobID: job.ID, Type: engine.EventEvicted, Time: end, Record: rec,
	})
}

// Outages reports how many fault-imposed full outages have begun.
func (e *Executor) Outages() int { return e.outages }

// DowntimeSeconds reports the virtual seconds spent in outage so far,
// including the open interval of an outage still in progress (or one
// spanning the end of the run).
func (e *Executor) DowntimeSeconds() float64 {
	d := e.downSeconds
	if e.capLimit == 0 {
		d += e.Now() - e.downSince
	}
	return d
}

// Now returns the current virtual time in seconds.
func (e *Executor) Now() float64 { return e.sim.Now().Seconds() }

// MaxBusySlots reports the high-water mark of concurrently busy slots.
func (e *Executor) MaxBusySlots() int { return e.slots.MaxInUse }

// BusySlotSeconds reports the slot·seconds of occupancy so far.
func (e *Executor) BusySlotSeconds() float64 { return e.slots.BusySlotSeconds() }

// CapacitySlotSeconds reports the slot·seconds of capacity so far
// (accounting for opportunistic slot ramps).
func (e *Executor) CapacitySlotSeconds() float64 { return e.slots.CapacitySlotSeconds() }

// Config returns the platform configuration.
func (e *Executor) Config() Config { return e.cfg }

// Submit schedules the job attempt onto the platform.
func (e *Executor) Submit(job *planner.Job, attempt int) {
	e.submitWith(job, attempt, e.emit)
}

// SubmitTagged schedules the job attempt, delivering its terminal event
// through emit instead of the executor's own queue. Ensemble drivers use
// this to attribute events to the submitting workflow.
func (e *Executor) SubmitTagged(job *planner.Job, attempt int, emit func(engine.Event)) {
	e.submitWith(job, attempt, emit)
}

func (e *Executor) submitWith(job *planner.Job, attempt int, emit func(engine.Event)) {
	// Submissions are timestamped off the submit clock: the site's own
	// clock on a standalone executor, the pool's serialized clock in a
	// parallel pool (where this site's clock may sit ahead, inside a
	// window — submissions always originate from the serialized phase).
	now := e.submitClock.Now().Seconds()
	// Serialize submissions through the submit host.
	release := now
	if e.nextFree > release {
		release = e.nextFree
	}
	e.nextFree = release + e.cfg.SubmitInterval
	e.submitted++

	submitTime := now
	delay := (release - now) + e.dispatch.LogNormalMeanCV(e.cfg.DispatchMean, e.cfg.DispatchCV)
	if e.faults != nil {
		// A dispatch landing inside a blackout window is held until the
		// window ends — the scheduler simply stops matching jobs.
		land := e.faults.DelayThroughBlackouts(now + delay)
		delay = land - now
	}
	// The arrival lands strictly after the submit host's release point, so
	// it is always in this site's future even mid-window (delay > release
	// - now, and windows never advance the site clock to nextFree).
	e.sim.At(des.Time(now+delay), func() {
		e.slots.Acquire(1, func() {
			e.runOnNode(job, attempt, submitTime, emit)
		})
	})
}

// runOnNode executes the setup and payload phases once a slot is granted,
// racing them against the platform's preemption hazard.
func (e *Executor) runOnNode(job *planner.Job, attempt int, submitTime float64, emit func(engine.Event)) {
	setupStart := e.Now()
	e.nodeSeq++
	node := e.nodeNames[e.nodeSeq%e.cfg.Slots]

	nodeSpeed := e.cfg.SpeedFactor
	if e.cfg.SpeedJitter > 0 {
		nodeSpeed *= e.speed.Uniform(1-e.cfg.SpeedJitter, 1+e.cfg.SpeedJitter)
	}

	var setupDur float64
	if job.NeedsInstall {
		// The install is paid once per grid job: a composite (clustered)
		// job stages its software stack a single time and all member
		// payloads share it — the amortization clustering buys.
		setupDur = e.setup.LogNormalMeanCV(e.cfg.SetupMean, e.cfg.SetupCV)
		if e.cfg.SetupBytesPerSec > 0 && job.InstallBytes > 0 {
			setupDur += float64(job.InstallBytes) / e.cfg.SetupBytesPerSec
		}
	}
	execDur := job.ExecSeconds * nodeSpeed
	if len(job.Members) > 0 {
		// Members run sequentially on the slot; summing their scaled
		// durations keeps the per-member records exactly consistent with
		// the composite's end time.
		execDur = 0
		for _, m := range job.Members {
			execDur += m.ExecSeconds * nodeSpeed
		}
	}
	total := setupDur + execDur

	rec := e.recs.alloc()
	*rec = kickstart.Record{
		JobID:          job.ID,
		Transformation: job.Transformation,
		Site:           e.cfg.Name,
		Node:           node,
		Attempt:        attempt,
		SubmitTime:     submitTime,
		SetupStart:     setupStart,
	}
	if len(job.Members) > 0 {
		rec.ClusterID = job.ID
	}

	hazards := e.faults != nil && len(e.faults.Hazards) > 0
	evictAt := -1.0
	if e.cfg.EvictionRate > 0 && !hazards {
		tte := e.evict.Exponential(1 / e.cfg.EvictionRate)
		if tte < total {
			evictAt = tte
		}
	} else if hazards {
		if tte, ok := e.stormEvictionTime(setupStart, total); ok {
			evictAt = tte
		}
	}

	var key int64
	if e.tracking {
		e.attemptSeq++
		key = e.attemptSeq
	}

	if evictAt >= 0 {
		// Boundary: finishing an attempt emits an engine event.
		id := e.sim.AfterBoundary(evictAt, func() {
			if key != 0 {
				delete(e.active, key)
			}
			e.finishEvicted(rec, job, setupStart, setupDur,
				"slot reclaimed by resource owner", emit)
		})
		if key != 0 {
			e.active[key] = &runningAttempt{
				job: job, attempt: attempt, rec: rec, emit: emit,
				setupStart: setupStart, setupDur: setupDur, done: id,
			}
		}
		return
	}

	// Boundary: completion emits the attempt's terminal engine event.
	id := e.sim.AfterBoundary(total, func() {
		if key != 0 {
			delete(e.active, key)
		}
		end := e.Now()
		e.slots.Release(1)
		if len(job.Members) > 0 {
			emit(engine.Event{
				JobID: job.ID, Type: engine.EventFinished, Time: end,
				Members: e.memberRecords(job, attempt, node,
					submitTime, setupStart, setupStart+setupDur, nodeSpeed, end),
			})
			return
		}
		rec.ExecStart = setupStart + setupDur
		rec.EndTime = end
		rec.Status = kickstart.StatusSuccess
		emit(engine.Event{
			JobID: job.ID, Type: engine.EventFinished, Time: end, Record: rec,
		})
	})
	if key != 0 {
		e.active[key] = &runningAttempt{
			job: job, attempt: attempt, rec: rec, emit: emit,
			setupStart: setupStart, setupDur: setupDur, done: id,
		}
	}
}

// stormEvictionTime samples the attempt's time-to-eviction under the
// piecewise-constant hazard produced by storm windows: a single
// unit-exponential draw is inverted through the cumulative hazard over
// [start, start+total). Exactly one stream draw per attempt keeps the
// sequence aligned no matter how windows land, so output stays
// deterministic across worker counts.
func (e *Executor) stormEvictionTime(start, total float64) (float64, bool) {
	target := e.evict.Exponential(1)
	end := start + total
	e.bpScratch = e.faults.HazardBreakpoints(e.bpScratch[:0], start, end)
	bps := e.bpScratch
	t0 := start
	for i := 0; i <= len(bps); i++ {
		t1 := end
		if i < len(bps) {
			t1 = bps[i]
		}
		if h := e.faults.HazardAt(e.cfg.EvictionRate, t0); h > 0 {
			seg := (t1 - t0) * h
			if target <= seg {
				return (t0 - start) + target/h, true
			}
			target -= seg
		}
		t0 = t1
	}
	return 0, false
}

// SubmitAfter schedules the job attempt after a virtual delay — the
// engine's backoff hook. A non-positive delay submits immediately.
func (e *Executor) SubmitAfter(job *planner.Job, attempt int, delay float64) {
	if delay <= 0 {
		e.Submit(job, attempt)
		return
	}
	// Scheduled on the submit clock as a boundary event: the retry calls
	// submitWith, which mutates submit-host state — in a parallel pool it
	// must fire in the serialized phase, at serialized time.
	e.submitClock.AfterBoundary(delay, func() { e.Submit(job, attempt) })
}

// memberRecords builds the per-task kickstart records of one successful
// composite-job attempt. Member 0 carries the shared setup phase; each
// later member's waiting phase extends until the slot turned to it (it
// queued behind its siblings on the node) and its own setup is zero — the
// install was already paid. The last member is pinned to the composite's
// end time so the records and the engine event agree to the bit.
func (e *Executor) memberRecords(job *planner.Job, attempt int, node string,
	submitTime, setupStart, execStart, nodeSpeed, end float64) []*kickstart.Record {
	out := make([]*kickstart.Record, 0, len(job.Members))
	t := execStart
	for i, m := range job.Members {
		start := t
		t += m.ExecSeconds * nodeSpeed
		rec := e.recs.alloc()
		*rec = kickstart.Record{
			JobID:          m.TaskID,
			Transformation: job.Transformation,
			Site:           e.cfg.Name,
			Node:           node,
			Attempt:        attempt,
			ClusterID:      job.ID,
			SubmitTime:     submitTime,
			SetupStart:     setupStart,
			ExecStart:      start,
			EndTime:        t,
			Status:         kickstart.StatusSuccess,
		}
		if i > 0 {
			rec.SetupStart = start
		}
		out = append(out, rec)
	}
	last := out[len(out)-1]
	last.EndTime = end
	if last.ExecStart > end {
		last.ExecStart = end
	}
	if last.SetupStart > last.ExecStart {
		last.SetupStart = last.ExecStart
	}
	return out
}

// Next advances virtual time until a job event is available.
func (e *Executor) Next() engine.Event {
	for e.pending.Len() == 0 {
		if !e.sim.Step() {
			panic("platform: executor deadlock: no pending events but jobs outstanding")
		}
	}
	return e.pending.Pop()
}

// Recycle returns a spent record's arena slot for reuse — the engine's
// aggregation mode calls this after folding each record. The record was
// allocated by this executor (records never change Site) and must not
// be touched by the caller afterwards.
func (e *Executor) Recycle(r *kickstart.Record) { e.recs.recycle(r) }

var _ engine.Executor = (*Executor)(nil)
var _ engine.RecordRecycler = (*Executor)(nil)
