package des

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(5, func() { order = append(order, 2) })
	s.At(1, func() { order = append(order, 1) })
	s.At(9, func() { order = append(order, 3) })
	s.Run()
	want := []int{1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("executed %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("order[%d] = %d, want %d", i, order[i], want[i])
		}
	}
	if s.Now() != 9 {
		t.Errorf("clock = %v, want 9s", s.Now())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(3, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events executed out of scheduling order: %v", order)
		}
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	s := New()
	var at Time
	s.After(2.5, func() {
		s.After(1.5, func() { at = s.Now() })
	})
	s.Run()
	if at != 4 {
		t.Errorf("nested After fired at %v, want 4s", at)
	}
}

func TestAfterNegativeDelayClamped(t *testing.T) {
	s := New()
	fired := false
	s.After(1, func() {
		s.After(-5, func() { fired = true })
	})
	s.Run()
	if !fired {
		t.Fatal("event with negative delay never fired")
	}
	if s.Now() != 1 {
		t.Errorf("clock = %v, want 1s", s.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5, func() {})
	})
	s.Run()
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.At(3, func() { fired = true })
	if !s.Live(e) {
		t.Error("Live() = false before Cancel")
	}
	s.Cancel(e)
	s.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if s.Live(e) {
		t.Error("Live() = true after Cancel")
	}
	// Double cancel and canceling a zero handle are no-ops.
	s.Cancel(e)
	s.Cancel(EventID{})
}

func TestCancelFromEarlierEvent(t *testing.T) {
	s := New()
	fired := false
	e := s.At(5, func() { fired = true })
	s.At(1, func() { s.Cancel(e) })
	s.Run()
	if fired {
		t.Error("event canceled at t=1 still fired at t=5")
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Errorf("executed %d events after Stop, want 3", count)
	}
	if s.Pending() != 7 {
		t.Errorf("pending = %d, want 7", s.Pending())
	}
	// Run resumes.
	s.Run()
	if count != 10 {
		t.Errorf("after resume executed %d, want 10", count)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 7} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("RunUntil(3) fired %d events, want 3", len(fired))
	}
	if s.Now() != 3 {
		t.Errorf("clock = %v, want 3s", s.Now())
	}
	s.RunUntil(5)
	if s.Now() != 5 {
		t.Errorf("clock after empty RunUntil = %v, want 5s", s.Now())
	}
	s.Run()
	if len(fired) != 4 || s.Now() != 7 {
		t.Errorf("final: fired=%d now=%v", len(fired), s.Now())
	}
}

// TestRunUntilCanceledHead is the regression test for the deadline bug:
// cancellation is lazy, so a canceled entry can sit at the heap head, and a
// RunUntil guard that reads queue[0].at directly would see the dead entry's
// early time and let Step fire the next live event even when it lies past
// the deadline. The fixed guard peeks the next *live* event.
func TestRunUntilCanceledHead(t *testing.T) {
	s := New()
	fired := false
	e := s.At(5, func() { t.Error("canceled event fired") })
	s.At(20, func() { fired = true })
	s.Cancel(e)
	s.RunUntil(10)
	if fired {
		t.Fatal("RunUntil(10) executed an event scheduled at t=20 past the deadline")
	}
	if s.Now() != 10 {
		t.Errorf("clock = %v, want 10s", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d, want 1 (the live t=20 event)", s.Pending())
	}
	s.Run()
	if !fired || s.Now() != 20 {
		t.Errorf("after Run: fired=%v now=%v, want true/20s", fired, s.Now())
	}
}

// A run of canceled entries at the head must all be skipped by the guard.
func TestRunUntilManyCanceledHeads(t *testing.T) {
	s := New()
	for i := 1; i <= 8; i++ {
		e := s.At(Time(i), func() { t.Error("canceled event fired") })
		s.Cancel(e)
	}
	ran := false
	s.At(9, func() { ran = true })
	s.RunUntil(4)
	if ran {
		t.Fatal("RunUntil(4) fired the t=9 event")
	}
	if s.Now() != 4 {
		t.Errorf("clock = %v, want 4s", s.Now())
	}
	s.RunUntil(9)
	if !ran || s.Now() != 9 {
		t.Errorf("RunUntil(9): ran=%v now=%v", ran, s.Now())
	}
}

// Pending counts live events only, whether the canceled entries have been
// discarded yet or not.
func TestPendingExcludesCanceled(t *testing.T) {
	s := New()
	var events []EventID
	for i := 1; i <= 6; i++ {
		events = append(events, s.At(Time(i), func() {}))
	}
	s.Cancel(events[0])
	s.Cancel(events[3])
	if got := s.Pending(); got != 4 {
		t.Fatalf("Pending = %d, want 4", got)
	}
	steps := 0
	for s.Step() {
		steps++
	}
	if steps != 4 {
		t.Errorf("Step executed %d events, want 4", steps)
	}
	if s.Pending() != 0 {
		t.Errorf("Pending after drain = %d, want 0", s.Pending())
	}
	if s.Processed() != 4 {
		t.Errorf("Processed = %d, want 4", s.Processed())
	}
}

// Canceling an event tied with the current event (same time, later seq)
// must suppress it even though it is already "due".
func TestCancelSameTimeSibling(t *testing.T) {
	s := New()
	var e2 EventID
	s.At(3, func() { s.Cancel(e2) })
	e2 = s.At(3, func() { t.Error("sibling canceled at the same timestamp fired") })
	s.Run()
	if s.Now() != 3 {
		t.Errorf("clock = %v, want 3s", s.Now())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := New()
	if s.Step() {
		t.Error("Step on empty queue returned true")
	}
	s.At(1, func() {})
	if !s.Step() {
		t.Error("Step with one event returned false")
	}
	if s.Step() {
		t.Error("Step after draining returned true")
	}
	if s.Processed() != 1 {
		t.Errorf("Processed = %d, want 1", s.Processed())
	}
}

// Property: for any set of delays, events fire in nondecreasing time order.
func TestPropertyMonotonicClock(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New()
		last := Time(-1)
		ok := true
		for _, d := range delays {
			s.At(Time(d), func() {
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
			})
		}
		s.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEventTimeAccessor(t *testing.T) {
	s := New()
	e := s.At(4.25, func() {})
	at, ok := s.EventTime(e)
	if !ok || at != 4.25 {
		t.Errorf("EventTime() = %v, %v, want 4.25s, true", at, ok)
	}
	if got := at.String(); got != "4.250s" {
		t.Errorf("String() = %q, want \"4.250s\"", got)
	}
	s.Run()
	if _, ok := s.EventTime(e); ok {
		t.Error("EventTime ok = true after the event fired")
	}
}
