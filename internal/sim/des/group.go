package des

import "sort"

// Group couples several simulations into one logical event queue with a
// shared sequence space, so events compare across members exactly as they
// would on a single shared simulation. It is the kernel half of per-site
// intra-run parallelism: each member owns a disjoint state partition
// (one site), and execution alternates between two phases.
//
// Window phase (BeginWindows → StepWindow on each member → Reconcile):
// every member may advance its own non-boundary events concurrently up to
// a caller-chosen horizon. Events scheduled during a window get
// member-local provisional sequence numbers; Reconcile folds the
// survivors back into the shared sequence space, preserving each member's
// creation order, so a later tie-break is deterministic.
//
// Serialized phase (FireNext): the globally earliest pending event —
// boundary or not — fires on its member, with every member's clock first
// synchronized forward to that time. Boundary events (the ones whose
// callbacks reach outside their member's partition) only ever fire here,
// in exactly the (time, sequence) order a shared simulation would use.
//
// The resulting schedule is identical to running all members' events on
// one shared simulation, except that simultaneous cross-member events
// created in the same window tie-break in member order rather than
// creation order — indistinguishable unless two members schedule at the
// exact same float64 time.
type Group struct {
	members []*Simulation
	// seq is the shared sequence counter used outside windows.
	seq uint64
	// snapshot is seq at BeginWindows; events with seq ≥ snapshot are the
	// current window's provisional events.
	snapshot uint64
	inWindow bool
	scratch  []int32 // reconcile scratch, reused across phases
}

// NewGroup couples the given simulations. Members must be fresh: grouping
// a simulation that has already scheduled events would leave those events
// outside the shared sequence space, so it panics.
func NewGroup(members ...*Simulation) *Group {
	g := &Group{members: members}
	for _, m := range members {
		if m.group != nil {
			panic("des: simulation is already in a group")
		}
		if len(m.heap) > 0 || m.seq != 0 {
			panic("des: grouping a simulation with scheduling history")
		}
		m.group = g
	}
	return g
}

// nextSeq issues the sequence number for a new event on member s: shared
// during serialized phases, member-local provisional during windows (so
// concurrent members never contend, and Reconcile can renumber).
func (g *Group) nextSeq(s *Simulation) uint64 {
	if g.inWindow {
		v := s.prov
		s.prov++
		return v
	}
	v := g.seq
	g.seq++
	return v
}

// BeginWindows opens the window phase: until Reconcile, each member
// numbers new events from its own provisional counter and may be advanced
// concurrently with StepWindow. The caller must not fire boundary events
// or schedule cross-member work until Reconcile.
func (g *Group) BeginWindows() {
	g.snapshot = g.seq
	for _, m := range g.members {
		m.prov = g.seq
	}
	g.inWindow = true
}

// Reconcile closes the window phase, folding every surviving provisional
// event back into the shared sequence space. Members are processed in
// order; within a member, provisional events keep their creation order.
// The renumbering is monotone within each member and stays above every
// pre-window sequence number, so heap invariants are untouched.
func (g *Group) Reconcile() {
	g.inWindow = false
	next := g.snapshot
	for _, m := range g.members {
		if m.prov == g.snapshot {
			continue // member scheduled nothing this window
		}
		sc := g.scratch[:0]
		for _, slot := range m.heap {
			if m.events[slot].seq >= g.snapshot {
				sc = append(sc, slot)
			}
		}
		sort.Slice(sc, func(i, j int) bool {
			return m.events[sc[i]].seq < m.events[sc[j]].seq
		})
		for _, slot := range sc {
			m.events[slot].seq = next
			next++
		}
		g.scratch = sc
	}
	g.seq = next
}

// FireNext executes the single globally earliest pending event by
// (time, sequence), synchronizing every member's clock forward to its
// time first — a member that idled through a window must still observe
// the shared serialized clock. It reports false when every member is
// drained. Must not be called between BeginWindows and Reconcile.
func (g *Group) FireNext() bool {
	if g.inWindow {
		panic("des: FireNext inside an open window phase")
	}
	best := -1
	var bt Time
	var bs uint64
	for i, m := range g.members {
		if len(m.heap) == 0 {
			continue
		}
		e := &m.events[m.heap[0]]
		if best < 0 || e.at < bt || (e.at == bt && e.seq < bs) {
			best, bt, bs = i, e.at, e.seq
		}
	}
	if best < 0 {
		return false
	}
	// Safe: bt is the global minimum, so no member has a pending event
	// before it and moving clocks forward cannot skip anything.
	for _, m := range g.members {
		if m.now < bt {
			m.now = bt
		}
	}
	return g.members[best].Step()
}

// Members returns the coupled simulations in group order.
func (g *Group) Members() []*Simulation { return g.members }
