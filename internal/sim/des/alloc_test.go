package des

import "testing"

// The allocation regression gate (run by CI as `go test -run 'TestAllocs'`):
// the slab-backed kernel must not allocate in steady state. Every test
// warms the arenas to their high-water mark first, then measures.

func TestAllocsScheduleFire(t *testing.T) {
	s := New()
	fn := func() {}
	for i := 0; i < 128; i++ {
		s.After(float64(i), fn)
	}
	s.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		s.After(1, fn)
		s.Step()
	})
	if allocs != 0 {
		t.Errorf("schedule→fire steady state allocates %.1f/op, want 0", allocs)
	}
}

func TestAllocsScheduleFireDeepQueue(t *testing.T) {
	s := New()
	fn := func() {}
	for i := 0; i < 256; i++ {
		s.After(float64(i+1), fn)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.After(300, fn)
		s.Step()
	})
	if allocs != 0 {
		t.Errorf("deep-queue schedule→fire allocates %.1f/op, want 0", allocs)
	}
}

func TestAllocsCancel(t *testing.T) {
	s := New()
	fn := func() {}
	for i := 0; i < 128; i++ {
		s.Cancel(s.After(float64(i), fn))
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.Cancel(s.After(1, fn))
	})
	if allocs != 0 {
		t.Errorf("schedule→cancel allocates %.1f/op, want 0", allocs)
	}
}

func TestAllocsResourceAcquireRelease(t *testing.T) {
	s := New()
	r := NewResource(s, 1)
	fn := func() { r.Release(1) }
	for i := 0; i < 128; i++ {
		r.Acquire(1, fn)
	}
	s.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		r.Acquire(1, fn)
		for s.Step() {
		}
	})
	if allocs != 0 {
		t.Errorf("acquire→grant→release allocates %.1f/op, want 0", allocs)
	}
}
