package des

import "testing"

func TestResourceImmediateGrant(t *testing.T) {
	s := New()
	r := NewResource(s, 2)
	granted := 0
	r.Acquire(1, func() { granted++ })
	r.Acquire(1, func() { granted++ })
	s.Run()
	if granted != 2 {
		t.Fatalf("granted = %d, want 2", granted)
	}
	if r.InUse() != 2 || r.Available() != 0 {
		t.Errorf("InUse=%d Available=%d, want 2/0", r.InUse(), r.Available())
	}
}

func TestResourceQueueing(t *testing.T) {
	s := New()
	r := NewResource(s, 1)
	var times []Time
	// Three 10-second holders on a single slot: starts at 0, 10, 20.
	for i := 0; i < 3; i++ {
		r.Acquire(1, func() {
			times = append(times, s.Now())
			s.After(10, func() { r.Release(1) })
		})
	}
	s.Run()
	want := []Time{0, 10, 20}
	if len(times) != 3 {
		t.Fatalf("granted %d, want 3", len(times))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("grant %d at %v, want %v", i, times[i], want[i])
		}
	}
	if r.Grants != 3 || r.MaxInUse != 1 {
		t.Errorf("Grants=%d MaxInUse=%d, want 3/1", r.Grants, r.MaxInUse)
	}
}

func TestResourceFIFOHeadOfLineBlocking(t *testing.T) {
	s := New()
	r := NewResource(s, 2)
	var order []string
	r.Acquire(2, func() {
		order = append(order, "big1")
		s.After(5, func() { r.Release(2) })
	})
	r.Acquire(2, func() {
		order = append(order, "big2")
		s.After(5, func() { r.Release(2) })
	})
	// A 1-unit request behind a queued 2-unit request must wait (FIFO,
	// no backfill), even though 1 unit would be free at t=5.
	r.Acquire(1, func() { order = append(order, "small") })
	s.Run()
	if len(order) != 3 || order[0] != "big1" || order[1] != "big2" || order[2] != "small" {
		t.Fatalf("order = %v, want [big1 big2 small]", order)
	}
}

func TestResourceCancelPending(t *testing.T) {
	s := New()
	r := NewResource(s, 1)
	r.Acquire(1, func() { s.After(10, func() { r.Release(1) }) })
	fired := false
	a := r.Acquire(1, func() { fired = true })
	a.Cancel()
	third := false
	r.Acquire(1, func() { third = true })
	s.Run()
	if fired {
		t.Error("canceled acquisition was granted")
	}
	if !third {
		t.Error("request behind canceled one was never granted")
	}
	if r.QueueLen() != 0 {
		t.Errorf("QueueLen = %d, want 0", r.QueueLen())
	}
}

// Canceled requests lingering mid-queue must not break FIFO order of the
// live requests around them, must vanish from QueueLen immediately, and the
// queue must stay usable across heavy cancel churn (compaction path).
func TestResourceCancelMidQueueChurn(t *testing.T) {
	s := New()
	r := NewResource(s, 1)
	r.Acquire(1, func() { s.After(100, func() { r.Release(1) }) })
	var order []int
	var keep []Acquisition
	for i := 0; i < 200; i++ {
		i := i
		a := r.Acquire(1, func() {
			order = append(order, i)
			s.After(1, func() { r.Release(1) })
		})
		keep = append(keep, a)
	}
	// Cancel every request except multiples of 10, scattered mid-queue.
	live := 0
	for i, a := range keep {
		if i%10 == 0 {
			live++
			continue
		}
		a.Cancel()
	}
	if got := r.QueueLen(); got != live {
		t.Fatalf("QueueLen after cancels = %d, want %d", got, live)
	}
	s.Run()
	if len(order) != live {
		t.Fatalf("granted %d requests, want %d", len(order), live)
	}
	for k, v := range order {
		if v != k*10 {
			t.Fatalf("grant order broken: order[%d] = %d, want %d", k, v, k*10)
		}
	}
	// Double cancel and cancel-after-grant are no-ops.
	keep[0].Cancel()
	keep[1].Cancel()
	if r.QueueLen() != 0 {
		t.Errorf("QueueLen = %d, want 0", r.QueueLen())
	}
}

// The waiters backing array must not retain granted requests: after heavy
// one-in-one-out traffic the internal queue stays compact (live window at
// the front, dead prefix bounded).
func TestResourceQueueStaysCompact(t *testing.T) {
	s := New()
	r := NewResource(s, 1)
	for i := 0; i < 10000; i++ {
		r.Acquire(1, func() { s.After(1, func() { r.Release(1) }) })
	}
	s.Run()
	if r.QueueLen() != 0 {
		t.Fatalf("QueueLen = %d, want 0", r.QueueLen())
	}
	if len(r.queue) != 0 || r.whead != 0 {
		t.Errorf("internal queue not reset: len=%d whead=%d", len(r.queue), r.whead)
	}
	if got := int(r.Grants); got != 10000 {
		t.Errorf("Grants = %d, want 10000", got)
	}
}

func TestResourceSetCapacityGrow(t *testing.T) {
	s := New()
	r := NewResource(s, 0)
	granted := false
	r.Acquire(1, func() { granted = true })
	s.Run()
	if granted {
		t.Fatal("grant from zero-capacity pool")
	}
	r.SetCapacity(1)
	s.Run()
	if !granted {
		t.Fatal("grow did not wake waiter")
	}
}

func TestResourceSetCapacityShrinkBelowInUse(t *testing.T) {
	s := New()
	r := NewResource(s, 2)
	r.Acquire(2, func() {})
	s.Run()
	r.SetCapacity(1)
	granted := false
	r.Acquire(1, func() { granted = true })
	s.Run()
	if granted {
		t.Fatal("grant while pool over capacity")
	}
	r.Release(2)
	s.Run()
	if !granted {
		t.Fatal("waiter not woken after release restored headroom")
	}
	if r.InUse() != 1 {
		t.Errorf("InUse = %d, want 1", r.InUse())
	}
}

func TestResourceReleasePanics(t *testing.T) {
	s := New()
	r := NewResource(s, 1)
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	r.Release(1)
}

func TestResourceInvariantNeverOversubscribed(t *testing.T) {
	s := New()
	const cap = 3
	r := NewResource(s, cap)
	rs := newTestStream(42)
	for i := 0; i < 200; i++ {
		n := 1 + int(rs()%3)
		if n > cap {
			n = cap
		}
		start := float64(rs() % 50)
		hold := 1 + float64(rs()%20)
		s.At(Time(start), func() {
			r.Acquire(n, func() {
				if r.InUse() > r.Capacity() {
					t.Errorf("oversubscribed: %d > %d", r.InUse(), r.Capacity())
				}
				s.After(hold, func() { r.Release(n) })
			})
		})
	}
	s.Run()
	if r.InUse() != 0 {
		t.Errorf("leaked units: InUse = %d", r.InUse())
	}
	if r.MaxInUse > cap {
		t.Errorf("MaxInUse %d exceeds capacity %d", r.MaxInUse, cap)
	}
}

// newTestStream is a tiny local RNG so this package does not depend on
// sim/rng (keeping the dependency graph acyclic for rng tests that may use
// des in the future).
func newTestStream(seed uint64) func() uint64 {
	state := seed
	return func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
}
