package des

import "testing"

// BenchmarkScheduleFire measures the schedule→fire hot loop of the kernel:
// one event scheduled and executed per iteration, steady state.
func BenchmarkScheduleFire(b *testing.B) {
	s := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(1, fn)
		s.Step()
	}
}

// BenchmarkScheduleFireDepth64 keeps 64 events pending while scheduling and
// firing, exercising the heap at a realistic queue depth.
func BenchmarkScheduleFireDepth64(b *testing.B) {
	s := New()
	fn := func() {}
	for i := 0; i < 64; i++ {
		s.After(float64(i+1), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(65, fn)
		s.Step()
	}
}

// BenchmarkResourceAcquireRelease measures the slot-pool hot path.
func BenchmarkResourceAcquireRelease(b *testing.B) {
	s := New()
	r := NewResource(s, 1)
	fn := func() { r.Release(1) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Acquire(1, fn)
		for s.Step() {
		}
	}
}
