// Package des implements a minimal discrete-event simulation kernel.
//
// A Simulation owns a virtual clock and a priority queue of timed events.
// Code schedules callbacks at absolute virtual times (or after delays) and
// the kernel executes them in time order. Ties are broken by scheduling
// order, which keeps runs deterministic.
//
// The kernel is deliberately single-threaded: platform models built on top
// of it are ordinary sequential Go code, which makes them easy to test and
// bit-reproducible.
//
// Events live by value in a slab: a growable arena of event records indexed
// by a binary heap of slot numbers, with freed slots recycled through a
// free list. Steady-state scheduling therefore allocates nothing — the
// arena, heap and free list all reach a high-water mark and are reused.
// Callers hold EventID handles (slot + generation) instead of pointers; a
// stale handle (its event already fired or canceled) is detected by the
// generation check and every operation on it is a safe no-op.
package des
