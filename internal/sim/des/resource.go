package des

// Resource models a counted resource (e.g. a pool of CPU slots) with a FIFO
// wait queue. Acquire requests that cannot be satisfied immediately are
// queued and granted, in order, as units are released.
//
// Requests live by value in a slab arena with a free list, mirroring the
// kernel's event storage: the FIFO queue holds arena slot numbers, callers
// hold generation-checked Acquisition handles, and steady-state
// acquire/grant cycles allocate nothing.
//
// A by-value copy would alias the request arena and free list; slabcopy
// flags it.
//
//pegflow:slab
type Resource struct {
	sim      *Simulation
	capacity int
	inUse    int
	// reqs is the request arena; slots are recycled through freeReqs and
	// generation-checked so stale Acquisition handles are no-ops.
	reqs     []acquireReq
	freeReqs []int32
	// queue is the FIFO wait queue of arena slots; the live window is
	// queue[whead:]. The backing array is compacted once the dead prefix
	// or canceled entries dominate, keeping retention O(live) across
	// arbitrarily long runs.
	queue []int32
	whead int
	// canceled counts canceled requests still inside the live window.
	canceled int
	// Grants counts successful acquisitions, for tests and stats.
	Grants uint64
	// MaxInUse tracks the high-water mark of concurrently held units.
	MaxInUse int

	// lastAccount is the virtual time up to which the utilization
	// integrals have been accumulated.
	lastAccount Time
	busySeconds float64
	capSeconds  float64
}

type acquireReq struct {
	n        int
	fn       func()
	gen      uint32
	canceled bool
}

// Acquisition is a handle for a pending resource request; Cancel withdraws
// it if it has not yet been granted. The zero Acquisition is inert.
type Acquisition struct {
	r    *Resource
	slot int32
	gen  uint32
}

// Cancel withdraws a pending request in O(1); the queue entry is discarded
// when it reaches the head or at the next compaction. It is a no-op after
// the grant fired (the generation check catches recycled slots).
func (a Acquisition) Cancel() {
	if a.r == nil {
		return
	}
	req := &a.r.reqs[a.slot]
	if req.gen != a.gen || req.canceled {
		return
	}
	req.canceled = true
	req.fn = nil
	a.r.canceled++
	a.r.maybeCompact()
}

// NewResource creates a resource with the given capacity attached to sim.
func NewResource(sim *Simulation, capacity int) *Resource {
	if capacity < 0 {
		panic("des: negative resource capacity")
	}
	return &Resource{sim: sim, capacity: capacity}
}

// account integrates units-in-use and capacity over virtual time up to
// now. It is called before every state change so the integrals are exact.
func (r *Resource) account() {
	now := r.sim.Now()
	dt := float64(now - r.lastAccount)
	if dt > 0 {
		r.busySeconds += float64(r.inUse) * dt
		r.capSeconds += float64(r.capacity) * dt
	}
	r.lastAccount = now
}

// BusySlotSeconds returns the time integral of units in use (slot·seconds
// of occupancy) up to the current virtual time.
func (r *Resource) BusySlotSeconds() float64 {
	r.account()
	return r.busySeconds
}

// CapacitySlotSeconds returns the time integral of capacity up to the
// current virtual time — the denominator of a utilization ratio under
// capacity ramps.
func (r *Resource) CapacitySlotSeconds() float64 {
	r.account()
	return r.capSeconds
}

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Available returns the number of free units.
func (r *Resource) Available() int { return r.capacity - r.inUse }

// QueueLen returns the number of pending (non-canceled) requests.
func (r *Resource) QueueLen() int {
	return len(r.queue) - r.whead - r.canceled
}

// SetCapacity changes the capacity. Growing the pool wakes queued waiters.
// Shrinking below inUse is allowed: units already held remain held and the
// pool refuses new grants until enough are released.
func (r *Resource) SetCapacity(c int) {
	if c < 0 {
		panic("des: negative resource capacity")
	}
	r.account()
	r.capacity = c
	r.dispatch()
}

// Acquire requests n units. fn runs (as a scheduled event at the current
// time, never synchronously) once the units are granted.
func (r *Resource) Acquire(n int, fn func()) Acquisition {
	if n <= 0 {
		panic("des: acquire of non-positive unit count")
	}
	var slot int32
	if f := len(r.freeReqs); f > 0 {
		slot = r.freeReqs[f-1]
		r.freeReqs = r.freeReqs[:f-1]
	} else {
		r.reqs = append(r.reqs, acquireReq{gen: 1})
		slot = int32(len(r.reqs) - 1)
	}
	req := &r.reqs[slot]
	req.n, req.fn, req.canceled = n, fn, false
	gen := req.gen
	r.queue = append(r.queue, slot)
	r.dispatch()
	return Acquisition{r: r, slot: slot, gen: gen}
}

// Release returns n units to the pool, waking queued waiters.
func (r *Resource) Release(n int) {
	if n <= 0 {
		panic("des: release of non-positive unit count")
	}
	r.account()
	r.inUse -= n
	if r.inUse < 0 {
		panic("des: release of units never acquired")
	}
	r.dispatch()
}

// releaseReq recycles a request slot once it leaves the queue (granted or
// canceled-and-discarded), invalidating outstanding handles.
func (r *Resource) releaseReq(slot int32) {
	req := &r.reqs[slot]
	req.fn = nil
	req.gen++
	r.freeReqs = append(r.freeReqs, slot)
}

// popHead drops the current head request from the live window.
func (r *Resource) popHead() {
	r.whead++
	r.maybeCompact()
}

// maybeCompact rewrites the queue's backing array once the dead prefix or
// canceled mid-queue entries dominate the live requests, preserving FIFO
// order and recycling the slots of discarded canceled entries.
func (r *Resource) maybeCompact() {
	live := len(r.queue) - r.whead
	if live == 0 {
		r.queue = r.queue[:0]
		r.whead = 0
		r.canceled = 0
		return
	}
	if r.whead <= len(r.queue)/2 && r.canceled <= live/2 {
		return
	}
	out := r.queue[:0]
	for _, slot := range r.queue[r.whead:] {
		if r.reqs[slot].canceled {
			r.releaseReq(slot)
			continue
		}
		out = append(out, slot)
	}
	r.queue = out
	r.whead = 0
	r.canceled = 0
}

// dispatch grants queued requests in FIFO order while units are available.
// FIFO means a large request at the head blocks smaller ones behind it,
// like a non-backfilling batch scheduler.
func (r *Resource) dispatch() {
	for r.whead < len(r.queue) {
		slot := r.queue[r.whead]
		head := &r.reqs[slot]
		if head.canceled {
			r.canceled--
			r.popHead()
			r.releaseReq(slot)
			continue
		}
		if r.inUse+head.n > r.capacity {
			return
		}
		fn, n := head.fn, head.n
		r.popHead()
		r.releaseReq(slot)
		r.account()
		r.inUse += n
		if r.inUse > r.MaxInUse {
			r.MaxInUse = r.inUse
		}
		r.Grants++
		r.sim.After(0, fn)
	}
}
