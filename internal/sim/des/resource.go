package des

// Resource models a counted resource (e.g. a pool of CPU slots) with a FIFO
// wait queue. Acquire requests that cannot be satisfied immediately are
// queued and granted, in order, as units are released.
type Resource struct {
	sim      *Simulation
	capacity int
	inUse    int
	waiters  []*acquireReq
	// Grants counts successful acquisitions, for tests and stats.
	Grants uint64
	// MaxInUse tracks the high-water mark of concurrently held units.
	MaxInUse int

	// lastAccount is the virtual time up to which the utilization
	// integrals have been accumulated.
	lastAccount Time
	busySeconds float64
	capSeconds  float64
}

type acquireReq struct {
	n        int
	fn       func()
	canceled bool
}

// Acquisition is a handle for a pending resource request; Cancel withdraws
// it if it has not yet been granted.
type Acquisition struct {
	r   *Resource
	req *acquireReq
}

// Cancel withdraws a pending request. It is a no-op after the grant fired.
func (a *Acquisition) Cancel() {
	if a == nil || a.req == nil {
		return
	}
	a.req.canceled = true
}

// NewResource creates a resource with the given capacity attached to sim.
func NewResource(sim *Simulation, capacity int) *Resource {
	if capacity < 0 {
		panic("des: negative resource capacity")
	}
	return &Resource{sim: sim, capacity: capacity}
}

// account integrates units-in-use and capacity over virtual time up to
// now. It is called before every state change so the integrals are exact.
func (r *Resource) account() {
	now := r.sim.Now()
	dt := float64(now - r.lastAccount)
	if dt > 0 {
		r.busySeconds += float64(r.inUse) * dt
		r.capSeconds += float64(r.capacity) * dt
	}
	r.lastAccount = now
}

// BusySlotSeconds returns the time integral of units in use (slot·seconds
// of occupancy) up to the current virtual time.
func (r *Resource) BusySlotSeconds() float64 {
	r.account()
	return r.busySeconds
}

// CapacitySlotSeconds returns the time integral of capacity up to the
// current virtual time — the denominator of a utilization ratio under
// capacity ramps.
func (r *Resource) CapacitySlotSeconds() float64 {
	r.account()
	return r.capSeconds
}

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Available returns the number of free units.
func (r *Resource) Available() int { return r.capacity - r.inUse }

// QueueLen returns the number of pending (non-canceled) requests.
func (r *Resource) QueueLen() int {
	n := 0
	for _, w := range r.waiters {
		if !w.canceled {
			n++
		}
	}
	return n
}

// SetCapacity changes the capacity. Growing the pool wakes queued waiters.
// Shrinking below inUse is allowed: units already held remain held and the
// pool refuses new grants until enough are released.
func (r *Resource) SetCapacity(c int) {
	if c < 0 {
		panic("des: negative resource capacity")
	}
	r.account()
	r.capacity = c
	r.dispatch()
}

// Acquire requests n units. fn runs (as a scheduled event at the current
// time, never synchronously) once the units are granted.
func (r *Resource) Acquire(n int, fn func()) *Acquisition {
	if n <= 0 {
		panic("des: acquire of non-positive unit count")
	}
	req := &acquireReq{n: n, fn: fn}
	r.waiters = append(r.waiters, req)
	r.dispatch()
	return &Acquisition{r: r, req: req}
}

// Release returns n units to the pool, waking queued waiters.
func (r *Resource) Release(n int) {
	if n <= 0 {
		panic("des: release of non-positive unit count")
	}
	r.account()
	r.inUse -= n
	if r.inUse < 0 {
		panic("des: release of units never acquired")
	}
	r.dispatch()
}

// dispatch grants queued requests in FIFO order while units are available.
// FIFO means a large request at the head blocks smaller ones behind it,
// like a non-backfilling batch scheduler.
func (r *Resource) dispatch() {
	for len(r.waiters) > 0 {
		head := r.waiters[0]
		if head.canceled {
			r.waiters = r.waiters[1:]
			continue
		}
		if r.inUse+head.n > r.capacity {
			return
		}
		r.waiters = r.waiters[1:]
		r.account()
		r.inUse += head.n
		if r.inUse > r.MaxInUse {
			r.MaxInUse = r.inUse
		}
		r.Grants++
		fn := head.fn
		r.sim.After(0, fn)
	}
}
