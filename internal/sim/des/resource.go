package des

// Resource models a counted resource (e.g. a pool of CPU slots) with a FIFO
// wait queue. Acquire requests that cannot be satisfied immediately are
// queued and granted, in order, as units are released.
type Resource struct {
	sim      *Simulation
	capacity int
	inUse    int
	// waiters is the FIFO wait queue; the live window is waiters[whead:].
	// Popped slots are nilled immediately (so granted requests are not
	// pinned by the backing array) and the slice is compacted once the
	// dead prefix or canceled entries dominate, keeping retention O(live)
	// across arbitrarily long runs.
	waiters []*acquireReq
	whead   int
	// canceled counts canceled requests still inside the live window.
	canceled int
	// Grants counts successful acquisitions, for tests and stats.
	Grants uint64
	// MaxInUse tracks the high-water mark of concurrently held units.
	MaxInUse int

	// lastAccount is the virtual time up to which the utilization
	// integrals have been accumulated.
	lastAccount Time
	busySeconds float64
	capSeconds  float64
}

type acquireReq struct {
	n        int
	fn       func()
	canceled bool
	granted  bool
}

// Acquisition is a handle for a pending resource request; Cancel withdraws
// it if it has not yet been granted.
type Acquisition struct {
	r   *Resource
	req *acquireReq
}

// Cancel withdraws a pending request in O(1); the queue entry is discarded
// when it reaches the head or at the next compaction. It is a no-op after
// the grant fired.
func (a *Acquisition) Cancel() {
	if a == nil || a.req == nil || a.req.canceled || a.req.granted {
		return
	}
	a.req.canceled = true
	a.req.fn = nil
	a.r.canceled++
	a.r.maybeCompact()
}

// NewResource creates a resource with the given capacity attached to sim.
func NewResource(sim *Simulation, capacity int) *Resource {
	if capacity < 0 {
		panic("des: negative resource capacity")
	}
	return &Resource{sim: sim, capacity: capacity}
}

// account integrates units-in-use and capacity over virtual time up to
// now. It is called before every state change so the integrals are exact.
func (r *Resource) account() {
	now := r.sim.Now()
	dt := float64(now - r.lastAccount)
	if dt > 0 {
		r.busySeconds += float64(r.inUse) * dt
		r.capSeconds += float64(r.capacity) * dt
	}
	r.lastAccount = now
}

// BusySlotSeconds returns the time integral of units in use (slot·seconds
// of occupancy) up to the current virtual time.
func (r *Resource) BusySlotSeconds() float64 {
	r.account()
	return r.busySeconds
}

// CapacitySlotSeconds returns the time integral of capacity up to the
// current virtual time — the denominator of a utilization ratio under
// capacity ramps.
func (r *Resource) CapacitySlotSeconds() float64 {
	r.account()
	return r.capSeconds
}

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Available returns the number of free units.
func (r *Resource) Available() int { return r.capacity - r.inUse }

// QueueLen returns the number of pending (non-canceled) requests.
func (r *Resource) QueueLen() int {
	return len(r.waiters) - r.whead - r.canceled
}

// SetCapacity changes the capacity. Growing the pool wakes queued waiters.
// Shrinking below inUse is allowed: units already held remain held and the
// pool refuses new grants until enough are released.
func (r *Resource) SetCapacity(c int) {
	if c < 0 {
		panic("des: negative resource capacity")
	}
	r.account()
	r.capacity = c
	r.dispatch()
}

// Acquire requests n units. fn runs (as a scheduled event at the current
// time, never synchronously) once the units are granted.
func (r *Resource) Acquire(n int, fn func()) *Acquisition {
	if n <= 0 {
		panic("des: acquire of non-positive unit count")
	}
	req := &acquireReq{n: n, fn: fn}
	r.waiters = append(r.waiters, req)
	r.dispatch()
	return &Acquisition{r: r, req: req}
}

// Release returns n units to the pool, waking queued waiters.
func (r *Resource) Release(n int) {
	if n <= 0 {
		panic("des: release of non-positive unit count")
	}
	r.account()
	r.inUse -= n
	if r.inUse < 0 {
		panic("des: release of units never acquired")
	}
	r.dispatch()
}

// popHead drops the current head request from the live window.
func (r *Resource) popHead() {
	r.waiters[r.whead] = nil
	r.whead++
	r.maybeCompact()
}

// maybeCompact rewrites the backing array once the dead prefix or canceled
// mid-queue entries dominate the live requests, preserving FIFO order.
func (r *Resource) maybeCompact() {
	live := len(r.waiters) - r.whead
	if live == 0 {
		r.waiters = r.waiters[:0]
		r.whead = 0
		r.canceled = 0
		return
	}
	if r.whead <= len(r.waiters)/2 && r.canceled <= live/2 {
		return
	}
	out := r.waiters[:0]
	for _, w := range r.waiters[r.whead:] {
		if w != nil && !w.canceled {
			out = append(out, w)
		}
	}
	for i := len(out); i < len(r.waiters); i++ {
		r.waiters[i] = nil
	}
	r.waiters = out
	r.whead = 0
	r.canceled = 0
}

// dispatch grants queued requests in FIFO order while units are available.
// FIFO means a large request at the head blocks smaller ones behind it,
// like a non-backfilling batch scheduler.
func (r *Resource) dispatch() {
	for r.whead < len(r.waiters) {
		head := r.waiters[r.whead]
		if head.canceled {
			r.canceled--
			r.popHead()
			continue
		}
		if r.inUse+head.n > r.capacity {
			return
		}
		head.granted = true
		r.popHead()
		r.account()
		r.inUse += head.n
		if r.inUse > r.MaxInUse {
			r.MaxInUse = r.inUse
		}
		r.Grants++
		fn := head.fn
		r.sim.After(0, fn)
	}
}
