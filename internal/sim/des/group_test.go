package des

import (
	"reflect"
	"testing"
)

// drainGroup runs the group's phase loop with the given per-member window
// horizons, returning the order in which callbacks fired.
func drainGroup(g *Group, horizon Time) {
	for {
		g.BeginWindows()
		for _, m := range g.Members() {
			for m.StepWindow(horizon) {
			}
		}
		g.Reconcile()
		if !g.FireNext() {
			return
		}
	}
}

// TestGroupBoundariesMatchSharedSimulation: boundary events carry the
// global-order guarantee — the same program scheduled on two grouped
// simulations fires them in exactly the order a single shared simulation
// would use (including sequence tie-breaks at equal times), whatever the
// window horizon.
func TestGroupBoundariesMatchSharedSimulation(t *testing.T) {
	program := func(schedule func(member int, at Time, fn func())) {
		schedule(0, 5, nil)
		schedule(1, 3, nil)
		schedule(0, 3, nil)
		schedule(1, 7, nil)
		schedule(0, 7, nil)
	}

	var want []int
	shared := New()
	id := 0
	program(func(member int, at Time, fn func()) {
		tag := id
		id++
		shared.AtBoundary(at, func() { want = append(want, tag) })
	})
	shared.Run()

	for _, horizon := range []Time{0, 4, 100} {
		var got []int
		a, b := New(), New()
		g := NewGroup(a, b)
		sims := []*Simulation{a, b}
		id = 0
		program(func(member int, at Time, fn func()) {
			tag := id
			id++
			sims[member].AtBoundary(at, func() { got = append(got, tag) })
		})
		drainGroup(g, horizon)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("horizon %v: fired %v, shared simulation fired %v", horizon, got, want)
		}
	}
}

// TestGroupWindowPreservesMemberOrder: non-boundary events may interleave
// differently across members inside windows — that is the parallelism —
// but each member's own firing order is exactly its serial order.
func TestGroupWindowPreservesMemberOrder(t *testing.T) {
	a, b := New(), New()
	g := NewGroup(a, b)
	var got []string
	a.At(3, func() { got = append(got, "a1") })
	b.At(2, func() { got = append(got, "b1") })
	a.At(5, func() { got = append(got, "a2") })
	b.At(4, func() { got = append(got, "b2") })
	drainGroup(g, 100)
	perMember := map[byte][]string{}
	for _, tag := range got {
		perMember[tag[0]] = append(perMember[tag[0]], tag)
	}
	if !reflect.DeepEqual(perMember['a'], []string{"a1", "a2"}) ||
		!reflect.DeepEqual(perMember['b'], []string{"b1", "b2"}) {
		t.Errorf("member order broken: fired %v", got)
	}
	if len(got) != 4 {
		t.Errorf("fired %d events, want 4: %v", len(got), got)
	}
}

// TestGroupWindowRespectsBoundaryAndHorizon: StepWindow must refuse
// boundary events and events at or past the horizon.
func TestGroupWindowRespectsBoundaryAndHorizon(t *testing.T) {
	s := New()
	NewGroup(s)
	var fired []string
	s.AtBoundary(1, func() { fired = append(fired, "boundary") })
	if s.StepWindow(100) {
		t.Error("StepWindow fired a boundary event")
	}
	s2 := New()
	NewGroup(s2)
	s2.At(5, func() { fired = append(fired, "at-horizon") })
	if s2.StepWindow(5) {
		t.Error("StepWindow fired an event at the horizon (must be strict)")
	}
	if !s2.StepWindow(5.1) {
		t.Error("StepWindow refused an event inside the horizon")
	}
	if len(fired) != 1 || fired[0] != "at-horizon" {
		t.Errorf("fired = %v", fired)
	}
}

// TestGroupClockSync: firing the global minimum advances every member's
// clock, so an idle member later schedules relative to serialized time.
func TestGroupClockSync(t *testing.T) {
	a, b := New(), New()
	NewGroup(a, b)
	a.At(10, func() {})
	g := a.group
	if !g.FireNext() {
		t.Fatal("FireNext found nothing")
	}
	if b.Now() != 10 {
		t.Errorf("idle member clock = %v, want 10 (synced to fired time)", b.Now())
	}
}

// TestGroupReconcileKeepsCreationOrder: events created inside a window
// keep their member-local creation order after renumbering, and events
// from before the window still sort first at equal times.
func TestGroupReconcileKeepsCreationOrder(t *testing.T) {
	a, b := New(), New()
	g := NewGroup(a, b)
	var got []string
	a.At(1, func() { // fires in the window; schedules provisional events
		a.At(9, func() { got = append(got, "a-first") })
		a.At(9, func() { got = append(got, "a-second") })
	})
	b.At(9, func() { got = append(got, "b-pre") })

	g.BeginWindows()
	for a.StepWindow(5) {
	}
	g.Reconcile()
	for g.FireNext() {
	}
	want := []string{"b-pre", "a-first", "a-second"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fired %v, want %v", got, want)
	}
}

// TestGroupPanics pins the misuse guards: grouping a used simulation,
// double-grouping, and firing inside an open window all panic.
func TestGroupPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	used := New()
	used.At(1, func() {})
	expectPanic("grouping a simulation with history", func() { NewGroup(used) })

	grouped := New()
	NewGroup(grouped)
	expectPanic("double-grouping", func() { NewGroup(grouped) })

	g := NewGroup(New())
	g.BeginWindows()
	expectPanic("FireNext inside a window", func() { g.FireNext() })
}
