package des

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since the start of the
// simulation.
type Time float64

// Seconds returns the time as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) }

// String formats the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", float64(t)) }

// EventID is a handle for a scheduled callback, returned by the scheduling
// methods so callers can cancel or inspect the event later. The zero
// EventID is invalid and never matches a live event. Handles are
// generation-checked: once the event fires or is canceled its slot may be
// reused, and the old handle stops matching.
type EventID struct {
	slot int32
	gen  uint32
}

// event is one slab entry. Slots are reused; gen increments on every
// release so stale EventIDs cannot alias a later event in the same slot.
// (A slot's generation wraps after ~4 billion reuses; a collision would
// additionally need a caller holding a handle across that entire span.)
type event struct {
	at   Time
	seq  uint64
	fn   func()
	gen  uint32
	hpos int32 // index in the heap array; -1 when not queued
	// boundary marks events that may touch state outside this simulation's
	// own partition (emit engine events, mutate submission state). Group
	// windows never fire boundary events; they are serialization points.
	boundary bool
}

// Simulation is a discrete-event simulator instance.
//
// Copying a Simulation by value aliases the event arena, free list and
// heap between the copies; pegflow-lint's slabcopy analyzer flags any
// by-value copy.
//
//pegflow:slab
type Simulation struct {
	now     Time
	events  []event // slab arena; index = EventID.slot
	free    []int32 // recycled arena slots
	heap    []int32 // binary heap of arena slots, ordered by (at, seq)
	seq     uint64
	stopped bool
	// processed counts events executed; useful for tests and loop guards.
	processed uint64
	// group is non-nil when the simulation is a member of a Group; sequence
	// numbers then come from the group's shared counter so events compare
	// across members exactly as they would on one shared simulation.
	group *Group
	// prov is the member-local provisional sequence counter used while the
	// group is inside a window phase (see Group.BeginWindows).
	prov uint64
}

// New returns a simulation with the clock at zero.
func New() *Simulation {
	return &Simulation{}
}

// Now returns the current virtual time.
func (s *Simulation) Now() Time { return s.now }

// Processed returns the number of events executed so far.
func (s *Simulation) Processed() uint64 { return s.processed }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a model bug.
func (s *Simulation) At(t Time, fn func()) EventID {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, s.now))
	}
	if math.IsNaN(float64(t)) {
		panic("des: scheduling event at NaN time")
	}
	var slot int32
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.events = append(s.events, event{gen: 1})
		slot = int32(len(s.events) - 1)
	}
	e := &s.events[slot]
	e.at, e.fn, e.boundary = t, fn, false
	if s.group != nil {
		e.seq = s.group.nextSeq(s)
	} else {
		e.seq = s.seq
		s.seq++
	}
	s.heapPush(slot)
	return EventID{slot: slot, gen: e.gen}
}

// After schedules fn to run d seconds after the current time. Negative
// delays are clamped to zero.
func (s *Simulation) After(d float64, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+Time(d), fn)
}

// AtBoundary schedules fn like At and marks the event as a boundary: a
// callback that may reach outside this simulation's own state partition
// (emitting engine events, mutating submission serialization state).
// Group windows stop at boundary events so they only ever fire during the
// serialized phase. Outside a Group the mark has no effect.
func (s *Simulation) AtBoundary(t Time, fn func()) EventID {
	id := s.At(t, fn)
	s.events[id.slot].boundary = true
	return id
}

// AfterBoundary is After with the boundary mark of AtBoundary.
func (s *Simulation) AfterBoundary(d float64, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return s.AtBoundary(s.now+Time(d), fn)
}

// lookup resolves a handle to its live slab entry, or nil when the handle
// is stale (event fired, canceled, or never existed).
func (s *Simulation) lookup(id EventID) *event {
	if id.slot < 0 || int(id.slot) >= len(s.events) {
		return nil
	}
	e := &s.events[id.slot]
	if e.gen != id.gen || e.hpos < 0 {
		return nil
	}
	return e
}

// Cancel withdraws a pending event in O(log n), removing it from the queue
// and recycling its slot. Canceling an already-fired, already-canceled or
// zero handle is a no-op.
func (s *Simulation) Cancel(id EventID) {
	e := s.lookup(id)
	if e == nil {
		return
	}
	s.heapRemove(e.hpos)
	s.release(id.slot)
}

// Live reports whether the handle's event is still scheduled (not yet
// fired and not canceled).
func (s *Simulation) Live(id EventID) bool { return s.lookup(id) != nil }

// EventTime returns the virtual time at which the handle's event will fire.
// The second result is false when the handle is stale.
func (s *Simulation) EventTime(id EventID) (Time, bool) {
	e := s.lookup(id)
	if e == nil {
		return 0, false
	}
	return e.at, true
}

// release recycles an arena slot after its event fired or was canceled.
func (s *Simulation) release(slot int32) {
	e := &s.events[slot]
	e.fn = nil
	e.gen++
	e.hpos = -1
	s.free = append(s.free, slot)
}

// Stop makes Run return after the currently executing event completes.
func (s *Simulation) Stop() { s.stopped = true }

// Pending returns the number of events waiting in the queue.
func (s *Simulation) Pending() int { return len(s.heap) }

// Step executes the single next event, advancing the clock to its time. It
// returns false when no events remain.
func (s *Simulation) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	slot := s.heap[0]
	s.heapRemove(0)
	e := &s.events[slot]
	s.now = e.at
	s.processed++
	fn := e.fn
	// Release before running fn: the callback may schedule new events and
	// is allowed to reuse this slot immediately.
	s.release(slot)
	fn()
	return true
}

// Head reports the time of the next queued event. The second result is
// false when the queue is empty.
func (s *Simulation) Head() (Time, bool) {
	if len(s.heap) == 0 {
		return 0, false
	}
	return s.events[s.heap[0]].at, true
}

// CanStepWindow reports whether StepWindow(horizon) would fire an event.
func (s *Simulation) CanStepWindow(horizon Time) bool {
	if len(s.heap) == 0 {
		return false
	}
	e := &s.events[s.heap[0]]
	return !e.boundary && e.at < horizon
}

// StepWindow executes the single next event only if it is a non-boundary
// event strictly before horizon, reporting whether one fired. It is the
// member-local advancement step of a Group window: everything it can fire
// is invisible outside this simulation's partition up to the horizon, so
// members may advance concurrently.
func (s *Simulation) StepWindow(horizon Time) bool {
	if len(s.heap) == 0 {
		return false
	}
	e := &s.events[s.heap[0]]
	if e.boundary || e.at >= horizon {
		return false
	}
	return s.Step()
}

// Run executes events until the queue is empty or Stop is called.
func (s *Simulation) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
// Events scheduled exactly at t are executed.
func (s *Simulation) RunUntil(t Time) {
	s.stopped = false
	for !s.stopped {
		if len(s.heap) == 0 || s.events[s.heap[0]].at > t {
			break
		}
		s.Step()
	}
	if !s.stopped && t > s.now {
		s.now = t
	}
}

// --- indexed binary heap over arena slots ---

// less orders heap entries by (time, scheduling sequence).
func (s *Simulation) less(a, b int32) bool {
	ea, eb := &s.events[a], &s.events[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

func (s *Simulation) heapPush(slot int32) {
	s.heap = append(s.heap, slot)
	i := int32(len(s.heap) - 1)
	s.events[slot].hpos = i
	s.siftUp(i)
}

// heapRemove deletes the entry at heap position i, restoring heap order.
func (s *Simulation) heapRemove(i int32) {
	last := int32(len(s.heap) - 1)
	s.events[s.heap[i]].hpos = -1
	if i != last {
		moved := s.heap[last]
		s.heap[i] = moved
		s.events[moved].hpos = i
		s.heap = s.heap[:last]
		if !s.siftDown(i) {
			s.siftUp(i)
		}
		return
	}
	s.heap = s.heap[:last]
}

func (s *Simulation) siftUp(i int32) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(s.heap[i], s.heap[parent]) {
			return
		}
		s.heapSwap(i, parent)
		i = parent
	}
}

// siftDown restores heap order below i, reporting whether anything moved.
func (s *Simulation) siftDown(i int32) bool {
	moved := false
	n := int32(len(s.heap))
	for {
		left := 2*i + 1
		if left >= n {
			return moved
		}
		smallest := left
		if right := left + 1; right < n && s.less(s.heap[right], s.heap[left]) {
			smallest = right
		}
		if !s.less(s.heap[smallest], s.heap[i]) {
			return moved
		}
		s.heapSwap(i, smallest)
		i = smallest
		moved = true
	}
}

func (s *Simulation) heapSwap(i, j int32) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.events[s.heap[i]].hpos = i
	s.events[s.heap[j]].hpos = j
}
