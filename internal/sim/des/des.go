// Package des implements a minimal discrete-event simulation kernel.
//
// A Simulation owns a virtual clock and a priority queue of timed events.
// Code schedules callbacks at absolute virtual times (or after delays) and
// the kernel executes them in time order. Ties are broken by scheduling
// order, which keeps runs deterministic.
//
// The kernel is deliberately single-threaded: platform models built on top
// of it are ordinary sequential Go code, which makes them easy to test and
// bit-reproducible.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since the start of the
// simulation.
type Time float64

// Seconds returns the time as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) }

// String formats the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", float64(t)) }

// Event is a scheduled callback. It is returned by the scheduling methods
// so callers can cancel it later.
type Event struct {
	at     Time
	seq    uint64
	index  int // heap index; -1 when not queued
	fn     func()
	cancel bool
}

// Time returns the virtual time at which the event fires.
func (e *Event) Time() Time { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.cancel }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Simulation is a discrete-event simulator instance.
type Simulation struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
	// processed counts events executed; useful for tests and loop guards.
	processed uint64
	// canceled counts canceled events still occupying queue slots.
	// Cancellation is lazy (O(1)): entries are discarded when they reach
	// the heap head, so every loop that peeks the head must skip them.
	canceled int
}

// New returns a simulation with the clock at zero.
func New() *Simulation {
	return &Simulation{}
}

// Now returns the current virtual time.
func (s *Simulation) Now() Time { return s.now }

// Processed returns the number of events executed so far.
func (s *Simulation) Processed() uint64 { return s.processed }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a model bug.
func (s *Simulation) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, s.now))
	}
	if math.IsNaN(float64(t)) {
		panic("des: scheduling event at NaN time")
	}
	e := &Event{at: t, seq: s.seq, fn: fn, index: -1}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d seconds after the current time. Negative
// delays are clamped to zero.
func (s *Simulation) After(d float64, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+Time(d), fn)
}

// Cancel withdraws a pending event in O(1). The entry stays in the queue
// (marked dead, its callback released) and is discarded when it reaches the
// head. Canceling an already-fired or already-canceled event is a no-op.
func (s *Simulation) Cancel(e *Event) {
	if e == nil || e.cancel {
		return
	}
	e.cancel = true
	e.fn = nil
	if e.index >= 0 {
		s.canceled++
	}
}

// Stop makes Run return after the currently executing event completes.
func (s *Simulation) Stop() { s.stopped = true }

// Pending returns the number of live (non-canceled) events waiting in the
// queue.
func (s *Simulation) Pending() int { return len(s.queue) - s.canceled }

// peek discards canceled entries that have reached the heap head and
// returns the next live event without executing it, or nil when none
// remain. Every deadline or emptiness check must go through peek — reading
// queue[0] directly would see dead entries and mis-gate the loop.
func (s *Simulation) peek() *Event {
	for len(s.queue) > 0 {
		e := s.queue[0]
		if !e.cancel {
			return e
		}
		heap.Pop(&s.queue)
		s.canceled--
	}
	return nil
}

// Step executes the single next live event, advancing the clock to its
// time. It returns false when no live events remain.
func (s *Simulation) Step() bool {
	e := s.peek()
	if e == nil {
		return false
	}
	heap.Pop(&s.queue)
	s.now = e.at
	s.processed++
	e.fn()
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (s *Simulation) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
// Events scheduled exactly at t are executed. The guard peeks the next
// *live* event: a canceled entry sitting at the heap head must not let the
// loop fire an event scheduled past the deadline.
func (s *Simulation) RunUntil(t Time) {
	s.stopped = false
	for !s.stopped {
		e := s.peek()
		if e == nil || e.at > t {
			break
		}
		s.Step()
	}
	if !s.stopped && t > s.now {
		s.now = t
	}
}
