package rng

import (
	"hash/fnv"
	"math"
)

// Stream is a deterministic pseudo-random stream (splitmix64 core, xorshift
// finalizer). It intentionally does not use math/rand so that the sequence
// is stable across Go releases.
type Stream struct {
	seed  uint64
	state uint64
	// spare holds a cached standard normal variate (Box-Muller pairs).
	spare    float64
	hasSpare bool
}

// New returns a stream seeded with the given value.
func New(seed uint64) *Stream {
	return &Stream{seed: seed, state: seed ^ 0x9e3779b97f4a7c15}
}

// Derive returns a new independent stream identified by name, derived from
// the parent stream's seed (not its current state), so derivation order
// does not matter.
func (s *Stream) Derive(name string) *Stream {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return New(s.seed ^ h.Sum64()*0xbf58476d1ce4e5b9)
}

// Uint64 returns the next 64 random bits.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform variate in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Uniform returns a uniform variate in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Exponential returns an exponential variate with the given mean.
func (s *Stream) Exponential(mean float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normal variate with mean mu and standard deviation
// sigma, using the Box-Muller transform.
func (s *Stream) Normal(mu, sigma float64) float64 {
	if s.hasSpare {
		s.hasSpare = false
		return mu + sigma*s.spare
	}
	var u, v, r float64
	for {
		u = 2*s.Float64() - 1
		v = 2*s.Float64() - 1
		r = u*u + v*v
		if r > 0 && r < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(r) / r)
	s.spare = v * f
	s.hasSpare = true
	return mu + sigma*u*f
}

// LogNormal returns a log-normal variate whose underlying normal has mean
// mu and standard deviation sigma.
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// LogNormalMeanCV returns a log-normal variate parameterized by its own
// mean and coefficient of variation (stddev/mean), which is how the
// platform configs express overhead distributions.
func (s *Stream) LogNormalMeanCV(mean, cv float64) float64 {
	if mean <= 0 {
		return 0
	}
	if cv <= 0 {
		return mean
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return s.LogNormal(mu, math.Sqrt(sigma2))
}

// Pareto returns a Pareto variate with scale xm and shape alpha.
func (s *Stream) Pareto(xm, alpha float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Weibull returns a Weibull variate with scale lambda and shape k.
func (s *Stream) Weibull(lambda, k float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return lambda * math.Pow(-math.Log(u), 1/k)
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf samples ranks from a Zipf distribution over {1, ..., n} with
// exponent sExp, using precomputed cumulative weights for O(log n) draws.
type Zipf struct {
	cum []float64
	src *Stream
}

// NewZipf builds a Zipf sampler over n ranks with exponent sExp > 0.
func NewZipf(src *Stream, n int, sExp float64) *Zipf {
	if n <= 0 {
		panic("rng: Zipf with non-positive n")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), sExp)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum, src: src}
}

// Rank returns a rank in [1, n], with rank 1 the most probable.
func (z *Zipf) Rank() int {
	u := z.src.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// ZipfSizes returns n cluster sizes following a Zipf-like rank-size law:
// size(rank r) = max(1, round(c / r^sExp)), where c is chosen so the
// largest size equals maxSize. The result is deterministic (no sampling):
// it is the rank-size profile itself, which is what the workload
// descriptor needs.
func ZipfSizes(n int, sExp float64, maxSize int) []int {
	sizes := make([]int, n)
	for r := 1; r <= n; r++ {
		v := float64(maxSize) / math.Pow(float64(r), sExp)
		iv := int(math.Round(v))
		if iv < 1 {
			iv = 1
		}
		sizes[r-1] = iv
	}
	return sizes
}
