// Package rng provides deterministic random number streams and the
// distributions used by the platform models and the synthetic workload
// generator.
//
// Every stochastic component of the simulator draws from its own named
// Stream derived from a single experiment seed, so adding a new consumer of
// randomness never perturbs the draws seen by existing ones, and repeated
// runs are bit-identical.
package rng
