package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d/100 identical draws across different seeds", same)
	}
}

func TestDeriveIndependentOfDrawOrder(t *testing.T) {
	a := New(99)
	a.Uint64() // advance parent state
	d1 := a.Derive("queue")
	b := New(99)
	d2 := b.Derive("queue")
	for i := 0; i < 10; i++ {
		if d1.Uint64() != d2.Uint64() {
			t.Fatal("Derive depends on parent draw position")
		}
	}
}

func TestDeriveDistinctNames(t *testing.T) {
	p := New(5)
	a, b := p.Derive("alpha"), p.Derive("beta")
	if a.Uint64() == b.Uint64() {
		t.Error("streams derived with different names produced identical first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	s := New(4)
	for i := 0; i < 1000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	s.Intn(0)
}

func TestExponentialMean(t *testing.T) {
	s := New(11)
	const n, mean = 200000, 42.0
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exponential(mean)
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Errorf("sample mean %.2f, want ≈%.1f", got, mean)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(12)
	const n = 200000
	const mu, sigma = 5.0, 2.0
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(mu, sigma)
		sum += v
		sumsq += v * v
	}
	m := sum / n
	sd := math.Sqrt(sumsq/n - m*m)
	if math.Abs(m-mu) > 0.05 {
		t.Errorf("mean %.3f, want ≈%.1f", m, mu)
	}
	if math.Abs(sd-sigma) > 0.05 {
		t.Errorf("stddev %.3f, want ≈%.1f", sd, sigma)
	}
}

func TestLogNormalMeanCV(t *testing.T) {
	s := New(13)
	const n = 300000
	const mean, cv = 300.0, 0.5
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.LogNormalMeanCV(mean, cv)
		if v <= 0 {
			t.Fatalf("non-positive lognormal variate %v", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.03 {
		t.Errorf("sample mean %.2f, want ≈%.0f", got, mean)
	}
}

func TestLogNormalMeanCVDegenerate(t *testing.T) {
	s := New(14)
	if got := s.LogNormalMeanCV(0, 0.5); got != 0 {
		t.Errorf("mean 0 → %v, want 0", got)
	}
	if got := s.LogNormalMeanCV(7, 0); got != 7 {
		t.Errorf("cv 0 → %v, want exactly the mean", got)
	}
}

func TestParetoTail(t *testing.T) {
	s := New(15)
	const xm, alpha = 10.0, 2.0
	for i := 0; i < 10000; i++ {
		if v := s.Pareto(xm, alpha); v < xm {
			t.Fatalf("Pareto variate %v below scale %v", v, xm)
		}
	}
}

func TestWeibullPositive(t *testing.T) {
	s := New(16)
	for i := 0; i < 10000; i++ {
		if v := s.Weibull(5, 1.5); v < 0 {
			t.Fatalf("negative Weibull variate %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(17)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZipfRankRange(t *testing.T) {
	s := New(18)
	z := NewZipf(s, 100, 1.5)
	counts := make([]int, 101)
	for i := 0; i < 50000; i++ {
		r := z.Rank()
		if r < 1 || r > 100 {
			t.Fatalf("rank %d out of [1,100]", r)
		}
		counts[r]++
	}
	if counts[1] <= counts[50] {
		t.Errorf("rank 1 count %d not greater than rank 50 count %d", counts[1], counts[50])
	}
}

func TestZipfSizesShape(t *testing.T) {
	sizes := ZipfSizes(1000, 1.5, 5000)
	if sizes[0] != 5000 {
		t.Errorf("largest size = %d, want 5000", sizes[0])
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > sizes[i-1] {
			t.Fatalf("sizes not nonincreasing at %d: %d > %d", i, sizes[i], sizes[i-1])
		}
	}
	if sizes[len(sizes)-1] < 1 {
		t.Error("smallest size below 1")
	}
}

func TestZipfSizesHeavyTailDominance(t *testing.T) {
	// The mechanism behind the paper's plateau: the largest cluster is a
	// significant fraction of total work even with many clusters.
	sizes := ZipfSizes(20000, 1.55, 4000)
	total := 0
	for _, v := range sizes {
		total += v
	}
	frac := float64(sizes[0]) / float64(total)
	if frac < 0.01 {
		t.Errorf("largest cluster only %.4f of total; tail not heavy enough", frac)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(19)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v", v)
		}
	}
}
