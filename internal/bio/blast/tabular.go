package blast

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Tabular I/O for BLAST outfmt 6: twelve tab-separated columns
//
//	qseqid sseqid pident length mismatch gapopen qstart qend sstart send evalue bitscore
//
// which is the "alignments.out" format blast2cap3 consumes.

// WriteTabular writes hits in outfmt-6 order.
func WriteTabular(w io.Writer, hits []Hit) error {
	bw := bufio.NewWriter(w)
	for _, h := range hits {
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%.2f\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.2e\t%.1f\n",
			h.QueryID, h.SubjectID, h.PercentIdentity, h.Length, h.Mismatches, h.GapOpens,
			h.QStart, h.QEnd, h.SStart, h.SEnd, h.EValue, h.BitScore); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteTabularFile writes hits to the named file.
func WriteTabularFile(path string, hits []Hit) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTabular(f, hits); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ParseTabular reads outfmt-6 records. Blank lines and '#' comments are
// skipped.
func ParseTabular(r io.Reader) ([]Hit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []Hit
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		h, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("blast: line %d: %w", lineNo, err)
		}
		out = append(out, h)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ParseTabularFile reads outfmt-6 records from the named file.
func ParseTabularFile(path string) ([]Hit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseTabular(f)
}

// EachTabular streams hits to fn without materializing the whole file —
// "alignments.out" is 155 MB in the paper's dataset.
func EachTabular(r io.Reader, fn func(Hit) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		h, err := parseLine(line)
		if err != nil {
			return fmt.Errorf("blast: line %d: %w", lineNo, err)
		}
		if err := fn(h); err != nil {
			return err
		}
	}
	return sc.Err()
}

func parseLine(line string) (Hit, error) {
	f := strings.Split(line, "\t")
	if len(f) != 12 {
		return Hit{}, fmt.Errorf("expected 12 tab-separated fields, got %d", len(f))
	}
	var h Hit
	h.QueryID, h.SubjectID = f[0], f[1]
	if h.QueryID == "" || h.SubjectID == "" {
		return Hit{}, fmt.Errorf("empty query or subject ID")
	}
	var err error
	if h.PercentIdentity, err = strconv.ParseFloat(f[2], 64); err != nil {
		return Hit{}, fmt.Errorf("pident: %w", err)
	}
	ints := []*int{&h.Length, &h.Mismatches, &h.GapOpens, &h.QStart, &h.QEnd, &h.SStart, &h.SEnd}
	for i, dst := range ints {
		v, err := strconv.Atoi(f[3+i])
		if err != nil {
			return Hit{}, fmt.Errorf("field %d: %w", 4+i, err)
		}
		*dst = v
	}
	if h.EValue, err = strconv.ParseFloat(f[10], 64); err != nil {
		return Hit{}, fmt.Errorf("evalue: %w", err)
	}
	if h.BitScore, err = strconv.ParseFloat(f[11], 64); err != nil {
		return Hit{}, fmt.Errorf("bitscore: %w", err)
	}
	return h, nil
}
