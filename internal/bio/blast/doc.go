// Package blast implements a BLASTX-style translated search: nucleotide
// queries are translated in six frames and searched against a protein
// database using the classic seed-and-extend pipeline (word seeding with a
// BLOSUM62 neighborhood threshold, ungapped diagonal extension, gapped
// Smith-Waterman around surviving seeds), with Karlin-Altschul e-values.
//
// It produces the tabular ("outfmt 6") records the blast2cap3 pipeline
// consumes as "alignments.out".
package blast
