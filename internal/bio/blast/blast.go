package blast

import (
	"fmt"
	"math"
	"sort"

	"pegflow/internal/bio/align"
)

// Hit is one tabular alignment record (BLAST outfmt 6).
type Hit struct {
	// QueryID and SubjectID name the transcript and the protein.
	QueryID, SubjectID string
	// PercentIdentity is the identity over the alignment, in percent.
	PercentIdentity float64
	// Length is the alignment length in residues.
	Length int
	// Mismatches and GapOpens summarize the alignment.
	Mismatches, GapOpens int
	// QStart/QEnd are 1-based query coordinates in nucleotides;
	// SStart/SEnd are 1-based subject coordinates in residues.
	QStart, QEnd, SStart, SEnd int
	// EValue and BitScore rate the hit.
	EValue, BitScore float64
}

// Params configures the search.
type Params struct {
	// WordSize is the seed length in residues (BLASTX default 3).
	WordSize int
	// NeighborThreshold is the minimum BLOSUM62 word score for a
	// database word to be indexed as a neighbor seed (BLAST's T).
	NeighborThreshold int
	// XDrop stops ungapped extension when the score falls this far
	// below the best seen.
	XDrop int
	// MinUngappedScore gates gapped extension (BLAST's two-hit
	// heuristic is approximated by this score cutoff).
	MinUngappedScore int
	// MaxEValue filters reported hits.
	MaxEValue float64
	// Gap penalties for the gapped stage.
	Gap align.ProteinParams
	// MaxHitsPerQuery caps reported hits per query (0 = unlimited).
	MaxHitsPerQuery int
}

// DefaultParams returns BLASTX-like defaults.
func DefaultParams() Params {
	return Params{
		WordSize:          3,
		NeighborThreshold: 11,
		XDrop:             7,
		MinUngappedScore:  22,
		MaxEValue:         1e-5,
		Gap:               align.DefaultProteinParams(),
		MaxHitsPerQuery:   25,
	}
}

// Karlin-Altschul parameters for BLOSUM62 with gap 11/1 (NCBI gapped
// values).
const (
	kaLambda = 0.267
	kaK      = 0.041
)

// BitScore converts a raw score to bits.
func BitScore(raw int) float64 {
	return (kaLambda*float64(raw) - math.Log(kaK)) / math.Ln2
}

// EValue computes the expected number of alignments with at least the raw
// score in a search space of m×n residues.
func EValue(raw, queryLen, dbLen int) float64 {
	return float64(queryLen) * float64(dbLen) * math.Exp(-kaLambda*float64(raw)+math.Log(kaK))
}

// Protein is one database entry.
type Protein struct {
	ID  string
	Seq []byte
}

// DB is a word-indexed protein database.
type DB struct {
	proteins []Protein
	params   Params
	// index maps a packed word to (protein, position) postings.
	index map[uint32][]posting
	// residues is the database size for e-value computation.
	residues int
}

type posting struct {
	protein int32
	pos     int32
}

// packWord packs up to 5 residues into a uint32 via a 25-symbol alphabet.
func packWord(w []byte) (uint32, bool) {
	var v uint32
	for _, c := range w {
		i := aaCode(c)
		if i < 0 {
			return 0, false
		}
		v = v*25 + uint32(i)
	}
	return v, true
}

func aaCode(c byte) int {
	switch c {
	case 'A':
		return 0
	case 'R':
		return 1
	case 'N':
		return 2
	case 'D':
		return 3
	case 'C':
		return 4
	case 'Q':
		return 5
	case 'E':
		return 6
	case 'G':
		return 7
	case 'H':
		return 8
	case 'I':
		return 9
	case 'L':
		return 10
	case 'K':
		return 11
	case 'M':
		return 12
	case 'F':
		return 13
	case 'P':
		return 14
	case 'S':
		return 15
	case 'T':
		return 16
	case 'W':
		return 17
	case 'Y':
		return 18
	case 'V':
		return 19
	default:
		return -1
	}
}

// NewDB indexes the given proteins.
func NewDB(proteins []Protein, p Params) (*DB, error) {
	if p.WordSize < 2 || p.WordSize > 5 {
		return nil, fmt.Errorf("blast: word size %d outside [2,5]", p.WordSize)
	}
	db := &DB{proteins: proteins, params: p, index: make(map[uint32][]posting)}
	for pi, prot := range proteins {
		if prot.ID == "" {
			return nil, fmt.Errorf("blast: protein %d with empty ID", pi)
		}
		db.residues += len(prot.Seq)
		for i := 0; i+p.WordSize <= len(prot.Seq); i++ {
			w, ok := packWord(prot.Seq[i : i+p.WordSize])
			if !ok {
				continue
			}
			db.index[w] = append(db.index[w], posting{int32(pi), int32(i)})
		}
	}
	return db, nil
}

// Len returns the number of proteins.
func (db *DB) Len() int { return len(db.proteins) }

// Residues returns the total residue count.
func (db *DB) Residues() int { return db.residues }

// Search runs the translated query against the database.
func (db *DB) Search(queryID string, dna []byte) ([]Hit, error) {
	p := db.params
	type key struct {
		protein int32
		frame   int8
	}
	// Best raw alignment per (protein, frame) pair.
	best := make(map[key]align.Result)

	for frame := 0; frame < 6; frame++ {
		prot, err := translate(dna, frame)
		if err != nil {
			return nil, err
		}
		if len(prot) < p.WordSize {
			continue
		}
		seen := make(map[key]bool)
		for qi := 0; qi+p.WordSize <= len(prot); qi++ {
			word := prot[qi : qi+p.WordSize]
			w, ok := packWord(word)
			if !ok {
				continue
			}
			// Self-score gate: skip low-complexity words whose
			// self-score cannot reach the neighbor threshold.
			if wordScore(word, word) < p.NeighborThreshold {
				continue
			}
			for _, post := range db.index[w] {
				k := key{post.protein, int8(frame)}
				if seen[k] {
					continue
				}
				subj := db.proteins[post.protein].Seq
				// Ungapped extension around the seed.
				raw := extendUngapped(prot, subj, qi, int(post.pos), p.WordSize, p.XDrop)
				if raw < p.MinUngappedScore {
					continue
				}
				seen[k] = true
				r := align.LocalProtein(prot, subj, p.Gap)
				if r.Score <= 0 {
					continue
				}
				if old, ok := best[k]; !ok || r.Score > old.Score {
					best[k] = r
				}
			}
		}
		// Convert frame-local results into hits lazily below; store
		// the frame in the key.
	}

	var hits []Hit
	for k, r := range best {
		ev := EValue(r.Score, len(dna), db.residues)
		if ev > p.MaxEValue {
			continue
		}
		h := Hit{
			QueryID:         queryID,
			SubjectID:       db.proteins[k.protein].ID,
			PercentIdentity: 100 * r.Identity(),
			Length:          r.Length,
			Mismatches:      r.Length - r.Matches, // includes gap columns, as in practice rare
			SStart:          r.BStart + 1,
			SEnd:            r.BEnd,
			EValue:          ev,
			BitScore:        BitScore(r.Score),
		}
		h.QStart, h.QEnd = nucCoords(int(k.frame), len(dna), r.AStart, r.AEnd)
		hits = append(hits, h)
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].BitScore != hits[j].BitScore {
			return hits[i].BitScore > hits[j].BitScore
		}
		if hits[i].SubjectID != hits[j].SubjectID {
			return hits[i].SubjectID < hits[j].SubjectID
		}
		// Same subject in two frames with equal score: order by query
		// coordinates so results never depend on map iteration order.
		return hits[i].QStart < hits[j].QStart
	})
	if p.MaxHitsPerQuery > 0 && len(hits) > p.MaxHitsPerQuery {
		hits = hits[:p.MaxHitsPerQuery]
	}
	return hits, nil
}

// translate wraps seq.Translate without importing it here to avoid an
// import cycle risk; defined in translate.go.

// wordScore scores two equal-length words under BLOSUM62.
func wordScore(a, b []byte) int {
	s := 0
	for i := range a {
		s += align.Blosum62(a[i], b[i])
	}
	return s
}

// extendUngapped extends a seed along its diagonal in both directions with
// an X-drop cutoff, returning the best score.
func extendUngapped(q, s []byte, qi, si, w, xdrop int) int {
	score := wordScore(q[qi:qi+w], s[si:si+w])
	best := score
	// Right.
	i, j := qi+w, si+w
	cur := score
	for i < len(q) && j < len(s) {
		cur += align.Blosum62(q[i], s[j])
		if cur > best {
			best = cur
		}
		if best-cur > xdrop {
			break
		}
		i++
		j++
	}
	// Left.
	cur = best
	i, j = qi-1, si-1
	for i >= 0 && j >= 0 {
		cur += align.Blosum62(q[i], s[j])
		if cur > best {
			best = cur
		}
		if best-cur > xdrop {
			break
		}
		i--
		j--
	}
	return best
}

// nucCoords converts 0-based protein alignment coordinates in a frame to
// 1-based nucleotide coordinates on the original query (BLASTX reports
// reverse-frame hits with QStart > QEnd).
func nucCoords(frame, dnaLen, aStart, aEnd int) (int, int) {
	if frame < 3 {
		start := frame + 3*aStart + 1
		end := frame + 3*aEnd
		return start, end
	}
	off := frame - 3
	// Position p in the reverse-complement maps to dnaLen-p on the
	// forward strand.
	start := dnaLen - (off + 3*aStart)
	end := dnaLen - (off + 3*aEnd) + 1
	return start, end
}
