package blast

import (
	"fmt"
	"testing"

	"pegflow/internal/bio/seq"
)

// bigDB builds a database of many similar proteins so one query hits all.
func bigDB(t *testing.T, n int) *DB {
	t.Helper()
	var prots []Protein
	base := []byte(testProtein + testProtein)
	for i := 0; i < n; i++ {
		p := append([]byte(nil), base...)
		// Vary one residue so entries are distinct but all similar.
		p[len(p)-1] = "ACDEFGHIKLMNPQRSTVWY"[i%20]
		prots = append(prots, Protein{ID: fmt.Sprintf("p%03d", i), Seq: p})
	}
	params := DefaultParams()
	params.MaxHitsPerQuery = 5
	db, err := NewDB(prots, params)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestMaxHitsPerQueryCap(t *testing.T) {
	db := bigDB(t, 30)
	dna := reverseTranslate(t, testProtein+testProtein)
	hits, err := db.Search("q", dna)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 5 {
		t.Fatalf("hits = %d, want capped at 5", len(hits))
	}
	// The cap keeps the best-scoring hits.
	for i := 1; i < len(hits); i++ {
		if hits[i].BitScore > hits[i-1].BitScore {
			t.Errorf("hits not sorted by bit score: %v then %v",
				hits[i-1].BitScore, hits[i].BitScore)
		}
	}
}

func TestMaxEValueFilter(t *testing.T) {
	params := DefaultParams()
	params.MaxEValue = 1e-300 // virtually nothing passes
	db, err := NewDB([]Protein{{ID: "p", Seq: []byte(testProtein)}}, params)
	if err != nil {
		t.Fatal(err)
	}
	dna := reverseTranslate(t, testProtein)
	hits, err := db.Search("q", dna)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Errorf("hits above the e-value bar: %d", len(hits))
	}
}

func TestSearchEmptyQueryAndShort(t *testing.T) {
	db := testDB(t)
	hits, err := db.Search("empty", nil)
	if err != nil || len(hits) != 0 {
		t.Errorf("empty query: %v, %v", hits, err)
	}
	hits, err = db.Search("short", []byte("ACG"))
	if err != nil || len(hits) != 0 {
		t.Errorf("3-base query: %v, %v", hits, err)
	}
}

func TestSearchDeterministicOrder(t *testing.T) {
	db := bigDB(t, 10)
	dna := reverseTranslate(t, testProtein+testProtein)
	a, err := db.Search("q", dna)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.Search("q", dna)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("non-deterministic hit count")
	}
	for i := range a {
		if a[i].SubjectID != b[i].SubjectID {
			t.Fatal("non-deterministic hit order")
		}
	}
}

func TestPackWordRejectsAmbiguous(t *testing.T) {
	if _, ok := packWord([]byte("MKX")); ok {
		t.Error("word containing X indexed")
	}
	if _, ok := packWord([]byte("MK*")); ok {
		t.Error("word containing stop indexed")
	}
	if v, ok := packWord([]byte("MKV")); !ok || v == 0 {
		t.Error("valid word rejected")
	}
}

func TestQueryWithNs(t *testing.T) {
	db := testDB(t)
	dna := reverseTranslate(t, testProtein)
	// Sprinkle Ns: translation yields X residues; search must not
	// crash and should still find the protein via clean stretches.
	dna[3] = 'N'
	hits, err := db.Search("with_ns", dna)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Error("query with one N lost entirely")
	}
}

func TestHitSpansMostOfProtein(t *testing.T) {
	db := testDB(t)
	dna := reverseTranslate(t, testProtein)
	hits, err := db.Search("q", dna)
	if err != nil || len(hits) == 0 {
		t.Fatalf("hits=%v err=%v", hits, err)
	}
	top := hits[0]
	if top.SEnd-top.SStart+1 < len(testProtein)-2 {
		t.Errorf("subject span %d..%d too short", top.SStart, top.SEnd)
	}
	// Sanity on translation consistency: aligning the hit frame
	// reproduces ≥ the protein's residues.
	frames, err := seq.SixFrames(dna)
	if err != nil {
		t.Fatal(err)
	}
	if string(frames[0]) != testProtein {
		t.Errorf("frame 0 = %q", frames[0])
	}
}
