package blast

import "pegflow/internal/bio/seq"

// translate adapts seq.Translate for the search pipeline.
func translate(dna []byte, frame int) ([]byte, error) {
	return seq.Translate(dna, frame)
}
