package blast

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"pegflow/internal/bio/seq"
)

// reverseTranslate builds a DNA sequence coding for the given protein
// using the first codon of each residue.
func reverseTranslate(t *testing.T, prot string) []byte {
	t.Helper()
	var dna []byte
	for i := 0; i < len(prot); i++ {
		codons := seq.CodonsFor(prot[i])
		if len(codons) == 0 {
			t.Fatalf("no codon for %c", prot[i])
		}
		dna = append(dna, codons[0]...)
	}
	return dna
}

const testProtein = "MKVLAWQHGERTYIPDNFCS"

func testDB(t *testing.T) *DB {
	t.Helper()
	db, err := NewDB([]Protein{
		{ID: "prot1", Seq: []byte(testProtein)},
		{ID: "prot2", Seq: []byte("WWWWWPPPPPGGGGGHHHHH")},
		{ID: "prot3", Seq: []byte(testProtein + "AAAAKKKK")},
	}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSearchFindsCodingQuery(t *testing.T) {
	db := testDB(t)
	dna := reverseTranslate(t, testProtein)
	hits, err := db.Search("tr1", dna)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits for perfectly coding query")
	}
	// prot1 or prot3 (superstring) must be the top hit.
	top := hits[0]
	if top.SubjectID != "prot1" && top.SubjectID != "prot3" {
		t.Errorf("top hit = %s", top.SubjectID)
	}
	if top.PercentIdentity < 99 {
		t.Errorf("identity = %.1f, want ≈100", top.PercentIdentity)
	}
	if top.Length < len(testProtein) {
		t.Errorf("alignment length = %d, want ≥ %d", top.Length, len(testProtein))
	}
	if top.EValue > 1e-5 {
		t.Errorf("evalue = %g", top.EValue)
	}
	found2 := false
	for _, h := range hits {
		if h.SubjectID == "prot2" {
			found2 = true
		}
	}
	if found2 {
		t.Error("dissimilar protein reported as hit")
	}
}

func TestSearchReverseStrand(t *testing.T) {
	db := testDB(t)
	dna := reverseTranslate(t, testProtein)
	rc := seq.ReverseComplement(dna)
	hits, err := db.Search("tr_rc", rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits on reverse strand")
	}
	top := hits[0]
	if top.PercentIdentity < 99 {
		t.Errorf("identity = %.1f", top.PercentIdentity)
	}
	// BLASTX convention: reverse-frame hits have QStart > QEnd.
	if top.QStart <= top.QEnd {
		t.Errorf("reverse hit coords = %d..%d, want QStart > QEnd", top.QStart, top.QEnd)
	}
}

func TestSearchForwardCoords(t *testing.T) {
	db := testDB(t)
	// Prepend 4 bases so the coding region starts at nucleotide 5
	// (frame 1).
	dna := append([]byte("GGGG"), reverseTranslate(t, testProtein)...)
	hits, err := db.Search("tr_off", dna)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	top := hits[0]
	if top.QStart > top.QEnd {
		t.Fatalf("forward hit has reversed coords: %d..%d", top.QStart, top.QEnd)
	}
	if top.QStart < 1 || top.QEnd > len(dna) {
		t.Errorf("coords out of range: %d..%d (len %d)", top.QStart, top.QEnd, len(dna))
	}
	// The aligned region must cover most of the coding part.
	if span := top.QEnd - top.QStart + 1; span < 3*(len(testProtein)-2) {
		t.Errorf("span = %d nt", span)
	}
}

func TestSearchNoHitForRandomDNA(t *testing.T) {
	db := testDB(t)
	// Low-complexity non-coding junk.
	dna := bytes.Repeat([]byte("AT"), 60)
	hits, err := db.Search("junk", dna)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Errorf("junk query produced %d hits", len(hits))
	}
}

func TestSearchMutatedQueryStillFound(t *testing.T) {
	db := testDB(t)
	dna := reverseTranslate(t, testProtein)
	// Mutate a codon's third positions (often synonymous) and one
	// residue outright.
	dna[5] = 'A'
	dna[29] = 'C'
	hits, err := db.Search("tr_mut", dna)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("mutated query lost")
	}
	if hits[0].PercentIdentity < 80 {
		t.Errorf("identity = %.1f", hits[0].PercentIdentity)
	}
}

func TestNewDBValidation(t *testing.T) {
	if _, err := NewDB([]Protein{{ID: "p", Seq: []byte("MK")}}, Params{WordSize: 1}); err == nil {
		t.Error("word size 1 accepted")
	}
	if _, err := NewDB([]Protein{{Seq: []byte("MK")}}, DefaultParams()); err == nil {
		t.Error("empty protein ID accepted")
	}
	db, err := NewDB(nil, DefaultParams())
	if err != nil || db.Len() != 0 || db.Residues() != 0 {
		t.Errorf("empty DB: %v", err)
	}
}

func TestBitScoreEValueMonotone(t *testing.T) {
	if BitScore(100) <= BitScore(50) {
		t.Error("bit score not monotone")
	}
	if EValue(100, 1000, 1e6) >= EValue(50, 1000, 1e6) {
		t.Error("evalue not decreasing in score")
	}
	// Doubling the search space doubles E.
	a := EValue(60, 1000, 1e6)
	b := EValue(60, 2000, 1e6)
	if math.Abs(b/a-2) > 1e-9 {
		t.Errorf("evalue scaling = %v", b/a)
	}
}

func TestTabularRoundTrip(t *testing.T) {
	hits := []Hit{
		{QueryID: "tr1", SubjectID: "prot1", PercentIdentity: 98.25, Length: 120,
			Mismatches: 2, GapOpens: 1, QStart: 3, QEnd: 362, SStart: 1, SEnd: 120,
			EValue: 1.5e-30, BitScore: 250.3},
		{QueryID: "tr2", SubjectID: "prot9", PercentIdentity: 77.5, Length: 40,
			QStart: 120, QEnd: 1, SStart: 5, SEnd: 44, EValue: 2e-8, BitScore: 61.2},
	}
	var buf bytes.Buffer
	if err := WriteTabular(&buf, hits); err != nil {
		t.Fatal(err)
	}
	got, err := ParseTabular(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("records = %d", len(got))
	}
	if got[0].QueryID != "tr1" || got[0].SubjectID != "prot1" ||
		got[0].Length != 120 || got[0].Mismatches != 2 || got[0].GapOpens != 1 ||
		got[0].QStart != 3 || got[0].QEnd != 362 {
		t.Errorf("record 0 = %+v", got[0])
	}
	if math.Abs(got[0].PercentIdentity-98.25) > 1e-9 {
		t.Errorf("pident = %v", got[0].PercentIdentity)
	}
	if math.Abs(got[0].EValue-1.5e-30)/1.5e-30 > 0.01 {
		t.Errorf("evalue = %v", got[0].EValue)
	}
	if got[1].QStart != 120 || got[1].QEnd != 1 {
		t.Errorf("reverse coords not preserved: %+v", got[1])
	}
}

func TestParseTabularSkipsCommentsAndBlank(t *testing.T) {
	in := "# comment\n\ntr1\tp1\t100.00\t10\t0\t0\t1\t30\t1\t10\t1e-10\t50.0\n"
	hits, err := ParseTabular(strings.NewReader(in))
	if err != nil || len(hits) != 1 {
		t.Fatalf("hits = %v, err = %v", hits, err)
	}
}

func TestParseTabularErrors(t *testing.T) {
	bad := []string{
		"tr1\tp1\t100.0\n",
		"tr1\tp1\tabc\t10\t0\t0\t1\t30\t1\t10\t1e-10\t50.0\n",
		"\tp1\t100.0\t10\t0\t0\t1\t30\t1\t10\t1e-10\t50.0\n",
		"tr1\tp1\t100.0\t10\t0\t0\tx\t30\t1\t10\t1e-10\t50.0\n",
		"tr1\tp1\t100.0\t10\t0\t0\t1\t30\t1\t10\tnope\t50.0\n",
	}
	for i, in := range bad {
		if _, err := ParseTabular(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: bad line accepted", i)
		}
	}
}

func TestEachTabularStreams(t *testing.T) {
	var buf bytes.Buffer
	want := []Hit{
		{QueryID: "a", SubjectID: "p", PercentIdentity: 90, Length: 5, QStart: 1, QEnd: 15, SStart: 1, SEnd: 5, EValue: 1e-6, BitScore: 30},
		{QueryID: "b", SubjectID: "q", PercentIdentity: 95, Length: 8, QStart: 1, QEnd: 24, SStart: 1, SEnd: 8, EValue: 1e-9, BitScore: 40},
	}
	if err := WriteTabular(&buf, want); err != nil {
		t.Fatal(err)
	}
	var ids []string
	if err := EachTabular(&buf, func(h Hit) error {
		ids = append(ids, h.QueryID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Errorf("ids = %v", ids)
	}
}

func TestNucCoords(t *testing.T) {
	// Frame 0, protein positions [0,2) → nucleotides 1..6.
	s, e := nucCoords(0, 30, 0, 2)
	if s != 1 || e != 6 {
		t.Errorf("frame0 = %d..%d", s, e)
	}
	// Frame 1 shifts by one nucleotide.
	s, e = nucCoords(1, 30, 0, 2)
	if s != 2 || e != 7 {
		t.Errorf("frame1 = %d..%d", s, e)
	}
	// Reverse frame: coordinates descend.
	s, e = nucCoords(3, 30, 0, 2)
	if s != 30 || e != 25 {
		t.Errorf("frame3 = %d..%d", s, e)
	}
}
