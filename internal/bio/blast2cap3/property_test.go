package blast2cap3

import (
	"testing"
	"testing/quick"

	"pegflow/internal/bio/cap3"
	"pegflow/internal/bio/datagen"
	"pegflow/internal/sim/rng"
)

// Property: conservation of transcripts — every input transcript appears
// in the final assembly exactly once, either inside a contig's joined set
// or as a passthrough record, for any dataset shape and chunk count.
func TestPropertyTranscriptConservation(t *testing.T) {
	f := func(seedRaw uint16, nRaw, proteinsRaw uint8) bool {
		cfg := datagen.DefaultConfig(uint64(seedRaw) + 1)
		cfg.Proteins = int(proteinsRaw%6) + 2
		cfg.NoiseTranscripts = int(proteinsRaw % 4)
		cfg.ClusterSizes = rng.ZipfSizes(cfg.Proteins, 1.0, 6)
		ds, err := datagen.Generate(cfg)
		if err != nil {
			return false
		}
		n := int(nRaw%10) + 1
		res, err := RunParallel(ds.Transcripts, ds.TruthHits, n, cap3.DefaultParams())
		if err != nil {
			return false
		}
		// Count coverage: passthrough records by ID, joined by count.
		inAssembly := make(map[string]bool)
		for _, rec := range res.Assembly {
			inAssembly[rec.ID] = true
		}
		covered := 0
		for _, tr := range ds.Transcripts {
			if inAssembly[tr.ID] {
				covered++
			}
		}
		// covered = transcripts passed through; joined = merged away.
		return covered+res.Joined == len(ds.Transcripts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// Property: the assembly never grows relative to the input.
func TestPropertyAssemblyNeverGrows(t *testing.T) {
	f := func(seedRaw uint16) bool {
		ds, err := datagen.Generate(datagen.DefaultConfig(uint64(seedRaw) + 100))
		if err != nil {
			return false
		}
		res, err := RunSerial(ds.Transcripts, ds.TruthHits, cap3.DefaultParams())
		if err != nil {
			return false
		}
		return len(res.Assembly) <= len(ds.Transcripts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// Property: clustering by protein covers every hit query exactly once.
func TestPropertyClusterPartition(t *testing.T) {
	f := func(seedRaw uint16) bool {
		ds, err := datagen.Generate(datagen.DefaultConfig(uint64(seedRaw) + 500))
		if err != nil {
			return false
		}
		clusters, err := ClusterByProtein(ds.TruthHits)
		if err != nil {
			return false
		}
		seen := make(map[string]int)
		for _, c := range clusters {
			for _, id := range c.TranscriptIDs {
				seen[id]++
			}
		}
		queries := make(map[string]bool)
		for _, h := range ds.TruthHits {
			queries[h.QueryID] = true
		}
		if len(seen) != len(queries) {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
