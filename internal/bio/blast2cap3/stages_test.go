package blast2cap3

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pegflow/internal/bio/blast"
	"pegflow/internal/bio/cap3"
	"pegflow/internal/bio/datagen"
	"pegflow/internal/bio/fasta"
	"pegflow/internal/catalog"
	"pegflow/internal/engine"
	"pegflow/internal/planner"
	"pegflow/internal/workflow"
)

// writeInputs materializes a synthetic dataset as the two workflow input
// files.
func writeInputs(t *testing.T, dir string, ds *datagen.Dataset) {
	t.Helper()
	if err := fasta.WriteFile(filepath.Join(dir, "transcripts.fasta"), ds.Transcripts); err != nil {
		t.Fatal(err)
	}
	if err := blast.WriteTabularFile(filepath.Join(dir, "alignments.out"), ds.TruthHits); err != nil {
		t.Fatal(err)
	}
}

func TestStagesPipelineMatchesRunSerial(t *testing.T) {
	ds, err := datagen.Generate(datagen.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	writeInputs(t, dir, ds)
	const n = 3
	params := cap3.DefaultParams()

	// Run the stages by hand in dependency order.
	if err := StageCreateListTranscripts(dir, "transcripts.fasta", "transcripts_dict.txt"); err != nil {
		t.Fatal(err)
	}
	if err := StageCreateListAlignments(dir, "alignments.out", "alignments_list.txt"); err != nil {
		t.Fatal(err)
	}
	if err := StageSplit(dir, "alignments.out", n); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if err := StageRunCAP3(dir, "transcripts_dict.txt",
			filepath.Join(dir, "protein_"+itoa(i)+".txt")[len(dir)+1:],
			"joined_"+itoa(i)+".fasta", params); err != nil {
			t.Fatal(err)
		}
	}
	if err := StageMerge(dir, n, "joined_all.fasta"); err != nil {
		t.Fatal(err)
	}
	if err := StageMergeNotJoined(dir, "joined_all.fasta", "transcripts_dict.txt", "final_assembly.fasta"); err != nil {
		t.Fatal(err)
	}

	got, err := fasta.ReadFile(filepath.Join(dir, "final_assembly.fasta"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunSerial(ds.Transcripts, ds.TruthHits, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want.Assembly) {
		t.Fatalf("file pipeline produced %d records, serial %d", len(got), len(want.Assembly))
	}
	for i := range got {
		if got[i].ID != want.Assembly[i].ID || !bytes.Equal(got[i].Seq, want.Assembly[i].Seq) {
			t.Fatalf("record %d differs: %s vs %s", i, got[i].ID, want.Assembly[i].ID)
		}
	}
}

func itoa(i int) string { return string(rune('0' + i)) }

// TestWorkflowEndToEndLocalExecutor is the golden integration test: build
// the same abstract DAX the paper's experiments use, plan it for a local
// site, execute it with the real transformation registry under the
// DAGMan-style engine, and check the final assembly equals the serial
// reference.
func TestWorkflowEndToEndLocalExecutor(t *testing.T) {
	ds, err := datagen.Generate(datagen.DefaultConfig(31))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	writeInputs(t, dir, ds)

	const n = 4
	abstract, err := workflow.BuildDAX(workflow.BuilderConfig{N: n})
	if err != nil {
		t.Fatal(err)
	}
	sc := catalog.NewSiteCatalog()
	if err := sc.Add(&catalog.Site{Name: "local", Slots: 4, SpeedFactor: 1, SharedSoftware: true}); err != nil {
		t.Fatal(err)
	}
	tc := catalog.NewTransformationCatalog()
	for _, tr := range workflow.Transformations() {
		if err := tc.Add(&catalog.Transformation{Name: tr, Site: "local", Installed: true}); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := planner.New(abstract, planner.Catalogs{
		Sites: sc, Transformations: tc, Replicas: catalog.NewReplicaCatalog(),
	}, planner.Options{Site: "local"})
	if err != nil {
		t.Fatal(err)
	}
	ex := engine.NewLocalExecutor(Registry(cap3.DefaultParams()), dir, 4)
	res, err := engine.Run(plan, ex, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		for _, r := range res.Log.Failures() {
			t.Logf("failure: %s: %s", r.JobID, r.ExitMessage)
		}
		t.Fatalf("workflow failed: unfinished %v", res.Unfinished)
	}
	if res.Log.Len() != n+5 {
		t.Errorf("attempts = %d, want %d", res.Log.Len(), n+5)
	}

	got, err := fasta.ReadFile(filepath.Join(dir, "final_assembly.fasta"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunSerial(ds.Transcripts, ds.TruthHits, cap3.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want.Assembly) {
		t.Fatalf("workflow produced %d records, serial %d", len(got), len(want.Assembly))
	}
	for i := range got {
		if got[i].ID != want.Assembly[i].ID || !bytes.Equal(got[i].Seq, want.Assembly[i].Seq) {
			t.Fatalf("record %d differs: %s vs %s", i, got[i].ID, want.Assembly[i].ID)
		}
	}
	// Intermediate artifacts must exist (protein chunks, joined files).
	for i := 1; i <= n; i++ {
		for _, name := range []string{"protein_", "joined_"} {
			ext := ".txt"
			if name == "joined_" {
				ext = ".fasta"
			}
			if _, err := os.Stat(filepath.Join(dir, name+itoa(i)+ext)); err != nil {
				t.Errorf("missing intermediate %s%d%s: %v", name, i, ext, err)
			}
		}
	}
}

func TestStageSplitPreservesAllClusters(t *testing.T) {
	ds, err := datagen.Generate(datagen.DefaultConfig(77))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	writeInputs(t, dir, ds)
	const n = 3
	if err := StageSplit(dir, "alignments.out", n); err != nil {
		t.Fatal(err)
	}
	// Every transcript with a hit appears in exactly one chunk file.
	seen := map[string]int{}
	for i := 1; i <= n; i++ {
		hits, err := blast.ParseTabularFile(filepath.Join(dir, "protein_"+itoa(i)+".txt"))
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range hits {
			seen[h.QueryID]++
		}
	}
	clusters, err := ClusterByProtein(ds.TruthHits)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range clusters {
		total += len(c.TranscriptIDs)
		for _, id := range c.TranscriptIDs {
			if seen[id] != 1 {
				t.Errorf("transcript %s appears %d times across chunks", id, seen[id])
			}
		}
	}
	if len(seen) != total {
		t.Errorf("chunk files carry %d transcripts, clusters have %d", len(seen), total)
	}
}

func TestStageErrorsOnMissingFiles(t *testing.T) {
	dir := t.TempDir()
	if err := StageCreateListTranscripts(dir, "missing.fasta", "out"); err == nil {
		t.Error("missing transcripts accepted")
	}
	if err := StageSplit(dir, "missing.out", 2); err == nil {
		t.Error("missing alignments accepted")
	}
	if err := StageSplit(dir, "missing.out", 0); err == nil {
		t.Error("n=0 accepted")
	}
	if err := StageRunCAP3(dir, "no_dict", "no_chunk", "out", cap3.DefaultParams()); err == nil {
		t.Error("missing dict accepted")
	}
	if err := StageMerge(dir, 1, "out"); err == nil {
		t.Error("missing joined file accepted")
	}
	if err := StageMergeNotJoined(dir, "no_joined", "no_dict", "out"); err == nil {
		t.Error("missing inputs accepted")
	}
}

func TestRegistryCoversAllTransformations(t *testing.T) {
	reg := Registry(cap3.DefaultParams())
	for _, tr := range workflow.Transformations() {
		if _, ok := reg[tr]; !ok {
			t.Errorf("registry missing transformation %q", tr)
		}
	}
	// Argument validation paths.
	bad := &engine.TaskContext{Args: []string{"x"}, WorkDir: t.TempDir()}
	for name, fn := range reg {
		if err := fn(bad); err == nil {
			t.Errorf("%s accepted bad args", name)
		}
	}
}
