package blast2cap3

import (
	"bytes"
	"fmt"
	"testing"

	"pegflow/internal/bio/blast"
	"pegflow/internal/bio/cap3"
	"pegflow/internal/bio/datagen"
	"pegflow/internal/bio/fasta"
)

func hit(q, s string, bits float64) blast.Hit {
	return blast.Hit{QueryID: q, SubjectID: s, PercentIdentity: 95, Length: 50,
		QStart: 1, QEnd: 150, SStart: 1, SEnd: 50, EValue: 1e-20, BitScore: bits}
}

func TestClusterByProteinBestHitWins(t *testing.T) {
	hits := []blast.Hit{
		hit("tr1", "protA", 100),
		hit("tr1", "protB", 200), // better
		hit("tr2", "protB", 90),
		hit("tr3", "protA", 50),
	}
	clusters, err := ClusterByProtein(hits)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d", len(clusters))
	}
	// Sorted by protein: protA then protB.
	if clusters[0].Protein != "protA" || len(clusters[0].TranscriptIDs) != 1 ||
		clusters[0].TranscriptIDs[0] != "tr3" {
		t.Errorf("protA cluster = %+v", clusters[0])
	}
	if clusters[1].Protein != "protB" || len(clusters[1].TranscriptIDs) != 2 {
		t.Errorf("protB cluster = %+v", clusters[1])
	}
}

func TestClusterByProteinTieBreaksDeterministically(t *testing.T) {
	hits := []blast.Hit{hit("tr1", "protB", 100), hit("tr1", "protA", 100)}
	clusters, err := ClusterByProtein(hits)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 || clusters[0].Protein != "protA" {
		t.Errorf("tie did not break to lexicographically first: %+v", clusters)
	}
}

func TestClusterByProteinRejectsEmptyIDs(t *testing.T) {
	if _, err := ClusterByProtein([]blast.Hit{{QueryID: "", SubjectID: "p"}}); err == nil {
		t.Error("empty query accepted")
	}
}

func TestSplitClustersRoundRobin(t *testing.T) {
	var clusters []Cluster
	for i := 0; i < 10; i++ {
		clusters = append(clusters, Cluster{Protein: fmt.Sprintf("p%02d", i)})
	}
	chunks, err := SplitClusters(clusters, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 3 {
		t.Fatalf("chunks = %d", len(chunks))
	}
	if len(chunks[0]) != 4 || len(chunks[1]) != 3 || len(chunks[2]) != 3 {
		t.Errorf("chunk sizes = %d/%d/%d", len(chunks[0]), len(chunks[1]), len(chunks[2]))
	}
	if chunks[0][0].Protein != "p00" || chunks[1][0].Protein != "p01" {
		t.Errorf("assignment not round-robin")
	}
	if _, err := SplitClusters(clusters, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestSplitClustersMoreChunksThanClusters(t *testing.T) {
	chunks, err := SplitClusters([]Cluster{{Protein: "p"}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, c := range chunks {
		if len(c) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Errorf("non-empty chunks = %d", nonEmpty)
	}
}

func TestRunSerialOnSyntheticData(t *testing.T) {
	ds, err := datagen.Generate(datagen.DefaultConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSerial(ds.Transcripts, ds.TruthHits, cap3.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Contigs == 0 {
		t.Fatal("no contigs assembled from clustered synthetic data")
	}
	if res.Joined < 2*res.Contigs {
		t.Errorf("joined = %d for %d contigs", res.Joined, res.Contigs)
	}
	// The assembly must shrink relative to the input (the paper cites
	// 8-9% for wheat; our synthetic clusters shrink far more).
	if len(res.Assembly) >= len(ds.Transcripts) {
		t.Errorf("assembly size %d not below input %d", len(res.Assembly), len(ds.Transcripts))
	}
	if res.ReductionFraction(len(ds.Transcripts)) <= 0 {
		t.Error("no reduction")
	}
	// Noise transcripts must pass through untouched.
	found := 0
	for _, rec := range res.Assembly {
		if len(rec.ID) >= 8 && rec.ID[:8] == "tr_noise" {
			found++
		}
	}
	if found != 5 {
		t.Errorf("noise passthrough = %d, want 5", found)
	}
}

func TestRunParallelEquivalentToSerialForAnyN(t *testing.T) {
	ds, err := datagen.Generate(datagen.DefaultConfig(23))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunSerial(ds.Transcripts, ds.TruthHits, cap3.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3, 7, 50} {
		par, err := RunParallel(ds.Transcripts, ds.TruthHits, n, cap3.DefaultParams())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if par.Contigs != serial.Contigs || par.Joined != serial.Joined {
			t.Errorf("n=%d: contigs/joined = %d/%d, serial %d/%d",
				n, par.Contigs, par.Joined, serial.Contigs, serial.Joined)
		}
		if len(par.Assembly) != len(serial.Assembly) {
			t.Fatalf("n=%d: assembly size %d != serial %d", n, len(par.Assembly), len(serial.Assembly))
		}
		for i := range par.Assembly {
			if par.Assembly[i].ID != serial.Assembly[i].ID ||
				!bytes.Equal(par.Assembly[i].Seq, serial.Assembly[i].Seq) {
				t.Fatalf("n=%d: assembly record %d differs (%s vs %s)",
					n, i, par.Assembly[i].ID, serial.Assembly[i].ID)
			}
		}
	}
}

func TestAssembleChunkUnknownTranscript(t *testing.T) {
	chunk := []Cluster{{Protein: "p", TranscriptIDs: []string{"ghost", "ghost2"}}}
	_, _, err := AssembleChunk(chunk, map[string]*fasta.Record{}, cap3.DefaultParams())
	if err == nil {
		t.Error("unknown transcript accepted")
	}
}

func TestMergeNotJoinedPassthrough(t *testing.T) {
	contigs := []*fasta.Record{{ID: "c1", Seq: []byte("ACGT")}}
	transcripts := []*fasta.Record{
		{ID: "a", Seq: []byte("AA")},
		{ID: "b", Seq: []byte("CC")},
		{ID: "c", Seq: []byte("GG")},
	}
	out := MergeNotJoined(contigs, transcripts, []string{"b"})
	if len(out) != 3 {
		t.Fatalf("out = %d records", len(out))
	}
	ids := []string{out[0].ID, out[1].ID, out[2].ID}
	if ids[0] != "c1" || ids[1] != "a" || ids[2] != "c" {
		t.Errorf("ids = %v", ids)
	}
}

func TestRunSerialDuplicateTranscript(t *testing.T) {
	trs := []*fasta.Record{{ID: "a", Seq: []byte("ACGT")}, {ID: "a", Seq: []byte("ACGT")}}
	if _, err := RunSerial(trs, nil, cap3.DefaultParams()); err == nil {
		t.Error("duplicate transcript accepted")
	}
}

func TestReductionFraction(t *testing.T) {
	r := &Result{Assembly: make([]*fasta.Record, 91)}
	if got := r.ReductionFraction(100); got != 0.09 {
		t.Errorf("reduction = %v, want 0.09 (the paper's 8-9%% band)", got)
	}
	if got := r.ReductionFraction(0); got != 0 {
		t.Errorf("zero input reduction = %v", got)
	}
}
