package blast2cap3

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"pegflow/internal/bio/blast"
	"pegflow/internal/bio/cap3"
	"pegflow/internal/bio/fasta"
	"pegflow/internal/engine"
)

// File-level stage implementations: each function is one workflow
// transformation operating on files in a working directory, exactly as
// the Pegasus tasks do on the remote site. Registry wires them to the
// transformation names used by the DAX builder (package workflow), so the
// same abstract workflow that the simulator times can be executed for
// real through engine.LocalExecutor.

// StageCreateListTranscripts normalizes transcripts.fasta into the
// transcript dictionary file (the pickled SeqIO dict of the original
// Python implementation; here a normalized FASTA).
func StageCreateListTranscripts(dir, in, out string) error {
	recs, err := fasta.ReadFile(filepath.Join(dir, in))
	if err != nil {
		return fmt.Errorf("create_list_transcripts: %w", err)
	}
	if err := fasta.WriteFile(filepath.Join(dir, out), recs); err != nil {
		return fmt.Errorf("create_list_transcripts: %w", err)
	}
	return nil
}

// StageCreateListAlignments writes the sorted list of distinct query IDs
// appearing in alignments.out.
func StageCreateListAlignments(dir, in, out string) error {
	hits, err := blast.ParseTabularFile(filepath.Join(dir, in))
	if err != nil {
		return fmt.Errorf("create_list_alignments: %w", err)
	}
	seen := make(map[string]bool)
	var ids []string
	for _, h := range hits {
		if !seen[h.QueryID] {
			seen[h.QueryID] = true
			ids = append(ids, h.QueryID)
		}
	}
	sort.Strings(ids)
	return os.WriteFile(filepath.Join(dir, out),
		[]byte(strings.Join(ids, "\n")+"\n"), 0o644)
}

// StageSplit divides alignments.out into n per-chunk tabular files
// protein_1.txt .. protein_n.txt, assigning whole protein clusters
// round-robin (never splitting a cluster).
func StageSplit(dir, in string, n int) error {
	if n <= 0 {
		return fmt.Errorf("split: non-positive n %d", n)
	}
	hits, err := blast.ParseTabularFile(filepath.Join(dir, in))
	if err != nil {
		return fmt.Errorf("split: %w", err)
	}
	clusters, err := ClusterByProtein(hits)
	if err != nil {
		return fmt.Errorf("split: %w", err)
	}
	chunks, err := SplitClusters(clusters, n)
	if err != nil {
		return fmt.Errorf("split: %w", err)
	}
	// Index hits by (query, protein of its best hit) so each chunk file
	// carries the hits of its clusters.
	bestProtein := make(map[string]string)
	for _, c := range clusters {
		for _, id := range c.TranscriptIDs {
			bestProtein[id] = c.Protein
		}
	}
	chunkOf := make(map[string]int)
	for ci, chunk := range chunks {
		for _, c := range chunk {
			chunkOf[c.Protein] = ci
		}
	}
	perChunk := make([][]blast.Hit, n)
	for _, h := range hits {
		if bestProtein[h.QueryID] != h.SubjectID {
			continue // not the assigning hit
		}
		ci := chunkOf[h.SubjectID]
		perChunk[ci] = append(perChunk[ci], h)
	}
	for i := 0; i < n; i++ {
		path := filepath.Join(dir, fmt.Sprintf("protein_%d.txt", i+1))
		if err := blast.WriteTabularFile(path, perChunk[i]); err != nil {
			return fmt.Errorf("split: %w", err)
		}
	}
	return nil
}

// StageRunCAP3 assembles the clusters of one chunk: it reads the
// transcript dictionary and the chunk's alignment file, runs CAP3 per
// cluster and writes the joined contigs. Each contig's description embeds
// the member transcript IDs ("joined=a;b;c") so the final merge can
// compute the unjoined set.
func StageRunCAP3(dir, dictFile, proteinFile, outFile string, params cap3.Params) error {
	recs, err := fasta.ReadFile(filepath.Join(dir, dictFile))
	if err != nil {
		return fmt.Errorf("run_cap3: %w", err)
	}
	index := make(map[string]*fasta.Record, len(recs))
	for _, r := range recs {
		index[r.ID] = r
	}
	hits, err := blast.ParseTabularFile(filepath.Join(dir, proteinFile))
	if err != nil {
		return fmt.Errorf("run_cap3: %w", err)
	}
	clusters, err := ClusterByProtein(hits)
	if err != nil {
		return fmt.Errorf("run_cap3: %w", err)
	}
	var out []*fasta.Record
	for _, cluster := range clusters {
		var members []*fasta.Record
		for _, id := range cluster.TranscriptIDs {
			rec, ok := index[id]
			if !ok {
				return fmt.Errorf("run_cap3: cluster %q references unknown transcript %q",
					cluster.Protein, id)
			}
			members = append(members, rec)
		}
		if len(members) < 2 {
			continue
		}
		res, err := cap3.Assemble(members, params)
		if err != nil {
			return fmt.Errorf("run_cap3: cluster %q: %w", cluster.Protein, err)
		}
		for _, c := range res.Contigs {
			ids := make([]string, 0, len(c.Reads))
			for _, p := range c.Reads {
				ids = append(ids, p.ReadID)
			}
			sort.Strings(ids)
			out = append(out, &fasta.Record{
				ID:   fmt.Sprintf("%s_%s", cluster.Protein, c.ID),
				Desc: "joined=" + strings.Join(ids, ";"),
				Seq:  c.Seq,
			})
		}
	}
	return fasta.WriteFile(filepath.Join(dir, outFile), out)
}

// StageMerge concatenates the n per-chunk joined files into one.
func StageMerge(dir string, n int, outFile string) error {
	var all []*fasta.Record
	for i := 1; i <= n; i++ {
		recs, err := fasta.ReadFile(filepath.Join(dir, fmt.Sprintf("joined_%d.fasta", i)))
		if err != nil {
			return fmt.Errorf("merge: %w", err)
		}
		all = append(all, recs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return fasta.WriteFile(filepath.Join(dir, outFile), all)
}

// StageMergeNotJoined writes the final assembly: contigs plus every
// transcript not named in any contig's joined= list.
func StageMergeNotJoined(dir, joinedFile, dictFile, outFile string) error {
	contigs, err := fasta.ReadFile(filepath.Join(dir, joinedFile))
	if err != nil {
		return fmt.Errorf("merge_not_joined: %w", err)
	}
	transcripts, err := fasta.ReadFile(filepath.Join(dir, dictFile))
	if err != nil {
		return fmt.Errorf("merge_not_joined: %w", err)
	}
	var joined []string
	for _, c := range contigs {
		for _, kv := range strings.Fields(c.Desc) {
			if rest, ok := strings.CutPrefix(kv, "joined="); ok {
				joined = append(joined, strings.Split(rest, ";")...)
			}
		}
	}
	final := MergeNotJoined(contigs, transcripts, joined)
	return fasta.WriteFile(filepath.Join(dir, outFile), final)
}

// Registry builds the transformation registry executing the blast2cap3
// workflow stages for real under engine.LocalExecutor. Argument
// conventions match the DAX builder in package workflow.
func Registry(params cap3.Params) engine.Registry {
	return engine.Registry{
		"create_list_transcripts": func(ctx *engine.TaskContext) error {
			if len(ctx.Args) != 2 {
				return fmt.Errorf("create_list_transcripts: want 2 args, got %v", ctx.Args)
			}
			return StageCreateListTranscripts(ctx.WorkDir, ctx.Args[0], ctx.Args[1])
		},
		"create_list_alignments": func(ctx *engine.TaskContext) error {
			if len(ctx.Args) != 2 {
				return fmt.Errorf("create_list_alignments: want 2 args, got %v", ctx.Args)
			}
			return StageCreateListAlignments(ctx.WorkDir, ctx.Args[0], ctx.Args[1])
		},
		"split": func(ctx *engine.TaskContext) error {
			if len(ctx.Args) != 3 || ctx.Args[0] != "-n" {
				return fmt.Errorf("split: want [-n N file], got %v", ctx.Args)
			}
			n, err := strconv.Atoi(ctx.Args[1])
			if err != nil {
				return fmt.Errorf("split: bad n %q", ctx.Args[1])
			}
			return StageSplit(ctx.WorkDir, ctx.Args[2], n)
		},
		"run_cap3": func(ctx *engine.TaskContext) error {
			if len(ctx.Args) != 3 {
				return fmt.Errorf("run_cap3: want [dict protein out], got %v", ctx.Args)
			}
			return StageRunCAP3(ctx.WorkDir, ctx.Args[0], ctx.Args[1], ctx.Args[2], params)
		},
		"merge": func(ctx *engine.TaskContext) error {
			if len(ctx.Args) != 3 || ctx.Args[0] != "-n" {
				return fmt.Errorf("merge: want [-n N out], got %v", ctx.Args)
			}
			n, err := strconv.Atoi(ctx.Args[1])
			if err != nil {
				return fmt.Errorf("merge: bad n %q", ctx.Args[1])
			}
			return StageMerge(ctx.WorkDir, n, ctx.Args[2])
		},
		"merge_not_joined": func(ctx *engine.TaskContext) error {
			if len(ctx.Args) != 3 {
				return fmt.Errorf("merge_not_joined: want [joined dict out], got %v", ctx.Args)
			}
			return StageMergeNotJoined(ctx.WorkDir, ctx.Args[0], ctx.Args[1], ctx.Args[2])
		},
	}
}
