// Package blast2cap3 reimplements the protein-guided assembly of Buffalo's
// blast2cap3 (paper §II, §V.B): transcripts are clustered by their best
// BLASTX protein hit, each cluster is assembled with CAP3, and the merged
// transcripts are combined with the untouched remainder.
//
// The package offers both the monolithic serial driver (the paper's
// baseline) and the decomposed stages the Pegasus-style workflow runs as
// separate tasks (create lists, split, run_cap3 per chunk, merge,
// merge_not_joined).
package blast2cap3
