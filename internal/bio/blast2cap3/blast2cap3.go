package blast2cap3

import (
	"fmt"
	"sort"

	"pegflow/internal/bio/blast"
	"pegflow/internal/bio/cap3"
	"pegflow/internal/bio/fasta"
)

// Cluster is a group of transcripts sharing a best protein hit.
type Cluster struct {
	// Protein is the subject ID the members hit.
	Protein string
	// TranscriptIDs are the member transcripts, sorted.
	TranscriptIDs []string
}

// ClusterByProtein groups transcripts by their best-scoring protein hit
// (highest bit score wins; ties break toward the lexicographically first
// subject for determinism). Clusters are returned sorted by protein ID.
func ClusterByProtein(hits []blast.Hit) ([]Cluster, error) {
	type bestHit struct {
		protein string
		bits    float64
	}
	best := make(map[string]bestHit)
	for _, h := range hits {
		if h.QueryID == "" || h.SubjectID == "" {
			return nil, fmt.Errorf("blast2cap3: hit with empty query or subject")
		}
		cur, ok := best[h.QueryID]
		if !ok || h.BitScore > cur.bits ||
			(h.BitScore == cur.bits && h.SubjectID < cur.protein) {
			best[h.QueryID] = bestHit{h.SubjectID, h.BitScore}
		}
	}
	byProtein := make(map[string][]string)
	for tr, b := range best {
		byProtein[b.protein] = append(byProtein[b.protein], tr)
	}
	proteins := make([]string, 0, len(byProtein))
	for p := range byProtein {
		proteins = append(proteins, p)
	}
	sort.Strings(proteins)
	out := make([]Cluster, 0, len(proteins))
	for _, p := range proteins {
		ids := byProtein[p]
		sort.Strings(ids)
		out = append(out, Cluster{Protein: p, TranscriptIDs: ids})
	}
	return out, nil
}

// SplitClusters deals clusters round-robin into n chunks — the paper's
// split() task dividing "alignments.out" into n smaller files. Whole
// clusters are never divided.
func SplitClusters(clusters []Cluster, n int) ([][]Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("blast2cap3: non-positive chunk count %d", n)
	}
	out := make([][]Cluster, n)
	for i, c := range clusters {
		out[i%n] = append(out[i%n], c)
	}
	return out, nil
}

// AssembleChunk runs CAP3 over every cluster of one chunk — the workflow's
// run_cap3 task. It returns the merged contigs and the IDs of transcripts
// that were joined into them.
func AssembleChunk(chunk []Cluster, transcripts map[string]*fasta.Record, params cap3.Params) ([]*fasta.Record, []string, error) {
	var contigs []*fasta.Record
	var joined []string
	for _, cluster := range chunk {
		var members []*fasta.Record
		for _, id := range cluster.TranscriptIDs {
			rec, ok := transcripts[id]
			if !ok {
				return nil, nil, fmt.Errorf("blast2cap3: cluster %q references unknown transcript %q",
					cluster.Protein, id)
			}
			members = append(members, rec)
		}
		if len(members) < 2 {
			continue // nothing to merge
		}
		res, err := cap3.Assemble(members, params)
		if err != nil {
			return nil, nil, fmt.Errorf("blast2cap3: cluster %q: %w", cluster.Protein, err)
		}
		for _, c := range res.Contigs {
			contigs = append(contigs, &fasta.Record{
				ID:   fmt.Sprintf("%s_%s", cluster.Protein, c.ID),
				Desc: fmt.Sprintf("reads=%d protein=%s", len(c.Reads), cluster.Protein),
				Seq:  c.Seq,
			})
			for _, p := range c.Reads {
				joined = append(joined, p.ReadID)
			}
		}
	}
	sort.Strings(joined)
	return contigs, joined, nil
}

// MergeNotJoined produces the final assembly: the merged contigs plus
// every transcript that was not joined into any contig (the paper's
// merge_not_joined step).
func MergeNotJoined(contigs []*fasta.Record, transcripts []*fasta.Record, joined []string) []*fasta.Record {
	joinedSet := make(map[string]bool, len(joined))
	for _, id := range joined {
		joinedSet[id] = true
	}
	out := make([]*fasta.Record, 0, len(contigs)+len(transcripts))
	out = append(out, contigs...)
	for _, tr := range transcripts {
		if !joinedSet[tr.ID] {
			out = append(out, tr)
		}
	}
	return out
}

// Result summarizes one full blast2cap3 run.
type Result struct {
	// Assembly is the final transcript set.
	Assembly []*fasta.Record
	// Contigs counts CAP3-merged sequences in the assembly.
	Contigs int
	// Joined counts input transcripts merged into contigs.
	Joined int
	// Clusters counts protein clusters processed.
	Clusters int
}

// ReductionFraction returns the relative shrinkage of the transcript set
// ((in-out)/in) — the paper cites 8-9% for wheat.
func (r *Result) ReductionFraction(inputCount int) float64 {
	if inputCount == 0 {
		return 0
	}
	return float64(inputCount-len(r.Assembly)) / float64(inputCount)
}

// RunSerial executes the whole pipeline in one process — the paper's
// 100-hour baseline, here used at test scale: cluster, assemble every
// cluster consecutively, and merge.
func RunSerial(transcripts []*fasta.Record, hits []blast.Hit, params cap3.Params) (*Result, error) {
	index := make(map[string]*fasta.Record, len(transcripts))
	for _, tr := range transcripts {
		if _, dup := index[tr.ID]; dup {
			return nil, fmt.Errorf("blast2cap3: duplicate transcript %q", tr.ID)
		}
		index[tr.ID] = tr
	}
	clusters, err := ClusterByProtein(hits)
	if err != nil {
		return nil, err
	}
	contigs, joined, err := AssembleChunk(clusters, index, params)
	if err != nil {
		return nil, err
	}
	sort.Slice(contigs, func(i, j int) bool { return contigs[i].ID < contigs[j].ID })
	assembly := MergeNotJoined(contigs, transcripts, joined)
	return &Result{
		Assembly: assembly,
		Contigs:  len(contigs),
		Joined:   len(joined),
		Clusters: len(clusters),
	}, nil
}

// RunParallel executes the pipeline with the workflow decomposition: split
// the clusters into n chunks, assemble each independently (the workflow
// runs these as parallel tasks; here they run sequentially but through the
// identical per-chunk code path), then merge. It must produce the same
// assembly as RunSerial for any n.
func RunParallel(transcripts []*fasta.Record, hits []blast.Hit, n int, params cap3.Params) (*Result, error) {
	index := make(map[string]*fasta.Record, len(transcripts))
	for _, tr := range transcripts {
		if _, dup := index[tr.ID]; dup {
			return nil, fmt.Errorf("blast2cap3: duplicate transcript %q", tr.ID)
		}
		index[tr.ID] = tr
	}
	clusters, err := ClusterByProtein(hits)
	if err != nil {
		return nil, err
	}
	chunks, err := SplitClusters(clusters, n)
	if err != nil {
		return nil, err
	}
	var contigs []*fasta.Record
	var joined []string
	for _, chunk := range chunks {
		c, j, err := AssembleChunk(chunk, index, params)
		if err != nil {
			return nil, err
		}
		contigs = append(contigs, c...)
		joined = append(joined, j...)
	}
	// Deterministic contig order regardless of chunking.
	sort.Slice(contigs, func(i, j int) bool { return contigs[i].ID < contigs[j].ID })
	sort.Strings(joined)
	assembly := MergeNotJoined(contigs, transcripts, joined)
	return &Result{
		Assembly: assembly,
		Contigs:  len(contigs),
		Joined:   len(joined),
		Clusters: len(clusters),
	}, nil
}
