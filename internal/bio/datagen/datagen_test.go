package datagen

import (
	"testing"

	"pegflow/internal/bio/blast"
	"pegflow/internal/bio/seq"
	"pegflow/internal/sim/rng"
)

func TestGenerateShape(t *testing.T) {
	cfg := DefaultConfig(1)
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Proteins) != cfg.Proteins {
		t.Errorf("proteins = %d", len(ds.Proteins))
	}
	wantTr := cfg.Proteins*3 + cfg.NoiseTranscripts
	if len(ds.Transcripts) != wantTr {
		t.Errorf("transcripts = %d, want %d", len(ds.Transcripts), wantTr)
	}
	if len(ds.TruthHits) != cfg.Proteins*3 {
		t.Errorf("truth hits = %d", len(ds.TruthHits))
	}
	for _, tr := range ds.Transcripts {
		if !seq.IsDNA(tr.Seq) {
			t.Fatalf("transcript %s is not DNA", tr.ID)
		}
		if len(tr.Seq) == 0 || len(tr.Seq) > cfg.FragmentLen {
			t.Errorf("transcript %s length %d", tr.ID, len(tr.Seq))
		}
	}
	for _, p := range ds.Proteins {
		if len(p.Seq) != cfg.ProteinLen {
			t.Errorf("protein %s length %d", p.ID, len(p.Seq))
		}
		if p.Seq[0] != 'M' {
			t.Errorf("protein %s does not start with Met", p.ID)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Transcripts) != len(b.Transcripts) {
		t.Fatal("sizes differ")
	}
	for i := range a.Transcripts {
		if string(a.Transcripts[i].Seq) != string(b.Transcripts[i].Seq) {
			t.Fatal("same seed produced different transcripts")
		}
	}
	c, err := Generate(DefaultConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Transcripts[0].Seq) == string(c.Transcripts[0].Seq) {
		t.Error("different seeds produced identical first transcript")
	}
}

func TestGenerateFragmentsOverlap(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.MutationRate = 0 // exact overlaps
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Consecutive fragments of the same cluster share OverlapLen bases.
	step := cfg.FragmentLen - cfg.OverlapLen
	gene := ds.Genes["prot0001"]
	fr1, fr2 := ds.Transcripts[0], ds.Transcripts[1]
	if string(fr1.Seq) != string(gene[:cfg.FragmentLen]) {
		t.Error("fragment 1 does not tile the gene")
	}
	if string(fr2.Seq[:cfg.OverlapLen]) != string(fr1.Seq[step:]) {
		t.Error("fragments 1 and 2 do not overlap by OverlapLen")
	}
}

func TestGenerateZipfSizes(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Proteins = 5
	cfg.ClusterSizes = rng.ZipfSizes(5, 1.0, 8)
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, h := range ds.TruthHits {
		counts[h.SubjectID]++
	}
	if counts["prot0001"] != 8 {
		t.Errorf("largest cluster = %d, want 8", counts["prot0001"])
	}
	if counts["prot0005"] < 1 {
		t.Error("smallest cluster empty")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{Proteins: 0, ProteinLen: 10, FragmentLen: 100, OverlapLen: 10},
		{Proteins: 1, ProteinLen: 0, FragmentLen: 100, OverlapLen: 10},
		{Proteins: 1, ProteinLen: 10, FragmentLen: 0, OverlapLen: 0},
		{Proteins: 1, ProteinLen: 10, FragmentLen: 100, OverlapLen: 100},
		{Proteins: 1, ProteinLen: 10, FragmentLen: 100, OverlapLen: 10, MutationRate: 0.5},
		{Proteins: 2, ProteinLen: 10, FragmentLen: 100, OverlapLen: 10, ClusterSizes: []int{1}},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestTruthHitsConsistent(t *testing.T) {
	ds, err := Generate(DefaultConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	trIDs := map[string]bool{}
	for _, tr := range ds.Transcripts {
		trIDs[tr.ID] = true
	}
	protIDs := map[string]bool{}
	for _, p := range ds.Proteins {
		protIDs[p.ID] = true
	}
	for _, h := range ds.TruthHits {
		if !trIDs[h.QueryID] {
			t.Errorf("hit references unknown transcript %s", h.QueryID)
		}
		if !protIDs[h.SubjectID] {
			t.Errorf("hit references unknown protein %s", h.SubjectID)
		}
		if h.BitScore <= 0 || h.EValue > 1e-5 {
			t.Errorf("weak truth hit: %+v", h)
		}
	}
}

// TestAlignWithBLASTRecoversProvenance is the full-stack biology test: the
// generated transcripts, searched with our BLASTX implementation against
// the generated protein DB, must hit their source protein best.
func TestAlignWithBLASTRecoversProvenance(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Proteins = 4
	cfg.NoiseTranscripts = 2
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := ds.AlignWithBLAST(blast.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	best := map[string]blast.Hit{}
	for _, h := range hits {
		if cur, ok := best[h.QueryID]; !ok || h.BitScore > cur.BitScore {
			best[h.QueryID] = h
		}
	}
	recovered, total := 0, 0
	for _, tr := range ds.Transcripts {
		if len(tr.ID) >= 8 && tr.ID[:8] == "tr_noise" {
			if _, ok := best[tr.ID]; ok {
				t.Errorf("noise transcript %s got a hit", tr.ID)
			}
			continue
		}
		total++
		// Provenance is encoded in the ID: tr_<protID>_<idx>.
		wantProt := tr.ID[3 : 3+8]
		if h, ok := best[tr.ID]; ok && h.SubjectID == wantProt {
			recovered++
		}
	}
	if recovered < total*9/10 {
		t.Errorf("BLAST recovered %d/%d provenances", recovered, total)
	}
}
