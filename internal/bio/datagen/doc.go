// Package datagen generates synthetic protein databases and transcriptomes
// with the structure blast2cap3 exploits: groups of transcripts derived
// from a common protein, overlapping enough for CAP3 to merge them. It is
// the stand-in for the paper's proprietary-scale wheat dataset (NCBI
// PRJNA191053): tests and examples run the real pipeline end-to-end on
// data from this package.
package datagen
