package datagen

import (
	"fmt"

	"pegflow/internal/bio/blast"
	"pegflow/internal/bio/fasta"
	"pegflow/internal/bio/seq"
	"pegflow/internal/sim/rng"
)

// Config sizes the synthetic dataset.
type Config struct {
	// Proteins is the number of database proteins (= potential
	// clusters).
	Proteins int
	// ProteinLen is the residue length of each protein.
	ProteinLen int
	// ClusterSizes gives the number of transcript fragments per protein
	// cluster; nil means 3 for every protein. Use rng.ZipfSizes for a
	// heavy-tailed profile.
	ClusterSizes []int
	// FragmentLen is the nucleotide length of each transcript fragment.
	FragmentLen int
	// OverlapLen is the intended overlap between consecutive fragments
	// of a cluster (must exceed the assembler's MinOverlap to be
	// joinable).
	OverlapLen int
	// MutationRate is the per-base substitution probability applied to
	// fragments (sequencing/assembly noise).
	MutationRate float64
	// NoiseTranscripts adds unrelated random transcripts with no
	// protein hit (they must pass through unjoined).
	NoiseTranscripts int
	// Seed drives generation.
	Seed uint64
}

// DefaultConfig returns a small dataset suitable for tests and examples.
func DefaultConfig(seed uint64) Config {
	return Config{
		Proteins:         8,
		ProteinLen:       120,
		FragmentLen:      240,
		OverlapLen:       90,
		MutationRate:     0.01,
		NoiseTranscripts: 5,
		Seed:             seed,
	}
}

// Dataset is a generated input set plus its ground truth.
type Dataset struct {
	// Proteins is the protein database.
	Proteins []blast.Protein
	// Transcripts is the transcript set ("transcripts.fasta").
	Transcripts []*fasta.Record
	// TruthHits are alignment records derived from provenance — exactly
	// one best hit per cluster member ("alignments.out" without running
	// the aligner).
	TruthHits []blast.Hit
	// Genes maps protein ID to its full coding DNA (the sequence the
	// cluster's fragments tile).
	Genes map[string][]byte
}

// aminoAcids excludes stops; M start keeps translation honest.
const aminoAcids = "ACDEFGHIKLMNPQRSTVWY"

// Generate builds a dataset.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Proteins <= 0 || cfg.ProteinLen <= 0 {
		return nil, fmt.Errorf("datagen: non-positive protein count or length")
	}
	if cfg.FragmentLen <= 0 || cfg.OverlapLen < 0 || cfg.OverlapLen >= cfg.FragmentLen {
		return nil, fmt.Errorf("datagen: fragment %d / overlap %d invalid", cfg.FragmentLen, cfg.OverlapLen)
	}
	if cfg.MutationRate < 0 || cfg.MutationRate > 0.2 {
		return nil, fmt.Errorf("datagen: mutation rate %v outside [0,0.2]", cfg.MutationRate)
	}
	base := rng.New(cfg.Seed).Derive("datagen")
	protRNG := base.Derive("proteins")
	fragRNG := base.Derive("fragments")
	noiseRNG := base.Derive("noise")

	ds := &Dataset{Genes: make(map[string][]byte)}
	sizes := cfg.ClusterSizes
	if sizes == nil {
		sizes = make([]int, cfg.Proteins)
		for i := range sizes {
			sizes[i] = 3
		}
	}
	if len(sizes) != cfg.Proteins {
		return nil, fmt.Errorf("datagen: %d cluster sizes for %d proteins", len(sizes), cfg.Proteins)
	}

	for pi := 0; pi < cfg.Proteins; pi++ {
		pid := fmt.Sprintf("prot%04d", pi+1)
		prot := make([]byte, cfg.ProteinLen)
		prot[0] = 'M'
		for i := 1; i < cfg.ProteinLen; i++ {
			prot[i] = aminoAcids[protRNG.Intn(len(aminoAcids))]
		}
		ds.Proteins = append(ds.Proteins, blast.Protein{ID: pid, Seq: prot})

		// Reverse-translate with random synonymous codons to get the
		// gene, sized so the cluster's fragments tile it.
		step := cfg.FragmentLen - cfg.OverlapLen
		geneLen := cfg.FragmentLen + step*(sizes[pi]-1)
		gene := reverseTranslate(prot, protRNG)
		for len(gene) < geneLen {
			// Extend with UTR-like random sequence so fragments of
			// large clusters have room (non-coding tail).
			gene = append(gene, "ACGT"[protRNG.Intn(4)])
		}

		ds.Genes[pid] = gene
		for f := 0; f < sizes[pi]; f++ {
			start := f * step
			end := start + cfg.FragmentLen
			if end > len(gene) {
				end = len(gene)
			}
			frag := append([]byte(nil), gene[start:end]...)
			mutate(frag, cfg.MutationRate, fragRNG)
			tid := fmt.Sprintf("tr_%s_%03d", pid, f+1)
			ds.Transcripts = append(ds.Transcripts, &fasta.Record{
				ID:   tid,
				Desc: fmt.Sprintf("from=%s pos=%d-%d", pid, start, end),
				Seq:  frag,
			})
			covered := end - start
			if covered > 3*cfg.ProteinLen {
				covered = 3 * cfg.ProteinLen
			}
			alnLen := covered / 3
			ds.TruthHits = append(ds.TruthHits, blast.Hit{
				QueryID:         tid,
				SubjectID:       pid,
				PercentIdentity: 100 * (1 - cfg.MutationRate),
				Length:          alnLen,
				QStart:          1,
				QEnd:            covered,
				SStart:          start/3 + 1,
				SEnd:            start/3 + alnLen,
				EValue:          1e-30,
				BitScore:        2 * float64(alnLen),
			})
		}
	}

	for i := 0; i < cfg.NoiseTranscripts; i++ {
		s := make([]byte, cfg.FragmentLen)
		for j := range s {
			s[j] = "ACGT"[noiseRNG.Intn(4)]
		}
		ds.Transcripts = append(ds.Transcripts, &fasta.Record{
			ID:   fmt.Sprintf("tr_noise_%03d", i+1),
			Desc: "unrelated",
			Seq:  s,
		})
	}
	return ds, nil
}

// reverseTranslate encodes a protein as DNA choosing codons uniformly.
func reverseTranslate(prot []byte, r *rng.Stream) []byte {
	out := make([]byte, 0, 3*len(prot))
	for _, aa := range prot {
		codons := seq.CodonsFor(aa)
		if len(codons) == 0 {
			codons = seq.CodonsFor('A')
		}
		out = append(out, codons[r.Intn(len(codons))]...)
	}
	return out
}

// mutate applies random substitutions in place.
func mutate(s []byte, rate float64, r *rng.Stream) {
	if rate <= 0 {
		return
	}
	for i := range s {
		if r.Float64() < rate {
			s[i] = "ACGT"[r.Intn(4)]
		}
	}
}

// AlignWithBLAST runs the package blast search over the dataset and
// returns the hits — the slow, fully-real path for producing
// "alignments.out" (the paper ran NCBI BLASTX for this step).
func (ds *Dataset) AlignWithBLAST(params blast.Params) ([]blast.Hit, error) {
	db, err := blast.NewDB(ds.Proteins, params)
	if err != nil {
		return nil, err
	}
	var out []blast.Hit
	for _, tr := range ds.Transcripts {
		hits, err := db.Search(tr.ID, tr.Seq)
		if err != nil {
			return nil, err
		}
		out = append(out, hits...)
	}
	return out, nil
}
